(* The multicore layer: domain-pool semantics, byte-identical parallel
   LTS exploration, sharded fuzzing determinism, and the truncation
   bookkeeping that keeps deadlock reports honest on bounded
   explorations. *)

open Csp
module Fuzz = Csp_testkit.Fuzz
module Gen = Csp_testkit.Gen
module Oracle = Csp_testkit.Oracle
module Scenario = Csp_testkit.Scenario

(* Domain counts exercised by the determinism tests.  The CI parallel
   leg sets CSP_TEST_DOMAINS to add one more. *)
let domain_counts =
  let base = [ 2; 4 ] in
  match Sys.getenv_opt "CSP_TEST_DOMAINS" with
  | None -> base
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d > 1 && not (List.mem d base) -> base @ [ d ]
    | _ -> base)

(* ---- the pool itself ------------------------------------------------- *)

let test_parallel_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Pool.parallel_map pool (fun x -> x * x) input in
      Alcotest.(check (array int))
        "squares, in input order"
        (Array.map (fun x -> x * x) input)
        out)

let test_parallel_map_single_domain () =
  Pool.with_pool ~domains:1 (fun pool ->
      let out = Pool.parallel_map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "sequential fast path" [| 2; 3; 4 |] out)

let test_map_chunks () =
  Pool.with_pool ~domains:2 (fun pool ->
      let input = Array.init 57 Fun.id in
      let sums =
        Pool.map_chunks pool ~chunk_size:10
          (fun chunk -> Array.fold_left ( + ) 0 chunk)
          input
      in
      Alcotest.(check int)
        "chunk sums partition the total"
        (Array.fold_left ( + ) 0 input)
        (Array.fold_left ( + ) 0 sums))

let test_run () =
  Pool.with_pool ~domains:2 (fun pool ->
      let out = Pool.run pool [ (fun () -> "a"); (fun () -> "b") ] in
      Alcotest.(check (list string)) "thunk results in order" [ "a"; "b" ] out)

exception Boom of int

let test_exception_lowest_index () =
  Pool.with_pool ~domains:2 (fun pool ->
      match
        Pool.parallel_map pool
          (fun x -> if x = 3 || x = 7 then raise (Boom x) else x)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected the batch to re-raise"
      | exception Boom i ->
        Alcotest.(check int) "lowest-indexed failure wins" 3 i)

let test_pool_stats () =
  let s0 = Pool.stats () in
  Pool.with_pool ~domains:2 (fun pool ->
      ignore (Pool.parallel_map pool Fun.id (Array.init 20 Fun.id)));
  let s1 = Pool.stats () in
  Alcotest.(check bool) "a pool was created" true Pool.(s1.pools > s0.pools);
  Alcotest.(check bool) "tasks ran" true Pool.(s1.tasks - s0.tasks >= 20);
  Alcotest.(check bool) "a batch ran" true Pool.(s1.batches > s0.batches)

(* ---- work-stealing deques -------------------------------------------- *)

let test_deque_lifo () =
  let d = Pool.Deque.create () in
  Alcotest.(check (option int)) "empty pops None" None (Pool.Deque.pop d);
  (* 100 items crosses the initial capacity: growth re-packs from the
     head, so order survives the copy *)
  for i = 1 to 100 do
    Pool.Deque.push d i
  done;
  Alcotest.(check int) "size counts the pushes" 100 (Pool.Deque.size d);
  let popped = List.init 100 (fun _ -> Option.get (Pool.Deque.pop d)) in
  Alcotest.(check (list int))
    "owner pops newest-first"
    (List.init 100 (fun i -> 100 - i))
    popped;
  Alcotest.(check (option int)) "drained" None (Pool.Deque.pop d)

let test_deque_steal_half () =
  let d = Pool.Deque.create () in
  for i = 1 to 7 do
    Pool.Deque.push d i
  done;
  Alcotest.(check (list int))
    "steal takes the oldest ⌈7/2⌉, oldest first" [ 1; 2; 3; 4 ]
    (Pool.Deque.steal_half d);
  Alcotest.(check int) "victim keeps the rest" 3 (Pool.Deque.size d);
  Alcotest.(check (option int))
    "owner still pops its newest" (Some 7) (Pool.Deque.pop d);
  Alcotest.(check (list int))
    "steal of 2 takes 1" [ 5 ] (Pool.Deque.steal_half d);
  Alcotest.(check (list int))
    "steal of 1 takes it" [ 6 ] (Pool.Deque.steal_half d);
  Alcotest.(check (list int))
    "steal of empty is empty" [] (Pool.Deque.steal_half d)

(* One owner pushing and popping, three thieves stealing — four
   domains on the same deque.  Conservation: every pushed item
   surfaces exactly once, on exactly one side. *)
let test_deque_conservation_4_domains () =
  let d = Pool.Deque.create () in
  let n = 10_000 in
  let finished = Atomic.make false in
  let thieves =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec loop () =
              match Pool.Deque.steal_half d with
              | [] ->
                if Atomic.get finished then !acc
                else begin
                  Domain.cpu_relax ();
                  loop ()
                end
              | xs ->
                acc := List.rev_append xs !acc;
                loop ()
            in
            loop ()))
  in
  let owner_got = ref [] in
  for i = 0 to n - 1 do
    Pool.Deque.push d i;
    if i mod 3 = 0 then
      match Pool.Deque.pop d with
      | Some x -> owner_got := x :: !owner_got
      | None -> ()
  done;
  let rec drain () =
    match Pool.Deque.pop d with
    | Some x ->
      owner_got := x :: !owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  (* thieves only remove and the owner stopped pushing, so empty is
     final: release the thieves and collect their shares *)
  Atomic.set finished true;
  let stolen = Array.to_list thieves |> List.concat_map Domain.join in
  let all = List.sort compare (stolen @ !owner_got) in
  Alcotest.(check int) "nothing lost, nothing duplicated" n (List.length all);
  Alcotest.(check (list int)) "every item exactly once" (List.init n Fun.id) all

(* ---- parallel exploration ≡ sequential exploration ------------------- *)

let lts_equal_seq (seq : Lts.t) (par : Lts.t) =
  Lts.num_states par = Lts.num_states seq
  && Lts.num_transitions par = Lts.num_transitions seq
  && par.Lts.complete = seq.Lts.complete
  && Array.for_all2 Process.equal par.Lts.states seq.Lts.states
  && String.equal (Lts.to_dot par) (Lts.to_dot seq)

let explore_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"parallel explore: identical numbering, transitions and DOT"
       Gen.scenario
       (fun sc ->
         let fresh_cfg () =
           Step.config ~sampler:(Sampler.nat_bound 2) sc.Scenario.defs
         in
         let p = Process.ref_ sc.Scenario.main in
         let seq = Lts.explore ~max_states:300 (fresh_cfg ()) p in
         List.for_all
           (fun domains ->
             Pool.with_pool ~domains (fun pool ->
                 (* fresh config: the parallel run must not be allowed
                    to coast on the sequential run's caches *)
                 let par = Lts.explore ~max_states:300 ~pool (fresh_cfg ()) p in
                 lts_equal_seq seq par))
           domain_counts))

(* The interesting parallel case — frontiers wide enough to actually
   chunk — hit deterministically, not only when the generator obliges. *)
let test_explore_philosophers_identical () =
  let ph = Paper.Philosophers.make ~n:3 ~left_handed_last:false () in
  let fresh_cfg () =
    Step.config ~sampler:(Sampler.nat_bound 3) ph.Paper.Philosophers.defs
  in
  let net = ph.Paper.Philosophers.network in
  let seq = Lts.explore ~max_states:5000 (fresh_cfg ()) net in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let par = Lts.explore ~max_states:5000 ~pool (fresh_cfg ()) net in
          Alcotest.(check bool)
            (Printf.sprintf "philosophers identical at %d domains" domains)
            true (lts_equal_seq seq par)))
    domain_counts

(* ---- relaxed exploration: set-equality against deterministic --------- *)

(* Relaxed mode numbers states in claim order, so numbering and
   transition order are schedule-dependent — but on a complete
   exploration the state set and transition set must match the
   deterministic run exactly.  [Lts.signature] is the
   numbering-independent canonical form. *)
let test_relaxed_signature_oracle () =
  let models =
    [
      ( "philosophers-3",
        fun () ->
          let ph = Paper.Philosophers.make ~n:3 ~left_handed_last:true () in
          ( Step.config ~sampler:(Sampler.nat_bound 3)
              ph.Paper.Philosophers.defs,
            ph.Paper.Philosophers.network ) );
      ( "sliding-window-w2",
        fun () ->
          let m = Models.Sliding_window.make ~w:2 in
          ( Step.config ~sampler:(Sampler.nat_bound 2)
              m.Models.Sliding_window.defs,
            m.Models.Sliding_window.network ) );
    ]
  in
  List.iter
    (fun (label, mk) ->
      let cfg, net = mk () in
      let seq = Lts.explore ~max_states:20_000 cfg net in
      Alcotest.(check bool)
        (label ^ ": deterministic run is complete")
        true seq.Lts.complete;
      let want = Lts.signature seq in
      (* without a pool, relaxed falls back to the deterministic path *)
      let fallback =
        let cfg, net = mk () in
        Lts.explore ~max_states:20_000 ~relaxed:true cfg net
      in
      Alcotest.(check bool)
        (label ^ ": relaxed without pool is byte-identical")
        true
        (lts_equal_seq seq fallback);
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let cfg, net = mk () in
              let relaxed =
                Lts.explore ~max_states:20_000 ~pool ~relaxed:true cfg net
              in
              Alcotest.(check string)
                (Printf.sprintf "%s: relaxed signature at %d domains" label
                   domains)
                want (Lts.signature relaxed)))
        domain_counts)
    models

(* ---- sharded fuzzing ≡ sequential fuzzing ---------------------------- *)

(* A deliberately failing oracle so the determinism check covers the
   counterexample (and shrinking) path, not only the all-pass path. *)
let even_size_fails : Oracle.t =
  {
    Oracle.name = "test-even-size-fails";
    doc = "fails on scenarios of even size (test-only)";
    check =
      (fun sc ->
        let n = Scenario.size sc in
        if n mod 2 = 0 then Oracle.Fail (Printf.sprintf "size %d is even" n)
        else Oracle.Pass);
  }

let counterexample_equal (a : Fuzz.counterexample) (b : Fuzz.counterexample) =
  a.Fuzz.case = b.Fuzz.case
  && String.equal a.Fuzz.oracle b.Fuzz.oracle
  && String.equal a.Fuzz.detail b.Fuzz.detail
  && Scenario.equal a.Fuzz.scenario b.Fuzz.scenario
  && Scenario.equal a.Fuzz.original b.Fuzz.original

let test_fuzz_jobs_deterministic () =
  let config jobs =
    {
      Fuzz.default_config with
      Fuzz.seed = 11;
      max_cases = 40;
      oracles = Oracle.all @ [ even_size_fails ];
      jobs;
    }
  in
  let r1 = Fuzz.run (config 1) in
  List.iter
    (fun jobs ->
      let rn = Fuzz.run (config jobs) in
      Alcotest.(check int)
        (Printf.sprintf "cases at %d jobs" jobs)
        r1.Fuzz.cases rn.Fuzz.cases;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "oracle runs at %d jobs" jobs)
        r1.Fuzz.oracle_runs rn.Fuzz.oracle_runs;
      Alcotest.(check int)
        (Printf.sprintf "counterexample count at %d jobs" jobs)
        (List.length r1.Fuzz.counterexamples)
        (List.length rn.Fuzz.counterexamples);
      Alcotest.(check bool)
        (Printf.sprintf "counterexample corpus at %d jobs" jobs)
        true
        (List.for_all2 counterexample_equal r1.Fuzz.counterexamples
           rn.Fuzz.counterexamples))
    domain_counts;
  Alcotest.(check bool)
    "the failing oracle did fail somewhere" true
    (r1.Fuzz.counterexamples <> [])

(* ---- telemetry must not perturb output ------------------------------- *)

(* The Obs determinism contract: instruments observe, they never feed
   back into scheduling — so the same run with tracing on must produce
   byte-identical user-visible output, including under a multi-domain
   pool where a perturbed schedule would be most likely to show. *)

let with_obs_enabled f =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.clear_events ())
    f

let test_graph_identical_with_telemetry () =
  let dot_of () =
    let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Paper.Protocol.defs in
    Pool.with_pool ~domains:2 (fun pool ->
        Lts.to_dot (Lts.explore ~max_states:2000 ~pool cfg Paper.Protocol.network))
  in
  let off = dot_of () in
  let on, recorded =
    with_obs_enabled (fun () ->
        let d = dot_of () in
        (d, Obs.event_count ()))
  in
  Alcotest.(check bool) "the traced run did record spans" true (recorded > 0);
  Alcotest.(check string) "DOT byte-identical with tracing on" off on

let test_fuzz_identical_with_telemetry () =
  let config =
    {
      Fuzz.default_config with
      Fuzz.seed = 11;
      max_cases = 30;
      oracles = Oracle.all @ [ even_size_fails ];
      jobs = 2;
    }
  in
  let off = Fuzz.run config in
  let on = with_obs_enabled (fun () -> Fuzz.run config) in
  Alcotest.(check int) "cases identical" off.Fuzz.cases on.Fuzz.cases;
  Alcotest.(check (list (pair string int)))
    "oracle runs identical" off.Fuzz.oracle_runs on.Fuzz.oracle_runs;
  Alcotest.(check bool)
    "counterexample corpus identical" true
    (List.length off.Fuzz.counterexamples
     = List.length on.Fuzz.counterexamples
    && List.for_all2 counterexample_equal off.Fuzz.counterexamples
         on.Fuzz.counterexamples)

(* ---- truncation bookkeeping ------------------------------------------ *)

(* count[n] = tick!n -> count[n+1]: an infinite chain, so any state
   bound truncates and the last interned state has its only move
   dropped.  It must not read as a deadlock. *)
let counter_defs =
  Defs.empty
  |> Defs.define_array "count" "n" Vset.Nat
       (Process.Output
          ( Chan_expr.simple "tick",
            Expr.Var "n",
            Process.call "count" (Expr.Add (Expr.Var "n", Expr.int 1)) ))

let test_truncated_not_deadlocked () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) counter_defs in
  let lts = Lts.explore ~max_states:5 cfg (Process.call "count" (Expr.int 0)) in
  Alcotest.(check int) "bounded states" 5 (Lts.num_states lts);
  Alcotest.(check bool) "incomplete" false lts.Lts.complete;
  Alcotest.(check (list int))
    "the cut state is flagged, not deadlocked" [ 4 ]
    (Lts.truncated_states lts);
  Alcotest.(check (list int))
    "no deadlock false positive" [] (Lts.deadlock_states lts);
  let dot = Lts.to_dot lts in
  Alcotest.(check bool)
    "DOT draws the cut state dashed" true
    (let marker = "n4 [shape=circle, style=dashed];" in
     let rec contains i =
       i + String.length marker <= String.length dot
       && (String.equal (String.sub dot i (String.length marker)) marker
          || contains (i + 1))
     in
     contains 0)

let test_real_deadlock_still_reported () =
  let defs =
    Defs.empty
    |> Defs.define "once"
         (Process.Output (Chan_expr.simple "a", Expr.int 0, Process.Stop))
  in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  let lts = Lts.explore ~max_states:10 cfg (Process.ref_ "once") in
  Alcotest.(check bool) "complete" true lts.Lts.complete;
  Alcotest.(check (list int)) "nothing truncated" [] (Lts.truncated_states lts);
  Alcotest.(check (list int)) "STOP is deadlocked" [ 1 ] (Lts.deadlock_states lts)

let test_num_transitions_matches_list () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Paper.Protocol.defs in
  let lts = Lts.explore ~max_states:500 cfg Paper.Protocol.network in
  Alcotest.(check int)
    "stored count = list length"
    (List.length lts.Lts.transitions)
    (Lts.num_transitions lts);
  let quotiented = Bisim.minimise lts in
  Alcotest.(check int)
    "derived systems keep the invariant"
    (List.length quotiented.Lts.transitions)
    (Lts.num_transitions quotiented)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "single-domain fast path" `Quick
            test_parallel_map_single_domain;
          Alcotest.test_case "map_chunks" `Quick test_map_chunks;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "lowest-indexed exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "stats counters" `Quick test_pool_stats;
        ] );
      ( "deque",
        [
          Alcotest.test_case "push/pop LIFO across growth" `Quick
            test_deque_lifo;
          Alcotest.test_case "steal_half takes the oldest half" `Quick
            test_deque_steal_half;
          Alcotest.test_case "conservation under 4 domains" `Quick
            test_deque_conservation_4_domains;
        ] );
      ( "explore",
        [
          explore_deterministic;
          Alcotest.test_case "philosophers byte-identical" `Quick
            test_explore_philosophers_identical;
          Alcotest.test_case "relaxed signature oracle" `Quick
            test_relaxed_signature_oracle;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "jobs determinism" `Quick
            test_fuzz_jobs_deterministic;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "graph byte-identical with tracing" `Quick
            test_graph_identical_with_telemetry;
          Alcotest.test_case "fuzz byte-identical with tracing" `Quick
            test_fuzz_identical_with_telemetry;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "no deadlock false positive" `Quick
            test_truncated_not_deadlocked;
          Alcotest.test_case "real deadlocks survive" `Quick
            test_real_deadlock_still_reported;
          Alcotest.test_case "num_transitions" `Quick
            test_num_transitions_matches_list;
        ] );
    ]
