(* Tests for the process-language layer: value sets, expressions,
   channel expressions and sets, process AST operations, definitions. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Vset ----------------------------------------------------------- *)

let test_vset_mem () =
  check_bool "nat non-negative" true (Vset.mem Vset.Nat (Value.Int 0));
  check_bool "nat rejects negative" false (Vset.mem Vset.Nat (Value.Int (-1)));
  check_bool "nat rejects syms" false (Vset.mem Vset.Nat Value.ack);
  check_bool "range inclusive" true (Vset.mem (Vset.Range (2, 5)) (Value.Int 5));
  check_bool "range excludes" false (Vset.mem (Vset.Range (2, 5)) (Value.Int 6));
  check_bool "enum" true
    (Vset.mem (Vset.Enum [ Value.ack; Value.nack ]) Value.nack);
  check_bool "union" true
    (Vset.mem (Vset.Union (Vset.Range (0, 1), Vset.Enum [ Value.ack ])) Value.ack);
  check_bool "bools" true (Vset.mem Vset.Bools (Value.Bool false))

let test_vset_enumerate () =
  check Alcotest.(option (list (module Value))) "range"
    (Some [ Value.Int 0; Value.Int 1; Value.Int 2 ])
    (Vset.enumerate (Vset.Range (0, 2)));
  check Alcotest.(option (list (module Value))) "nat infinite" None
    (Vset.enumerate Vset.Nat);
  check_int "enum dedups" 2
    (List.length
       (Option.get (Vset.enumerate (Vset.Enum [ Value.Int 1; Value.Int 1; Value.Int 2 ]))));
  check_int "bounded nat" 5 (List.length (Vset.enumerate_bounded ~bound:5 Vset.Nat));
  check_int "bounded finite ignores bound" 3
    (List.length (Vset.enumerate_bounded ~bound:1 (Vset.Range (0, 2))));
  check_bool "finite" true (Vset.is_finite (Vset.Range (0, 9)));
  check_bool "nat union infinite" false
    (Vset.is_finite (Vset.Union (Vset.Nat, Vset.Bools)))

(* ---- Expr ----------------------------------------------------------- *)

let rho = Valuation.of_list [ ("x", Value.Int 5); ("y", Value.Int 2) ]

let test_expr_eval () =
  let e = Expr.Add (Expr.Mul (Expr.Var "x", Expr.int 3), Expr.Var "y") in
  check value_testable "arith" (Value.Int 17) (Expr.eval rho e);
  check value_testable "neg" (Value.Int (-5)) (Expr.eval rho (Expr.Neg (Expr.Var "x")));
  check value_testable "div" (Value.Int 2) (Expr.eval rho (Expr.Div (Expr.Var "x", Expr.Var "y")));
  check value_testable "mod" (Value.Int 1) (Expr.eval rho (Expr.Mod (Expr.Var "x", Expr.Var "y")));
  check value_testable "idx 1-based" (Value.Int 20)
    (Expr.eval rho
       (Expr.Idx (Expr.Const (Value.Seq [ Value.Int 10; Value.Int 20 ]), Expr.int 2)));
  check value_testable "tuple" (Value.Tuple [ Value.Int 5; Value.Int 2 ])
    (Expr.eval rho (Expr.Tuple [ Expr.Var "x"; Expr.Var "y" ]))

let expect_eval_error e =
  match Expr.eval rho e with
  | exception Expr.Eval_error _ -> ()
  | v -> Alcotest.failf "expected failure, got %a" Value.pp v

let test_expr_errors () =
  expect_eval_error (Expr.Var "unbound");
  expect_eval_error (Expr.Div (Expr.int 1, Expr.int 0));
  expect_eval_error (Expr.Mod (Expr.int 1, Expr.int 0));
  expect_eval_error (Expr.Add (Expr.int 1, Expr.Const Value.ack));
  expect_eval_error (Expr.Idx (Expr.int 5, Expr.int 1));
  expect_eval_error
    (Expr.Idx (Expr.Const (Value.Seq [ Value.Int 1 ]), Expr.int 2))

let test_expr_subst_fv () =
  let e = Expr.Add (Expr.Var "x", Expr.Mul (Expr.Var "y", Expr.Var "x")) in
  check Alcotest.(list string) "free vars once each" [ "x"; "y" ]
    (Expr.free_vars e);
  let e' = Expr.subst_value "x" (Value.Int 1) e in
  check Alcotest.(list string) "after subst" [ "y" ] (Expr.free_vars e');
  check_bool "is_closed" true (Expr.is_closed (Expr.int 4));
  check_bool "equal structural" true (Expr.equal e e);
  check_bool "not equal" false (Expr.equal e e')

(* ---- Chan_expr / Chan_set ------------------------------------------ *)

let test_chan_expr () =
  let ce = Chan_expr.indexed "col" (Expr.Sub (Expr.Var "i", Expr.int 1)) in
  let rho = Valuation.of_list [ ("i", Value.Int 3) ] in
  check_bool "eval" true
    (Channel.equal (Chan_expr.eval rho ce) (Channel.indexed "col" 2));
  check Alcotest.(option (module Channel)) "eval_opt open" None
    (Chan_expr.eval_opt ce);
  check_bool "closed after subst" true
    (Chan_expr.is_closed (Chan_expr.subst_value "i" (Value.Int 3) ce));
  check Alcotest.(list string) "free vars" [ "i" ] (Chan_expr.free_vars ce);
  check_bool "of_channel round-trip" true
    (Channel.equal
       (Chan_expr.eval Valuation.empty (Chan_expr.of_channel (Channel.indexed "c" 7)))
       (Channel.indexed "c" 7))

let test_chan_set_mem () =
  let set =
    [
      Chan_set.Chan (Chan_expr.simple "wire");
      Chan_set.Family ("col", Vset.Range (0, 3));
      Chan_set.Base "row";
    ]
  in
  check_bool "simple member" true (Chan_set.mem set (Channel.simple "wire"));
  check_bool "family member" true (Chan_set.mem set (Channel.indexed "col" 2));
  check_bool "family excludes" false (Chan_set.mem set (Channel.indexed "col" 9));
  check_bool "base matches any index" true
    (Chan_set.mem set (Channel.indexed "row" 42));
  check_bool "not member" false (Chan_set.mem set (Channel.simple "zzz"));
  check Alcotest.(list string) "base names" [ "wire"; "col"; "row" ]
    (Chan_set.base_names set)

let test_chan_set_open_subscript () =
  (* An unevaluable subscript matches conservatively on the base name. *)
  let set = [ Chan_set.Chan (Chan_expr.indexed "col" (Expr.Var "i")) ] in
  check_bool "conservative match" true
    (Chan_set.mem set (Channel.indexed "col" 5));
  check_bool "other base still excluded" false
    (Chan_set.mem set (Channel.simple "row"));
  check_bool "rho decides exactly" false
    (Chan_set.mem
       ~rho:(Valuation.of_list [ ("i", Value.Int 1) ])
       set (Channel.indexed "col" 5))

(* ---- Process -------------------------------------------------------- *)

let copier_body =
  Process.recv "input" "x" Vset.Nat
    (Process.send "wire" (Expr.Var "x") (Process.ref_ "copier"))

let test_process_subst () =
  (* Input binds x: substitution must stop at the binder. *)
  let p =
    Process.send "out" (Expr.Var "x")
      (Process.recv "c" "x" Vset.Nat (Process.send "out" (Expr.Var "x") Process.Stop))
  in
  let p' = Process.subst_value "x" (Value.Int 9) p in
  match p' with
  | Process.Output (_, Expr.Const (Value.Int 9), Process.Input (_, _, _, Process.Output (_, Expr.Var "x", _))) ->
    ()
  | _ -> Alcotest.failf "wrong substitution result: %a" Process.pp p'

let test_process_free_vars () =
  check Alcotest.(list string) "copier body closed" [] (Process.free_vars copier_body);
  let open_p = Process.send "c" (Expr.Var "z") Process.Stop in
  check Alcotest.(list string) "z free" [ "z" ] (Process.free_vars open_p);
  let shadowed =
    Process.recv "c" "z" Vset.Nat (Process.send "d" (Expr.Var "z") Process.Stop)
  in
  check Alcotest.(list string) "bound z not free" [] (Process.free_vars shadowed);
  let in_subscript =
    Process.Output (Chan_expr.indexed "col" (Expr.Var "i"), Expr.int 0, Process.Stop)
  in
  check Alcotest.(list string) "subscript var free" [ "i" ]
    (Process.free_vars in_subscript)

let test_process_queries () =
  check Alcotest.(list string) "refs" [ "copier" ] (Process.refs copier_body);
  check Alcotest.(list string) "channel bases" [ "input"; "wire" ]
    (Process.channel_bases copier_body);
  check_int "size" 3 (Process.size copier_body);
  check_bool "choice smart constructor" true
    (Process.equal
       (Process.choice [ Process.Stop; Process.Stop; Process.Stop ])
       (Process.Choice (Process.Choice (Process.Stop, Process.Stop), Process.Stop)))

let prop_subst_removes_var =
  qcheck_case "substitution eliminates the variable" process_gen (fun p ->
      let p' = Process.subst_value "x" (Value.Int 0) p in
      not (List.mem "x" (Process.free_vars p')))

(* ---- Defs ----------------------------------------------------------- *)

let test_defs_unfold () =
  let defs =
    Defs.empty
    |> Defs.define "copier" copier_body
    |> Defs.define_array "q" "x" (Vset.Range (0, 3))
         (Process.send "wire" (Expr.Var "x") Process.Stop)
  in
  check_bool "plain unfold" true
    (Process.equal (Defs.unfold defs "copier" None) copier_body);
  check_bool "array unfold substitutes" true
    (Process.equal
       (Defs.unfold defs "q" (Some (Value.Int 2)))
       (Process.send "wire" (Expr.int 2) Process.Stop));
  (match Defs.unfold defs "nope" None with
  | exception Defs.Undefined "nope" -> ()
  | _ -> Alcotest.fail "expected Undefined");
  (match Defs.unfold defs "q" None with
  | exception Defs.Bad_argument _ -> ()
  | _ -> Alcotest.fail "array needs an argument");
  (match Defs.unfold defs "copier" (Some (Value.Int 1)) with
  | exception Defs.Bad_argument _ -> ()
  | _ -> Alcotest.fail "plain process takes no argument");
  match Defs.unfold defs "q" (Some (Value.Int 9)) with
  | exception Defs.Bad_argument _ -> ()
  | _ -> Alcotest.fail "out-of-set subscript rejected"

let test_defs_channel_bases () =
  let defs =
    Defs.empty
    |> Defs.define "a" (Process.send "c1" (Expr.int 0) (Process.ref_ "b"))
    |> Defs.define "b" (Process.send "c2" (Expr.int 0) (Process.ref_ "a"))
  in
  check Alcotest.(list string) "follows references" [ "c1"; "c2" ]
    (Defs.channel_bases defs (Process.ref_ "a"))

let test_well_guarded () =
  let ok =
    Defs.empty |> Defs.define "p" (Process.send "c" (Expr.int 0) (Process.ref_ "p"))
  in
  check_bool "guarded ok" true (Result.is_ok (Defs.well_guarded ok));
  let bad = Defs.empty |> Defs.define "p" (Process.ref_ "p") in
  check_bool "self loop rejected" true (Result.is_error (Defs.well_guarded bad));
  let mutual_bad =
    Defs.empty
    |> Defs.define "p" (Process.Choice (Process.Stop, Process.ref_ "r"))
    |> Defs.define "r" (Process.ref_ "p")
  in
  check_bool "mutual unguarded rejected" true
    (Result.is_error (Defs.well_guarded mutual_bad));
  let alias_ok =
    Defs.empty
    |> Defs.define "p" (Process.ref_ "r")
    |> Defs.define "r" (Process.send "c" (Expr.int 0) (Process.ref_ "p"))
  in
  check_bool "acyclic alias accepted" true
    (Result.is_ok (Defs.well_guarded alias_ok))

(* ---- Valuation ------------------------------------------------------ *)

let test_valuation () =
  let v = Valuation.of_list [ ("x", Value.Int 1) ] in
  check Alcotest.(option (module Value)) "find" (Some (Value.Int 1))
    (Valuation.find_opt "x" v);
  check Alcotest.(option (module Value)) "miss" None (Valuation.find_opt "y" v);
  check_bool "mem" true (Valuation.mem "x" v);
  check_bool "remove" false (Valuation.mem "x" (Valuation.remove "x" v));
  check_int "override keeps single binding" 1
    (List.length (Valuation.bindings (Valuation.add "x" (Value.Int 2) v)))

let () =
  Alcotest.run "lang"
    [
      ( "vset",
        [
          Alcotest.test_case "membership" `Quick test_vset_mem;
          Alcotest.test_case "enumeration" `Quick test_vset_enumerate;
        ] );
      ( "expr",
        [
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          Alcotest.test_case "subst and free vars" `Quick test_expr_subst_fv;
        ] );
      ( "channels",
        [
          Alcotest.test_case "channel expressions" `Quick test_chan_expr;
          Alcotest.test_case "channel sets" `Quick test_chan_set_mem;
          Alcotest.test_case "open subscripts" `Quick test_chan_set_open_subscript;
        ] );
      ( "process",
        [
          Alcotest.test_case "substitution respects binding" `Quick test_process_subst;
          Alcotest.test_case "free variables" `Quick test_process_free_vars;
          Alcotest.test_case "queries" `Quick test_process_queries;
          prop_subst_removes_var;
        ] );
      ( "defs",
        [
          Alcotest.test_case "unfold" `Quick test_defs_unfold;
          Alcotest.test_case "channel bases across refs" `Quick test_defs_channel_bases;
          Alcotest.test_case "guardedness" `Quick test_well_guarded;
        ] );
      ("valuation", [ Alcotest.test_case "operations" `Quick test_valuation ]);
    ]
