(* Algebraic laws of the trace model, checked denotationally on random
   processes and random (guarded, mutually recursive) definitions.
   These are the identities §3's operators validate — the model theory
   behind the inference rules. *)

open Csp
open Test_support

let sampler = Sampler.nat_bound 2
let dcfg ?(defs = Defs.empty) () = Denote.config ~sampler defs
let denote ?defs p = Denote.denote (dcfg ?defs ()) ~depth:4 p
let eq ?defs p q = Closure.equal (denote ?defs p) (denote ?defs q)

(* ---- laws of the alternative ---------------------------------------- *)

let prop_choice_commutative =
  qcheck_case "P|Q = Q|P" QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) -> eq (Process.Choice (p, q)) (Process.Choice (q, p)))

let prop_choice_associative =
  qcheck_case "(P|Q)|R = P|(Q|R)"
    QCheck2.Gen.(triple process_gen process_gen process_gen)
    (fun (p, q, r) ->
      eq
        (Process.Choice (Process.Choice (p, q), r))
        (Process.Choice (p, Process.Choice (q, r))))

let prop_choice_idempotent =
  qcheck_case "P|P = P" process_gen (fun p -> eq (Process.Choice (p, p)) p)

let prop_choice_unit =
  qcheck_case "STOP|P = P (the §4 identity)" process_gen (fun p ->
      eq (Process.Choice (Process.Stop, p)) p)

(* ---- laws of prefixing ------------------------------------------------ *)

let prop_prefix_distributes_choice =
  qcheck_case "c!v -> (P|Q) = (c!v -> P) | (c!v -> Q)"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      let pre k = Process.send "a" (Expr.int 0) k in
      eq
        (pre (Process.Choice (p, q)))
        (Process.Choice (pre p, pre q)))

(* ---- laws of parallel composition -------------------------------------- *)

let alphabets p q =
  ( Chan_set.bases (Process.channel_bases p),
    Chan_set.bases (Process.channel_bases q) )

let prop_par_commutative =
  qcheck_case "P ‖ Q = Q ‖ P (alphabets swapped)"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      let xa, ya = alphabets p q in
      eq (Process.Par (xa, ya, p, q)) (Process.Par (ya, xa, q, p)))

let prop_par_stop_unit =
  qcheck_case "P ‖ STOP∅ = P (empty-alphabet unit)" process_gen (fun p ->
      let xa = Chan_set.bases (Process.channel_bases p) in
      eq (Process.Par (xa, Chan_set.empty, p, Process.Stop)) p)

let prop_par_self_sync =
  qcheck_case "deterministic P: P ‖ P = P (full sync)" process_gen (fun p ->
      (* synchronising a process with itself over its whole alphabet
         keeps exactly the traces both copies can do — for any P this is
         the intersection, which equals ⟦P⟧ *)
      let xa = Chan_set.bases (Process.channel_bases p) in
      let d = denote (Process.Par (xa, xa, p, p)) in
      Closure.equal d (Closure.inter (denote p) (denote p))
      && Closure.equal d (denote p))

(* ---- laws of concealment ----------------------------------------------- *)

let prop_hide_merge =
  qcheck_case "chan L1; chan L2; P = chan L1∪L2; P" process_gen (fun p ->
      let l1 = Chan_set.of_names [ "a" ] and l2 = Chan_set.of_names [ "b" ] in
      eq
        (Process.Hide (l1, Process.Hide (l2, p)))
        (Process.Hide (Chan_set.union l1 l2, p)))

let prop_hide_unused_identity =
  qcheck_case "hiding an unused channel is the identity" process_gen (fun p ->
      eq (Process.Hide (Chan_set.of_names [ "zzz" ], p)) p)

let prop_hide_idempotent =
  qcheck_case "chan L; chan L; P = chan L; P" process_gen (fun p ->
      let l = Chan_set.of_names [ "a" ] in
      eq (Process.Hide (l, Process.Hide (l, p))) (Process.Hide (l, p)))

(* ---- laws of recursion (on random guarded definitions) ----------------- *)

let prop_unfold_preserves_denotation =
  qcheck_case ~count:100 "⟦p⟧ = ⟦body(p)⟧ (fixpoint property)" defs_gen
    (fun defs ->
      List.for_all
        (fun n ->
          let body = (Option.get (Defs.lookup defs n)).Defs.body in
          Closure.equal
            (denote ~defs (Process.ref_ n))
            (denote ~defs body))
        (Defs.names defs))

let prop_recursive_defs_guarded =
  qcheck_case ~count:100 "generated definitions are well guarded" defs_gen
    (fun defs -> Result.is_ok (Defs.well_guarded defs))

let prop_recursive_op_vs_deno =
  qcheck_case ~count:100 "operational = denotational on recursive definitions"
    defs_gen (fun defs ->
      let scfg = Step.config ~sampler defs in
      List.for_all
        (fun n ->
          match
            Equiv.operational_vs_denotational ~depth:4 scfg (dcfg ~defs ())
              (Process.ref_ n)
          with
          | Ok () -> true
          | Error _ -> false)
        (Defs.names defs))

let prop_recursive_traces_monotone =
  qcheck_case ~count:100 "recursive traces grow with depth" defs_gen
    (fun defs ->
      let scfg = Step.config ~sampler defs in
      List.for_all
        (fun n ->
          Closure.subset
            (Step.traces scfg ~depth:3 (Process.ref_ n))
            (Step.traces scfg ~depth:5 (Process.ref_ n)))
        (Defs.names defs))

let prop_recursive_lts_finite =
  qcheck_case ~count:100 "recursive definitions explore to finite graphs"
    defs_gen (fun defs ->
      let scfg = Step.config ~sampler defs in
      let lts = Lts.explore ~max_states:500 scfg (Process.ref_ "p0") in
      lts.Lts.complete)

let () =
  Alcotest.run "laws"
    [
      ( "alternative",
        [
          prop_choice_commutative;
          prop_choice_associative;
          prop_choice_idempotent;
          prop_choice_unit;
        ] );
      ("prefix", [ prop_prefix_distributes_choice ]);
      ( "parallel",
        [ prop_par_commutative; prop_par_stop_unit; prop_par_self_sync ] );
      ( "concealment",
        [ prop_hide_merge; prop_hide_unused_identity; prop_hide_idempotent ] );
      ( "recursion",
        [
          prop_recursive_defs_guarded;
          prop_unfold_preserves_denotation;
          prop_recursive_op_vs_deno;
          prop_recursive_traces_monotone;
          prop_recursive_lts_finite;
        ] );
    ]
