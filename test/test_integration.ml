(* End-to-end integration: concrete syntax in, proofs + checks +
   simulation out, mirroring what the cspc CLI does. *)

open Csp
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let protocol_src =
  {|
-- the retransmission protocol (§1.3 / §2.2)
sender = input?x:NAT -> q[x]
q[x:NAT] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
receiver = wire?z:NAT -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver)
protocol = chan wire; (sender [ {input, wire} || {wire, output} ] receiver)
assert sender sat f(wire) <= input
assert forall x:NAT. q[x] sat f(wire) <= x^input
assert receiver sat output <= f(wire)
assert protocol sat output <= input
|}

let tables_of (file : Parser.file) =
  Tactic.tables
    ~invariants:
      (List.filter_map
         (function Parser.Assert_plain (n, a) -> Some (n, a) | _ -> None)
         file.Parser.decls)
    ~array_invariants:
      (List.filter_map
         (function
           | Parser.Assert_array (q, x, m, a) -> Some (q, (x, m, a))
           | _ -> None)
         file.Parser.decls)
    ()

let test_protocol_pipeline () =
  let file = Parser.parse_file_exn protocol_src in
  let tables = tables_of file in
  let ctx = Sequent.context file.Parser.defs in
  (* prove every declaration *)
  List.iter
    (fun decl ->
      let j =
        match decl with
        | Parser.Assert_plain (n, a) -> Sequent.Holds (Process.ref_ n, a)
        | Parser.Assert_array (q, x, m, a) -> Sequent.Holds_all (q, x, m, a)
      in
      match Tactic.prove_and_check ~tables ctx j with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: %s" (Sequent.judgment_to_string j) m)
    file.Parser.decls;
  (* bounded-check the top-level claim *)
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) file.Parser.defs in
  (match
     Sat.check ~depth:5 cfg (Process.ref_ "protocol")
       (Assertion.Prefix (Term.chan "output", Term.chan "input"))
   with
  | Sat.Holds _ -> ()
  | Sat.Fails { trace } -> Alcotest.failf "refuted on %a" Trace.pp trace);
  (* and run it *)
  let r =
    Csp_sim.Runner.run
      ~scheduler:(Scheduler.uniform ~seed:1)
      ~max_steps:500 cfg (Process.ref_ "protocol")
  in
  check_bool "delivered messages" true
    (Stats.count r.Csp_sim.Runner.stats (Channel.simple "output") > 10)

let test_parsed_equals_programmatic () =
  (* the parsed protocol coincides with the library's Paper module *)
  let file = Parser.parse_file_exn protocol_src in
  List.iter
    (fun n ->
      let parsed = Option.get (Defs.lookup file.Parser.defs n) in
      let built = Option.get (Defs.lookup Paper.Protocol.defs n) in
      check_bool (n ^ " equal") true
        (Process.equal parsed.Defs.body built.Defs.body))
    [ "sender"; "q"; "receiver" ]

let test_mixed_semantics_agreement () =
  (* operational and denotational semantics agree on the parsed network *)
  let file = Parser.parse_file_exn protocol_src in
  let sampler = Sampler.nat_bound 2 in
  let network =
    match (Option.get (Defs.lookup file.Parser.defs "protocol")).Defs.body with
    | Process.Hide (_, net) -> net
    | p -> p
  in
  match
    Equiv.operational_vs_denotational ~depth:4
      (Step.config ~sampler file.Parser.defs)
      (Denote.config ~sampler file.Parser.defs)
      network
  with
  | Ok () -> ()
  | Error s -> Alcotest.failf "semantics disagree on %a" Trace.pp s

let test_printed_file_same_proofs () =
  (* printing and reparsing the definitions preserves provability *)
  let file = Parser.parse_file_exn protocol_src in
  let file2 = Parser.parse_file_exn (Printer.defs file.Parser.defs) in
  let tables = tables_of file in
  let ctx = Sequent.context file2.Parser.defs in
  match
    Tactic.prove_and_check ~tables ctx
      (Sequent.Holds
         (Process.ref_ "protocol",
          Assertion.Prefix (Term.chan "output", Term.chan "input")))
  with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_faulty_variant_caught () =
  (* a deliberately broken receiver (acknowledges but delivers a constant)
     refutes the protocol specification *)
  let src =
    {|
sender = input?x:NAT -> q[x]
q[x:NAT] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
receiver = wire?z:NAT -> (wire!ACK -> output!0 -> receiver | wire!NACK -> receiver)
protocol = chan wire; (sender [ {input, wire} || {wire, output} ] receiver)
|}
  in
  let file = Parser.parse_file_exn src in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) file.Parser.defs in
  match
    Sat.check ~depth:5 cfg (Process.ref_ "protocol")
      (Assertion.Prefix (Term.chan "output", Term.chan "input"))
  with
  | Sat.Fails _ -> ()
  | Sat.Holds _ -> Alcotest.fail "the broken receiver must be caught"

let test_faulty_variant_unprovable () =
  (* ...and the tactic+checker cannot prove it either: the checker
     refutes an obligation *)
  let src =
    {|
receiver = wire?z:NAT -> (wire!ACK -> output!0 -> receiver | wire!NACK -> receiver)
|}
  in
  let file = Parser.parse_file_exn src in
  let spec =
    Assertion.Prefix (Term.chan "output", Term.App ("f", Term.chan "wire"))
  in
  let tables = Tactic.tables ~invariants:[ ("receiver", spec) ] () in
  match
    Tactic.prove_and_check ~tables
      (Sequent.context file.Parser.defs)
      (Sequent.Holds (Process.ref_ "receiver", spec))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsound proof accepted"

let multiplier_csp = {|
mult[i:{1..3}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(i*x + y) -> mult[i]
zeroes = col[0]!0 -> zeroes
last   = col[3]?y:NAT -> output!y -> last
stage12  = mult[1] [ {row[1], col[0], col[1]} || {row[2], col[1], col[2]} ] mult[2]
stage123 = stage12 [ {row[1..2], col[0..2]} || {row[3], col[2], col[3]} ] mult[3]
pipeline = zeroes  [ {col[0]} || {row[1..3], col[0..3]} ] stage123
network  = pipeline [ {row[1..3], col[0..3]} || {col[3], output} ] last
multiplier = chan col[0..3]; network
|}

let test_multiplier_csp_matches_library () =
  (* the concrete-syntax multiplier (v[i] encoded as i) and the
     programmatic one (v = [1;2;3] as a constant vector) are different
     terms with the same behaviour *)
  let file = Parser.parse_file_exn multiplier_csp in
  let m = Paper.Multiplier.default in
  let sampler = Sampler.nat_bound 2 in
  let parsed_traces =
    Step.traces (Step.config ~sampler file.Parser.defs) ~depth:6
      (Process.ref_ "network")
  in
  let library_traces =
    Step.traces (Step.config ~sampler m.Paper.Multiplier.defs) ~depth:6
      m.Paper.Multiplier.network
  in
  check_bool "identical trace sets" true
    (Closure.equal parsed_traces library_traces);
  (* and the paper assertion holds of the parsed network too *)
  match
    Sat.check ~nat_bound:8 ~depth:6
      (Step.config ~sampler file.Parser.defs)
      (Process.ref_ "network") m.Paper.Multiplier.spec
  with
  | Sat.Holds _ -> ()
  | Sat.Fails { trace } -> Alcotest.failf "refuted on %a" Trace.pp trace

let test_buffer_chain_integration () =
  (* scaling: prove the 6-stage chain parsed from generated syntax *)
  let n = 6 in
  let defs, chain = Paper.Copier.chain_defs n in
  let printed = Printer.defs defs in
  let file = Parser.parse_file_exn printed in
  check_int "all stages survive printing" n
    (List.length (Defs.names file.Parser.defs));
  let stage_spec i =
    Assertion.Prefix
      ( Term.Chan (Chan_expr.indexed "c" (Expr.int i)),
        Term.Chan (Chan_expr.indexed "c" (Expr.int (i - 1))) )
  in
  let tables =
    Tactic.tables
      ~invariants:(List.init n (fun i -> (Paper.Copier.stage_name (i + 1), stage_spec (i + 1))))
      ()
  in
  match
    Tactic.prove_and_check ~tables
      (Sequent.context file.Parser.defs)
      (Sequent.Holds (chain, Paper.Copier.chain_spec n))
  with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "integration"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse-prove-check-run" `Slow test_protocol_pipeline;
          Alcotest.test_case "parsed = programmatic" `Quick
            test_parsed_equals_programmatic;
          Alcotest.test_case "semantics agree" `Slow test_mixed_semantics_agreement;
          Alcotest.test_case "print preserves proofs" `Slow
            test_printed_file_same_proofs;
        ] );
      ( "fault-detection",
        [
          Alcotest.test_case "broken receiver refuted" `Quick
            test_faulty_variant_caught;
          Alcotest.test_case "broken receiver unprovable" `Quick
            test_faulty_variant_unprovable;
        ] );
      ( "scaling",
        [ Alcotest.test_case "6-stage chain" `Slow test_buffer_chain_integration ] );
      ( "multiplier",
        [
          Alcotest.test_case "concrete = programmatic" `Slow
            test_multiplier_csp_matches_library;
        ] );
    ]
