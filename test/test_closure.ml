(* Prefix closures: set operations, and the §3.1 theorems as executable
   properties — prefix-closedness of every operator, distributivity
   through unions, and the projection characterisation of parallel
   composition. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a1 = ev "a" 1
let b2 = ev "b" 2
let c3 = ev "c" 3

(* Prefix-closedness of an explicit trace list. *)
let closed_as_set t =
  let traces = Closure.to_traces t in
  List.for_all
    (fun s -> List.for_all (fun p -> Closure.mem p t) (Trace.prefixes s))
    traces

let test_empty () =
  check_int "only the empty trace" 1 (Closure.cardinal Closure.empty);
  check_bool "mem empty" true (Closure.mem [] Closure.empty);
  check_bool "nothing else" false (Closure.mem [ a1 ] Closure.empty);
  check_int "depth" 0 (Closure.depth Closure.empty)

let test_prefix_op () =
  let t = Closure.prefix a1 (Closure.prefix b2 Closure.empty) in
  check_bool "member" true (Closure.mem [ a1; b2 ] t);
  check_bool "prefix member" true (Closure.mem [ a1 ] t);
  check_bool "empty member" true (Closure.mem [] t);
  check_bool "wrong order rejected" false (Closure.mem [ b2; a1 ] t);
  check_int "cardinal" 3 (Closure.cardinal t);
  check_int "depth" 2 (Closure.depth t)

let test_add_of_traces () =
  let t = Closure.of_traces [ [ a1; b2 ]; [ a1; c3 ]; [ b2 ] ] in
  check_int "nodes" 5 (Closure.cardinal t);
  check_bool "closed" true (closed_as_set t);
  check_int "maximal traces" 3 (List.length (Closure.maximal_traces t));
  check_int "all traces" 5 (List.length (Closure.to_traces t))

let test_union_inter () =
  let t1 = Closure.of_traces [ [ a1; b2 ] ]
  and t2 = Closure.of_traces [ [ a1; c3 ] ] in
  let u = Closure.union t1 t2 in
  check_bool "union has both" true
    (Closure.mem [ a1; b2 ] u && Closure.mem [ a1; c3 ] u);
  let i = Closure.inter t1 t2 in
  check_bool "inter has common prefix" true (Closure.mem [ a1 ] i);
  check_bool "inter drops divergence" false (Closure.mem [ a1; b2 ] i);
  check_int "inter size" 2 (Closure.cardinal i)

let test_truncate () =
  let t = Closure.of_traces [ [ a1; b2; c3 ] ] in
  let t2 = Closure.truncate 2 t in
  check_int "depth cut" 2 (Closure.depth t2);
  check_bool "short traces kept" true (Closure.mem [ a1; b2 ] t2);
  check_bool "idempotent" true (Closure.equal t2 (Closure.truncate 2 t2))

let test_hide () =
  let t = Closure.of_traces [ [ a1; b2; a1 ]; [ b2; b2 ] ] in
  let h = Closure.hide (fun c -> Channel.base c = "b") t in
  check_bool "b gone" true (Closure.mem [ a1; a1 ] h);
  check_bool "only a remains" false
    (List.exists
       (fun s -> List.exists (fun (e : Event.t) -> Channel.base e.Event.chan = "b") s)
       (Closure.to_traces h));
  check_bool "result closed" true (closed_as_set h);
  let r = Closure.restrict (fun c -> Channel.base c = "b") t in
  check_bool "restrict keeps only b" true (Closure.mem [ b2; b2 ] r)

let test_interleave () =
  let t = Closure.of_traces [ [ a1 ] ] in
  let i = Closure.interleave ~events:[ c3 ] ~extra:1 t in
  check_bool "c before" true (Closure.mem [ c3; a1 ] i);
  check_bool "c after" true (Closure.mem [ a1; c3 ] i);
  check_bool "original kept" true (Closure.mem [ a1 ] i);
  check_bool "budget respected" false (Closure.mem [ c3; c3 ] i)

(* Parallel composition: sync on shared channels, interleave otherwise. *)
let test_par_sync () =
  let in_a c = Channel.base c = "a" in
  let in_ab c = in_a c || Channel.base c = "b" in
  (* P = <a.1 b.2>, Q = <a.1 c.3>, shared alphabet {a} *)
  let p = Closure.of_traces [ [ a1; b2 ] ]
  and q = Closure.of_traces [ [ a1; c3 ] ] in
  let pq = Closure.par ~in_x:in_ab ~in_y:(fun c -> in_a c || Channel.base c = "c") p q in
  check_bool "synced then interleaved" true (Closure.mem [ a1; b2; c3 ] pq);
  check_bool "other interleaving" true (Closure.mem [ a1; c3; b2 ] pq);
  check_bool "a happens once" false (Closure.mem [ a1; a1 ] pq);
  check_bool "b cannot precede sync" false (Closure.mem [ b2 ] pq);
  check_bool "closed" true (closed_as_set pq)

let test_par_blocking () =
  (* Disagreeing on a shared channel's value blocks both. *)
  let p = Closure.of_traces [ [ ev "a" 1 ] ]
  and q = Closure.of_traces [ [ ev "a" 2 ] ] in
  let in_a c = Channel.base c = "a" in
  let pq = Closure.par ~in_x:in_a ~in_y:in_a p q in
  check_int "deadlock: only empty trace" 1 (Closure.cardinal pq)

let test_first_difference () =
  let t1 = Closure.of_traces [ [ a1; b2 ] ]
  and t2 = Closure.of_traces [ [ a1 ] ] in
  check Alcotest.(option trace_testable) "difference found" (Some [ a1; b2 ])
    (Closure.first_difference t1 t2);
  check Alcotest.(option trace_testable) "equal: none" None
    (Closure.first_difference t1 t1)

let test_events () =
  let t = Closure.of_traces [ [ a1; b2 ]; [ c3 ] ] in
  check_int "distinct events" 3 (List.length (Closure.events t))

(* ---- §3.1 theorems as properties ----------------------------------- *)

let prop_ops_preserve_closure =
  qcheck_case "every operator yields a prefix closure"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (t1, t2) ->
      let in_a c = Channel.base c = "a" in
      closed_as_set (Closure.union t1 t2)
      && closed_as_set (Closure.inter t1 t2)
      && closed_as_set (Closure.prefix a1 t1)
      && closed_as_set (Closure.hide in_a t1)
      && closed_as_set (Closure.truncate 2 t1)
      && closed_as_set (Closure.par ~in_x:(fun _ -> true) ~in_y:in_a t1 t2))

let prop_prefix_distributes =
  (* (a → ∪ Px) = ∪ (a → Px) — the distributivity theorem of §3.1 *)
  qcheck_case "prefix distributes through union"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (t1, t2) ->
      Closure.equal
        (Closure.prefix a1 (Closure.union t1 t2))
        (Closure.union (Closure.prefix a1 t1) (Closure.prefix a1 t2)))

let prop_hide_distributes =
  qcheck_case "hiding distributes through union"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (t1, t2) ->
      let in_a c = Channel.base c = "a" in
      Closure.equal
        (Closure.hide in_a (Closure.union t1 t2))
        (Closure.union (Closure.hide in_a t1) (Closure.hide in_a t2)))

let prop_par_distributes_left =
  qcheck_case "parallel distributes through union on the left"
    QCheck2.Gen.(triple closure_gen closure_gen closure_gen)
    (fun (t1, t2, q) ->
      let in_x _ = true and in_y c = Channel.base c = "a" in
      Closure.equal
        (Closure.par ~in_x ~in_y (Closure.union t1 t2) q)
        (Closure.union (Closure.par ~in_x ~in_y t1 q)
           (Closure.par ~in_x ~in_y t2 q)))

let prop_union_laws =
  qcheck_case "union is idempotent, commutative, associative"
    QCheck2.Gen.(triple closure_gen closure_gen closure_gen)
    (fun (a, b, c) ->
      Closure.equal (Closure.union a a) a
      && Closure.equal (Closure.union a b) (Closure.union b a)
      && Closure.equal
           (Closure.union a (Closure.union b c))
           (Closure.union (Closure.union a b) c))

let prop_subset_union =
  qcheck_case "a ⊆ a ∪ b and inter ⊆ union"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (a, b) ->
      Closure.subset a (Closure.union a b)
      && Closure.subset (Closure.inter a b) (Closure.union a b))

let prop_mem_to_traces_agree =
  qcheck_case "to_traces enumerates exactly the members"
    QCheck2.Gen.(pair closure_gen trace_gen)
    (fun (t, s) ->
      let members = Closure.to_traces t in
      Closure.mem s t = List.exists (Trace.equal s) members)

(* The paper's definition: traces of (P ‖ Q) project onto traces of the
   operands. *)
let prop_par_projection =
  qcheck_case "par traces project onto operand traces"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (p, q) ->
      let in_x c = Channel.base c <> "c" (* X = {a, b, d} *)
      and in_y c = Channel.base c <> "b" (* Y = {a, c, d} *) in
      (* the paper's precondition: P communicates only on X, Q only on Y *)
      let p = Closure.restrict in_x p and q = Closure.restrict in_y q in
      let pq = Closure.par ~in_x ~in_y p q in
      List.for_all
        (fun s ->
          Closure.mem (Trace.restrict in_x s) p
          && Closure.mem (Trace.restrict in_y s) q)
        (Closure.to_traces pq))

(* Cross-check par against the paper's (P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))
   construction on a bounded alphabet. *)
let prop_par_vs_interleave_inter =
  qcheck_case ~count:60 "par = (P ⇑ Y−X) ∩ (Q ⇑ X−Y) up to depth"
    QCheck2.Gen.(
      pair
        (map Closure.of_traces (list_size (int_range 0 3) (list_size (int_range 0 3) event_gen)))
        (map Closure.of_traces (list_size (int_range 0 3) (list_size (int_range 0 3) event_gen))))
    (fun (p0, q0) ->
      (* Restrict operands to their alphabets first. *)
      let in_x c = Channel.base c = "a" || Channel.base c = "b" in
      let in_y c = Channel.base c = "a" || Channel.base c = "c" in
      let p = Closure.restrict in_x p0 and q = Closure.restrict in_y q0 in
      let direct = Closure.par ~in_x ~in_y p q in
      (* events of the complement alphabets, sampled from the operands *)
      let y_minus_x =
        List.filter (fun (e : Event.t) -> not (in_x e.Event.chan)) (Closure.events q)
      in
      let x_minus_y =
        List.filter (fun (e : Event.t) -> not (in_y e.Event.chan)) (Closure.events p)
      in
      let depth = max (Closure.depth p) (Closure.depth q) * 2 in
      let via_interleave =
        Closure.inter
          (Closure.interleave ~events:y_minus_x ~extra:depth p)
          (Closure.interleave ~events:x_minus_y ~extra:depth q)
      in
      (* The interleaving construction bounds the padding, so compare at
         the depth both sides cover. *)
      Closure.equal
        (Closure.truncate depth direct)
        (Closure.truncate depth via_interleave))

(* ---- agreement with the retained naive reference ------------------- *)

(* Every memoised / hash-consed operation must compute the same trace
   set as the pre-hash-consing implementation ([Closure_ref], the old
   unshared trie kept as an executable specification). *)

let sorted_traces_c c = List.sort Trace.compare (Closure.to_traces c)
let sorted_traces_r r = List.sort Trace.compare (Closure_ref.to_traces r)
let agrees c r = List.equal Trace.equal (sorted_traces_c c) (sorted_traces_r r)

let prop_ref_binary_ops =
  qcheck_case "hash-consed union/inter agree with the naive reference"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (a, b) ->
      let ra = Closure_ref.of_closure a and rb = Closure_ref.of_closure b in
      agrees (Closure.union a b) (Closure_ref.union ra rb)
      && agrees (Closure.inter a b) (Closure_ref.inter ra rb))

let prop_ref_unary_ops =
  qcheck_case "hash-consed hide/truncate/prefix agree with the reference"
    QCheck2.Gen.(pair closure_gen (int_range 0 4))
    (fun (a, n) ->
      let ra = Closure_ref.of_closure a in
      let in_a c = Channel.base c = "a" in
      agrees (Closure.hide in_a a) (Closure_ref.hide in_a ra)
      && agrees (Closure.truncate n a) (Closure_ref.truncate n ra)
      && agrees (Closure.prefix a1 a) (Closure_ref.prefix a1 ra))

let prop_ref_par_interleave =
  qcheck_case ~count:80 "hash-consed par/interleave agree with the reference"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (a, b) ->
      let in_x c = Channel.base c <> "c" and in_y c = Channel.base c <> "b" in
      let ra = Closure_ref.of_closure a and rb = Closure_ref.of_closure b in
      agrees (Closure.par ~in_x ~in_y a b) (Closure_ref.par ~in_x ~in_y ra rb)
      && agrees
           (Closure.interleave ~events:[ c3 ] ~extra:2 a)
           (Closure_ref.interleave ~events:[ c3 ] ~extra:2 ra))

let prop_ref_predicates =
  qcheck_case "subset/equal/mem/cardinal/depth agree with the reference"
    QCheck2.Gen.(triple closure_gen closure_gen trace_gen)
    (fun (a, b, s) ->
      let ra = Closure_ref.of_closure a and rb = Closure_ref.of_closure b in
      Closure.subset a b = Closure_ref.subset ra rb
      && Closure.equal a b = Closure_ref.equal ra rb
      && Closure.mem s a = Closure_ref.mem s ra
      && Closure.cardinal a = Closure_ref.cardinal ra
      && Closure.depth a = Closure_ref.depth ra)

let prop_ref_union_all =
  (* the balanced reduction vs the reference's left fold *)
  qcheck_case "union_all (balanced) agrees with the reference (left fold)"
    QCheck2.Gen.(list_size (int_range 0 7) closure_gen)
    (fun ts ->
      agrees
        (Closure.union_all ts)
        (Closure_ref.union_all (List.map Closure_ref.of_closure ts)))

let prop_hashcons_physical_equality =
  (* the point of the unique table: equal sets are the same pointer,
     whatever order they were built in *)
  qcheck_case "of_traces is order-insensitive up to physical equality"
    QCheck2.Gen.(list_size (int_range 0 6) trace_gen)
    (fun ss ->
      let a = Closure.of_traces ss and b = Closure.of_traces (List.rev ss) in
      Closure.equal a b && Closure.id a = Closure.id b)

let prop_fold_traces =
  qcheck_case "fold_traces enumerates to_traces in order" closure_gen
    (fun a ->
      List.equal Trace.equal (Closure.to_traces a)
        (List.rev (Closure.fold_traces (fun s acc -> s :: acc) a [])))

let prop_first_difference_sound =
  qcheck_case "first_difference returns a member of exactly one side"
    QCheck2.Gen.(pair closure_gen closure_gen)
    (fun (a, b) ->
      match Closure.first_difference a b with
      | None -> Closure.equal a b
      | Some s -> Closure.mem s a <> Closure.mem s b)

(* ---- stats: counters and memo-table observability -------------------- *)

(* Two closures guaranteed distinct from each other (and from anything
   hash-consing may share with other tests). *)
let stats_left () = Closure.of_traces [ [ a1; b2 ]; [ a1; c3 ] ]
let stats_right () = Closure.of_traces [ [ b2; a1 ]; [ c3 ] ]

let test_stats_monotone () =
  let s0 = Closure.stats () in
  let l = stats_left () and r = stats_right () in
  ignore (Closure.union l r);
  ignore (Closure.inter l r);
  ignore (Closure.truncate 1 l);
  ignore (Closure.subset l r);
  let s1 = Closure.stats () in
  check_bool "nodes never decrease" true (s1.Closure.nodes >= s0.Closure.nodes);
  check_bool "hits never decrease" true
    (s1.Closure.memo_hits >= s0.Closure.memo_hits);
  check_bool "misses never decrease" true
    (s1.Closure.memo_misses >= s0.Closure.memo_misses);
  check_bool "the operations left a footprint" true
    (s1.Closure.memo_hits + s1.Closure.memo_misses
    > s0.Closure.memo_hits + s0.Closure.memo_misses)

(* On cold memo tables the first run of each operation records misses;
   repeating the very same operations is pure hits — and creates no new
   nodes, because every result is already interned. *)
let test_stats_memo_observable () =
  let l = stats_left () and r = stats_right () in
  let ops () =
    ignore (Closure.union l r);
    ignore (Closure.inter l r);
    ignore (Closure.truncate 1 l)
  in
  Closure.clear_caches ();
  let s0 = Closure.stats () in
  ops ();
  let s1 = Closure.stats () in
  check_bool "cold tables: misses recorded" true
    (s1.Closure.memo_misses > s0.Closure.memo_misses);
  ops ();
  let s2 = Closure.stats () in
  check_bool "warm tables: hits recorded" true
    (s2.Closure.memo_hits > s1.Closure.memo_hits);
  check_int "warm tables: no new misses" s1.Closure.memo_misses
    s2.Closure.memo_misses;
  check_int "warm tables: no new nodes" s1.Closure.nodes s2.Closure.nodes

let test_stats_clear_caches () =
  let l = stats_left () and r = stats_right () in
  ignore (Closure.union l r);
  (* warm up, then clear: the same union must miss again — the memo
     tables were really emptied — while the unique table survives, so
     no new nodes are created for an already-interned result *)
  Closure.clear_caches ();
  ignore (Closure.union l r);
  let s1 = Closure.stats () in
  Closure.clear_caches ();
  ignore (Closure.union l r);
  let s2 = Closure.stats () in
  check_bool "misses recorded again after clear" true
    (s2.Closure.memo_misses > s1.Closure.memo_misses);
  check_int "interned results survive the clear" s1.Closure.nodes
    s2.Closure.nodes

let () =
  Alcotest.run "closure"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "prefix operator" `Quick test_prefix_op;
          Alcotest.test_case "add / of_traces" `Quick test_add_of_traces;
          Alcotest.test_case "union / inter" `Quick test_union_inter;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "hide / restrict" `Quick test_hide;
          Alcotest.test_case "interleave" `Quick test_interleave;
          Alcotest.test_case "first difference" `Quick test_first_difference;
          Alcotest.test_case "events" `Quick test_events;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "synchronisation" `Quick test_par_sync;
          Alcotest.test_case "value disagreement blocks" `Quick test_par_blocking;
          prop_par_projection;
          prop_par_vs_interleave_inter;
        ] );
      ( "theorems(§3.1)",
        [
          prop_ops_preserve_closure;
          prop_prefix_distributes;
          prop_hide_distributes;
          prop_par_distributes_left;
          prop_union_laws;
          prop_subset_union;
          prop_mem_to_traces_agree;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters monotone" `Quick test_stats_monotone;
          Alcotest.test_case "memoisation observable" `Quick
            test_stats_memo_observable;
          Alcotest.test_case "clear_caches resets memo tables" `Quick
            test_stats_clear_caches;
        ] );
      ( "hash-consing agreement",
        [
          prop_ref_binary_ops;
          prop_ref_unary_ops;
          prop_ref_par_interleave;
          prop_ref_predicates;
          prop_ref_union_all;
          prop_hashcons_physical_equality;
          prop_fold_traces;
          prop_first_difference_sound;
        ] );
    ]
