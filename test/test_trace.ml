(* Unit and property tests for the trace substrate:
   values, channels, events, traces, histories, sequence operations. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Value ---------------------------------------------------------- *)

let test_value_order () =
  check_bool "int < sym" true (Value.compare (Value.Int 5) Value.ack < 0);
  check_bool "equal ints" true (Value.equal (Value.Int 3) (Value.Int 3));
  check_bool "distinct syms" false (Value.equal Value.ack Value.nack);
  check_bool "tuple order lexicographic" true
    (Value.compare
       (Value.Tuple [ Value.Int 1; Value.Int 2 ])
       (Value.Tuple [ Value.Int 1; Value.Int 3 ])
    < 0);
  check_bool "shorter seq first" true
    (Value.compare (Value.Seq [ Value.Int 1 ])
       (Value.Seq [ Value.Int 1; Value.Int 0 ])
    < 0)

let test_value_accessors () =
  check Alcotest.(option int) "to_int" (Some 7) (Value.to_int (Value.Int 7));
  check Alcotest.(option int) "to_int sym" None (Value.to_int Value.ack);
  check_bool "is_int" true (Value.is_int (Value.Int 0));
  check Alcotest.string "pp seq" "<1, ACK>"
    (Value.to_string (Value.Seq [ Value.Int 1; Value.ack ]))

let value_order_total =
  qcheck_case "value compare antisymmetric"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || c1 * c2 < 0)

let value_order_trans =
  qcheck_case "value compare transitive"
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      if Value.compare a b <= 0 && Value.compare b c <= 0 then
        Value.compare a c <= 0
      else true)

(* ---- Channel -------------------------------------------------------- *)

let test_channel () =
  check_bool "simple equal" true
    (Channel.equal (Channel.simple "wire") (Channel.simple "wire"));
  check_bool "index distinguishes" false
    (Channel.equal (Channel.indexed "col" 0) (Channel.indexed "col" 1));
  check_bool "name distinguishes" false
    (Channel.equal (Channel.simple "col") (Channel.indexed "col" 0));
  check Alcotest.string "pp indexed" "col[2]"
    (Channel.to_string (Channel.indexed "col" 2));
  check Alcotest.string "base" "col" (Channel.base (Channel.indexed "col" 2))

let test_channel_set () =
  let s =
    Channel.Set.of_list
      [ Channel.indexed "c" 0; Channel.indexed "c" 0; Channel.simple "d" ]
  in
  check_int "set dedups" 2 (Channel.Set.cardinal s)

(* ---- Trace ---------------------------------------------------------- *)

let t1 = [ ev "input" 27; ev "wire" 27; ev "input" 0 ]

let test_trace_prefix () =
  check_bool "empty prefix of all" true (Trace.is_prefix [] t1);
  check_bool "self prefix" true (Trace.is_prefix t1 t1);
  check_bool "proper prefix" true
    (Trace.is_prefix [ ev "input" 27 ] t1);
  check_bool "not prefix (value)" false
    (Trace.is_prefix [ ev "input" 3 ] t1);
  check_bool "longer not prefix" false
    (Trace.is_prefix (t1 @ [ ev "x" 0 ]) t1)

let test_trace_hide () =
  let in_wire c = Channel.equal c (Channel.simple "wire") in
  check trace_testable "hide removes wire"
    [ ev "input" 27; ev "input" 0 ]
    (Trace.hide in_wire t1);
  check trace_testable "restrict keeps wire" [ ev "wire" 27 ]
    (Trace.restrict in_wire t1);
  check trace_testable "hide nothing" t1 (Trace.hide (fun _ -> false) t1)

let test_trace_prefixes () =
  check_int "count" 4 (List.length (Trace.prefixes t1));
  check trace_testable "first is empty" [] (List.hd (Trace.prefixes t1));
  check trace_testable "last is whole" t1
    (List.nth (Trace.prefixes t1) 3)

let test_trace_channels () =
  check_int "two channels" 2 (Channel.Set.cardinal (Trace.channels t1))

let test_interleavings () =
  let a = [ ev "a" 1 ] and b = [ ev "b" 2 ] in
  check_int "1x1 -> 2" 2 (List.length (Trace.interleavings a b));
  check_int "2x1 -> 3" 3
    (List.length (Trace.interleavings (a @ a) b));
  check_int "with empty" 1 (List.length (Trace.interleavings a []))

let prop_hide_restrict_partition =
  qcheck_case "hide + restrict partition the trace length" trace_gen
    (fun t ->
      let p c = Channel.base c = "a" in
      List.length (Trace.hide p t) + List.length (Trace.restrict p t)
      = List.length t)

let prop_prefixes_are_prefixes =
  qcheck_case "every element of prefixes is a prefix" trace_gen (fun t ->
      List.for_all (fun s -> Trace.is_prefix s t) (Trace.prefixes t))

let prop_prefix_partial_order =
  qcheck_case "prefix order antisymmetry"
    QCheck2.Gen.(pair trace_gen trace_gen)
    (fun (s, t) ->
      if Trace.is_prefix s t && Trace.is_prefix t s then Trace.equal s t
      else true)

(* ---- History -------------------------------------------------------- *)

let test_history_of_trace () =
  (* ch(<input.27, wire.27, input.0, wire.0, input.3>) — §3.3's example *)
  let s =
    [ ev "input" 27; ev "wire" 27; ev "input" 0; ev "wire" 0; ev "input" 3 ]
  in
  let h = History.of_trace s in
  check value_testable "input history"
    (Value.Seq [ Value.Int 27; Value.Int 0; Value.Int 3 ])
    (Value.Seq (History.get h (Channel.simple "input")));
  check value_testable "wire history"
    (Value.Seq [ Value.Int 27; Value.Int 0 ])
    (Value.Seq (History.get h (Channel.simple "wire")));
  check value_testable "other channel empty" (Value.Seq [])
    (Value.Seq (History.get h (Channel.simple "zzz")))

let test_history_set () =
  let h = History.set History.empty (Channel.simple "c") [ Value.Int 1 ] in
  check_int "channels" 1 (List.length (History.channels h));
  let h = History.set h (Channel.simple "c") [] in
  check_int "setting empty removes" 0 (List.length (History.channels h));
  check_bool "empty histories equal" true (History.equal h History.empty)

let prop_extend_agrees_with_of_trace =
  qcheck_case "of_trace (s @ [e]) = extend (of_trace s) e"
    QCheck2.Gen.(pair trace_gen event_gen)
    (fun (s, e) ->
      History.equal
        (History.of_trace (s @ [ e ]))
        (History.extend (History.of_trace s) e))

let prop_history_lengths =
  qcheck_case "sum of history lengths = trace length" trace_gen (fun s ->
      let h = History.of_trace s in
      List.fold_left
        (fun acc c -> acc + List.length (History.get h c))
        0 (History.channels h)
      = List.length s)

(* ---- Seq_ops -------------------------------------------------------- *)

let ints = List.map (fun n -> Value.Int n)

let test_seq_ops () =
  check_bool "is_prefix" true (Seq_ops.is_prefix (ints [ 1 ]) (ints [ 1; 2 ]));
  check_bool "not prefix" false
    (Seq_ops.is_prefix (ints [ 2 ]) (ints [ 1; 2 ]));
  check Alcotest.(option (module Value)) "index 1-based" (Some (Value.Int 5))
    (Seq_ops.index (ints [ 5; 6 ]) 1);
  check Alcotest.(option (module Value)) "index out of range" None
    (Seq_ops.index (ints [ 5; 6 ]) 3);
  check Alcotest.(option (module Value)) "index zero" None
    (Seq_ops.index (ints [ 5; 6 ]) 0);
  check value_testable "take" (Value.Seq (ints [ 1; 2 ]))
    (Value.Seq (Seq_ops.take 2 (ints [ 1; 2; 3 ])));
  check value_testable "drop" (Value.Seq (ints [ 3 ]))
    (Value.Seq (Seq_ops.drop 2 (ints [ 1; 2; 3 ])));
  check value_testable "common_prefix" (Value.Seq (ints [ 1; 2 ]))
    (Value.Seq (Seq_ops.common_prefix (ints [ 1; 2; 3 ]) (ints [ 1; 2; 9 ])));
  check value_testable "alternate" (Value.Seq (ints [ 1; 4; 2; 5; 3 ]))
    (Value.Seq (Seq_ops.alternate (ints [ 1; 2; 3 ]) (ints [ 4; 5 ])))

let prop_take_drop =
  qcheck_case "take n ++ drop n = id"
    QCheck2.Gen.(pair (int_range 0 8) seq_gen)
    (fun (n, s) -> Seq_ops.take n s @ Seq_ops.drop n s = s)

let prop_common_prefix =
  qcheck_case "common_prefix is a prefix of both"
    QCheck2.Gen.(pair seq_gen seq_gen)
    (fun (a, b) ->
      let c = Seq_ops.common_prefix a b in
      Seq_ops.is_prefix c a && Seq_ops.is_prefix c b)

let () =
  Alcotest.run "trace"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          value_order_total;
          value_order_trans;
        ] );
      ( "channel",
        [
          Alcotest.test_case "identity" `Quick test_channel;
          Alcotest.test_case "sets" `Quick test_channel_set;
        ] );
      ( "trace",
        [
          Alcotest.test_case "prefix" `Quick test_trace_prefix;
          Alcotest.test_case "hide/restrict" `Quick test_trace_hide;
          Alcotest.test_case "prefixes" `Quick test_trace_prefixes;
          Alcotest.test_case "channels" `Quick test_trace_channels;
          Alcotest.test_case "interleavings" `Quick test_interleavings;
          prop_hide_restrict_partition;
          prop_prefixes_are_prefixes;
          prop_prefix_partial_order;
        ] );
      ( "history",
        [
          Alcotest.test_case "ch(s) of §3.3" `Quick test_history_of_trace;
          Alcotest.test_case "set/remove" `Quick test_history_set;
          prop_extend_agrees_with_of_trace;
          prop_history_lengths;
        ] );
      ( "seq_ops",
        [
          Alcotest.test_case "operations" `Quick test_seq_ops;
          prop_take_drop;
          prop_common_prefix;
        ] );
    ]
