(* Invariant discovery: observation, conjecture templates, verification. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let scfg defs = Step.config ~sampler:(Sampler.nat_bound 2) defs

let proved_assertions results =
  List.filter_map
    (fun c -> if c.Infer.proved then Some c.Infer.assertion else None)
    results

let contains results a = List.exists (Assertion.equal a) results

let test_observe () =
  let hists = Infer.observe (scfg defs_copier) (Process.ref_ "copier") in
  check_bool "non-empty" true (List.length hists > 10);
  check_bool "first history of every run is empty" true
    (List.exists (History.equal History.empty) hists);
  (* every observation satisfies the true invariant *)
  check_bool "observations respect wire <= input" true
    (List.for_all
       (fun hist ->
         Assertion.eval (Term.ctx ~hist ()) Paper.Copier.copier_spec)
       hists)

let test_copier_rediscovered () =
  let results = Infer.infer (scfg defs_copier) ~name:"copier" (Process.ref_ "copier") in
  let proved = proved_assertions results in
  check_bool "wire <= input proved" true
    (contains proved (Assertion.Prefix (Term.chan "wire", Term.chan "input")));
  check_bool "#input <= #wire + 1 proved" true
    (contains proved
       (Assertion.Cmp
          ( Assertion.Le,
            Term.Len (Term.chan "input"),
            Term.Add (Term.Len (Term.chan "wire"), Term.int 1) )));
  (* the converse prefix must not even be conjectured *)
  check_bool "input <= wire absent" false
    (List.exists
       (fun c ->
         Assertion.equal c.Infer.assertion
           (Assertion.Prefix (Term.chan "input", Term.chan "wire")))
       results)

let test_sender_rediscovers_table_1 () =
  let tables =
    Tactic.tables ~array_invariants:[ ("q", Paper.Protocol.q_spec) ] ()
  in
  let results =
    Infer.infer ~tables (scfg Paper.Protocol.defs) ~name:"sender"
      Paper.Protocol.sender
  in
  check_bool "f(wire) <= input proved (Table 1 found automatically)" true
    (contains (proved_assertions results) Paper.Protocol.sender_spec)

let test_receiver_rediscovered () =
  let results =
    Infer.infer (scfg Paper.Protocol.defs) ~name:"receiver"
      Paper.Protocol.receiver
  in
  check_bool "output <= f(wire) proved" true
    (contains (proved_assertions results) Paper.Protocol.receiver_spec)

let test_unprovable_conjectures_flagged () =
  (* conjectures that survive observation but fail verification must be
     reported as unproved, not silently dropped or claimed *)
  let results = Infer.infer (scfg defs_copier) ~name:"copier" (Process.ref_ "copier") in
  List.iter
    (fun c ->
      match c.Infer.report with
      | Some _ -> check_bool "report only when proved" true c.Infer.proved
      | None -> check_bool "no report when unproved" false c.Infer.proved)
    results

let test_no_false_positives () =
  (* every PROVED invariant must also survive bounded model checking *)
  let cfg = scfg Paper.Protocol.defs in
  let results = Infer.infer cfg ~name:"receiver" Paper.Protocol.receiver in
  List.iter
    (fun a ->
      match Sat.check ~depth:5 cfg Paper.Protocol.receiver a with
      | Sat.Holds _ -> ()
      | Sat.Fails { trace } ->
        Alcotest.failf "proved invariant %a refuted on %a" Assertion.pp a
          Trace.pp trace)
    (proved_assertions results)

let test_conjecture_templates_cover () =
  (* a process with an exact length correspondence gets k = 0 *)
  let defs =
    Defs.empty
    |> Defs.define "echo"
         (Process.recv "a" "x" Vset.Nat
            (Process.send "b" (Expr.Var "x") Process.Stop))
  in
  let cands = Infer.conjecture (scfg defs) (Process.ref_ "echo") in
  check_bool "b <= a conjectured" true
    (contains cands (Assertion.Prefix (Term.chan "b", Term.chan "a")));
  check_bool "#b <= #a + 0 conjectured (strongest k)" true
    (contains cands
       (Assertion.Cmp
          ( Assertion.Le,
            Term.Len (Term.chan "b"),
            Term.Add (Term.Len (Term.chan "a"), Term.int 0) )))

let () =
  Alcotest.run "infer"
    [
      ( "observation",
        [ Alcotest.test_case "random walks" `Quick test_observe ] );
      ( "rediscovery",
        [
          Alcotest.test_case "copier invariants" `Slow test_copier_rediscovered;
          Alcotest.test_case "Table 1 (sender)" `Slow
            test_sender_rediscovers_table_1;
          Alcotest.test_case "receiver" `Slow test_receiver_rediscovered;
        ] );
      ( "honesty",
        [
          Alcotest.test_case "unproved flagged" `Slow
            test_unprovable_conjectures_flagged;
          Alcotest.test_case "no false positives" `Slow test_no_false_positives;
          Alcotest.test_case "template coverage" `Quick
            test_conjecture_templates_cover;
        ] );
    ]
