(* Parameterised-family verification: the assumption-formula engine,
   the Ignore/Project channel abstractions, the counter-abstract
   quotient and whole-family certification — each cross-checked
   against bounded concrete enumeration, the abstract-sound oracle and
   the cspc CLI.  The CI abstraction leg re-runs this suite with
   CSP_TEST_DOMAINS=2, which routes the concrete sides through a
   domain pool. *)

open Csp
open Test_support
module Formula = Abstraction.Formula
module Chanabs = Abstraction.Chanabs
module Counter = Abstraction.Counter
module Family = Abstraction.Family
module Oracle = Csp_testkit.Oracle
module Scenario = Csp_testkit.Scenario
module Gen = Csp_testkit.Gen
module Parser = Csp_syntax.Parser

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* concrete engines honour the CI parallel leg's domain count *)
let domains =
  match Sys.getenv_opt "CSP_TEST_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d >= 1 -> d | _ -> 1)
  | None -> 1

let depth = 4
let engine defs = Engine.create ~depth ~domains ~nat_bound:2 defs

(* ---- formulae ---------------------------------------------------------- *)

let formula_gen : Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atom =
    map2
      (fun c k -> Formula.Atom ("n", c, k))
      (oneofl [ Formula.Le; Formula.Lt; Formula.Ge; Formula.Gt; Formula.Eq; Formula.Ne ])
      (int_range 0 6)
  in
  sized
  @@ fix (fun self s ->
         if s <= 0 then oneof [ atom; oneofl [ Formula.True; Formula.False ] ]
         else
           oneof
             [
               atom;
               map (fun f -> Formula.Not f) (self (s - 1));
               map2 (fun a b -> Formula.And (a, b)) (self (s / 2)) (self (s / 2));
               map2 (fun a b -> Formula.Or (a, b)) (self (s / 2)) (self (s / 2));
               map2 (fun a b -> Formula.Imp (a, b)) (self (s / 2)) (self (s / 2));
             ])

let rec nnf_shape = function
  | Formula.Not _ | Formula.Imp _ -> false
  | Formula.And (a, b) | Formula.Or (a, b) -> nnf_shape a && nnf_shape b
  | Formula.True | Formula.False | Formula.Atom _ -> true

let sample_points = List.init 10 (fun i -> i)

let prop_nnf_equivalent =
  qcheck_case ~count:300 "nnf is Not/Imp-free and eval-equivalent"
    formula_gen (fun f ->
      let g = Formula.nnf f in
      nnf_shape g
      && List.for_all
           (fun v -> Formula.eval [ ("n", v) ] f = Formula.eval [ ("n", v) ] g)
           sample_points)

let prop_roundtrip =
  qcheck_case ~count:300 "to_string/of_string round-trips up to eval"
    formula_gen (fun f ->
      match Formula.of_string (Formula.to_string f) with
      | Error m ->
        QCheck2.Test.fail_reportf "%s does not parse back: %s"
          (Formula.to_string f) m
      | Ok g ->
        List.for_all
          (fun v -> Formula.eval [ ("n", v) ] f = Formula.eval [ ("n", v) ] g)
          sample_points)

let prop_all_sat =
  qcheck_case ~count:300 "all_sat agrees with brute force" formula_gen
    (fun f ->
      let sat = Formula.all_sat ~lo:0 ~hi:8 f in
      let brute =
        List.filter_map
          (fun v ->
            if Formula.eval [ ("n", v) ] f then Some [ ("n", v) ] else None)
          (List.init 9 Fun.id)
      in
      (* formulae without parameters enumerate the empty assignment *)
      if Formula.vars f = [] then
        sat = (if Formula.eval [] f then [ [] ] else [])
      else sat = brute)

let prop_unbounded =
  qcheck_case ~count:300 "unbounded_above matches far evaluation"
    formula_gen (fun f ->
      let far = Formula.max_const f "n" in
      let probe v = Formula.eval [ ("n", v) ] f in
      Formula.unbounded_above ~lo:0 f "n" = probe (max 0 (far + 7)))

let test_formula_parse () =
  (match Formula.of_string "n<=32" with
  | Ok (Formula.Atom ("n", Formula.Le, 32)) -> ()
  | Ok f -> Alcotest.failf "n<=32 parsed as %s" (Formula.to_string f)
  | Error m -> Alcotest.fail m);
  (* reversed atoms normalise onto the parameter *)
  (match Formula.of_string "2 <= n && n <= 16" with
  | Ok (Formula.And (Formula.Atom ("n", Formula.Ge, 2), Formula.Atom ("n", Formula.Le, 16)))
    -> ()
  | Ok f -> Alcotest.failf "conjunction parsed as %s" (Formula.to_string f)
  | Error m -> Alcotest.fail m);
  check_bool "garbage rejected" true
    (match Formula.of_string "n <=" with Error _ -> true | Ok _ -> false);
  check_bool "two-parameter atoms rejected" true
    (match Formula.of_string "n <= k" with Error _ -> true | Ok _ -> false);
  check_int "max_const over both atoms" 16
    (match Formula.of_string "2 <= n && n <= 16" with
    | Ok f -> Formula.max_const f "n"
    | Error m -> Alcotest.fail m)

(* ---- channel abstractions ---------------------------------------------- *)

let parse_defs src =
  match Parser.parse_file src with
  | Ok f -> f.Parser.defs
  | Error m -> Alcotest.fail m

let traces_of defs p =
  Closure.to_traces (Step.traces (Engine.step_config (engine defs)) ~depth p)

let test_ignore_sound () =
  let defs = parse_defs "p = a!0 -> b!0 -> p\nmain = p\n" in
  let p = Process.ref_ "main" in
  match Chanabs.ignore_bases ~bases:[ "a" ] ~bound:2 defs p with
  | Error m -> Alcotest.fail m
  | Ok (defs', p') ->
    let cfg' = Engine.step_config (engine defs') in
    List.iter
      (fun tr ->
        let etr = Chanabs.erase_trace ~bases:[ "a" ] tr in
        check_bool
          (Printf.sprintf "erased %s admitted" (Trace.to_string tr))
          true
          (Step.accepts_trace cfg' p' etr);
        check_bool "no a-events survive erasure" true
          (List.for_all
             (fun e ->
               not (String.equal (Channel.base e.Event.chan) "a"))
             etr))
      (traces_of defs p)

let test_ignore_unguarded () =
  let defs = parse_defs "q = a!0 -> q\nmain = q\n" in
  check_bool "erasing the only guard is rejected" true
    (match
       Chanabs.ignore_bases ~bases:[ "a" ] ~bound:2 defs (Process.ref_ "main")
     with
    | Error _ -> true
    | Ok _ -> false)

let test_project_exact () =
  let defs = parse_defs "r = c!2 -> c!0 -> b!0 -> r\nmain = r\n" in
  let p = Process.ref_ "main" in
  let f = Chanabs.cap_value 1 in
  match
    Chanabs.project ~base:"c" ~f
      ~dom:[ Value.Int 0; Value.Int 1 ]
      ~bound:2 defs p
  with
  | Error m -> Alcotest.fail m
  | Ok { Chanabs.defs = defs'; proc = p'; exact } ->
    check_bool "constant outputs stay exact" true exact;
    let cfg' = Engine.step_config (engine defs') in
    List.iter
      (fun tr ->
        check_bool "mapped trace admitted" true
          (Step.accepts_trace cfg' p' (Chanabs.map_trace ~base:"c" ~f tr)))
      (traces_of defs p)

let test_project_widens () =
  (* an output whose value is a free binder cannot be evaluated
     statically: the projection widens it and drops exactness *)
  let defs = parse_defs "s = d?x:{0,1} -> c!x -> s\nmain = s\n" in
  match
    Chanabs.project ~base:"c"
      ~f:(Chanabs.cap_value 1)
      ~dom:[ Value.Int 0; Value.Int 1 ]
      ~bound:2 defs (Process.ref_ "main")
  with
  | Error m -> Alcotest.fail m
  | Ok { Chanabs.exact; _ } -> check_bool "widened projection" false exact

let test_cap_value () =
  check_bool "caps above" true (Chanabs.cap_value 1 (Value.Int 5) = Value.Int 1);
  check_bool "keeps below" true (Chanabs.cap_value 1 (Value.Int 0) = Value.Int 0);
  check_bool "keeps symbols" true (Chanabs.cap_value 1 Value.ack = Value.ack)

(* ---- counter abstraction ----------------------------------------------- *)

let test_ring_flat () =
  let states n =
    let r = Counter.explore Family.token_ring.Family.fam ~n in
    check_bool
      (Printf.sprintf "ring n=%d complete" n)
      true r.Counter.lts.Lts.complete;
    r.Counter.quotient_states
  in
  let s4 = states 4 in
  check_int "flat at n=16" s4 (states 16);
  check_int "flat at n=32" s4 (states 32);
  check_bool "small instances are no larger" true (states 2 <= s4)

let test_ring_collapses_and_legend () =
  let r = Counter.explore Family.token_ring.Family.fam ~n:16 in
  check_bool "saturation collapses counted" true (r.Counter.omega_collapses > 0);
  check_bool "legend nonempty" true (r.Counter.legend <> []);
  let nums = List.map fst r.Counter.legend in
  check_int "legend numbers distinct" (List.length nums)
    (List.length (List.sort_uniq compare nums))

let test_ring_deterministic () =
  let go () = (Counter.explore Family.token_ring.Family.fam ~n:5).Counter.lts in
  Alcotest.(check string)
    "same signature across runs"
    (Lts.signature (go ()))
    (Lts.signature (go ()))

let test_initial_signature_saturates () =
  let fam = Family.token_ring.Family.fam in
  let s n = Counter.initial_signature fam ~n in
  check_bool "saturated signatures equal" true (String.equal (s 4) (s 5));
  check_bool "below saturation differs" false (String.equal (s 2) (s 4))

let test_ring_accepts () =
  let r = Counter.explore Family.token_ring.Family.fam ~n:3 in
  check_bool "work first" true
    (Counter.accepts r.Counter.lts [ ev "work" 0 ]);
  check_bool "pass before any work refused" false
    (Counter.accepts r.Counter.lts [ ev "pass" 0 ])

let erased_concrete_included fam ~n defs network =
  let cfg = Engine.step_config (engine defs) in
  let traces = Closure.to_traces (Step.traces cfg ~depth network) in
  let r = Counter.explore fam.Family.fam ~n in
  check_bool "some concrete traces" true (List.length traces > 1);
  List.iter
    (fun tr ->
      check_bool
        (Printf.sprintf "%s n=%d: erased %s accepted"
           fam.Family.fam.Counter.name n (Trace.to_string tr))
        true
        (Counter.accepts r.Counter.lts (Family.abstract_trace fam tr)))
    traces

let test_ring_sound () =
  List.iter
    (fun n ->
      let m = Models.Token_ring.make ~n in
      erased_concrete_included Family.token_ring ~n m.Models.Token_ring.defs
        m.Models.Token_ring.network)
    [ 2; 3 ]

let test_leader_sound () =
  List.iter
    (fun n ->
      let m = Models.Leader.make ~n in
      erased_concrete_included Family.leader ~n m.Models.Leader.defs
        m.Models.Leader.network)
    [ 2; 3 ]

let test_philosophers_sound () =
  let m = Paper.Philosophers.make ~left_handed_last:false ~n:2 () in
  erased_concrete_included Family.philosophers ~n:2
    m.Paper.Philosophers.defs m.Paper.Philosophers.network

let test_workers_superlinear_vs_flat () =
  (* concrete 2^n states; abstract saturates *)
  List.iter
    (fun n ->
      let m = Models.Workers.make ~n in
      let lts =
        Lts.explore
          (Engine.step_config (engine m.Models.Workers.defs))
          m.Models.Workers.network
      in
      check_int
        (Printf.sprintf "workers n=%d concrete states" n)
        (1 lsl n) (Lts.num_states lts))
    [ 1; 2; 3; 4; 6 ];
  let abs n =
    (Counter.explore Family.workers.Family.fam ~n).Counter.quotient_states
  in
  check_int "abstract flat n=4 vs n=8" (abs 4) (abs 8);
  check_int "abstract flat n=4 vs n=16" (abs 4) (abs 16);
  check_bool "abstract beats concrete at n=8" true (abs 8 < 1 lsl 8)

let test_workers_sound () =
  List.iter
    (fun n ->
      let m = Models.Workers.make ~n in
      erased_concrete_included Family.workers ~n m.Models.Workers.defs
        m.Models.Workers.network)
    [ 2; 3 ]

(* ---- whole-family certification ----------------------------------------- *)

let formula s =
  match Formula.of_string s with Ok f -> f | Error m -> Alcotest.fail m

let outcome_of r =
  match r with Ok o -> o | Error m -> Alcotest.fail m

let test_family_ring_bounded () =
  let o =
    outcome_of
      (Family.check_family Family.token_ring ~formula:(formula "n<=32"))
  in
  check_bool "certified" true o.Family.certified;
  check_int "three classes" 3 (List.length o.Family.classes);
  check_bool "no unbounded tail" true
    (List.for_all (fun c -> not c.Family.unbounded_tail) o.Family.classes);
  (* the classes partition the satisfying instances 2..32 *)
  let all =
    List.sort compare
      (List.concat_map (fun c -> c.Family.instances) o.Family.classes)
  in
  check_bool "instances are exactly 2..32" true
    (all = List.init 31 (fun i -> i + 2));
  List.iter
    (fun c ->
      check_int "representative is the class minimum" c.Family.rep
        (List.fold_left min (List.hd c.Family.instances) c.Family.instances))
    o.Family.classes;
  let report = Format.asprintf "%a" Family.pp_outcome o in
  check_bool "report says CERTIFIED" true (contains report "CERTIFIED")

let test_family_ring_unbounded () =
  let o =
    outcome_of (Family.check_family Family.token_ring ~formula:(formula "n>=2"))
  in
  check_bool "certified for every n" true o.Family.certified;
  check_bool "one class owns the unbounded tail" true
    (List.exists (fun c -> c.Family.unbounded_tail) o.Family.classes)

let test_family_leader_and_workers () =
  let o =
    outcome_of
      (Family.check_family Family.leader ~formula:(formula "2<=n && n<=16"))
  in
  check_bool "leader certified" true o.Family.certified;
  let o =
    outcome_of (Family.check_family Family.workers ~formula:(formula "n>=1"))
  in
  check_bool "workers certified" true o.Family.certified;
  check_bool "workers tail class present" true
    (List.exists (fun c -> c.Family.unbounded_tail) o.Family.classes)

let test_family_errors () =
  let err f fam =
    match Family.check_family fam ~formula:(formula f) with
    | Error _ -> true
    | Ok _ -> false
  in
  check_bool "wrong parameter name" true (err "k<=3" Family.token_ring);
  check_bool "no satisfying instance" true (err "n<=1" Family.token_ring);
  check_bool "family without invariants" true
    (err "n<=4" Family.philosophers)

let test_family_refutation () =
  (* a deliberately false invariant: the ring works before it passes,
     so #work ≤ #pass fails on the very first abstract trace *)
  let bogus =
    {
      Family.token_ring with
      Family.invariants =
        [
          ( "work-behind-pass",
            Assertion.Cmp
              ( Assertion.Le,
                Term.Len (Term.chan "work"),
                Term.Len (Term.chan "pass") ) );
        ];
    }
  in
  let o = outcome_of (Family.check_family bogus ~formula:(formula "n<=8")) in
  check_bool "not certified" false o.Family.certified;
  check_bool "a class reports the witness" true
    (List.exists
       (fun c -> match c.Family.checked with Error _ -> true | Ok _ -> false)
       o.Family.classes);
  let report = Format.asprintf "%a" Family.pp_outcome o in
  check_bool "report says NOT CERTIFIED" true (contains report "NOT CERTIFIED")

let test_family_counters_move () =
  let before = Obs.Counter.get (Obs.Counter.make "abstraction.family_checks") in
  ignore (Family.check_family Family.token_ring ~formula:(formula "n<=4"));
  let after = Obs.Counter.get (Obs.Counter.make "abstraction.family_checks") in
  check_bool "abstraction.family_checks moved" true (after > before)

(* ---- the abstract-sound oracle ------------------------------------------ *)

let test_oracle_registered () =
  check_bool "abstract-sound registered" true
    (match Oracle.find "abstract-sound" with Some _ -> true | None -> false);
  check_bool "abstract-sound in names" true
    (List.mem "abstract-sound" (Oracle.names ()))

let scenario_of_source src =
  let f =
    match Parser.parse_file src with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  Scenario.make ~defs:f.Parser.defs ~main:"main"

let test_oracle_passes_directed () =
  List.iter
    (fun src ->
      match Oracle.abstract_sound.Oracle.check (scenario_of_source src) with
      | Oracle.Pass -> ()
      | Oracle.Fail m -> Alcotest.fail m)
    [
      "p0 = a!0 -> p0\nmain = p0\n";
      "ts0 = work[0]!0 -> pass!0 -> pass?t:{0} -> ts0\n\
       ts1 = pass?t:{0} -> work[1]!1 -> pass!0 -> ts1\n\
       main = ts0 [ {pass, work[0]} || {pass, work[1]} ] ts1\n";
    ]

let prop_oracle_fuzz =
  qcheck_case ~count:60 "abstract-sound passes generated scenarios"
    Gen.scenario (fun s ->
      match Oracle.abstract_sound.Oracle.check s with
      | Oracle.Pass -> true
      | Oracle.Fail m -> QCheck2.Test.fail_reportf "%s" m)

(* ---- the CLI ------------------------------------------------------------ *)

let cli = "../bin/cspc.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args ^ " 2>/dev/null" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255
  in
  (Buffer.contents buf, code)

let test_cli_prove_family () =
  let out, code = run_cli [ "prove"; "--family"; "n<=8"; "--model"; "ring" ] in
  check_int "exit 0" 0 code;
  check_bool "certified on stdout" true (contains out "CERTIFIED");
  let out, code = run_cli [ "prove"; "--family"; "n>=1"; "--model"; "workers" ] in
  check_int "workers exit 0" 0 code;
  check_bool "workers certified" true (contains out "CERTIFIED");
  let _, code = run_cli [ "prove"; "--family"; "n<=4"; "--model"; "nope" ] in
  check_bool "unknown family fails" true (code <> 0)

let test_cli_graph_abstract () =
  let out, code =
    run_cli [ "graph"; "--abstract"; "counter"; "--model"; "workers"; "--size"; "6" ]
  in
  check_int "exit 0" 0 code;
  check_bool "summary line" true (contains out "abstract states");
  check_bool "emits DOT" true (contains out "digraph")

let () =
  Alcotest.run "abstraction"
    [
      ( "formula",
        [
          prop_nnf_equivalent;
          prop_roundtrip;
          prop_all_sat;
          prop_unbounded;
          Alcotest.test_case "parsing" `Quick test_formula_parse;
        ] );
      ( "chanabs",
        [
          Alcotest.test_case "ignore is sound" `Quick test_ignore_sound;
          Alcotest.test_case "ignore rejects unguarded" `Quick
            test_ignore_unguarded;
          Alcotest.test_case "project exact fragment" `Quick test_project_exact;
          Alcotest.test_case "project widens unevaluable outputs" `Quick
            test_project_widens;
          Alcotest.test_case "cap_value" `Quick test_cap_value;
        ] );
      ( "counter",
        [
          Alcotest.test_case "ring is flat in n" `Quick test_ring_flat;
          Alcotest.test_case "collapses and legend" `Quick
            test_ring_collapses_and_legend;
          Alcotest.test_case "deterministic exploration" `Quick
            test_ring_deterministic;
          Alcotest.test_case "initial signature saturates" `Quick
            test_initial_signature_saturates;
          Alcotest.test_case "accepts" `Quick test_ring_accepts;
          Alcotest.test_case "ring sound vs concrete" `Quick test_ring_sound;
          Alcotest.test_case "leader sound vs concrete" `Quick
            test_leader_sound;
          Alcotest.test_case "philosophers sound vs concrete" `Quick
            test_philosophers_sound;
          Alcotest.test_case "workers 2^n vs flat" `Quick
            test_workers_superlinear_vs_flat;
          Alcotest.test_case "workers sound vs concrete" `Quick
            test_workers_sound;
        ] );
      ( "family",
        [
          Alcotest.test_case "ring n<=32 in three classes" `Quick
            test_family_ring_bounded;
          Alcotest.test_case "ring unbounded n>=2" `Quick
            test_family_ring_unbounded;
          Alcotest.test_case "leader and workers" `Quick
            test_family_leader_and_workers;
          Alcotest.test_case "error cases" `Quick test_family_errors;
          Alcotest.test_case "false invariant refuted" `Quick
            test_family_refutation;
          Alcotest.test_case "obs counters move" `Quick
            test_family_counters_move;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "registered" `Quick test_oracle_registered;
          Alcotest.test_case "directed scenarios pass" `Quick
            test_oracle_passes_directed;
          prop_oracle_fuzz;
        ] );
      ( "cli",
        [
          Alcotest.test_case "prove --family" `Quick test_cli_prove_family;
          Alcotest.test_case "graph --abstract counter" `Quick
            test_cli_graph_abstract;
        ] );
    ]
