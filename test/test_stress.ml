(* @stress: the protocol library at sizes the default suite never
   visits — token ring at n=10, two-phase commit at n=6, the sliding
   window refined deeper — explored through the compiled successor
   engine, plus the stress benchmark workload replayed against an
   in-process server.  Excluded from the default runtest alias: run
   with `dune build @stress`. *)

open Csp
module Server = Csp_server.Server
module Workload = Csp_server.Workload
module Json = Csp_persist.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let explore_compiled defs p ~max_states =
  let eng = Engine.create ~nat_bound:3 defs in
  let compiled = Engine.compile ~budget:max_states eng p in
  Lts.explore ~max_states ~compiled (Engine.step_config eng) p

let test_token_ring_10 () =
  let m = Models.Token_ring.make ~n:10 in
  let lts = explore_compiled m.defs m.system ~max_states:100_000 in
  check_bool "complete" true lts.Lts.complete;
  check_int "deadlock-free" 0 (List.length (Lts.deadlock_states lts));
  (* one token over n stations: the state count is linear in n *)
  check_bool "state count scales with n" true (Lts.num_states lts >= 2 * 10)

let test_commit_6 () =
  let m = Models.Commit.make ~n:6 in
  let lts = explore_compiled m.defs m.system ~max_states:200_000 in
  check_bool "complete" true lts.Lts.complete;
  check_int "deadlock-free" 0 (List.length (Lts.deadlock_states lts));
  (* sequential polling keeps the coordinator's state linear in n *)
  check_bool "state count scales with n" true (Lts.num_states lts >= 5 * 6)

let test_sliding_window_deep () =
  let m = Models.Sliding_window.make ~w:2 in
  let eng = Engine.create ~depth:10 ~nat_bound:2 m.defs in
  match
    Equiv.trace_refines ~depth:10 (Engine.step_config eng) ~impl:m.system
      ~spec:m.spec
  with
  | Ok () -> ()
  | Error tr ->
    Alcotest.failf "window system diverges from its spec at %s"
      (Trace.to_string tr)

let test_leader_8 () =
  let m = Models.Leader.make ~n:8 in
  let lts = explore_compiled m.Models.Leader.defs m.Models.Leader.network
      ~max_states:200_000
  in
  check_bool "complete" true lts.Lts.complete;
  check_int "deadlock-free" 0 (List.length (Lts.deadlock_states lts))

(* ---- whole-family verification at stress sizes ------------------------- *)

module Family = Abstraction.Family
module Counter = Abstraction.Counter
module Formula = Abstraction.Formula

(* Certifying the ring for every n ≤ 64 costs the same handful of
   abstract explorations as n ≤ 8: all sizes above the counter cutoff
   share one assignment class. *)
let test_ring_family_64 () =
  let fam =
    match Family.find "ring" with
    | Some f -> f
    | None -> Alcotest.fail "no token-ring preset"
  in
  let formula =
    match Formula.of_string "n<=64" with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  match Family.check_family ~depth:8 fam ~formula with
  | Error m -> Alcotest.fail m
  | Ok o ->
    check_bool "certified up to 64" true o.Family.certified;
    check_bool "few classes" true (List.length o.Family.classes <= 4);
    let covered =
      List.concat_map (fun (c : Family.class_outcome) -> c.Family.instances)
        o.Family.classes
    in
    check_int "instances enumerated" 63 (List.length covered)

(* The workers pool has 2^n concrete states; the abstract quotient at
   n = 64 is the same handful of states as at the cutoff. *)
let test_workers_abstract_64 () =
  let fam = Family.workers in
  let r64 = Counter.explore fam.Family.fam ~n:64 in
  let r8 = Counter.explore fam.Family.fam ~n:8 in
  check_int "flat beyond the cutoff" r8.Counter.quotient_states
    r64.Counter.quotient_states;
  check_bool "collapses counted" true (r64.Counter.omega_collapses > 0);
  Alcotest.(check string)
    "one assignment class"
    (Counter.initial_signature fam.Family.fam ~n:8)
    (Counter.initial_signature fam.Family.fam ~n:64)

(* The stress-sized benchmark workload (the same items bench P15 and
   `cspc client --bench --stress` replay) answered by an in-process
   server: every request must succeed, and the refinements must hold. *)
let test_stress_workload () =
  let t =
    match Server.create (Server.config "unused.sock") with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let items = Workload.mixed ~stress:true ~sources:[] () in
  check_bool "workload nonempty" true (List.length items > 5);
  List.iter
    (fun (it : Workload.item) ->
      match Json.parse (Server.handle_line t (Json.to_string it.request)) with
      | Error m -> Alcotest.failf "%s: response not JSON: %s" it.label m
      | Ok resp ->
        check_bool (it.label ^ " ok") true
          (Json.mem_bool "ok" resp = Some true);
        check_int (it.label ^ " exit") 0
          (Option.value ~default:0 (Json.mem_int "exit" resp)))
    items

let () =
  Alcotest.run "stress"
    [
      ( "models",
        [
          Alcotest.test_case "token ring n=10" `Slow test_token_ring_10;
          Alcotest.test_case "two-phase commit n=6" `Slow test_commit_6;
          Alcotest.test_case "sliding window deep" `Slow
            test_sliding_window_deep;
          Alcotest.test_case "leader n=8" `Slow test_leader_8;
        ] );
      ( "families",
        [
          Alcotest.test_case "ring certified to n=64" `Slow
            test_ring_family_64;
          Alcotest.test_case "workers abstract flat at n=64" `Slow
            test_workers_abstract_64;
        ] );
      ( "service",
        [ Alcotest.test_case "stress workload" `Slow test_stress_workload ] );
    ]
