(* @stress: the protocol library at sizes the default suite never
   visits — token ring at n=10, two-phase commit at n=6, the sliding
   window refined deeper — explored through the compiled successor
   engine, plus the stress benchmark workload replayed against an
   in-process server.  Excluded from the default runtest alias: run
   with `dune build @stress`. *)

open Csp
module Server = Csp_server.Server
module Workload = Csp_server.Workload
module Json = Csp_persist.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let explore_compiled defs p ~max_states =
  let eng = Engine.create ~nat_bound:3 defs in
  let compiled = Engine.compile ~budget:max_states eng p in
  Lts.explore ~max_states ~compiled (Engine.step_config eng) p

let test_token_ring_10 () =
  let m = Models.Token_ring.make ~n:10 in
  let lts = explore_compiled m.defs m.system ~max_states:100_000 in
  check_bool "complete" true lts.Lts.complete;
  check_int "deadlock-free" 0 (List.length (Lts.deadlock_states lts));
  (* one token over n stations: the state count is linear in n *)
  check_bool "state count scales with n" true (Lts.num_states lts >= 2 * 10)

let test_commit_6 () =
  let m = Models.Commit.make ~n:6 in
  let lts = explore_compiled m.defs m.system ~max_states:200_000 in
  check_bool "complete" true lts.Lts.complete;
  check_int "deadlock-free" 0 (List.length (Lts.deadlock_states lts));
  (* sequential polling keeps the coordinator's state linear in n *)
  check_bool "state count scales with n" true (Lts.num_states lts >= 5 * 6)

let test_sliding_window_deep () =
  let m = Models.Sliding_window.make ~w:2 in
  let eng = Engine.create ~depth:10 ~nat_bound:2 m.defs in
  match
    Equiv.trace_refines ~depth:10 (Engine.step_config eng) ~impl:m.system
      ~spec:m.spec
  with
  | Ok () -> ()
  | Error tr ->
    Alcotest.failf "window system diverges from its spec at %s"
      (Trace.to_string tr)

(* The stress-sized benchmark workload (the same items bench P15 and
   `cspc client --bench --stress` replay) answered by an in-process
   server: every request must succeed, and the refinements must hold. *)
let test_stress_workload () =
  let t =
    match Server.create (Server.config "unused.sock") with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let items = Workload.mixed ~stress:true ~sources:[] () in
  check_bool "workload nonempty" true (List.length items > 5);
  List.iter
    (fun (it : Workload.item) ->
      match Json.parse (Server.handle_line t (Json.to_string it.request)) with
      | Error m -> Alcotest.failf "%s: response not JSON: %s" it.label m
      | Ok resp ->
        check_bool (it.label ^ " ok") true
          (Json.mem_bool "ok" resp = Some true);
        check_int (it.label ^ " exit") 0
          (Option.value ~default:0 (Json.mem_int "exit" resp)))
    items

let () =
  Alcotest.run "stress"
    [
      ( "models",
        [
          Alcotest.test_case "token ring n=10" `Slow test_token_ring_10;
          Alcotest.test_case "two-phase commit n=6" `Slow test_commit_6;
          Alcotest.test_case "sliding window deep" `Slow
            test_sliding_window_deep;
        ] );
      ( "service",
        [ Alcotest.test_case "stress workload" `Slow test_stress_workload ] );
    ]
