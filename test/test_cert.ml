(* Proof certificates: write/read round trips, independence from the
   tactic, and rejection of tampered certificates. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prove ctx tables j =
  match Tactic.prove_and_check ~tables ctx j with
  | Ok (proof, _) -> proof
  | Error m -> Alcotest.failf "setup proof failed: %s" m

let corpus () =
  (* the full protocol corpus, as `cspc prove --emit` would produce it *)
  let ctx = Sequent.context Paper.Protocol.defs in
  let tables = Paper.Protocol.tables in
  let x, m, s = Paper.Protocol.q_spec in
  List.map
    (fun j -> (j, prove ctx tables j))
    [
      Sequent.Holds (Paper.Protocol.sender, Paper.Protocol.sender_spec);
      Sequent.Holds_all ("q", x, m, s);
      Sequent.Holds (Paper.Protocol.receiver, Paper.Protocol.receiver_spec);
      Sequent.Holds (Paper.Protocol.protocol, Paper.Protocol.protocol_spec);
    ]

let rec proof_equal (a : Proof.t) (b : Proof.t) =
  match a, b with
  | Proof.Assumption, Proof.Assumption
  | Proof.Triviality, Proof.Triviality
  | Proof.Emptiness, Proof.Emptiness ->
    true
  | Proof.Consequence (r1, p1), Proof.Consequence (r2, p2) ->
    Assertion.equal r1 r2 && proof_equal p1 p2
  | Proof.Conjunction (p1, q1), Proof.Conjunction (p2, q2)
  | Proof.Alternative (p1, q1), Proof.Alternative (p2, q2) ->
    proof_equal p1 p2 && proof_equal q1 q2
  | Proof.Output_rule p1, Proof.Output_rule p2
  | Proof.Chan_rule p1, Proof.Chan_rule p2
  | Proof.Unfold p1, Proof.Unfold p2 ->
    proof_equal p1 p2
  | Proof.Input_rule (v1, p1), Proof.Input_rule (v2, p2) ->
    String.equal v1 v2 && proof_equal p1 p2
  | Proof.Parallelism (r1, s1, p1, q1), Proof.Parallelism (r2, s2, p2, q2) ->
    Assertion.equal r1 r2 && Assertion.equal s1 s2 && proof_equal p1 p2
    && proof_equal q1 q2
  | Proof.Forall_elim (x1, m1, s1, p1), Proof.Forall_elim (x2, m2, s2, p2) ->
    String.equal x1 x2 && Vset.equal m1 m2 && Assertion.equal s1 s2
    && proof_equal p1 p2
  | Proof.Fix (s1, i1), Proof.Fix (s2, i2) ->
    i1 = i2
    && List.length s1 = List.length s2
    && List.for_all2
         (fun a b ->
           Sequent.hyp_equal a.Proof.spec_hyp b.Proof.spec_hyp
           && String.equal a.Proof.fresh b.Proof.fresh
           && proof_equal a.Proof.body_proof b.Proof.body_proof)
         s1 s2
  | _ -> false

let judgment_equal a b =
  match a, b with
  | Sequent.Holds (p1, r1), Sequent.Holds (p2, r2) ->
    Process.equal p1 p2 && Assertion.equal r1 r2
  | Sequent.Holds_all (q1, x1, m1, s1), Sequent.Holds_all (q2, x2, m2, s2) ->
    String.equal q1 q2 && String.equal x1 x2 && Vset.equal m1 m2
    && Assertion.equal s1 s2
  | _ -> false

let test_roundtrip_each () =
  List.iter
    (fun (j, proof) ->
      match Cert.read (Cert.write j proof) with
      | Ok (j', proof') ->
        check_bool "judgment preserved" true (judgment_equal j j');
        check_bool "proof preserved" true (proof_equal proof proof')
      | Error m -> Alcotest.fail m)
    (corpus ())

let test_roundtrip_many () =
  let items = corpus () in
  match Cert.read_many (Cert.write_many items) with
  | Ok items' -> check_int "all four" (List.length items) (List.length items')
  | Error m -> Alcotest.fail m

let test_recheck_without_tactic () =
  (* certificates verify with Check alone — no invariant tables *)
  let ctx = Sequent.context Paper.Protocol.defs in
  List.iter
    (fun (j, proof) ->
      match Cert.read (Cert.write j proof) with
      | Error m -> Alcotest.fail m
      | Ok (j', proof') ->
        check_bool "re-checks" true (Result.is_ok (Check.check ctx j' proof')))
    (corpus ())

let test_tampered_judgment_rejected () =
  (* claim a stronger judgment over the same proof: must be rejected *)
  let ctx = Sequent.context Paper.Protocol.defs in
  let j, proof =
    List.hd (corpus ())
    (* sender sat f(wire) <= input *)
  in
  let stronger =
    Sequent.Holds
      (Paper.Protocol.sender,
       Assertion.Prefix (Term.chan "wire", Term.chan "input"))
  in
  let text = Cert.write stronger proof in
  (match Cert.read text with
  | Ok (j', proof') ->
    check_bool "tampered certificate rejected" true
      (Result.is_error (Check.check ctx j' proof'))
  | Error m -> Alcotest.fail m);
  ignore j

let test_garbage_rejected () =
  check_bool "not sexp" true (Result.is_error (Cert.read "(((("));
  check_bool "wrong shape" true (Result.is_error (Cert.read "(foo bar)"));
  check_bool "bad assertion" true
    (Result.is_error (Cert.read
       "(cert (judgment (sat copier \"wire <= <=\")) (proof emptiness))"));
  check_bool "empty input" true (Result.is_error (Cert.read ""))

let test_bound_variables_roundtrip () =
  (* assertions under input binders contain variables that must not be
     reparsed as channels *)
  let ctx = Sequent.context defs_copier in
  let spec = Assertion.Prefix (Term.chan "wire", Term.chan "input") in
  let tables = Tactic.tables ~invariants:[ ("copier", spec) ] () in
  let j = Sequent.Holds (Process.ref_ "copier", spec) in
  let proof = prove ctx tables j in
  match Cert.read (Cert.write j proof) with
  | Ok (j', proof') ->
    check_bool "proof preserved" true (proof_equal proof proof');
    check_bool "still checks" true (Result.is_ok (Check.check ctx j' proof'))
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "cert"
    [
      ( "round-trips",
        [
          Alcotest.test_case "each certificate" `Slow test_roundtrip_each;
          Alcotest.test_case "concatenated" `Slow test_roundtrip_many;
          Alcotest.test_case "bound variables" `Quick
            test_bound_variables_roundtrip;
        ] );
      ( "checking",
        [
          Alcotest.test_case "verifies without the tactic" `Slow
            test_recheck_without_tactic;
          Alcotest.test_case "tampering rejected" `Slow
            test_tampered_judgment_rejected;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
    ]
