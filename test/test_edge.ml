(* Edge cases and failure injection across the stack: degenerate
   budgets, empty structures, unusual-but-legal inputs, and the exact
   behaviour at configuration boundaries. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let out c v k = Process.send c (Expr.int v) k

(* ---- closures at the boundaries -------------------------------------- *)

let test_closure_boundaries () =
  let t = Closure.of_traces [ [ ev "a" 1; ev "b" 2 ] ] in
  check closure_testable "truncate 0 = {<>}" Closure.empty (Closure.truncate 0 t);
  check closure_testable "truncate negative = {<>}" Closure.empty
    (Closure.truncate (-3) t);
  check closure_testable "interleave with no budget is the identity" t
    (Closure.interleave ~events:[ ev "z" 0 ] ~extra:0 t);
  check closure_testable "interleave with no events is the identity" t
    (Closure.interleave ~events:[] ~extra:5 t);
  check closure_testable "union with empty" t (Closure.union t Closure.empty);
  check closure_testable "inter with empty" Closure.empty
    (Closure.inter t Closure.empty);
  check closure_testable "hide everything = {<>}" Closure.empty
    (Closure.hide (fun _ -> true) t);
  check_int "maximal of empty closure" 1
    (List.length (Closure.maximal_traces Closure.empty));
  (* par with an empty-trace closure and full synchronisation blocks *)
  check closure_testable "par against {<>} under full sync" Closure.empty
    (Closure.par ~in_x:(fun _ -> true) ~in_y:(fun _ -> true) t Closure.empty)

(* ---- degenerate step budgets ------------------------------------------ *)

let test_zero_hide_fuel () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) ~hide_fuel:0 Defs.empty in
  let p =
    Process.Hide (Chan_set.of_names [ "a" ], out "a" 0 (out "b" 1 Process.Stop))
  in
  (* with no hidden budget, the visible event behind the concealed one
     is unreachable in enumeration *)
  check closure_testable "no traces beyond <>" Closure.empty
    (Step.traces cfg ~depth:3 p);
  (* but transitions themselves still expose the hidden step *)
  check_int "transition exists" 1 (List.length (Step.transitions cfg p))

let test_sampler_bounds () =
  check_int "nat_bound 0 yields nothing" 0
    (List.length (Sampler.sample (Sampler.nat_bound 0) Vset.Nat));
  check_int "finite sets unaffected by the bound" 4
    (List.length (Sampler.sample (Sampler.nat_bound 0) (Vset.Range (0, 3))));
  (* a custom sampler is filtered by set membership *)
  let lying =
    Sampler.of_fun (fun _ -> [ Value.Int 7; Value.ack; Value.Int (-1) ])
  in
  check Alcotest.(list value_testable) "out-of-set samples dropped"
    [ Value.Int 7 ]
    (Sampler.sample lying Vset.Nat)

let test_unfold_alias_chain () =
  (* long but acyclic alias chains stay within the unfold budget *)
  let defs =
    List.fold_left
      (fun defs i ->
        Defs.define
          (Printf.sprintf "a%d" i)
          (Process.ref_ (Printf.sprintf "a%d" (i + 1)))
          defs)
      (Defs.empty |> Defs.define "a20" (out "done" 1 Process.Stop))
      (List.init 20 Fun.id)
  in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) ~unfold_fuel:25 defs in
  check_int "chain resolves" 1
    (List.length (Step.transitions cfg (Process.ref_ "a0")));
  let tight = Step.config ~sampler:(Sampler.nat_bound 2) ~unfold_fuel:5 defs in
  match Step.transitions tight (Process.ref_ "a0") with
  | exception Step.Unproductive _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ---- assertion language corners ---------------------------------------- *)

let test_quantifier_over_empty_set () =
  let c = Term.ctx () in
  check_bool "forall over {} is true" true
    (Assertion.eval c (Assertion.Forall ("x", Vset.Enum [], Assertion.False)));
  check_bool "exists over {} is false" false
    (Assertion.eval c (Assertion.Exists ("x", Vset.Enum [], Assertion.True)))

let test_cons_channel_closed_subscripts_equal () =
  (* col[1+1] and col[2] evaluate equal: the substitution must rewrite *)
  let spec =
    Assertion.Prefix
      ( Term.Chan (Chan_expr.indexed "col" (Expr.Add (Expr.int 1, Expr.int 1))),
        Term.chan "out" )
  in
  match
    Assertion.cons_channel (Chan_expr.indexed "col" (Expr.int 2)) (Term.int 9)
      spec
  with
  | Ok (Assertion.Prefix (Term.Cons _, _)) -> ()
  | Ok a -> Alcotest.failf "not rewritten: %a" Assertion.pp a
  | Error m -> Alcotest.fail m

let test_subst_empty_under_quantifier () =
  let spec =
    Assertion.Forall
      ("i", Vset.Nat,
       Assertion.Cmp (Assertion.Le, Term.Var "i", Term.Len (Term.chan "c")))
  in
  match Assertion.subst_empty spec with
  | Assertion.Forall (_, _, Assertion.Cmp (_, _, Term.Len (Term.Const (Value.Seq [])))) -> ()
  | a -> Alcotest.failf "wrong substitution: %a" Assertion.pp a

(* ---- printer corners ---------------------------------------------------- *)

let test_printer_vset_union () =
  (* finite unions flatten to enumerations the parser accepts *)
  let u = Vset.Union (Vset.Range (0, 1), Vset.Enum [ Value.ack ]) in
  let printed = Csp_syntax.Printer.vset u in
  check Alcotest.string "flattened" "{0, 1, ACK}" printed

let test_printer_negative_ints () =
  let p = out "a" (-3) Process.Stop in
  match Csp_syntax.Parser.parse_process (Csp_syntax.Printer.process p) with
  | Ok p' -> check process_testable "negative literal round-trips" p p'
  | Error m -> Alcotest.fail m

(* ---- runner corners ------------------------------------------------------ *)

let test_runner_zero_steps () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Defs.empty in
  let r = Csp_sim.Runner.run ~max_steps:0 cfg (out "a" 1 Process.Stop) in
  check_bool "stops immediately" true
    (r.Csp_sim.Runner.stop = Csp_sim.Runner.Max_steps);
  check_int "nothing happened" 0 r.Csp_sim.Runner.stats.Stats.steps;
  (* monitors still evaluate the empty history once *)
  let bad = Assertion.Cmp (Assertion.Gt, Term.Len (Term.chan "a"), Term.int 0) in
  let r =
    Csp_sim.Runner.run ~max_steps:0
      ~monitors:[ Csp_sim.Runner.monitor "m" bad ]
      cfg (out "a" 1 Process.Stop)
  in
  check_int "initial check runs" 1 (List.length r.Csp_sim.Runner.violations)

let test_scheduler_stop () =
  let stopper = { Scheduler.name = "stop"; pick = (fun ~step:_ _ -> None) } in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Defs.empty in
  let r = Csp_sim.Runner.run ~scheduler:stopper cfg (out "a" 1 Process.Stop) in
  check_bool "scheduler stop reported" true
    (r.Csp_sim.Runner.stop = Csp_sim.Runner.Scheduler_stopped)

(* ---- proof checker corners ----------------------------------------------- *)

let test_fix_duplicate_spec_names_ok () =
  (* the same specification may appear twice; the checker just proves it
     twice (harmless) — exercise index addressing of later entries *)
  let spec = Assertion.Prefix (Term.chan "wire", Term.chan "input") in
  let body_proof =
    Csp_proof.Proof.Input_rule
      ( "v",
        Csp_proof.Proof.Output_rule
          (Csp_proof.Proof.Consequence (spec, Csp_proof.Proof.Assumption)) )
  in
  let spec_entry = { Csp_proof.Proof.spec_hyp = Sequent.Sat ("copier", spec); fresh = "_"; body_proof } in
  let proof = Csp_proof.Proof.Fix ([ spec_entry; spec_entry ], 1) in
  check_bool "index 1 accepted" true
    (Result.is_ok
       (Check.check (Sequent.context defs_copier)
          (Sequent.Holds (Process.ref_ "copier", spec))
          proof))

let test_check_rejects_judgment_shape () =
  (* every non-Fix/Assumption rule must refuse an array judgment *)
  let j = Sequent.Holds_all ("q", "x", Vset.Nat, Assertion.True) in
  List.iter
    (fun proof ->
      check_bool "rejected" true
        (Result.is_error (Check.check (Sequent.context Defs.empty) j proof)))
    [
      Csp_proof.Proof.Triviality;
      Csp_proof.Proof.Emptiness;
      Csp_proof.Proof.Chan_rule Csp_proof.Proof.Emptiness;
      Csp_proof.Proof.Unfold Csp_proof.Proof.Emptiness;
    ]

let () =
  Alcotest.run "edge"
    [
      ( "closure",
        [ Alcotest.test_case "boundaries" `Quick test_closure_boundaries ] );
      ( "budgets",
        [
          Alcotest.test_case "zero hide fuel" `Quick test_zero_hide_fuel;
          Alcotest.test_case "sampler bounds" `Quick test_sampler_bounds;
          Alcotest.test_case "alias chains" `Quick test_unfold_alias_chain;
        ] );
      ( "assertions",
        [
          Alcotest.test_case "empty-set quantifiers" `Quick
            test_quantifier_over_empty_set;
          Alcotest.test_case "closed subscripts equal" `Quick
            test_cons_channel_closed_subscripts_equal;
          Alcotest.test_case "R_<> under quantifier" `Quick
            test_subst_empty_under_quantifier;
        ] );
      ( "printer",
        [
          Alcotest.test_case "union sets" `Quick test_printer_vset_union;
          Alcotest.test_case "negative literals" `Quick
            test_printer_negative_ints;
        ] );
      ( "runner",
        [
          Alcotest.test_case "zero steps" `Quick test_runner_zero_steps;
          Alcotest.test_case "scheduler stop" `Quick test_scheduler_stop;
        ] );
      ( "checker",
        [
          Alcotest.test_case "duplicate specifications" `Quick
            test_fix_duplicate_spec_names_ok;
          Alcotest.test_case "judgment shapes" `Quick
            test_check_rejects_judgment_shape;
        ] );
    ]
