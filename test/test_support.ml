(* Shared helpers and QCheck generators for the test suites. *)

open Csp

let ev name v : Event.t = Event.v name (Value.Int v)
let evs name v = Event.make (Channel.simple name) (Value.Sym v)

(* ---- Alcotest testables ------------------------------------------- *)

let trace_testable = Alcotest.testable Trace.pp Trace.equal
let closure_testable = Alcotest.testable Closure.pp Closure.equal
let process_testable = Alcotest.testable Process.pp Process.equal

let assertion_testable =
  Alcotest.testable Assertion.pp Assertion.equal

let value_testable = Alcotest.testable Value.pp Value.equal

(* ---- QCheck generators --------------------------------------------- *)

let value_gen : Value.t QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range 0 3);
        oneofl [ Value.ack; Value.nack ];
      ])

let channel_gen : Channel.t QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [
        map Channel.simple (oneofl [ "a"; "b"; "c" ]);
        map (fun i -> Channel.indexed "d" i) (int_range 0 2);
      ])

let event_gen : Event.t QCheck2.Gen.t =
  QCheck2.Gen.map2 Event.make channel_gen value_gen

let trace_gen : Trace.t QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 6) event_gen)

let closure_gen : Closure.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map Closure.of_traces (list_size (int_range 0 6) trace_gen))

let seq_gen : Value.t list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 6) value_gen)

(* Random closed recursion-free processes over a small alphabet.
   Output values stay within {0, 1} so that the default test sampler
   (nat_bound 2) covers every value a partner may need to accept —
   a requirement for exact operational/denotational agreement. *)
let process_gen : Process.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let chan = oneofl [ "a"; "b"; "c" ] in
  let vset =
    oneofl
      [ Vset.Range (0, 1); Vset.Enum [ Value.Int 0; Value.Int 1 ]; Vset.Nat ]
  in
  let var = oneofl [ "x"; "y" ] in
  sized_size (int_range 0 5)
  @@ fix (fun self n ->
         if n = 0 then
           oneof
             [
               return Process.Stop;
               map2 (fun c v -> Process.send c (Expr.int v) Process.Stop)
                 chan (int_range 0 1);
             ]
         else
           frequency
             [
               (1, return Process.Stop);
               ( 3,
                 map3
                   (fun c v p -> Process.send c (Expr.int v) p)
                   chan (int_range 0 1) (self (n - 1)) );
               ( 3,
                 map3
                   (fun c (x, m) p -> Process.recv c x m p)
                   chan (pair var vset) (self (n - 1)) );
               ( 2,
                 map2 (fun p q -> Process.Choice (p, q)) (self (n / 2))
                   (self (n / 2)) );
               ( 1,
                 map2
                   (fun p q ->
                     Process.Par
                       ( Chan_set.bases (Process.channel_bases p),
                         Chan_set.bases (Process.channel_bases q),
                         p,
                         q ))
                   (self (n / 2)) (self (n / 2)) );
               ( 1,
                 map2
                   (fun c p -> Process.Hide (Chan_set.of_names [ c ], p))
                   chan (self (n - 1)) );
             ])

(* Closed processes can mention free variables through generated inputs
   only; recv binds them, so the generated terms are closed by
   construction except when Choice duplicates a variable — the
   generators above only put variables under their own binder. *)

(* Random guarded, possibly mutually recursive definition environments
   over names p0..p2.  References appear only as continuations of a
   communication, so every definition is well guarded by construction. *)
let defs_gen : Defs.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let chan = oneofl [ "a"; "b"; "c" ] in
  let names = [ "p0"; "p1"; "p2" ] in
  let tail =
    oneof
      [ return Process.Stop; map (fun n -> Process.ref_ n) (oneofl names) ]
  in
  let rec comm n =
    (* a communication prefix: the only place a reference may follow *)
    frequency
      [
        ( 4,
          bind chan (fun c ->
              bind (int_range 0 1) (fun v ->
                  map (fun k -> Process.send c (Expr.int v) k) (body n))) );
        ( 3,
          bind chan (fun c ->
              map (fun k -> Process.recv c "x" (Vset.Range (0, 1)) k) (body n))
        );
      ]
  and body n =
    if n = 0 then tail
    else
      frequency
        [
          (4, comm (n - 1));
          (2, map2 (fun p q -> Process.Choice (p, q)) (comm (n / 2)) (comm (n / 2)));
        ]
  in
  let def name = map (fun b -> (name, b)) (comm 2) in
  map
    (fun bodies ->
      List.fold_left (fun defs (n, b) -> Defs.define n b defs) Defs.empty bodies)
    (flatten_l (List.map def names))

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* ---- Misc helpers --------------------------------------------------- *)

let defs_copier =
  Defs.empty
  |> Defs.define "copier"
       (Process.recv "input" "x" Vset.Nat
          (Process.send "wire" (Expr.Var "x") (Process.ref_ "copier")))

let history_of_pairs pairs =
  List.fold_left
    (fun h (c, vs) ->
      History.set h (Channel.simple c) (List.map (fun n -> Value.Int n) vs))
    History.empty pairs
