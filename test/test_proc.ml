(* Hash-consed process IR: interning canonicity, hash agreement across
   re-interning, printer/parser round-trips at the Proc level, and the
   deterministic DOT rendering of explored transition systems. *)

open Csp
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer
module Tgen = Csp_testkit.Gen
module Scenario = Csp_testkit.Scenario
open Test_support

(* ---- interning canonicity ------------------------------------------- *)

(* physical equality of interned nodes decides structural equality of
   the underlying terms — the defining property of the unique table *)
let prop_intern_canonical =
  qcheck_case ~count:500 "intern p == intern q iff Process.equal p q"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      Bool.equal
        (Proc.equal (Proc.intern p) (Proc.intern q))
        (Process.equal p q))

let prop_intern_reflexive =
  qcheck_case ~count:300 "intern p == intern p" process_gen (fun p ->
      Proc.equal (Proc.intern p) (Proc.intern p))

let prop_to_process_roundtrip =
  qcheck_case ~count:300 "to_process (intern p) = p" process_gen (fun p ->
      Process.equal (Proc.to_process (Proc.intern p)) p)

(* Canonicity under concurrent interning: the lock-free probe fast
   path must never hand two domains distinct nodes for the same term.
   Each domain interns the same family of deep chains; every result
   must be pointer-identical across domains, and the hit counter must
   have moved (the fast path is what the race exercises). *)
let test_intern_concurrent_canonical () =
  let build n =
    let rec chain i acc =
      if i = 0 then acc
      else chain (i - 1) (Process.Output (Chan_expr.simple "c", Expr.int i, acc))
    in
    chain 40 (Process.Output (Chan_expr.simple "seed", Expr.int n, Process.Stop))
  in
  let s0 = Proc.stats () in
  let results =
    Pool.with_pool ~domains:4 (fun pool ->
        Pool.parallel_map pool
          (fun _ -> Array.init 50 (fun i -> Proc.intern (build i)))
          (Array.init 4 Fun.id))
  in
  let reference = results.(0) in
  Array.iter
    (fun per_domain ->
      Alcotest.(check bool) "pointer-identical across domains" true
        (Array.for_all2 Proc.equal reference per_domain))
    results;
  let s1 = Proc.stats () in
  Alcotest.(check bool) "fast-path hits recorded" true
    (s1.Proc.hits > s0.Proc.hits)

(* re-interning the projected view lands on the very same node: ids and
   hashes agree across interning rounds *)
let prop_hash_stable =
  qcheck_case ~count:300 "re-interning preserves id and hash" process_gen
    (fun p ->
      let n = Proc.intern p in
      let n' = Proc.intern (Proc.to_process n) in
      Proc.equal n n' && Proc.id n = Proc.id n' && Proc.hash n = Proc.hash n')

let prop_hash_agrees_on_equal =
  qcheck_case ~count:500 "Process.equal p q implies hash agreement"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      (not (Process.equal p q))
      || Proc.hash (Proc.intern p) = Proc.hash (Proc.intern q))

(* ---- printer/parser round trips -------------------------------------- *)

let prop_print_parse_same_node =
  qcheck_case ~count:300 "parse (print p) interns to the same node"
    process_gen (fun p ->
      match Parser.parse_process (Printer.process p) with
      | Ok p' -> Proc.equal (Proc.intern p) (Proc.intern p')
      | Error m ->
        QCheck2.Test.fail_reportf "did not reparse: %s\n%s"
          (Printer.process p) m)

(* whole scenarios survive the corpus format: every definition body of
   a generated scenario re-interns to its original node after a trip
   through [Scenario.to_csp] and the file parser *)
let prop_scenario_roundtrip =
  qcheck_case ~count:150 "scenario to_csp/parse_file re-interns unchanged"
    Tgen.scenario (fun s ->
      match Parser.parse_file (Scenario.to_csp s) with
      | Error m ->
        QCheck2.Test.fail_reportf "scenario did not reparse: %s" m
      | Ok file ->
        List.for_all
          (fun (d : Defs.def) ->
            match Defs.lookup file.Parser.defs d.Defs.name with
            | None -> false
            | Some d' ->
              Proc.equal (Proc.intern d.Defs.body) (Proc.intern d'.Defs.body))
          (Scenario.def_list s.Scenario.defs))

(* ---- deterministic DOT output ---------------------------------------- *)

let tick_defs =
  Defs.empty
  |> Defs.define "tick"
       (Process.send "a" (Expr.int 0)
          (Process.Choice
             ( Process.send "b" (Expr.int 1) (Process.ref_ "tick"),
               Process.Hide
                 (Chan_set.of_names [ "c" ],
                  Process.send "c" (Expr.int 2) Process.Stop) )))

let expected_dot = "digraph tick {\n\
                   \  rankdir=LR;\n\
                   \  n0 [style=bold];\n\
                   \  n2 [shape=doublecircle];\n\
                   \  n1 [shape=circle];\n\
                   \  n0 -> n1 [label=\"a.0\"];\n\
                   \  n1 -> n0 [label=\"b.1\"];\n\
                   \  n1 -> n2 [label=\"c.2\", style=dashed];\n\
                   }\n"

let test_dot_expected () =
  let cfg = Step.config tick_defs in
  let lts = Lts.explore cfg (Process.ref_ "tick") in
  Alcotest.(check string) "DOT output" expected_dot (Lts.to_dot ~name:"tick" lts)

(* exploring twice — and exploring a differently-constructed but
   structurally equal copy — renders the very same bytes *)
let test_dot_stable () =
  let render () =
    let cfg = Step.config tick_defs in
    Lts.to_dot (Lts.explore cfg (Process.ref_ "tick"))
  in
  Alcotest.(check string) "stable across runs" (render ()) (render ())

let () =
  Alcotest.run "proc"
    [
      ( "interning",
        [
          prop_intern_canonical;
          prop_intern_reflexive;
          prop_to_process_roundtrip;
          prop_hash_stable;
          prop_hash_agrees_on_equal;
          Alcotest.test_case "concurrent interning canonical" `Quick
            test_intern_concurrent_canonical;
        ] );
      ( "round-trips",
        [ prop_print_parse_same_node; prop_scenario_roundtrip ] );
      ( "dot",
        [
          Alcotest.test_case "expected output" `Quick test_dot_expected;
          Alcotest.test_case "deterministic" `Quick test_dot_stable;
        ] );
    ]
