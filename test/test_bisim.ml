(* Strong bisimulation minimisation over explored transition systems. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg ?(defs = Defs.empty) () = Step.config ~sampler:(Sampler.nat_bound 2) defs
let out c v k = Process.send c (Expr.int v) k

let test_minimise_unrolled_copier () =
  (* an unrolled copier (two half-steps chained) is bisimilar to the
     one-equation copier and minimises to the same number of classes *)
  let defs =
    defs_copier
    |> Defs.define "copier2"
         (Process.recv "input" "x" Vset.Nat
            (Process.send "wire" (Expr.Var "x") (Process.ref_ "copier3")))
    |> Defs.define "copier3"
         (Process.recv "input" "y" Vset.Nat
            (Process.send "wire" (Expr.Var "y") (Process.ref_ "copier2")))
  in
  let c = cfg ~defs () in
  check_bool "copier ~ copier2" true
    (Bisim.equivalent c (Process.ref_ "copier") (Process.ref_ "copier2"));
  let lts2 = Lts.explore c (Process.ref_ "copier2") in
  let min2 = Bisim.minimise lts2 in
  let lts1 = Lts.explore c (Process.ref_ "copier") in
  check_int "unrolled graph is bigger" 6 (Lts.num_states lts2);
  check_int "minimises to the one-equation graph" (Lts.num_states lts1)
    (Lts.num_states min2)

let test_not_equivalent () =
  let c = cfg () in
  let p = out "a" 1 Process.Stop in
  let q = out "a" 2 Process.Stop in
  check_bool "different values" false (Bisim.equivalent c p q);
  check_bool "different lengths" false
    (Bisim.equivalent c p (out "a" 1 (out "a" 1 Process.Stop)));
  check_bool "stop vs step" false (Bisim.equivalent c Process.Stop p)

let test_branching_vs_linear () =
  (* a.(b + c) vs a.b + a.c: trace-equivalent but NOT bisimilar *)
  let c = cfg () in
  let branching =
    out "a" 0 (Process.Choice (out "b" 0 Process.Stop, out "c" 0 Process.Stop))
  in
  let linear =
    Process.Choice
      (out "a" 0 (out "b" 0 Process.Stop), out "a" 0 (out "c" 0 Process.Stop))
  in
  check_bool "same traces" true
    (Closure.equal
       (Step.traces c ~depth:3 branching)
       (Step.traces c ~depth:3 linear));
  check_bool "not bisimilar" false (Bisim.equivalent c branching linear)

let test_quotient_preserves_traces () =
  let defs = Paper.Protocol.defs in
  let c = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  let lts = Lts.explore c Paper.Protocol.network in
  let min = Bisim.minimise lts in
  check_bool "no bigger" true (Lts.num_states min <= Lts.num_states lts);
  check_int "same deadlock count class-wise" 0
    (List.length (Lts.deadlock_states min));
  check_bool "initial preserved" true
    (min.Lts.initial < Lts.num_states min)

let test_hidden_labels_distinguish () =
  (* a visible a.0 and a hidden a.0 are different labels *)
  let c = cfg () in
  let visible = out "a" 0 Process.Stop in
  let hidden = Process.Hide (Chan_set.of_names [ "a" ], visible) in
  check_bool "visibility matters" false (Bisim.equivalent c visible hidden)

let test_weak_equivalence () =
  let c = cfg () in
  (* hidden prefix becomes invisible *)
  let hidden =
    Process.Hide (Chan_set.of_names [ "a" ], out "a" 0 (out "b" 1 Process.Stop))
  in
  let spec = out "b" 1 Process.Stop in
  check_bool "not strongly equivalent" false (Bisim.equivalent c hidden spec);
  check_bool "weakly equivalent" true (Bisim.weak_equivalent c hidden spec);
  (* hidden chatter in the middle *)
  let chatty =
    Process.Hide
      ( Chan_set.of_names [ "t" ],
        out "b" 1 (out "t" 0 (out "t" 0 (out "c" 2 Process.Stop))) )
  in
  check_bool "chatter collapses" true
    (Bisim.weak_equivalent c chatty (out "b" 1 (out "c" 2 Process.Stop)));
  (* weak equivalence still distinguishes real visible differences *)
  check_bool "values still matter" false
    (Bisim.weak_equivalent c hidden (out "b" 2 Process.Stop))

let test_weak_protocol_not_one_place_buffer () =
  (* the protocol pipelines one message in flight on each side, so it is
     NOT a one-place buffer: input.1 can precede output.0 *)
  let defs =
    Defs.add
      {
        Defs.name = "buffer";
        param = None;
        body =
          Process.recv "input" "x" Paper.Protocol.message_set
            (Process.send "output" (Expr.Var "x") (Process.ref_ "buffer"));
      }
      Paper.Protocol.defs
  in
  let c = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  check_bool "protocol is not a one-place buffer" false
    (Bisim.weak_equivalent c Paper.Protocol.protocol (Process.ref_ "buffer"))

let test_copier_pipe_is_two_place_buffer () =
  (* a small theorem: the copier pipeline with its wire concealed is
     observation-equivalent to a two-place buffer — the copier and the
     recopier each hold at most one message.  The buffer's two slots are
     encoded in process names (empty / one / two), with the pair of held
     values packed as 2x+y over the sampled message set {0,1}. *)
  let v = Vset.Range (0, 1) in
  let defs =
    Paper.Copier.defs
    |> Defs.define "buf0"
         (Process.recv "input" "x" v (Process.call "buf1" (Expr.Var "x")))
    |> Defs.define_array "buf1" "x" v
         (Process.Choice
            ( Process.send "output" (Expr.Var "x") (Process.ref_ "buf0"),
              Process.recv "input" "y" v
                (Process.call "buf2"
                   (Expr.Add (Expr.Mul (Expr.int 2, Expr.Var "x"), Expr.Var "y")))
            ))
    |> Defs.define_array "buf2" "p" (Vset.Range (0, 3))
         (Process.Output
            ( Chan_expr.simple "output",
              Expr.Div (Expr.Var "p", Expr.int 2),
              Process.call "buf1" (Expr.Mod (Expr.Var "p", Expr.int 2)) ))
  in
  (* the copier pipe writes on "wire" concealed, "output" renamed: reuse
     Paper.Copier.pipe whose channels are input/output already *)
  let defs =
    defs
    |> Defs.define "onebuf"
         (Process.recv "input" "x" v
            (Process.send "output" (Expr.Var "x") (Process.ref_ "onebuf")))
  in
  let c = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  check_bool "pipe ~ two-place buffer (weak)" true
    (Bisim.weak_equivalent c Paper.Copier.pipe (Process.ref_ "buf0"));
  check_bool "pipe is not a one-place buffer" false
    (Bisim.weak_equivalent c Paper.Copier.pipe (Process.ref_ "onebuf"))

let prop_weak_coarser_than_strong =
  qcheck_case ~count:40 "strong equivalence implies weak"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      if Bisim.equivalent (cfg ()) p q then Bisim.weak_equivalent (cfg ()) p q
      else true)

let prop_reflexive =
  qcheck_case ~count:60 "bisimilarity is reflexive" process_gen (fun p ->
      Bisim.equivalent (cfg ()) p p)

let prop_bisim_implies_trace_equiv =
  qcheck_case ~count:60 "bisimilar processes have equal traces"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      if Bisim.equivalent (cfg ()) p q then
        Closure.equal
          (Step.traces (cfg ()) ~depth:4 p)
          (Step.traces (cfg ()) ~depth:4 q)
      else true)

let prop_minimise_idempotent =
  qcheck_case ~count:60 "minimisation is idempotent" process_gen (fun p ->
      let lts = Lts.explore (cfg ()) p in
      let m1 = Bisim.minimise lts in
      let m2 = Bisim.minimise m1 in
      Lts.num_states m1 = Lts.num_states m2
      && Lts.num_transitions m1 = Lts.num_transitions m2)

let () =
  Alcotest.run "bisim"
    [
      ( "equivalence",
        [
          Alcotest.test_case "unrolled copier" `Quick
            test_minimise_unrolled_copier;
          Alcotest.test_case "inequivalences" `Quick test_not_equivalent;
          Alcotest.test_case "branching vs linear" `Quick
            test_branching_vs_linear;
          Alcotest.test_case "visibility distinguishes" `Quick
            test_hidden_labels_distinguish;
          prop_reflexive;
          prop_bisim_implies_trace_equiv;
        ] );
      ( "weak",
        [
          Alcotest.test_case "hidden prefixes collapse" `Quick
            test_weak_equivalence;
          Alcotest.test_case "protocol vs one-place buffer" `Quick
            test_weak_protocol_not_one_place_buffer;
          Alcotest.test_case "copier pipe = two-place buffer" `Quick
            test_copier_pipe_is_two_place_buffer;
          prop_weak_coarser_than_strong;
        ] );
      ( "minimisation",
        [
          Alcotest.test_case "protocol quotient" `Quick
            test_quotient_preserves_traces;
          prop_minimise_idempotent;
        ] );
    ]
