(* The protocol library (Models): every model's invariants hold under
   bounded sat-checking, every network is deadlock-free under
   exhaustive exploration at several domain counts, every system
   refines its behavioural specification (and back — they are trace
   equivalent), and the compiled successor engine agrees with the
   interpreter byte for byte on each network. *)

open Csp
module M = Models

let check_bool = Alcotest.(check bool)

let domain_counts = [ 1; 2; 4 ]

let cfg_of defs = Step.config ~sampler:(Sampler.nat_bound 2) defs

let assert_holds ?(depth = 5) defs p spec =
  match Sat.check ~depth (cfg_of defs) p spec with
  | Sat.Holds _ -> ()
  | Sat.Fails { trace } -> Alcotest.failf "invariant refuted on %a" Trace.pp trace

let assert_equivalent ?(depth = 5) defs ~impl ~spec =
  let cfg = cfg_of defs in
  (match Equiv.trace_refines ~depth cfg ~impl ~spec with
  | Ok () -> ()
  | Error t -> Alcotest.failf "impl ⋢ spec: disallowed trace %a" Trace.pp t);
  match Equiv.trace_refines ~depth cfg ~impl:spec ~spec:impl with
  | Ok () -> ()
  | Error t -> Alcotest.failf "spec ⋢ impl: missing trace %a" Trace.pp t

(* Exhaustive exploration: complete (nothing truncated) and
   deadlock-free, sequentially and at every domain count. *)
let assert_deadlock_free ?(max_states = 20_000) defs network =
  let seq = Lts.explore ~max_states (cfg_of defs) network in
  check_bool "exploration complete" true seq.Lts.complete;
  Alcotest.(check (list int)) "no deadlock states" [] (Lts.deadlock_states seq);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let par = Lts.explore ~max_states ~pool (cfg_of defs) network in
          check_bool
            (Printf.sprintf "identical at %d domain(s)" domains)
            true
            (String.equal (Lts.to_dot par) (Lts.to_dot seq))))
    domain_counts

let assert_compiled_identical ?(max_states = 20_000) defs network =
  let seq = Lts.explore ~max_states (cfg_of defs) network in
  let cfg = cfg_of defs in
  let compiled = Compiled.compile cfg network in
  let com = Lts.explore ~max_states ~compiled cfg network in
  check_bool "compiled exploration identical" true
    (Lts.num_states com = Lts.num_states seq
    && Lts.num_transitions com = Lts.num_transitions seq
    && com.Lts.complete = seq.Lts.complete
    && List.equal Int.equal (Lts.deadlock_states com) (Lts.deadlock_states seq)
    && String.equal (Lts.to_dot com) (Lts.to_dot seq))

let assert_well_guarded defs =
  check_bool "well guarded" true (Result.is_ok (Defs.well_guarded defs))

(* One suite per model, all from the same recipe. *)
let model_suite name defs network system spec invariants =
  [
    Alcotest.test_case (name ^ ": well guarded") `Quick (fun () ->
        assert_well_guarded defs);
    Alcotest.test_case (name ^ ": invariants hold") `Quick (fun () ->
        List.iter (fun inv -> assert_holds defs network inv) invariants);
    Alcotest.test_case (name ^ ": deadlock-free at 1/2/4 domains") `Quick
      (fun () -> assert_deadlock_free defs network);
    Alcotest.test_case (name ^ ": trace-equivalent to spec") `Quick (fun () ->
        assert_equivalent defs ~impl:system ~spec);
    Alcotest.test_case (name ^ ": compiled = interpreted") `Quick (fun () ->
        assert_compiled_identical defs network);
  ]

let sliding_window =
  let m = M.Sliding_window.default in
  model_suite "sliding-window w=2" m.M.Sliding_window.defs
    m.M.Sliding_window.network m.M.Sliding_window.system
    m.M.Sliding_window.spec m.M.Sliding_window.invariants
  @ [
      Alcotest.test_case "sliding-window w=1: degenerates to the buffer" `Quick
        (fun () ->
          let m = M.Sliding_window.make ~w:1 in
          assert_equivalent m.M.Sliding_window.defs
            ~impl:m.M.Sliding_window.system ~spec:m.M.Sliding_window.spec;
          List.iter
            (fun inv ->
              assert_holds m.M.Sliding_window.defs m.M.Sliding_window.network
                inv)
            m.M.Sliding_window.invariants);
      Alcotest.test_case "sliding-window w=3: still deadlock-free" `Quick
        (fun () ->
          let m = M.Sliding_window.make ~w:3 in
          assert_deadlock_free m.M.Sliding_window.defs
            m.M.Sliding_window.network);
    ]

let token_ring =
  let m = M.Token_ring.default in
  model_suite "token-ring n=3" m.M.Token_ring.defs m.M.Token_ring.network
    m.M.Token_ring.system m.M.Token_ring.spec m.M.Token_ring.invariants
  @ [
      Alcotest.test_case "token-ring n=4: deadlock-free, spec-equivalent"
        `Quick (fun () ->
          let m = M.Token_ring.make ~n:4 in
          assert_deadlock_free m.M.Token_ring.defs m.M.Token_ring.network;
          assert_equivalent ~depth:8 m.M.Token_ring.defs
            ~impl:m.M.Token_ring.system ~spec:m.M.Token_ring.spec);
    ]

let leader =
  let m = M.Leader.default in
  model_suite "leader n=3" m.M.Leader.defs m.M.Leader.network m.M.Leader.system
    m.M.Leader.spec m.M.Leader.invariants
  @ [
      Alcotest.test_case "leader n=4: the maximal id still wins" `Quick
        (fun () ->
          let m = M.Leader.make ~n:4 in
          assert_deadlock_free m.M.Leader.defs m.M.Leader.network;
          List.iter
            (fun inv -> assert_holds m.M.Leader.defs m.M.Leader.network inv)
            m.M.Leader.invariants);
    ]

let commit =
  let m = M.Commit.default in
  model_suite "two-phase commit n=2" m.M.Commit.defs m.M.Commit.network
    m.M.Commit.system m.M.Commit.spec m.M.Commit.invariants
  @ [
      Alcotest.test_case "commit n=1: single participant" `Quick (fun () ->
          let m = M.Commit.make ~n:1 in
          assert_deadlock_free m.M.Commit.defs m.M.Commit.network;
          assert_equivalent m.M.Commit.defs ~impl:m.M.Commit.system
            ~spec:m.M.Commit.spec);
    ]

(* Choreographies: deadlock-free by construction, and the projected
   network replays exactly the global interaction sequence. *)
let choreo =
  let check_choreo (c : M.Choreo.t) =
    assert_well_guarded c.M.Choreo.defs;
    assert_deadlock_free c.M.Choreo.defs c.M.Choreo.network;
    assert_equivalent ~depth:6 c.M.Choreo.defs ~impl:c.M.Choreo.network
      ~spec:c.M.Choreo.global;
    assert_compiled_identical c.M.Choreo.defs c.M.Choreo.network
  in
  [
    Alcotest.test_case "generated choreographies project soundly" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            List.iter
              (fun (roles, length) ->
                check_choreo (M.Choreo.generate ~roles ~length ~seed))
              [ (2, 2); (2, 3); (3, 3); (3, 4) ])
          [ 0; 1; 7; 42; 1981 ]);
    Alcotest.test_case "self-sends are rejected" `Quick (fun () ->
        Alcotest.check_raises "self-send"
          (Invalid_argument "Choreo.make: step 0 is a self-send") (fun () ->
            ignore
              (M.Choreo.make ~roles:2
                 ~steps:[ { M.Choreo.frm = 0; dst = 0; value = 1 } ])));
    Alcotest.test_case "generation is a pure function of the arguments"
      `Quick (fun () ->
        let a = M.Choreo.generate ~roles:3 ~length:4 ~seed:42 in
        let b = M.Choreo.generate ~roles:3 ~length:4 ~seed:42 in
        check_bool "same steps" true (a.M.Choreo.steps = b.M.Choreo.steps));
  ]

let () =
  Alcotest.run "models"
    [
      ("sliding_window", sliding_window);
      ("token_ring", token_ring);
      ("leader", leader);
      ("commit", commit);
      ("choreo", choreo);
    ]
