(* Differential conformance: deterministic replay of the counterexample
   corpus, oracle-registry coverage, a seeded fuzz smoke run, generator
   determinism, and printer/parser round-trips on generated scenarios
   and the shipped examples.

   The corpus lives in [test/corpus/*.csp]; each entry records the
   oracle that must accept it.  Replay fails if an entry's oracle is
   missing from the registry, and registry coverage fails if an oracle
   has no corpus entry — together these guarantee that disabling any
   single oracle makes this suite fail. *)

open Csp
open Test_support
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer
module Gen = Csp_testkit.Gen
module Oracle = Csp_testkit.Oracle
module Fuzz = Csp_testkit.Fuzz
module Corpus = Csp_testkit.Corpus
module Scenario = Csp_testkit.Scenario

let corpus_dir = "corpus"
let examples_dir = Filename.concat ".." "examples"
let entries = lazy (Corpus.read_dir corpus_dir)

(* ---- corpus replay --------------------------------------------------- *)

let test_corpus_replay () =
  let entries = Lazy.force entries in
  Alcotest.(check bool) "corpus is non-empty" true (entries <> []);
  List.iter
    (fun (e : Corpus.entry) ->
      match Oracle.find e.oracle with
      | None ->
        Alcotest.failf "%s: oracle %S is not registered — disabled?" e.path
          e.oracle
      | Some o -> (
        match o.Oracle.check e.scenario with
        | Oracle.Pass -> ()
        | Oracle.Fail m -> Alcotest.failf "%s [%s]: %s" e.path e.oracle m))
    entries

let test_registry_covered () =
  let entries = Lazy.force entries in
  List.iter
    (fun (o : Oracle.t) ->
      if
        not
          (List.exists
             (fun (e : Corpus.entry) -> String.equal e.oracle o.Oracle.name)
             entries)
      then Alcotest.failf "no corpus entry exercises oracle %s" o.Oracle.name)
    Oracle.all

(* every corpus file must round-trip through its own persisted form:
   re-serialising the parsed scenario yields a file that parses back to
   the same scenario (the format [Corpus.write] emits). *)
let test_corpus_format_stable () =
  List.iter
    (fun (e : Corpus.entry) ->
      let text = Scenario.to_csp ~header:[ "oracle: " ^ e.oracle ] e.scenario in
      match Parser.parse_file text with
      | Error m -> Alcotest.failf "%s: re-serialised text fails: %s" e.path m
      | Ok f ->
        let s = Scenario.make ~defs:f.Parser.defs ~main:e.scenario.Scenario.main in
        if not (Scenario.equal e.scenario s) then
          Alcotest.failf "%s: scenario changed across print/parse" e.path)
    (Lazy.force entries)

(* [Oracle.make] threads every check through a per-oracle case counter
   ([oracle.<name>.cases] in the Obs registry); replaying the corpus
   must move every registered oracle's counter — proving the
   instrumentation sits on the real verdict path, not a side branch.
   Counters are cumulative and process-global, so the test differences
   two readings rather than expecting absolute values. *)
let test_replay_moves_oracle_counters () =
  let before =
    List.map (fun o -> (o.Oracle.name, Oracle.cases_run o)) Oracle.all
  in
  List.iter
    (fun (e : Corpus.entry) ->
      match Oracle.find e.oracle with
      | None -> ()
      | Some o -> ignore (o.Oracle.check e.scenario))
    (Lazy.force entries);
  List.iter
    (fun (o : Oracle.t) ->
      let b = List.assoc o.Oracle.name before in
      Alcotest.(check bool)
        (Printf.sprintf "oracle %s counted its replays" o.Oracle.name)
        true
        (Oracle.cases_run o - b >= 1))
    Oracle.all

(* ---- seeded fuzz smoke ----------------------------------------------- *)

let smoke_cases = 40
let smoke_config = { Fuzz.default_config with Fuzz.seed = 2026; max_cases = smoke_cases }

let test_fuzz_smoke () =
  let r = Fuzz.run smoke_config in
  Alcotest.(check int) "all cases ran" smoke_cases r.Fuzz.cases;
  List.iter
    (fun (name, runs) ->
      Alcotest.(check int) (name ^ " ran on every case") smoke_cases runs)
    r.Fuzz.oracle_runs;
  Alcotest.(check int)
    "every registered oracle ran"
    (List.length Oracle.all)
    (List.length r.Fuzz.oracle_runs);
  match r.Fuzz.counterexamples with
  | [] -> ()
  | c :: _ -> Alcotest.failf "%a" Fuzz.pp_counterexample c

let test_generator_deterministic () =
  let stream seed n =
    let rand = Random.State.make [| seed |] in
    List.init n (fun _ -> QCheck2.Gen.generate1 ~rand Gen.scenario)
  in
  Alcotest.(check bool)
    "same seed, same scenarios" true
    (List.for_all2 Scenario.equal (stream 11 30) (stream 11 30));
  Alcotest.(check bool)
    "different seeds diverge somewhere" true
    (not (List.for_all2 Scenario.equal (stream 11 30) (stream 12 30)))

(* ---- printer/parser round-trips -------------------------------------- *)

let prop_process_roundtrip =
  qcheck_case ~count:300 "print→parse identity (generated processes)"
    Gen.process (fun p ->
      match Parser.parse_process (Printer.process p) with
      | Ok p' -> Process.equal p p'
      | Error m ->
        QCheck2.Test.fail_reportf "%s does not parse back: %s"
          (Printer.process p) m)

let prop_scenario_roundtrip =
  qcheck_case ~count:200 "corpus-format identity (generated scenarios)"
    Gen.scenario (fun s ->
      let text = Scenario.to_csp s in
      match Parser.parse_file text with
      | Ok f ->
        Scenario.equal s
          (Scenario.make ~defs:f.Parser.defs ~main:s.Scenario.main)
      | Error m ->
        QCheck2.Test.fail_reportf "scenario does not parse back: %s@.%s" m
          text)

let def_equal (a : Defs.def) (b : Defs.def) =
  String.equal a.Defs.name b.Defs.name
  && (match (a.Defs.param, b.Defs.param) with
     | None, None -> true
     | Some (x, m), Some (y, m') -> String.equal x y && Vset.equal m m'
     | _ -> false)
  && Process.equal a.Defs.body b.Defs.body

let test_examples_roundtrip () =
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csp")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "examples present" true (files <> []);
  List.iter
    (fun f ->
      let path = Filename.concat examples_dir f in
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let file = Parser.parse_file_exn text in
      let printed = Printer.defs file.Parser.defs in
      match Parser.parse_file printed with
      | Error m -> Alcotest.failf "%s: printed defs fail to parse: %s" f m
      | Ok file' ->
        let ds = Scenario.def_list file.Parser.defs in
        let ds' = Scenario.def_list file'.Parser.defs in
        if
          List.length ds <> List.length ds'
          || not (List.for_all2 def_equal ds ds')
        then Alcotest.failf "%s: definitions changed across print/parse" f)
    files

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "registry coverage" `Quick test_registry_covered;
          Alcotest.test_case "format stability" `Quick
            test_corpus_format_stable;
          Alcotest.test_case "replay moves oracle counters" `Quick
            test_replay_moves_oracle_counters;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "seeded smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "generator determinism" `Quick
            test_generator_deterministic;
        ] );
      ( "round-trip",
        [
          prop_process_roundtrip;
          prop_scenario_roundtrip;
          Alcotest.test_case "examples/*.csp" `Quick test_examples_roundtrip;
        ] );
    ]
