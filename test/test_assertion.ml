(* The assertion language: term evaluation, the paper's sequence
   function f, assertion evaluation, and the three substitutions the
   proof rules depend on. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ctx_with pairs = Term.ctx ~hist:(history_of_pairs pairs) ()
let i n = Value.Int n

(* ---- Term evaluation ------------------------------------------------ *)

let test_chan_history () =
  let c = ctx_with [ ("wire", [ 1; 2; 3 ]) ] in
  check value_testable "history lookup"
    (Value.Seq [ i 1; i 2; i 3 ])
    (Term.eval c (Term.chan "wire"));
  check value_testable "unknown channel is empty" (Value.Seq [])
    (Term.eval c (Term.chan "nope"))

let test_seq_operators () =
  let c = ctx_with [ ("s", [ 10; 20; 30 ]) ] in
  check_int "#s" 3 (Term.eval_int c (Term.Len (Term.chan "s")));
  check value_testable "s_2" (i 20)
    (Term.eval c (Term.Index (Term.chan "s", Term.int 2)));
  check value_testable "cons"
    (Value.Seq [ i 5; i 10; i 20; i 30 ])
    (Term.eval c (Term.Cons (Term.int 5, Term.chan "s")));
  check value_testable "cat"
    (Value.Seq [ i 10; i 20; i 30; i 10; i 20; i 30 ])
    (Term.eval c (Term.Cat (Term.chan "s", Term.chan "s")))

let test_arith_and_sum () =
  let c = Term.ctx ~rho:(Valuation.of_list [ ("n", i 4) ]) () in
  check_int "arith" 11
    (Term.eval_int c (Term.Add (Term.Mul (Term.int 2, Term.Var "n"), Term.int 3)));
  check_int "sum 1..n of j*j" 30
    (Term.eval_int c
       (Term.Sum ("j", Term.int 1, Term.Var "n", Term.Mul (Term.Var "j", Term.Var "j"))));
  check_int "empty sum" 0
    (Term.eval_int c (Term.Sum ("j", Term.int 3, Term.int 2, Term.Var "j")));
  (* the bound variable shadows the environment *)
  let c = Term.ctx ~rho:(Valuation.of_list [ ("j", i 100) ]) () in
  check_int "sum binds" 6
    (Term.eval_int c (Term.Sum ("j", Term.int 1, Term.int 3, Term.Var "j")))

let expect_error c t =
  match Term.eval c t with
  | exception Term.Eval_error _ -> ()
  | v -> Alcotest.failf "expected error, got %a" Value.pp v

let test_term_errors () =
  let c = ctx_with [ ("s", [ 1 ]) ] in
  expect_error c (Term.Var "unbound");
  expect_error c (Term.Index (Term.chan "s", Term.int 2));
  expect_error c (Term.Index (Term.chan "s", Term.int 0));
  expect_error c (Term.Len (Term.int 3));
  expect_error c (Term.Add (Term.chan "s", Term.int 1));
  expect_error c (Term.App ("no_such_fun", Term.chan "s"));
  expect_error c (Term.Div (Term.int 1, Term.int 0))

(* ---- The protocol function f (§2.2) --------------------------------- *)

let f = Afun.protocol_cancel.Afun.apply

let test_f_equations () =
  (* f(<>) = <> *)
  check value_testable "f(<>)" (Value.Seq []) (Value.Seq (f []));
  (* f(<x>) = <> *)
  check value_testable "f(<x>)" (Value.Seq []) (Value.Seq (f [ i 7 ]));
  (* f(x^ACK^s) = x^f(s) *)
  check value_testable "f(x^ACK^s)"
    (Value.Seq [ i 7; i 9 ])
    (Value.Seq (f [ i 7; Value.ack; i 9; Value.ack ]));
  (* f(x^NACK^s) = f(s) *)
  check value_testable "f(x^NACK^s)"
    (Value.Seq [ i 9 ])
    (Value.Seq (f [ i 7; Value.nack; i 9; Value.ack ]));
  (* the paper's worked example: f(<x, NACK, y, ACK>) = <y> *)
  check value_testable "paper example"
    (Value.Seq [ i 2 ])
    (Value.Seq (f [ i 1; Value.nack; i 2; Value.ack ]))

let prop_f_output_is_data =
  qcheck_case "f never outputs ACK or NACK" seq_gen (fun s ->
      List.for_all
        (fun v -> not (Value.equal v Value.ack || Value.equal v Value.nack))
        (f s))

let prop_f_length =
  qcheck_case "f shortens its argument" seq_gen (fun s ->
      List.length (f s) <= List.length s / 2)

let test_other_afuns () =
  check value_testable "odds" (Value.Seq [ i 1; i 3 ])
    (Value.Seq (Afun.odds.Afun.apply [ i 1; i 2; i 3 ]));
  check value_testable "evens" (Value.Seq [ i 2 ])
    (Value.Seq (Afun.evens.Afun.apply [ i 1; i 2; i 3 ]));
  check value_testable "identity" (Value.Seq [ i 1 ])
    (Value.Seq (Afun.identity.Afun.apply [ i 1 ]));
  (* registry *)
  check_bool "default env has f" true (Afun.find Afun.default_env "f" <> None);
  check_bool "custom registration" true
    (Afun.find
       (Afun.register { Afun.name = "g"; doc = ""; apply = List.rev } Afun.default_env)
       "g"
    <> None)

(* ---- Assertion evaluation ------------------------------------------- *)

let wire_le_input = Assertion.Prefix (Term.chan "wire", Term.chan "input")

let test_eval_prefix () =
  check_bool "holds" true
    (Assertion.eval (ctx_with [ ("wire", [ 1 ]); ("input", [ 1; 2 ]) ]) wire_le_input);
  check_bool "fails" false
    (Assertion.eval (ctx_with [ ("wire", [ 2 ]); ("input", [ 1; 2 ]) ]) wire_le_input);
  check_bool "empty histories" true
    (Assertion.eval (ctx_with []) wire_le_input)

let test_eval_connectives () =
  let c = ctx_with [] in
  let t = Assertion.True and f' = Assertion.False in
  check_bool "and" false (Assertion.eval c (Assertion.And (t, f')));
  check_bool "or" true (Assertion.eval c (Assertion.Or (t, f')));
  check_bool "imp false antecedent" true (Assertion.eval c (Assertion.Imp (f', f')));
  check_bool "imp true-false" false (Assertion.eval c (Assertion.Imp (t, f')));
  check_bool "not" true (Assertion.eval c (Assertion.Not f'));
  check_bool "mem" true
    (Assertion.eval c (Assertion.Mem (Term.int 2, Vset.Range (0, 3))));
  check_bool "cmp" true
    (Assertion.eval c (Assertion.Cmp (Assertion.Lt, Term.int 1, Term.int 2)));
  check_bool "eq seqs" true
    (Assertion.eval c
       (Assertion.Eq (Term.Const (Value.Seq [ i 1 ]), Term.Const (Value.Seq [ i 1 ]))))

let test_eval_quantifiers () =
  let c = ctx_with [] in
  check_bool "forall finite" true
    (Assertion.eval c
       (Assertion.Forall
          ("x", Vset.Range (0, 5), Assertion.Cmp (Assertion.Le, Term.Var "x", Term.int 5))));
  check_bool "exists finite" true
    (Assertion.eval c
       (Assertion.Exists
          ("x", Vset.Range (0, 5), Assertion.Cmp (Assertion.Gt, Term.Var "x", Term.int 4))));
  check_bool "forall over NAT uses nat_bound" true
    (Assertion.eval
       (Term.ctx ~nat_bound:4 ())
       (Assertion.Forall
          ("x", Vset.Nat, Assertion.Cmp (Assertion.Lt, Term.Var "x", Term.int 4))))

let test_multiplier_assertion_shape () =
  (* the paper's §2 multiplier assertion evaluated on a concrete history *)
  let m = Paper.Multiplier.default in
  let hist =
    History.empty
    |> (fun h -> History.set h (Channel.indexed "row" 1) [ i 1; i 0 ])
    |> (fun h -> History.set h (Channel.indexed "row" 2) [ i 1; i 1 ])
    |> (fun h -> History.set h (Channel.indexed "row" 3) [ i 1; i 0 ])
    |> fun h -> History.set h (Channel.simple "output") [ i 6; i 2 ]
  in
  (* v = [1;2;3]: 1*1+2*1+3*1 = 6 ; 1*0+2*1+3*0 = 2 *)
  check_bool "holds on correct products" true
    (Assertion.eval (Term.ctx ~hist ()) m.Paper.Multiplier.spec);
  let bad = History.set hist (Channel.simple "output") [ i 6; i 3 ] in
  check_bool "detects a wrong product" false
    (Assertion.eval (Term.ctx ~hist:bad ()) m.Paper.Multiplier.spec)

(* ---- Substitutions --------------------------------------------------- *)

let test_subst_empty () =
  (* R_<> replaces every channel by <> *)
  let r = Assertion.subst_empty wire_le_input in
  check assertion_testable "both channels emptied"
    (Assertion.Prefix (Term.empty_seq, Term.empty_seq))
    r;
  check_bool "evaluates without any history" true
    (Assertion.eval (ctx_with []) r)

let test_cons_channel () =
  (* R^wire_{e^wire} *)
  match Assertion.cons_channel (Chan_expr.simple "wire") (Term.Var "v") wire_le_input with
  | Ok r ->
    check assertion_testable "only wire rewritten"
      (Assertion.Prefix
         (Term.Cons (Term.Var "v", Term.chan "wire"), Term.chan "input"))
      r
  | Error m -> Alcotest.fail m

let test_cons_channel_indexed () =
  let spec =
    Assertion.Prefix
      (Term.Chan (Chan_expr.indexed "c" (Expr.int 1)),
       Term.Chan (Chan_expr.indexed "c" (Expr.int 0)))
  in
  match Assertion.cons_channel (Chan_expr.indexed "c" (Expr.int 0)) (Term.int 9) spec with
  | Ok (Assertion.Prefix (Term.Chan _, Term.Cons _)) -> ()
  | Ok r -> Alcotest.failf "wrong result %a" Assertion.pp r
  | Error m -> Alcotest.fail m

let test_cons_channel_ambiguous () =
  (* same base name, unevaluable subscript: must refuse *)
  let spec =
    Assertion.Prefix
      (Term.Chan (Chan_expr.indexed "c" (Expr.Var "i")), Term.chan "d")
  in
  match Assertion.cons_channel (Chan_expr.indexed "c" (Expr.int 0)) (Term.int 9) spec with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "ambiguity accepted: %a" Assertion.pp r

let test_subst_var () =
  let r =
    Assertion.Forall
      ("x", Vset.Nat, Assertion.Cmp (Assertion.Le, Term.Var "x", Term.Var "y"))
  in
  let r' = Assertion.subst_var "y" (Term.int 5) r in
  check_bool "y replaced" true
    (not (List.mem "y" (Assertion.free_vars r')));
  (* bound x untouched *)
  let r'' = Assertion.subst_var "x" (Term.int 5) r in
  check assertion_testable "binder protects x" r r''

let test_free_vars_chans () =
  let a =
    Assertion.And
      ( Assertion.Prefix (Term.App ("f", Term.chan "wire"), Term.chan "input"),
        Assertion.Forall
          ("x", Vset.Nat, Assertion.Eq (Term.Var "x", Term.Var "z")) )
  in
  check Alcotest.(list string) "free vars" [ "z" ] (Assertion.free_vars a);
  check_int "free channels" 2 (List.length (Assertion.free_chans a));
  check_bool "mentions wire" true
    (Assertion.mentions_channel a (Channel.simple "wire"));
  check_bool "no col" false (Assertion.mentions_channel a (Channel.simple "col"))

let test_mentions_conservative () =
  let a =
    Assertion.Prefix
      (Term.Chan (Chan_expr.indexed "col" (Expr.Var "i")), Term.chan "out")
  in
  check_bool "open subscript matches any index" true
    (Assertion.mentions_channel a (Channel.indexed "col" 3))

(* ---- Sat ------------------------------------------------------------- *)

let test_sat_check () =
  let defs = defs_copier in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  (match Sat.check ~depth:5 cfg (Process.ref_ "copier") wire_le_input with
  | Sat.Holds { traces; _ } -> check_bool "some traces" true (traces > 10)
  | Sat.Fails { trace } -> Alcotest.failf "fails on %a" Trace.pp trace);
  (* a false assertion is refuted with a witness *)
  let wrong = Assertion.Prefix (Term.chan "input", Term.chan "wire") in
  match Sat.check ~depth:5 cfg (Process.ref_ "copier") wrong with
  | Sat.Fails { trace } -> check_int "shortest witness" 1 (List.length trace)
  | Sat.Holds _ -> Alcotest.fail "expected failure"

let prop_sat_iff_all_traces =
  qcheck_case ~count:60 "Sat.check agrees with direct evaluation" process_gen
    (fun p ->
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Defs.empty in
      let spec =
        Assertion.Cmp
          (Assertion.Le, Term.Len (Term.chan "a"), Term.int 2)
      in
      let direct =
        List.for_all
          (fun s ->
            Assertion.eval (Term.ctx ~hist:(History.of_trace s) ()) spec)
          (Closure.to_traces (Step.traces cfg ~depth:4 p))
      in
      match Sat.check ~depth:4 cfg p spec with
      | Sat.Holds _ -> direct
      | Sat.Fails _ -> not direct)

let () =
  Alcotest.run "assertion"
    [
      ( "terms",
        [
          Alcotest.test_case "channel histories" `Quick test_chan_history;
          Alcotest.test_case "sequence operators" `Quick test_seq_operators;
          Alcotest.test_case "arithmetic and sum" `Quick test_arith_and_sum;
          Alcotest.test_case "errors" `Quick test_term_errors;
        ] );
      ( "protocol-f",
        [
          Alcotest.test_case "defining equations" `Quick test_f_equations;
          prop_f_output_is_data;
          prop_f_length;
          Alcotest.test_case "other functions" `Quick test_other_afuns;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "prefix order" `Quick test_eval_prefix;
          Alcotest.test_case "connectives" `Quick test_eval_connectives;
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "multiplier spec" `Quick
            test_multiplier_assertion_shape;
        ] );
      ( "substitutions",
        [
          Alcotest.test_case "R_<>" `Quick test_subst_empty;
          Alcotest.test_case "R^c (simple)" `Quick test_cons_channel;
          Alcotest.test_case "R^c (indexed)" `Quick test_cons_channel_indexed;
          Alcotest.test_case "R^c (ambiguous rejected)" `Quick
            test_cons_channel_ambiguous;
          Alcotest.test_case "variable substitution" `Quick test_subst_var;
          Alcotest.test_case "free vars and channels" `Quick
            test_free_vars_chans;
          Alcotest.test_case "conservative mention" `Quick
            test_mentions_conservative;
        ] );
      ( "sat",
        [
          Alcotest.test_case "bounded check" `Quick test_sat_check;
          prop_sat_iff_all_traces;
        ] );
    ]
