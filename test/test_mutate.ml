(* The mutation substrate, and the kill-matrix claims of experiment E10. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let out c v k = Process.send c (Expr.int v) k

let test_operators_cover () =
  let p =
    Process.Choice
      ( out "a" 1 (out "b" 2 Process.Stop),
        Process.recv "a" "x" Vset.Nat (Process.send "b" (Expr.Var "x") Process.Stop)
      )
  in
  let ms = Mutate.mutants p in
  let count op =
    List.length (List.filter (fun m -> m.Mutate.operator = op) ms)
  in
  (* three outputs mutable by value (two constants + one variable) *)
  check_int "value mutants" 3 (count `Value);
  (* each of the four communications can move to the one other base *)
  check_int "channel mutants" 4 (count `Channel);
  check_int "branch mutants" 2 (count `Branch);
  (* two communications have non-STOP continuations *)
  check_int "truncate mutants" 2 (count `Truncate);
  (* all mutants differ from the original *)
  check_bool "all distinct from original" true
    (List.for_all (fun m -> not (Process.equal m.Mutate.body p)) ms)

let test_single_point () =
  (* each mutant differs from the original in exactly one communication
     or one choice node: mutating twice is never produced *)
  let p = out "a" 1 (out "a" 2 (out "a" 3 Process.Stop)) in
  let ms = Mutate.mutants p in
  List.iter
    (fun m ->
      let rec count_diff p q =
        match p, q with
        | Process.Output (_, e1, k1), Process.Output (_, e2, k2) ->
          (if Csp_lang.Expr.equal e1 e2 then 0 else 1) + count_diff k1 k2
        | Process.Stop, Process.Stop -> 0
        | Process.Output (_, _, k1), Process.Stop ->
          1 + Process.size k1 (* truncation counts the dropped suffix *)
        | _ -> 99
      in
      check_bool "single point" true (count_diff p m.Mutate.body >= 1))
    ms;
  check_int "mutant count" 5 (List.length ms)

let test_mutate_def_packaging () =
  let muts = Mutate.mutate_def defs_copier "copier" in
  check_bool "non-empty" true (muts <> []);
  List.iter
    (fun (m, defs') ->
      (* only the named definition changed *)
      let body' = (Option.get (Defs.lookup defs' "copier")).Defs.body in
      check_bool "body is the mutant" true (Process.equal body' m.Mutate.body);
      check_bool "description labelled" true
        (String.length m.Mutate.description > 7))
    muts;
  check_int "unknown name yields nothing" 0
    (List.length (Mutate.mutate_def defs_copier "nope"))

let test_value_mutant_killed () =
  (* the copier that adds one to what it forwards violates wire <= input *)
  let killed =
    List.exists
      (fun (m, defs') ->
        m.Mutate.operator = `Value
        &&
        match
          Sat.check ~depth:5
            (Step.config ~sampler:(Sampler.nat_bound 2) defs')
            (Process.ref_ "copier") Paper.Copier.copier_spec
        with
        | Sat.Fails _ -> true
        | Sat.Holds _ -> false)
      (Mutate.mutate_def defs_copier "copier")
  in
  check_bool "value mutant refuted" true killed

let test_truncation_mutant_survives_sat () =
  (* §4: prefix-closed specs cannot reject truncation *)
  List.iter
    (fun (m, defs') ->
      if m.Mutate.operator = `Truncate then
        match
          Sat.check ~depth:5
            (Step.config ~sampler:(Sampler.nat_bound 2) defs')
            (Process.ref_ "copier") Paper.Copier.copier_spec
        with
        | Sat.Holds _ -> ()
        | Sat.Fails { trace } ->
          Alcotest.failf "truncation wrongly refuted on %a" Trace.pp trace)
    (Mutate.mutate_def defs_copier "copier");
  (* ... but the refusals extension sees the introduced deadlock *)
  let caught =
    List.exists
      (fun (m, defs') ->
        m.Mutate.operator = `Truncate
        && Failures.can_deadlock
             (Step.config ~sampler:(Sampler.nat_bound 2) defs')
             ~depth:3 (Process.ref_ "copier")
           <> None)
      (Mutate.mutate_def defs_copier "copier")
  in
  check_bool "refusals catch a truncation" true caught

let prop_mutants_well_formed =
  qcheck_case ~count:80 "mutants still step or stop cleanly" process_gen
    (fun p ->
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Defs.empty in
      List.for_all
        (fun m ->
          match Step.traces cfg ~depth:2 m.Mutate.body with
          | _ -> true
          | exception Step.Unproductive _ -> true)
        (Mutate.mutants p))

let () =
  Alcotest.run "mutate"
    [
      ( "operators",
        [
          Alcotest.test_case "coverage" `Quick test_operators_cover;
          Alcotest.test_case "single point" `Quick test_single_point;
          Alcotest.test_case "definition packaging" `Quick
            test_mutate_def_packaging;
          prop_mutants_well_formed;
        ] );
      ( "kill-matrix(E10)",
        [
          Alcotest.test_case "value mutants killed" `Quick
            test_value_mutant_killed;
          Alcotest.test_case "truncation invisible to sat (§4)" `Quick
            test_truncation_mutant_survives_sat;
        ] );
    ]
