(* Operational semantics: transitions, synchronisation, hiding,
   derivatives, deadlock, trace enumeration. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg ?(nat = 2) defs = Step.config ~sampler:(Sampler.nat_bound nat) defs
let cfg0 = cfg Defs.empty

let out c v k = Process.send c (Expr.int v) k
let inp c x m k = Process.recv c x m k

let test_stop () =
  check_int "no transitions" 0 (List.length (Step.transitions cfg0 Process.Stop));
  check_bool "deadlocked" true (Step.is_deadlocked cfg0 Process.Stop)

let test_output () =
  match Step.transitions cfg0 (out "a" 1 Process.Stop) with
  | [ (e, Step.Visible, Process.Stop) ] ->
    check_bool "event" true (Event.equal e (ev "a" 1))
  | _ -> Alcotest.fail "expected exactly one visible transition"

let test_input_sampling () =
  let p = inp "a" "x" Vset.Nat (out "b" 0 Process.Stop) in
  check_int "sampler bounds enumeration" 2
    (List.length (Step.transitions cfg0 p));
  let p2 = inp "a" "x" (Vset.Enum [ Value.ack; Value.nack ]) Process.Stop in
  check_int "finite set enumerated fully" 2
    (List.length (Step.transitions cfg0 p2))

let test_input_binds () =
  let p = inp "a" "x" Vset.Nat (Process.send "b" (Expr.Var "x") Process.Stop) in
  let continuations = Step.transitions cfg0 p in
  List.iter
    (fun ((e : Event.t), _, k) ->
      match k with
      | Process.Output (_, Expr.Const v, _) ->
        check_bool "value propagated" true (Value.equal v e.Event.value)
      | _ -> Alcotest.fail "expected substituted output")
    continuations

let test_choice () =
  let p = Process.Choice (out "a" 1 Process.Stop, out "b" 2 Process.Stop) in
  check_int "both branches" 2 (List.length (Step.transitions cfg0 p))

let ab = Chan_set.of_names [ "a"; "b" ]

let test_par_sync_required () =
  (* both sides share {a}: value mismatch blocks *)
  let p = Process.Par (ab, ab, out "a" 1 Process.Stop, out "a" 2 Process.Stop) in
  check_bool "blocked" true (Step.is_deadlocked cfg0 p);
  let q = Process.Par (ab, ab, out "a" 1 Process.Stop, out "a" 1 Process.Stop) in
  check_int "agreement syncs" 1 (List.length (Step.transitions cfg0 q))

let test_par_passive_side_unsampled () =
  (* Regression: an output value outside the partner's sampled set must
     still synchronise when it is in the declared input set. *)
  let p =
    Process.Par
      ( ab,
        ab,
        out "a" 17 Process.Stop,
        inp "a" "x" Vset.Nat (Process.send "b" (Expr.Var "x") Process.Stop) )
  in
  match Step.transitions cfg0 p with
  | [ (e, Step.Visible, _) ] ->
    check_bool "sync at 17" true (Event.equal e (ev "a" 17))
  | l -> Alcotest.failf "expected one transition, got %d" (List.length l)

let test_par_interleave_free () =
  let only_a = Chan_set.of_names [ "a" ] and only_b = Chan_set.of_names [ "b" ] in
  let p =
    Process.Par (only_a, only_b, out "a" 1 Process.Stop, out "b" 2 Process.Stop)
  in
  check_int "both free" 2 (List.length (Step.transitions cfg0 p));
  let traces = Step.traces cfg0 ~depth:2 p in
  check_bool "both orders" true
    (Closure.mem [ ev "a" 1; ev "b" 2 ] traces
    && Closure.mem [ ev "b" 2; ev "a" 1 ] traces)

let test_hide_visibility () =
  let p = Process.Hide (Chan_set.of_names [ "a" ], out "a" 1 (out "b" 2 Process.Stop)) in
  (match Step.transitions cfg0 p with
  | [ (_, Step.Hidden, _) ] -> ()
  | _ -> Alcotest.fail "a is hidden");
  let traces = Step.traces cfg0 ~depth:3 p in
  check_bool "visible trace skips a" true (Closure.mem [ ev "b" 2 ] traces);
  check_bool "hidden not recorded" false
    (List.exists
       (fun s -> List.exists (Event.equal (ev "a" 1)) s)
       (Closure.to_traces traces))

let test_nested_hide () =
  let p =
    Process.Hide
      ( Chan_set.of_names [ "a" ],
        Process.Hide
          ( Chan_set.of_names [ "b" ],
            out "b" 2 (out "a" 1 (out "c" 3 Process.Stop)) ) )
  in
  let traces = Step.traces cfg0 ~depth:3 p in
  check_bool "only c visible" true (Closure.mem [ ev "c" 3 ] traces);
  check_int "maximal" 1 (List.length (Closure.maximal_traces traces))

let test_after_accepts () =
  let defs = defs_copier in
  let c = cfg defs in
  let copier = Process.ref_ "copier" in
  check_int "after input" 1 (List.length (Step.after c copier (ev "input" 1)));
  check_int "cannot start with wire" 0
    (List.length (Step.after c copier (ev "wire" 1)));
  check_bool "accepts valid trace" true
    (Step.accepts_trace c copier [ ev "input" 1; ev "wire" 1; ev "input" 0 ]);
  check_bool "rejects mismatched copy" false
    (Step.accepts_trace c copier [ ev "input" 1; ev "wire" 2 ]);
  (* beyond the sampler: inputs accept any NAT on the derivative path *)
  check_bool "accepts unsampled value" true
    (Step.accepts_trace c copier [ ev "input" 77; ev "wire" 77 ])

let test_after_through_hiding () =
  let defs = defs_copier in
  let c = cfg defs in
  let hidden =
    Process.Hide (Chan_set.of_names [ "input" ], Process.ref_ "copier")
  in
  (* wire.0 is reachable after a hidden input.0 *)
  check_bool "derivative crosses hidden steps" true
    (Step.after c hidden (ev "wire" 0) <> [])

let test_unproductive () =
  let defs = Defs.empty |> Defs.define "loop" (Process.ref_ "loop") in
  let c = cfg defs in
  match Step.transitions c (Process.ref_ "loop") with
  | exception Step.Unproductive "loop" -> ()
  | _ -> Alcotest.fail "expected Unproductive"

(* Regression for the transition cache's keying: within one query the
   cache can only miss (each state is derived once), so hits must come
   from a *second* query on the same configuration.  A keying bug that
   never hits shows up here as a zero delta. *)
let test_trans_cache_hits_across_queries () =
  let c = cfg defs_copier in
  let copier = Process.ref_ "copier" in
  let explore () = ignore (Lts.explore ~max_states:200 c copier) in
  explore ();
  let before = Step.stats () in
  explore ();
  let after = Step.stats () in
  check_bool "second query hits the warm cache" true
    (after.Step.trans_hits > before.Step.trans_hits);
  check_int "and derives nothing new" before.Step.trans_misses
    after.Step.trans_misses

let test_traces_growth () =
  let defs = defs_copier in
  let c = cfg defs in
  let copier = Process.ref_ "copier" in
  let sizes =
    List.map
      (fun d -> Closure.cardinal (Step.traces c ~depth:d copier))
      [ 0; 1; 2; 3; 4 ]
  in
  check Alcotest.(list int) "alternating branching (2 inputs, 1 output)"
    [ 1; 3; 5; 9; 13 ] sizes

let test_traces_prefix_closed () =
  let defs = defs_copier in
  let t = Step.traces (cfg defs) ~depth:4 (Process.ref_ "copier") in
  check_bool "closure property" true
    (List.for_all
       (fun s -> List.for_all (fun p -> Closure.mem p t) (Trace.prefixes s))
       (Closure.to_traces t))

let prop_traces_monotone_in_depth =
  qcheck_case ~count:80 "traces at depth d ⊆ traces at depth d+1" process_gen
    (fun p ->
      let t1 = Step.traces cfg0 ~depth:3 p
      and t2 = Step.traces cfg0 ~depth:4 p in
      Closure.subset t1 t2)

let prop_traces_bounded_by_depth =
  qcheck_case ~count:80 "no trace exceeds the depth bound" process_gen (fun p ->
      Closure.depth (Step.traces cfg0 ~depth:3 p) <= 3)

let prop_choice_union =
  qcheck_case ~count:80 "traces (P|Q) = traces P ∪ traces Q"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      Closure.equal
        (Step.traces cfg0 ~depth:3 (Process.Choice (p, q)))
        (Closure.union
           (Step.traces cfg0 ~depth:3 p)
           (Step.traces cfg0 ~depth:3 q)))

let prop_enumerated_accepted =
  qcheck_case ~count:60 "every enumerated trace is accepted" process_gen
    (fun p ->
      List.for_all
        (Step.accepts_trace cfg0 p)
        (Closure.to_traces (Step.traces cfg0 ~depth:3 p)))

let () =
  Alcotest.run "step"
    [
      ( "transitions",
        [
          Alcotest.test_case "STOP" `Quick test_stop;
          Alcotest.test_case "output" `Quick test_output;
          Alcotest.test_case "input sampling" `Quick test_input_sampling;
          Alcotest.test_case "input binding" `Quick test_input_binds;
          Alcotest.test_case "choice" `Quick test_choice;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "sync required on shared" `Quick
            test_par_sync_required;
          Alcotest.test_case "passive side beyond sampler" `Quick
            test_par_passive_side_unsampled;
          Alcotest.test_case "free interleaving" `Quick test_par_interleave_free;
        ] );
      ( "hiding",
        [
          Alcotest.test_case "visibility" `Quick test_hide_visibility;
          Alcotest.test_case "nested" `Quick test_nested_hide;
          Alcotest.test_case "derivative across hidden" `Quick
            test_after_through_hiding;
        ] );
      ( "derivatives",
        [
          Alcotest.test_case "after / accepts" `Quick test_after_accepts;
          Alcotest.test_case "unproductive recursion" `Quick test_unproductive;
        ] );
      ( "caches",
        [
          Alcotest.test_case "trans cache hits across queries" `Quick
            test_trans_cache_hits_across_queries;
        ] );
      ( "traces",
        [
          Alcotest.test_case "growth profile" `Quick test_traces_growth;
          Alcotest.test_case "prefix closed" `Quick test_traces_prefix_closed;
          prop_traces_monotone_in_depth;
          prop_traces_bounded_by_depth;
          prop_choice_union;
          prop_enumerated_accepted;
        ] );
    ]
