(* The observability layer: the atomic metric registry, span buffers,
   the machine-readable exports, and the dormant-by-default contract
   (a disabled run must record no events at all).

   The registry is process-global and tests in this binary toggle the
   global telemetry switch, so every test that enables it restores the
   dormant default — ordering between test cases never matters. *)

open Csp

let with_telemetry f =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.clear_events ())
    f

(* ---- a minimal JSON reader ------------------------------------------- *)

(* Just enough of RFC 8259 to validate our own emitters (no JSON
   library ships in the test environment, and depending on one for a
   schema check would defeat the point: the export must be plain
   enough to parse by hand). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?' (* outside our emitters *)
          | None -> fail "bad \\u escape");
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_arr (elements [])
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('0' .. '9' | '-') -> J_num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | J_obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* ---- metric registry -------------------------------------------------- *)

let test_counter_parallel () =
  let c = Obs.Counter.make "test.obs.parallel" in
  let before = Obs.Counter.get c in
  let domains = 4 and per_domain = 25_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int)
    "no lost increments across domains"
    (before + (domains * per_domain))
    (Obs.Counter.get c)

let test_registry_interns_by_name () =
  let a = Obs.Counter.make "test.obs.shared" in
  let b = Obs.Counter.make "test.obs.shared" in
  let before = Obs.Counter.get a in
  Obs.Counter.incr b;
  Alcotest.(check int)
    "make with the same name returns the same instrument" (before + 1)
    (Obs.Counter.get a)

let test_counters_live_while_disabled () =
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.obs.dormant" in
  let before = Obs.Counter.get c in
  Obs.Counter.add c 7;
  Alcotest.(check int)
    "counters count even when telemetry is off" (before + 7)
    (Obs.Counter.get c)

let test_timer_gated_on_enabled () =
  let t = Obs.Timer.make "test.obs.timer" in
  Obs.set_enabled false;
  let before = Obs.Timer.count t in
  Alcotest.(check int) "disabled Timer.time runs the thunk" 42
    (Obs.Timer.time t (fun () -> 42));
  Alcotest.(check int) "…without recording" before (Obs.Timer.count t);
  with_telemetry (fun () ->
      ignore (Obs.Timer.time t (fun () -> Sys.opaque_identity 1));
      Alcotest.(check int) "enabled Timer.time records" (before + 1)
        (Obs.Timer.count t))

let test_timer_histogram () =
  let t = Obs.Timer.make "test.obs.hist" in
  Obs.Timer.observe_ns t 1500.0;
  (* 2^10 = 1024 ≤ 1500 < 2048 = 2^11 → slot 10 *)
  let buckets = Obs.Timer.buckets t in
  Alcotest.(check bool) "log₂ slot occupied" true (buckets.(10) >= 1);
  Alcotest.(check bool) "max tracked" true (Obs.Timer.max_ns t >= 1500.0);
  Alcotest.(check bool) "total accumulates" true (Obs.Timer.total_ns t >= 1500.0)

let test_reset_zeroes_metrics_only () =
  with_telemetry (fun () ->
      let c = Obs.Counter.make "test.obs.reset.c" in
      let g = Obs.Gauge.make "test.obs.reset.g" in
      let t = Obs.Timer.make "test.obs.reset.t" in
      Obs.Counter.add c 3;
      Obs.Gauge.set g 2.5;
      Obs.Timer.observe_ns t 10.0;
      Obs.span ~cat:"test" "reset-span" (fun () -> ());
      let events_before = Obs.event_count () in
      Alcotest.(check bool) "a span was recorded" true (events_before > 0);
      Obs.reset ();
      Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.get c);
      Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (Obs.Gauge.get g);
      Alcotest.(check int) "timer zeroed" 0 (Obs.Timer.count t);
      Alcotest.(check int)
        "the event log survives reset" events_before (Obs.event_count ()))

let value_testable =
  let pp ppf v = Format.pp_print_string ppf (Obs.string_of_value v) in
  Alcotest.testable pp ( = )

let test_snapshot_totality () =
  let c = Obs.Counter.make "test.obs.total.c" in
  let g = Obs.Gauge.make "test.obs.total.g" in
  let t = Obs.Timer.make "test.obs.total.t" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 1.5;
  Obs.Timer.observe_ns t 2000.0;
  Obs.register_source "test.obs.src" (fun () -> [ ("k", Obs.Int 9) ]);
  let snap = Obs.snapshot () in
  let find k = List.assoc_opt k snap in
  Alcotest.(check (option value_testable))
    "counter under its own name" (Some (Obs.Int 5)) (find "test.obs.total.c");
  Alcotest.(check (option value_testable))
    "gauge under its own name" (Some (Obs.Float 1.5)) (find "test.obs.total.g");
  List.iter
    (fun suffix ->
      Alcotest.(check bool)
        (Printf.sprintf "timer exports %s" suffix)
        true
        (find ("test.obs.total.t" ^ suffix) <> None))
    [ ".count"; ".total_ms"; ".mean_ms"; ".max_ms" ];
  Alcotest.(check (option value_testable))
    "sources fold in under their prefix" (Some (Obs.Int 9))
    (find "test.obs.src.k");
  let keys = List.map fst snap in
  Alcotest.(check (list string))
    "snapshot sorted by key"
    (List.sort compare keys)
    keys

(* The snapshot keys the CLI's --stats / --stats-json rendering is
   documented to expose: pin them so an instrument rename is a
   deliberate, test-visible change.  [pool.lock_waits] in particular
   is printed by [Engine.pp_stats] but was never asserted anywhere. *)
let test_snapshot_pins_instrument_keys () =
  (* the fuzz counters register at Fuzz's module initialisation; touch
     the module so the linker keeps it in this binary *)
  ignore (Sys.opaque_identity Csp_testkit.Fuzz.default_config);
  let sampler = Sampler.nat_bound 2 in
  let cfg = Step.config ~sampler Paper.Protocol.defs in
  Pool.with_pool ~domains:2 (fun pool ->
      ignore (Lts.explore ~max_states:200 ~pool cfg Paper.Protocol.network));
  ignore
    (Denote.denote (Denote.config ~sampler Paper.Protocol.defs) ~depth:2
       Paper.Protocol.network);
  ignore (Sat.check ~depth:3 cfg Paper.Protocol.protocol Paper.Protocol.protocol_spec);
  let snap = Obs.snapshot () in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot has %s" key)
        true
        (List.mem_assoc key snap))
    [
      "closure.lock_waits";
      "closure.memo_hits";
      "closure.memo_misses";
      "closure.node.count";
      "closure.nodes";
      "denote.calls";
      "denote.eval_hits";
      "denote.eval_misses";
      "denote.fixpoint_iters";
      "fuzz.cases";
      "intern.lock_waits";
      "intern.nodes";
      "lts.layers";
      "lts.states";
      "obs.dropped_events";
      "pool.batches";
      "pool.lock_waits";
      "pool.tasks";
      "sat.checks";
      "sat.trace_evals";
      "step.trans_hits";
      "step.trans_misses";
    ];
  let rendered = Format.asprintf "%a" Obs.pp_snapshot () in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and sl = String.length rendered in
        let rec go i = i + nl <= sl && (String.sub rendered i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "--stats prints %S" needle)
        true found)
    [ "pool.lock_waits = "; "lts.states = "; "sat.checks = " ]

(* ---- spans ------------------------------------------------------------ *)

let test_span_nesting () =
  with_telemetry (fun () ->
      Obs.clear_events ();
      Obs.span ~cat:"test" "outer" (fun () ->
          Obs.span ~cat:"test" "inner-a" (fun () -> Sys.opaque_identity ());
          Obs.span ~cat:"test" "inner-b" (fun () -> Sys.opaque_identity ()));
      let evs = Obs.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      let find name = List.find (fun e -> e.Obs.name = name) evs in
      let outer = find "outer"
      and inner_a = find "inner-a"
      and inner_b = find "inner-b" in
      Alcotest.(check int) "outer at depth 0" 0 outer.Obs.depth;
      Alcotest.(check int) "inner-a nested" 1 inner_a.Obs.depth;
      Alcotest.(check int) "inner-b nested" 1 inner_b.Obs.depth;
      let within (child : Obs.event) (parent : Obs.event) =
        child.Obs.ts_ns >= parent.Obs.ts_ns
        && child.Obs.ts_ns +. child.Obs.dur_ns
           <= parent.Obs.ts_ns +. parent.Obs.dur_ns
      in
      Alcotest.(check bool) "inner-a within outer" true (within inner_a outer);
      Alcotest.(check bool) "inner-b within outer" true (within inner_b outer);
      Alcotest.(check bool)
        "inner-a before inner-b" true
        (inner_a.Obs.ts_ns <= inner_b.Obs.ts_ns);
      let starts = List.map (fun e -> e.Obs.ts_ns) evs in
      Alcotest.(check bool)
        "events () sorted by start" true
        (List.sort compare starts = starts))

exception Test_blew_up

let test_span_records_on_raise () =
  with_telemetry (fun () ->
      Obs.clear_events ();
      (try Obs.span ~cat:"test" "raiser" (fun () -> raise Test_blew_up)
       with Test_blew_up -> ());
      Alcotest.(check int)
        "a raising span still records its interval" 1 (Obs.event_count ()))

let test_span_args_lazy () =
  Obs.set_enabled false;
  let evaluated = ref false in
  Alcotest.(check int) "result passes through" 3
    (Obs.span ~cat:"test" "lazy"
       ~args:(fun () ->
         evaluated := true;
         [])
       (fun () -> 3));
  Alcotest.(check bool)
    "args thunk untouched while disabled" false !evaluated

(* Disabled runs must register nothing, whatever shape the span tree
   takes: QCheck drives random nesting programs through [span] with
   telemetry off and the event log must not move. *)
let disabled_spans_silent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"disabled spans record zero events"
       QCheck2.Gen.(list_size (int_bound 20) (int_bound 3))
       (fun program ->
         Obs.set_enabled false;
         let before = Obs.event_count () in
         let rec run = function
           | [] -> 0
           | depth :: rest ->
             (* [depth] nested spans around the rest of the program *)
             let rec nest d =
               if d = 0 then run rest
               else Obs.span ~cat:"qc" (Printf.sprintf "n%d" d) (fun () -> nest (d - 1))
             in
             nest depth
         in
         ignore (run program);
         Obs.event_count () = before))

(* ---- exports ---------------------------------------------------------- *)

let test_chrome_trace_schema () =
  with_telemetry (fun () ->
      Obs.clear_events ();
      Obs.span ~cat:"test" "export"
        ~args:(fun () -> [ ("n", Obs.Int 3); ("label", Obs.String "a\"b") ])
        (fun () -> Obs.span ~cat:"test" "child" (fun () -> ()));
      let trace = parse_json (Obs.chrome_trace ()) in
      match member "traceEvents" trace with
      | Some (J_arr evs) ->
        Alcotest.(check int) "one trace event per span" 2 (List.length evs);
        List.iter
          (fun ev ->
            Alcotest.(check (option string))
              "complete events" (Some "X")
              (match member "ph" ev with Some (J_str s) -> Some s | _ -> None);
            List.iter
              (fun field ->
                match member field ev with
                | Some (J_str _) -> ()
                | _ -> Alcotest.failf "%s must be a string" field)
              [ "name"; "cat" ];
            List.iter
              (fun field ->
                match member field ev with
                | Some (J_num _) -> ()
                | _ -> Alcotest.failf "%s must be a number" field)
              [ "ts"; "dur"; "pid"; "tid" ];
            Alcotest.(check (option (float 0.0)))
              "pid is 1" (Some 1.0)
              (match member "pid" ev with Some (J_num f) -> Some f | _ -> None);
            match member "args" ev with
            | Some (J_obj _) -> ()
            | _ -> Alcotest.fail "args must be an object")
          evs
      | _ -> Alcotest.fail "chrome_trace must carry a traceEvents array")

let test_snapshot_json_parses () =
  let c = Obs.Counter.make "test.obs.json" in
  Obs.Counter.incr c;
  match parse_json (Obs.snapshot_json ()) with
  | J_obj kvs ->
    Alcotest.(check bool)
      "the pinned counter survives the JSON round trip" true
      (match List.assoc_opt "test.obs.json" kvs with
      | Some (J_num _) -> true
      | _ -> false)
  | _ -> Alcotest.fail "snapshot_json must be an object"

let test_events_jsonl () =
  with_telemetry (fun () ->
      Obs.clear_events ();
      Obs.span ~cat:"test" "l1" (fun () -> ());
      Obs.span ~cat:"test" "l2" (fun () -> ());
      let lines =
        Obs.events_jsonl () |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match parse_json line with
          | J_obj _ -> ()
          | _ -> Alcotest.fail "each JSONL line must be an object")
        lines)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "atomic counters across domains" `Quick
            test_counter_parallel;
          Alcotest.test_case "interned by name" `Quick
            test_registry_interns_by_name;
          Alcotest.test_case "counters live while disabled" `Quick
            test_counters_live_while_disabled;
          Alcotest.test_case "timers gated on enabled" `Quick
            test_timer_gated_on_enabled;
          Alcotest.test_case "timer histogram" `Quick test_timer_histogram;
          Alcotest.test_case "reset zeroes metrics, keeps events" `Quick
            test_reset_zeroes_metrics_only;
          Alcotest.test_case "snapshot totality" `Quick test_snapshot_totality;
          Alcotest.test_case "pinned instrument keys" `Quick
            test_snapshot_pins_instrument_keys;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting well-formed" `Quick test_span_nesting;
          Alcotest.test_case "recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "args thunk lazy" `Quick test_span_args_lazy;
          disabled_spans_silent;
        ] );
      ( "exports",
        [
          Alcotest.test_case "chrome trace schema" `Quick
            test_chrome_trace_schema;
          Alcotest.test_case "snapshot json parses" `Quick
            test_snapshot_json_parses;
          Alcotest.test_case "events jsonl" `Quick test_events_jsonl;
        ] );
    ]
