(* The compiled successor engine: flat-table exploration must be
   byte-identical to the interpreter — state numbering, transition
   order, truncation/deadlock bookkeeping and DOT — at any domain
   count, with or without lazy fallback materialisation, and the
   compiled simulator walk must replay the interpreted one. *)

open Csp
module Gen = Csp_testkit.Gen
module Scenario = Csp_testkit.Scenario

let domain_counts =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "CSP_TEST_DOMAINS" with
  | None -> base
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d > 1 && not (List.mem d base) -> base @ [ d ]
    | _ -> base)

let transition_equal (a : Lts.transition) (b : Lts.transition) =
  a.Lts.source = b.Lts.source
  && a.Lts.target = b.Lts.target
  && a.Lts.visible = b.Lts.visible
  && Event.equal a.Lts.event b.Lts.event

(* Stronger than test_parallel's check: the transition *list* must
   match element for element, not only the sorted DOT rendering. *)
let lts_identical (seq : Lts.t) (com : Lts.t) =
  Lts.num_states com = Lts.num_states seq
  && Lts.num_transitions com = Lts.num_transitions seq
  && com.Lts.complete = seq.Lts.complete
  && com.Lts.initial = seq.Lts.initial
  && Array.for_all2 Process.equal com.Lts.states seq.Lts.states
  && List.for_all2 transition_equal com.Lts.transitions seq.Lts.transitions
  && Array.for_all2 Bool.equal com.Lts.truncated seq.Lts.truncated
  && List.equal Int.equal (Lts.deadlock_states com) (Lts.deadlock_states seq)
  && String.equal (Lts.to_dot com) (Lts.to_dot seq)

(* ---- QCheck differential: generated scenarios ------------------------ *)

let compiled_identical_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"compiled explore: identical numbering, transitions and DOT"
       Gen.scenario
       (fun sc ->
         let fresh_cfg () =
           Step.config ~sampler:(Sampler.nat_bound 2) sc.Scenario.defs
         in
         let p = Process.ref_ sc.Scenario.main in
         let seq = Lts.explore ~max_states:300 (fresh_cfg ()) p in
         let cfg = fresh_cfg () in
         let compiled = Compiled.compile cfg p in
         let com = Lts.explore ~max_states:300 ~compiled cfg p in
         lts_identical seq com))

(* The fallback path: a compile budget far below the reachable state
   count leaves most rows unmaterialised, so exploration must lazily
   materialise them — and still be identical. *)
let compiled_fallback_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"compiled explore under tiny budget: fallback is identical"
       Gen.scenario
       (fun sc ->
         let fresh_cfg () =
           Step.config ~sampler:(Sampler.nat_bound 2) sc.Scenario.defs
         in
         let p = Process.ref_ sc.Scenario.main in
         let seq = Lts.explore ~max_states:300 (fresh_cfg ()) p in
         let cfg = fresh_cfg () in
         let compiled = Compiled.compile ~budget:1 cfg p in
         let com = Lts.explore ~max_states:300 ~compiled cfg p in
         lts_identical seq com))

(* ---- determinism across domain counts -------------------------------- *)

let test_philosophers_identical_any_domains () =
  let ph = Paper.Philosophers.make ~n:3 ~left_handed_last:false () in
  let fresh_cfg () =
    Step.config ~sampler:(Sampler.nat_bound 3) ph.Paper.Philosophers.defs
  in
  let net = ph.Paper.Philosophers.network in
  let seq = Lts.explore ~max_states:5000 (fresh_cfg ()) net in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let cfg = fresh_cfg () in
          (* budget below the state space so the parallel fallback
             materialisation path runs, not just the compiled prefix *)
          let compiled = Compiled.compile ~budget:2 cfg net in
          let com = Lts.explore ~max_states:5000 ~pool ~compiled cfg net in
          Alcotest.(check bool)
            (Printf.sprintf "philosophers identical at %d domains" domains)
            true (lts_identical seq com);
          Alcotest.(check bool)
            "lazy rows were materialised" true
            (Compiled.fallbacks compiled > 0)))
    domain_counts

(* ---- truncation and deadlock bookkeeping ----------------------------- *)

let counter_defs =
  Defs.empty
  |> Defs.define_array "count" "n" Vset.Nat
       (Process.Output
          ( Chan_expr.simple "tick",
            Expr.Var "n",
            Process.call "count" (Expr.Add (Expr.Var "n", Expr.int 1)) ))

let test_truncation_identical () =
  let p = Process.call "count" (Expr.int 0) in
  let cfg () = Step.config ~sampler:(Sampler.nat_bound 2) counter_defs in
  let seq = Lts.explore ~max_states:5 (cfg ()) p in
  let c = cfg () in
  (* the compile runs past the explore bound: ids beyond max_states
     exist in the automaton but must not leak into the exploration *)
  let compiled = Compiled.compile ~budget:20 c p in
  let com = Lts.explore ~max_states:5 ~compiled c p in
  Alcotest.(check bool) "identical truncated system" true
    (lts_identical seq com);
  Alcotest.(check bool) "incomplete" false com.Lts.complete;
  Alcotest.(check (list int)) "cut state flagged" [ 4 ]
    (Lts.truncated_states com);
  Alcotest.(check (list int)) "no deadlock false positive" []
    (Lts.deadlock_states com)

let test_deadlock_identical () =
  let defs =
    Defs.empty
    |> Defs.define "once"
         (Process.Output (Chan_expr.simple "a", Expr.int 0, Process.Stop))
  in
  let p = Process.ref_ "once" in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  let compiled = Compiled.compile cfg p in
  let com = Lts.explore ~max_states:10 ~compiled cfg p in
  Alcotest.(check bool) "complete" true com.Lts.complete;
  Alcotest.(check (list int)) "STOP is deadlocked" [ 1 ]
    (Lts.deadlock_states com)

(* ---- the automaton itself -------------------------------------------- *)

let test_compiled_tables () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Paper.Protocol.defs in
  let compiled = Compiled.compile cfg Paper.Protocol.network in
  Alcotest.(check bool) "states assigned" true (Compiled.n_states compiled > 0);
  Alcotest.(check int) "all rows materialised within budget"
    (Compiled.n_states compiled) (Compiled.n_rows compiled);
  Alcotest.(check int) "no fallbacks within budget" 0
    (Compiled.fallbacks compiled);
  Alcotest.(check bool) "events interned" true (Compiled.n_events compiled > 0);
  Alcotest.(check bool) "compile time recorded" true
    (Compiled.compile_ms compiled >= 0.0);
  (* flat rows agree with the interpreter on every compiled state *)
  let seq = Lts.explore ~max_states:2000 cfg Paper.Protocol.network in
  Alcotest.(check int) "compiled prefix covers the exploration"
    (Lts.num_states seq) (Compiled.n_states compiled);
  let root = Compiled.root compiled in
  let by_compiled = Compiled.transitions_i compiled root
  and by_interpreter = Step.transitions_i cfg root in
  Alcotest.(check bool) "row = interpreter list" true
    (List.for_all2
       (fun (e1, v1, q1) (e2, v2, q2) ->
         Event.equal e1 e2 && Step.vis_equal v1 v2 && Proc.equal q1 q2)
       by_compiled by_interpreter)

(* states outside the automaton delegate to the interpreter *)
let test_off_automaton_fallback () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) Paper.Protocol.defs in
  let compiled = Compiled.compile cfg Paper.Protocol.network in
  let other = Proc.intern Paper.Protocol.protocol in
  let by_compiled = Compiled.transitions_i compiled other
  and by_interpreter = Step.transitions_i cfg other in
  Alcotest.(check bool) "off-automaton state answered identically" true
    (List.for_all2
       (fun (e1, v1, q1) (e2, v2, q2) ->
         Event.equal e1 e2 && Step.vis_equal v1 v2 && Proc.equal q1 q2)
       by_compiled by_interpreter)

(* ---- engine cache, runner and bisimulation --------------------------- *)

let test_engine_compile_cached () =
  let eng = Engine.create ~nat_bound:2 Paper.Protocol.defs in
  let c1 = Engine.compile eng Paper.Protocol.network in
  let c2 = Engine.compile eng Paper.Protocol.network in
  Alcotest.(check bool) "same automaton object" true (c1 == c2);
  let c3 = Engine.compile (Engine.with_depth eng 9) Paper.Protocol.network in
  Alcotest.(check bool) "with_depth shares the cache" true (c1 == c3)

let test_runner_compiled_identical () =
  let eng = Engine.create ~nat_bound:2 ~seed:7 Paper.Protocol.defs in
  let p = Paper.Protocol.protocol in
  let interp = Csp_sim.Runner.run_engine ~max_steps:200 eng p in
  let compiled = Engine.compile eng p in
  let fast = Csp_sim.Runner.run_engine ~max_steps:200 ~compiled eng p in
  Alcotest.(check bool) "same trace" true
    (List.equal Event.equal interp.Csp_sim.Runner.trace
       fast.Csp_sim.Runner.trace);
  Alcotest.(check bool) "same stop reason" true
    (interp.Csp_sim.Runner.stop = fast.Csp_sim.Runner.stop);
  Alcotest.(check bool) "same final state" true
    (Process.equal interp.Csp_sim.Runner.final fast.Csp_sim.Runner.final)

let test_bisim_compiler_same_answer () =
  let eng = Engine.create ~nat_bound:2 Paper.Protocol.defs in
  let cfg = Engine.step_config eng in
  let compiler = Engine.compile eng in
  let p = Paper.Protocol.protocol and q = Paper.Protocol.network in
  let plain = Bisim.weak_equivalent cfg p q
  and routed = Bisim.weak_equivalent ~compiler cfg p q in
  Alcotest.(check bool) "weak_equivalent unchanged" plain routed;
  let plain_s = Bisim.equivalent cfg p p
  and routed_s = Bisim.equivalent ~compiler cfg p p in
  Alcotest.(check bool) "equivalent unchanged" plain_s routed_s

let () =
  Alcotest.run "compiled"
    [
      ( "differential",
        [
          compiled_identical_qcheck;
          compiled_fallback_qcheck;
          Alcotest.test_case "philosophers identical at 1/2/4 domains" `Quick
            test_philosophers_identical_any_domains;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "truncated system identical" `Quick
            test_truncation_identical;
          Alcotest.test_case "deadlocks survive" `Quick test_deadlock_identical;
        ] );
      ( "tables",
        [
          Alcotest.test_case "flat rows" `Quick test_compiled_tables;
          Alcotest.test_case "off-automaton fallback" `Quick
            test_off_automaton_fallback;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine cache" `Quick test_engine_compile_cached;
          Alcotest.test_case "runner identical" `Quick
            test_runner_compiled_identical;
          Alcotest.test_case "bisim compiler" `Quick
            test_bisim_compiler_same_answer;
        ] );
    ]
