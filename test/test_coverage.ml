(* The coverage layer: feature extraction is deterministic (same seed
   and input give the same feature hash, at any job count),
   minimisation is idempotent and subsumption-sound, counterexample
   dedup keys on the shrunk scenario, and the budgeted soak mode
   reports exhaustion distinctly from completion. *)

module Obs = Csp_obs.Obs
module Coverage = Csp_testkit.Coverage
module Fuzz = Csp_testkit.Fuzz
module Gen = Csp_testkit.Gen
module Scenario = Csp_testkit.Scenario
open Csp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let scenario_of p =
  Scenario.make ~defs:(Defs.define "main" p Defs.empty) ~main:"main"

let entry case features =
  Coverage.entry ~case
    ~scenario:(scenario_of Process.Stop)
    features

(* ---- feature extraction ---------------------------------------------- *)

let test_stable_keys () =
  check_bool "oracle counters in" true (Coverage.stable_key "oracle.op-vs-deno.cases");
  check_bool "sat counters in" true (Coverage.stable_key "sat.trace_evals");
  check_bool "step cache counters in" true (Coverage.stable_key "step.unfold_hits");
  check_bool "global unique table out" false (Coverage.stable_key "closure.nodes");
  check_bool "interning out" false (Coverage.stable_key "intern.hits");
  check_bool "pool out" false (Coverage.stable_key "pool.tasks");
  check_bool "fuzz bookkeeping out" false (Coverage.stable_key "fuzz.cases")

let test_diff_buckets () =
  let before = [ ("sat.checks", Obs.Int 10); ("closure.nodes", Obs.Int 5) ] in
  let after = [ ("sat.checks", Obs.Int 15); ("closure.nodes", Obs.Int 500) ] in
  Alcotest.(check (list string))
    "only the stable counter, log2-bucketed" [ "sat.checks:2" ]
    (Coverage.diff before after);
  (* a key absent before counts from zero *)
  Alcotest.(check (list string))
    "fresh key" [ "lts.states:0" ]
    (Coverage.diff [] [ ("lts.states", Obs.Int 1) ])

let test_probe () =
  let c = Obs.Counter.make "sat.test_probe" in
  let x, fs = Coverage.probe (fun () -> Obs.Counter.add c 5; 17) in
  check_int "thunk result" 17 x;
  check_bool "movement observed" true
    (List.mem "sat.test_probe:2" fs)

let test_hash_order_insensitive () =
  let h = Coverage.hash_features in
  check_bool "order ignored" true
    (Int64.equal (h [ "a:1"; "b:2" ]) (h [ "b:2"; "a:1" ]));
  check_bool "duplicates ignored" true
    (Int64.equal (h [ "a:1"; "b:2" ]) (h [ "b:2"; "a:1"; "a:1" ]));
  check_bool "different sets differ" false
    (Int64.equal (h [ "a:1" ]) (h [ "a:2" ]));
  (* pinned: the hash is FNV-1a, stable across runs and versions *)
  check_bool "empty set pinned" true
    (Int64.equal (h []) 0xcbf29ce484222325L)

(* ---- the map ---------------------------------------------------------- *)

let test_map_gains () =
  let m = Coverage.Map.create () in
  Alcotest.(check (list string))
    "all fresh" [ "a:1"; "b:2" ]
    (Coverage.Map.add m [ "a:1"; "b:2" ]);
  Alcotest.(check (list string))
    "only the new one" [ "c:0" ]
    (Coverage.Map.add m [ "a:1"; "c:0" ]);
  check_int "three distinct" 3 (Coverage.Map.distinct m);
  check_bool "membership" true (Coverage.Map.mem m "b:2");
  Alcotest.(check (list string))
    "sorted enumeration" [ "a:1"; "b:2"; "c:0" ]
    (Coverage.Map.features m)

(* ---- minimisation ----------------------------------------------------- *)

let covered es =
  List.sort_uniq String.compare
    (List.concat_map (fun e -> e.Coverage.features) es)

let test_minimise_subsumption () =
  let es =
    [
      entry 0 [ "a:1" ];                    (* subsumed by case 1 *)
      entry 1 [ "a:1"; "b:1" ];
      entry 2 [ "c:1" ];
      entry 3 [ "b:1"; "c:1" ];             (* subsumed by 1 ∪ 2 *)
    ]
  in
  let kept = Coverage.minimise es in
  Alcotest.(check (list int))
    "subsumed entries dropped" [ 1; 2 ]
    (List.map (fun e -> e.Coverage.case) kept);
  Alcotest.(check (list string))
    "same counter set moved" (covered es) (covered kept)

let test_minimise_idempotent () =
  let es =
    [
      entry 0 [ "a:1"; "b:1" ];
      entry 1 [ "b:1" ];
      entry 2 [ "c:1"; "d:1" ];
      entry 3 [ "a:1"; "d:1" ];
      entry 4 [ "e:1" ];
    ]
  in
  let once = Coverage.minimise es in
  let twice = Coverage.minimise once in
  check_bool "idempotent" true
    (List.equal
       (fun a b -> a.Coverage.case = b.Coverage.case)
       once twice);
  Alcotest.(check (list string)) "coverage preserved" (covered es) (covered once)

let test_minimise_deterministic_ties () =
  (* equal gain: the earliest case wins *)
  let es = [ entry 5 [ "a:1" ]; entry 2 [ "a:1" ]; entry 9 [ "a:1" ] ] in
  Alcotest.(check (list int))
    "earliest kept" [ 2 ]
    (List.map (fun e -> e.Coverage.case) (Coverage.minimise es))

(* ---- counterexample dedup --------------------------------------------- *)

let test_cex_hash () =
  let sc1 = scenario_of Process.Stop in
  let sc2 = scenario_of (Process.send "a" (Expr.int 0) Process.Stop) in
  let h = Coverage.hash_counterexample in
  check_bool "same oracle and scenario agree" true
    (Int64.equal (h ~oracle:"o" sc1) (h ~oracle:"o" sc1));
  check_bool "oracle distinguishes" false
    (Int64.equal (h ~oracle:"o1" sc1) (h ~oracle:"o2" sc1));
  check_bool "scenario distinguishes" false
    (Int64.equal (h ~oracle:"o" sc1) (h ~oracle:"o" sc2))

(* ---- the bias loop ---------------------------------------------------- *)

let test_bias_defaults_and_growth () =
  let b = Coverage.Bias.create () in
  check_bool "fresh bias is the default distribution" true
    (Coverage.Bias.params b = Gen.default);
  (* credit a par/hide-heavy gaining scenario repeatedly *)
  let heavy =
    scenario_of
      (Process.Par
         ( Chan_set.of_names [ "a" ],
           Chan_set.of_names [ "b" ],
           Process.Hide
             ( Chan_set.of_names [ "a" ],
               Process.send "a" (Expr.int 0) Process.Stop ),
           Process.send "b" (Expr.int 1) Process.Stop ))
  in
  for _ = 1 to 50 do
    Coverage.Bias.observe b heavy ~gained:3
  done;
  let p = Coverage.Bias.params b in
  check_bool "within clamp" true (p = Gen.clamp_params p);
  (* a non-gaining observation must not move the credits *)
  let before = Coverage.Bias.params b in
  Coverage.Bias.observe b heavy ~gained:0;
  check_bool "no credit without gain" true (before = Coverage.Bias.params b)

let test_bias_stagnation_cycles () =
  let b = Coverage.Bias.create () in
  let p0 = Coverage.Bias.params b in
  Coverage.Bias.stagnate b;
  let p1 = Coverage.Bias.params b in
  check_bool "stagnation perturbs" false (p0 = p1);
  (* deterministic: rebuilding the same history gives the same params *)
  let b' = Coverage.Bias.create () in
  Coverage.Bias.stagnate b';
  check_bool "reproducible" true (p1 = Coverage.Bias.params b')

(* ---- the guided campaign ---------------------------------------------- *)

let small cfg = { cfg with Fuzz.max_cases = 12; seed = 2026 }

let test_guided_deterministic () =
  let cfg = small Fuzz.default_config in
  let r1, c1 = Fuzz.run_coverage cfg in
  let r2, c2 = Fuzz.run_coverage { cfg with Fuzz.jobs = 4 } in
  check_int "same cases" r1.Fuzz.cases r2.Fuzz.cases;
  check_int "same distinct features" c1.Fuzz.distinct c2.Fuzz.distinct;
  check_bool "same curve" true (c1.Fuzz.curve = c2.Fuzz.curve);
  check_bool "same corpus hashes" true
    (List.equal
       (fun a b -> Int64.equal a.Coverage.hash b.Coverage.hash)
       c1.Fuzz.corpus c2.Fuzz.corpus);
  check_bool "no counterexamples" true (r1.Fuzz.counterexamples = []);
  check_bool "coverage grew" true (c1.Fuzz.distinct > 0);
  check_bool "curve is monotone" true
    (let rec mono = function
       | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono c1.Fuzz.curve);
  check_bool "minimised covers no less" true
    (List.length c1.Fuzz.minimised <= List.length c1.Fuzz.corpus
    && covered c1.Fuzz.minimised = covered c1.Fuzz.corpus)

let test_budget_exhausted_verdict () =
  let cfg = { (small Fuzz.default_config) with Fuzz.budget = Some 0.0 } in
  let r = Fuzz.run cfg in
  check_bool "exhausted" true r.Fuzz.exhausted;
  check_int "no cases ran" 0 r.Fuzz.cases;
  let line = Format.asprintf "%a" Fuzz.pp_report r in
  check_bool "verdict names the budget" true
    (contains line "budget exhausted");
  (* and the unbudgeted run completes *)
  let r = Fuzz.run (small Fuzz.default_config) in
  check_bool "completed" false r.Fuzz.exhausted;
  let line = Format.asprintf "%a" Fuzz.pp_report r in
  check_bool "verdict says completed" true
    (contains line "(completed)");
  (* sharded runs report exhaustion the same way *)
  let r =
    Fuzz.run { (small Fuzz.default_config) with Fuzz.budget = Some 0.0; jobs = 2 }
  in
  check_bool "sharded exhaustion" true r.Fuzz.exhausted

let () =
  Alcotest.run "coverage"
    [
      ( "features",
        [
          Alcotest.test_case "stable keys" `Quick test_stable_keys;
          Alcotest.test_case "diff buckets" `Quick test_diff_buckets;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "hash order-insensitive" `Quick
            test_hash_order_insensitive;
        ] );
      ( "map",
        [ Alcotest.test_case "gains and membership" `Quick test_map_gains ] );
      ( "minimise",
        [
          Alcotest.test_case "subsumption sound" `Quick
            test_minimise_subsumption;
          Alcotest.test_case "idempotent" `Quick test_minimise_idempotent;
          Alcotest.test_case "deterministic ties" `Quick
            test_minimise_deterministic_ties;
        ] );
      ( "dedup",
        [ Alcotest.test_case "shrunk-hash keys" `Quick test_cex_hash ] );
      ( "bias",
        [
          Alcotest.test_case "defaults and growth" `Quick
            test_bias_defaults_and_growth;
          Alcotest.test_case "stagnation cycles" `Quick
            test_bias_stagnation_cycles;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "guided run deterministic at any jobs" `Quick
            test_guided_deterministic;
          Alcotest.test_case "budget-exhausted verdict" `Quick
            test_budget_exhausted_verdict;
        ] );
    ]
