(* The automatic tactic: structure-directed proofs, invariant tables,
   recursion (single, array, mutual), parallel decomposition, failures. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let wire_le_input = Assertion.Prefix (Term.chan "wire", Term.chan "input")

let proved ?tables ctx j =
  match Tactic.prove_and_check ?tables ctx j with
  | Ok _ -> true
  | Error _ -> false

let test_stop_and_prefixes () =
  let ctx = Sequent.context Defs.empty in
  check_bool "STOP" true (proved ctx (Sequent.Holds (Process.Stop, wire_le_input)));
  let p =
    Process.send "wire" (Expr.int 1)
      (Process.send "wire" (Expr.int 2) Process.Stop)
  in
  let spec =
    Assertion.Prefix
      (Term.chan "wire", Term.Const (Value.Seq [ Value.Int 1; Value.Int 2 ]))
  in
  check_bool "two outputs against a literal" true
    (proved ctx (Sequent.Holds (p, spec)))

let test_copier () =
  let ctx = Sequent.context defs_copier in
  let tables = Tactic.tables ~invariants:[ ("copier", wire_le_input) ] () in
  check_bool "recursion with registered invariant" true
    (proved ~tables ctx (Sequent.Holds (Process.ref_ "copier", wire_le_input)));
  (* a weaker goal goes through consequence *)
  let weaker =
    Assertion.Cmp (Assertion.Ge, Term.Len (Term.chan "input"), Term.Len (Term.chan "wire"))
  in
  match Tactic.prove_and_check ~tables ctx (Sequent.Holds (Process.ref_ "copier", weaker)) with
  | Ok (Proof.Consequence _, _) -> ()
  | Ok (p, _) -> Alcotest.failf "expected a consequence root, got %s" (Proof.rule_name p)
  | Error m -> Alcotest.fail m

let test_goal_directed_retry () =
  (* #input <= #wire + 1 does not follow pointwise from wire <= input,
     but is inductive on its own; prove_and_check must retry with the
     goal as the invariant (the paper's §2 length example) *)
  let ctx = Sequent.context Paper.Copier.defs in
  match
    Tactic.prove_and_check ~tables:Paper.Copier.tables ctx
      (Sequent.Holds (Paper.Copier.copier, Paper.Copier.count_spec))
  with
  | Ok (Proof.Fix _, _) -> ()
  | Ok (p, _) -> Alcotest.failf "expected recursion, got %s" (Proof.rule_name p)
  | Error m -> Alcotest.fail m

let test_without_invariant_fails_gracefully () =
  let ctx = Sequent.context defs_copier in
  match Tactic.auto ctx (Sequent.Holds (Process.ref_ "copier", wire_le_input)) with
  | Error _ -> () (* unbounded unfolding is refused *)
  | Ok _ -> Alcotest.fail "expected failure without an invariant"

let test_unfold_fallback_terminating () =
  (* non-recursive alias: unfolding succeeds without any table *)
  let defs =
    Defs.empty
    |> Defs.define "once" (Process.send "a" (Expr.int 1) Process.Stop)
    |> Defs.define "alias" (Process.ref_ "once")
  in
  let ctx = Sequent.context defs in
  let spec =
    Assertion.Prefix (Term.chan "a", Term.Const (Value.Seq [ Value.Int 1 ]))
  in
  check_bool "alias unfolds" true
    (proved ctx (Sequent.Holds (Process.ref_ "alias", spec)))

let test_mutual_recursion () =
  (* ping = a!0 -> pong, pong = b!0 -> ping: prove #b <= #a for ping *)
  let defs =
    Defs.empty
    |> Defs.define "ping" (Process.send "a" (Expr.int 0) (Process.ref_ "pong"))
    |> Defs.define "pong" (Process.send "b" (Expr.int 0) (Process.ref_ "ping"))
  in
  let ctx = Sequent.context defs in
  let inv_ping =
    Assertion.Cmp (Assertion.Le, Term.Len (Term.chan "b"), Term.Len (Term.chan "a"))
  in
  let inv_pong =
    Assertion.Cmp
      ( Assertion.Le,
        Term.Len (Term.chan "b"),
        Term.Add (Term.Len (Term.chan "a"), Term.int 1) )
  in
  (* joint Fix over both names; the conjunction of invariants closes *)
  let tables =
    Tactic.tables ~invariants:[ ("ping", inv_ping); ("pong", inv_pong) ] ()
  in
  match Tactic.prove_and_check ~tables ctx (Sequent.Holds (Process.ref_ "ping", inv_ping)) with
  | Ok (Proof.Fix (specs, 0), report) ->
    check_int "two specifications" 2 (List.length specs);
    check_bool "not all syntactic" true (Check.tested_obligations report >= 0)
  | Ok (p, _) -> Alcotest.failf "expected recursion at the root, got %s" (Proof.rule_name p)
  | Error m -> Alcotest.fail m

let test_array_invariant () =
  let defs =
    Defs.empty
    |> Defs.define_array "emit" "x" (Vset.Range (0, 2))
         (Process.Output (Chan_expr.simple "a", Expr.Var "x", Process.Stop))
  in
  let spec = Assertion.Prefix (Term.chan "a", Term.Cons (Term.Var "x", Term.empty_seq)) in
  let tables =
    Tactic.tables ~array_invariants:[ ("emit", ("x", Vset.Range (0, 2), spec)) ] ()
  in
  let ctx = Sequent.context defs in
  check_bool "array judgment" true
    (proved ~tables ctx (Sequent.Holds_all ("emit", "x", Vset.Range (0, 2), spec)));
  (* instance via forall-elim *)
  let inst = Assertion.subst_var "x" (Term.int 1) spec in
  check_bool "instance" true
    (proved ~tables ctx (Sequent.Holds (Process.call "emit" (Expr.int 1), inst)))

let test_parallel_decomposition () =
  let ctx = Sequent.context Paper.Copier.defs in
  (* explicit conjunction goal: direct parallelism *)
  let both = Assertion.And (Paper.Copier.copier_spec, Paper.Copier.recopier_spec) in
  (match
     Tactic.prove_and_check ~tables:Paper.Copier.tables ctx
       (Sequent.Holds (Paper.Copier.network, both))
   with
  | Ok (Proof.Parallelism _, _) -> ()
  | Ok (p, _) -> Alcotest.failf "expected parallelism, got %s" (Proof.rule_name p)
  | Error m -> Alcotest.fail m);
  (* transitive goal: inferred invariants + consequence *)
  check_bool "output <= input via inference" true
    (proved ~tables:Paper.Copier.tables ctx
       (Sequent.Holds (Paper.Copier.network, Paper.Copier.network_spec)));
  (* hidden wire: the chan rule applies on top *)
  check_bool "through hiding" true
    (proved ~tables:Paper.Copier.tables ctx
       (Sequent.Holds (Paper.Copier.pipe, Paper.Copier.network_spec)))

let test_hiding_scope_refused () =
  let ctx = Sequent.context Paper.Copier.defs in
  (* the goal mentions the concealed wire: not provable by the chan rule *)
  match
    Tactic.auto ~tables:Paper.Copier.tables ctx
      (Sequent.Holds (Paper.Copier.pipe, Paper.Copier.copier_spec))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected scope failure"

let test_fresh_variables_distinct () =
  (* nested inputs need distinct fresh variables *)
  let p =
    Process.recv "a" "x" (Vset.Range (0, 1))
      (Process.recv "a" "y" (Vset.Range (0, 1)) Process.Stop)
  in
  let ctx = Sequent.context Defs.empty in
  match
    Tactic.prove_and_check ctx
      (Sequent.Holds (p, Assertion.Cmp (Assertion.Le, Term.Len (Term.chan "a"), Term.int 2)))
  with
  | Ok (Proof.Input_rule (v1, Proof.Input_rule (v2, _)), _) ->
    check_bool "distinct" true (not (String.equal v1 v2))
  | Ok _ -> Alcotest.fail "expected nested input rules"
  | Error m -> Alcotest.fail m

let test_proof_sizes_reported () =
  let ctx = Sequent.context Paper.Protocol.defs in
  match
    Tactic.prove_and_check ~tables:Paper.Protocol.tables ctx
      (Sequent.Holds (Paper.Protocol.sender, Paper.Protocol.sender_spec))
  with
  | Ok (proof, report) ->
    check_int "Table 1 has 11 rule applications" 11 (Proof.size proof);
    check_int "Table 1 lists 11 steps" 11 (List.length report.Check.steps)
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "tactic"
    [
      ( "structural",
        [
          Alcotest.test_case "stop and prefixes" `Quick test_stop_and_prefixes;
          Alcotest.test_case "fresh variables distinct" `Quick
            test_fresh_variables_distinct;
          Alcotest.test_case "unfold fallback" `Quick
            test_unfold_fallback_terminating;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "copier" `Quick test_copier;
          Alcotest.test_case "goal-directed retry" `Quick test_goal_directed_retry;
          Alcotest.test_case "missing invariant fails" `Quick
            test_without_invariant_fails_gracefully;
          Alcotest.test_case "mutual" `Quick test_mutual_recursion;
          Alcotest.test_case "process array" `Quick test_array_invariant;
        ] );
      ( "composition",
        [
          Alcotest.test_case "parallel decomposition" `Quick
            test_parallel_decomposition;
          Alcotest.test_case "hiding scope refused" `Quick
            test_hiding_scope_refused;
          Alcotest.test_case "Table-1 size" `Quick test_proof_sizes_reported;
        ] );
    ]
