(* The verification service: differential byte-identity against the
   one-shot CLI binary, bounded framing, disconnect resilience,
   request budgets and warm-start persistence. *)

module Server = Csp_server.Server
module Protocol = Csp_server.Protocol
module Workload = Csp_server.Workload
module Json = Csp_persist.Json
module Obs = Csp_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- in-process harness ------------------------------------------------ *)

let fresh_server ?limits ?warm () =
  match Server.create (Server.config ?limits ?warm "unused.sock") with
  | Ok t -> t
  | Error m -> Alcotest.fail m

let req op kvs = Json.Obj (("op", Json.str op) :: kvs)
let src s = ("source", Json.str s)

let response t request =
  match Json.parse (Server.handle_line t (Json.to_string request)) with
  | Ok j -> j
  | Error m -> Alcotest.failf "response is not valid JSON: %s" m

let outcome resp =
  match (Json.mem_str "output" resp, Json.mem_int "exit" resp) with
  | Some o, Some e -> (o, e)
  | _ ->
    Alcotest.failf "response carries no output/exit: %s" (Json.to_string resp)

let error_kind resp =
  match (Json.mem_bool "ok" resp, Json.mem_str "kind" resp) with
  | Some false, Some k -> k
  | _ -> Alcotest.failf "expected an error response: %s" (Json.to_string resp)

(* ---- the real binary --------------------------------------------------- *)

let cli = "../bin/cspc.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args ^ " 2>/dev/null" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    let n = input ic bytes 0 (Bytes.length bytes) in
    if n > 0 then begin
      Buffer.add_subbytes buf bytes 0 n;
      drain ()
    end
  in
  drain ();
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255
  in
  (Buffer.contents buf, code)

let slurp path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let with_temp_source source f =
  let path = Filename.temp_file "cspc-diff" ".csp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  f path

(* ---- differential cases ------------------------------------------------ *)

let refine_ok_source = "impl = a!0 -> impl\nspec = a!0 -> spec | b!0 -> spec\n"
let refine_fail_source = "impl = a!0 -> b!0 -> impl\nspec = a!0 -> spec\n"

let protocol_source = slurp "../examples/protocol.csp"
let copier_source = slurp "corpus/prover-sound-copier.csp"
let ring_source = slurp "corpus/closure-kernel-token-ring.csp"
let window_source = slurp "corpus/op-vs-deno-sliding-window.csp"

(* Each case: the server request and the equivalent one-shot command
   line.  The assertion is bytes-for-bytes equality of the server's
   [output] with the CLI's stdout, and of [exit] with its status. *)
let diff_cases =
  [
    ("parse protocol", protocol_source, req "parse" [], fun p -> [ "parse"; p ]);
    ("parse copier", copier_source, req "parse" [], fun p -> [ "parse"; p ]);
    ( "graph ring",
      ring_source,
      req "graph" [ ("process", Json.str "main") ],
      fun p -> [ "graph"; p; "-p"; "main" ] );
    ( "graph window tight budget",
      window_source,
      req "graph" [ ("process", Json.str "main"); ("max_states", Json.int 5) ],
      fun p -> [ "graph"; p; "-p"; "main"; "--max-states"; "5" ] );
    ( "refine holds",
      refine_ok_source,
      req "refine" [ ("impl", Json.str "impl"); ("spec", Json.str "spec") ],
      fun p -> [ "refine"; p; "-p"; "impl"; "-s"; "spec" ] );
    ( "refine fails",
      refine_fail_source,
      req "refine" [ ("impl", Json.str "impl"); ("spec", Json.str "spec") ],
      fun p -> [ "refine"; p; "-p"; "impl"; "-s"; "spec" ] );
    ( "refine weak",
      refine_ok_source,
      req "refine"
        [ ("impl", Json.str "impl"); ("spec", Json.str "impl");
          ("weak", Json.Bool true) ],
      fun p -> [ "refine"; p; "-p"; "impl"; "-s"; "impl"; "--weak" ] );
    ("prove protocol", protocol_source, req "prove" [], fun p -> [ "prove"; p ]);
    ("prove copier", copier_source, req "prove" [], fun p -> [ "prove"; p ]);
  ]

let test_differential () =
  let t = fresh_server () in
  List.iter
    (fun (label, source, request, args) ->
      let request =
        match request with
        | Json.Obj kvs -> Json.Obj (kvs @ [ src source ])
        | j -> j
      in
      let server_out, server_exit = outcome (response t request) in
      with_temp_source source @@ fun path ->
      let cli_out, cli_exit = run_cli (args path) in
      check_string (label ^ ": output") cli_out server_out;
      check_int (label ^ ": exit") cli_exit server_exit;
      (* the second hit answers from warm caches — still byte-identical *)
      let warm_out, warm_exit = outcome (response t request) in
      check_string (label ^ ": warm output") cli_out warm_out;
      check_int (label ^ ": warm exit") cli_exit warm_exit)
    diff_cases

(* The fuzz report prints wall-clock seconds, so byte-equality holds
   only after masking the one timing field ("N case(s) in T.TTs"). *)
let mask_elapsed s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let isdigit c = c >= '0' && c <= '9' in
    if
      !i + 4 <= n
      && String.sub s !i 4 = " in "
      && !i + 4 < n
      && isdigit s.[!i + 4]
    then begin
      let j = ref (!i + 4) in
      while !j < n && (isdigit s.[!j] || s.[!j] = '.') do incr j done;
      if !j < n && s.[!j] = 's' then begin
        Buffer.add_string b " in Ts";
        i := !j + 1
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_differential_fuzz () =
  let t = fresh_server () in
  let request =
    req "fuzz" [ ("seed", Json.int 5); ("count", Json.int 25) ]
  in
  let server_out, server_exit = outcome (response t request) in
  let cli_out, cli_exit = run_cli [ "fuzz"; "--seed"; "5"; "--count"; "25" ] in
  check_string "fuzz output (elapsed masked)" (mask_elapsed cli_out)
    (mask_elapsed server_out);
  check_int "fuzz exit" cli_exit server_exit

(* ---- request validation ------------------------------------------------ *)

let test_bad_requests () =
  let t = fresh_server () in
  check_string "not json" "malformed-frame"
    (error_kind
       (match Json.parse (Server.handle_line t "this is not json") with
       | Ok j -> j
       | Error m -> Alcotest.fail m));
  check_string "not an object" "malformed-frame"
    (error_kind
       (match Json.parse (Server.handle_line t "[1,2]") with
       | Ok j -> j
       | Error m -> Alcotest.fail m));
  check_string "missing op" "bad-request"
    (error_kind (response t (Json.Obj [ ("id", Json.int 1) ])));
  check_string "unknown op" "bad-request"
    (error_kind (response t (req "frobnicate" [])));
  check_string "missing source" "bad-request"
    (error_kind (response t (req "parse" [])));
  check_string "bad source" "parse-error"
    (error_kind (response t (req "parse" [ src "x = " ])));
  check_string "unknown process" "bad-request"
    (error_kind
       (response t
          (req "graph" [ src "main = STOP\n"; ("process", Json.str "nope") ])));
  check_string "unknown oracle" "bad-request"
    (error_kind
       (response t (req "fuzz" [ ("oracles", Json.Arr [ Json.str "zap" ]) ])))

let test_budget_exceeded () =
  let t = fresh_server () in
  let graph_over =
    req "graph"
      [ src "main = a!0 -> main\n"; ("process", Json.str "main");
        ("max_states", Json.int 1_000_000_000) ]
  in
  check_string "graph over cap" "budget-exceeded"
    (error_kind (response t graph_over));
  let refine_over =
    req "refine"
      [ src refine_ok_source; ("impl", Json.str "impl");
        ("spec", Json.str "spec"); ("depth", Json.int 10_000) ]
  in
  check_string "refine over cap" "budget-exceeded"
    (error_kind (response t refine_over));
  let fuzz_over = req "fuzz" [ ("count", Json.int 10_000_000) ] in
  check_string "fuzz over cap" "budget-exceeded"
    (error_kind (response t fuzz_over));
  (* at the cap is fine *)
  let at_cap =
    req "graph"
      [ src "main = a!0 -> main\n"; ("process", Json.str "main");
        ("max_states", Json.int Protocol.default_limits.Protocol.max_states) ]
  in
  let _, code = outcome (response t at_cap) in
  check_int "graph at cap" 0 code

(* ---- framing ----------------------------------------------------------- *)

let with_pipe_reader ~max_frame payload f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ r; w ])
  @@ fun () ->
  let reader = Protocol.reader ~max_frame r in
  let n = String.length payload in
  let written = Unix.write_substring w payload 0 n in
  check_int "payload written" n written;
  f reader w

let test_oversized_frame_rejected () =
  with_pipe_reader ~max_frame:64
    (String.make 100 'a')
    (fun reader _ ->
      match Protocol.read_frame reader with
      | `Too_large -> ()
      | `Frame _ | `Eof -> Alcotest.fail "oversized frame not rejected")

let test_frame_carry () =
  with_pipe_reader ~max_frame:1024 "one\ntwo\nthr" (fun reader w ->
      (match Protocol.read_frame reader with
      | `Frame f -> check_string "first" "one" f
      | _ -> Alcotest.fail "expected frame");
      (match Protocol.read_frame reader with
      | `Frame f -> check_string "second" "two" f
      | _ -> Alcotest.fail "expected frame");
      ignore (Unix.write_substring w "ee\n" 0 3);
      match Protocol.read_frame reader with
      | `Frame f -> check_string "third" "three" f
      | _ -> Alcotest.fail "expected frame")

let test_partial_frame_is_eof () =
  with_pipe_reader ~max_frame:1024 "{\"op\":\"ping\"" (fun reader w ->
      Unix.close w;
      (* a client that died mid-request: the fragment is discarded *)
      match Protocol.read_frame reader with
      | `Eof -> ()
      | `Frame _ | `Too_large ->
        Alcotest.fail "partial frame at EOF must read as EOF")

(* ---- a live socket server ---------------------------------------------- *)

let with_server ?jobs ?limits ?warm f =
  let socket = Filename.temp_file "cspc-serve" ".sock" in
  Sys.remove socket;
  let cfg = Server.config ?jobs ?limits ?warm socket in
  let t =
    match Server.create cfg with Ok t -> t | Error m -> Alcotest.fail m
  in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.serve ~ready:(fun () -> Atomic.set ready true) t cfg)
  in
  while not (Atomic.get ready) do Domain.cpu_relax () done;
  Fun.protect
    ~finally:(fun () ->
      (match Workload.connect socket with
      | Ok conn ->
        ignore (Workload.request conn (req "shutdown" []));
        Workload.close conn
      | Error _ -> ());
      Domain.join d)
  @@ fun () -> f socket

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let request_exn conn j =
  match Workload.request conn j with
  | Ok r -> r
  | Error m -> Alcotest.fail m

let test_socket_differential () =
  with_server @@ fun socket ->
  let conn =
    match Workload.connect socket with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Fun.protect ~finally:(fun () -> Workload.close conn) @@ fun () ->
  let request =
    req "graph" [ src ring_source; ("process", Json.str "main") ]
  in
  let resp = request_exn conn request in
  let server_out, server_exit = outcome resp in
  with_temp_source ring_source @@ fun path ->
  let cli_out, cli_exit = run_cli [ "graph"; path; "-p"; "main" ] in
  check_string "socket graph output" cli_out server_out;
  check_int "socket graph exit" cli_exit server_exit

let test_client_disconnect_mid_request () =
  with_server @@ fun socket ->
  (* die mid-frame *)
  let fd = raw_connect socket in
  ignore (Unix.write_substring fd "{\"op\":\"pi" 0 9);
  Unix.close fd;
  (* die right after a complete request, without reading the answer *)
  let fd = raw_connect socket in
  let line = Json.to_string (req "ping" []) ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line));
  Unix.close fd;
  (* the server must still answer fresh connections *)
  let conn =
    match Workload.connect socket with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Fun.protect ~finally:(fun () -> Workload.close conn) @@ fun () ->
  let resp = request_exn conn (req "ping" []) in
  check_bool "server alive" true
    (Json.mem_bool "ok" resp = Some true)

(* A client that submits an expensive job and vanishes before the
   answer is ready: the worker's eventual write hits a dead socket
   (EPIPE/ECONNRESET), which must be absorbed as a normal disconnect
   — not kill the worker or wedge the accept loop. *)
let test_disconnect_during_slow_job () =
  with_server ~jobs:2 @@ fun socket ->
  let slow =
    req "graph"
      [ src window_source; ("process", Json.str "main");
        ("max_states", Json.int 50_000) ]
  in
  let line = Json.to_string slow ^ "\n" in
  (* several in a row so at least one close lands mid-computation *)
  for _ = 1 to 3 do
    let fd = raw_connect socket in
    ignore (Unix.write_substring fd line 0 (String.length line));
    Unix.close fd
  done;
  (* the pool must still answer fresh connections, including the very
     request the dead clients abandoned *)
  let conn =
    match Workload.connect socket with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Fun.protect ~finally:(fun () -> Workload.close conn) @@ fun () ->
  check_bool "server alive" true
    (Json.mem_bool "ok" (request_exn conn (req "ping" [])) = Some true);
  let _, code = outcome (request_exn conn slow) in
  check_int "abandoned request still answerable" 0 code

(* The source-context table is bounded: inserting more distinct
   sources than [max_sources] evicts the least recently used one.
   An evicted source is not an error — the next request on it just
   re-parses cold. *)
let test_source_table_bounded () =
  let cap = 4 in
  let limits =
    { Protocol.default_limits with Protocol.max_sources = cap }
  in
  let t = fresh_server ~limits () in
  let source i = Printf.sprintf "main = a!%d -> main\n" i in
  let parse i =
    let _, code = outcome (response t (req "parse" [ src (source i) ])) in
    check_int (Printf.sprintf "source %d parses" i) 0 code
  in
  for i = 0 to 9 do
    parse i;
    check_bool
      (Printf.sprintf "table bounded after %d distinct sources" (i + 1))
      true
      (Server.source_count t <= cap)
  done;
  check_int "table full at the cap" cap (Server.source_count t);
  (* source 0 was evicted long ago; it answers correctly when it
     comes back, through a cold re-parse *)
  parse 0;
  check_int "still at the cap after re-insert" cap (Server.source_count t);
  (* a hit refreshes recency: touch the oldest survivor, insert one
     more, and the touched source must still answer from cache while
     the table stays at the cap *)
  parse 7;
  parse 10;
  parse 7;
  check_int "bounded across hits and inserts" cap (Server.source_count t);
  (* the cached entries still do real work *)
  let out, code =
    outcome
      (response t
         (req "graph" [ src (source 7); ("process", Json.str "main") ]))
  in
  check_int "graph on cached source" 0 code;
  check_bool "graph output nonempty" true (String.length out > 0)

let test_socket_oversized_and_malformed () =
  let limits = { Protocol.default_limits with Protocol.max_frame = 1024 } in
  with_server ~limits @@ fun socket ->
  (* malformed frame: answered, connection stays usable *)
  let fd = raw_connect socket in
  let reader = Protocol.reader fd in
  ignore (Unix.write_substring fd "nonsense\n" 0 9);
  (match Protocol.read_frame reader with
  | `Frame f ->
    check_string "malformed kind" "malformed-frame"
      (error_kind
         (match Json.parse f with Ok j -> j | Error m -> Alcotest.fail m))
  | _ -> Alcotest.fail "no response to malformed frame");
  let line = Json.to_string (req "ping" []) ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line));
  (match Protocol.read_frame reader with
  | `Frame f ->
    check_bool "usable after malformed" true
      (match Json.parse f with
      | Ok j -> Json.mem_bool "ok" j = Some true
      | Error _ -> false)
  | _ -> Alcotest.fail "no response after malformed frame");
  Unix.close fd;
  (* oversized frame: answered once, then the connection is dropped *)
  let fd = raw_connect socket in
  let reader = Protocol.reader fd in
  let big = String.make 4096 'a' in
  ignore (Unix.write_substring fd big 0 (String.length big));
  (match Protocol.read_frame reader with
  | `Frame f ->
    check_string "oversized kind" "frame-too-large"
      (error_kind
         (match Json.parse f with Ok j -> j | Error m -> Alcotest.fail m))
  | _ -> Alcotest.fail "no response to oversized frame");
  (match Protocol.read_frame reader with
  | `Eof -> ()
  | _ -> Alcotest.fail "connection not dropped after oversized frame");
  Unix.close fd;
  (* and the server survives both *)
  let conn =
    match Workload.connect socket with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Fun.protect ~finally:(fun () -> Workload.close conn) @@ fun () ->
  check_bool "server alive" true
    (Json.mem_bool "ok" (request_exn conn (req "ping" [])) = Some true)

(* With --jobs > 1 connections are dispatched onto the pool's
   stealing session; answers must be exactly the sequential ones. *)
let test_concurrent_jobs () =
  with_server ~jobs:2 @@ fun socket ->
  let conns =
    List.init 3 (fun _ ->
        match Workload.connect socket with
        | Ok c -> c
        | Error m -> Alcotest.fail m)
  in
  Fun.protect ~finally:(fun () -> List.iter Workload.close conns)
  @@ fun () ->
  List.iteri
    (fun i conn ->
      let source = Printf.sprintf "main = a!%d -> main\n" i in
      let resp =
        request_exn conn
          (req "graph" [ src source; ("process", Json.str "main") ])
      in
      let out, code = outcome resp in
      check_int (Printf.sprintf "conn %d exit" i) 0 code;
      check_bool
        (Printf.sprintf "conn %d labelled" i)
        true
        (String.length out > 0
        && String.sub out 0 1 = "1" (* one state, self loop *)))
    conns

(* ---- persistence through the server ------------------------------------ *)

let test_save_load_roundtrip () =
  let snap = Filename.temp_file "cspc-snap" ".cspc" in
  Fun.protect ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
  @@ fun () ->
  let graph_req =
    req "graph" [ src ring_source; ("process", Json.str "main") ]
  in
  let prove_req = req "prove" [ src copier_source ] in
  let refine_req =
    req "refine"
      [ src refine_ok_source; ("impl", Json.str "impl");
        ("spec", Json.str "spec") ]
  in
  let cold = fresh_server () in
  let cold_answers =
    List.map (fun r -> outcome (response cold r))
      [ graph_req; prove_req; refine_req ]
  in
  (match Json.mem_bool "ok" (response cold (req "save" [ ("path", Json.str snap) ])) with
  | Some true -> ()
  | _ -> Alcotest.fail "save failed");
  (* a fresh process warm-started from the snapshot *)
  let warm = fresh_server ~warm:snap ()
  in
  check_bool "warm state has sources" true (Server.source_count warm >= 2);
  check_bool "warm state has compiled automata" true
    (Server.compiled_total warm >= 1);
  (* the first request after warm start recompiles nothing *)
  let (out, code), deltas =
    Obs.delta_snapshot (fun () -> outcome (response warm graph_req))
  in
  let delta name =
    Option.value ~default:0 (List.assoc_opt name deltas)
  in
  check_int "no compile misses on warm graph" 0 (delta "engine.compile_misses");
  check_bool "compile cache hit on warm graph" true
    (delta "engine.compile_hits" >= 1);
  let warm_answers =
    (out, code)
    :: List.map (fun r -> outcome (response warm r)) [ prove_req; refine_req ]
  in
  List.iteri
    (fun i ((cold_out, cold_code), (warm_out, warm_code)) ->
      check_string (Printf.sprintf "answer %d bytes" i) cold_out warm_out;
      check_int (Printf.sprintf "answer %d exit" i) cold_code warm_code)
    (List.combine cold_answers warm_answers)

let test_warm_refuses_damage () =
  let snap = Filename.temp_file "cspc-snap" ".cspc" in
  Fun.protect ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
  @@ fun () ->
  let t = fresh_server () in
  ignore (response t (req "prove" [ src copier_source ]));
  (match Json.mem_bool "ok" (response t (req "save" [ ("path", Json.str snap) ])) with
  | Some true -> ()
  | _ -> Alcotest.fail "save failed");
  let img = slurp snap in
  let oc = open_out snap in
  output_string oc (String.sub img 0 (String.length img - 5));
  close_out oc;
  match Server.create (Server.config ~warm:snap "unused.sock") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a truncated warm snapshot must refuse to start"

let () =
  Alcotest.run "server"
    [
      ( "differential",
        [
          Alcotest.test_case "cli byte-identity" `Quick test_differential;
          Alcotest.test_case "fuzz (elapsed masked)" `Quick
            test_differential_fuzz;
          Alcotest.test_case "over a socket" `Quick test_socket_differential;
        ] );
      ( "validation",
        [
          Alcotest.test_case "bad requests" `Quick test_bad_requests;
          Alcotest.test_case "budget exceeded" `Quick test_budget_exceeded;
        ] );
      ( "framing",
        [
          Alcotest.test_case "oversized rejected" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "carry across frames" `Quick test_frame_carry;
          Alcotest.test_case "partial frame is EOF" `Quick
            test_partial_frame_is_eof;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "mid-request disconnect" `Quick
            test_client_disconnect_mid_request;
          Alcotest.test_case "disconnect during slow job" `Quick
            test_disconnect_during_slow_job;
          Alcotest.test_case "source table bounded" `Quick
            test_source_table_bounded;
          Alcotest.test_case "oversized and malformed on socket" `Quick
            test_socket_oversized_and_malformed;
          Alcotest.test_case "concurrent jobs" `Quick test_concurrent_jobs;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load byte-identity" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "damaged warm refused" `Quick
            test_warm_refuses_damage;
        ] );
    ]
