(* The paper's systems end to end (experiments E1, E2, E3, E7): every
   claim of §1.3 and §2.2 checked by bounded model checking AND proved
   with the inference rules. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_holds ?(depth = 5) ?(nat = 2) ?nat_bound defs p spec =
  let cfg = Step.config ~sampler:(Sampler.nat_bound nat) defs in
  match Sat.check ?nat_bound ~depth cfg p spec with
  | Sat.Holds _ -> ()
  | Sat.Fails { trace } -> Alcotest.failf "refuted on %a" Trace.pp trace

let assert_proved ?tables defs j =
  match Tactic.prove_and_check ?tables (Sequent.context defs) j with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

(* ---- E1: the copier pipeline ----------------------------------------- *)

module C = Paper.Copier

let test_copier_sat () =
  assert_holds C.defs C.copier C.copier_spec;
  assert_holds C.defs C.recopier C.recopier_spec;
  assert_holds C.defs C.network C.network_spec;
  assert_holds C.defs C.pipe C.network_spec;
  (* the paper's length bound: copier sat #input <= #wire + 1 *)
  assert_holds C.defs C.copier C.count_spec

let test_copier_proofs () =
  assert_proved ~tables:C.tables C.defs (Sequent.Holds (C.copier, C.copier_spec));
  assert_proved ~tables:C.tables C.defs (Sequent.Holds (C.recopier, C.recopier_spec));
  assert_proved ~tables:C.tables C.defs (Sequent.Holds (C.network, C.network_spec));
  assert_proved ~tables:C.tables C.defs (Sequent.Holds (C.pipe, C.network_spec))

let test_copier_proof_fully_syntactic () =
  (* the §2.1 example proof needs no testing-based evidence at all *)
  match
    Tactic.prove_and_check ~tables:C.tables (Sequent.context C.defs)
      (Sequent.Holds (C.copier, C.copier_spec))
  with
  | Ok (_, report) -> check_bool "fully proved" true (Check.fully_proved report)
  | Error m -> Alcotest.fail m

let test_copier_guardedness () =
  check_bool "definitions well guarded" true (Result.is_ok (Defs.well_guarded C.defs))

let test_copier_wrong_spec_refuted () =
  let wrong = Assertion.Prefix (Term.chan "input", Term.chan "wire") in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) C.defs in
  match Sat.check ~depth:4 cfg C.copier wrong with
  | Sat.Fails _ -> ()
  | Sat.Holds _ -> Alcotest.fail "expected refutation"

(* ---- E2: the protocol and Table 1 ------------------------------------- *)

module P = Paper.Protocol

let test_protocol_sat () =
  assert_holds P.defs P.sender P.sender_spec;
  assert_holds P.defs P.receiver P.receiver_spec;
  assert_holds ~depth:6 P.defs P.network
    (Assertion.And (P.sender_spec, P.receiver_spec));
  assert_holds ~depth:6 P.defs P.protocol P.protocol_spec

let test_table_1 () =
  (* the headline proof, with its exact size *)
  match
    Tactic.prove_and_check ~tables:P.tables (Sequent.context P.defs)
      (Sequent.Holds (P.sender, P.sender_spec))
  with
  | Ok (proof, report) ->
    check_int "11 rule applications" 11 (Proof.size proof);
    check_bool "no refuted obligations" true
      (List.for_all
         (fun o -> Csp_assertion.Prover.verdict_ok o.Check.verdict)
         report.Check.obligations);
    (* the recursion rule carries both sender and q specifications *)
    (match proof with
    | Proof.Fix (specs, _) -> check_int "joint recursion" 2 (List.length specs)
    | _ -> Alcotest.fail "expected recursion at the root")
  | Error m -> Alcotest.fail m

let test_protocol_proofs () =
  let x, m, s = P.q_spec in
  assert_proved ~tables:P.tables P.defs (Sequent.Holds_all ("q", x, m, s));
  assert_proved ~tables:P.tables P.defs (Sequent.Holds (P.receiver, P.receiver_spec));
  assert_proved ~tables:P.tables P.defs (Sequent.Holds (P.protocol, P.protocol_spec))

let test_protocol_needs_f () =
  (* without cancelling, the raw wire is NOT a prefix of the input *)
  let wrong = Assertion.Prefix (Term.chan "wire", Term.chan "input") in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) P.defs in
  match Sat.check ~depth:4 cfg P.network wrong with
  | Sat.Fails _ -> ()
  | Sat.Holds _ -> Alcotest.fail "the ACK on the wire must refute this"

let test_protocol_retransmission_traces () =
  (* a NACK forces a retransmission of the same message *)
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) P.defs in
  check_bool "retransmission trace accepted" true
    (Step.accepts_trace cfg P.network
       [
         ev "input" 1;
         ev "wire" 1;
         Event.v "wire" Value.nack;
         ev "wire" 1;
         Event.v "wire" Value.ack;
         ev "output" 1;
       ]);
  check_bool "different retransmission rejected" false
    (Step.accepts_trace cfg P.network
       [ ev "input" 1; ev "wire" 1; Event.v "wire" Value.nack; ev "wire" 0 ])

(* ---- E3: the multiplier ------------------------------------------------ *)

module M = Paper.Multiplier

let test_multiplier_sat () =
  let m = M.default in
  assert_holds ~depth:7 ~nat:2 ~nat_bound:8 m.M.defs m.M.network m.M.spec

let test_multiplier_simulation () =
  let m = M.make ~v:[ 3; 1; 4 ] in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 3) m.M.defs in
  let r =
    Csp_sim.Runner.run
      ~scheduler:(Scheduler.uniform ~seed:2)
      ~monitors:[ Csp_sim.Runner.monitor "products" m.M.spec ]
      ~max_steps:300 cfg m.M.multiplier
  in
  check_int "no violations" 0 (List.length r.Csp_sim.Runner.violations);
  check_bool "made progress" true
    (Stats.count r.Csp_sim.Runner.stats (Channel.simple "output") > 5)

let test_multiplier_sizes () =
  (* generalises beyond the paper's 3 stages *)
  List.iter
    (fun v ->
      let m = M.make ~v in
      let cfg = Step.config ~sampler:(Sampler.nat_bound 2) m.M.defs in
      let r =
        Csp_sim.Runner.run
          ~scheduler:(Scheduler.uniform ~seed:6)
          ~monitors:[ Csp_sim.Runner.monitor "products" m.M.spec ]
          ~max_steps:150 cfg m.M.multiplier
      in
      check_int "no violations" 0 (List.length r.Csp_sim.Runner.violations))
    [ [ 5 ]; [ 1; 2 ]; [ 2; 0; 1; 3 ] ]

let test_multiplier_wrong_vector_detected () =
  (* monitoring with the wrong vector's specification must fire *)
  let m = M.make ~v:[ 1; 2; 3 ] in
  let wrong = M.make ~v:[ 1; 2; 4 ] in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) m.M.defs in
  let r =
    Csp_sim.Runner.run
      ~scheduler:(Scheduler.uniform ~seed:8)
      ~monitors:[ Csp_sim.Runner.monitor "wrong" wrong.M.spec ]
      ~max_steps:300 cfg m.M.multiplier
  in
  check_bool "difference detected" true (r.Csp_sim.Runner.violations <> [])

let test_mult_stage_proof () =
  (* Per-instance proof.  The generic array invariant has open channel
     subscripts (col[i-1] vs col[i]), which the conservative
     substitution of the checker rightly refuses to rewrite; the paper's
     own proofs are also per concrete network.  So we specialise
     mult[2]'s defining equation to a plain definition with closed
     subscripts and prove the per-stage bound #col[2] <= #row[2]. *)
  let m = M.default in
  let mult2_body =
    Process.subst_value "i" (Value.Int 2)
      (Option.get (Defs.lookup m.M.defs "mult")).Defs.body
  in
  (* the recursive call becomes mult[2]; redirect it to the new name *)
  let rec redirect = function
    | Process.Ref ("mult", _) -> Process.ref_ "mult2"
    | Process.Output (c, e, k) -> Process.Output (c, e, redirect k)
    | Process.Input (c, x, s, k) -> Process.Input (c, x, s, redirect k)
    | Process.Choice (a, b) -> Process.Choice (redirect a, redirect b)
    | Process.Par (xa, ya, a, b) -> Process.Par (xa, ya, redirect a, redirect b)
    | Process.Hide (l, p) -> Process.Hide (l, redirect p)
    | (Process.Stop | Process.Ref _) as p -> p
  in
  let defs = Defs.define "mult2" (redirect mult2_body) Defs.empty in
  let spec =
    Assertion.Cmp
      ( Assertion.Le,
        Term.Len (Term.Chan (Chan_expr.indexed "col" (Expr.int 2))),
        Term.Len (Term.Chan (Chan_expr.indexed "row" (Expr.int 2))) )
  in
  let tables = Tactic.tables ~invariants:[ ("mult2", spec) ] () in
  assert_proved ~tables defs (Sequent.Holds (Process.ref_ "mult2", spec))

(* ---- E7: partial correctness cannot exclude deadlock ------------------- *)

let test_stop_satisfies_everything_satisfiable () =
  let specs =
    [
      C.copier_spec;
      C.network_spec;
      P.protocol_spec;
      Assertion.Prefix (Term.App ("f", Term.chan "wire"), Term.chan "input");
    ]
  in
  List.iter
    (fun spec ->
      match
        Check.check (Sequent.context Defs.empty)
          (Sequent.Holds (Process.Stop, spec))
          Proof.Emptiness
      with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "STOP should satisfy %a: %s" Assertion.pp spec m)
    specs

let test_deadlocking_network_passes () =
  (* crossed handshake: provable invariant, certain deadlock *)
  let ab = Chan_set.of_names [ "a"; "b" ] in
  let defs =
    Defs.empty
    |> Defs.define "l"
         (Process.send "a" (Expr.int 0)
            (Process.recv "b" "x" Vset.Nat (Process.ref_ "l")))
    |> Defs.define "r"
         (Process.send "b" (Expr.int 0)
            (Process.recv "a" "x" Vset.Nat (Process.ref_ "r")))
  in
  let net = Process.Par (ab, ab, Process.ref_ "l", Process.ref_ "r") in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  check_bool "immediate deadlock" true (Step.is_deadlocked cfg net);
  (* and yet bounded sat-checking accepts any satisfiable assertion *)
  match Sat.check ~depth:5 cfg net C.network_spec with
  | Sat.Holds _ -> ()
  | Sat.Fails _ -> Alcotest.fail "vacuously true on the empty trace set"

let () =
  Alcotest.run "paper"
    [
      ( "E1-copier",
        [
          Alcotest.test_case "bounded checks" `Quick test_copier_sat;
          Alcotest.test_case "proofs" `Quick test_copier_proofs;
          Alcotest.test_case "fully syntactic" `Quick
            test_copier_proof_fully_syntactic;
          Alcotest.test_case "guardedness" `Quick test_copier_guardedness;
          Alcotest.test_case "wrong spec refuted" `Quick
            test_copier_wrong_spec_refuted;
        ] );
      ( "E2-protocol",
        [
          Alcotest.test_case "bounded checks" `Quick test_protocol_sat;
          Alcotest.test_case "Table 1" `Quick test_table_1;
          Alcotest.test_case "companion proofs" `Quick test_protocol_proofs;
          Alcotest.test_case "f is necessary" `Quick test_protocol_needs_f;
          Alcotest.test_case "retransmission traces" `Quick
            test_protocol_retransmission_traces;
        ] );
      ( "E3-multiplier",
        [
          Alcotest.test_case "bounded check" `Quick test_multiplier_sat;
          Alcotest.test_case "simulation" `Quick test_multiplier_simulation;
          Alcotest.test_case "other sizes" `Quick test_multiplier_sizes;
          Alcotest.test_case "wrong vector detected" `Quick
            test_multiplier_wrong_vector_detected;
          Alcotest.test_case "per-stage proof" `Quick test_mult_stage_proof;
        ] );
      ( "E7-partiality",
        [
          Alcotest.test_case "STOP satisfies everything" `Quick
            test_stop_satisfies_everything_satisfiable;
          Alcotest.test_case "deadlock invisible to sat" `Quick
            test_deadlocking_network_passes;
        ] );
    ]
