(* The obligation prover: syntactic rules, ground evaluation, and
   testing-based refutation. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)

let is_proved = function Prover.Proved _ -> true | _ -> false
let is_refuted = function Prover.Refuted _ -> true | _ -> false
let is_unknown = function Prover.Unknown _ -> true | _ -> false
let prove ?hyps concl = Prover.prove (Prover.goal ?hyps concl)

let wire = Term.chan "wire"
let input = Term.chan "input"

let test_reflexivity () =
  check_bool "s <= s" true (is_proved (prove (Assertion.Prefix (wire, wire))));
  check_bool "t = t" true (is_proved (prove (Assertion.Eq (input, input))))

let test_empty_least () =
  check_bool "<> <= s" true
    (is_proved (prove (Assertion.Prefix (Term.empty_seq, wire))))

let test_cons_monotone () =
  (* x^wire <= x^input from wire <= input *)
  let hyp = Assertion.Prefix (wire, input) in
  let concl =
    Assertion.Prefix (Term.Cons (Term.Var "x", wire), Term.Cons (Term.Var "x", input))
  in
  check_bool "cons monotonicity" true (is_proved (prove ~hyps:[ hyp ] concl));
  (* and inside an implication under a quantifier *)
  check_bool "quantified implication" true
    (is_proved (prove (Assertion.Forall ("x", Vset.Nat, Assertion.Imp (hyp, concl)))))

let test_transitivity_chain () =
  let c i = Term.Chan (Chan_expr.indexed "c" (Expr.int i)) in
  let hyps =
    [
      Assertion.Prefix (c 3, c 2);
      Assertion.Prefix (c 2, c 1);
      Assertion.Prefix (c 1, c 0);
    ]
  in
  check_bool "three-step chain" true
    (is_proved (prove ~hyps (Assertion.Prefix (c 3, c 0))));
  check_bool "conjoined hypotheses are flattened" true
    (is_proved
       (prove
          ~hyps:[ Assertion.conj hyps ]
          (Assertion.Prefix (c 3, c 0))));
  check_bool "broken chain not syntactically provable" false
    (is_proved
       (prove
          ~hyps:[ Assertion.Prefix (c 3, c 2) ]
          (Assertion.Prefix (c 3, c 0))))

let test_length_arithmetic () =
  let len c = Term.Len (Term.chan c) in
  let le a b = Assertion.Cmp (Assertion.Le, a, b) in
  (* direct: #wire <= #wire + 1 *)
  check_bool "direct slack" true
    (is_proved (prove (le (len "wire") (Term.Add (len "wire", Term.int 1)))));
  (* cons normalisation: #(x^wire) = #wire + 1 *)
  check_bool "cons on both sides" true
    (is_proved
       (prove
          (le
             (Term.Len (Term.Cons (Term.Var "x", Term.chan "wire")))
             (Term.Add (len "wire", Term.int 1)))));
  (* through a hypothesis, with shifted constants — the count_spec
     obligation of the copier proof *)
  let hyp = le (len "input") (Term.Add (len "wire", Term.int 1)) in
  let goal =
    le
      (Term.Len (Term.Cons (Term.Var "v", Term.chan "input")))
      (Term.Add (Term.Len (Term.Cons (Term.Var "v", Term.chan "wire")), Term.int 1))
  in
  check_bool "copier count obligation" true
    (is_proved (prove ~hyps:[ hyp ] goal));
  (* catenation and literals *)
  check_bool "catenation" true
    (is_proved
       (prove
          (le
             (Term.Len (Term.Cat (Term.chan "a", Term.Const (Value.Seq [ Value.Int 1 ]))))
             (Term.Add (len "a", Term.int 2)))));
  (* NOT provable: dropping an atom *)
  check_bool "missing atom unproved" false
    (is_proved (prove (le (Term.Add (len "a", len "b")) (Term.Add (len "a", Term.int 5)))));
  (* NOT provable: constants in the wrong order *)
  check_bool "wrong constants unproved" false
    (is_proved (prove (le (Term.Add (len "a", Term.int 2)) (Term.Add (len "a", Term.int 1)))))

let test_hypothesis_and_ex_falso () =
  let a = Assertion.Prefix (wire, input) in
  check_bool "hypothesis" true (is_proved (prove ~hyps:[ a ] a));
  check_bool "ex falso" true
    (is_proved (prove ~hyps:[ Assertion.False ] (Assertion.Prefix (input, wire))))

let test_conjunction_split () =
  let a = Assertion.Prefix (wire, wire) and b = Assertion.Eq (input, input) in
  check_bool "both conjuncts" true (is_proved (prove (Assertion.And (a, b))))

let test_ground_evaluation () =
  let s = Term.Const (Value.Seq [ Value.Int 1 ]) in
  let t = Term.Const (Value.Seq [ Value.Int 1; Value.Int 2 ]) in
  check_bool "ground true" true (is_proved (prove (Assertion.Prefix (s, t))));
  check_bool "ground false" true (is_refuted (prove (Assertion.Prefix (t, s))));
  check_bool "ground quantifier" true
    (is_proved
       (prove
          (Assertion.Forall
             ("x", Vset.Range (0, 3), Assertion.Cmp (Assertion.Le, Term.Var "x", Term.int 3)))))

let test_semantic_refutation () =
  (* wire <= input is falsifiable — the tester must find a history *)
  check_bool "refuted with witness" true
    (is_refuted (prove (Assertion.Prefix (wire, input))));
  match prove (Assertion.Prefix (wire, input)) with
  | Prover.Refuted { hist; _ } ->
    (* the witness really falsifies the goal *)
    check_bool "witness valid" false
      (Assertion.eval (Term.ctx ~hist ()) (Assertion.Prefix (wire, input)))
  | _ -> Alcotest.fail "expected refutation"

let test_semantic_survival () =
  (* true but not syntactically provable: survives as Unknown *)
  let concl =
    Assertion.Imp
      ( Assertion.Prefix (wire, input),
        Assertion.Cmp (Assertion.Le, Term.Len wire, Term.Len input) )
  in
  check_bool "length-monotone survives testing" true (is_unknown (prove concl))

let test_protocol_obligations () =
  (* the two obligations of Table 1 that rest on the definition of f *)
  let f t = Term.App ("f", t) in
  let ob1 =
    Assertion.Forall
      ( "x",
        Vset.Nat,
        Assertion.Forall
          ( "y",
            Vset.Enum [ Value.ack ],
            Assertion.Imp
              ( Assertion.Prefix (f wire, input),
                Assertion.Prefix
                  ( f (Term.Cons (Term.Var "x", Term.Cons (Term.Var "y", wire))),
                    Term.Cons (Term.Var "x", input) ) ) ) )
  in
  check_bool "ACK obligation survives" true (Prover.verdict_ok (prove ob1));
  (* flipping the conclusion's cons order must be refuted *)
  let ob_bad =
    Assertion.Forall
      ( "x",
        Vset.Nat,
        Assertion.Imp
          ( Assertion.Prefix (f wire, input),
            Assertion.Prefix
              ( f (Term.Cons (Term.Var "x", Term.Cons (Term.Const Value.ack, wire))),
                input ) ) )
  in
  check_bool "wrong obligation refuted" true (is_refuted (prove ob_bad))

let test_transitivity_consequence () =
  (* §2.2(3) step (4): f(wire) <= input & output <= f(wire) => output <= input *)
  let f t = Term.App ("f", t) in
  let output = Term.chan "output" in
  let concl =
    Assertion.Imp
      ( Assertion.And
          (Assertion.Prefix (f wire, input), Assertion.Prefix (output, f wire)),
        Assertion.Prefix (output, input) )
  in
  check_bool "protocol consequence fully proved" true (is_proved (prove concl))

let test_custom_config () =
  (* a tiny alphabet cannot refute a claim about the value 9 *)
  let concl =
    Assertion.Not
      (Assertion.Mem (Term.Index (wire, Term.int 1), Vset.Enum [ Value.Int 9 ]))
  in
  let weak =
    { Prover.default_config with Prover.alphabet = [ Value.Int 0 ]; random_trials = 50 }
  in
  check_bool "weak alphabet misses the witness" true
    (is_unknown (Prover.prove ~config:weak (Prover.goal concl)));
  let strong =
    { Prover.default_config with Prover.alphabet = [ Value.Int 9 ] }
  in
  check_bool "matching alphabet refutes" true
    (is_refuted (Prover.prove ~config:strong (Prover.goal concl)))

let prop_no_false_proofs =
  (* soundness of the syntactic phase: whenever the prover says Proved,
     random semantic testing agrees *)
  qcheck_case ~count:100 "Proved goals are never falsified by testing"
    QCheck2.Gen.(
      oneofl
        [
          Assertion.Prefix (wire, wire);
          Assertion.Prefix (Term.empty_seq, input);
          Assertion.Imp
            ( Assertion.Prefix (wire, input),
              Assertion.Prefix
                (Term.Cons (Term.int 1, wire), Term.Cons (Term.int 1, input)) );
          Assertion.Forall
            ("x", Vset.Range (0, 2),
             Assertion.Mem (Term.Var "x", Vset.Range (0, 2)));
        ])
    (fun goal ->
      match prove goal with
      | Prover.Proved _ ->
        (* re-verify on random histories *)
        let st = Random.State.make [| 7 |] in
        let rand_seq () =
          List.init (Random.State.int st 6) (fun _ ->
              Value.Int (Random.State.int st 3))
        in
        List.for_all
          (fun _ ->
            let hist =
              history_of_pairs []
              |> (fun h -> History.set h (Channel.simple "wire") (rand_seq ()))
              |> fun h ->
              let w = History.get h (Channel.simple "wire") in
              (* make wire a prefix of input half the time *)
              if Random.State.bool st then
                History.set h (Channel.simple "input") (w @ rand_seq ())
              else History.set h (Channel.simple "input") (rand_seq ())
            in
            let holds_hyp =
              match goal with
              | Assertion.Imp (h, _) ->
                Assertion.eval (Term.ctx ~hist ()) h
              | _ -> true
            in
            (not holds_hyp) || Assertion.eval (Term.ctx ~hist ()) goal)
          (List.init 50 Fun.id)
      | _ -> true)

let () =
  Alcotest.run "prover"
    [
      ( "syntactic",
        [
          Alcotest.test_case "reflexivity" `Quick test_reflexivity;
          Alcotest.test_case "empty least" `Quick test_empty_least;
          Alcotest.test_case "cons monotonicity" `Quick test_cons_monotone;
          Alcotest.test_case "transitivity chains" `Quick test_transitivity_chain;
          Alcotest.test_case "length arithmetic" `Quick test_length_arithmetic;
          Alcotest.test_case "hypothesis / ex falso" `Quick
            test_hypothesis_and_ex_falso;
          Alcotest.test_case "conjunction" `Quick test_conjunction_split;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "ground evaluation" `Quick test_ground_evaluation;
          Alcotest.test_case "refutation with witness" `Quick
            test_semantic_refutation;
          Alcotest.test_case "survival as Unknown" `Quick test_semantic_survival;
          Alcotest.test_case "configurable alphabet" `Quick test_custom_config;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "Table-1 obligations" `Quick
            test_protocol_obligations;
          Alcotest.test_case "transitive consequence" `Quick
            test_transitivity_consequence;
        ] );
      ("soundness", [ prop_no_false_proofs ]);
    ]
