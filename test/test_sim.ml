(* The simulator: schedulers, the runner, monitors, statistics. *)

open Csp
open Test_support
module Runner = Csp_sim.Runner

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(defs = Defs.empty) () = Step.config ~sampler:(Sampler.nat_bound 2) defs
let out c v k = Process.send c (Expr.int v) k

(* ---- schedulers ------------------------------------------------------ *)

let cands n =
  Array.init n (fun i -> (ev "a" i, Step.Visible))

let test_scheduler_first () =
  Alcotest.(check (option int)) "first picks 0" (Some 0)
    (Scheduler.first.Scheduler.pick ~step:0 (cands 3));
  Alcotest.(check (option int)) "empty yields none" None
    (Scheduler.first.Scheduler.pick ~step:0 (cands 0))

let test_scheduler_rotating () =
  let picks =
    List.map
      (fun s -> Option.get (Scheduler.rotating.Scheduler.pick ~step:s (cands 3)))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0 ] picks

let test_scheduler_uniform_deterministic_per_seed () =
  let run seed =
    let s = Scheduler.uniform ~seed in
    List.init 20 (fun i -> Option.get (s.Scheduler.pick ~step:i (cands 5)))
  in
  Alcotest.(check (list int)) "same seed, same choices" (run 42) (run 42);
  check_bool "different seeds differ somewhere" true (run 1 <> run 2)

let test_scheduler_weighted_bias () =
  let weight (e : Event.t) =
    match e.Event.value with Value.Int 0 -> 0.95 | _ -> 0.05
  in
  let s = Scheduler.weighted ~seed:5 ~weight in
  let hits = ref 0 in
  for i = 1 to 1000 do
    if Option.get (s.Scheduler.pick ~step:i (cands 2)) = 0 then incr hits
  done;
  check_bool "bias respected" true (!hits > 850)

let test_scheduler_weighted_zero_total () =
  let s = Scheduler.weighted ~seed:5 ~weight:(fun _ -> 0.0) in
  check_bool "falls back to uniform" true
    (s.Scheduler.pick ~step:0 (cands 3) <> None)

(* ---- runner ----------------------------------------------------------- *)

let test_run_deadlock () =
  let r = Runner.run (cfg ()) (out "a" 1 Process.Stop) in
  check_bool "stops on deadlock" true (r.Runner.stop = Runner.Deadlock);
  check_int "one step" 1 r.Runner.stats.Stats.steps;
  check_bool "trace recorded" true (Trace.equal r.Runner.trace [ ev "a" 1 ])

let test_run_max_steps () =
  let defs = Defs.empty |> Defs.define "tick" (out "a" 0 (Process.ref_ "tick")) in
  let r = Runner.run ~max_steps:25 (cfg ~defs ()) (Process.ref_ "tick") in
  check_bool "hits the limit" true (r.Runner.stop = Runner.Max_steps);
  check_int "exactly 25" 25 r.Runner.stats.Stats.steps

let test_run_determinism () =
  let defs = defs_copier in
  let run () =
    (Runner.run ~scheduler:(Scheduler.uniform ~seed:9) ~max_steps:40
       (cfg ~defs ()) (Process.ref_ "copier")).Runner.trace
  in
  check trace_testable "reproducible" (run ()) (run ())

(* the runner's ~seed threads to the default scheduler: a run is
   reproducible from its arguments alone, and the seed actually steers
   the exploration *)
let test_run_seed_threads () =
  let defs = defs_copier in
  let run seed =
    (Runner.run ~seed ~max_steps:40 (cfg ~defs ()) (Process.ref_ "copier"))
      .Runner.trace
  in
  check trace_testable "same seed, same run" (run 7) (run 7);
  check trace_testable "default seed is 1"
    (Runner.run ~max_steps:40 (cfg ~defs ()) (Process.ref_ "copier"))
      .Runner.trace (run 1);
  check_bool "some seed pair diverges" true
    (List.exists (fun s -> not (Trace.equal (run 1) (run s))) [ 2; 3; 4; 5 ])

let test_sampler_shuffled () =
  let base = Sampler.nat_bound 6 in
  let sample seed = Sampler.sample (Sampler.shuffled ~seed base) Vset.Nat in
  let sorted l = List.sort compare l in
  Alcotest.(check (list string))
    "same seed, same order"
    (List.map Value.to_string (sample 3))
    (List.map Value.to_string (sample 3));
  Alcotest.(check (list string))
    "a permutation of the base sample"
    (List.map Value.to_string (sorted (Sampler.sample base Vset.Nat)))
    (List.map Value.to_string (sorted (sample 3)));
  check_bool "some seed pair permutes differently" true
    (List.exists (fun s -> sample 0 <> sample s) [ 1; 2; 3; 4; 5 ])

let test_run_hidden_not_in_trace () =
  let p = Process.Hide (Chan_set.of_names [ "a" ], out "a" 1 (out "b" 2 Process.Stop)) in
  let r = Runner.run (cfg ()) p in
  check trace_testable "only b visible" [ ev "b" 2 ] r.Runner.trace;
  check_int "both counted in events" 2 (List.length r.Runner.events);
  check_int "hidden count" 1 r.Runner.stats.Stats.hidden

let test_monitor_violation () =
  (* a!1 -> a!2 -> ... violates "a <= <1>" at the second step *)
  let spec =
    Assertion.Prefix (Term.chan "a", Term.Const (Value.Seq [ Value.Int 1 ]))
  in
  let p = out "a" 1 (out "a" 2 Process.Stop) in
  let r = Runner.run ~monitors:[ Runner.monitor "bound" spec ] (cfg ()) p in
  check_int "one violation" 1 (List.length r.Runner.violations);
  let v = List.hd r.Runner.violations in
  check_int "detected after second step" 2 v.Runner.at_step;
  check_bool "history captured" true
    (List.length (History.get v.Runner.history (Channel.simple "a")) = 2)

let test_monitor_checked_before_first_step () =
  (* an assertion false of the empty history is reported at step 0 *)
  let spec = Assertion.Cmp (Assertion.Gt, Term.Len (Term.chan "a"), Term.int 0) in
  let r =
    Runner.run ~monitors:[ Runner.monitor "nonempty" spec ] (cfg ()) Process.Stop
  in
  check_int "violated immediately" 0 (List.hd r.Runner.violations).Runner.at_step

let test_monitor_eval_error_is_violation () =
  (* assertions that cannot be evaluated are flagged, not ignored *)
  let spec = Assertion.Eq (Term.Var "unbound", Term.int 0) in
  let r =
    Runner.run ~monitors:[ Runner.monitor "broken" spec ] (cfg ()) Process.Stop
  in
  check_bool "flagged" true (r.Runner.violations <> [])

let test_monitor_sees_hidden_channels () =
  (* the protocol's wire is concealed, yet f(wire) <= input is monitored *)
  let module P = Paper.Protocol in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) P.defs in
  let r =
    Runner.run
      ~scheduler:(Scheduler.uniform ~seed:3)
      ~monitors:[ Runner.monitor "sender-inv" P.sender_spec ]
      ~max_steps:300 cfg P.protocol
  in
  check_int "no violations" 0 (List.length r.Runner.violations);
  check_bool "wire really used" true
    (Stats.count r.Runner.stats (Channel.simple "wire") > 0)

let test_stats_consistency () =
  let defs = defs_copier in
  let r =
    Runner.run ~scheduler:(Scheduler.uniform ~seed:5) ~max_steps:60 (cfg ~defs ())
      (Process.ref_ "copier")
  in
  let s = r.Runner.stats in
  check_int "steps = visible + hidden" s.Stats.steps (s.Stats.visible + s.Stats.hidden);
  check_int "per-channel sums to steps" s.Stats.steps
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.per_channel);
  (* the copier alternates: wire never leads input *)
  check_bool "causality" true
    (Stats.count s (Channel.simple "wire") <= Stats.count s (Channel.simple "input"))

let prop_trace_is_visible_projection =
  qcheck_case ~count:60 "trace = visible projection of events" process_gen
    (fun p ->
      let r = Runner.run ~max_steps:20 (cfg ()) p in
      Trace.equal r.Runner.trace
        (List.filter_map
           (fun (e, vis) -> if vis = Step.Visible then Some e else None)
           r.Runner.events))

let prop_run_trace_is_legal =
  qcheck_case ~count:60 "every simulated trace is accepted by the semantics"
    process_gen (fun p ->
      let r = Runner.run ~max_steps:6 (cfg ()) p in
      (* compare against derivative acceptance on the visible trace *)
      r.Runner.trace = [] || Step.accepts_trace (cfg ()) p r.Runner.trace)

let () =
  Alcotest.run "sim"
    [
      ( "schedulers",
        [
          Alcotest.test_case "first" `Quick test_scheduler_first;
          Alcotest.test_case "rotating" `Quick test_scheduler_rotating;
          Alcotest.test_case "uniform determinism" `Quick
            test_scheduler_uniform_deterministic_per_seed;
          Alcotest.test_case "weighted bias" `Quick test_scheduler_weighted_bias;
          Alcotest.test_case "weighted degenerate" `Quick
            test_scheduler_weighted_zero_total;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deadlock stop" `Quick test_run_deadlock;
          Alcotest.test_case "step limit" `Quick test_run_max_steps;
          Alcotest.test_case "determinism per seed" `Quick test_run_determinism;
          Alcotest.test_case "~seed threads to scheduler" `Quick
            test_run_seed_threads;
          Alcotest.test_case "shuffled sampler" `Quick test_sampler_shuffled;
          Alcotest.test_case "hidden events" `Quick test_run_hidden_not_in_trace;
          prop_trace_is_visible_projection;
          prop_run_trace_is_legal;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "violation detection" `Quick test_monitor_violation;
          Alcotest.test_case "checked before first step" `Quick
            test_monitor_checked_before_first_step;
          Alcotest.test_case "evaluation errors flagged" `Quick
            test_monitor_eval_error_is_violation;
          Alcotest.test_case "hidden channels observable" `Quick
            test_monitor_sees_hidden_channels;
        ] );
      ( "stats",
        [ Alcotest.test_case "consistency" `Quick test_stats_consistency ] );
    ]
