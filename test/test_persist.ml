(* The on-disk cache snapshot: JSON substrate, round-tripping, and
   rejection of corrupt, truncated and version-mismatched files. *)

module Json = Csp_persist.Json
module Snapshot = Csp_persist.Snapshot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- JSON ------------------------------------------------------------- *)

let parse_exn s =
  match Json.parse s with
  | Ok j -> j
  | Error m -> Alcotest.failf "parse %S: %s" s m

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.int 42;
      Json.Num (-0.5);
      Json.str "plain";
      Json.str "esc \" \\ \n \t \x01 caf\xc3\xa9";
      Json.Arr [ Json.int 1; Json.Null; Json.str "x" ];
      Json.Obj
        [ ("a", Json.int 1); ("nested", Json.Obj [ ("b", Json.Arr [] ) ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      check_bool s true (parse_exn s = j);
      (* printing is a fixpoint through one round trip *)
      check_string "reprint" s (Json.to_string (parse_exn s)))
    cases

let test_json_numbers () =
  check_string "integral" "3" (Json.to_string (Json.Num 3.0));
  check_string "fraction" "3.5" (Json.to_string (Json.Num 3.5));
  check_string "nonfinite" "null" (Json.to_string (Json.Num nan));
  check_int "int back" 17 (Option.get (Json.to_int (parse_exn "17")));
  check_bool "3.5 not int" true (Json.to_int (parse_exn "3.5") = None)

let test_json_escapes () =
  check_bool "unicode" true (parse_exn {|"é"|} = Json.str "\xc3\xa9");
  check_bool "surrogate pair" true
    (parse_exn {|"😀"|} = Json.str "\xf0\x9f\x98\x80");
  check_bool "control escaped" true
    (String.length (Json.to_string (Json.str "\x00")) > 4)

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  (* trailing garbage *)
  bad "\"unterminated";
  bad (String.make 600 '[' ^ String.make 600 ']')
(* depth bound *)

(* ---- snapshot round trip ---------------------------------------------- *)

let sample =
  {
    Snapshot.entries =
      [
        {
          Snapshot.source = "main = a!0 -> main\n";
          compiled =
            [
              { Snapshot.process = "main"; budget = Some 2000; nat_bound = 3 };
              { Snapshot.process = "main"; budget = None; nat_bound = 2 };
            ];
          certs = "";
        };
        {
          Snapshot.source = "copier = input?x:NAT -> output!x -> copier\n";
          compiled = [];
          certs = "(cert (judgment (sat copier \"output <= input\")))";
        };
      ];
  }

let test_roundtrip () =
  match Snapshot.decode (Snapshot.encode sample) with
  | Ok t -> check_bool "equal" true (t = sample)
  | Error m -> Alcotest.fail m

let test_file_roundtrip () =
  let path = Filename.temp_file "cspc-snap" ".cspc" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Snapshot.save path sample;
  (match Snapshot.load path with
  | Ok t -> check_bool "equal" true (t = sample)
  | Error m -> Alcotest.fail m);
  check_bool "no tmp left" false (Sys.file_exists (path ^ ".tmp"))

let expect_error ~substring s =
  match Snapshot.decode s with
  | Ok _ -> Alcotest.failf "decode accepted a damaged snapshot"
  | Error m ->
    let lower = String.lowercase_ascii m in
    if
      not
        (String.length lower >= String.length substring
        && Seq.exists
             (fun i ->
               String.sub lower i (String.length substring) = substring)
             (Seq.init
                (String.length lower - String.length substring + 1)
                Fun.id))
    then Alcotest.failf "error %S does not mention %S" m substring

let test_corruption_rejected () =
  let img = Snapshot.encode sample in
  (* flip one payload byte: the header still parses, the digest must
     catch the damage *)
  let body_start = String.index img '\n' + 1 in
  let b = Bytes.of_string img in
  let i = body_start + (String.length img - body_start) / 2 in
  Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
  expect_error ~substring:"digest" (Bytes.to_string b)

let test_truncation_rejected () =
  let img = Snapshot.encode sample in
  expect_error ~substring:"truncated"
    (String.sub img 0 (String.length img - 10));
  expect_error ~substring:"trailing" (img ^ "extra");
  expect_error ~substring:"header" "";
  expect_error ~substring:"magic" ("not-a-snapshot 1 x 0\n" ^ img)

let test_version_mismatch_rejected () =
  let img = Snapshot.encode sample in
  let header_end = String.index img '\n' in
  let header = String.sub img 0 header_end in
  let rest = String.sub img header_end (String.length img - header_end) in
  let bumped =
    match String.split_on_char ' ' header with
    | m :: v :: tl ->
      String.concat " " (m :: string_of_int (int_of_string v + 98) :: tl)
    | _ -> Alcotest.fail "unexpected header shape"
  in
  expect_error ~substring:"version mismatch" (bumped ^ rest)

let test_load_missing_file () =
  match Snapshot.load "/nonexistent/cspc-snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a snapshot from a missing file"

let () =
  Alcotest.run "persist"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_corruption_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
    ]
