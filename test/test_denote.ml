(* Denotational semantics: fixpoint approximations and consistency with
   the operational enumeration (E4/E5 of the experiment index), plus the
   §4 model identities (E8). *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check = Alcotest.check

let sampler = Sampler.nat_bound 2
let dcfg ?(defs = Defs.empty) () = Denote.config ~sampler defs
let scfg ?(defs = Defs.empty) () = Step.config ~sampler defs

let out c v k = Process.send c (Expr.int v) k

let test_stop_denotes_empty () =
  check closure_testable "⟦STOP⟧ = {<>}" Closure.empty
    (Denote.denote (dcfg ()) ~depth:5 Process.Stop)

let test_prefix_denotation () =
  let p = out "a" 1 (out "b" 2 Process.Stop) in
  let d = Denote.denote (dcfg ()) ~depth:5 p in
  check_int "three traces" 3 (Closure.cardinal d);
  check_bool "full trace" true (Closure.mem [ ev "a" 1; ev "b" 2 ] d)

let test_depth_zero () =
  let p = out "a" 1 Process.Stop in
  check closure_testable "depth 0 is a₀" Closure.empty
    (Denote.denote (dcfg ()) ~depth:0 p)

let test_approximations_ascend () =
  let defs = defs_copier in
  let chain =
    Denote.approximations (dcfg ~defs ()) ~depth:4 ~n:6 (Process.ref_ "copier")
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> Closure.subset a b && ascending rest
    | _ -> true
  in
  check_bool "a₀ ⊆ a₁ ⊆ …" true (ascending chain);
  check closure_testable "a₀ is ⟦STOP⟧" Closure.empty (List.hd chain)

let test_fixpoint_stabilises () =
  let defs = defs_copier in
  let chain =
    Denote.approximations (dcfg ~defs ()) ~depth:3 ~n:14 (Process.ref_ "copier")
  in
  (* once the recursion depth passes the trace depth, nothing changes *)
  let last = List.nth chain 13 and prev = List.nth chain 12 in
  check closure_testable "stable" prev last;
  check closure_testable "denote computes the limit" last
    (Denote.denote (dcfg ~defs ()) ~depth:3 (Process.ref_ "copier"))

let test_denote_copier_spec () =
  (* every denotational trace satisfies wire ≤ input *)
  let defs = defs_copier in
  let d = Denote.denote (dcfg ~defs ()) ~depth:5 (Process.ref_ "copier") in
  let spec = Assertion.Prefix (Term.chan "wire", Term.chan "input") in
  match Sat.check_closure d spec with
  | Sat.Holds _ -> ()
  | Sat.Fails { trace } -> Alcotest.failf "fails on %a" Trace.pp trace

let test_mutual_recursion () =
  (* ping = a!0 -> pong ; pong = b!1 -> ping *)
  let defs =
    Defs.empty
    |> Defs.define "ping" (out "a" 0 (Process.ref_ "pong"))
    |> Defs.define "pong" (out "b" 1 (Process.ref_ "ping"))
  in
  let d = Denote.denote (dcfg ~defs ()) ~depth:4 (Process.ref_ "ping") in
  check_bool "alternates" true
    (Closure.mem [ ev "a" 0; ev "b" 1; ev "a" 0; ev "b" 1 ] d);
  check_int "single maximal trace" 1 (List.length (Closure.maximal_traces d))

let test_process_array_denotation () =
  let defs =
    Defs.empty
    |> Defs.define_array "echo" "x" (Vset.Range (0, 2))
         (Process.Output
            (Chan_expr.simple "a", Expr.Var "x", Process.call "echo" (Expr.Var "x")))
  in
  let d =
    Denote.denote (dcfg ~defs ()) ~depth:3 (Process.call "echo" (Expr.int 2))
  in
  check_bool "echoes its subscript" true
    (Closure.mem [ ev "a" 2; ev "a" 2; ev "a" 2 ] d);
  check_int "deterministic" 1 (List.length (Closure.maximal_traces d))

let test_hide_lookahead () =
  (* (chan a; a!0 -> a!0 -> b!1 -> STOP): two hidden events precede the
     visible one, so depth 1 needs look-ahead — hide_extra supplies it. *)
  let p =
    Process.Hide
      (Chan_set.of_names [ "a" ], out "a" 0 (out "a" 0 (out "b" 1 Process.Stop)))
  in
  let d = Denote.denote (dcfg ()) ~depth:1 p in
  check_bool "b visible through hidden prefix" true (Closure.mem [ ev "b" 1 ] d)

(* E5: operational vs denotational agreement on random processes. *)
let prop_op_vs_deno =
  qcheck_case ~count:120 "operational = denotational (random processes)"
    process_gen (fun p ->
      match
        Equiv.operational_vs_denotational ~depth:4 (scfg ()) (dcfg ()) p
      with
      | Ok () -> true
      | Error s ->
        QCheck2.Test.fail_reportf "disagree on %s" (Trace.to_string s))

let test_op_vs_deno_copier () =
  let defs = defs_copier in
  match
    Equiv.operational_vs_denotational ~depth:5 (scfg ~defs ()) (dcfg ~defs ())
      (Process.ref_ "copier")
  with
  | Ok () -> ()
  | Error s -> Alcotest.failf "disagree on %a" Trace.pp s

let test_op_vs_deno_copier_network () =
  match
    Equiv.operational_vs_denotational ~depth:4
      (Step.config ~sampler Paper.Copier.defs)
      (Denote.config ~sampler Paper.Copier.defs)
      Paper.Copier.network
  with
  | Ok () -> ()
  | Error s -> Alcotest.failf "disagree on %a" Trace.pp s

(* Trace refinement. *)
let test_trace_refinement () =
  let defs =
    Defs.add
      {
        Defs.name = "buffer";
        param = None;
        body =
          Process.recv "input" "x" Paper.Protocol.message_set
            (Process.send "output" (Expr.Var "x") (Process.ref_ "buffer"));
      }
      Paper.Protocol.defs
  in
  let cfg = Step.config ~sampler defs in
  (* a one-place buffer refines the protocol: it allows strictly fewer
     behaviours *)
  (match
     Equiv.trace_refines ~depth:4 cfg ~impl:(Process.ref_ "buffer")
       ~spec:Paper.Protocol.protocol
   with
  | Ok () -> ()
  | Error s -> Alcotest.failf "buffer should refine protocol: %a" Trace.pp s);
  (* the converse fails: the protocol accepts a second input before the
     first output *)
  match
    Equiv.trace_refines ~depth:4 cfg ~impl:Paper.Protocol.protocol
      ~spec:(Process.ref_ "buffer")
  with
  | Error s -> check_int "shortest counterexample" 2 (List.length s)
  | Ok () -> Alcotest.fail "protocol is not a one-place buffer"

let prop_refinement_reflexive =
  qcheck_case ~count:60 "trace refinement is reflexive" process_gen (fun p ->
      Result.is_ok
        (Equiv.trace_refines ~depth:3 (scfg ()) ~impl:p ~spec:p))

let prop_refinement_preserves_sat =
  (* the semantic heart of `sat`: assertions are properties of trace
     sets, so refinement preserves them — if impl ⊑ spec and spec sat R,
     then impl sat R *)
  qcheck_case ~count:60 "refinement preserves sat"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (impl, spec) ->
      if Result.is_ok (Equiv.trace_refines ~depth:3 (scfg ()) ~impl ~spec) then
        let r =
          Assertion.Cmp
            (Assertion.Le, Term.Len (Term.chan "a"),
             Term.Add (Term.Len (Term.chan "b"), Term.int 2))
        in
        match Sat.check ~depth:3 (scfg ()) spec r with
        | Sat.Holds _ -> (
          match Sat.check ~depth:3 (scfg ()) impl r with
          | Sat.Holds _ -> true
          | Sat.Fails _ -> false)
        | Sat.Fails _ -> true
      else true)

let prop_choice_refines =
  qcheck_case ~count:60 "each branch refines the alternative"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (p, q) ->
      Result.is_ok
        (Equiv.trace_refines ~depth:3 (scfg ())
           ~impl:p ~spec:(Process.Choice (p, q))))

(* E8: the §4 identities. *)
let test_stop_choice_identity () =
  let defs = defs_copier in
  check_bool "STOP | copier = copier" true
    (Equiv.stop_choice_identity ~depth:4 (dcfg ~defs ()) (Process.ref_ "copier"))

let prop_stop_choice_identity =
  qcheck_case ~count:100 "STOP | P = P in the model (always)" process_gen
    (fun p -> Equiv.stop_choice_identity ~depth:4 (dcfg ()) p)

let test_deadlock_after_k_invisible () =
  (* Q may deadlock after one communication of behaviour common with P;
     the model cannot see it: (a!0 -> STOP | P) = P whenever a!0-then-
     deadlock's traces are included in P's. *)
  let p = out "a" 0 (out "b" 1 Process.Stop) in
  let q = out "a" 0 Process.Stop in
  check_bool "choice absorption" true
    (Equiv.choice_absorption ~depth:4 (dcfg ()) q p)

let prop_choice_absorption =
  qcheck_case ~count:80 "Q | P = P whenever ⟦Q⟧ ⊆ ⟦P⟧"
    QCheck2.Gen.(pair process_gen process_gen)
    (fun (q, p) -> Equiv.choice_absorption ~depth:4 (dcfg ()) q p)

(* Early convergence must not change any denotation: the default
   (converging) [denote] has to agree with the reference behaviour of
   running the full [depth + hide_extra + 1] rounds, on the paper's own
   systems. *)
let check_convergence name defs ~depth p =
  let cfg = Denote.config ~sampler defs in
  let full = depth + 8 (* default hide_extra *) + 1 in
  check closure_testable name
    (Denote.denote ~iterations:full cfg ~depth p)
    (Denote.denote cfg ~depth p)

let test_convergence_protocol () =
  check_convergence "protocol network" Paper.Protocol.defs ~depth:4
    Paper.Protocol.network;
  check_convergence "protocol (hidden)" Paper.Protocol.defs ~depth:4
    Paper.Protocol.protocol

let test_convergence_multiplier () =
  let m = Paper.Multiplier.default in
  check_convergence "multiplier network" m.Paper.Multiplier.defs ~depth:3
    m.Paper.Multiplier.network;
  check_convergence "multiplier (hidden)" m.Paper.Multiplier.defs ~depth:3
    m.Paper.Multiplier.multiplier

let test_convergence_copier_chain () =
  let defs, net = Paper.Copier.chain_defs 3 in
  check_convergence "copier chain n=3" defs ~depth:4 net

let () =
  Alcotest.run "denote"
    [
      ( "denotations",
        [
          Alcotest.test_case "STOP" `Quick test_stop_denotes_empty;
          Alcotest.test_case "prefixes" `Quick test_prefix_denotation;
          Alcotest.test_case "depth zero" `Quick test_depth_zero;
          Alcotest.test_case "hide look-ahead" `Quick test_hide_lookahead;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "approximations ascend" `Quick
            test_approximations_ascend;
          Alcotest.test_case "stabilisation" `Quick test_fixpoint_stabilises;
          Alcotest.test_case "copier invariant" `Quick test_denote_copier_spec;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "process arrays" `Quick
            test_process_array_denotation;
        ] );
      ( "early-convergence",
        [
          Alcotest.test_case "protocol" `Quick test_convergence_protocol;
          Alcotest.test_case "multiplier" `Quick test_convergence_multiplier;
          Alcotest.test_case "copier chain" `Quick
            test_convergence_copier_chain;
        ] );
      ( "consistency(E5)",
        [
          prop_op_vs_deno;
          Alcotest.test_case "copier" `Quick test_op_vs_deno_copier;
          Alcotest.test_case "copier network" `Quick
            test_op_vs_deno_copier_network;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "protocol vs buffer" `Quick test_trace_refinement;
          prop_refinement_reflexive;
          prop_refinement_preserves_sat;
          prop_choice_refines;
        ] );
      ( "model-defects(E8)",
        [
          Alcotest.test_case "STOP|copier = copier" `Quick
            test_stop_choice_identity;
          prop_stop_choice_identity;
          Alcotest.test_case "invisible deadlock" `Quick
            test_deadlock_after_k_invisible;
          prop_choice_absorption;
        ] );
    ]
