(* The proof checker: one positive and several negative cases per rule,
   plus the machine-checked soundness experiment (E6): accepted proofs
   are never refuted by bounded model checking. *)

open Csp
open Test_support

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let wire_le_input = Assertion.Prefix (Term.chan "wire", Term.chan "input")
let ctx0 = Sequent.context Defs.empty
let ctx_copier = Sequent.context defs_copier
let out c v k = Process.send c (Expr.int v) k

let accepts ctx j p = Result.is_ok (Check.check ctx j p)
let rejects ctx j p = Result.is_error (Check.check ctx j p)

(* ---- emptiness ------------------------------------------------------ *)

let test_emptiness () =
  check_bool "STOP sat wire <= input" true
    (accepts ctx0 (Sequent.Holds (Process.Stop, wire_le_input)) Proof.Emptiness);
  (* R_<> false: <3> <= <3,4> becomes <> <= <> after substitution — true;
     use a genuinely channel-free falsehood instead *)
  check_bool "R_<> must hold" true
    (rejects ctx0
       (Sequent.Holds (Process.Stop, Assertion.Cmp (Assertion.Gt, Term.Len (Term.chan "c"), Term.int 0)))
       Proof.Emptiness);
  check_bool "wrong shape" true
    (rejects ctx0
       (Sequent.Holds (out "a" 1 Process.Stop, wire_le_input))
       Proof.Emptiness)

(* ---- triviality ------------------------------------------------------ *)

let test_triviality () =
  check_bool "wire <= wire always" true
    (accepts ctx0
       (Sequent.Holds
          (out "a" 1 Process.Stop, Assertion.Prefix (Term.chan "wire", Term.chan "wire")))
       Proof.Triviality);
  check_bool "falsifiable assertion rejected" true
    (rejects ctx0
       (Sequent.Holds (out "a" 1 Process.Stop, wire_le_input))
       Proof.Triviality)

(* ---- output ---------------------------------------------------------- *)

let test_output_rule () =
  (* wire!3 -> STOP sat wire <= <3> : premise STOP sat 3^wire <= <3>,
     i.e. after R^wire substitution; prove premise by emptiness *)
  let spec =
    Assertion.Prefix (Term.chan "wire", Term.Const (Value.Seq [ Value.Int 3 ]))
  in
  let p = out "wire" 3 Process.Stop in
  check_bool "accepted" true
    (accepts ctx0 (Sequent.Holds (p, spec)) (Proof.Output_rule Proof.Emptiness));
  (* wrong constant: R_<> holds but the premise <4>-substitution fails *)
  let bad = out "wire" 4 Process.Stop in
  check_bool "wrong value rejected" true
    (rejects ctx0 (Sequent.Holds (bad, spec)) (Proof.Output_rule Proof.Emptiness));
  check_bool "wrong shape rejected" true
    (rejects ctx0 (Sequent.Holds (Process.Stop, spec)) (Proof.Output_rule Proof.Emptiness))

(* ---- input ----------------------------------------------------------- *)

let test_input_rule () =
  let p =
    Process.recv "c" "x" (Vset.Range (0, 1))
      (Process.send "d" (Expr.Var "x") Process.Stop)
  in
  let spec = Assertion.Prefix (Term.chan "d", Term.chan "c") in
  let proof = Proof.Input_rule ("v", Proof.Output_rule Proof.Emptiness) in
  check_bool "copy step accepted" true (accepts ctx0 (Sequent.Holds (p, spec)) proof);
  (* freshness violation: v occurs in the invariant *)
  let spec_v =
    Assertion.And (spec, Assertion.Eq (Term.Var "v", Term.Var "v"))
  in
  check_bool "non-fresh variable rejected" true
    (rejects ctx0 (Sequent.Holds (p, spec_v)) proof)

(* ---- alternative / conjunction / consequence ------------------------- *)

let test_alternative () =
  let p = Process.Choice (Process.Stop, Process.Stop) in
  check_bool "both branches" true
    (accepts ctx0
       (Sequent.Holds (p, wire_le_input))
       (Proof.Alternative (Proof.Emptiness, Proof.Emptiness)));
  check_bool "wrong shape" true
    (rejects ctx0
       (Sequent.Holds (Process.Stop, wire_le_input))
       (Proof.Alternative (Proof.Emptiness, Proof.Emptiness)))

let test_conjunction () =
  let spec = Assertion.And (wire_le_input, Assertion.True) in
  check_bool "accepted" true
    (accepts ctx0
       (Sequent.Holds (Process.Stop, spec))
       (Proof.Conjunction (Proof.Emptiness, Proof.Emptiness)));
  check_bool "needs a conjunction" true
    (rejects ctx0
       (Sequent.Holds (Process.Stop, wire_le_input))
       (Proof.Conjunction (Proof.Emptiness, Proof.Emptiness)))

let test_consequence () =
  (* STOP sat #wire <= 1 via STOP sat wire = <> and (wire = <> => #wire <= 1) *)
  let strong = Assertion.Eq (Term.chan "wire", Term.empty_seq) in
  let weak = Assertion.Cmp (Assertion.Le, Term.Len (Term.chan "wire"), Term.int 1) in
  check_bool "weakening accepted" true
    (accepts ctx0
       (Sequent.Holds (Process.Stop, weak))
       (Proof.Consequence (strong, Proof.Emptiness)));
  (* the implication must be valid *)
  check_bool "invalid implication rejected" true
    (rejects ctx0
       (Sequent.Holds (Process.Stop, strong))
       (Proof.Consequence (weak, Proof.Emptiness)))

(* ---- parallelism ------------------------------------------------------ *)

let test_parallelism () =
  let xa = Chan_set.of_names [ "a" ] and ya = Chan_set.of_names [ "b" ] in
  let p = Process.Par (xa, ya, Process.Stop, Process.Stop) in
  let ra = Assertion.Prefix (Term.chan "a", Term.chan "a") in
  let rb = Assertion.Prefix (Term.chan "b", Term.chan "b") in
  check_bool "accepted" true
    (accepts ctx0
       (Sequent.Holds (p, Assertion.And (ra, rb)))
       (Proof.Parallelism (ra, rb, Proof.Emptiness, Proof.Emptiness)));
  check_bool "channel scope violated" true
    (rejects ctx0
       (Sequent.Holds (p, Assertion.And (rb, ra)))
       (Proof.Parallelism (rb, ra, Proof.Emptiness, Proof.Emptiness)));
  check_bool "conclusion must be the conjunction" true
    (rejects ctx0
       (Sequent.Holds (p, ra))
       (Proof.Parallelism (ra, rb, Proof.Emptiness, Proof.Emptiness)))

(* ---- chan ------------------------------------------------------------- *)

let test_chan_rule () =
  let p = Process.Hide (Chan_set.of_names [ "wire" ], Process.Stop) in
  let about_out = Assertion.Prefix (Term.chan "output", Term.chan "output") in
  check_bool "accepted" true
    (accepts ctx0 (Sequent.Holds (p, about_out)) (Proof.Chan_rule Proof.Emptiness));
  check_bool "mentions concealed channel" true
    (rejects ctx0 (Sequent.Holds (p, wire_le_input)) (Proof.Chan_rule Proof.Emptiness))

(* ---- recursion (Fix) --------------------------------------------------- *)

let copier_fix =
  Proof.Fix
    ( [
        {
          Proof.spec_hyp = Sequent.Sat ("copier", wire_le_input);
          fresh = "_";
          body_proof =
            Proof.Input_rule
              ( "v",
                Proof.Output_rule
                  (Proof.Consequence (wire_le_input, Proof.Assumption)) );
        };
      ],
      0 )

let test_fix_copier () =
  check_bool "hand-built copier proof" true
    (accepts ctx_copier
       (Sequent.Holds (Process.ref_ "copier", wire_le_input))
       copier_fix)

let test_fix_negative () =
  (* conclusion index out of range *)
  check_bool "bad index" true
    (rejects ctx_copier
       (Sequent.Holds (Process.ref_ "copier", wire_le_input))
       (Proof.Fix ([], 0)));
  (* wrong invariant in the conclusion *)
  check_bool "conclusion mismatch" true
    (rejects ctx_copier
       (Sequent.Holds
          (Process.ref_ "copier", Assertion.Prefix (Term.chan "input", Term.chan "wire")))
       copier_fix);
  (* R_<> failure: invariant false at the start *)
  let bad_inv = Assertion.Cmp (Assertion.Gt, Term.Len (Term.chan "wire"), Term.int 0) in
  check_bool "initial falsehood rejected" true
    (rejects ctx_copier
       (Sequent.Holds (Process.ref_ "copier", bad_inv))
       (Proof.Fix
          ( [
              {
                Proof.spec_hyp = Sequent.Sat ("copier", bad_inv);
                fresh = "_";
                body_proof = Proof.Assumption;
              };
            ],
            0 )))

let test_assumption () =
  let ctx =
    Sequent.add_hyp (Sequent.Sat ("copier", wire_le_input)) ctx_copier
  in
  check_bool "hypothesis used" true
    (accepts ctx (Sequent.Holds (Process.ref_ "copier", wire_le_input)) Proof.Assumption);
  check_bool "no matching hypothesis" true
    (rejects ctx_copier
       (Sequent.Holds (Process.ref_ "copier", wire_le_input))
       Proof.Assumption);
  check_bool "assumption needs a name" true
    (rejects ctx (Sequent.Holds (Process.Stop, wire_le_input)) Proof.Assumption)

let test_unfold () =
  check_bool "definitional expansion" true
    (accepts ctx_copier
       (Sequent.Holds (Process.ref_ "copier", Assertion.True))
       (Proof.Unfold (Proof.Input_rule ("v", Proof.Output_rule Proof.Triviality))));
  check_bool "undefined name" true
    (rejects ctx_copier
       (Sequent.Holds (Process.ref_ "nope", Assertion.True))
       (Proof.Unfold Proof.Triviality))

(* ---- forall-elim ------------------------------------------------------ *)

let array_defs =
  Defs.empty
  |> Defs.define_array "emit" "x" (Vset.Range (0, 3))
       (Process.Output (Chan_expr.simple "a", Expr.Var "x", Process.Stop))

let emit_spec =
  (* a <= <x> *)
  Assertion.Prefix
    (Term.chan "a", Term.Cons (Term.Var "x", Term.empty_seq))

let emit_fix fresh =
  Proof.Fix
    ( [
        {
          Proof.spec_hyp = Sequent.Sat_array ("emit", "x", Vset.Range (0, 3), emit_spec);
          fresh;
          body_proof = Proof.Output_rule Proof.Emptiness;
        };
      ],
      0 )

let test_fix_array_and_elim () =
  let ctx = Sequent.context array_defs in
  check_bool "array recursion" true
    (accepts ctx
       (Sequent.Holds_all ("emit", "x", Vset.Range (0, 3), emit_spec))
       (emit_fix "x"));
  (* specialise to emit[2] *)
  let inst = Assertion.subst_var "x" (Term.int 2) emit_spec in
  check_bool "forall-elim in range" true
    (accepts ctx
       (Sequent.Holds (Process.call "emit" (Expr.int 2), inst))
       (Proof.Forall_elim ("x", Vset.Range (0, 3), emit_spec, emit_fix "x")));
  (* out-of-range subscript: the membership obligation is refuted *)
  let inst9 = Assertion.subst_var "x" (Term.int 9) emit_spec in
  check_bool "forall-elim out of range rejected" true
    (rejects ctx
       (Sequent.Holds (Process.call "emit" (Expr.int 9), inst9))
       (Proof.Forall_elim ("x", Vset.Range (0, 3), emit_spec, emit_fix "x")))

(* ---- report ----------------------------------------------------------- *)

let test_report_contents () =
  match Check.check ctx_copier
          (Sequent.Holds (Process.ref_ "copier", wire_le_input)) copier_fix
  with
  | Error m -> Alcotest.fail m
  | Ok report ->
    check_int "steps numbered from 1" 1 (List.hd report.Check.steps).Check.index;
    check_bool "all obligations proved" true (Check.fully_proved report);
    check_int "no tested obligations" 0 (Check.tested_obligations report);
    check_int "five rule applications" 5 report.Check.rules_applied;
    (* the final step concludes the original judgment *)
    let last = List.nth report.Check.steps (List.length report.Check.steps - 1) in
    check_bool "conclusion" true
      (String.length last.Check.judgment > 0 && last.Check.rule = "recursion")

(* ---- E6: soundness of accepted proofs --------------------------------- *)

let test_soundness_examples () =
  (* every accepted proof in this file concerns a judgment that bounded
     model checking confirms *)
  let cases =
    [
      (ctx_copier, Process.ref_ "copier", wire_le_input);
      (ctx0, Process.Stop, wire_le_input);
    ]
  in
  List.iter
    (fun (ctx, p, spec) ->
      let cfg =
        Step.config ~sampler:(Sampler.nat_bound 2) ctx.Sequent.defs
      in
      match Sat.check ~depth:5 cfg p spec with
      | Sat.Holds _ -> ()
      | Sat.Fails { trace } ->
        Alcotest.failf "accepted judgment refuted on %a" Trace.pp trace)
    cases

let () =
  Alcotest.run "proof"
    [
      ( "leaf-rules",
        [
          Alcotest.test_case "emptiness" `Quick test_emptiness;
          Alcotest.test_case "triviality" `Quick test_triviality;
          Alcotest.test_case "assumption" `Quick test_assumption;
        ] );
      ( "structural-rules",
        [
          Alcotest.test_case "output" `Quick test_output_rule;
          Alcotest.test_case "input" `Quick test_input_rule;
          Alcotest.test_case "alternative" `Quick test_alternative;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
          Alcotest.test_case "consequence" `Quick test_consequence;
          Alcotest.test_case "parallelism" `Quick test_parallelism;
          Alcotest.test_case "chan" `Quick test_chan_rule;
          Alcotest.test_case "unfold" `Quick test_unfold;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "copier (hand proof)" `Quick test_fix_copier;
          Alcotest.test_case "negative cases" `Quick test_fix_negative;
          Alcotest.test_case "arrays and forall-elim" `Quick
            test_fix_array_and_elim;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "report structure" `Quick test_report_contents;
          Alcotest.test_case "soundness (E6 spot checks)" `Quick
            test_soundness_examples;
        ] );
    ]
