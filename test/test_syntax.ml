(* Concrete syntax: lexer, parser, printer, and round-trip properties. *)

open Csp
open Test_support
module Lexer = Csp_syntax.Lexer
module Token = Csp_syntax.Token
module Parser = Csp_syntax.Parser
module Printer = Csp_syntax.Printer

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- lexer ----------------------------------------------------------- *)

let tokens s = List.map (fun l -> l.Lexer.token) (Lexer.tokenize s)

let test_lexer_basics () =
  check_int "eof only" 1 (List.length (tokens ""));
  check_bool "arrow vs minus" true
    (tokens "a->b-c" = [ Token.IDENT "a"; Token.ARROW; Token.IDENT "b";
                          Token.MINUS; Token.IDENT "c"; Token.EOF ]);
  check_bool "parallel vs bar" true
    (tokens "p||q|r" = [ Token.IDENT "p"; Token.PARALLEL; Token.IDENT "q";
                          Token.BAR; Token.IDENT "r"; Token.EOF ]);
  check_bool "dotdot vs dot" true
    (tokens "{0..3}.x" = [ Token.LBRACE; Token.INT 0; Token.DOTDOT; Token.INT 3;
                           Token.RBRACE; Token.DOT; Token.IDENT "x"; Token.EOF ]);
  check_bool "dotlpar" true
    (tokens "s.(1)" = [ Token.IDENT "s"; Token.DOTLPAR; Token.INT 1;
                        Token.RPAR; Token.EOF ]);
  check_bool "le/implies/ge" true
    (tokens "<= => >= \\/" = [ Token.LE; Token.IMPLIES; Token.GE; Token.OR; Token.EOF ])

let test_lexer_comments_keywords () =
  check_bool "comments skipped" true
    (tokens "a -- rest of line\nb" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ]);
  check_bool "keywords reserved" true
    (tokens "STOP chan NAT sat" = [ Token.KW_STOP; Token.KW_CHAN; Token.KW_NAT;
                                     Token.KW_SAT; Token.EOF ]);
  check_bool "idents with primes and underscores" true
    (tokens "x_1'" = [ Token.IDENT "x_1'"; Token.EOF ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  let b = List.nth toks 1 in
  check_int "line" 2 b.Lexer.line;
  check_int "col" 3 b.Lexer.col

let test_lexer_error () =
  match Lexer.tokenize "a $ b" with
  | exception Lexer.Lex_error (_, 1, 3) -> ()
  | exception Lexer.Lex_error (_, l, c) -> Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "expected a lexer error"

(* ---- parser: processes ------------------------------------------------ *)

let parse_p s =
  match Parser.parse_process s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_parse_prefixes () =
  check process_testable "output chain"
    (Process.send "a" (Expr.int 1) (Process.send "b" (Expr.int 2) Process.Stop))
    (parse_p "a!1 -> b!2 -> STOP");
  check process_testable "input"
    (Process.recv "c" "x" Vset.Nat (Process.send "d" (Expr.Var "x") Process.Stop))
    (parse_p "c?x:NAT -> d!x -> STOP");
  check process_testable "subscripted channels"
    (Process.Output
       (Chan_expr.indexed "col" (Expr.Sub (Expr.Var "i", Expr.int 1)),
        Expr.int 0, Process.Stop))
    (parse_p "col[i-1]!0 -> STOP")

let test_parse_precedence () =
  (* -> binds tighter than |, which binds tighter than || *)
  let p = parse_p "a!1 -> STOP | b!2 -> STOP" in
  (match p with
  | Process.Choice (Process.Output _, Process.Output _) -> ()
  | _ -> Alcotest.failf "wrong parse: %a" Process.pp p);
  let q = parse_p "a!1 -> STOP | b!2 -> STOP || c!3 -> STOP" in
  match q with
  | Process.Par (_, _, Process.Choice _, Process.Output _) -> ()
  | _ -> Alcotest.failf "wrong parse: %a" Process.pp q

let test_parse_symbols_uppercase () =
  check process_testable "ACK is a constant"
    (Process.send "wire" (Expr.Const Value.ack) Process.Stop)
    (parse_p "wire!ACK -> STOP")

let test_parse_explicit_alphabets () =
  match parse_p "STOP [ {a, col[0..3]} || {b[*]} ] STOP" with
  | Process.Par (xa, ya, Process.Stop, Process.Stop) ->
    check_bool "family" true (Chan_set.mem xa (Channel.indexed "col" 2));
    check_bool "family bound" false (Chan_set.mem xa (Channel.indexed "col" 7));
    check_bool "base wildcard" true (Chan_set.mem ya (Channel.indexed "b" 9))
  | p -> Alcotest.failf "wrong parse: %a" Process.pp p

let test_parse_chan_scope () =
  match parse_p "chan wire, col[0..2]; STOP" with
  | Process.Hide (l, Process.Stop) ->
    check_bool "wire hidden" true (Chan_set.mem l (Channel.simple "wire"));
    check_bool "col[1] hidden" true (Chan_set.mem l (Channel.indexed "col" 1))
  | p -> Alcotest.failf "wrong parse: %a" Process.pp p

let test_inferred_alphabets () =
  let src = "left = a!1 -> left\nright = a?x:NAT -> b!x -> right\nnet = left || right" in
  let file = Parser.parse_file_exn src in
  match (Option.get (Defs.lookup file.Parser.defs "net")).Defs.body with
  | Process.Par (xa, ya, _, _) ->
    check_bool "left alphabet" true (Chan_set.mem xa (Channel.simple "a"));
    check_bool "left lacks b" false (Chan_set.mem xa (Channel.simple "b"));
    check_bool "right has b" true (Chan_set.mem ya (Channel.simple "b"))
  | p -> Alcotest.failf "wrong body: %a" Process.pp p

let test_parse_sets () =
  check process_testable "range set"
    (Process.recv "c" "x" (Vset.Range (0, 3)) Process.Stop)
    (parse_p "c?x:{0..3} -> STOP");
  check process_testable "enum of symbols"
    (Process.recv "c" "y" (Vset.Enum [ Value.ack; Value.nack ]) Process.Stop)
    (parse_p "c?y:{ACK, NACK} -> STOP")

let test_parse_errors () =
  let bad s =
    match Parser.parse_process s with
    | Error _ -> ()
    | Ok p -> Alcotest.failf "accepted %S as %a" s Process.pp p
  in
  bad "a!1 ->";
  bad "c?x -> STOP";
  bad "(a!1 -> STOP";
  bad "a!1 -> STOP extra";
  bad "q[1,2]!x -> STOP | |"

(* ---- parser: assertions ----------------------------------------------- *)

let parse_a ?bound s =
  match Parser.parse_assertion ?bound s with
  | Ok a -> a
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_parse_assertions () =
  check assertion_testable "prefix order"
    (Assertion.Prefix (Term.chan "wire", Term.chan "input"))
    (parse_a "wire <= input");
  check assertion_testable "length comparison"
    (Assertion.Cmp
       (Assertion.Le, Term.Len (Term.chan "input"),
        Term.Add (Term.Len (Term.chan "wire"), Term.int 1)))
    (parse_a "#input <= #wire + 1");
  check assertion_testable "function application"
    (Assertion.Prefix (Term.App ("f", Term.chan "wire"), Term.chan "input"))
    (parse_a "f(wire) <= input");
  check assertion_testable "bound variables"
    (Assertion.Prefix
       (Term.chan "wire", Term.Cons (Term.Var "x", Term.chan "input")))
    (parse_a ~bound:[ "x" ] "wire <= x^input")

let test_parse_quantified () =
  match parse_a "forall i:NAT. 1 <= i & i <= #output => output.(i) = sum(j, 1, 3, row[j].(i))" with
  | Assertion.Forall ("i", Vset.Nat, Assertion.Imp (Assertion.And _, Assertion.Eq (Term.Index _, Term.Sum _))) -> ()
  | a -> Alcotest.failf "wrong parse: %a" Assertion.pp a

let test_parse_seq_literals () =
  check assertion_testable "sequence literal"
    (Assertion.Prefix
       (Term.Const (Value.Seq [ Value.Int 1; Value.Int 2 ]), Term.chan "c"))
    (parse_a "<1, 2> <= c");
  check assertion_testable "empty literal"
    (Assertion.Eq (Term.chan "c", Term.empty_seq))
    (parse_a "c = <>")

let test_parse_paren_backtrack () =
  (* parenthesised term starting a comparison vs parenthesised assertion *)
  check assertion_testable "paren term"
    (Assertion.Cmp
       (Assertion.Le, Term.Add (Term.Len (Term.chan "a"), Term.int 1), Term.int 5))
    (parse_a "(#a + 1) <= 5");
  check assertion_testable "paren assertion"
    (Assertion.And (Assertion.True, Assertion.False))
    (parse_a "(true) & false")

(* ---- files ------------------------------------------------------------- *)

let test_duplicate_definition_rejected () =
  match Parser.parse_file "p = a!1 -> STOP\np = b!2 -> STOP" with
  | Error m -> check_bool "mentions the name" true
      (String.length m > 0 &&
       let contains s sub =
         let n = String.length s and m' = String.length sub in
         let rec go i = i + m' <= n && (String.sub s i m' = sub || go (i + 1)) in
         go 0
       in
       contains m "defined twice")
  | Ok _ -> Alcotest.fail "duplicate definitions must be rejected"

let test_parse_file_decls () =
  let src =
    "p = a!1 -> p\nassert p sat a <= a\nq[x:{0..1}] = b!x -> STOP\n\
     assert forall x:{0..1}. q[x] sat #b <= 1"
  in
  let file = Parser.parse_file_exn src in
  check_int "two defs" 2 (List.length (Defs.names file.Parser.defs));
  check_int "two decls" 2 (List.length file.Parser.decls);
  match file.Parser.decls with
  | [ Parser.Assert_plain ("p", _); Parser.Assert_array ("q", "x", Vset.Range (0, 1), _) ] -> ()
  | _ -> Alcotest.fail "wrong declarations"

(* ---- printer round-trips ------------------------------------------------ *)

let prop_process_roundtrip =
  qcheck_case ~count:300 "parse (print p) = p" process_gen (fun p ->
      match Parser.parse_process (Printer.process p) with
      | Ok p' -> Process.equal p p'
      | Error m ->
        QCheck2.Test.fail_reportf "did not reparse: %s\n%s" (Printer.process p) m)

let test_assertion_roundtrips () =
  (* hand-picked assertion round trips, covering every constructor *)
  let cases =
    [
      "true"; "false"; "wire <= input"; "#input <= #wire + 1";
      "f(wire) <= input"; "a = b ++ c"; "~(a = <>)";
      "true & false \\/ true"; "1 <= 2 => a <= a";
      "forall x:NAT. x^a <= x^b"; "exists y:{ACK, NACK}. a = <>";
      "s.(1) = 3"; "2 in {0..4}";
      "sum(j, 1, 3, j * j) = 14"; "#a - 1 < #b * 2";
    ]
  in
  List.iter
    (fun s ->
      let a = parse_a s in
      let printed = Printer.assertion a in
      match Parser.parse_assertion printed with
      | Ok a' ->
        if not (Assertion.equal a a') then
          Alcotest.failf "round trip changed %S -> %S" s printed
      | Error m -> Alcotest.failf "%S printed as %S: %s" s printed m)
    cases

let test_defs_roundtrip_paper () =
  (* the protocol definitions round-trip through the printer *)
  let src =
    "sender = input?x:NAT -> q[x]\n\
     q[x:NAT] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])\n\
     receiver = wire?z:NAT -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver)\n\
     protocol = chan wire; (sender [ {input, wire} || {wire, output} ] receiver)"
  in
  let file = Parser.parse_file_exn src in
  let file2 = Parser.parse_file_exn (Printer.defs file.Parser.defs) in
  List.iter
    (fun n ->
      let d1 = Option.get (Defs.lookup file.Parser.defs n) in
      let d2 = Option.get (Defs.lookup file2.Parser.defs n) in
      if not (Process.equal d1.Defs.body d2.Defs.body) then
        Alcotest.failf "definition %s changed" n)
    (Defs.names file.Parser.defs)

let () =
  Alcotest.run "syntax"
    [
      ( "lexer",
        [
          Alcotest.test_case "token shapes" `Quick test_lexer_basics;
          Alcotest.test_case "comments and keywords" `Quick
            test_lexer_comments_keywords;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "processes",
        [
          Alcotest.test_case "prefixes" `Quick test_parse_prefixes;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "symbolic constants" `Quick
            test_parse_symbols_uppercase;
          Alcotest.test_case "explicit alphabets" `Quick
            test_parse_explicit_alphabets;
          Alcotest.test_case "chan scope" `Quick test_parse_chan_scope;
          Alcotest.test_case "inferred alphabets" `Quick test_inferred_alphabets;
          Alcotest.test_case "sets" `Quick test_parse_sets;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "assertions",
        [
          Alcotest.test_case "comparisons" `Quick test_parse_assertions;
          Alcotest.test_case "quantifiers and sums" `Quick test_parse_quantified;
          Alcotest.test_case "sequence literals" `Quick test_parse_seq_literals;
          Alcotest.test_case "parenthesis backtracking" `Quick
            test_parse_paren_backtrack;
        ] );
      ( "files",
        [
          Alcotest.test_case "definitions and asserts" `Quick
            test_parse_file_decls;
          Alcotest.test_case "duplicates rejected" `Quick
            test_duplicate_definition_rejected;
        ] );
      ( "round-trips",
        [
          prop_process_roundtrip;
          Alcotest.test_case "assertions" `Quick test_assertion_roundtrips;
          Alcotest.test_case "paper definitions" `Quick test_defs_roundtrip_paper;
        ] );
    ]
