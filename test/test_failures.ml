(* The refusals model (§4 future work) and the LTS substrate. *)

open Csp
open Test_support

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg ?(defs = Defs.empty) () = Step.config ~sampler:(Sampler.nat_bound 2) defs
let out c v k = Process.send c (Expr.int v) k

(* ---- commitments and acceptances ------------------------------------- *)

let test_commitments_resolve_choice () =
  let p = Process.Choice (out "a" 1 Process.Stop, out "b" 2 Process.Stop) in
  check_int "two internal commitments" 2
    (List.length (Failures.commitments ~choice:`Internal (cfg ()) p));
  check_int "two singleton acceptances" 2
    (List.length (Failures.acceptances_now ~choice:`Internal (cfg ()) p));
  (* the external reading keeps one state offering both events *)
  check_int "one external commitment" 1
    (List.length (Failures.commitments ~choice:`External (cfg ()) p));
  match Failures.acceptances_now ~choice:`External (cfg ()) p with
  | [ [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "expected a single two-event acceptance" 

let test_commitments_settle_hidden () =
  (* (chan a; a!0 -> b!1 -> STOP): the hidden a runs before stability *)
  let p =
    Process.Hide (Chan_set.of_names [ "a" ], out "a" 0 (out "b" 1 Process.Stop))
  in
  match Failures.acceptances_now (cfg ()) p with
  | [ [ e ] ] -> check_bool "offers b" true (Event.equal e (ev "b" 1))
  | accs -> Alcotest.failf "unexpected acceptances (%d)" (List.length accs)

let test_stable_state_acceptance () =
  let p = out "a" 1 (out "b" 2 Process.Stop) in
  match Failures.acceptances_now (cfg ()) p with
  | [ [ e ] ] -> check_bool "offers a.1" true (Event.equal e (ev "a" 1))
  | _ -> Alcotest.fail "expected a single singleton acceptance"

(* ---- the §4 distinction ----------------------------------------------- *)

let test_stop_choice_distinguished () =
  (* the trace model equates STOP | P with P; the refusals model does not *)
  let p = out "a" 1 Process.Stop in
  let dcfg = Denote.config ~sampler:(Sampler.nat_bound 2) Defs.empty in
  check_bool "trace model blind" true (Equiv.stop_choice_identity ~depth:3 dcfg p);
  check_bool "failures model sees it" true
    (Failures.distinguishes_stop_choice (cfg ()) ~depth:3 p);
  (* ... and STOP | STOP = STOP: nothing to distinguish *)
  check_bool "degenerate case equal" false
    (Failures.distinguishes_stop_choice (cfg ()) ~depth:3 Process.Stop)

let test_can_deadlock () =
  let p = out "a" 1 Process.Stop in
  check Alcotest.(option trace_testable) "deadlocks after a.1"
    (Some [ ev "a" 1 ])
    (Failures.can_deadlock (cfg ()) ~depth:3 p);
  check Alcotest.(option trace_testable) "STOP|P may deadlock immediately"
    (Some [])
    (Failures.can_deadlock ~choice:`Internal (cfg ()) ~depth:3
       (Process.Choice (Process.Stop, p)));
  check Alcotest.(option trace_testable)
    "externally, STOP|P deadlocks only after a.1" (Some [ ev "a" 1 ])
    (Failures.can_deadlock ~choice:`External (cfg ()) ~depth:3
       (Process.Choice (Process.Stop, p)));
  let defs = defs_copier in
  check Alcotest.(option trace_testable) "copier never deadlocks" None
    (Failures.can_deadlock (cfg ~defs ()) ~depth:3 (Process.ref_ "copier"))

let test_can_refuse () =
  (* a!1 -> STOP | b!2 -> STOP may refuse a (by committing to b) *)
  let p = Process.Choice (out "a" 1 Process.Stop, out "b" 2 Process.Stop) in
  check_bool "refuse a (internal)" true
    (Failures.can_refuse ~choice:`Internal (cfg ()) ~depth:1 p [] [ ev "a" 1 ]);
  check_bool "refuse b (internal)" true
    (Failures.can_refuse ~choice:`Internal (cfg ()) ~depth:1 p [] [ ev "b" 2 ]);
  check_bool "externally neither is refusable" false
    (Failures.can_refuse ~choice:`External (cfg ()) ~depth:1 p [] [ ev "a" 1 ]);
  check_bool "cannot refuse both options of one commitment" false
    (Failures.can_refuse (cfg ()) ~depth:1 (out "a" 1 Process.Stop) [] [ ev "a" 1 ])

let test_refinement () =
  (* deterministic a!1 refines the internal choice (a!1 | a-then-stop?) *)
  let det = out "a" 1 (out "b" 2 Process.Stop) in
  let nondet = Process.Choice (det, out "a" 1 Process.Stop) in
  let f_det = Failures.failures ~choice:`Internal (cfg ()) ~depth:3 det in
  let f_nondet = Failures.failures ~choice:`Internal (cfg ()) ~depth:3 nondet in
  check_bool "det refines nondet" true (Failures.refines f_det f_nondet);
  check_bool "nondet does not refine det" false (Failures.refines f_nondet f_det);
  check_bool "reflexive" true (Failures.refines f_nondet f_nondet)

let test_receiver_nondeterminism_visible () =
  (* the protocol receiver may refuse to acknowledge: after wire.x it can
     commit to the NACK branch, refusing wire.ACK *)
  let module P = Paper.Protocol in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) P.defs in
  check_bool "may refuse ACK" true
    (Failures.can_refuse ~choice:`Internal cfg ~depth:2 P.receiver
       [ ev "wire" 1 ] [ Event.v "wire" Value.ack ]);
  check_bool "may refuse NACK" true
    (Failures.can_refuse ~choice:`Internal cfg ~depth:2 P.receiver
       [ ev "wire" 1 ] [ Event.v "wire" Value.nack ]);
  check_bool "cannot refuse both" false
    (Failures.can_refuse ~choice:`Internal cfg ~depth:2 P.receiver
       [ ev "wire" 1 ]
       [ Event.v "wire" Value.ack; Event.v "wire" Value.nack ])

let test_protocol_deadlock_free_externally () =
  (* the sender's input-guarded alternative is resolved by the value on
     the wire; under the external reading the protocol cannot deadlock,
     while the internal reading lets sender and receiver commit to
     mismatched ACK/NACK branches *)
  let module P = Paper.Protocol in
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) P.defs in
  check Alcotest.(option trace_testable) "no deadlock (external)" None
    (Failures.can_deadlock ~choice:`External cfg ~depth:3 P.protocol);
  check_bool "internal reading is more pessimistic" true
    (Failures.can_deadlock ~choice:`Internal cfg ~depth:3 P.protocol <> None)

let test_crossed_handshake_deadlock_found () =
  (* E7's network: the failures model reports the deadlock the trace
     model provably cannot express *)
  let ab = Chan_set.of_names [ "a"; "b" ] in
  let defs =
    Defs.empty
    |> Defs.define "l"
         (out "a" 0 (Process.recv "b" "x" Vset.Nat (Process.ref_ "l")))
    |> Defs.define "r"
         (out "b" 0 (Process.recv "a" "x" Vset.Nat (Process.ref_ "r")))
  in
  let net = Process.Par (ab, ab, Process.ref_ "l", Process.ref_ "r") in
  check Alcotest.(option trace_testable) "deadlock at the start" (Some [])
    (Failures.can_deadlock (cfg ~defs ()) ~depth:2 net)

let prop_traces_of_failures_match_step =
  qcheck_case ~count:60 "failure traces = step traces" process_gen (fun p ->
      let fs = Failures.failures (cfg ()) ~depth:3 p in
      let from_failures = Closure.of_traces (List.map fst fs) in
      Closure.equal from_failures (Step.traces (cfg ()) ~depth:3 p))

let prop_deadlock_acceptance_consistent =
  qcheck_case ~count:60 "empty acceptance iff a commitment is deadlocked"
    process_gen (fun p ->
      let cfg = cfg () in
      let has_empty =
        List.exists (fun a -> a = []) (Failures.acceptances_now cfg p)
      in
      let commit_dead =
        List.exists
          (fun c -> Failures.acceptances_now cfg c = [ [] ])
          (Failures.commitments cfg p)
      in
      has_empty = commit_dead)

(* ---- LTS ---------------------------------------------------------------- *)

let test_lts_copier () =
  let defs = defs_copier in
  let lts = Lts.explore (cfg ~defs ()) (Process.ref_ "copier") in
  (* states: copier, wire!0->copier, wire!1->copier *)
  check_int "three states" 3 (Lts.num_states lts);
  check_int "four transitions" 4 (Lts.num_transitions lts);
  check_bool "complete" true lts.Lts.complete;
  check_bool "deterministic" true (Lts.is_deterministic lts);
  check_int "no deadlocks" 0 (List.length (Lts.deadlock_states lts));
  check_int "two channels" 2 (List.length (Lts.reachable_channels lts))

let test_lts_deadlock_and_dot () =
  let p = out "a" 1 Process.Stop in
  let lts = Lts.explore (cfg ()) p in
  check_int "two states" 2 (Lts.num_states lts);
  check_int "one deadlock state" 1 (List.length (Lts.deadlock_states lts));
  let dot = Lts.to_dot lts in
  check_bool "dot mentions the event" true
    (String.length dot > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains dot "a.1" && contains dot "doublecircle")

let test_lts_state_bound () =
  (* a counter that never revisits a state: the bound must kick in *)
  let defs =
    Defs.empty
    |> Defs.define_array "count" "n" Vset.Nat
         (Process.Output
            ( Chan_expr.simple "a",
              Expr.Var "n",
              Process.call "count" (Expr.Add (Expr.Var "n", Expr.int 1)) ))
  in
  let lts =
    Lts.explore ~max_states:10 (cfg ~defs ()) (Process.call "count" (Expr.int 0))
  in
  check_bool "incomplete" false lts.Lts.complete;
  check_bool "bounded" true (Lts.num_states lts <= 10)

let test_lts_nondeterministic () =
  let p =
    Process.Choice (out "a" 1 (out "b" 1 Process.Stop), out "a" 1 Process.Stop)
  in
  let lts = Lts.explore (cfg ()) p in
  check_bool "nondeterminism detected" false (Lts.is_deterministic lts)

let test_lts_protocol_statistics () =
  let module P = Paper.Protocol in
  let lts =
    Lts.explore ~max_states:500
      (Step.config ~sampler:(Sampler.nat_bound 2) P.defs)
      P.protocol
  in
  check_bool "complete at this sample" true lts.Lts.complete;
  check_int "protocol never deadlocks" 0 (List.length (Lts.deadlock_states lts));
  check_bool "has hidden transitions" true
    (List.exists (fun tr -> not tr.Lts.visible) lts.Lts.transitions)

let () =
  Alcotest.run "failures"
    [
      ( "commitments",
        [
          Alcotest.test_case "choice resolution" `Quick
            test_commitments_resolve_choice;
          Alcotest.test_case "hidden settling" `Quick
            test_commitments_settle_hidden;
          Alcotest.test_case "stable acceptance" `Quick
            test_stable_state_acceptance;
        ] );
      ( "refusals(§4)",
        [
          Alcotest.test_case "STOP|P distinguished" `Quick
            test_stop_choice_distinguished;
          Alcotest.test_case "deadlock detection" `Quick test_can_deadlock;
          Alcotest.test_case "refusal queries" `Quick test_can_refuse;
          Alcotest.test_case "refinement" `Quick test_refinement;
          Alcotest.test_case "receiver nondeterminism" `Quick
            test_receiver_nondeterminism_visible;
          Alcotest.test_case "protocol deadlock-freedom" `Quick
            test_protocol_deadlock_free_externally;
          Alcotest.test_case "crossed handshake" `Quick
            test_crossed_handshake_deadlock_found;
          prop_traces_of_failures_match_step;
          prop_deadlock_acceptance_consistent;
        ] );
      ( "lts",
        [
          Alcotest.test_case "copier graph" `Quick test_lts_copier;
          Alcotest.test_case "deadlock and dot" `Quick test_lts_deadlock_and_dot;
          Alcotest.test_case "state bound" `Quick test_lts_state_bound;
          Alcotest.test_case "nondeterminism" `Quick test_lts_nondeterministic;
          Alcotest.test_case "protocol statistics" `Quick
            test_lts_protocol_statistics;
        ] );
    ]
