(* Dining philosophers, in the paper's notation.

   Every channel of the paper's model connects a fixed set of
   neighbours, so a fork exposes one port per potential holder: its own
   philosopher grabs it on left[i], its other neighbour on right[i],
   with matching put-down ports:

     fork[i:0..n-1] = left[i]?p:{0..n-1}  -> lput[i]?q:{0..n-1} -> fork[i]
                    | right[i]?p:{0..n-1} -> rput[i]?q:{0..n-1} -> fork[i]

     phil[i] = left[i]!i -> right[(i+1) mod n]!i -> eat[i]!i
               -> lput[i]!i -> rput[(i+1) mod n]!i -> phil[i]

   The symmetric table deadlocks (every philosopher holds a left fork);
   making the last philosopher left-handed removes the cycle.  We

   - PROVE the per-fork safety invariant
       forall i. #lput[i] + #rput[i] <= #left[i] + #right[i]
                 <= #lput[i] + #rput[i] + 1
     with the recursion rule for process arrays — partial correctness
     holds for both variants, deadlock or not (§4!);
   - exhaustively explore both networks' state spaces: the symmetric one
     contains deadlock states, the asymmetric one provably (for the
     explored model) contains none;
   - confirm the same by randomised simulation.

   Run with: dune exec examples/philosophers.exe *)

open Csp

let n = 3
let ids = Vset.Range (0, n - 1)
let ch name i = Chan_expr.indexed name i
let modn e = Expr.Mod (e, Expr.int n)

let fork_body =
  let i = Expr.Var "i" in
  Process.Choice
    ( Process.Input
        ( ch "left" i,
          "p",
          ids,
          Process.Input (ch "lput" i, "q", ids, Process.call "fork" i) ),
      Process.Input
        ( ch "right" i,
          "p",
          ids,
          Process.Input (ch "rput" i, "q", ids, Process.call "fork" i) ) )

(* grab the two forks through the given ports, eat, put them back *)
let phil_body (port1, f1) (port2, f2) =
  let i = Expr.Var "i" in
  Process.Output
    ( ch port1 f1,
      i,
      Process.Output
        ( ch port2 f2,
          i,
          Process.Output
            ( ch "eat" i,
              i,
              Process.Output
                ( ch (if port1 = "left" then "lput" else "rput") f1,
                  i,
                  Process.Output
                    ( ch (if port2 = "right" then "rput" else "lput") f2,
                      i,
                      Process.call "phil" i ) ) ) ) )

let defs ~left_handed_last =
  let i = Expr.Var "i" in
  let own = ("left", i) and next = ("right", modn (Expr.Add (i, Expr.int 1))) in
  let base = Defs.empty |> Defs.define_array "fork" "i" ids fork_body in
  if left_handed_last then
    (* the left-handed philosopher loops back to itself, not to phil[n-1] *)
    let rec to_lefty = function
      | Process.Ref ("phil", _) -> Process.ref_ "lefty"
      | Process.Output (c, e, k) -> Process.Output (c, e, to_lefty k)
      | Process.Input (c, x, m, k) -> Process.Input (c, x, m, to_lefty k)
      | Process.Choice (a, b) -> Process.Choice (to_lefty a, to_lefty b)
      | Process.Par (xa, ya, a, b) -> Process.Par (xa, ya, to_lefty a, to_lefty b)
      | Process.Hide (l, p) -> Process.Hide (l, to_lefty p)
      | (Process.Stop | Process.Ref _) as p -> p
    in
    base
    |> Defs.define_array "phil" "i" (Vset.Range (0, n - 2)) (phil_body own next)
    |> Defs.define "lefty"
         (to_lefty (Process.subst_expr "i" (Expr.int (n - 1)) (phil_body next own)))
  else base |> Defs.define_array "phil" "i" ids (phil_body own next)

let network ~left_handed_last =
  let c name i = Channel.indexed name i in
  let fork_alpha i =
    Chan_set.of_channels [ c "left" i; c "right" i; c "lput" i; c "rput" i ]
  in
  let phil_alpha i =
    let j = (i + 1) mod n in
    Chan_set.of_channels
      [ c "left" i; c "lput" i; c "right" j; c "rput" j; c "eat" i ]
  in
  let forks =
    List.init n (fun i -> (Process.call "fork" (Expr.int i), fork_alpha i))
  in
  let phils =
    List.init n (fun i ->
        let p =
          if left_handed_last && i = n - 1 then Process.ref_ "lefty"
          else Process.call "phil" (Expr.int i)
        in
        (p, phil_alpha i))
  in
  match forks @ phils with
  | [] -> assert false
  | (p0, a0) :: rest ->
    fst
      (List.fold_left
         (fun (p, a) (q, b) -> (Process.Par (a, b, p, q), Chan_set.union a b))
         (p0, a0) rest)

let fork_invariant =
  let len name = Term.Len (Term.Chan (ch name (Expr.Var "i"))) in
  let grabs = Term.Add (len "left", len "right")
  and puts = Term.Add (len "lput", len "rput") in
  Assertion.And
    ( Assertion.Cmp (Assertion.Le, puts, grabs),
      Assertion.Cmp (Assertion.Le, grabs, Term.Add (puts, Term.int 1)) )

let () =
  (* 1. the proof — identical for both variants *)
  let d = defs ~left_handed_last:false in
  let tables =
    Tactic.tables ~array_invariants:[ ("fork", ("i", ids, fork_invariant)) ] ()
  in
  (match
     Tactic.prove_and_check ~tables (Sequent.context d)
       (Sequent.Holds_all ("fork", "i", ids, fork_invariant))
   with
  | Ok (proof, report) ->
    Format.printf
      "fork invariant proved for all i (%d rules, %d obligations): a fork is \
       held at most once more than it was put down@."
      (Proof.size proof)
      (List.length report.Check.obligations)
  | Error m -> Format.printf "fork proof FAILED: %s@." m);

  (* 2. exhaustive state exploration of both tables *)
  List.iter
    (fun (label, left_handed_last) ->
      let d = defs ~left_handed_last in
      let cfg = Step.config ~sampler:(Sampler.nat_bound n) d in
      let net = network ~left_handed_last in
      let lts = Lts.explore ~max_states:20000 cfg net in
      Format.printf
        "%-22s %4d states, %5d transitions, complete=%b, deadlock states: %d@."
        label (Lts.num_states lts) (Lts.num_transitions lts) lts.Lts.complete
        (List.length (Lts.deadlock_states lts));
      (* 3. randomised simulation agrees *)
      let deadlocks = ref 0 in
      let runs = 40 in
      for seed = 1 to runs do
        let r =
          Csp_sim.Runner.run ~scheduler:(Scheduler.uniform ~seed) ~max_steps:400
            cfg net
        in
        if r.Csp_sim.Runner.stop = Csp_sim.Runner.Deadlock then incr deadlocks
      done;
      Format.printf "%-22s %d/%d random runs deadlocked@." label !deadlocks runs)
    [ ("symmetric table:", false); ("one left-handed:", true) ]
