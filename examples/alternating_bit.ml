(* The alternating-bit protocol — the natural successor of the paper's
   §2.2 stop-and-wait protocol, pushed through the same machinery.

   The paper's receiver non-deterministically NACKs; here the medium
   itself is faulty (it may lose frames), the sender retransmits on a
   "timeout" (modelled as a non-deterministic choice between waiting for
   the acknowledgement and re-sending), and a one-bit sequence number
   lets the receiver discard duplicates.  Frames encode (data, bit) as
   the integer 2*data + bit; data ranges over {0,1}.

     sendA     = input?x:{0,1} -> pushA[x]          (sending with bit 0)
     pushA[x]  = wire!(2x)   -> waitA[x]
     waitA[x]  = ack?y:{0} -> sendB                  (right ack: flip bit)
               | ack?y:{1} -> pushA[x]               (stale ack: resend)
               | wire!(2x) -> waitA[x]               (timeout: retransmit)
     (sendB / pushB / waitB symmetric with bit 1)

     medium    = wire?p:{0..3} -> (deliver!p -> medium | lost!p -> medium)

     recvA     = deliver?p:{0,2} -> output!(p/2) -> ack!0 -> recvB
               | deliver?p:{1,3} -> ack!1 -> recvA   (duplicate: re-ack)
     (recvB symmetric)

     abp = chan wire, deliver, lost, ack; (sender || medium || receiver)

   The language has no conditionals, so the bit lives in the process
   *names* — exactly how the paper differentiates behaviour, via
   mutually recursive equations.

   What this example shows:
   - the safety property `output <= input` survives loss and
     retransmission (bounded checking + runtime monitoring);
   - the invariant-discovery engine finds `output <= input` (and more)
     by itself;
   - exhaustive state exploration shows the sampled model deadlock-free;
   - goodput degrades gracefully as the loss probability rises, while
     safety never breaks.

   Run with: dune exec examples/alternating_bit.exe *)

open Csp

let data = Vset.Range (0, 1)
let frames = Vset.Range (0, 3)
let x2 b x = Expr.Add (Expr.Mul (Expr.int 2, Expr.Var x), Expr.int b)

let defs =
  let send push = Process.recv "input" "x" data (Process.call push (Expr.Var "x")) in
  let push bit wait =
    Process.send "wire" (x2 bit "x") (Process.call wait (Expr.Var "x"))
  in
  let wait bit this_push other_send =
    Process.choice
      [
        Process.recv "ack" "y" (Vset.Enum [ Value.Int bit ]) (Process.ref_ other_send);
        Process.recv "ack" "y" (Vset.Enum [ Value.Int (1 - bit) ])
          (Process.call this_push (Expr.Var "x"));
        Process.send "wire" (x2 bit "x") (Process.call ("wait" ^ if bit = 0 then "A" else "B") (Expr.Var "x"));
      ]
  in
  let recv bit this other =
    let mine = Vset.Enum [ Value.Int bit; Value.Int (2 + bit) ] in
    let stale = Vset.Enum [ Value.Int (1 - bit); Value.Int (2 + (1 - bit)) ] in
    Process.Choice
      ( Process.recv "deliver" "p" mine
          (Process.send "output"
             (Expr.Div (Expr.Var "p", Expr.int 2))
             (Process.send "ack" (Expr.int bit) (Process.ref_ other))),
        Process.recv "deliver" "p" stale
          (Process.send "ack" (Expr.int (1 - bit)) (Process.ref_ this)) )
  in
  Defs.empty
  |> Defs.define "sendA" (send "pushA")
  |> Defs.define_array "pushA" "x" data (push 0 "waitA")
  |> Defs.define_array "waitA" "x" data (wait 0 "pushA" "sendB")
  |> Defs.define "sendB" (send "pushB")
  |> Defs.define_array "pushB" "x" data (push 1 "waitB")
  |> Defs.define_array "waitB" "x" data (wait 1 "pushB" "sendA")
  |> Defs.define "medium"
       (Process.recv "wire" "p" frames
          (Process.Choice
             ( Process.send "deliver" (Expr.Var "p") (Process.ref_ "medium"),
               Process.send "lost" (Expr.Var "p") (Process.ref_ "medium") )))
  |> Defs.define "recvA" (recv 0 "recvA" "recvB")
  |> Defs.define "recvB" (recv 1 "recvB" "recvA")

let sender_alpha = Chan_set.of_names [ "input"; "wire"; "ack" ]
let medium_alpha = Chan_set.of_names [ "wire"; "deliver"; "lost" ]
let receiver_alpha = Chan_set.of_names [ "deliver"; "ack"; "output" ]

let network =
  Process.Par
    ( Chan_set.union sender_alpha medium_alpha,
      receiver_alpha,
      Process.Par (sender_alpha, medium_alpha, Process.ref_ "sendA", Process.ref_ "medium"),
      Process.ref_ "recvA" )

let abp =
  Process.Hide (Chan_set.of_names [ "wire"; "deliver"; "lost"; "ack" ], network)

let spec = Assertion.Prefix (Term.chan "output", Term.chan "input")

let () =
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) ~hide_fuel:12 defs in

  (* 1. bounded model checking of end-to-end safety *)
  Format.printf "bounded check (network): %a@." Sat.pp_outcome
    (Sat.check ~depth:6 cfg network spec);
  Format.printf "bounded check (hidden):  %a@." Sat.pp_outcome
    (Sat.check ~depth:4 cfg abp spec);

  (* 2. invariant discovery on the visible network *)
  let conjectures = Infer.conjecture cfg network in
  Format.printf "@.conjectured invariants of the network (from observation):@.";
  List.iter (fun a -> Format.printf "  %a@." Assertion.pp a) conjectures;
  Format.printf "end-to-end safety conjectured automatically: %b@."
    (List.exists (Assertion.equal spec) conjectures);

  (* 3. exhaustive exploration: the sampled model is deadlock-free *)
  let lts = Lts.explore ~max_states:20000 cfg network in
  Format.printf
    "@.state space: %d states, %d transitions, complete=%b, deadlocks=%d@."
    (Lts.num_states lts) (Lts.num_transitions lts) lts.Lts.complete
    (List.length (Lts.deadlock_states lts));
  let min = Bisim.minimise lts in
  Format.printf "bisimulation quotient: %d states@." (Lts.num_states min);

  (* 4. goodput under increasing loss, safety monitored throughout *)
  Format.printf "@.%8s %10s %10s %10s %10s@." "p(loss)" "inputs" "outputs"
    "lost" "goodput";
  List.iter
    (fun p_loss ->
      let weight (e : Event.t) =
        match Channel.base e.Event.chan with
        | "lost" -> p_loss
        | "deliver" -> 1.0 -. p_loss
        | _ -> 1.0
      in
      let r =
        Csp_sim.Runner.run
          ~scheduler:(Scheduler.weighted ~seed:23 ~weight)
          ~monitors:[ Csp_sim.Runner.monitor "safety" spec ]
          ~max_steps:10_000 cfg abp
      in
      assert (r.Csp_sim.Runner.violations = []);
      let count c = Stats.count r.Csp_sim.Runner.stats (Channel.simple c) in
      Format.printf "%8.2f %10d %10d %10d %10.4f@." p_loss (count "input")
        (count "output") (count "lost")
        (float_of_int (count "output")
        /. float_of_int r.Csp_sim.Runner.stats.Stats.steps))
    [ 0.0; 0.25; 0.5; 0.75 ]
