(* The systolic matrix-vector multiplier of §1.3(5).

   A pipeline of multiplier cells computes, for every "row" of values
   fed on channels row[1..n], the scalar product with a fixed vector v,
   emitting it on "output".  We:

   - bounded-check the paper's indexed assertion
       forall i. 1 <= i <= #output =>
         output_i = sum_j v[j] * row[j]_i
   - simulate the network and independently recompute every scalar
     product from the recorded channel histories;
   - show the network keeps the assertion under three schedulers.

   Run with: dune exec examples/multiplier.exe *)

open Csp
module M = Paper.Multiplier

let () =
  let m = M.make ~v:[ 2; 7; 1 ] in
  Format.printf "vector v = [%s]@."
    (String.concat "; " (List.map string_of_int m.M.v));

  (* Bounded model check of the paper's assertion on the visible
     network (cols unhidden so the assertion's row histories align). *)
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) m.M.defs in
  let out = Sat.check ~nat_bound:8 ~depth:7 cfg m.M.network m.M.spec in
  Format.printf "bounded check: %a@." Sat.pp_outcome out;

  (* Simulate and recompute. *)
  List.iter
    (fun (name, scheduler) ->
      let r =
        Csp_sim.Runner.run ~scheduler
          ~monitors:[ Csp_sim.Runner.monitor "scalar-products" m.M.spec ]
          ~max_steps:400 cfg m.M.multiplier
      in
      let hist =
        List.fold_left
          (fun h (e, _) -> History.extend h e)
          History.empty r.Csp_sim.Runner.events
      in
      let outputs = History.get hist (Channel.simple "output") in
      let row j = History.get hist (Channel.indexed "row" j) in
      let expected i =
        List.fold_left ( + ) 0
          (List.mapi
             (fun k vk ->
               match Seq_ops.index (row (k + 1)) i with
               | Some (Value.Int x) -> (vk * x)
               | _ -> 0)
             m.M.v)
      in
      let all_correct =
        List.for_all2
          (fun i o -> Value.equal o (Value.Int (expected i)))
          (List.init (List.length outputs) (fun i -> i + 1))
          outputs
      in
      Format.printf
        "%-18s %3d outputs, monitor violations: %d, recomputed products \
         correct: %b@."
        name (List.length outputs)
        (List.length r.Csp_sim.Runner.violations)
        all_correct)
    [
      ("uniform(seed=3)", Scheduler.uniform ~seed:3);
      ("uniform(seed=99)", Scheduler.uniform ~seed:99);
      ("rotating", Scheduler.rotating);
    ]
