(* Quickstart: define a process, look at its traces, state an assertion,
   check it, prove it, and run it.

   The system is the paper's first example: a copier that forwards
   numbers from channel "input" to channel "wire".

     copier = input?x:NAT -> wire!x -> copier

   Run with: dune exec examples/quickstart.exe *)

open Csp

let () =
  (* 1. Define the process.  The EDSL mirrors the paper's notation;
        the same definition can also be parsed from concrete syntax
        (see Csp_syntax.Parser). *)
  let defs =
    Defs.empty
    |> Defs.define "copier"
         (Process.recv "input" "x" Vset.Nat
            (Process.send "wire" (Expr.Var "x") (Process.ref_ "copier")))
  in
  let copier = Process.ref_ "copier" in

  (* 2. Enumerate its traces (bounded: NAT is sampled as {0,1}). *)
  let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
  let traces = Step.traces cfg ~depth:4 copier in
  Format.printf "--- traces to depth 4 (%d in total) ---@." (Closure.cardinal traces);
  List.iter
    (fun t -> Format.printf "  %a@." Trace.pp t)
    (Closure.maximal_traces traces);

  (* 3. State the paper's assertion: the wire carries a prefix of the
        input.  Channel names in assertions denote message histories. *)
  let spec = Assertion.Prefix (Term.chan "wire", Term.chan "input") in

  (* 4. Bounded model check: evaluate the assertion on every trace. *)
  let outcome = Sat.check ~depth:6 cfg copier spec in
  Format.printf "@.--- bounded check ---@.copier sat %a: %a@." Assertion.pp
    spec Sat.pp_outcome outcome;

  (* 5. Prove it for ALL traces with the paper's inference rules.  The
        assertion itself is the loop invariant, so the tactic needs no
        further hints. *)
  let ctx = Sequent.context defs in
  let tables = Tactic.tables ~invariants:[ ("copier", spec) ] () in
  (match Tactic.prove_and_check ~tables ctx (Sequent.Holds (copier, spec)) with
  | Ok (_, report) ->
    Format.printf "@.--- proof (read upwards, as the paper suggests) ---@.%a@."
      Check.pp_report report
  | Error m -> Format.printf "proof failed: %s@." m);

  (* 6. Execute it with a random scheduler, monitoring the assertion
        before and after every communication. *)
  let r =
    Csp_sim.Runner.run
      ~scheduler:(Scheduler.uniform ~seed:7)
      ~monitors:[ Csp_sim.Runner.monitor "prefix" spec ]
      ~max_steps:50 cfg copier
  in
  Format.printf "@.--- simulation ---@.%a@." Csp_sim.Runner.pp_result r
