(* §4, first defect, made concrete: the proof system establishes only
   partial correctness, so it cannot detect — let alone rule out —
   deadlock.

   We build a network that deadlocks after one communication:

     greedy = a!1 -> a!2 -> greedy          (alphabet {a, b}!)
     taker  = a?x:NAT -> b!x -> taker       (alphabet {a, b})

   Both processes claim channel b in their alphabets, but greedy never
   actually communicates on it, so after the handshake a.1 the taker
   waits forever for a partner on b while greedy waits forever on a.2.

   Nevertheless `taker sat b <= a` is provable, parallelism lifts it to
   the network, and STOP itself satisfies the same assertion by the
   emptiness rule — "the process STOP satisfies any satisfiable
   invariant whatsoever".  The simulator, by contrast, hits the
   deadlock immediately, on every seed.

   Run with: dune exec examples/deadlock_demo.exe *)

open Csp

let defs =
  Defs.empty
  |> Defs.define "greedy"
       (Process.send "a" (Expr.int 1)
          (Process.send "a" (Expr.int 2) (Process.ref_ "greedy")))
  |> Defs.define "taker"
       (Process.recv "a" "x" Vset.Nat
          (Process.send "b" (Expr.Var "x") (Process.ref_ "taker")))

let alphabet = Chan_set.of_names [ "a"; "b" ]

let network =
  Process.Par (alphabet, alphabet, Process.ref_ "greedy", Process.ref_ "taker")

let spec = Assertion.Prefix (Term.chan "b", Term.chan "a")

let () =
  (* The proof goes through... *)
  let ctx = Sequent.context defs in
  let tables =
    Tactic.tables
      ~invariants:[ ("greedy", Assertion.True); ("taker", spec) ]
      ()
  in
  (match
     Tactic.prove_and_check ~tables ctx
       (Sequent.Holds
          (network, Assertion.And (Assertion.True, spec)))
   with
  | Ok (_, report) ->
    Format.printf "network proof accepted: (true & b <= a), %d obligations@."
      (List.length report.Check.obligations)
  | Error m -> Format.printf "network proof failed: %s@." m);

  (* ...and so does the degenerate one: STOP meets the same spec. *)
  (match
     Check.check ctx (Sequent.Holds (Process.Stop, spec)) Proof.Emptiness
   with
  | Ok _ ->
    Format.printf
      "STOP sat b <= a accepted by the emptiness rule — STOP satisfies \
       every satisfiable invariant (§4)@."
  | Error m -> Format.printf "unexpected: %s@." m);

  (* ...but execution tells the real story. *)
  let cfg = Step.config ~sampler:(Sampler.nat_bound 4) defs in
  let deadlocks = ref 0 and steps_total = ref 0 in
  let runs = 50 in
  for seed = 1 to runs do
    let r =
      Csp_sim.Runner.run ~scheduler:(Scheduler.uniform ~seed) ~max_steps:100
        ~monitors:[ Csp_sim.Runner.monitor "b<=a" spec ]
        cfg network
    in
    assert (r.Csp_sim.Runner.violations = []);
    if r.Csp_sim.Runner.stop = Csp_sim.Runner.Deadlock then begin
      incr deadlocks;
      steps_total := !steps_total + r.Csp_sim.Runner.stats.Stats.steps
    end
  done;
  Format.printf
    "simulation: %d/%d runs deadlocked (after %.1f communications on \
     average); the invariant was never violated@."
    !deadlocks runs
    (float_of_int !steps_total /. float_of_int (max 1 !deadlocks));

  (* The trace model agrees that nothing distinguishes the network from
     its one-step approximation: its complete trace set is tiny. *)
  let traces = Step.traces cfg ~depth:10 network in
  Format.printf "the network's complete trace set: ";
  List.iter
    (fun t -> Format.printf "%a " Trace.pp t)
    (Closure.to_traces traces);
  Format.printf "@."
