(* A chain of n one-place buffers (copiers in series), the canonical
   pipeline the paper's copier example generalises to.

     stage_i = c[i-1]?x:NAT -> c[i]!x -> stage_i        (i = 1..n)
     chain_n = chan c[1..n-1]; (stage_1 || ... || stage_n)

   We prove end-to-end order preservation, c[n] <= c[0], for several
   chain lengths: each stage contributes c[i] <= c[i-1] by the recursion
   rule, parallelism conjoins them, and the consequence rule closes the
   chain by transitivity of <= — a proof whose size grows linearly while
   the state space grows exponentially.  The bounded checker then
   verifies the same property semantically for small n.

   Run with: dune exec examples/buffer_chain.exe *)

open Csp

let stage_spec i =
  Assertion.Prefix
    ( Term.Chan (Chan_expr.indexed "c" (Expr.int i)),
      Term.Chan (Chan_expr.indexed "c" (Expr.int (i - 1))) )

let () =
  List.iter
    (fun n ->
      let defs, chain = Paper.Copier.chain_defs n in
      let spec = Paper.Copier.chain_spec n in
      let invariants =
        List.init n (fun i -> (Paper.Copier.stage_name (i + 1), stage_spec (i + 1)))
      in
      let tables = Tactic.tables ~invariants () in
      let ctx = Sequent.context defs in
      (match
         Tactic.prove_and_check ~tables ctx (Sequent.Holds (chain, spec))
       with
      | Ok (proof, report) ->
        Format.printf
          "n=%d: PROVED %a (%d rule applications, %d obligations)@." n
          Assertion.pp spec (Proof.size proof)
          (List.length report.Check.obligations)
      | Error m -> Format.printf "n=%d: FAILED %s@." n m);
      if n <= 3 then begin
        let cfg = Step.config ~sampler:(Sampler.nat_bound 2) defs in
        let out = Sat.check ~depth:6 cfg chain spec in
        Format.printf "      bounded check: %a@." Sat.pp_outcome out
      end)
    [ 1; 2; 3; 5; 8 ]
