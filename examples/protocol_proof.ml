(* The retransmission protocol, end to end:

   - regenerate Table 1 (the mechanised proof that
     sender sat f(wire) <= input) and the companion proofs;
   - derive `protocol sat output <= input` by parallelism, consequence
     and the chan rule, exactly as §2.2;
   - execute the protocol under increasingly hostile receivers (NACK
     probability swept from 0 to 0.9) and measure goodput.

   Run with: dune exec examples/protocol_proof.exe *)

open Csp
module P = Paper.Protocol

let prove name judgment =
  let ctx = Sequent.context P.defs in
  match Tactic.prove_and_check ~tables:P.tables ctx judgment with
  | Ok (proof, report) ->
    Format.printf "@.=== %s: PROVED (%d rule applications) ===@.%a@." name
      (Proof.size proof) Check.pp_report report
  | Error m -> Format.printf "=== %s: FAILED: %s ===@." name m

let () =
  (* Table 1 and its companions. *)
  prove "sender sat f(wire) <= input (Table 1)"
    (Sequent.Holds (P.sender, P.sender_spec));
  (let x, m, s = P.q_spec in
   prove "forall x. q[x] sat f(wire) <= x^input"
     (Sequent.Holds_all ("q", x, m, s)));
  prove "receiver sat output <= f(wire) (the exercise)"
    (Sequent.Holds (P.receiver, P.receiver_spec));
  prove "protocol sat output <= input (steps (1)-(6) of §2.2(3))"
    (Sequent.Holds (P.protocol, P.protocol_spec));

  (* Fault injection: bias the receiver towards NACK and watch goodput
     (delivered messages per communication) degrade while the proved
     safety property keeps holding. *)
  Format.printf "@.=== goodput under NACK bias (10000 steps each) ===@.";
  Format.printf "%8s %10s %10s %10s  %s@." "p(NACK)" "inputs" "outputs"
    "wire" "goodput";
  let cfg = Step.config ~sampler:(Sampler.nat_bound 4) ~hide_fuel:8 P.defs in
  List.iter
    (fun p_nack ->
      let weight (e : Event.t) =
        if Value.equal e.Event.value Value.nack then p_nack
        else if Value.equal e.Event.value Value.ack then 1.0 -. p_nack
        else 1.0
      in
      let r =
        Csp_sim.Runner.run
          ~scheduler:(Scheduler.weighted ~seed:11 ~weight)
          ~monitors:[ Csp_sim.Runner.monitor "safety" P.protocol_spec ]
          ~max_steps:10_000 cfg P.protocol
      in
      let inputs = Stats.count r.Csp_sim.Runner.stats (Channel.simple "input") in
      let outputs = Stats.count r.Csp_sim.Runner.stats (Channel.simple "output") in
      let wire = Stats.count r.Csp_sim.Runner.stats (Channel.simple "wire") in
      assert (r.Csp_sim.Runner.violations = []);
      Format.printf "%8.2f %10d %10d %10d  %.4f@." p_nack inputs outputs wire
        (float_of_int outputs /. float_of_int r.Csp_sim.Runner.stats.Stats.steps))
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9 ]
