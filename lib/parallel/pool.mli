(** A fixed-size pool of OCaml 5 domains for fork-join parallelism.

    Built on the stdlib only ([Domain], [Atomic], [Mutex],
    [Condition]).  A pool of [domains = n] executes batches with [n]
    workers: [n - 1] spawned domains plus the submitting domain, which
    always participates — so [create ~domains:1] spawns nothing and
    every operation degenerates to the sequential loop, making the
    1-domain pool a zero-cost way to share one code path between the
    sequential and parallel engines.

    Batches are fork-join barriers: a call to {!parallel_map} (or
    {!map_chunks}, {!run}) returns only once every task of the batch
    has finished, and results are delivered in input order regardless
    of which domain executed which task.  Tasks of one batch are
    claimed dynamically (an atomic cursor over the task array), so
    uneven task costs balance themselves; there is no preemption or
    work stealing between batches.

    Pools are quiescent between batches: idle workers block on a
    condition variable and consume no CPU.  A pool holds its domains
    until {!shutdown} (registered with [at_exit] as a safety net, so a
    forgotten pool never prevents process exit).

    One batch runs at a time per pool; batches must be submitted from
    a single domain at a time (the typical owner is the engine that
    created the pool).  Tasks must not themselves submit batches to
    the same pool. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains.
    [domains] is clamped below at 1.  The caller's domain is the
    remaining worker: it executes tasks while waiting for the join. *)

val domains : t -> int
(** The worker count [n] the pool was created with (including the
    submitting domain), after clamping. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent; the pool must not be used
    afterwards.  Called automatically at process exit for pools that
    were never shut down explicitly. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] applies [f] to every element, one task
    per element, and returns the results in input order.  If any task
    raises, the batch still runs to completion and the exception of
    the lowest-indexed failing task is re-raised in the caller. *)

val map_chunks : t -> ?chunk_size:int -> ('a array -> 'b) -> 'a array -> 'b array
(** Chunked fork-join: split [xs] into contiguous chunks of at most
    [chunk_size] elements (default: [length / (4 * domains)], at least
    1), apply [f] to each chunk as one task, and return the per-chunk
    results in chunk order.  Use when per-element work is small or when
    each task wants chunk-local state (e.g. a domain-local cache view
    merged at the join). *)

val run : t -> (unit -> 'a) list -> 'a list
(** Fork-join over explicit thunks, results in input order. *)

(** {1 Parallel-phase hooks}

    Subsystems with domain-local cache overlays (e.g. the closure
    kernel's memo arenas) register an [enter]/[exit] pair; the pool
    brackets every multi-domain parallel phase with them.  [enter]
    runs on the submitting domain before any worker touches a task;
    [exit] runs after every worker of the phase is quiescent (so the
    exit hook may merge domain-local state without further
    synchronisation).  Phases never nest; single-domain pools and
    single-task batches run no hooks. *)

val register_phase_hooks : enter:(unit -> unit) -> exit:(unit -> unit) -> unit

(** {1 Work-stealing deques}

    Per-worker double-ended queues in the Chase–Lev layout — owner
    pushes/pops newest-first at the bottom, thieves take the oldest
    half from the top.  Structural operations take a per-deque mutex
    (not the full lock-free protocol); an atomic size mirror lets
    thieves scan for victims without locking.  Exposed for unit
    testing; exploration goes through the stealing sessions below. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t

  val size : 'a t -> int
  (** Published size; exact for the owner, a racy hint for thieves. *)

  val push : 'a t -> 'a -> unit
  (** Owner end: append as the newest item. *)

  val pop : 'a t -> 'a option
  (** Owner end: remove the newest item. *)

  val steal_half : 'a t -> 'a list
  (** Thief end: remove the oldest ⌈size/2⌉ items, oldest first.
      Never holds more than the victim's lock, so a steal may run
      concurrently with the victim's own [push]/[pop] and with steals
      from other deques. *)
end

(** {1 Work-stealing sessions}

    A session turns the pool's spawned workers into a frontier
    scheduler: each worker owns a deque, runs [f ~worker ~push item]
    on its own newest item first, steals half of the nearest
    non-empty deque when it runs dry, and parks when the whole
    session looks empty.  [push] makes new work visible to the whole
    session (it may be processed by any worker, including the
    pusher).

    While a session is open the pool must not run batches
    ({!parallel_map} and friends) — the spawned workers are occupied
    by the session's driver loops.  The caller coordinates from its
    own domain and closes the session with {!stealing_stop}. *)

type 'a stealing

val stealing_start :
  t ->
  ?auto_stop:bool ->
  (worker:int -> push:('a -> unit) -> 'a -> unit) ->
  'a stealing
(** Open a session on the pool, starting one driver loop per spawned
    worker ([domains - 1] of them; a 1-domain pool starts none and
    relies on {!stealing_participate}).  [worker] ranges over
    [0 .. domains - 1]; the caller participates as [domains - 1].

    With [~auto_stop:true] the session stops itself when every pushed
    item has been processed (exact quiescence: pushes count the item
    before it becomes visible, processing decrements after the
    handler — and everything it pushed — is accounted).  Exceptions
    raised by [f] are then re-raised at {!stealing_stop}; without
    [auto_stop] the session is speculative and exceptions in [f] are
    swallowed (the coordinator is expected to re-derive
    authoritatively). *)

val stealing_push : 'a stealing -> 'a -> unit
(** Seed work from the caller, distributed round-robin over all
    deques.  In an [auto_stop] session, push at least one item before
    waiting on termination. *)

val stealing_participate : 'a stealing -> unit
(** Run the driver loop on the calling domain (as worker
    [domains - 1]) until the session stops.  This is how [auto_stop]
    sessions (and 1-domain pools) make the caller's domain work. *)

val stealing_pending : 'a stealing -> int
(** Items pushed but not yet fully processed (queued plus in-flight) —
    a racy load of the session's outstanding counter, for load
    reporting by long-lived hosts such as [cspc serve]. *)

val stealing_stop : 'a stealing -> unit
(** Stop the session (idempotent): signal every driver, wait for the
    spawned workers to leave their loops, then re-raise the first
    worker exception if the session was [auto_stop].  Items still
    queued are discarded. *)

(** {1 Statistics}

    Global counters, summed over every pool since program start;
    aggregated into [Engine.stats]. *)

type stats = {
  pools : int;        (** pools created *)
  workers : int;      (** worker domains spawned (excludes callers) *)
  batches : int;      (** fork-join barriers executed *)
  tasks : int;        (** tasks claimed and run, across all batches *)
  caller_tasks : int; (** of those, tasks run by the submitting domain *)
  lock_waits : int;   (** contended pool/deque-mutex acquisitions *)
  steals : int;       (** successful [Deque.steal_half] operations *)
  stolen : int;       (** items moved between deques by those steals *)
  stealing_tasks : int;  (** items processed by stealing sessions *)
}

val stats : unit -> stats
