(** A fixed-size pool of OCaml 5 domains for fork-join parallelism.

    Built on the stdlib only ([Domain], [Atomic], [Mutex],
    [Condition]).  A pool of [domains = n] executes batches with [n]
    workers: [n - 1] spawned domains plus the submitting domain, which
    always participates — so [create ~domains:1] spawns nothing and
    every operation degenerates to the sequential loop, making the
    1-domain pool a zero-cost way to share one code path between the
    sequential and parallel engines.

    Batches are fork-join barriers: a call to {!parallel_map} (or
    {!map_chunks}, {!run}) returns only once every task of the batch
    has finished, and results are delivered in input order regardless
    of which domain executed which task.  Tasks of one batch are
    claimed dynamically (an atomic cursor over the task array), so
    uneven task costs balance themselves; there is no preemption or
    work stealing between batches.

    Pools are quiescent between batches: idle workers block on a
    condition variable and consume no CPU.  A pool holds its domains
    until {!shutdown} (registered with [at_exit] as a safety net, so a
    forgotten pool never prevents process exit).

    One batch runs at a time per pool; batches must be submitted from
    a single domain at a time (the typical owner is the engine that
    created the pool).  Tasks must not themselves submit batches to
    the same pool. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains.
    [domains] is clamped below at 1.  The caller's domain is the
    remaining worker: it executes tasks while waiting for the join. *)

val domains : t -> int
(** The worker count [n] the pool was created with (including the
    submitting domain), after clamping. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent; the pool must not be used
    afterwards.  Called automatically at process exit for pools that
    were never shut down explicitly. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] applies [f] to every element, one task
    per element, and returns the results in input order.  If any task
    raises, the batch still runs to completion and the exception of
    the lowest-indexed failing task is re-raised in the caller. *)

val map_chunks : t -> ?chunk_size:int -> ('a array -> 'b) -> 'a array -> 'b array
(** Chunked fork-join: split [xs] into contiguous chunks of at most
    [chunk_size] elements (default: [length / (4 * domains)], at least
    1), apply [f] to each chunk as one task, and return the per-chunk
    results in chunk order.  Use when per-element work is small or when
    each task wants chunk-local state (e.g. a domain-local cache view
    merged at the join). *)

val run : t -> (unit -> 'a) list -> 'a list
(** Fork-join over explicit thunks, results in input order. *)

(** {1 Statistics}

    Global counters, summed over every pool since program start;
    aggregated into [Engine.stats]. *)

type stats = {
  pools : int;        (** pools created *)
  workers : int;      (** worker domains spawned (excludes callers) *)
  batches : int;      (** fork-join barriers executed *)
  tasks : int;        (** tasks claimed and run, across all batches *)
  caller_tasks : int; (** of those, tasks run by the submitting domain *)
  lock_waits : int;   (** contended pool-mutex acquisitions *)
}

val stats : unit -> stats
