(* Fixed-size domain pool: n workers = (n-1) spawned domains + the
   submitting domain.  A batch is an array of tasks claimed through an
   atomic cursor; the submitting domain publishes the batch under the
   pool mutex (bumping a generation counter so sleeping workers can
   tell a new batch from a spurious wakeup), helps drain it, and then
   blocks on the join condition until the completion counter reaches
   the task count.  Workers go back to sleep between batches, so an
   idle pool costs nothing. *)

module Obs = Csp_obs.Obs

(* Global counters (aggregated by [Engine.stats]).  [Atomic]: tasks
   complete on arbitrary domains. *)
let pools_created = Atomic.make 0
let workers_spawned = Atomic.make 0
let batches_run = Atomic.make 0
let tasks_run = Atomic.make 0
let caller_tasks_run = Atomic.make 0

(* Contended acquisitions of a pool mutex, probed with [try_lock] so
   the uncontended path pays one extra branch.  A worker parked on the
   condition variable does not count — only acquisitions that actually
   found the mutex held. *)
let lock_waits = Atomic.make 0

(* Work-stealing counters (see the [Deque] module and stealing
   sessions below). *)
let steals_done = Atomic.make 0
let tasks_stolen = Atomic.make 0
let stealing_tasks_run = Atomic.make 0

let lock_mutex m =
  if not (Mutex.try_lock m) then begin
    Atomic.incr lock_waits;
    Mutex.lock m
  end

type stats = {
  pools : int;
  workers : int;
  batches : int;
  tasks : int;
  caller_tasks : int;
  lock_waits : int;
  steals : int;
  stolen : int;
  stealing_tasks : int;
}

let stats () =
  {
    pools = Atomic.get pools_created;
    workers = Atomic.get workers_spawned;
    batches = Atomic.get batches_run;
    tasks = Atomic.get tasks_run;
    caller_tasks = Atomic.get caller_tasks_run;
    lock_waits = Atomic.get lock_waits;
    steals = Atomic.get steals_done;
    stolen = Atomic.get tasks_stolen;
    stealing_tasks = Atomic.get stealing_tasks_run;
  }

(* Telemetry: the registry snapshot exposes the same counters, so
   `--stats-json` sees the pool without going through [Engine.stats]. *)
let () =
  Obs.register_source "pool" (fun () ->
      let s = stats () in
      [
        ("pools", Obs.Int s.pools);
        ("workers", Obs.Int s.workers);
        ("batches", Obs.Int s.batches);
        ("tasks", Obs.Int s.tasks);
        ("caller_tasks", Obs.Int s.caller_tasks);
        ("lock_waits", Obs.Int s.lock_waits);
        ("steals", Obs.Int s.steals);
        ("stolen", Obs.Int s.stolen);
        ("stealing_tasks", Obs.Int s.stealing_tasks);
      ])

(* ---- parallel-phase hooks -------------------------------------------- *)

(* Subsystems with domain-local cache overlays (e.g. the closure
   kernel's memo arenas) register an [enter]/[exit] pair here.  The
   pool brackets every multi-domain parallel phase — a fork-join batch
   or a work-stealing session — with them: [enter] runs on the
   submitting domain before any worker touches a task, [exit] after
   every worker is quiescent again.  Single-domain pools and
   single-task batches run no hooks (there is no concurrency to
   protect against). *)
let phase_hooks : ((unit -> unit) * (unit -> unit)) list ref = ref []
let phase_hooks_lock = Mutex.create ()

let register_phase_hooks ~enter ~exit =
  lock_mutex phase_hooks_lock;
  phase_hooks := (enter, exit) :: !phase_hooks;
  Mutex.unlock phase_hooks_lock

let enter_phase () = List.iter (fun (enter, _) -> enter ()) !phase_hooks
let exit_phase () = List.iter (fun (_, exit) -> exit ()) !phase_hooks

(* ---- work-stealing deques -------------------------------------------- *)

(* Per-worker double-ended queues in the Chase–Lev layout: the owner
   pushes and pops at the bottom (newest first), thieves take from the
   top (oldest first) — and take *half* the deque per steal, so a
   freshly-stolen-from deque does not immediately need stealing from
   again.  Structural operations are guarded by a per-deque mutex
   rather than the full lock-free protocol: contention is per deque
   (an owner only ever meets a thief that chose it), and an atomic
   size mirror lets thieves scan for victims without touching any
   lock.  Steals drain into a plain list while holding only the
   victim's lock, so no operation ever holds two deque locks — two
   thieves stealing from each other's deques cannot deadlock. *)
module Deque = struct
  type 'a t = {
    d_lock : Mutex.t;
    mutable buf : 'a option array;  (* circular; length is a power of 2 *)
    mutable head : int;  (* steal end: first occupied slot *)
    mutable tail : int;  (* owner end: one past the last occupied slot *)
    d_size : int Atomic.t;  (* published mirror of [tail - head] *)
  }

  let create () =
    {
      d_lock = Mutex.create ();
      buf = Array.make 32 None;
      head = 0;
      tail = 0;
      d_size = Atomic.make 0;
    }

  let size d = Atomic.get d.d_size

  let[@inline] locked d f =
    lock_mutex d.d_lock;
    match f () with
    | v ->
      Mutex.unlock d.d_lock;
      v
    | exception e ->
      Mutex.unlock d.d_lock;
      raise e

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (2 * cap) None in
    for i = 0 to d.tail - d.head - 1 do
      buf'.(i) <- d.buf.((d.head + i) land (cap - 1))
    done;
    d.tail <- d.tail - d.head;
    d.head <- 0;
    d.buf <- buf'

  let push d x =
    locked d (fun () ->
        let cap = Array.length d.buf in
        if d.tail - d.head = cap then grow d;
        d.buf.(d.tail land (Array.length d.buf - 1)) <- Some x;
        d.tail <- d.tail + 1;
        Atomic.incr d.d_size)

  let pop d =
    if size d = 0 then None
    else
      locked d (fun () ->
          if d.tail = d.head then None
          else begin
            let i = (d.tail - 1) land (Array.length d.buf - 1) in
            let x = d.buf.(i) in
            d.buf.(i) <- None;
            d.tail <- d.tail - 1;
            Atomic.decr d.d_size;
            x
          end)

  (* Take the oldest ⌈size/2⌉ entries, oldest first.  Only [from]'s
     lock is held; the caller pushes the result into its own deque (or
     processes it directly). *)
  let steal_half from =
    if size from = 0 then []
    else
      locked from (fun () ->
          let n = from.tail - from.head in
          if n = 0 then []
          else begin
            let take = (n + 1) / 2 in
            let mask = Array.length from.buf - 1 in
            let out = ref [] in
            for i = take - 1 downto 0 do
              let j = (from.head + i) land mask in
              (match from.buf.(j) with
              | Some x -> out := x :: !out
              | None -> assert false);
              from.buf.(j) <- None
            done;
            from.head <- from.head + take;
            ignore (Atomic.fetch_and_add from.d_size (-take));
            Atomic.incr steals_done;
            ignore (Atomic.fetch_and_add tasks_stolen take);
            !out
          end)
end

type batch = {
  tasks : (int -> unit) array;
      (* each task writes its own result slot; the int is the index *)
  cursor : int Atomic.t;     (* next unclaimed task *)
  completed : int Atomic.t;  (* tasks finished, across all workers *)
}

type t = {
  n : int;  (* worker count including the submitting domain *)
  mutex : Mutex.t;
  wake : Condition.t;   (* workers: a new batch (or shutdown) is here *)
  join : Condition.t;   (* submitter: the batch may be complete *)
  mutable current : batch option;
  mutable generation : int;  (* bumped per batch; identifies wakeups *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Drain the batch: claim tasks until the cursor runs off the end.
   The worker that completes the last task signals the join. *)
let drain t ~as_caller (b : batch) =
  let len = Array.length b.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i < len then begin
      b.tasks.(i) i;
      Atomic.incr tasks_run;
      if as_caller then Atomic.incr caller_tasks_run;
      if Atomic.fetch_and_add b.completed 1 + 1 = len then begin
        lock_mutex t.mutex;
        Condition.broadcast t.join;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop t =
  let rec wait_for_work my_gen =
    lock_mutex t.mutex;
    while (not t.stop) && t.generation = my_gen do
      Condition.wait t.wake t.mutex
    done;
    let gen = t.generation and b = t.current and stop = t.stop in
    Mutex.unlock t.mutex;
    if not stop then begin
      (match b with
      | Some b ->
        (* claim tasks until the batch cursor runs dry; one span per
           batch per worker keeps the trace proportional to barriers,
           not tasks *)
        Obs.span ~cat:"pool" "drain" (fun () -> drain t ~as_caller:false b)
      | None -> ());
      wait_for_work gen
    end
  in
  wait_for_work 0

let shutdown t =
  lock_mutex t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

let create ~domains =
  let n = max 1 domains in
  let t =
    {
      n;
      mutex = Mutex.create ();
      wake = Condition.create ();
      join = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  Atomic.incr pools_created;
  t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  ignore (Atomic.fetch_and_add workers_spawned (n - 1));
  (* Safety net: a pool the program forgot to shut down must not keep
     blocked worker domains alive across process exit. *)
  if n > 1 then at_exit (fun () -> shutdown t);
  t

let domains t = t.n

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Execute [ntasks] tasks, each writing its own slot.  Tasks that raise
   record their exception; the batch always runs to completion (the
   join counter must reach the task count), then the lowest-indexed
   exception is re-raised in the submitting domain. *)
let exec_batch t ntasks (task : int -> unit) =
  if ntasks > 0 then begin
    Atomic.incr batches_run;
    let failures : exn option array = Array.make ntasks None in
    let guarded i =
      try task i with e -> failures.(i) <- Some e
    in
    Obs.span ~cat:"pool" "batch"
      ~args:(fun () ->
        [ ("tasks", Obs.Int ntasks); ("domains", Obs.Int t.n) ])
      (fun () ->
        if t.n = 1 || ntasks = 1 then
          for i = 0 to ntasks - 1 do
            guarded i;
            Atomic.incr tasks_run;
            Atomic.incr caller_tasks_run
          done
        else begin
          enter_phase ();
          Fun.protect ~finally:exit_phase @@ fun () ->
          let b =
            {
              tasks = Array.make ntasks guarded;
              cursor = Atomic.make 0;
              completed = Atomic.make 0;
            }
          in
          lock_mutex t.mutex;
          if t.stop then begin
            Mutex.unlock t.mutex;
            invalid_arg "Pool: batch submitted after shutdown"
          end;
          t.current <- Some b;
          t.generation <- t.generation + 1;
          Condition.broadcast t.wake;
          Mutex.unlock t.mutex;
          drain t ~as_caller:true b;
          (* the submitting domain ran out of claimable tasks; wait for
             stragglers on other domains to finish theirs *)
          Obs.span ~cat:"pool" "join-wait" (fun () ->
              lock_mutex t.mutex;
              while Atomic.get b.completed < ntasks do
                Condition.wait t.join t.mutex
              done;
              t.current <- None;
              Mutex.unlock t.mutex)
        end);
    Array.iter (function Some e -> raise e | None -> ()) failures
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    exec_batch t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_chunks t ?chunk_size f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some _ | None -> max 1 (n / (4 * t.n))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let out = Array.make nchunks None in
    exec_batch t nchunks (fun c ->
        let lo = c * chunk in
        let len = min chunk (n - lo) in
        out.(c) <- Some (f (Array.sub xs lo len)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let run t thunks =
  Array.to_list (parallel_map t (fun f -> f ()) (Array.of_list thunks))

(* ---- asynchronous batches (internal) --------------------------------- *)

(* Like the multi-domain branch of [exec_batch], but the submitting
   domain does not drain: tasks run only on spawned workers, leaving
   the caller free to coordinate concurrently.  The stealing sessions
   below use this to run one long-lived driver loop per spawned
   worker.  Requires [t.n > 1] and an otherwise idle pool; the batch
   must be awaited before the pool is used again. *)
type async = { a_batch : batch; a_failures : exn option array }

let submit_async t ntasks (task : int -> unit) =
  Atomic.incr batches_run;
  let failures : exn option array = Array.make ntasks None in
  let guarded i = try task i with e -> failures.(i) <- Some e in
  let b =
    {
      tasks = Array.init ntasks (fun _ -> guarded);
      cursor = Atomic.make 0;
      completed = Atomic.make 0;
    }
  in
  lock_mutex t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: batch submitted after shutdown"
  end;
  t.current <- Some b;
  t.generation <- t.generation + 1;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  { a_batch = b; a_failures = failures }

let await_async t a =
  let ntasks = Array.length a.a_batch.tasks in
  Obs.span ~cat:"pool" "join-wait" (fun () ->
      lock_mutex t.mutex;
      while Atomic.get a.a_batch.completed < ntasks do
        Condition.wait t.join t.mutex
      done;
      t.current <- None;
      Mutex.unlock t.mutex);
  a.a_failures

(* ---- work-stealing sessions ------------------------------------------ *)

(* A stealing session turns the pool's spawned workers into a frontier
   scheduler: every worker owns a deque, processes its own newest item
   first, steals half of the nearest non-empty neighbour when it runs
   dry, and parks on a condition variable when the whole session looks
   empty.  The caller owns deque [n - 1]: it seeds work with
   [stealing_push] (round-robin so the first steal is never needed)
   and either coordinates concurrently (speculative use) or joins the
   processing loop itself ([stealing_participate]).

   Termination is either external — the caller decides it has what it
   needs and calls [stealing_stop] — or, with [~auto_stop:true], by an
   outstanding-work counter: every push increments it *before* the
   item becomes visible and every processed item decrements it *after*
   its handler returned (so all items the handler pushed are already
   counted), which makes decrement-to-zero an exact quiescence test.

   Exceptions raised by the worker function are swallowed in
   speculative sessions (the coordinator re-derives deterministically
   and hits the same exception on the states that matter; speculation
   past a truncation bound may legitimately fail where the coordinator
   never goes) and surfaced at [stealing_stop] in [auto_stop]
   sessions, where workers do authoritative work.

   Idle protocol (lost-wakeup-free): a pusher bumps the [activity]
   counter after publishing and broadcasts iff a waiter is registered;
   a worker snapshots [activity] before its scan and only parks while
   the snapshot is still current.  Both counters are seq-cst atomics,
   so either the pusher sees the waiter or the waiter sees the new
   activity value. *)
type 'a stealing = {
  st_pool : t;
  deques : 'a Deque.t array;  (* length n; index [n - 1] is the caller's *)
  st_f : worker:int -> push:('a -> unit) -> 'a -> unit;
  st_stop : bool Atomic.t;
  auto_stop : bool;
  outstanding : int Atomic.t;  (* pushed but not yet processed *)
  activity : int Atomic.t;  (* bumped per push; versions idle parking *)
  st_waiters : int Atomic.t;
  st_mutex : Mutex.t;
  st_wake : Condition.t;
  st_exn : exn option Atomic.t;  (* first worker-function exception *)
  mutable st_async : async option;
  mutable rr : int;  (* caller's round-robin seed target *)
  mutable closed : bool;
}

let st_signal s =
  if Atomic.get s.st_waiters > 0 then begin
    lock_mutex s.st_mutex;
    Condition.broadcast s.st_wake;
    Mutex.unlock s.st_mutex
  end

let st_request_stop s =
  Atomic.set s.st_stop true;
  lock_mutex s.st_mutex;
  Condition.broadcast s.st_wake;
  Mutex.unlock s.st_mutex

let st_push s ~worker x =
  Atomic.incr s.outstanding;
  Deque.push s.deques.(worker) x;
  Atomic.incr s.activity;
  st_signal s

(* The driver loop: runs on every spawned worker for the session's
   lifetime, and on the caller too under [stealing_participate]. *)
let st_drive s ~worker =
  let my = s.deques.(worker) in
  let n = Array.length s.deques in
  let push x = st_push s ~worker x in
  let process x =
    (try s.st_f ~worker ~push x
     with e -> ignore (Atomic.compare_and_set s.st_exn None (Some e)));
    Atomic.incr stealing_tasks_run;
    if Atomic.fetch_and_add s.outstanding (-1) = 1 && s.auto_stop then
      st_request_stop s
  in
  let try_steal () =
    let rec scan k =
      if k >= n then false
      else
        match Deque.steal_half s.deques.((worker + k) mod n) with
        | [] -> scan (k + 1)
        | xs ->
          (* plain [Deque.push]: the items are already counted in
             [outstanding] and owned by this (awake) worker, so no
             activity bump or wakeup is needed *)
          List.iter (Deque.push my) xs;
          true
    in
    n > 1 && scan 1
  in
  let rec loop () =
    if not (Atomic.get s.st_stop) then begin
      let a0 = Atomic.get s.activity in
      match Deque.pop my with
      | Some x ->
        process x;
        loop ()
      | None ->
        if try_steal () then loop ()
        else begin
          lock_mutex s.st_mutex;
          Atomic.incr s.st_waiters;
          while
            (not (Atomic.get s.st_stop)) && Atomic.get s.activity = a0
          do
            Condition.wait s.st_wake s.st_mutex
          done;
          Atomic.decr s.st_waiters;
          Mutex.unlock s.st_mutex;
          loop ()
        end
    end
  in
  Obs.span ~cat:"pool" "steal-drive" (fun () -> loop ())

let stealing_start t ?(auto_stop = false) f =
  let s =
    {
      st_pool = t;
      deques = Array.init t.n (fun _ -> Deque.create ());
      st_f = f;
      st_stop = Atomic.make false;
      auto_stop;
      outstanding = Atomic.make 0;
      activity = Atomic.make 0;
      st_waiters = Atomic.make 0;
      st_mutex = Mutex.create ();
      st_wake = Condition.create ();
      st_exn = Atomic.make None;
      st_async = None;
      rr = 0;
      closed = false;
    }
  in
  if t.n > 1 then begin
    enter_phase ();
    s.st_async <- Some (submit_async t (t.n - 1) (fun i -> st_drive s ~worker:i))
  end;
  s

let stealing_push s x =
  let w = s.rr in
  s.rr <- (w + 1) mod Array.length s.deques;
  st_push s ~worker:w x

let stealing_participate s = st_drive s ~worker:(Array.length s.deques - 1)

let stealing_pending s = Atomic.get s.outstanding

let stealing_stop s =
  if not s.closed then begin
    s.closed <- true;
    st_request_stop s;
    (match s.st_async with
    | None -> ()
    | Some a ->
      let failures =
        Fun.protect ~finally:exit_phase (fun () -> await_async s.st_pool a)
      in
      (* driver-machinery failures only: the worker function's own
         exceptions are routed through [st_exn] above *)
      Array.iter (function Some e -> raise e | None -> ()) failures);
    if s.auto_stop then
      match Atomic.get s.st_exn with Some e -> raise e | None -> ()
  end
