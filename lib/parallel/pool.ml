(* Fixed-size domain pool: n workers = (n-1) spawned domains + the
   submitting domain.  A batch is an array of tasks claimed through an
   atomic cursor; the submitting domain publishes the batch under the
   pool mutex (bumping a generation counter so sleeping workers can
   tell a new batch from a spurious wakeup), helps drain it, and then
   blocks on the join condition until the completion counter reaches
   the task count.  Workers go back to sleep between batches, so an
   idle pool costs nothing. *)

module Obs = Csp_obs.Obs

(* Global counters (aggregated by [Engine.stats]).  [Atomic]: tasks
   complete on arbitrary domains. *)
let pools_created = Atomic.make 0
let workers_spawned = Atomic.make 0
let batches_run = Atomic.make 0
let tasks_run = Atomic.make 0
let caller_tasks_run = Atomic.make 0

(* Contended acquisitions of a pool mutex, probed with [try_lock] so
   the uncontended path pays one extra branch.  A worker parked on the
   condition variable does not count — only acquisitions that actually
   found the mutex held. *)
let lock_waits = Atomic.make 0

let lock_mutex m =
  if not (Mutex.try_lock m) then begin
    Atomic.incr lock_waits;
    Mutex.lock m
  end

type stats = {
  pools : int;
  workers : int;
  batches : int;
  tasks : int;
  caller_tasks : int;
  lock_waits : int;
}

let stats () =
  {
    pools = Atomic.get pools_created;
    workers = Atomic.get workers_spawned;
    batches = Atomic.get batches_run;
    tasks = Atomic.get tasks_run;
    caller_tasks = Atomic.get caller_tasks_run;
    lock_waits = Atomic.get lock_waits;
  }

(* Telemetry: the registry snapshot exposes the same counters, so
   `--stats-json` sees the pool without going through [Engine.stats]. *)
let () =
  Obs.register_source "pool" (fun () ->
      let s = stats () in
      [
        ("pools", Obs.Int s.pools);
        ("workers", Obs.Int s.workers);
        ("batches", Obs.Int s.batches);
        ("tasks", Obs.Int s.tasks);
        ("caller_tasks", Obs.Int s.caller_tasks);
        ("lock_waits", Obs.Int s.lock_waits);
      ])

type batch = {
  tasks : (int -> unit) array;
      (* each task writes its own result slot; the int is the index *)
  cursor : int Atomic.t;     (* next unclaimed task *)
  completed : int Atomic.t;  (* tasks finished, across all workers *)
}

type t = {
  n : int;  (* worker count including the submitting domain *)
  mutex : Mutex.t;
  wake : Condition.t;   (* workers: a new batch (or shutdown) is here *)
  join : Condition.t;   (* submitter: the batch may be complete *)
  mutable current : batch option;
  mutable generation : int;  (* bumped per batch; identifies wakeups *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Drain the batch: claim tasks until the cursor runs off the end.
   The worker that completes the last task signals the join. *)
let drain t ~as_caller (b : batch) =
  let len = Array.length b.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i < len then begin
      b.tasks.(i) i;
      Atomic.incr tasks_run;
      if as_caller then Atomic.incr caller_tasks_run;
      if Atomic.fetch_and_add b.completed 1 + 1 = len then begin
        lock_mutex t.mutex;
        Condition.broadcast t.join;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop t =
  let rec wait_for_work my_gen =
    lock_mutex t.mutex;
    while (not t.stop) && t.generation = my_gen do
      Condition.wait t.wake t.mutex
    done;
    let gen = t.generation and b = t.current and stop = t.stop in
    Mutex.unlock t.mutex;
    if not stop then begin
      (match b with
      | Some b ->
        (* claim tasks until the batch cursor runs dry; one span per
           batch per worker keeps the trace proportional to barriers,
           not tasks *)
        Obs.span ~cat:"pool" "drain" (fun () -> drain t ~as_caller:false b)
      | None -> ());
      wait_for_work gen
    end
  in
  wait_for_work 0

let shutdown t =
  lock_mutex t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

let create ~domains =
  let n = max 1 domains in
  let t =
    {
      n;
      mutex = Mutex.create ();
      wake = Condition.create ();
      join = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  Atomic.incr pools_created;
  t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  ignore (Atomic.fetch_and_add workers_spawned (n - 1));
  (* Safety net: a pool the program forgot to shut down must not keep
     blocked worker domains alive across process exit. *)
  if n > 1 then at_exit (fun () -> shutdown t);
  t

let domains t = t.n

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Execute [ntasks] tasks, each writing its own slot.  Tasks that raise
   record their exception; the batch always runs to completion (the
   join counter must reach the task count), then the lowest-indexed
   exception is re-raised in the submitting domain. *)
let exec_batch t ntasks (task : int -> unit) =
  if ntasks > 0 then begin
    Atomic.incr batches_run;
    let failures : exn option array = Array.make ntasks None in
    let guarded i =
      try task i with e -> failures.(i) <- Some e
    in
    Obs.span ~cat:"pool" "batch"
      ~args:(fun () ->
        [ ("tasks", Obs.Int ntasks); ("domains", Obs.Int t.n) ])
      (fun () ->
        if t.n = 1 || ntasks = 1 then
          for i = 0 to ntasks - 1 do
            guarded i;
            Atomic.incr tasks_run;
            Atomic.incr caller_tasks_run
          done
        else begin
          let b =
            {
              tasks = Array.make ntasks guarded;
              cursor = Atomic.make 0;
              completed = Atomic.make 0;
            }
          in
          lock_mutex t.mutex;
          if t.stop then begin
            Mutex.unlock t.mutex;
            invalid_arg "Pool: batch submitted after shutdown"
          end;
          t.current <- Some b;
          t.generation <- t.generation + 1;
          Condition.broadcast t.wake;
          Mutex.unlock t.mutex;
          drain t ~as_caller:true b;
          (* the submitting domain ran out of claimable tasks; wait for
             stragglers on other domains to finish theirs *)
          Obs.span ~cat:"pool" "join-wait" (fun () ->
              lock_mutex t.mutex;
              while Atomic.get b.completed < ntasks do
                Condition.wait t.join t.mutex
              done;
              t.current <- None;
              Mutex.unlock t.mutex)
        end);
    Array.iter (function Some e -> raise e | None -> ()) failures
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    exec_batch t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_chunks t ?chunk_size f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some _ | None -> max 1 (n / (4 * t.n))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let out = Array.make nchunks None in
    exec_batch t nchunks (fun c ->
        let lo = c * chunk in
        let len = min chunk (n - lo) in
        out.(c) <- Some (f (Array.sub xs lo len)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let run t thunks =
  Array.to_list (parallel_map t (fun f -> f ()) (Array.of_list thunks))
