module History = Csp_trace.History
module Trace = Csp_trace.Trace
module Closure = Csp_semantics.Closure
module Step = Csp_semantics.Step
module Obs = Csp_obs.Obs

(* Bounded-check telemetry: queries answered, assertion evaluations
   actually performed (early exit on a counterexample keeps this below
   the closure cardinal), and refutations found. *)
let checks = Obs.Counter.make "sat.checks"
let trace_evals = Obs.Counter.make "sat.trace_evals"
let refutations = Obs.Counter.make "sat.refutations"

type outcome =
  | Holds of { traces : int; depth : int }
  | Fails of { trace : Csp_trace.Trace.t }

exception Refuted of Csp_trace.Trace.t

let check_closure ?rho ?funs ?nat_bound closure assertion =
  Obs.Counter.incr checks;
  Obs.span ~cat:"sat" "check"
    ~args:(fun () -> [ ("cardinal", Obs.Int (Closure.cardinal closure)) ])
  @@ fun () ->
  let ctx0 = Term.ctx ?rho ?funs ?nat_bound () in
  (* Stream the member traces (same order as [Closure.to_traces]) so a
     counterexample exits early and no trace list is materialised;
     [Closure.depth] is O(1) on the hash-consed representation. *)
  match
    Closure.fold_traces
      (fun s n ->
        Obs.Counter.incr trace_evals;
        let ctx = { ctx0 with Term.hist = History.of_trace s } in
        if Assertion.eval ctx assertion then n + 1 else raise (Refuted s))
      closure 0
  with
  | n -> Holds { traces = n; depth = Closure.depth closure }
  | exception Refuted s ->
    Obs.Counter.incr refutations;
    Fails { trace = s }

let check ?rho ?funs ?nat_bound ?(depth = 6) cfg p assertion =
  check_closure ?rho ?funs ?nat_bound (Step.traces cfg ~depth p) assertion

let check_engine ?rho ?funs ?nat_bound ?depth eng p assertion =
  let depth =
    match depth with Some d -> d | None -> eng.Csp_semantics.Engine.depth
  in
  check ?rho ?funs ?nat_bound ~depth (Csp_semantics.Engine.step_config eng) p
    assertion

let pp_outcome ppf = function
  | Holds { traces; depth } ->
    Format.fprintf ppf "holds on all %d traces up to depth %d" traces depth
  | Fails { trace } -> Format.fprintf ppf "fails on trace %a" Trace.pp trace
