module History = Csp_trace.History
module Trace = Csp_trace.Trace
module Closure = Csp_semantics.Closure
module Step = Csp_semantics.Step

type outcome =
  | Holds of { traces : int; depth : int }
  | Fails of { trace : Csp_trace.Trace.t }

let check_closure ?rho ?funs ?nat_bound closure assertion =
  let ctx0 = Term.ctx ?rho ?funs ?nat_bound () in
  let traces = Closure.to_traces closure in
  let rec go n = function
    | [] -> Holds { traces = n; depth = Closure.depth closure }
    | s :: rest ->
      let ctx = { ctx0 with Term.hist = History.of_trace s } in
      if Assertion.eval ctx assertion then go (n + 1) rest
      else Fails { trace = s }
  in
  go 0 traces

let check ?rho ?funs ?nat_bound ?(depth = 6) cfg p assertion =
  check_closure ?rho ?funs ?nat_bound (Step.traces cfg ~depth p) assertion

let pp_outcome ppf = function
  | Holds { traces; depth } ->
    Format.fprintf ppf "holds on all %d traces up to depth %d" traces depth
  | Fails { trace } -> Format.fprintf ppf "fails on trace %a" Trace.pp trace
