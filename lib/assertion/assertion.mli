(** Assertions: predicates with free channel names (§2).

    An assertion is evaluated against a valuation for its variables and
    a channel history [ch(s)]; a process [P] satisfies [R] invariantly
    when [R] holds of [ch(s)] for every trace [s] of [P]. *)

type cmp = Le | Lt | Ge | Gt

type t =
  | True
  | False
  | Prefix of Term.t * Term.t       (** [s ≤ t] on sequences *)
  | Eq of Term.t * Term.t           (** value or sequence equality *)
  | Cmp of cmp * Term.t * Term.t    (** integer comparison *)
  | Mem of Term.t * Csp_lang.Vset.t (** set membership, e.g. [e ∈ M] *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Forall of string * Csp_lang.Vset.t * t
  | Exists of string * Csp_lang.Vset.t * t

val conj : t list -> t
val prefix_le : Term.t -> Term.t -> t
val eval : Term.ctx -> t -> bool
(** Quantifiers over infinite sets are enumerated up to the context's
    [nat_bound].
    @raise Term.Eval_error on ill-typed or unbound terms. *)

val free_vars : t -> string list
val free_chans : t -> Csp_lang.Chan_expr.t list

val mentions_channel :
  ?rho:Csp_lang.Valuation.t -> t -> Csp_trace.Channel.t -> bool
(** Does the assertion mention (possibly via an unevaluable subscript,
    conservatively) the given concrete channel? *)

val subst_var : string -> Term.t -> t -> t

val subst_empty : t -> t
(** The paper's [R_<>]: every channel name replaced by [⟨⟩]. *)

val cons_channel : Csp_lang.Chan_expr.t -> Term.t -> t -> (t, string) result
(** The paper's [R^c_{e^c}]: every occurrence of channel [c] replaced by
    [e^c].  Fails when the assertion contains a channel expression that
    cannot be told apart from [c] (same base name, unevaluable
    subscripts), since the substitution would then be unsound. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
