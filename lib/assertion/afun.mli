(** Named sequence functions usable in assertions.

    §2.2 introduces a function [f] from wire histories to message
    sequences that cancels all [ACK]s and all consecutive pairs
    [⟨x, NACK⟩]; the protocol's correctness is stated through it.  An
    environment maps names to such functions so assertions can apply
    them with {!Term.App}. *)

type t = {
  name : string;
  doc : string;
  apply : Csp_trace.Value.t list -> Csp_trace.Value.t list;
}

type env

val empty_env : env
val register : t -> env -> env
val find : env -> string -> t option

val protocol_cancel : t
(** The paper's [f]:
    [f(⟨⟩) = ⟨⟩], [f(⟨x⟩) = ⟨⟩], [f(x^ACK^s) = x^f(s)],
    [f(x^NACK^s) = f(s)].  The paper only applies [f] to alternating
    wire histories; this implementation extends it to a total function
    by skipping unacknowledged data and stray signals, so it never
    emits [ACK] or [NACK]. *)

val identity : t
val evens : t
(** Elements at odd 1-based positions dropped — i.e. the subsequence of
    2nd, 4th, … elements.  Useful for request/reply channels in tests
    and examples. *)

val odds : t
(** The subsequence of 1st, 3rd, … elements. *)

val default_env : env
(** [f], [id], [odds], [evens]. *)
