module Value = Csp_trace.Value
module Seq_ops = Csp_trace.Seq_ops
module Chan_expr = Csp_lang.Chan_expr
module Vset = Csp_lang.Vset
module Valuation = Csp_lang.Valuation

type cmp = Le | Lt | Ge | Gt

type t =
  | True
  | False
  | Prefix of Term.t * Term.t
  | Eq of Term.t * Term.t
  | Cmp of cmp * Term.t * Term.t
  | Mem of Term.t * Vset.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Forall of string * Vset.t * t
  | Exists of string * Vset.t * t

let conj = function
  | [] -> True
  | r :: rest -> List.fold_left (fun acc s -> And (acc, s)) r rest

let prefix_le a b = Prefix (a, b)

let cmp_fun = function
  | Le -> ( <= )
  | Lt -> ( < )
  | Ge -> ( >= )
  | Gt -> ( > )

let quantifier_domain (c : Term.ctx) m =
  match Vset.enumerate m with
  | Some vs -> vs
  | None -> Vset.enumerate_bounded ~bound:c.Term.nat_bound m

let rec eval (c : Term.ctx) = function
  | True -> true
  | False -> false
  | Prefix (a, b) ->
    Seq_ops.is_prefix (Term.eval_seq c a) (Term.eval_seq c b)
  | Eq (a, b) -> Value.equal (Term.eval c a) (Term.eval c b)
  | Cmp (op, a, b) -> cmp_fun op (Term.eval_int c a) (Term.eval_int c b)
  | Mem (a, m) -> Vset.mem m (Term.eval c a)
  | Not r -> not (eval c r)
  | And (r, s) -> eval c r && eval c s
  | Or (r, s) -> eval c r || eval c s
  | Imp (r, s) -> (not (eval c r)) || eval c s
  | Forall (x, m, r) ->
    List.for_all
      (fun v -> eval { c with rho = Valuation.add x v c.Term.rho } r)
      (quantifier_domain c m)
  | Exists (x, m, r) ->
    List.exists
      (fun v -> eval { c with rho = Valuation.add x v c.Term.rho } r)
      (quantifier_domain c m)

let dedup eq xs =
  List.rev
    (List.fold_left
       (fun acc x -> if List.exists (eq x) acc then acc else x :: acc)
       [] xs)

let free_vars r =
  let rec go bound acc = function
    | True | False -> acc
    | Prefix (a, b) | Eq (a, b) | Cmp (_, a, b) ->
      acc
      @ List.filter
          (fun v -> not (List.mem v bound))
          (Term.free_vars a @ Term.free_vars b)
    | Mem (a, _) ->
      acc @ List.filter (fun v -> not (List.mem v bound)) (Term.free_vars a)
    | Not r -> go bound acc r
    | And (r, s) | Or (r, s) | Imp (r, s) -> go bound (go bound acc r) s
    | Forall (x, _, r) | Exists (x, _, r) -> go (x :: bound) acc r
  in
  dedup String.equal (go [] [] r)

let free_chans r =
  let rec go acc = function
    | True | False -> acc
    | Prefix (a, b) | Eq (a, b) | Cmp (_, a, b) ->
      acc @ Term.free_chans a @ Term.free_chans b
    | Mem (a, _) -> acc @ Term.free_chans a
    | Not r -> go acc r
    | And (r, s) | Or (r, s) | Imp (r, s) -> go (go acc r) s
    | Forall (_, _, r) | Exists (_, _, r) -> go acc r
  in
  dedup Chan_expr.equal (go [] r)

let mentions_channel ?(rho = Valuation.empty) r (chan : Csp_trace.Channel.t) =
  List.exists
    (fun ce ->
      String.equal ce.Chan_expr.name chan.Csp_trace.Channel.name
      &&
      match Chan_expr.eval rho ce with
      | c -> Csp_trace.Channel.equal c chan
      | exception Csp_lang.Expr.Eval_error _ -> true (* conservative *))
    (free_chans r)

let rec map_term f = function
  | True -> True
  | False -> False
  | Prefix (a, b) -> Prefix (f a, f b)
  | Eq (a, b) -> Eq (f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | Mem (a, m) -> Mem (f a, m)
  | Not r -> Not (map_term f r)
  | And (r, s) -> And (map_term f r, map_term f s)
  | Or (r, s) -> Or (map_term f r, map_term f s)
  | Imp (r, s) -> Imp (map_term f r, map_term f s)
  | Forall (x, m, r) -> Forall (x, m, map_term f r)
  | Exists (x, m, r) -> Exists (x, m, map_term f r)

let rec subst_var x t = function
  | True -> True
  | False -> False
  | Prefix (a, b) -> Prefix (Term.subst_var x t a, Term.subst_var x t b)
  | Eq (a, b) -> Eq (Term.subst_var x t a, Term.subst_var x t b)
  | Cmp (op, a, b) -> Cmp (op, Term.subst_var x t a, Term.subst_var x t b)
  | Mem (a, m) -> Mem (Term.subst_var x t a, m)
  | Not r -> Not (subst_var x t r)
  | And (r, s) -> And (subst_var x t r, subst_var x t s)
  | Or (r, s) -> Or (subst_var x t r, subst_var x t s)
  | Imp (r, s) -> Imp (subst_var x t r, subst_var x t s)
  | Forall (y, m, r) ->
    if String.equal x y then Forall (y, m, r) else Forall (y, m, subst_var x t r)
  | Exists (y, m, r) ->
    if String.equal x y then Exists (y, m, r) else Exists (y, m, subst_var x t r)

let subst_empty r = map_term (Term.map_chan (fun _ -> Term.empty_seq)) r

(* Two channel expressions are definitely-equal when syntactically equal
   or both closed and evaluating to the same channel; definitely-distinct
   when their base names differ or both are closed and evaluate to
   different channels.  Anything else is ambiguous. *)
type chan_rel = Equal | Distinct | Ambiguous

let chan_rel (a : Chan_expr.t) (b : Chan_expr.t) =
  if not (String.equal a.Chan_expr.name b.Chan_expr.name) then Distinct
  else if Chan_expr.equal a b then Equal
  else
    match Chan_expr.eval_opt a, Chan_expr.eval_opt b with
    | Some ca, Some cb ->
      if Csp_trace.Channel.equal ca cb then Equal else Distinct
    | _ -> Ambiguous

let cons_channel c x r =
  let ambiguous = ref None in
  let r' =
    map_term
      (Term.map_chan (fun ce ->
           match chan_rel c ce with
           | Equal -> Term.Cons (x, Term.Chan ce)
           | Distinct -> Term.Chan ce
           | Ambiguous ->
             ambiguous := Some ce;
             Term.Chan ce))
      r
  in
  match !ambiguous with
  | None -> Ok r'
  | Some ce ->
    Error
      (Format.asprintf
         "cannot decide whether %a and %a are the same channel" Chan_expr.pp c
         Chan_expr.pp ce)

let rec equal a b =
  match a, b with
  | True, True | False, False -> true
  | Prefix (a1, a2), Prefix (b1, b2) | Eq (a1, a2), Eq (b1, b2) ->
    Term.equal a1 b1 && Term.equal a2 b2
  | Cmp (o1, a1, a2), Cmp (o2, b1, b2) ->
    o1 = o2 && Term.equal a1 b1 && Term.equal a2 b2
  | Mem (a1, m1), Mem (a2, m2) -> Term.equal a1 a2 && Vset.equal m1 m2
  | Not r, Not s -> equal r s
  | And (r1, s1), And (r2, s2)
  | Or (r1, s1), Or (r2, s2)
  | Imp (r1, s1), Imp (r2, s2) ->
    equal r1 r2 && equal s1 s2
  | Forall (x1, m1, r1), Forall (x2, m2, r2)
  | Exists (x1, m1, r1), Exists (x2, m2, r2) ->
    String.equal x1 x2 && Vset.equal m1 m2 && equal r1 r2
  | ( ( True | False | Prefix _ | Eq _ | Cmp _ | Mem _ | Not _ | And _ | Or _
      | Imp _ | Forall _ | Exists _ ),
      _ ) ->
    false

let cmp_str = function Le -> "<=" | Lt -> "<" | Ge -> ">=" | Gt -> ">"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Prefix (a, b) -> Format.fprintf ppf "%a <= %a" Term.pp a Term.pp b
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" Term.pp a Term.pp b
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" Term.pp a (cmp_str op) Term.pp b
  | Mem (a, m) -> Format.fprintf ppf "%a in %a" Term.pp a Vset.pp m
  | Not r -> Format.fprintf ppf "~%a" pp_atom r
  | And (r, s) -> Format.fprintf ppf "%a & %a" pp_atom r pp_atom s
  | Or (r, s) -> Format.fprintf ppf "%a \\/ %a" pp_atom r pp_atom s
  | Imp (r, s) -> Format.fprintf ppf "%a => %a" pp_atom r pp_atom s
  | Forall (x, m, r) ->
    Format.fprintf ppf "forall %s:%a. %a" x Vset.pp m pp r
  | Exists (x, m, r) ->
    Format.fprintf ppf "exists %s:%a. %a" x Vset.pp m pp r

and pp_atom ppf r =
  match r with
  | True | False | Prefix _ | Eq _ | Cmp _ | Mem _ | Not _ -> pp ppf r
  | _ -> Format.fprintf ppf "(%a)" pp r

let to_string r = Format.asprintf "%a" pp r
