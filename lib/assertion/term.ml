module Value = Csp_trace.Value
module History = Csp_trace.History
module Seq_ops = Csp_trace.Seq_ops
module Chan_expr = Csp_lang.Chan_expr
module Expr = Csp_lang.Expr
module Valuation = Csp_lang.Valuation

type t =
  | Const of Value.t
  | Var of string
  | Chan of Chan_expr.t
  | Len of t
  | Index of t * t
  | Cons of t * t
  | Cat of t * t
  | App of string * t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Sum of string * t * t * t

type ctx = {
  rho : Valuation.t;
  hist : History.t;
  funs : Afun.env;
  nat_bound : int;
}

let ctx ?(rho = Valuation.empty) ?(hist = History.empty)
    ?(funs = Afun.default_env) ?(nat_bound = 32) () =
  { rho; hist; funs; nat_bound }

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let as_int = function
  | Value.Int n -> n
  | v -> err "expected an integer, got %a" Value.pp v

let as_seq = function
  | Value.Seq s -> s
  | v -> err "expected a sequence, got %a" Value.pp v

let rec eval c = function
  | Const v -> v
  | Var x -> (
    match Valuation.find_opt x c.rho with
    | Some v -> v
    | None -> err "unbound variable %s" x)
  | Chan ce ->
    let chan =
      match Chan_expr.eval c.rho ce with
      | chan -> chan
      | exception Expr.Eval_error m -> err "channel subscript: %s" m
    in
    Value.Seq (History.get c.hist chan)
  | Len s -> Value.Int (List.length (as_seq (eval c s)))
  | Index (s, i) -> (
    let sv = as_seq (eval c s) and iv = as_int (eval c i) in
    match Seq_ops.index sv iv with
    | Some v -> v
    | None -> err "index %d out of range" iv)
  | Cons (x, s) -> Value.Seq (eval c x :: as_seq (eval c s))
  | Cat (s, t) -> Value.Seq (as_seq (eval c s) @ as_seq (eval c t))
  | App (f, s) -> (
    match Afun.find c.funs f with
    | Some fn -> Value.Seq (fn.Afun.apply (as_seq (eval c s)))
    | None -> err "unknown sequence function %s" f)
  | Neg a -> Value.Int (-as_int (eval c a))
  | Add (a, b) -> Value.Int (as_int (eval c a) + as_int (eval c b))
  | Sub (a, b) -> Value.Int (as_int (eval c a) - as_int (eval c b))
  | Mul (a, b) -> Value.Int (as_int (eval c a) * as_int (eval c b))
  | Div (a, b) ->
    let bv = as_int (eval c b) in
    if bv = 0 then err "division by zero"
    else Value.Int (as_int (eval c a) / bv)
  | Mod (a, b) ->
    let bv = as_int (eval c b) in
    if bv = 0 then err "modulo by zero" else Value.Int (as_int (eval c a) mod bv)
  | Sum (x, lo, hi, body) ->
    let lov = as_int (eval c lo) and hiv = as_int (eval c hi) in
    let rec go i acc =
      if i > hiv then acc
      else
        let c' = { c with rho = Valuation.add x (Value.Int i) c.rho } in
        go (i + 1) (acc + as_int (eval c' body))
    in
    Value.Int (go lov 0)

let eval_seq c t = as_seq (eval c t)
let eval_int c t = as_int (eval c t)
let int n = Const (Value.Int n)
let chan name = Chan (Chan_expr.simple name)
let chan_ix name e = Chan (Chan_expr.indexed name e)
let empty_seq = Const (Value.Seq [])

let rec of_expr = function
  | Expr.Const v -> Some (Const v)
  | Expr.Var x -> Some (Var x)
  | Expr.Neg a -> Option.map (fun a -> Neg a) (of_expr a)
  | Expr.Add (a, b) -> of_expr2 (fun a b -> Add (a, b)) a b
  | Expr.Sub (a, b) -> of_expr2 (fun a b -> Sub (a, b)) a b
  | Expr.Mul (a, b) -> of_expr2 (fun a b -> Mul (a, b)) a b
  | Expr.Div (a, b) -> of_expr2 (fun a b -> Div (a, b)) a b
  | Expr.Mod (a, b) -> of_expr2 (fun a b -> Mod (a, b)) a b
  | Expr.Idx (a, b) -> of_expr2 (fun a b -> Index (a, b)) a b
  | Expr.Tuple _ -> None

and of_expr2 f a b =
  match of_expr a, of_expr b with
  | Some a, Some b -> Some (f a b)
  | _ -> None

let dedup eq xs =
  List.rev
    (List.fold_left
       (fun acc x -> if List.exists (eq x) acc then acc else x :: acc)
       [] xs)

let free_vars t =
  let rec go bound acc = function
    | Const _ -> acc
    | Var x -> if List.mem x bound then acc else acc @ [ x ]
    | Chan ce ->
      acc @ List.filter (fun v -> not (List.mem v bound)) (Chan_expr.free_vars ce)
    | Len a | App (_, a) | Neg a -> go bound acc a
    | Index (a, b) | Cons (a, b) | Cat (a, b) | Add (a, b) | Sub (a, b)
    | Mul (a, b) | Div (a, b) | Mod (a, b) ->
      go bound (go bound acc a) b
    | Sum (x, lo, hi, body) ->
      let acc = go bound (go bound acc lo) hi in
      go (x :: bound) acc body
  in
  dedup String.equal (go [] [] t)

let free_chans t =
  let rec go acc = function
    | Const _ | Var _ -> acc
    | Chan ce -> acc @ [ ce ]
    | Len a | App (_, a) | Neg a -> go acc a
    | Index (a, b) | Cons (a, b) | Cat (a, b) | Add (a, b) | Sub (a, b)
    | Mul (a, b) | Div (a, b) | Mod (a, b) ->
      go (go acc a) b
    | Sum (_, lo, hi, body) -> go (go (go acc lo) hi) body
  in
  dedup Chan_expr.equal (go [] t)

(* Convert a term to a process-language expression when it fits, so that
   substitution can also reach channel subscripts. *)
let rec to_expr = function
  | Const v -> Some (Expr.Const v)
  | Var x -> Some (Expr.Var x)
  | Neg a -> Option.map (fun a -> Expr.Neg a) (to_expr a)
  | Add (a, b) -> both (fun a b -> Expr.Add (a, b)) a b
  | Sub (a, b) -> both (fun a b -> Expr.Sub (a, b)) a b
  | Mul (a, b) -> both (fun a b -> Expr.Mul (a, b)) a b
  | Div (a, b) -> both (fun a b -> Expr.Div (a, b)) a b
  | Mod (a, b) -> both (fun a b -> Expr.Mod (a, b)) a b
  | _ -> None

and both f a b =
  match to_expr a, to_expr b with
  | Some a, Some b -> Some (f a b)
  | _ -> None

let rec subst_var x r t =
  let s = subst_var x r in
  match t with
  | Const _ -> t
  | Var y -> if String.equal x y then r else t
  | Chan ce -> (
    match to_expr r with
    | Some e -> Chan (Chan_expr.subst x e ce)
    | None -> t)
  | Len a -> Len (s a)
  | Index (a, b) -> Index (s a, s b)
  | Cons (a, b) -> Cons (s a, s b)
  | Cat (a, b) -> Cat (s a, s b)
  | App (f, a) -> App (f, s a)
  | Neg a -> Neg (s a)
  | Add (a, b) -> Add (s a, s b)
  | Sub (a, b) -> Sub (s a, s b)
  | Mul (a, b) -> Mul (s a, s b)
  | Div (a, b) -> Div (s a, s b)
  | Mod (a, b) -> Mod (s a, s b)
  | Sum (y, lo, hi, body) ->
    if String.equal x y then Sum (y, s lo, s hi, body)
    else Sum (y, s lo, s hi, s body)

let rec map_chan f t =
  let m = map_chan f in
  match t with
  | Const _ | Var _ -> t
  | Chan ce -> f ce
  | Len a -> Len (m a)
  | Index (a, b) -> Index (m a, m b)
  | Cons (a, b) -> Cons (m a, m b)
  | Cat (a, b) -> Cat (m a, m b)
  | App (g, a) -> App (g, m a)
  | Neg a -> Neg (m a)
  | Add (a, b) -> Add (m a, m b)
  | Sub (a, b) -> Sub (m a, m b)
  | Mul (a, b) -> Mul (m a, m b)
  | Div (a, b) -> Div (m a, m b)
  | Mod (a, b) -> Mod (m a, m b)
  | Sum (x, lo, hi, body) -> Sum (x, m lo, m hi, m body)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | Chan x, Chan y -> Chan_expr.equal x y
  | Len x, Len y | Neg x, Neg y -> equal x y
  | App (f, x), App (g, y) -> String.equal f g && equal x y
  | Index (a1, a2), Index (b1, b2)
  | Cons (a1, a2), Cons (b1, b2)
  | Cat (a1, a2), Cat (b1, b2)
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Sum (x1, l1, h1, b1), Sum (x2, l2, h2, b2) ->
    String.equal x1 x2 && equal l1 l2 && equal h1 h2 && equal b1 b2
  | ( ( Const _ | Var _ | Chan _ | Len _ | Index _ | Cons _ | Cat _ | App _
      | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ | Sum _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Chan ce -> Chan_expr.pp ppf ce
  | Len s -> Format.fprintf ppf "#%a" pp_atom s
  | Index (s, i) -> Format.fprintf ppf "%a_%a" pp_atom s pp_atom i
  | Cons (x, s) -> Format.fprintf ppf "%a^%a" pp_atom x pp_atom s
  | Cat (s, t) -> Format.fprintf ppf "%a ++ %a" pp_atom s pp_atom t
  | App (f, s) -> Format.fprintf ppf "%s(%a)" f pp s
  | Neg a -> Format.fprintf ppf "-%a" pp_atom a
  | Add (a, b) -> Format.fprintf ppf "%a + %a" pp a pp_atom b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" pp a pp_atom b
  | Mul (a, b) -> Format.fprintf ppf "%a * %a" pp_atom a pp_atom b
  | Div (a, b) -> Format.fprintf ppf "%a / %a" pp_atom a pp_atom b
  | Mod (a, b) -> Format.fprintf ppf "%a mod %a" pp_atom a pp_atom b
  | Sum (x, lo, hi, body) ->
    Format.fprintf ppf "sum(%s, %a, %a, %a)" x pp lo pp hi pp body

and pp_atom ppf t =
  match t with
  | Const _ | Var _ | Chan _ | App _ | Sum _ | Len _ -> pp ppf t
  | _ -> Format.fprintf ppf "(%a)" pp t

let to_string t = Format.asprintf "%a" pp t
