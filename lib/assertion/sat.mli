(** Bounded verification of [P sat R].

    [P sat R] means: R holds of [ch(s)] for every trace [s] of [P]
    (§3.3).  The trace sets enumerated here are prefix-closed, so
    checking every member is exactly "R is true before and after every
    communication".  Enumeration is bounded by a depth and a sampler, so
    [Holds] is evidence up to that bound, while [Fails] is a definitive
    counterexample. *)

type outcome =
  | Holds of { traces : int; depth : int }
  | Fails of { trace : Csp_trace.Trace.t }

val check :
  ?rho:Csp_lang.Valuation.t ->
  ?funs:Afun.env ->
  ?nat_bound:int ->
  ?depth:int ->
  Csp_semantics.Step.config ->
  Csp_lang.Process.t ->
  Assertion.t ->
  outcome
(** Enumerate the process's visible traces operationally (default depth
    6) and evaluate the assertion on each. *)

val check_engine :
  ?rho:Csp_lang.Valuation.t ->
  ?funs:Afun.env ->
  ?nat_bound:int ->
  ?depth:int ->
  Csp_semantics.Engine.t ->
  Csp_lang.Process.t ->
  Assertion.t ->
  outcome
(** {!check} driven by a unified engine: the depth bound defaults to
    the engine's, and the enumeration shares the engine's caches. *)

val check_closure :
  ?rho:Csp_lang.Valuation.t ->
  ?funs:Afun.env ->
  ?nat_bound:int ->
  Csp_semantics.Closure.t ->
  Assertion.t ->
  outcome
(** The same check against an already-computed prefix closure (e.g. a
    denotational one). *)

val pp_outcome : Format.formatter -> outcome -> unit
