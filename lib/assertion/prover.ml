module Value = Csp_trace.Value
module History = Csp_trace.History
module Channel = Csp_trace.Channel
module Chan_expr = Csp_lang.Chan_expr
module Expr = Csp_lang.Expr
module Valuation = Csp_lang.Valuation

type goal = { hyps : Assertion.t list; concl : Assertion.t }

type verdict =
  | Proved of string
  | Refuted of { rho : Valuation.t; hist : History.t }
  | Unknown of { cases : int }

type config = {
  funs : Afun.env;
  alphabet : Value.t list;
  max_len : int;
  max_cases : int;
  random_trials : int;
  random_len : int;
  nat_bound : int;
  seed : int;
  syntactic_phase : bool;
}

let default_config =
  {
    funs = Afun.default_env;
    alphabet = [ Value.Int 0; Value.Int 1; Value.ack; Value.nack ];
    max_len = 3;
    max_cases = 20_000;
    random_trials = 200;
    random_len = 8;
    nat_bound = 16;
    seed = 42;
    syntactic_phase = true;
  }

let goal ?(hyps = []) concl = { hyps; concl }

(* --- syntactic phase ----------------------------------------------- *)

let rec flatten_hyp = function
  | Assertion.And (r, s) -> flatten_hyp r @ flatten_hyp s
  | Assertion.True -> []
  | h -> [ h ]

let flatten hyps = List.concat_map flatten_hyp hyps

let hyp_prefixes hyps =
  List.filter_map
    (function Assertion.Prefix (a, b) -> Some (a, b) | _ -> None)
    hyps

(* --- linear length arithmetic --------------------------------------- *)

(* Normal form of an integer term built from lengths: a constant plus a
   multiset of atoms, where an atom is a term whose length is opaque
   (a channel, variable, application, …).  [Len (Cons (x, s))]
   normalises to [1 + |s|], catenation to the sum, and sequence
   literals to their length. *)
let rec length_atoms t =
  match t with
  | Term.Const (Value.Seq vs) -> Some ([], List.length vs)
  | Term.Cons (_, s) ->
    Option.map (fun (ats, c) -> (ats, c + 1)) (length_atoms s)
  | Term.Cat (a, b) -> (
    match length_atoms a, length_atoms b with
    | Some (x, i), Some (y, j) -> Some (x @ y, i + j)
    | _ -> None)
  | _ -> Some ([ t ], 0)

let rec linear_norm t =
  match t with
  | Term.Const (Value.Int n) -> Some ([], n)
  | Term.Len s -> length_atoms s
  | Term.Add (a, b) -> (
    match linear_norm a, linear_norm b with
    | Some (x, i), Some (y, j) -> Some (x @ y, i + j)
    | _ -> None)
  | _ -> None

let multiset_sub xs ys =
  (* xs ⊆ ys as multisets (by structural term equality); returns the
     remainder of ys *)
  let rec remove x = function
    | [] -> None
    | y :: rest ->
      if Term.equal x y then Some rest
      else Option.map (fun r -> y :: r) (remove x rest)
  in
  List.fold_left
    (fun acc x -> match acc with None -> None | Some ys -> remove x ys)
    (Some ys) xs

let multiset_equal xs ys =
  List.length xs = List.length ys && multiset_sub xs ys = Some []

(* Is [lhs ≤ rhs] provable by length arithmetic, possibly through one
   Cmp(Le) hypothesis?  Directly: every atom of the left occurs on the
   right and the constants agree.  Through a hypothesis |A|+a ≤ |B|+b:
   the goal |A|+a' ≤ |B|+b' follows when a'−a ≤ b'−b. *)
let linear_le hyps lhs rhs =
  match linear_norm lhs, linear_norm rhs with
  | Some (la, lc), Some (ra, rc) ->
    if multiset_sub la ra <> None && lc <= rc then true
    else
      List.exists
        (function
          | Assertion.Cmp (Assertion.Le, hl, hr) -> (
            match linear_norm hl, linear_norm hr with
            | Some (ha, hc), Some (hb, hd) ->
              multiset_equal la ha && multiset_equal ra hb
              && lc - hc <= rc - hd
            | _ -> false)
          | _ -> false)
        hyps
  | _ -> false

let rec syntactic hyps concl =
  if List.exists (Assertion.equal Assertion.False) hyps then
    Some "ex falso quodlibet"
  else if List.exists (Assertion.equal concl) hyps then Some "hypothesis"
  else
    match concl with
    | Assertion.True -> Some "trivially true"
    | Assertion.And (r, s) -> (
      match syntactic hyps r, syntactic hyps s with
      | Some a, Some b -> Some (a ^ " & " ^ b)
      | _ -> None)
    | Assertion.Imp (r, s) -> syntactic (flatten_hyp r @ hyps) s
    | Assertion.Forall (_, _, r) ->
      (* Syntactic rules treat the bound variable as uninterpreted, so a
         generic proof of the body proves the quantified formula. *)
      Option.map (fun m -> "forall-generalisation; " ^ m) (syntactic hyps r)
    | Assertion.Eq (a, b) when Term.equal a b -> Some "equality reflexivity"
    | Assertion.Cmp (Assertion.Le, a, b) when linear_le hyps a b ->
      Some "length arithmetic"
    | Assertion.Prefix (a, b) -> syntactic_prefix hyps a b
    | _ -> None

and syntactic_prefix hyps a b =
  if Term.equal a b then Some "prefix reflexivity"
  else if List.exists (Assertion.equal (Assertion.Prefix (a, b))) hyps then
    Some "hypothesis"
  else
    match a, b with
    | Term.Const (Value.Seq []), _ -> Some "empty sequence is least"
    | Term.Cons (x, a'), Term.Cons (y, b') when Term.equal x y ->
      Option.map
        (fun m -> "cons monotonicity; " ^ m)
        (syntactic_prefix hyps a' b')
    | _ ->
      (* transitivity: is b reachable from a in the graph of prefix
         hypotheses?  Depth-first search over distinct terms. *)
      let prefs = hyp_prefixes hyps in
      let rec reach seen x =
        Term.equal x b
        || List.exists
             (fun (x', y) ->
               Term.equal x x'
               && (not (List.exists (Term.equal y) seen))
               && reach (y :: seen) y)
             prefs
      in
      if reach [ a ] a then Some "prefix transitivity" else None

(* --- semantic (testing) phase -------------------------------------- *)

let all_seqs alphabet max_len =
  let rec exact len =
    if len = 0 then [ [] ]
    else
      List.concat_map
        (fun s -> List.map (fun v -> v :: s) alphabet)
        (exact (len - 1))
  in
  List.concat_map exact (List.init (max_len + 1) Fun.id)

(* Cartesian product with a budget; calls [k] on each tuple until it
   returns false or the budget runs out.  Returns the number of tuples
   visited and whether the space was exhausted. *)
let product_iter ~budget choices k =
  let visited = ref 0 and stop = ref false in
  let rec go acc = function
    | [] ->
      incr visited;
      if !visited > budget then stop := true
      else if not (k (List.rev acc)) then stop := true
    | c :: rest ->
      let rec each = function
        | [] -> ()
        | x :: xs ->
          if not !stop then begin
            go (x :: acc) rest;
            each xs
          end
      in
      each c
  in
  go [] choices;
  (min !visited budget, not !stop)

let formula { hyps; concl } =
  List.fold_right (fun h acc -> Assertion.Imp (h, acc)) hyps concl

exception Found of Valuation.t * History.t

let eval_case cfg rho g =
  (* Channels may depend on the variables just assigned. *)
  let chan_exprs = Assertion.free_chans g in
  let chans =
    List.filter_map
      (fun ce ->
        match Chan_expr.eval rho ce with
        | c -> Some c
        | exception Expr.Eval_error _ -> None)
      chan_exprs
  in
  let chans =
    List.fold_left
      (fun acc c -> if List.exists (Channel.equal c) acc then acc else acc @ [ c ])
      [] chans
  in
  (chans, fun hist ->
    let ctx = Term.ctx ~rho ~hist ~funs:cfg.funs ~nat_bound:cfg.nat_bound () in
    match Assertion.eval ctx g with
    | b -> Some b
    | exception Term.Eval_error _ -> None)

let semantic cfg g =
  let vars = Assertion.free_vars g in
  let cases = ref 0 in
  let seqs = all_seqs cfg.alphabet cfg.max_len in
  let run_case rho =
    let chans, evaluate = eval_case cfg rho g in
    let histories = List.map (fun _ -> seqs) chans in
    let budget = max 1 (cfg.max_cases / max 1 (List.length vars + 1)) in
    let _, _ =
      product_iter ~budget histories (fun hs ->
          let hist =
            List.fold_left2 (fun h c s -> History.set h c s) History.empty
              chans hs
          in
          (match evaluate hist with
          | Some false -> raise (Found (rho, hist))
          | Some true -> incr cases
          | None -> ());
          true)
    in
    ()
  in
  let var_choices = List.map (fun _ -> cfg.alphabet) vars in
  (try
     let _, _ =
       product_iter ~budget:cfg.max_cases var_choices (fun vs ->
           let rho =
             List.fold_left2
               (fun r x v -> Valuation.add x v r)
               Valuation.empty vars vs
           in
           run_case rho;
           true)
     in
     (* random longer histories *)
     let st = Random.State.make [| cfg.seed |] in
     let rand_of l = List.nth l (Random.State.int st (List.length l)) in
     let rand_seq () =
       let n = Random.State.int st (cfg.random_len + 1) in
       List.init n (fun _ -> rand_of cfg.alphabet)
     in
     for _ = 1 to cfg.random_trials do
       let rho =
         List.fold_left
           (fun r x -> Valuation.add x (rand_of cfg.alphabet) r)
           Valuation.empty vars
       in
       let chans, evaluate = eval_case cfg rho g in
       let hist =
         List.fold_left
           (fun h c -> History.set h c (rand_seq ()))
           History.empty chans
       in
       match evaluate hist with
       | Some false -> raise (Found (rho, hist))
       | Some true -> incr cases
       | None -> ()
     done;
     Unknown { cases = !cases }
   with Found (rho, hist) -> Refuted { rho; hist })

let prove ?(config = default_config) g =
  let hyps = flatten g.hyps in
  match if config.syntactic_phase then syntactic hyps g.concl else None with
  | Some how -> Proved how
  | None ->
    let f = formula { hyps; concl = g.concl } in
    if Assertion.free_chans f = [] && Assertion.free_vars f = [] then
      let ctx = Term.ctx ~funs:config.funs ~nat_bound:config.nat_bound () in
      match Assertion.eval ctx f with
      | true -> Proved "ground evaluation"
      | false -> Refuted { rho = Valuation.empty; hist = History.empty }
      | exception Term.Eval_error m -> failwith ("prover: ill-typed goal: " ^ m)
    else semantic config f

let verdict_ok = function Proved _ | Unknown _ -> true | Refuted _ -> false

let pp_verdict ppf = function
  | Proved how -> Format.fprintf ppf "proved (%s)" how
  | Refuted { rho; hist } ->
    Format.fprintf ppf "refuted at %a, %a" Valuation.pp rho History.pp hist
  | Unknown { cases } ->
    Format.fprintf ppf "not refuted (survived %d test cases)" cases
