module Value = Csp_trace.Value
module M = Map.Make (String)

type t = {
  name : string;
  doc : string;
  apply : Value.t list -> Value.t list;
}

type env = t M.t

let empty_env = M.empty
let register f env = M.add f.name f env
let find env name = M.find_opt name env

let protocol_cancel =
  let is_signal v = Value.equal v Value.ack || Value.equal v Value.nack in
  let rec apply = function
    | [] -> []
    | x :: s when is_signal x -> apply s (* stray signal at a data position *)
    | [ _ ] -> []
    | x :: a :: s ->
      if Value.equal a Value.ack then x :: apply s
      else if Value.equal a Value.nack then apply s
      else apply (a :: s)
  in
  {
    name = "f";
    doc = "cancel ACKs and <x,NACK> pairs (the protocol function of §2.2)";
    apply;
  }

let identity = { name = "id"; doc = "identity"; apply = Fun.id }

let odds =
  let rec apply = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: _ :: s -> x :: apply s
  in
  { name = "odds"; doc = "elements at positions 1, 3, 5, …"; apply }

let evens =
  let rec apply = function
    | [] | [ _ ] -> []
    | _ :: y :: s -> y :: apply s
  in
  { name = "evens"; doc = "elements at positions 2, 4, 6, …"; apply }

let default_env =
  List.fold_left
    (fun env f -> register f env)
    empty_env
    [ protocol_cancel; identity; odds; evens ]
