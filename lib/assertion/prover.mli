(** Discharge of semantic proof obligations.

    The inference rules of §2.1 generate side conditions such as
    [⊢ R_<>] (emptiness, output, input) and [R ⇒ S] (consequence) —
    formulas of the assertion logic that must hold for {e all} channel
    histories and variable values.  The logic is undecidable, so the
    prover layers three strategies and reports which one succeeded:

    + {b evaluation} — the goal is ground: evaluate it (exact);
    + {b syntactic rules} — reflexivity, ⟨⟩-least, cons-monotonicity,
      hypothesis matching, transitivity through a hypothesis,
      ∧/⇒ decomposition (exact);
    + {b bounded testing} — enumerate histories over a finite message
      alphabet up to a length bound, then random longer ones; a failure
      refutes the goal definitively; survival yields [Unknown] with the
      number of cases tested.

    The proof checker accepts obligations with verdict [Proved] or
    [Unknown] (reporting the evidence level) and rejects [Refuted]. *)

type goal = { hyps : Assertion.t list; concl : Assertion.t }

type verdict =
  | Proved of string
      (** the string names the strategy, e.g. ["prefix reflexivity"] *)
  | Refuted of {
      rho : Csp_lang.Valuation.t;
      hist : Csp_trace.History.t;
    }
  | Unknown of { cases : int }

type config = {
  funs : Afun.env;
  alphabet : Csp_trace.Value.t list;
      (** messages used when enumerating candidate histories *)
  max_len : int;      (** exhaustive history length bound *)
  max_cases : int;    (** cap on the exhaustive product *)
  random_trials : int;
  random_len : int;
  nat_bound : int;
  seed : int;
  syntactic_phase : bool;
      (** disable to fall straight through to testing — used by the
          ablation benchmarks to measure what the exact rules buy *)
}

val default_config : config
(** alphabet [{0, 1, ACK, NACK}], [max_len = 3], [max_cases = 20000],
    [random_trials = 200], [random_len = 8], [nat_bound = 16],
    [seed = 42]. *)

val goal : ?hyps:Assertion.t list -> Assertion.t -> goal
val prove : ?config:config -> goal -> verdict
val verdict_ok : verdict -> bool
(** [true] for [Proved] and [Unknown] — i.e. not refuted. *)

val pp_verdict : Format.formatter -> verdict -> unit
