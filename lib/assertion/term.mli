(** Terms of the assertion language.

    A term denotes a message value — possibly a sequence — given a
    valuation for its free variables and a channel history interpreting
    its free channel names (§2: a channel name in an assertion stands
    for the sequence of values communicated along it so far). *)

type t =
  | Const of Csp_trace.Value.t
  | Var of string
  | Chan of Csp_lang.Chan_expr.t  (** the history of a channel *)
  | Len of t                      (** [#s] *)
  | Index of t * t                (** [s_i], 1-based *)
  | Cons of t * t                 (** [x^s] *)
  | Cat of t * t                  (** [s^t], sequence catenation *)
  | App of string * t             (** named sequence function, e.g. [f(wire)] *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Sum of string * t * t * t
      (** [Sum (x, lo, hi, body)] is [Σ_{x=lo}^{hi} body]. *)

type ctx = {
  rho : Csp_lang.Valuation.t;   (** free program variables *)
  hist : Csp_trace.History.t;   (** free channel names, as ch(s) *)
  funs : Afun.env;              (** named sequence functions *)
  nat_bound : int;              (** enumeration bound for ∀/∃ over NAT *)
}

val ctx :
  ?rho:Csp_lang.Valuation.t ->
  ?hist:Csp_trace.History.t ->
  ?funs:Afun.env ->
  ?nat_bound:int ->
  unit ->
  ctx
(** Defaults: empty valuation and history, {!Afun.default_env},
    [nat_bound = 32]. *)

exception Eval_error of string

val eval : ctx -> t -> Csp_trace.Value.t
val eval_seq : ctx -> t -> Csp_trace.Value.t list
(** Like {!eval} but insists on a sequence result. *)

val eval_int : ctx -> t -> int

val int : int -> t
val chan : string -> t
(** [chan c]: history of the unsubscripted channel named [c]. *)

val chan_ix : string -> Csp_lang.Expr.t -> t
val empty_seq : t

val of_expr : Csp_lang.Expr.t -> t option
(** Embed a process-language expression as a term ([None] only for
    tuples, which the assertion language does not handle). *)

val free_vars : t -> string list
(** Free variables ([Sum] binds its index). *)

val free_chans : t -> Csp_lang.Chan_expr.t list
(** Channel expressions occurring in the term, deduplicated
    syntactically. *)

val subst_var : string -> t -> t -> t
(** Capture-avoiding substitution for a variable (also descends into
    channel subscripts when the replacement is a constant). *)

val map_chan : (Csp_lang.Chan_expr.t -> t) -> t -> t
(** Replace every channel occurrence; the basis for the proof-rule
    substitutions [R_<>] and [R^c_{e^c}]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
