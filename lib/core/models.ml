module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion

let par_chain = Paper.par_chain

let bit = Vset.Range (0, 1)

(* Chained prefixes: [seq [e1; …; ek] tail] is [e1 -> … -> ek -> tail]
   where each element is a builder [t -> t]. *)
let seq steps tail = List.fold_right (fun f k -> f k) steps tail

let len_of name i = Term.Len (Term.Chan (Chan_expr.indexed name (Expr.int i)))
let le a b = Assertion.Cmp (Assertion.Le, a, b)

(* ---- sliding-window protocol ------------------------------------------ *)

module Sliding_window = struct
  type t = {
    w : int;
    defs : Defs.t;
    network : Process.t;
    system : Process.t;
    spec : Process.t;
    invariants : Assertion.t list;
  }

  let snd_name k = Printf.sprintf "snd%d" k
  let buf_name q = "buf" ^ String.concat "" (List.map string_of_int q)

  (* every {0,1}-queue of length ≤ w, shortest first *)
  let queues w =
    let rec grow qs = function
      | 0 -> [ qs ]
      | n -> qs :: List.concat_map (fun b -> grow (qs @ [ b ]) (n - 1)) [ 0; 1 ]
    in
    List.sort_uniq compare (grow [] w)

  let pnd_name k b = Printf.sprintf "pnd%d_%d" k b

  let make ~w =
    if w < 1 then invalid_arg "Sliding_window.make: window must be positive";
    (* snd_k: k transmitted-but-unacknowledged messages, nothing
       pending.  While the window is open a fresh input may arrive
       (the binder unrolls into singleton-set inputs because the
       continuation depends on the value); while anything is
       unacknowledged an ack may arrive.  pnd_k_b: additionally
       message b is accepted but not yet on the wire — crucially the
       transmission is offered in CHOICE with ack receipt, otherwise
       a sender committed to [wire!b] and a receiver committed to
       [ack!] deadlock. *)
    let ack_to name =
      Process.recv "ack" "a" (Vset.Enum [ Value.ack ]) (Process.ref_ name)
    in
    let input_to name_of_bit =
      List.map
        (fun b ->
          Process.recv "input" "x"
            (Vset.Enum [ Value.Int b ])
            (Process.ref_ (name_of_bit b)))
        [ 0; 1 ]
    in
    let choice_of = function
      | [] -> invalid_arg "choice_of"
      | a :: more -> List.fold_left (fun p q -> Process.Choice (p, q)) a more
    in
    let snd_body k =
      choice_of
        ((if k < w then input_to (pnd_name k) else [])
        @ if k > 0 then [ ack_to (snd_name (k - 1)) ] else [])
    in
    let pnd_body k b =
      choice_of
        (Process.send "wire" (Expr.int b) (Process.ref_ (snd_name (k + 1)))
         :: (if k > 0 then [ ack_to (pnd_name (k - 1) b) ] else []))
    in
    let receiver_body =
      Process.recv "wire" "y" bit
        (Process.send "output" (Expr.Var "y")
           (Process.send "ack" (Expr.Const Value.ack) (Process.ref_ "rcv")))
    in
    let defs =
      List.fold_left
        (fun d k -> Defs.define (snd_name k) (snd_body k) d)
        (Defs.define "rcv" receiver_body Defs.empty)
        (List.init (w + 1) Fun.id)
    in
    let defs =
      List.fold_left
        (fun d (k, b) -> Defs.define (pnd_name k b) (pnd_body k b) d)
        defs
        (List.concat_map (fun k -> [ (k, 0); (k, 1) ]) (List.init w Fun.id))
    in
    (* The behavioural specification.  The sender's window pipelines
       against a one-slot receiver, so the end-to-end capacity is
       min(w, 2) whatever the window: at most one message is pending
       transmission and at most one is crossing the receiver.  The
       spec is the value-faithful buffer of that capacity, one
       definition per queue content. *)
    let cap = min w 2 in
    let buf_body q =
      let arms =
        (if List.length q < cap then
           List.map
             (fun b ->
               Process.recv "input" "x"
                 (Vset.Enum [ Value.Int b ])
                 (Process.ref_ (buf_name (q @ [ b ]))))
             [ 0; 1 ]
         else [])
        @
        match q with
        | [] -> []
        | v :: rest ->
          [ Process.send "output" (Expr.int v) (Process.ref_ (buf_name rest)) ]
      in
      match arms with
      | [] -> assert false (* w ≥ 1: every state accepts or emits *)
      | [ a ] -> a
      | a :: more -> List.fold_left (fun p b -> Process.Choice (p, b)) a more
    in
    let defs =
      List.fold_left
        (fun d q -> Defs.define (buf_name q) (buf_body q) d)
        defs (queues cap)
    in
    let sender_alpha = Chan_set.of_names [ "input"; "wire"; "ack" ] in
    let receiver_alpha = Chan_set.of_names [ "wire"; "output"; "ack" ] in
    let network =
      Process.Par
        (sender_alpha, receiver_alpha, Process.ref_ "snd0", Process.ref_ "rcv")
    in
    let system = Process.Hide (Chan_set.of_names [ "wire"; "ack" ], network) in
    let len c = Term.Len (Term.chan c) in
    let invariants =
      [
        Assertion.Prefix (Term.chan "wire", Term.chan "input");
        Assertion.Prefix (Term.chan "output", Term.chan "wire");
        le (len "input") (Term.Add (len "ack", Term.int w));
        le (len "output") (len "wire");
        le (len "input") (Term.Add (len "output", Term.int cap));
      ]
    in
    {
      w;
      defs;
      network;
      system;
      spec = Process.ref_ (buf_name []);
      invariants;
    }

  let default = make ~w:2
end

(* ---- token ring ------------------------------------------------------- *)

module Token_ring = struct
  type t = {
    n : int;
    defs : Defs.t;
    network : Process.t;
    system : Process.t;
    spec : Process.t;
    invariants : Assertion.t list;
  }

  let station_name i = Printf.sprintf "ring%d" i
  let spec_name i = Printf.sprintf "spin%d" i

  let make ~n =
    if n < 2 then invalid_arg "Token_ring.make: need at least two stations";
    let token = Vset.Enum [ Value.Int 0 ] in
    let pass i = Chan_expr.indexed "pass" (Expr.int (i mod n)) in
    let work i = Chan_expr.indexed "work" (Expr.int i) in
    (* station 0 holds the token initially: work, pass it on, wait *)
    let st0 =
      seq
        [
          (fun k -> Process.Output (work 0, Expr.int 0, k));
          (fun k -> Process.Output (pass 1, Expr.int 0, k));
          (fun k -> Process.Input (pass 0, "t", token, k));
        ]
        (Process.ref_ (station_name 0))
    in
    let st i =
      seq
        [
          (fun k -> Process.Input (pass i, "t", token, k));
          (fun k -> Process.Output (work i, Expr.int i, k));
          (fun k -> Process.Output (pass (i + 1), Expr.int 0, k));
        ]
        (Process.ref_ (station_name i))
    in
    let defs =
      List.fold_left
        (fun d i -> Defs.define (station_name i) (if i = 0 then st0 else st i) d)
        Defs.empty (List.init n Fun.id)
    in
    (* the work events, round-robin forever *)
    let spec_defs =
      List.fold_left
        (fun d i ->
          Defs.define (spec_name i)
            (Process.Output
               (work i, Expr.int i, Process.ref_ (spec_name ((i + 1) mod n))))
            d)
        defs (List.init n Fun.id)
    in
    let station_alpha i =
      Chan_set.of_channels
        [
          Channel.indexed "pass" i;
          Channel.indexed "pass" ((i + 1) mod n);
          Channel.indexed "work" i;
        ]
    in
    let network =
      par_chain
        (List.init n (fun i -> (Process.ref_ (station_name i), station_alpha i)))
    in
    let internal =
      Chan_set.of_channels (List.init n (fun i -> Channel.indexed "pass" i))
    in
    let system = Process.Hide (internal, network) in
    (* station i ≥ 1 receives pass[i], works, forwards pass[i+1] *)
    let invariants =
      List.concat_map
        (fun i ->
          [
            le (len_of "pass" ((i + 1) mod n)) (len_of "work" i);
            le (len_of "work" i) (len_of "pass" i);
          ])
        (List.init (n - 1) (fun i -> i + 1))
      @ [
          le (len_of "pass" 1) (len_of "work" 0);
          le (len_of "work" 0) (Term.Add (len_of "pass" 0, Term.int 1));
        ]
    in
    {
      n;
      defs = spec_defs;
      network;
      system;
      spec = Process.ref_ (spec_name 0);
      invariants;
    }

  let default = make ~n:3
end

(* ---- ring leader election -------------------------------------------- *)

module Leader = struct
  type t = {
    n : int;
    defs : Defs.t;
    network : Process.t;
    system : Process.t;
    spec : Process.t;
    invariants : Assertion.t list;
  }

  let node_name i = Printf.sprintf "node%d" i

  (* A max-collecting token around a unidirectional ring.  Node 0
     initiates with its own id; node i forwards max(value, i) — with a
     single token the arriving value at node i is determined (i-1), so
     the max unrolls to a constant and the winner is always n-1. *)
  let make ~n =
    if n < 2 then invalid_arg "Leader.make: need at least two nodes";
    let elect i = Chan_expr.indexed "elect" (Expr.int (i mod n)) in
    let node0 =
      seq
        [
          (fun k -> Process.Output (elect 1, Expr.int 0, k));
          (fun k ->
            Process.Input (elect 0, "v", Vset.Enum [ Value.Int (n - 1) ], k));
          (fun k -> Process.send "leader" (Expr.int (n - 1)) k);
        ]
        (Process.ref_ (node_name 0))
    in
    let node i =
      seq
        [
          (fun k ->
            Process.Input (elect i, "v", Vset.Enum [ Value.Int (i - 1) ], k));
          (fun k -> Process.Output (elect (i + 1), Expr.int i, k));
        ]
        (Process.ref_ (node_name i))
    in
    let defs =
      List.fold_left
        (fun d i -> Defs.define (node_name i) (if i = 0 then node0 else node i) d)
        Defs.empty (List.init n Fun.id)
    in
    let defs =
      Defs.define "lspec"
        (Process.send "leader" (Expr.int (n - 1)) (Process.ref_ "lspec"))
        defs
    in
    let node_alpha i =
      let own =
        Chan_set.of_channels
          [ Channel.indexed "elect" i; Channel.indexed "elect" ((i + 1) mod n) ]
      in
      if i = 0 then Chan_set.union own (Chan_set.of_names [ "leader" ]) else own
    in
    let network =
      par_chain
        (List.init n (fun i -> (Process.ref_ (node_name i), node_alpha i)))
    in
    let internal =
      Chan_set.of_channels (List.init n (fun i -> Channel.indexed "elect" i))
    in
    let system = Process.Hide (internal, network) in
    (* every announced leader is the maximal id *)
    let tk = Term.Var "k" in
    let invariants =
      [
        Assertion.Forall
          ( "k",
            Vset.Nat,
            Assertion.Imp
              ( Assertion.And
                  ( Assertion.Cmp (Assertion.Le, Term.int 1, tk),
                    Assertion.Cmp
                      (Assertion.Le, tk, Term.Len (Term.chan "leader")) ),
                Assertion.Eq
                  (Term.Index (Term.chan "leader", tk), Term.int (n - 1)) ) );
        le (Term.Len (Term.chan "leader")) (len_of "elect" 0);
      ]
    in
    {
      n;
      defs;
      network;
      system;
      spec = Process.ref_ "lspec";
      invariants;
    }

  let default = make ~n:3
end

(* ---- independent worker pool ------------------------------------------ *)

module Workers = struct
  type t = {
    n : int;
    defs : Defs.t;
    network : Process.t;
    system : Process.t;
    spec : Process.t;
    invariants : Assertion.t list;
  }

  let worker_name i = Printf.sprintf "wrk%d" i

  (* n fully independent two-phase cyclers with disjoint alphabets.
     Nothing synchronises, so the concrete interleaving has exactly
     2^n states — the counter abstraction of the same family stays
     flat in n, which is what BENCH_abstraction exhibits. *)
  let make ~n =
    if n < 1 then invalid_arg "Workers.make: need at least one worker";
    let tick i = Chan_expr.indexed "tick" (Expr.int i) in
    let tock i = Chan_expr.indexed "tock" (Expr.int i) in
    let wrk i =
      seq
        [
          (fun k -> Process.Output (tick i, Expr.int i, k));
          (fun k -> Process.Output (tock i, Expr.int i, k));
        ]
        (Process.ref_ (worker_name i))
    in
    let defs =
      List.fold_left
        (fun d i -> Defs.define (worker_name i) (wrk i) d)
        Defs.empty (List.init n Fun.id)
    in
    let alpha i =
      Chan_set.of_channels
        [ Channel.indexed "tick" i; Channel.indexed "tock" i ]
    in
    let network =
      par_chain (List.init n (fun i -> (Process.ref_ (worker_name i), alpha i)))
    in
    let invariants =
      List.concat_map
        (fun i ->
          [
            le (len_of "tock" i) (len_of "tick" i);
            le (len_of "tick" i) (Term.Add (len_of "tock" i, Term.int 1));
          ])
        (List.init n Fun.id)
    in
    (* no internal channels and no sequencing across workers: the
       network is its own specification *)
    { n; defs; network; system = network; spec = network; invariants }

  let default = make ~n:3
end

(* ---- two-phase commit ------------------------------------------------- *)

module Commit = struct
  type t = {
    n : int;
    defs : Defs.t;
    network : Process.t;
    system : Process.t;
    spec : Process.t;
    invariants : Assertion.t list;
  }

  let co_name i all_yes = Printf.sprintf "co%d%s" i (if all_yes then "y" else "n")
  let pt_name j = Printf.sprintf "pt%d" j
  let ptd_name j = Printf.sprintf "ptd%d" j

  let make ~n =
    if n < 1 then invalid_arg "Commit.make: need at least one participant";
    let req j = Chan_expr.indexed "req" (Expr.int j) in
    let vote j = Chan_expr.indexed "vote" (Expr.int j) in
    let dec j = Chan_expr.indexed "dec" (Expr.int j) in
    (* coordinator state (polled i participants, conjunction so far):
       poll the next participant, or broadcast the decision *)
    let broadcast b tail =
      seq
        (List.init n (fun j ->
             fun k -> Process.Output (dec (j + 1), Expr.int b, k)))
        tail
    in
    let co_body i all_yes =
      if i = n then
        broadcast (if all_yes then 1 else 0) (Process.ref_ (co_name 0 true))
      else
        Process.Output
          ( req (i + 1),
            Expr.int 1,
            Process.Choice
              ( Process.Input
                  ( vote (i + 1),
                    "v",
                    Vset.Enum [ Value.Int 0 ],
                    Process.ref_ (co_name (i + 1) false) ),
                Process.Input
                  ( vote (i + 1),
                    "v",
                    Vset.Enum [ Value.Int 1 ],
                    Process.ref_ (co_name (i + 1) all_yes) ) ) )
    in
    let defs =
      List.fold_left
        (fun d (i, b) -> Defs.define (co_name i b) (co_body i b) d)
        Defs.empty
        (List.concat_map
           (fun i -> [ (i, true); (i, false) ])
           (List.init (n + 1) Fun.id))
    in
    (* participant j votes freely, then obeys the decision *)
    let pt_body j =
      Process.Input
        ( req j,
          "r",
          Vset.Enum [ Value.Int 1 ],
          Process.Choice
            ( Process.Output (vote j, Expr.int 0, Process.ref_ (ptd_name j)),
              Process.Output (vote j, Expr.int 1, Process.ref_ (ptd_name j)) )
        )
    in
    let ptd_body j = Process.Input (dec j, "d", bit, Process.ref_ (pt_name j)) in
    let defs =
      List.fold_left
        (fun d j ->
          d
          |> Defs.define (pt_name j) (pt_body j)
          |> Defs.define (ptd_name j) (ptd_body j))
        defs
        (List.init n (fun j -> j + 1))
    in
    (* spec of the visible behaviour: rounds of full broadcasts, each
       round's decision chosen nondeterministically *)
    let defs =
      Defs.define "cspec"
        (Process.Choice
           ( broadcast 0 (Process.ref_ "cspec"),
             broadcast 1 (Process.ref_ "cspec") ))
        defs
    in
    let co_alpha =
      Chan_set.of_channels
        (List.concat_map
           (fun j ->
             [
               Channel.indexed "req" j;
               Channel.indexed "vote" j;
               Channel.indexed "dec" j;
             ])
           (List.init n (fun j -> j + 1)))
    in
    let pt_alpha j =
      Chan_set.of_channels
        [
          Channel.indexed "req" j;
          Channel.indexed "vote" j;
          Channel.indexed "dec" j;
        ]
    in
    let network =
      par_chain
        ((Process.ref_ (co_name 0 true), co_alpha)
        :: List.init n (fun j ->
               (Process.ref_ (pt_name (j + 1)), pt_alpha (j + 1))))
    in
    let internal =
      Chan_set.of_channels
        (List.concat_map
           (fun j ->
             [ Channel.indexed "req" j; Channel.indexed "vote" j ])
           (List.init n (fun j -> j + 1)))
    in
    let system = Process.Hide (internal, network) in
    let tk = Term.Var "k" in
    let chan_len name j = len_of name j in
    let invariants =
      List.concat_map
        (fun j ->
          [
            le (chan_len "dec" j) (chan_len "vote" j);
            le (chan_len "vote" j) (chan_len "req" j);
            le (chan_len "req" j) (Term.Add (chan_len "dec" j, Term.int 1));
          ])
        (List.init n (fun j -> j + 1))
      @
      if n > 1 then
        [
          (* agreement: whenever the last participant has its k-th
             decision, it matches the first participant's *)
          Assertion.Forall
            ( "k",
              Vset.Nat,
              Assertion.Imp
                ( Assertion.And
                    ( Assertion.Cmp (Assertion.Le, Term.int 1, tk),
                      Assertion.Cmp (Assertion.Le, tk, len_of "dec" n) ),
                  Assertion.Eq
                    ( Term.Index
                        (Term.Chan (Chan_expr.indexed "dec" (Expr.int 1)), tk),
                      Term.Index
                        (Term.Chan (Chan_expr.indexed "dec" (Expr.int n)), tk)
                    ) ) );
        ]
      else []
    in
    {
      n;
      defs;
      network;
      system;
      spec = Process.ref_ "cspec";
      invariants;
    }

  let default = make ~n:2
end

(* ---- choreographies --------------------------------------------------- *)

module Choreo = struct
  type step = { frm : int; dst : int; value : int }
  type t = {
    roles : int;
    steps : step list;
    defs : Defs.t;
    network : Process.t;
    global : Process.t;
  }

  let role_name r = Printf.sprintf "cg%d" r
  let global_name = "cglob"
  let msg t = Chan_expr.indexed "msg" (Expr.int t)

  (* A deterministic walk over the roles: consecutive entries differ,
     and the wrap-around step (last → first) is a real send too.  The
     seed drives a tiny LCG — no global randomness, so a choreography
     is a pure function of (roles, length, seed). *)
  let walk ~roles ~length ~seed =
    let length = if roles = 2 && length mod 2 = 1 then length + 1 else length in
    let state = ref (seed land 0x3fffffff) in
    let next_int m =
      state := ((!state * 1103515245) + 12345) land 0x3fffffff;
      !state mod m
    in
    let w = Array.make length 0 in
    for t = 1 to length - 1 do
      w.(t) <- (w.(t - 1) + 1 + next_int (roles - 1)) mod roles
    done;
    if length > 1 && w.(length - 1) = w.(0) then
      w.(length - 1) <-
        (let fix = ref ((w.(0) + 1) mod roles) in
         while !fix = w.(length - 2) || !fix = w.(0) do
           fix := (!fix + 1) mod roles
         done;
         !fix);
    Array.to_list
      (Array.mapi
         (fun t r ->
           { frm = r; dst = w.((t + 1) mod length); value = next_int 2 })
         w)

  let make ~roles ~steps =
    let n_steps = List.length steps in
    if roles < 2 then invalid_arg "Choreo.make: need at least two roles";
    if n_steps < 1 then invalid_arg "Choreo.make: need at least one step";
    List.iteri
      (fun t s ->
        if s.frm = s.dst then
          invalid_arg (Printf.sprintf "Choreo.make: step %d is a self-send" t))
      steps;
    (* the global behaviour: the interactions in order, forever *)
    let global_body =
      seq
        (List.mapi
           (fun t s -> fun k -> Process.Output (msg t, Expr.int s.value, k))
           steps)
        (Process.ref_ global_name)
    in
    (* role r's projection: its sends and receives, in global order *)
    let role_events r =
      List.concat
        (List.mapi
           (fun t s ->
             if s.frm = r then
               [ (fun k -> Process.Output (msg t, Expr.int s.value, k)) ]
             else if s.dst = r then
               [
                 (fun k ->
                   Process.Input
                     (msg t, "x", Vset.Enum [ Value.Int s.value ], k));
               ]
             else [])
           steps)
    in
    let participants =
      List.filter (fun r -> role_events r <> []) (List.init roles Fun.id)
    in
    let defs =
      List.fold_left
        (fun d r ->
          Defs.define (role_name r)
            (seq (role_events r) (Process.ref_ (role_name r)))
            d)
        (Defs.define global_name global_body Defs.empty)
        participants
    in
    let role_alpha r =
      Chan_set.of_channels
        (List.concat
           (List.mapi
              (fun t s ->
                if s.frm = r || s.dst = r then [ Channel.indexed "msg" t ]
                else [])
              steps))
    in
    let network =
      par_chain
        (List.map (fun r -> (Process.ref_ (role_name r), role_alpha r))
           participants)
    in
    { roles; steps; defs; network; global = Process.ref_ global_name }

  let generate ~roles ~length ~seed =
    let steps = walk ~roles ~length ~seed in
    make ~roles ~steps
end
