(** Public facade: one module to open for the whole library.

    The paper's formal apparatus lives in the underlying libraries
    ([csp_trace], [csp_lang], [csp_semantics], [csp_assertion],
    [csp_proof], [csp_sim]); this module re-exports each component
    under one roof, together with the paper's worked examples
    ({!Paper}). *)

(* Trace substrate (§1, §3.1) *)
module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module History = Csp_trace.History
module Seq_ops = Csp_trace.Seq_ops

(* Process language (§1.1, §1.2) *)
module Vset = Csp_lang.Vset
module Expr = Csp_lang.Expr
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Valuation = Csp_lang.Valuation
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module Mutate = Csp_lang.Mutate

(* Process IR *)
module Proc = Csp_lang.Proc

(* Semantics (§3) *)
module Closure = Csp_semantics.Closure
module Closure_ref = Csp_semantics.Closure_ref
module Sampler = Csp_semantics.Sampler
module Engine = Csp_semantics.Engine
module Step = Csp_semantics.Step
module Denote = Csp_semantics.Denote
module Equiv = Csp_semantics.Equiv
module Failures = Csp_semantics.Failures
module Lts = Csp_semantics.Lts
module Bisim = Csp_semantics.Bisim
module Compiled = Csp_semantics.Compiled

(* Assertions (§2) *)
module Afun = Csp_assertion.Afun
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion
module Sat = Csp_assertion.Sat
module Prover = Csp_assertion.Prover

(* Proof system (§2.1) *)
module Sequent = Csp_proof.Sequent
module Proof = Csp_proof.Proof
module Check = Csp_proof.Check
module Tactic = Csp_proof.Tactic
module Infer = Csp_proof.Infer
module Cert = Csp_proof.Cert

(* Parameterised-family verification (counter abstraction, channel
   abstractions, assumption formulae) *)
module Abstraction = Csp_abstraction

(* Parallel execution substrate *)
module Pool = Csp_parallel.Pool

(* Observability *)
module Obs = Csp_obs.Obs

(* Execution *)
module Scheduler = Csp_sim.Scheduler
module Runner = Csp_sim.Runner
module Stats = Csp_sim.Stats

(* The paper's systems, and the protocol library grown around them *)
module Paper = Paper
module Models = Models
