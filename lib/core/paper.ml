module Value = Csp_trace.Value
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion
module Tactic = Csp_proof.Tactic

(* Nested binary parallel over a list of (process, alphabet) pairs,
   accumulating the alphabet of the left operand. *)
let par_chain = function
  | [] -> invalid_arg "par_chain: empty network"
  | (p0, a0) :: rest ->
    let process, _ =
      List.fold_left
        (fun (p, a) (q, b) -> (Process.Par (a, b, p, q), Chan_set.union a b))
        (p0, a0) rest
    in
    process

module Copier = struct
  let x = Expr.Var "x"
  let y = Expr.Var "y"

  let defs =
    Defs.empty
    |> Defs.define "copier"
         (Process.recv "input" "x" Vset.Nat
            (Process.send "wire" x (Process.ref_ "copier")))
    |> Defs.define "recopier"
         (Process.recv "wire" "y" Vset.Nat
            (Process.send "output" y (Process.ref_ "recopier")))

  let copier = Process.ref_ "copier"
  let recopier = Process.ref_ "recopier"
  let alphabet_x = Chan_set.of_names [ "input"; "wire" ]
  let alphabet_y = Chan_set.of_names [ "wire"; "output" ]
  let network = Process.Par (alphabet_x, alphabet_y, copier, recopier)
  let pipe = Process.Hide (Chan_set.of_names [ "wire" ], network)
  let copier_spec = Assertion.Prefix (Term.chan "wire", Term.chan "input")
  let recopier_spec = Assertion.Prefix (Term.chan "output", Term.chan "wire")
  let network_spec = Assertion.Prefix (Term.chan "output", Term.chan "input")

  let count_spec =
    Assertion.Cmp
      ( Assertion.Le,
        Term.Len (Term.chan "input"),
        Term.Add (Term.Len (Term.chan "wire"), Term.int 1) )

  let tables =
    Tactic.tables
      ~invariants:
        [ ("copier", copier_spec); ("recopier", recopier_spec) ]
      ()

  (* A chain of n copiers: stage i copies c[i-1] to c[i]. *)
  let stage_name i = Printf.sprintf "stage%d" i
  let chan_c i = Chan_expr.indexed "c" (Expr.int i)

  let chain_defs n =
    if n < 1 then invalid_arg "chain_defs: need at least one stage";
    let defs =
      List.fold_left
        (fun defs i ->
          Defs.define (stage_name i)
            (Process.Input
               ( chan_c (i - 1),
                 "x",
                 Vset.Nat,
                 Process.Output (chan_c i, Expr.Var "x",
                                 Process.ref_ (stage_name i)) ))
            defs)
        Defs.empty
        (List.init n (fun i -> i + 1))
    in
    let stages =
      List.map
        (fun i ->
          ( Process.ref_ (stage_name i),
            Chan_set.of_channels
              [ Csp_trace.Channel.indexed "c" (i - 1);
                Csp_trace.Channel.indexed "c" i ] ))
        (List.init n (fun i -> i + 1))
    in
    let network = par_chain stages in
    let internal =
      Chan_set.of_channels
        (List.init (max 0 (n - 1)) (fun i -> Csp_trace.Channel.indexed "c" (i + 1)))
    in
    (defs, Process.Hide (internal, network))

  let chain_spec n =
    Assertion.Prefix
      ( Term.Chan (chan_c n),
        Term.Chan (chan_c 0) )
end

module Protocol = struct
  let message_set = Vset.Nat
  let ack_set = Vset.Enum [ Value.ack ]
  let nack_set = Vset.Enum [ Value.nack ]
  let x = Expr.Var "x"
  let z = Expr.Var "z"

  (* q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]) *)
  let q_body =
    Process.send "wire" x
      (Process.Choice
         ( Process.recv "wire" "y" ack_set (Process.ref_ "sender"),
           Process.recv "wire" "y" nack_set (Process.call "q" x) ))

  (* receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                            | wire!NACK -> receiver) *)
  let receiver_body =
    Process.recv "wire" "z" message_set
      (Process.Choice
         ( Process.send "wire" (Expr.Const Value.ack)
             (Process.send "output" z (Process.ref_ "receiver")),
           Process.send "wire" (Expr.Const Value.nack)
             (Process.ref_ "receiver") ))

  let alphabet_x = Chan_set.of_names [ "input"; "wire" ]
  let alphabet_y = Chan_set.of_names [ "wire"; "output" ]

  let defs =
    Defs.empty
    |> Defs.define "sender"
         (Process.recv "input" "x" message_set (Process.call "q" x))
    |> Defs.define_array "q" "x" message_set q_body
    |> Defs.define "receiver" receiver_body
    |> Defs.define "protocol"
         (Process.Hide
            ( Chan_set.of_names [ "wire" ],
              Process.Par
                (alphabet_x, alphabet_y, Process.ref_ "sender",
                 Process.ref_ "receiver") ))

  let sender = Process.ref_ "sender"
  let receiver = Process.ref_ "receiver"

  let network =
    Process.Par (alphabet_x, alphabet_y, sender, receiver)

  let protocol = Process.ref_ "protocol"
  let f_wire = Term.App ("f", Term.chan "wire")
  let sender_spec = Assertion.Prefix (f_wire, Term.chan "input")

  let q_spec =
    ( "x",
      message_set,
      Assertion.Prefix (f_wire, Term.Cons (Term.Var "x", Term.chan "input")) )

  let receiver_spec = Assertion.Prefix (Term.chan "output", f_wire)
  let protocol_spec = Assertion.Prefix (Term.chan "output", Term.chan "input")

  let tables =
    Tactic.tables
      ~invariants:
        [
          ("sender", sender_spec);
          ("receiver", receiver_spec);
          ("protocol", protocol_spec);
        ]
      ~array_invariants:[ ("q", q_spec) ]
      ()
end

module Multiplier = struct
  type t = {
    v : int list;
    defs : Defs.t;
    network : Process.t;
    multiplier : Process.t;
    spec : Assertion.t;
  }

  let col i = Chan_expr.indexed "col" i
  let row i = Chan_expr.indexed "row" i

  let make ~v =
    let n = List.length v in
    if n < 1 then invalid_arg "Multiplier.make: empty vector";
    let vval = Value.Seq (List.map (fun k -> Value.Int k) v) in
    let i = Expr.Var "i" in
    (* mult[i:1..n] = row[i]?x:NAT -> col[i-1]?y:NAT
                      -> col[i]!(v[i]*x + y) -> mult[i] *)
    let mult_body =
      Process.Input
        ( row i,
          "x",
          Vset.Nat,
          Process.Input
            ( col (Expr.Sub (i, Expr.int 1)),
              "y",
              Vset.Nat,
              Process.Output
                ( col i,
                  Expr.Add
                    ( Expr.Mul (Expr.Idx (Expr.Const vval, i), Expr.Var "x"),
                      Expr.Var "y" ),
                  Process.call "mult" i ) ) )
    in
    let defs =
      Defs.empty
      |> Defs.define_array "mult" "i" (Vset.Range (1, n)) mult_body
      |> Defs.define "zeroes"
           (Process.Output (col (Expr.int 0), Expr.int 0, Process.ref_ "zeroes"))
      |> Defs.define "last"
           (Process.Input
              ( col (Expr.int n),
                "y",
                Vset.Nat,
                Process.send "output" (Expr.Var "y") (Process.ref_ "last") ))
    in
    let chan_col i = Csp_trace.Channel.indexed "col" i in
    let chan_row i = Csp_trace.Channel.indexed "row" i in
    let stages =
      [ (Process.ref_ "zeroes", Chan_set.of_channels [ chan_col 0 ]) ]
      @ List.map
          (fun k ->
            ( Process.call "mult" (Expr.int k),
              Chan_set.of_channels [ chan_row k; chan_col (k - 1); chan_col k ]
            ))
          (List.init n (fun k -> k + 1))
      @ [
          ( Process.ref_ "last",
            Chan_set.union
              (Chan_set.of_channels [ chan_col n ])
              (Chan_set.of_names [ "output" ]) );
        ]
    in
    let network = par_chain stages in
    let internal =
      Chan_set.of_channels (List.init (n + 1) (fun k -> chan_col k))
    in
    let multiplier = Process.Hide (internal, network) in
    (* ∀i:NAT. 1 ≤ i ≤ #output ⇒ output_i = Σ_{j=1..n} v[j] * row[j]_i *)
    let ti = Term.Var "i" in
    let spec =
      Assertion.Forall
        ( "i",
          Vset.Nat,
          Assertion.Imp
            ( Assertion.And
                ( Assertion.Cmp (Assertion.Le, Term.int 1, ti),
                  Assertion.Cmp
                    (Assertion.Le, ti, Term.Len (Term.chan "output")) ),
              Assertion.Eq
                ( Term.Index (Term.chan "output", ti),
                  Term.Sum
                    ( "j",
                      Term.int 1,
                      Term.int n,
                      Term.Mul
                        ( Term.Index (Term.Const vval, Term.Var "j"),
                          Term.Index
                            ( Term.Chan (Chan_expr.indexed "row" (Expr.Var "j")),
                              ti ) ) ) ) ) )
    in
    { v; defs; network; multiplier; spec }

  let default = make ~v:[ 1; 2; 3 ]
end

(* §4's cautionary example: the dining philosophers.  The per-fork
   safety invariant is provable for the symmetric table and the
   left-handed one alike — sat-assertions are partial-correctness
   claims and say nothing about deadlock, which only the state-space
   exploration (or the §4 refusals extension) can tell apart.  The
   network's BFS layers grow combinatorially in [n], which also makes
   it the scaling workload of the parallel-exploration bench. *)
module Philosophers = struct
  type t = {
    n : int;
    left_handed_last : bool;
    defs : Defs.t;
    network : Process.t;
    fork_ids : Vset.t;
    fork_invariant : Assertion.t;
    tables : Tactic.tables;
  }

  let make ?(left_handed_last = true) ~n () =
    if n < 2 then invalid_arg "Philosophers.make: need at least two seats";
    let ids = Vset.Range (0, n - 1) in
    let ch name i = Chan_expr.indexed name i in
    let modn e = Expr.Mod (e, Expr.int n) in
    let i = Expr.Var "i" in
    (* fork[i] = left[i]?p -> lput[i]?q -> fork[i]
               | right[i]?p -> rput[i]?q -> fork[i] *)
    let fork_body =
      Process.Choice
        ( Process.Input
            ( ch "left" i,
              "p",
              ids,
              Process.Input (ch "lput" i, "q", ids, Process.call "fork" i) ),
          Process.Input
            ( ch "right" i,
              "p",
              ids,
              Process.Input (ch "rput" i, "q", ids, Process.call "fork" i) ) )
    in
    (* grab the two forks through the given ports, eat, put them back *)
    let phil_body (port1, f1) (port2, f2) =
      Process.Output
        ( ch port1 f1,
          i,
          Process.Output
            ( ch port2 f2,
              i,
              Process.Output
                ( ch "eat" i,
                  i,
                  Process.Output
                    ( ch (if String.equal port1 "left" then "lput" else "rput") f1,
                      i,
                      Process.Output
                        ( ch (if String.equal port2 "right" then "rput" else "lput")
                            f2,
                          i,
                          Process.call "phil" i ) ) ) ) )
    in
    let own = ("left", i)
    and next = ("right", modn (Expr.Add (i, Expr.int 1))) in
    let base = Defs.empty |> Defs.define_array "fork" "i" ids fork_body in
    let defs =
      if left_handed_last then
        (* the left-handed philosopher loops back to itself *)
        let rec to_lefty = function
          | Process.Ref ("phil", _) -> Process.ref_ "lefty"
          | Process.Output (c, e, k) -> Process.Output (c, e, to_lefty k)
          | Process.Input (c, x, m, k) -> Process.Input (c, x, m, to_lefty k)
          | Process.Choice (a, b) -> Process.Choice (to_lefty a, to_lefty b)
          | Process.Par (xa, ya, a, b) ->
            Process.Par (xa, ya, to_lefty a, to_lefty b)
          | Process.Hide (l, p) -> Process.Hide (l, to_lefty p)
          | (Process.Stop | Process.Ref _) as p -> p
        in
        base
        |> Defs.define_array "phil" "i"
             (Vset.Range (0, n - 2))
             (phil_body own next)
        |> Defs.define "lefty"
             (to_lefty
                (Process.subst_expr "i" (Expr.int (n - 1)) (phil_body next own)))
      else base |> Defs.define_array "phil" "i" ids (phil_body own next)
    in
    let c name i = Csp_trace.Channel.indexed name i in
    let fork_alpha i =
      Chan_set.of_channels [ c "left" i; c "right" i; c "lput" i; c "rput" i ]
    in
    let phil_alpha i =
      let j = (i + 1) mod n in
      Chan_set.of_channels
        [ c "left" i; c "lput" i; c "right" j; c "rput" j; c "eat" i ]
    in
    let forks =
      List.init n (fun i -> (Process.call "fork" (Expr.int i), fork_alpha i))
    in
    let phils =
      List.init n (fun i ->
          let p =
            if left_handed_last && i = n - 1 then Process.ref_ "lefty"
            else Process.call "phil" (Expr.int i)
          in
          (p, phil_alpha i))
    in
    let network = par_chain (forks @ phils) in
    (* ∀i. #lput[i] + #rput[i] ≤ #left[i] + #right[i]
          ≤ #lput[i] + #rput[i] + 1 *)
    let fork_invariant =
      let len name = Term.Len (Term.Chan (ch name (Expr.Var "i"))) in
      let grabs = Term.Add (len "left", len "right")
      and puts = Term.Add (len "lput", len "rput") in
      Assertion.And
        ( Assertion.Cmp (Assertion.Le, puts, grabs),
          Assertion.Cmp (Assertion.Le, grabs, Term.Add (puts, Term.int 1)) )
    in
    let tables =
      Tactic.tables ~array_invariants:[ ("fork", ("i", ids, fork_invariant)) ] ()
    in
    { n; left_handed_last; defs; network; fork_ids = ids; fork_invariant; tables }

  let default = make ~n:3 ()
end
