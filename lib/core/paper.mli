(** The example systems of the paper, ready to run and to prove.

    Three systems are built exactly as in §1.3 and §2.2: the copier
    pipeline, the ACK/NACK retransmission protocol, and the systolic
    matrix–vector multiplier.  Each comes with its definitions, its
    network, the paper's assertions, and the invariant tables that let
    {!Csp_proof.Tactic.auto} reproduce the paper's proofs (including
    Table 1). *)

open Csp_lang
open Csp_assertion
open Csp_proof

val par_chain : (Process.t * Chan_set.t) list -> Process.t
(** Nested binary parallel over (process, alphabet) pairs, the
    alphabet of the left operand accumulating as the fold proceeds.
    The network builder used by every example here and in
    {!module:Models}. *)

(** §1.3(1), §2: the copier pipeline
    [input → copier → wire → recopier → output]. *)
module Copier : sig
  val defs : Defs.t
  val copier : Process.t
  val recopier : Process.t

  val network : Process.t
  (** [copier ‖ recopier], alphabets [{input,wire}] and [{wire,output}]. *)

  val pipe : Process.t
  (** [chan wire; (copier ‖ recopier)]. *)

  val copier_spec : Assertion.t
  (** [wire ≤ input]. *)

  val recopier_spec : Assertion.t
  (** [output ≤ wire]. *)

  val network_spec : Assertion.t
  (** [output ≤ input]. *)

  val count_spec : Assertion.t
  (** [#input ≤ #wire + 1] — the paper's length example. *)

  val tables : Tactic.tables

  val stage_name : int -> string
  (** Definition name of the [i]-th stage of {!chain_defs}. *)

  val chain_defs : int -> Defs.t * Process.t
  (** [chain_defs n]: [n] copiers in series through channels
      [c[0] … c[n]]; used for scaling experiments.  Returns the
      definitions and the network (with [c[1..n-1]] concealed), which
      copies [c[0]] to [c[n]]. *)

  val chain_spec : int -> Assertion.t
  (** [c[n] ≤ c[0]] for the n-stage chain. *)
end

(** §1.3(2)–(4), §2.2, Table 1: the retransmission protocol. *)
module Protocol : sig
  val message_set : Vset.t
  (** The data messages [M] (natural numbers, as sampled). *)

  val defs : Defs.t
  (** [sender], [q[x:M]], [receiver], [protocol]. *)

  val sender : Process.t
  val receiver : Process.t
  val network : Process.t
  (** [sender ‖ receiver] with the wire visible. *)

  val protocol : Process.t
  (** [chan wire; (sender ‖ receiver)]. *)

  val sender_spec : Assertion.t
  (** [f(wire) ≤ input]. *)

  val q_spec : string * Vset.t * Assertion.t
  (** [∀x∈M. q[x] sat f(wire) ≤ x^input]. *)

  val receiver_spec : Assertion.t
  (** [output ≤ f(wire)]. *)

  val protocol_spec : Assertion.t
  (** [output ≤ input]. *)

  val tables : Tactic.tables
end

(** §1.3(5): the matrix–vector multiplier network. *)
module Multiplier : sig
  type t = {
    v : int list;          (** the fixed vector; its length sets the size *)
    defs : Defs.t;
    network : Process.t;   (** all [col] channels visible *)
    multiplier : Process.t;  (** [chan col[0..n]; network] *)
    spec : Assertion.t;
        (** ∀i. 1 ≤ i ≤ #output ⇒ outputᵢ = Σⱼ v[j]·row[j]ᵢ *)
  }

  val make : v:int list -> t
  val default : t
  (** [v = [1; 2; 3]], the paper's 3-stage network. *)
end

(** §4: the dining philosophers — safety provable, deadlock not.
    The per-fork invariant holds for both seatings (partial
    correctness!); only exploration tells the symmetric table's
    deadlock from the left-handed table's absence of one.  Also the
    scaling workload of the parallel bench: layer widths grow
    combinatorially with [n]. *)
module Philosophers : sig
  type t = {
    n : int;  (** seats (= forks = philosophers), ≥ 2 *)
    left_handed_last : bool;
    defs : Defs.t;  (** [fork[i]], [phil[i]] (and [lefty] if asymmetric) *)
    network : Process.t;  (** all 2n processes in alphabetised parallel *)
    fork_ids : Vset.t;  (** [{0..n-1}] *)
    fork_invariant : Assertion.t;
        (** ∀i. #lput[i]+#rput[i] ≤ #left[i]+#right[i]
              ≤ #lput[i]+#rput[i]+1 *)
    tables : Tactic.tables;  (** lets {!Tactic.auto} prove the invariant *)
  }

  val make : ?left_handed_last:bool -> n:int -> unit -> t
  (** Default [left_handed_last = true] (the deadlock-free seating). *)

  val default : t
  (** Three seats, left-handed last. *)
end
