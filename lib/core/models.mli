(** A paper-adjacent protocol library: distributed-systems workloads
    built from the same pieces as the paper's examples ({!Paper}),
    each parameterised by its size, each carrying bounded-checkable
    [sat] invariants and a behavioural specification to refine
    against.

    Common shape: [defs] holds every definition (implementation and
    spec), [network] is the alphabetised parallel composition with
    internal channels visible (the process the invariants speak
    about), [system] conceals the internal channels, and [spec] is
    the reference behaviour [system] should be trace-equivalent to.
    Every network here is deadlock-free by construction — the test
    suite checks that by exhaustive exploration at small sizes. *)

open Csp_lang
open Csp_assertion

(** The paper's ACK/NACK protocol generalised to a window of [w]
    unacknowledged messages in flight.  The sender offers pending
    transmissions in choice with acknowledgement receipt (a committed
    send against a committed ack is the classic deadlock); its window
    pipelines against a one-slot receiver, so the end-to-end system
    is trace-equivalent to the value-faithful buffer of capacity
    [min w 2] — the specification here. *)
module Sliding_window : sig
  type t = {
    w : int;  (** window size ≥ 1 *)
    defs : Defs.t;
    network : Process.t;  (** sender ‖ receiver, wire and ack visible *)
    system : Process.t;  (** [chan wire, ack; network] *)
    spec : Process.t;  (** the {0,1} buffer of capacity [min w 2] *)
    invariants : Assertion.t list;
        (** on [network]: [wire ≤ input], [output ≤ wire],
            [#input ≤ #ack + w], [#output ≤ #wire],
            [#input ≤ #output + min w 2] *)
  }

  val make : w:int -> t
  val default : t  (** window 2 *)
end

(** [n] stations passing a single token; station [i] performs
    [work[i]] while holding it.  The specification is the round-robin
    work sequence. *)
module Token_ring : sig
  type t = {
    n : int;  (** stations ≥ 2 *)
    defs : Defs.t;
    network : Process.t;  (** pass and work channels visible *)
    system : Process.t;  (** [chan pass[*]; network] *)
    spec : Process.t;  (** [work[0] -> work[1] -> … -> repeat] *)
    invariants : Assertion.t list;
        (** token conservation: [#pass[i+1] ≤ #work[i] ≤ #pass[i]]
            per station (station 0 offset by the initial token) *)
  }

  val make : n:int -> t
  val default : t  (** three stations *)
end

(** Ring leader election with a max-collecting token: node 0
    initiates, node [i] forwards the running maximum, and the
    returning token announces the winner — always the maximal id
    [n-1]. *)
module Leader : sig
  type t = {
    n : int;  (** nodes ≥ 2 *)
    defs : Defs.t;
    network : Process.t;  (** elect and leader channels visible *)
    system : Process.t;  (** [chan elect[*]; network] *)
    spec : Process.t;  (** [leader!(n-1)] forever *)
    invariants : Assertion.t list;
        (** every announced leader equals [n-1];
            [#leader ≤ #elect[0]] *)
  }

  val make : n:int -> t
  val default : t  (** three nodes *)
end

(** Independent worker pool: [n] two-phase cyclers
    [tick[i]!i -> tock[i]!i -> repeat] with pairwise-disjoint
    alphabets.  Nothing synchronises, so the concrete interleaving
    has exactly [2^n] states — the smallest honest exhibit of
    state-space blow-up that a counter abstraction flattens
    (see {!Csp_abstraction.Family.workers}). *)
module Workers : sig
  type t = {
    n : int;  (** workers ≥ 1 *)
    defs : Defs.t;
    network : Process.t;  (** tick and tock channels visible *)
    system : Process.t;  (** = network: nothing is internal *)
    spec : Process.t;  (** = network: its own specification *)
    invariants : Assertion.t list;
        (** per worker [#tock[i] ≤ #tick[i] ≤ #tock[i] + 1] *)
  }

  val make : n:int -> t
  val default : t  (** three workers *)
end

(** Two-phase commit: the coordinator polls every participant,
    conjoins the votes and broadcasts the decision.  The
    specification is rounds of full broadcasts with a
    nondeterministic verdict per round. *)
module Commit : sig
  type t = {
    n : int;  (** participants ≥ 1 *)
    defs : Defs.t;
    network : Process.t;  (** req, vote and dec channels visible *)
    system : Process.t;  (** [chan req[*], vote[*]; network] *)
    spec : Process.t;  (** broadcast rounds, decision free *)
    invariants : Assertion.t list;
        (** per participant [#dec ≤ #vote ≤ #req ≤ #dec + 1];
            agreement between first and last participant *)
  }

  val make : n:int -> t
  val default : t  (** two participants *)
end

(** Choreographies: a global interaction sequence (a token walk over
    the roles) projected onto per-role processes.  Because the walk
    is sequentially connected — each step's sender is the previous
    step's receiver — the projected network is deadlock-free by
    construction and its traces are exactly the global sequence's,
    which is what the [choreo-refine] differential oracle checks on
    randomly generated instances. *)
module Choreo : sig
  type step = {
    frm : int;  (** sending role *)
    dst : int;  (** receiving role, ≠ [frm] *)
    value : int;  (** the bit communicated *)
  }

  type t = {
    roles : int;
    steps : step list;  (** step [t] communicates on channel [msg[t]] *)
    defs : Defs.t;  (** one definition per participating role + global *)
    network : Process.t;  (** the projections, composed in parallel *)
    global : Process.t;  (** the choreography as one sequential process *)
  }

  val make : roles:int -> steps:step list -> t
  (** Raises [Invalid_argument] on self-sends, no steps or fewer than
      two roles.  The caller must pass a sequentially-connected walk
      (as {!generate} does) for the deadlock-freedom and
      trace-equality guarantees to hold. *)

  val generate : roles:int -> length:int -> seed:int -> t
  (** A choreography as a pure function of the arguments: the walk is
      drawn from a tiny LCG on [seed], consecutive roles always
      differ (including across the wrap-around), and with two roles
      an odd [length] is rounded up to keep the cycle alternating. *)
end
