(** A minimal JSON tree, parser and printer (stdlib only).

    This is the wire format of [cspc serve] (one request or response
    object per line) and the payload syntax of the on-disk cache
    {!Snapshot}.  The parser is total over untrusted input — it
    returns [Error] with a byte offset instead of raising — and the
    printer emits compact single-line output with no unescaped
    control characters, so a printed object is always a valid frame
    for the newline-delimited protocol. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Numbers are read as floats; strings decode
    the standard escapes including [\uXXXX] (surrogate pairs
    included) to UTF-8. *)

val to_string : t -> string
(** Compact single-line rendering.  Integral numbers print without a
    decimal point; non-finite floats print as [null]. *)

val int : int -> t
val str : string -> t

(** {1 Accessors} — shape-checking helpers returning [option]. *)

val member : string -> t -> t option
(** Field of an object ([None] on other constructors too). *)

val to_str : t -> string option
val to_int : t -> int option
(** Accepts only numbers with integral value. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
