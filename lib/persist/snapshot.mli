(** Versioned on-disk cache snapshots for the verification service.

    A snapshot is the replayable warm state of a [cspc serve] process:
    for every source file the server has seen, the source text itself,
    the roots that were compiled into successor automata (process
    name, compile budget and sampler bound — enough to re-issue the
    exact {!Csp_semantics.Engine.compile} call), and the proof
    certificates of every sequent proved against it.  Loading a
    snapshot replays those steps — re-parse, re-intern, re-compile,
    re-admit the certificates — so a restarted server answers its
    first request at warm-cache speed while remaining byte-identical
    to a cold computation: nothing semantic is deserialised, only
    rebuilt from the same inputs.

    On disk: one header line
    [cspc-snapshot <version> <md5-hex-of-payload> <payload-bytes>]
    followed by the JSON payload.  {!load} refuses version mismatches,
    truncation (length check) and corruption (digest check) with a
    clean [Error] — it never raises on bad input. *)

type compiled_root = {
  process : string;  (** the root, as concrete syntax (usually a name) *)
  budget : int option;  (** eager-materialisation budget of the compile *)
  nat_bound : int;  (** sampler bound of the engine that compiled it *)
}

type entry = {
  source : string;  (** full [.csp] text, exactly as first submitted *)
  compiled : compiled_root list;
  certs : string;  (** {!Csp_proof.Cert.write_many} output; may be empty *)
}

type t = { entries : entry list }

val empty : t
val version : int

val encode : t -> string
(** The full file image, header line included. *)

val decode : string -> (t, string) result

val save : string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] then renames over [path]. *)

val load : string -> (t, string) result
