type compiled_root = { process : string; budget : int option; nat_bound : int }
type entry = { source : string; compiled : compiled_root list; certs : string }
type t = { entries : entry list }

let empty = { entries = [] }
let version = 1
let magic = "cspc-snapshot"

(* ---- encoding --------------------------------------------------------- *)

let json_of_root r =
  Json.Obj
    ([ ("process", Json.str r.process); ("nat_bound", Json.int r.nat_bound) ]
    @ match r.budget with
      | Some b -> [ ("budget", Json.int b) ]
      | None -> [])

let json_of_entry e =
  Json.Obj
    [
      ("source", Json.str e.source);
      ("compiled", Json.Arr (List.map json_of_root e.compiled));
      ("certs", Json.str e.certs);
    ]

let payload t =
  Json.to_string
    (Json.Obj [ ("entries", Json.Arr (List.map json_of_entry t.entries)) ])

let encode t =
  let body = payload t in
  Printf.sprintf "%s %d %s %d\n%s" magic version
    (Digest.to_hex (Digest.string body))
    (String.length body) body

(* ---- decoding --------------------------------------------------------- *)

let ( let* ) = Result.bind

let root_of_json j =
  match (Json.mem_str "process" j, Json.mem_int "nat_bound" j) with
  | Some process, Some nat_bound ->
    Ok { process; budget = Json.mem_int "budget" j; nat_bound }
  | _ -> Error "snapshot: malformed compiled root"

let entry_of_json j =
  match (Json.mem_str "source" j, Json.mem_str "certs" j) with
  | Some source, Some certs ->
    let roots =
      Option.bind (Json.member "compiled" j) Json.to_list
      |> Option.value ~default:[]
    in
    let* compiled =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* r = root_of_json r in
          Ok (r :: acc))
        (Ok []) roots
    in
    Ok { source; compiled = List.rev compiled; certs }
  | _ -> Error "snapshot: malformed entry"

let decode s =
  let* header, body_start =
    match String.index_opt s '\n' with
    | Some i -> Ok (String.sub s 0 i, i + 1)
    | None -> Error "not a cspc snapshot: missing header line"
  in
  let* ver, digest, len =
    match String.split_on_char ' ' header with
    | [ m; v; d; l ] when m = magic -> (
      match (int_of_string_opt v, int_of_string_opt l) with
      | Some v, Some l when String.length d = 32 -> Ok (v, d, l)
      | _ -> Error "not a cspc snapshot: malformed header")
    | m :: _ when m <> magic -> Error "not a cspc snapshot: bad magic"
    | _ -> Error "not a cspc snapshot: malformed header"
  in
  let* () =
    if ver = version then Ok ()
    else
      Error
        (Printf.sprintf
           "snapshot version mismatch: file is version %d, this build reads \
            version %d"
           ver version)
  in
  let* body =
    if String.length s - body_start < len then
      Error
        (Printf.sprintf "truncated snapshot: header promises %d bytes, %d \
                         present" len
           (String.length s - body_start))
    else if String.length s - body_start > len then
      Error "corrupt snapshot: trailing bytes after payload"
    else Ok (String.sub s body_start len)
  in
  let* () =
    if Digest.to_hex (Digest.string body) = digest then Ok ()
    else Error "corrupt snapshot: integrity digest mismatch"
  in
  let* json =
    match Json.parse body with
    | Ok j -> Ok j
    | Error m -> Error ("corrupt snapshot: " ^ m)
  in
  let* entries =
    match Option.bind (Json.member "entries" json) Json.to_list with
    | Some es -> Ok es
    | None -> Error "snapshot: payload has no entries array"
  in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = entry_of_json e in
        Ok (e :: acc))
      (Ok []) entries
  in
  Ok { entries = List.rev entries }

(* ---- files ------------------------------------------------------------ *)

let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode t);
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> decode s
  | exception Sys_error m -> Error m
