type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- parsing ---------------------------------------------------------- *)

exception Bad of string * int

let fail pos fmt = Format.kasprintf (fun m -> raise (Bad (m, pos))) fmt

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> fail c.i "expected '%c', found '%c'" ch x
  | None -> fail c.i "expected '%c', found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c.i "invalid literal"

(* Encode a Unicode code point as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 c =
  if c.i + 4 > String.length c.s then fail c.i "truncated \\u escape";
  let v = ref 0 in
  for k = 0 to 3 do
    let d =
      match c.s.[c.i + k] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> fail (c.i + k) "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  c.i <- c.i + 4;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail c.i "unterminated string";
    match c.s.[c.i] with
    | '"' -> c.i <- c.i + 1
    | '\\' ->
      c.i <- c.i + 1;
      (if c.i >= String.length c.s then fail c.i "unterminated escape";
       let ch = c.s.[c.i] in
       c.i <- c.i + 1;
       match ch with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         let cp = hex4 c in
         let cp =
           (* high surrogate: require and fold the low half *)
           if cp >= 0xd800 && cp <= 0xdbff then begin
             if
               c.i + 1 < String.length c.s
               && c.s.[c.i] = '\\'
               && c.s.[c.i + 1] = 'u'
             then begin
               c.i <- c.i + 2;
               let lo = hex4 c in
               if lo < 0xdc00 || lo > 0xdfff then
                 fail c.i "invalid low surrogate";
               0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
             end
             else fail c.i "unpaired surrogate"
           end
           else if cp >= 0xdc00 && cp <= 0xdfff then
             fail c.i "unpaired surrogate"
           else cp
         in
         add_utf8 buf cp
       | _ -> fail (c.i - 1) "invalid escape '\\%c'" ch);
      go ()
    | ch when Char.code ch < 0x20 -> fail c.i "unescaped control character"
    | ch ->
      Buffer.add_char buf ch;
      c.i <- c.i + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let consume p =
    while c.i < String.length c.s && p c.s.[c.i] do
      c.i <- c.i + 1
    done
  in
  if peek c = Some '-' then c.i <- c.i + 1;
  consume (function '0' .. '9' -> true | _ -> false);
  if peek c = Some '.' then begin
    c.i <- c.i + 1;
    consume (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    c.i <- c.i + 1;
    (match peek c with
    | Some ('+' | '-') -> c.i <- c.i + 1
    | _ -> ());
    consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  if c.i = start then fail start "expected a value";
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> f
  | None -> fail start "invalid number"

let rec parse_value c depth =
  if depth > 512 then fail c.i "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c.i "expected a value, found end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.i <- c.i + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value c (depth + 1) :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          go ()
        | Some ']' -> c.i <- c.i + 1
        | _ -> fail c.i "expected ',' or ']'"
      in
      go ();
      Arr (List.rev !items)
    end
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.i <- c.i + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          go ()
        | Some '}' -> c.i <- c.i + 1
        | _ -> fail c.i "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; i = 0 } in
  match
    let v = parse_value c 0 in
    skip_ws c;
    if c.i <> String.length s then fail c.i "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (m, pos) -> Error (Printf.sprintf "%s at byte %d" m pos)

(* ---- printing --------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let int n = Num (float_of_int n)
let str s = Str s

(* ---- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let mem_str k v = Option.bind (member k v) to_str
let mem_int k v = Option.bind (member k v) to_int
let mem_bool k v = Option.bind (member k v) to_bool
