module Defs = Csp_lang.Defs
module Process = Csp_lang.Process
module Vset = Csp_lang.Vset

type t = { defs : Defs.t; main : string }

let make ~defs ~main =
  match Defs.lookup defs main with
  | Some _ -> { defs; main }
  | None -> invalid_arg ("Scenario.make: process " ^ main ^ " is not defined")

let process t = Process.ref_ t.main
let def_list defs = List.filter_map (Defs.lookup defs) (Defs.names defs)

let size t =
  List.fold_left
    (fun acc (d : Defs.def) -> acc + Process.size d.Defs.body)
    0 (def_list t.defs)

let def_equal (a : Defs.def) (b : Defs.def) =
  String.equal a.Defs.name b.Defs.name
  && (match (a.Defs.param, b.Defs.param) with
     | None, None -> true
     | Some (x, m), Some (y, n) -> String.equal x y && Vset.equal m n
     | _ -> false)
  && Process.equal a.Defs.body b.Defs.body

let equal a b =
  String.equal a.main b.main
  &&
  let da = def_list a.defs and db = def_list b.defs in
  List.length da = List.length db && List.for_all2 def_equal da db

let to_csp ?(header = []) t =
  String.concat "\n"
    (List.map (fun l -> "-- " ^ l) header @ [ Csp_syntax.Printer.defs t.defs ])

let pp ppf t = Format.pp_print_string ppf (to_csp t)
