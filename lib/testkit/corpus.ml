module Parser = Csp_syntax.Parser

type entry = {
  path : string;
  oracle : string;
  seed : int option;
  scenario : Scenario.t;
}

let header_value line key =
  let prefix = "-- " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.equal (String.sub line 0 (String.length prefix)) prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let headers text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         List.find_map
           (fun key ->
             Option.map (fun v -> (key, v)) (header_value line key))
           [ "oracle"; "seed"; "main" ])

let read path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | text -> (
    let hs = headers text in
    match List.assoc_opt "oracle" hs with
    | None -> Error (path ^ ": missing '-- oracle:' header")
    | Some oracle -> (
      let seed =
        Option.bind (List.assoc_opt "seed" hs) int_of_string_opt
      in
      let main = Option.value ~default:"main" (List.assoc_opt "main" hs) in
      match Parser.parse_file text with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok file -> (
        match Scenario.make ~defs:file.Parser.defs ~main with
        | scenario -> Ok { path; oracle; seed; scenario }
        | exception Invalid_argument m -> Error (path ^ ": " ^ m))))

let read_exn path =
  match read path with Ok e -> e | Error m -> failwith m

let read_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".csp")
  |> List.sort String.compare
  |> List.map (fun f -> read_exn (Filename.concat dir f))

let content ~oracle ?seed scenario =
  let header =
    [ "fuzz counterexample — replayed by test_conformance"; "oracle: " ^ oracle ]
    @ (match seed with
      | Some n -> [ "seed: " ^ string_of_int n ]
      | None -> [])
    @
    if String.equal scenario.Scenario.main "main" then []
    else [ "main: " ^ scenario.Scenario.main ]
  in
  Scenario.to_csp ~header scenario ^ "\n"

let write ~dir ~oracle ?seed ?stem scenario =
  let text = content ~oracle ?seed scenario in
  let stem =
    match stem with
    | Some s -> s
    | None -> Printf.sprintf "%s-%08x" oracle (Hashtbl.hash text)
  in
  let path = Filename.concat dir (stem ^ ".csp") in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path
