module Value = Csp_trace.Value
module Expr = Csp_lang.Expr
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs

let rec process p : Process.t Seq.t =
  match p with
  | Process.Stop -> Seq.empty
  | Process.Ref _ -> Seq.return Process.Stop
  | Process.Output (c, e, k) ->
    Seq.append
      (List.to_seq [ Process.Stop; k ])
      (Seq.append
         (if Expr.equal e (Expr.int 0) then Seq.empty
          else Seq.return (Process.Output (c, Expr.int 0, k)))
         (Seq.map (fun k' -> Process.Output (c, e, k')) (process k)))
  | Process.Input (c, x, m, k) ->
    (* dropping the prefix removes the binder: substitute so the
       continuation stays closed *)
    let k0 = Process.subst_value x (Value.Int 0) k in
    Seq.append
      (List.to_seq [ Process.Stop; k0 ])
      (Seq.map (fun k' -> Process.Input (c, x, m, k')) (process k))
  | Process.Choice (a, b) ->
    Seq.append
      (List.to_seq [ Process.Stop; a; b ])
      (Seq.append
         (Seq.map (fun a' -> Process.Choice (a', b)) (process a))
         (Seq.map (fun b' -> Process.Choice (a, b')) (process b)))
  | Process.Par (x, y, a, b) ->
    Seq.append
      (List.to_seq [ Process.Stop; a; b ])
      (Seq.append
         (Seq.map (fun a' -> Process.Par (x, y, a', b)) (process a))
         (Seq.map (fun b' -> Process.Par (x, y, a, b')) (process b)))
  | Process.Hide (l, q) ->
    Seq.append
      (List.to_seq [ Process.Stop; q ])
      (Seq.map (fun q' -> Process.Hide (l, q')) (process q))

(* A candidate environment is admissible when every reference of every
   remaining body resolves and the whole environment is still well
   guarded — shrinking must not change the failure into an [Undefined]
   or [Unproductive] crash. *)
let admissible defs =
  let ds = Scenario.def_list defs in
  List.for_all
    (fun (d : Defs.def) ->
      List.for_all
        (fun r -> Defs.lookup defs r <> None)
        (Process.refs d.Defs.body))
    ds
  && Result.is_ok (Defs.well_guarded defs)

let scenario (s : Scenario.t) : Scenario.t Seq.t =
  let ds = Scenario.def_list s.Scenario.defs in
  let drops =
    List.to_seq ds
    |> Seq.filter_map (fun (d : Defs.def) ->
           if String.equal d.Defs.name s.Scenario.main then None
           else
             let remaining =
               List.filter
                 (fun (d' : Defs.def) ->
                   not (String.equal d'.Defs.name d.Defs.name))
                 ds
             in
             let defs' = Defs.of_list remaining in
             if admissible defs' then Some { s with Scenario.defs = defs' }
             else None)
  in
  let body_shrinks =
    List.to_seq ds
    |> Seq.concat_map (fun (d : Defs.def) ->
           process d.Defs.body
           |> Seq.filter_map (fun body' ->
                  let defs' =
                    Defs.of_list
                      (List.map
                         (fun (d' : Defs.def) ->
                           if String.equal d'.Defs.name d.Defs.name then
                             { d' with Defs.body = body' }
                           else d')
                         ds)
                  in
                  if admissible defs' then
                    Some { s with Scenario.defs = defs' }
                  else None))
  in
  Seq.append drops body_shrinks
