(** Coverage maps over the Obs snapshot, and the generation-bias
    feedback loop of the coverage-guided fuzzer.

    A {e feature} is a semantic counter that moved while a case ran,
    bucketed AFL-style by log₂ of the delta: ["sat.trace_evals:5"]
    means "this input made the sat-checker evaluate 32–63 traces".
    The feature domain is restricted to counters that are a function
    of the case alone (fresh-engine cache statistics, semantic work
    counters, per-oracle verdicts) — process-global unique-table and
    pool statistics are history-dependent and would break seed
    replay; wall-clock timer histograms are reported separately by
    {!timer_features} and never hashed.

    The resulting map is deterministic: same seed, same input, same
    feature set, same {!hash_features} — the property
    [test_coverage.ml] pins down and the CI coverage leg relies on. *)

type feature = string

val stable_key : string -> bool
(** Is this snapshot key part of the deterministic feature domain? *)

val diff :
  (string * Csp_obs.Obs.value) list ->
  (string * Csp_obs.Obs.value) list ->
  feature list
(** [diff before after] — one feature per stable integer counter that
    increased, bucketed by log₂ of the increase. *)

val probe : (unit -> 'a) -> 'a * feature list
(** Run a thunk and diff the snapshot around it.  Serialised by a
    mutex so concurrent probes cannot attribute one case's counter
    movement to another. *)

val timer_features : unit -> feature list
(** Occupied log₂(ns) timer-histogram slots, as ["timer@slot"]
    features.  Wall-clock dependent — informational only, excluded
    from hashes and from guided generation. *)

val hash_features : feature list -> int64
(** Order-insensitive FNV-1a over the deduplicated feature list;
    stable across runs and architectures. *)

val hash_counterexample : oracle:string -> Scenario.t -> int64
(** Dedup key for a shrunk counterexample: FNV-1a of the oracle name
    and the printed scenario. *)

val pp_hash : Format.formatter -> int64 -> unit
(** 16 hex digits. *)

(** The set of features seen so far in a campaign. *)
module Map : sig
  type t

  val create : unit -> t
  val distinct : t -> int
  val mem : t -> feature -> bool

  val add : t -> feature list -> feature list
  (** Record a case's features; returns the ones not seen before (in
      input order).  A non-empty result admits the case to the
      corpus. *)

  val features : t -> feature list
  (** Every feature seen, sorted. *)
end

(** A corpus member: the scenario, its full feature set and the
    feature hash. *)
type entry = {
  case : int;
  scenario : Scenario.t;
  features : feature list;  (** full per-case feature set, sorted *)
  hash : int64;  (** {!hash_features} of [features] *)
}

val entry : case:int -> scenario:Scenario.t -> feature list -> entry

val minimise : entry list -> entry list
(** Greedy set cover, largest-gain first with ties to the earliest
    case: the result covers exactly the union of the input feature
    sets, subsumed entries drop out, and minimising twice returns the
    first result unchanged.  Sorted by case. *)

(** Shape statistics of a scenario, used for credit assignment. *)
type shape = {
  sends : int;
  recvs : int;
  choices : int;
  pars : int;
  hides : int;
  refs : int;
  size : int;
  chans : int;
}

val shape_of : Scenario.t -> shape

(** The feedback loop: coverage-gaining scenarios vote for the
    operator mix, term depth and channel arity that produced them;
    {!Bias.params} folds the votes into {!Gen.params} for the next
    batch.  Deterministic — no clocks, no randomness. *)
module Bias : sig
  type t

  val create : unit -> t

  val observe : t -> Scenario.t -> gained:int -> unit
  (** Credit the scenario's shape if it gained coverage (and reset
      the stagnation counter). *)

  val stagnate : t -> unit
  (** Note a batch that gained nothing; successive calls cycle the
      parameters through fixed escalations (deeper terms, wider
      channel pool, operator emphasis). *)

  val params : ?explore:int -> t -> Gen.params
  (** Current biased generation parameters, clamped to the safe
      ranges via {!Gen.clamp_params}.  [explore] (default 0) shifts
      the escalation cycle deterministically on top of any recorded
      stagnation — the guided driver sweeps it over its exploration
      cases so successive draws probe different parameter regions. *)
end
