(** Differential conformance oracles.

    Each oracle is a {e deterministic} predicate on a scenario that
    cross-checks two or more of the repository's semantic pipelines
    against each other (the differential-model methodology: the paper's
    inference rules, its denotational prefix-closure model and the
    operational trace enumeration are three views of one process, and
    any disagreement within the documented-exact fragment is a bug in
    one of them).  Determinism is what makes the corpus replayable: a
    corpus entry records only the scenario and the oracle name.

    The registry {!all} currently holds six oracles:

    - [closure-kernel]: every memoised operation of the hash-consed
      {!Csp_semantics.Closure} agrees with the executable specification
      {!Csp_semantics.Closure_ref}, and hash-consing is canonical
      (pointer equality ⇔ set equality);
    - [op-vs-deno]: {!Csp_semantics.Step.traces} and
      {!Csp_semantics.Denote.denote} produce the same prefix closure up
      to the depth bound, for the main process and every definition;
    - [refinement]: trace, failures and bisimulation views cohere —
      choice is trace union, failures refinement implies trace
      refinement, strong bisimilarity implies trace equality, and the
      §4 [STOP | P] identities hold where documented;
    - [prover-sound]: any [P sat R] the proof system certifies is never
      refuted by bounded trace enumeration, and every [Sat] refutation
      is a genuine trace of [P] on which [R] evaluates false;
    - [choreo-refine]: a choreography derived deterministically from
      the scenario ({!Csp.Models.Choreo.generate} seeded by the
      scenario text) projects to a deadlock-free network whose traces
      are exactly the global interaction sequence's, under the
      interpreted and the compiled engine alike;
    - [abstract-sound]: the {!Csp_abstraction} layer over-approximates
      — erasing ({!Csp_abstraction.Chanabs.ignore_bases}) or
      value-projecting ({!Csp_abstraction.Chanabs.project}, exact
      fragment) a scenario channel keeps the image of every bounded
      concrete trace inside the transformed process, the
      counter-abstract LTS of a preset family (picked by the scenario
      seed at n ∈ {2,3,4}) accepts every erased concrete-model trace,
      and a {!Csp_abstraction.Family.check_family} certificate
      transfers to the concrete instances. *)

type verdict = Pass | Fail of string

type t = {
  name : string;
  doc : string;
  check : Scenario.t -> verdict;  (** never raises; deterministic *)
}

val depth : int
(** The trace depth bound every oracle uses (4). *)

val step_config : Csp_lang.Defs.t -> Csp_semantics.Step.config
val denote_config : Csp_lang.Defs.t -> Csp_semantics.Denote.config
(** The shared test configuration: [Sampler.nat_bound 2], default fuel
    budgets — the configuration under which the pipelines are
    documented to agree exactly on the generated fragment. *)

val closure_kernel : t
val op_vs_deno : t
val refinement : t
val prover_sound : t
val choreo_refine : t
val abstract_sound : t

val all : t list
val find : string -> t option
val names : unit -> string list

val cases_run : t -> int
(** Process-wide count of scenarios this oracle has judged (fuzzing,
    corpus replay and direct calls alike) — the [oracle.<name>.cases]
    counter of {!Csp_obs.Obs.snapshot}.  Counts are cumulative; callers
    wanting a per-run figure should difference two readings. *)
