(** Fuzzing scenarios: a definition environment plus a distinguished
    process under test.

    A scenario is the unit every generator produces, every oracle
    examines and every corpus file persists.  Keeping the process under
    test as a {e name} in the environment (rather than a bare term)
    means a scenario round-trips through the concrete syntax unchanged:
    the corpus format is exactly a [.csp] definition file whose header
    comments carry the oracle metadata. *)

type t = {
  defs : Csp_lang.Defs.t;  (** includes the definition of [main] *)
  main : string;           (** the process under test, defined in [defs] *)
}

val make : defs:Csp_lang.Defs.t -> main:string -> t
(** @raise Invalid_argument when [main] is not defined in [defs]. *)

val process : t -> Csp_lang.Process.t
(** The process under test, as a reference to its definition. *)

val def_list : Csp_lang.Defs.t -> Csp_lang.Defs.def list
(** The definitions of an environment, in declaration order. *)

val size : t -> int
(** Total AST size of every definition body — the measure the shrinker
    drives down. *)

val equal : t -> t -> bool

val to_csp : ?header:string list -> t -> string
(** The scenario as a parseable [.csp] definition file; each [header]
    line is emitted as a leading [--] comment. *)

val pp : Format.formatter -> t -> unit
