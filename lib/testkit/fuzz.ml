module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* Campaign-level telemetry: cases generated, shrink candidates
   evaluated, and successful shrink steps (each one a strictly smaller
   failing scenario).  Per-oracle case/verdict counters live in
   [Oracle.make]; everything here is observation only — the generator
   and verdicts never read a counter or a clock. *)
let cases_generated = Obs.Counter.make "fuzz.cases"
let shrink_evals = Obs.Counter.make "fuzz.shrink_evals"
let shrink_steps = Obs.Counter.make "fuzz.shrink_steps"

type config = {
  seed : int;
  max_cases : int;
  budget : float option;
  oracles : Oracle.t list;
  max_shrink : int;
  jobs : int;
}

let default_config =
  {
    seed = 0;
    max_cases = 200;
    budget = None;
    oracles = Oracle.all;
    max_shrink = 500;
    jobs = 1;
  }

type counterexample = {
  case : int;
  oracle : string;
  detail : string;
  scenario : Scenario.t;
  original : Scenario.t;
}

type report = {
  cases : int;
  elapsed : float;
  exhausted : bool;
  oracle_runs : (string * int) list;
  counterexamples : counterexample list;
}

type coverage_report = {
  distinct : int;
  curve : (int * int) list;
  corpus : Coverage.entry list;
  minimised : Coverage.entry list;
  timer_slots : int;
}

(* Two failing cases frequently shrink to the same minimal scenario;
   reporting both tells the user nothing.  Keyed by (oracle, shrunk
   text), keeping the lowest case index — a pure function of the
   per-case verdicts, so sharded runs dedup identically. *)
let dedup_counterexamples cexs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      let h = Coverage.hash_counterexample ~oracle:c.oracle c.scenario in
      if Hashtbl.mem seen h then false
      else begin
        Hashtbl.replace seen h ();
        true
      end)
    cexs

let shrink ~(oracle : Oracle.t) ~max_steps scenario detail =
  let evals = ref 0 in
  let fails sc =
    incr evals;
    Obs.Counter.incr shrink_evals;
    match oracle.Oracle.check sc with
    | Oracle.Fail d -> Some d
    | Oracle.Pass -> None
  in
  let rec go sc detail =
    let rec pick seq =
      if !evals >= max_steps then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) -> (
          match fails cand with
          | Some d -> Some (cand, d)
          | None -> pick rest)
    in
    match pick (Shrink.scenario sc) with
    | Some (sc', d') ->
      Obs.Counter.incr shrink_steps;
      go sc' d'
    | None -> (sc, detail)
  in
  Obs.span ~cat:"fuzz" ("shrink:" ^ oracle.Oracle.name) (fun () ->
      go scenario detail)

(* One case, self-contained: the generator draws from a private state
   seeded by (run seed, case index), so a case's scenario and verdict
   depend on nothing but the configuration and its own index — the
   property that makes the sharded runner agree with the sequential
   one corpus-for-corpus.  [runs] counters are atomic because cases
   execute concurrently under [jobs > 1]. *)
let check_scenario cfg runs case sc =
  Obs.Counter.incr cases_generated;
  Obs.span ~cat:"fuzz" "case" ~args:(fun () -> [ ("case", Obs.Int case) ])
  @@ fun () ->
  List.filter_map
    (fun (o : Oracle.t) ->
      Atomic.incr (List.assoc o.Oracle.name runs);
      match o.Oracle.check sc with
      | Oracle.Pass -> None
      | Oracle.Fail detail ->
        let scenario, detail =
          shrink ~oracle:o ~max_steps:cfg.max_shrink sc detail
        in
        Some { case; oracle = o.Oracle.name; detail; scenario; original = sc })
    cfg.oracles

let generate_case ?(params = Gen.default) cfg case =
  let rand = Random.State.make [| cfg.seed; case |] in
  QCheck2.Gen.generate1 ~rand (Gen.scenario_with params)

let check_case cfg runs case = check_scenario cfg runs case (generate_case cfg case)

let run ?(on_case = fun _ -> ()) ?pool cfg =
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  let runs =
    List.map (fun (o : Oracle.t) -> (o.Oracle.name, Atomic.make 0)) cfg.oracles
  in
  let finish cases rev_groups =
    {
      cases;
      elapsed = Unix.gettimeofday () -. t0;
      exhausted = cases < cfg.max_cases;
      oracle_runs = List.map (fun (n, r) -> (n, Atomic.get r)) runs;
      counterexamples = dedup_counterexamples (List.concat (List.rev rev_groups));
    }
  in
  let sequential () =
    let rec loop case acc =
      if case >= cfg.max_cases || over_budget () then finish case acc
      else begin
        on_case case;
        loop (case + 1) (check_case cfg runs case :: acc)
      end
    in
    loop 0 []
  in
  let sharded pool =
    (* every case is an independent task; the pool's domains claim them
       dynamically.  With no wall-clock budget the outcome is the
       sequential one exactly; a budget stops whichever cases have not
       started yet (a different subset than sequentially, since cases
       finish out of order — the per-case verdicts still reproduce). *)
    let results =
      Pool.parallel_map pool
        (fun case ->
          if over_budget () then None
          else begin
            on_case case;
            Some (check_case cfg runs case)
          end)
        (Array.init cfg.max_cases Fun.id)
    in
    let cases =
      Array.fold_left
        (fun n -> function Some _ -> n + 1 | None -> n)
        0 results
    in
    let groups =
      Array.fold_left
        (fun acc -> function Some cex -> cex :: acc | None -> acc)
        [] results
    in
    finish cases groups
  in
  match pool with
  | Some p when Pool.domains p > 1 -> sharded p
  | Some _ -> sequential ()
  | None ->
    if cfg.jobs > 1 then Pool.with_pool ~domains:cfg.jobs sharded
    else sequential ()

(* Cases per bias-parameter refresh.  Also the stagnation quantum: a
   whole batch without a new feature escalates the generation
   parameters one step. *)
let coverage_batch = 16

(* The coverage-guided campaign.  Deliberately sequential whatever
   [cfg.jobs] says: guided generation is a feedback loop — case [i]'s
   parameters depend on the coverage gained by cases [0..i-1] — and
   the snapshot probe must bracket exactly one case to attribute
   counter movement correctly.  Sequentiality is also what makes the
   run deterministic at any [--jobs]; the flag still shards the plain
   [run] path.  [guided:false] keeps the probing and the map but
   generates from {!Gen.default} throughout — the blind baseline the
   bench compares against at equal budget.

   Guided generation is a portfolio, not a replacement distribution:
   even cases draw from {!Gen.default} — because the generator is
   seeded per case, these are byte-identical to the blind baseline's
   draws — while odd cases draw from the credit-biased parameters with
   the escalation cycle swept one step per batch.  The guided run
   therefore keeps the baseline's breadth on half its budget and
   spends the other half probing shapes the default distribution
   reaches rarely, which is what lets it dominate blind generation at
   an equal case count. *)
let run_coverage ?(on_case = fun _ -> ()) ?(guided = true) cfg =
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  let runs =
    List.map (fun (o : Oracle.t) -> (o.Oracle.name, Atomic.make 0)) cfg.oracles
  in
  let map = Coverage.Map.create () in
  let bias = Coverage.Bias.create () in
  let corpus = ref [] in
  let curve = ref [] in
  let next_checkpoint = ref 1 in
  let rec loop case batch_gained acc =
    if case >= cfg.max_cases || over_budget () then (case, acc)
    else begin
      on_case case;
      let params =
        if (not guided) || case land 1 = 0 then Gen.default
        else Coverage.Bias.params ~explore:(1 + (case / 2 mod 6)) bias
      in
      let sc = generate_case ~params cfg case in
      let cexs, features =
        Coverage.probe (fun () -> check_scenario cfg runs case sc)
      in
      let fresh = Coverage.Map.add map features in
      let gained = List.length fresh in
      if guided then Coverage.Bias.observe bias sc ~gained;
      if gained > 0 then
        corpus := Coverage.entry ~case ~scenario:sc features :: !corpus;
      let ran = case + 1 in
      if ran >= !next_checkpoint then begin
        curve := (ran, Coverage.Map.distinct map) :: !curve;
        next_checkpoint := !next_checkpoint * 2
      end;
      let batch_gained = batch_gained + gained in
      let batch_gained =
        if ran mod coverage_batch = 0 then begin
          if batch_gained = 0 && guided then Coverage.Bias.stagnate bias;
          0
        end
        else batch_gained
      in
      loop ran batch_gained (cexs :: acc)
    end
  in
  let cases, rev_groups = loop 0 0 [] in
  let curve =
    match !curve with
    | (c, _) :: _ when c = cases -> List.rev !curve
    | _ -> List.rev ((cases, Coverage.Map.distinct map) :: !curve)
  in
  let corpus = List.rev !corpus in
  let report =
    {
      cases;
      elapsed = Unix.gettimeofday () -. t0;
      exhausted = cases < cfg.max_cases;
      oracle_runs = List.map (fun (n, r) -> (n, Atomic.get r)) runs;
      counterexamples =
        dedup_counterexamples (List.concat (List.rev rev_groups));
    }
  in
  ( report,
    {
      distinct = Coverage.Map.distinct map;
      curve;
      corpus;
      minimised = Coverage.minimise corpus;
      timer_slots = List.length (Coverage.timer_features ());
    } )

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>FAIL [%s] case %d (%d nodes, shrunk from %d): %s@,%s@]" c.oracle
    c.case (Scenario.size c.scenario)
    (Scenario.size c.original)
    c.detail
    (Scenario.to_csp ~header:[ "oracle: " ^ c.oracle ] c.scenario)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a%d case(s) in %.2fs (%s); oracle runs: %s; %d \
                      counterexample(s)@]"
    (fun ppf -> function
      | [] -> ignore ppf
      | cex ->
        List.iter (fun c -> Format.fprintf ppf "%a@," pp_counterexample c) cex)
    r.counterexamples r.cases r.elapsed
    (if r.exhausted then "budget exhausted" else "completed")
    (String.concat ", "
       (List.map
          (fun (n, k) -> Printf.sprintf "%s=%d" n k)
          r.oracle_runs))
    (List.length r.counterexamples)

let pp_coverage ppf (r, cov) =
  let curve =
    String.concat " "
      (List.map (fun (c, d) -> Printf.sprintf "%d:%d" c d) cov.curve)
  in
  Format.fprintf ppf
    "@[<v>coverage: %d distinct feature(s)@,\
     coverage curve: %s@,\
     corpus: %d entr(ies), %d after minimisation@,\
     timer slots: %d (wall-clock dependent; excluded from feature hashes)@,\
     execs/sec: %.1f@]"
    cov.distinct curve
    (List.length cov.corpus)
    (List.length cov.minimised)
    cov.timer_slots
    (if r.elapsed > 0. then float_of_int r.cases /. r.elapsed else 0.)
