module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* Campaign-level telemetry: cases generated, shrink candidates
   evaluated, and successful shrink steps (each one a strictly smaller
   failing scenario).  Per-oracle case/verdict counters live in
   [Oracle.make]; everything here is observation only — the generator
   and verdicts never read a counter or a clock. *)
let cases_generated = Obs.Counter.make "fuzz.cases"
let shrink_evals = Obs.Counter.make "fuzz.shrink_evals"
let shrink_steps = Obs.Counter.make "fuzz.shrink_steps"

type config = {
  seed : int;
  max_cases : int;
  budget : float option;
  oracles : Oracle.t list;
  max_shrink : int;
  jobs : int;
}

let default_config =
  {
    seed = 0;
    max_cases = 200;
    budget = None;
    oracles = Oracle.all;
    max_shrink = 500;
    jobs = 1;
  }

type counterexample = {
  case : int;
  oracle : string;
  detail : string;
  scenario : Scenario.t;
  original : Scenario.t;
}

type report = {
  cases : int;
  elapsed : float;
  oracle_runs : (string * int) list;
  counterexamples : counterexample list;
}

let shrink ~(oracle : Oracle.t) ~max_steps scenario detail =
  let evals = ref 0 in
  let fails sc =
    incr evals;
    Obs.Counter.incr shrink_evals;
    match oracle.Oracle.check sc with
    | Oracle.Fail d -> Some d
    | Oracle.Pass -> None
  in
  let rec go sc detail =
    let rec pick seq =
      if !evals >= max_steps then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) -> (
          match fails cand with
          | Some d -> Some (cand, d)
          | None -> pick rest)
    in
    match pick (Shrink.scenario sc) with
    | Some (sc', d') ->
      Obs.Counter.incr shrink_steps;
      go sc' d'
    | None -> (sc, detail)
  in
  Obs.span ~cat:"fuzz" ("shrink:" ^ oracle.Oracle.name) (fun () ->
      go scenario detail)

(* One case, self-contained: the generator draws from a private state
   seeded by (run seed, case index), so a case's scenario and verdict
   depend on nothing but the configuration and its own index — the
   property that makes the sharded runner agree with the sequential
   one corpus-for-corpus.  [runs] counters are atomic because cases
   execute concurrently under [jobs > 1]. *)
let check_case cfg runs case =
  Obs.Counter.incr cases_generated;
  Obs.span ~cat:"fuzz" "case" ~args:(fun () -> [ ("case", Obs.Int case) ])
  @@ fun () ->
  let rand = Random.State.make [| cfg.seed; case |] in
  let sc = QCheck2.Gen.generate1 ~rand Gen.scenario in
  List.filter_map
    (fun (o : Oracle.t) ->
      Atomic.incr (List.assoc o.Oracle.name runs);
      match o.Oracle.check sc with
      | Oracle.Pass -> None
      | Oracle.Fail detail ->
        let scenario, detail =
          shrink ~oracle:o ~max_steps:cfg.max_shrink sc detail
        in
        Some { case; oracle = o.Oracle.name; detail; scenario; original = sc })
    cfg.oracles

let run ?(on_case = fun _ -> ()) ?pool cfg =
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  let runs =
    List.map (fun (o : Oracle.t) -> (o.Oracle.name, Atomic.make 0)) cfg.oracles
  in
  let finish cases rev_groups =
    {
      cases;
      elapsed = Unix.gettimeofday () -. t0;
      oracle_runs = List.map (fun (n, r) -> (n, Atomic.get r)) runs;
      counterexamples = List.concat (List.rev rev_groups);
    }
  in
  let sequential () =
    let rec loop case acc =
      if case >= cfg.max_cases || over_budget () then finish case acc
      else begin
        on_case case;
        loop (case + 1) (check_case cfg runs case :: acc)
      end
    in
    loop 0 []
  in
  let sharded pool =
    (* every case is an independent task; the pool's domains claim them
       dynamically.  With no wall-clock budget the outcome is the
       sequential one exactly; a budget stops whichever cases have not
       started yet (a different subset than sequentially, since cases
       finish out of order — the per-case verdicts still reproduce). *)
    let results =
      Pool.parallel_map pool
        (fun case ->
          if over_budget () then None
          else begin
            on_case case;
            Some (check_case cfg runs case)
          end)
        (Array.init cfg.max_cases Fun.id)
    in
    let cases =
      Array.fold_left
        (fun n -> function Some _ -> n + 1 | None -> n)
        0 results
    in
    let groups =
      Array.fold_left
        (fun acc -> function Some cex -> cex :: acc | None -> acc)
        [] results
    in
    finish cases groups
  in
  match pool with
  | Some p when Pool.domains p > 1 -> sharded p
  | Some _ -> sequential ()
  | None ->
    if cfg.jobs > 1 then Pool.with_pool ~domains:cfg.jobs sharded
    else sequential ()

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>FAIL [%s] case %d (%d nodes, shrunk from %d): %s@,%s@]" c.oracle
    c.case (Scenario.size c.scenario)
    (Scenario.size c.original)
    c.detail
    (Scenario.to_csp ~header:[ "oracle: " ^ c.oracle ] c.scenario)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a%d case(s) in %.2fs; oracle runs: %s; %d \
                      counterexample(s)@]"
    (fun ppf -> function
      | [] -> ignore ppf
      | cex ->
        List.iter (fun c -> Format.fprintf ppf "%a@," pp_counterexample c) cex)
    r.counterexamples r.cases r.elapsed
    (String.concat ", "
       (List.map
          (fun (n, k) -> Printf.sprintf "%s=%d" n k)
          r.oracle_runs))
    (List.length r.counterexamples)
