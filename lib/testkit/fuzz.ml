type config = {
  seed : int;
  max_cases : int;
  budget : float option;
  oracles : Oracle.t list;
  max_shrink : int;
}

let default_config =
  {
    seed = 0;
    max_cases = 200;
    budget = None;
    oracles = Oracle.all;
    max_shrink = 500;
  }

type counterexample = {
  case : int;
  oracle : string;
  detail : string;
  scenario : Scenario.t;
  original : Scenario.t;
}

type report = {
  cases : int;
  elapsed : float;
  oracle_runs : (string * int) list;
  counterexamples : counterexample list;
}

let shrink ~(oracle : Oracle.t) ~max_steps scenario detail =
  let evals = ref 0 in
  let fails sc =
    incr evals;
    match oracle.Oracle.check sc with
    | Oracle.Fail d -> Some d
    | Oracle.Pass -> None
  in
  let rec go sc detail =
    let rec pick seq =
      if !evals >= max_steps then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) -> (
          match fails cand with
          | Some d -> Some (cand, d)
          | None -> pick rest)
    in
    match pick (Shrink.scenario sc) with
    | Some (sc', d') -> go sc' d'
    | None -> (sc, detail)
  in
  go scenario detail

let run ?(on_case = fun _ -> ()) cfg =
  let rand = Random.State.make [| cfg.seed |] in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  let runs = List.map (fun (o : Oracle.t) -> (o.Oracle.name, ref 0)) cfg.oracles in
  let rec loop case acc =
    if case >= cfg.max_cases || over_budget () then (case, acc)
    else begin
      on_case case;
      let sc = QCheck2.Gen.generate1 ~rand Gen.scenario in
      let failures =
        List.filter_map
          (fun (o : Oracle.t) ->
            incr (List.assoc o.Oracle.name runs);
            match o.Oracle.check sc with
            | Oracle.Pass -> None
            | Oracle.Fail detail ->
              let scenario, detail =
                shrink ~oracle:o ~max_steps:cfg.max_shrink sc detail
              in
              Some
                { case; oracle = o.Oracle.name; detail; scenario; original = sc })
          cfg.oracles
      in
      loop (case + 1) (List.rev_append failures acc)
    end
  in
  let cases, rev_cex = loop 0 [] in
  {
    cases;
    elapsed = Unix.gettimeofday () -. t0;
    oracle_runs = List.map (fun (n, r) -> (n, !r)) runs;
    counterexamples = List.rev rev_cex;
  }

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>FAIL [%s] case %d (%d nodes, shrunk from %d): %s@,%s@]" c.oracle
    c.case (Scenario.size c.scenario)
    (Scenario.size c.original)
    c.detail
    (Scenario.to_csp ~header:[ "oracle: " ^ c.oracle ] c.scenario)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a%d case(s) in %.2fs; oracle runs: %s; %d \
                      counterexample(s)@]"
    (fun ppf -> function
      | [] -> ignore ppf
      | cex ->
        List.iter (fun c -> Format.fprintf ppf "%a@," pp_counterexample c) cex)
    r.counterexamples r.cases r.elapsed
    (String.concat ", "
       (List.map
          (fun (n, k) -> Printf.sprintf "%s=%d" n k)
          r.oracle_runs))
    (List.length r.counterexamples)
