(** The differential fuzzing driver.

    Seeded and budgeted: with a fixed [seed] and [max_cases] (and no
    wall-clock budget) a run is fully deterministic — every case [i]
    draws its scenario from a private [Random.State] seeded by
    [(seed, i)], and every oracle is a deterministic function of the
    scenario.  Because cases are mutually independent, sharding them
    across domains ([jobs > 1]) yields the exact same corpus, verdicts
    and counterexamples as the sequential run — only wall-clock
    changes.  The wall-clock [budget] only ever stops cases that have
    not started (checked between cases sequentially, at task start when
    sharded), so the verdict of every case that did run is reproducible
    from the seed alone; under a budget the {e set} of cases that ran
    may differ between job counts. *)

type config = {
  seed : int;
  max_cases : int;            (** generated scenarios (default 200) *)
  budget : float option;      (** wall-clock seconds, checked between cases *)
  oracles : Oracle.t list;    (** default: {!Oracle.all} *)
  max_shrink : int;           (** oracle re-evaluations per shrink (default 500) *)
  jobs : int;                 (** worker domains sharding the cases (default 1) *)
}

val default_config : config

type counterexample = {
  case : int;                 (** index of the failing generated case *)
  oracle : string;
  detail : string;            (** the oracle's diagnosis, post-shrink *)
  scenario : Scenario.t;      (** the shrunk scenario *)
  original : Scenario.t;      (** the scenario as generated *)
}

type report = {
  cases : int;
  elapsed : float;
  exhausted : bool;
      (** the wall-clock budget expired before [max_cases] ran *)
  oracle_runs : (string * int) list;  (** checks executed, per oracle *)
  counterexamples : counterexample list;
      (** sorted by case index, deduplicated by (oracle, shrunk
          scenario) so equivalent failures report once *)
}

(** What a coverage campaign learned, alongside its {!report}. *)
type coverage_report = {
  distinct : int;  (** features in the final coverage map *)
  curve : (int * int) list;
      (** (cases run, distinct features) at geometric checkpoints
          1, 2, 4, … plus the final case count *)
  corpus : Coverage.entry list;
      (** every coverage-gaining case, in case order *)
  minimised : Coverage.entry list;  (** {!Coverage.minimise} of [corpus] *)
  timer_slots : int;
      (** occupied timer-histogram slots — wall-clock dependent,
          informational only *)
}

val shrink :
  oracle:Oracle.t -> max_steps:int -> Scenario.t -> string ->
  Scenario.t * string
(** Greedy minimisation: repeatedly move to the first {!Shrink}
    candidate on which the oracle still fails, until a local minimum or
    the evaluation budget is reached.  Returns the smaller scenario and
    its (possibly updated) failure detail. *)

val run : ?on_case:(int -> unit) -> ?pool:Csp_parallel.Pool.t -> config -> report
(** Runs the campaign.  With [jobs > 1] (or a multi-domain [pool],
    which takes precedence over [jobs] and is not shut down), cases
    are claimed dynamically by worker domains; [on_case] then fires
    from whichever domain runs the case, concurrently with others —
    keep it reentrant (the default progress printers are). *)

val run_coverage :
  ?on_case:(int -> unit) -> ?guided:bool -> config -> report * coverage_report
(** The coverage-guided campaign: each case runs under a snapshot
    probe, coverage-gaining cases join the corpus and (when [guided],
    the default) vote on the generation parameters of later cases via
    {!Coverage.Bias}.  Always sequential regardless of [cfg.jobs] —
    guided generation is a feedback loop, and sequentiality is what
    makes a fixed seed deterministic at any job count.
    [guided:false] keeps the probe and the map but draws every case
    from {!Gen.default}: the blind baseline for bench comparison. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Prints the diagnosis followed by the scenario as parseable [.csp]
    text (the same text {!Corpus.write} persists). *)

val pp_report : Format.formatter -> report -> unit

val pp_coverage : Format.formatter -> report * coverage_report -> unit
(** The machine-parseable coverage summary: distinct features, the
    growth curve as [cases:distinct] pairs, corpus sizes before and
    after minimisation, and execs/sec. *)
