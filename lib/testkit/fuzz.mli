(** The differential fuzzing driver.

    Seeded and budgeted: with a fixed [seed] and [max_cases] (and no
    wall-clock budget) a run is fully deterministic — the generator
    draws from a private [Random.State], and every oracle is a
    deterministic function of the scenario.  The wall-clock [budget]
    only ever stops the loop {e between} cases, so the verdict of every
    case that did run is reproducible from the seed alone. *)

type config = {
  seed : int;
  max_cases : int;            (** generated scenarios (default 200) *)
  budget : float option;      (** wall-clock seconds, checked between cases *)
  oracles : Oracle.t list;    (** default: {!Oracle.all} *)
  max_shrink : int;           (** oracle re-evaluations per shrink (default 500) *)
}

val default_config : config

type counterexample = {
  case : int;                 (** index of the failing generated case *)
  oracle : string;
  detail : string;            (** the oracle's diagnosis, post-shrink *)
  scenario : Scenario.t;      (** the shrunk scenario *)
  original : Scenario.t;      (** the scenario as generated *)
}

type report = {
  cases : int;
  elapsed : float;
  oracle_runs : (string * int) list;  (** checks executed, per oracle *)
  counterexamples : counterexample list;
}

val shrink :
  oracle:Oracle.t -> max_steps:int -> Scenario.t -> string ->
  Scenario.t * string
(** Greedy minimisation: repeatedly move to the first {!Shrink}
    candidate on which the oracle still fails, until a local minimum or
    the evaluation budget is reached.  Returns the smaller scenario and
    its (possibly updated) failure detail. *)

val run : ?on_case:(int -> unit) -> config -> report

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Prints the diagnosis followed by the scenario as parseable [.csp]
    text (the same text {!Corpus.write} persists). *)

val pp_report : Format.formatter -> report -> unit
