(** The replayable counterexample corpus.

    A corpus entry is an ordinary [.csp] definition file whose leading
    comments carry the replay metadata:

    {v
    -- oracle: op-vs-deno
    -- seed: 42
    p0 = a!0 -> p0
    main = chan a; p0
    v}

    The [oracle] header names the {!Oracle} that must re-examine the
    scenario on every replay — so disabling an oracle makes the
    conformance suite fail loudly rather than silently skip its corpus.
    The [seed] header is provenance only.  The process under test is
    the definition named [main] (overridable with a [-- main:] header). *)

type entry = {
  path : string;
  oracle : string;
  seed : int option;
  scenario : Scenario.t;
}

val write :
  dir:string -> oracle:string -> ?seed:int -> ?stem:string -> Scenario.t ->
  string
(** Persist a scenario; returns the path written.  The file name is
    [<stem>.csp] (default: derived from the oracle name and a content
    hash, so re-saving the same counterexample is idempotent). *)

val read : string -> (entry, string) result
val read_exn : string -> entry

val read_dir : string -> entry list
(** Every [*.csp] entry of the directory, sorted by file name.
    @raise Failure on the first unreadable entry — a corrupt corpus
    must fail the suite, not shrink it. *)
