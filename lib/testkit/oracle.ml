module Value = Csp_trace.Value
module Channel = Csp_trace.Channel
module Trace = Csp_trace.Trace
module History = Csp_trace.History
module Expr = Csp_lang.Expr
module Chan_set = Csp_lang.Chan_set
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module Closure = Csp_semantics.Closure
module Closure_ref = Csp_semantics.Closure_ref
module Sampler = Csp_semantics.Sampler
module Step = Csp_semantics.Step
module Denote = Csp_semantics.Denote
module Equiv = Csp_semantics.Equiv
module Failures = Csp_semantics.Failures
module Lts = Csp_semantics.Lts
module Bisim = Csp_semantics.Bisim
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion
module Sat = Csp_assertion.Sat
module Prover = Csp_assertion.Prover
module Sequent = Csp_proof.Sequent
module Tactic = Csp_proof.Tactic
module Obs = Csp_obs.Obs

type verdict = Pass | Fail of string
type t = { name : string; doc : string; check : Scenario.t -> verdict }

(* One engine per scenario: every oracle query below (operational
   traces, denotations, failures, LTS exploration, bisimulation) runs
   off the same configuration pair and shares its caches. *)
let depth = 4

let engine defs =
  Csp_semantics.Engine.create ~depth ~nat_bound:2 defs

let step_config defs = Csp_semantics.Engine.step_config (engine defs)
let denote_config defs = Csp_semantics.Engine.denote_config (engine defs)
let failf fmt = Format.kasprintf (fun m -> Fail m) fmt

let protect check s =
  try check s
  with e -> Fail ("uncaught exception: " ^ Printexc.to_string e)

(* Shortcut composition: run the checks in order, stop at the first
   failure. *)
let rec sequence = function
  | [] -> Pass
  | check :: rest -> (
    match check () with Pass -> sequence rest | Fail _ as f -> f)

(* The processes a scenario puts under test: [main] plus every
   definition (array definitions instantiated at both ends of their
   parameter domain). *)
let subjects (s : Scenario.t) =
  (s.Scenario.main, Scenario.process s)
  :: List.concat_map
       (fun n ->
         if String.equal n s.Scenario.main then []
         else
           match Defs.lookup s.Scenario.defs n with
           | Some { Defs.param = Some _; _ } ->
             [
               (n ^ "[0]", Process.Ref (n, Some (Expr.int 0)));
               (n ^ "[1]", Process.Ref (n, Some (Expr.int 1)));
             ]
           | _ -> [ (n, Process.ref_ n) ])
       (Defs.names s.Scenario.defs)

(* ---- oracle 1: hash-consed kernel vs reference trie ------------------ *)

(* Each subject's bounded trace closure is mirrored into the unshared
   reference representation, and every operation of the memoised kernel
   is replayed against its executable specification. *)

let agree what c r =
  if Closure_ref.equal (Closure_ref.of_closure c) r then Pass
  else failf "closure kernel: %s disagrees with Closure_ref" what

let closure_kernel_check (s : Scenario.t) =
  let cfg = step_config s.Scenario.defs in
  let pairs =
    List.map
      (fun (label, p) ->
        let c = Step.traces cfg ~depth p in
        (label, c, Closure_ref.of_closure c))
      (subjects s)
  in
  let per_subject (label, c, r) () =
    let in_a ch = String.equal (Channel.base ch) "a" in
    sequence
      [
        (fun () ->
          if
            List.sort Trace.compare (Closure.to_traces c)
            = List.sort Trace.compare (Closure_ref.to_traces r)
          then Pass
          else failf "%s: to_traces differ" label);
        (fun () ->
          if Closure.cardinal c = Closure_ref.cardinal r then Pass
          else
            failf "%s: cardinal %d (kernel) vs %d (ref)" label
              (Closure.cardinal c) (Closure_ref.cardinal r));
        (fun () ->
          if Closure.depth c = Closure_ref.depth r then Pass
          else
            failf "%s: depth %d (kernel) vs %d (ref)" label (Closure.depth c)
              (Closure_ref.depth r));
        (fun () ->
          let rec truncations k =
            if k > depth then Pass
            else
              match
                agree
                  (Printf.sprintf "%s: truncate %d" label k)
                  (Closure.truncate k c)
                  (Closure_ref.truncate k r)
              with
              | Pass -> truncations (k + 1)
              | Fail _ as f -> f
          in
          truncations 0);
        (fun () ->
          agree (label ^ ": hide {a}") (Closure.hide in_a c)
            (Closure_ref.hide in_a r));
        (fun () ->
          let count = Closure.fold_traces (fun _ n -> n + 1) c 0 in
          if count = Closure.cardinal c then Pass
          else failf "%s: fold_traces visits %d of %d" label count
              (Closure.cardinal c));
        (fun () ->
          let members = Closure.to_traces c in
          if
            List.for_all
              (fun t -> Closure.mem t c && Closure_ref.mem t r)
              members
          then
            agree (label ^ ": of_traces rebuild")
              (Closure.of_traces members)
              (Closure_ref.of_traces members)
          else failf "%s: a member trace fails mem" label);
      ]
  in
  let cross (la, ca, ra) (lb, cb, rb) () =
    let tag op = Printf.sprintf "%s %s %s" la op lb in
    sequence
      [
        (fun () -> agree (tag "union") (Closure.union ca cb)
            (Closure_ref.union ra rb));
        (fun () -> agree (tag "inter") (Closure.inter ca cb)
            (Closure_ref.inter ra rb));
        (fun () ->
          if Closure.subset ca cb = Closure_ref.subset ra rb then Pass
          else failf "%s: subset disagrees" (tag "subset"));
        (fun () ->
          (* hash-consing canonicity: pointer equality ⇔ set equality,
             and ids are in bijection with sets *)
          let canonical = Closure.equal ca cb
          and semantic = Closure_ref.equal ra rb in
          if canonical <> semantic then
            failf "%s: Closure.equal %b but Closure_ref.equal %b" la
              canonical semantic
          else if (Closure.id ca = Closure.id cb) <> canonical then
            failf "%s: id bijection broken" la
          else Pass);
        (fun () ->
          match Closure.first_difference ca cb with
          | None ->
            if Closure_ref.equal ra rb then Pass
            else failf "%s: first_difference None on unequal closures" la
          | Some w ->
            if Closure.mem w ca <> Closure.mem w cb then Pass
            else failf "%s: witness %s is in both or neither" la
                (Trace.to_string w));
      ]
  in
  let head = List.hd pairs in
  let pairwise = List.map (fun p -> cross head p) (List.tl pairs) in
  let union_all () =
    let cs = List.map (fun (_, c, _) -> c) pairs
    and rs = List.map (fun (_, _, r) -> r) pairs in
    agree "union_all" (Closure.union_all cs) (Closure_ref.union_all rs)
  in
  let par () =
    match pairs with
    | (_, ca, ra) :: (_, cb, rb) :: _ ->
      let in_x ch =
        List.exists (fun e -> Channel.equal e.Csp_trace.Event.chan ch)
          (Closure.events ca)
      and in_y ch =
        List.exists (fun e -> Channel.equal e.Csp_trace.Event.chan ch)
          (Closure.events cb)
      in
      agree "par" (Closure.par ~in_x ~in_y ca cb)
        (Closure_ref.par ~in_x ~in_y ra rb)
    | _ -> Pass
  in
  let interleave () =
    let _, c, _ = head in
    let small = Closure.truncate 2 c in
    let events =
      match Closure.events small with e :: _ -> [ e ] | [] -> []
    in
    agree "interleave"
      (Closure.interleave ~events ~extra:1 small)
      (Closure_ref.interleave ~events ~extra:1
         (Closure_ref.of_closure small))
  in
  sequence
    (List.map per_subject pairs
    @ pairwise
    @ [ union_all; par; interleave ])

(* ---- oracle 2: operational vs denotational --------------------------- *)

let op_vs_deno_check (s : Scenario.t) =
  let eng = engine s.Scenario.defs in
  let scfg = Csp_semantics.Engine.step_config eng
  and dcfg = Csp_semantics.Engine.denote_config eng in
  sequence
    (List.map
       (fun (label, p) () ->
         let o = Step.traces scfg ~depth p
         and d = Denote.denote dcfg ~depth p in
         if Closure.equal o d then Pass
         else
           let witness =
             match Closure.first_difference o d with
             | Some w ->
               Printf.sprintf "%s (%s only)" (Trace.to_string w)
                 (if Closure.mem w o then "operational" else "denotational")
             | None -> "no witness (first_difference is broken too)"
           in
           failf "%s: operational and denotational traces differ on %s"
             label witness)
       (subjects s))

(* ---- oracle 3: trace / failures / bisimulation coherence ------------- *)

let refinement_check (s : Scenario.t) =
  let eng = engine s.Scenario.defs in
  let cfg = Csp_semantics.Engine.step_config eng in
  let dcfg = Csp_semantics.Engine.denote_config eng in
  let p = Scenario.process s in
  let alt =
    match
      List.filter
        (fun (label, _) -> not (String.equal label s.Scenario.main))
        (subjects s)
    with
    | (_, q) :: _ -> q
    | [] -> Process.Stop
  in
  let q = Process.Choice (p, alt) in
  let tp = Step.traces cfg ~depth p
  and talt = Step.traces cfg ~depth alt
  and tq = Step.traces cfg ~depth q in
  let fp = Failures.failures ~choice:`Internal cfg ~depth p
  and fq = Failures.failures ~choice:`Internal cfg ~depth q in
  sequence
    [
      (fun () ->
        if Closure.equal tq (Closure.union tp talt) then Pass
        else Fail "traces(P|Q) is not traces(P) ∪ traces(Q)");
      (fun () ->
        if Closure.subset tp tq then Pass
        else Fail "traces(P) ⊄ traces(P|Q)");
      (fun () ->
        match Equiv.trace_refines ~depth cfg ~impl:p ~spec:q with
        | Ok () -> Pass
        | Error w ->
          failf "P does not trace-refine P|Q: witness %s" (Trace.to_string w));
      (fun () ->
        if Failures.refines fp fp then Pass
        else Fail "failures refinement is not reflexive");
      (fun () ->
        if Failures.refines fp fq then Pass
        else Fail "P does not failures-refine P|Q under the internal reading");
      (fun () ->
        (* failures refinement must imply trace refinement *)
        if not (Failures.refines fq fp) then Pass
        else
          match Equiv.trace_refines ~depth cfg ~impl:q ~spec:p with
          | Ok () -> Pass
          | Error w ->
            failf
              "P|Q failures-refines P but not trace-refines it: witness %s"
              (Trace.to_string w));
      (fun () ->
        (* strong bisimilarity is reflexive and implies trace equality;
           only meaningful when the bounded exploration completes *)
        let lp = Lts.explore cfg p and lq = Lts.explore cfg q in
        if not (lp.Lts.complete && lq.Lts.complete) then Pass
        else if not (Bisim.equivalent cfg p p) then
          Fail "P is not strongly bisimilar to itself"
        else if Bisim.equivalent cfg p q && not (Closure.equal tp tq) then
          Fail "P ~ P|Q by bisimulation but their trace sets differ"
        else Pass);
      (fun () ->
        if Equiv.stop_choice_identity ~depth dcfg p then Pass
        else Fail "denotationally STOP | P ≠ P (§4 identity broken)");
      (fun () ->
        let distinguished =
          Failures.distinguishes_stop_choice cfg ~depth p
        and immediate_deadlock =
          Failures.can_deadlock ~choice:`Internal cfg ~depth p = Some []
        in
        if distinguished = not immediate_deadlock then Pass
        else
          failf
            "failures model: distinguishes_stop_choice=%b but immediate \
             deadlock=%b"
            distinguished immediate_deadlock);
    ]

(* ---- oracle 4: prover soundness vs bounded enumeration ---------------- *)

(* Deterministic candidate specifications over the channels the
   scenario can touch: the templates of the paper's own proofs
   ([c ≤ d] prefix claims and [#c ≤ #d + k] counting claims). *)
let candidate_assertions (s : Scenario.t) =
  let chans =
    List.sort_uniq String.compare
      (Defs.channel_bases s.Scenario.defs (Scenario.process s))
  in
  let chans = List.filteri (fun i _ -> i < 3) chans in
  let prefix_claims =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun d ->
            if String.equal c d then None
            else Some (Assertion.prefix_le (Term.chan c) (Term.chan d)))
          chans)
      chans
  in
  let count_claims =
    match chans with
    | c :: d :: _ ->
      List.map
        (fun k ->
          Assertion.Cmp
            ( Assertion.Le,
              Term.Len (Term.chan c),
              Term.Add (Term.Len (Term.chan d), Term.int k) ))
        [ 0; 1 ]
    | _ -> []
  in
  let all = (Assertion.True :: prefix_claims) @ count_claims in
  List.filteri (fun i _ -> i < 8) all

(* a cheaper prover budget than the default: the oracle runs on
   hundreds of scenarios per fuzz pass *)
let prover_config =
  {
    Prover.default_config with
    Prover.max_cases = 2000;
    Prover.random_trials = 50;
  }

let prover_sound_check (s : Scenario.t) =
  let cfg = step_config s.Scenario.defs in
  let p = Scenario.process s in
  let ctx = Sequent.context s.Scenario.defs in
  let check_candidate r () =
    let outcome = Sat.check ~depth cfg p r in
    sequence
      [
        (fun () ->
          (* a Sat refutation must be a genuine trace of P on which R
             evaluates false *)
          match outcome with
          | Sat.Holds _ -> Pass
          | Sat.Fails { trace } ->
            if not (Step.accepts_trace cfg p trace) then
              failf "Sat counterexample %s is not a trace of %s"
                (Trace.to_string trace) s.Scenario.main
            else (
              let tctx = Term.ctx ~hist:(History.of_trace trace) () in
              match Assertion.eval tctx r with
              | false -> Pass
              | true ->
                failf "Sat counterexample %s actually satisfies %s"
                  (Trace.to_string trace)
                  (Assertion.to_string r)
              | exception Term.Eval_error _ -> Pass));
        (fun () ->
          (* anything the proof system certifies must survive bounded
             enumeration *)
          let tables =
            Tactic.tables ~invariants:[ (s.Scenario.main, r) ] ()
          in
          match
            Tactic.prove_and_check ~tables ~config:prover_config ctx
              (Sequent.Holds (p, r))
          with
          | Error _ -> Pass (* the tactic may fail; only success binds *)
          | Ok _ -> (
            match outcome with
            | Sat.Holds _ -> Pass
            | Sat.Fails { trace } ->
              failf "PROVED %s sat %s, but trace %s refutes it"
                s.Scenario.main
                (Assertion.to_string r)
                (Trace.to_string trace)));
      ]
  in
  sequence (List.map check_candidate (candidate_assertions s))

(* ---- oracle 5: choreography projection soundness ---------------------- *)

(* A deterministic choreography is derived from each scenario (the
   scenario text seeds the walk, so replaying a corpus entry replays
   the same choreography).  The projected network must be
   deadlock-free with traces exactly the global interaction
   sequence's — the deadlock-freedom-by-construction claim of the
   choreography literature, checked against the interpreted AND the
   compiled engine. *)

let choreo_seed (s : Scenario.t) =
  let text = Scenario.to_csp s in
  let h = ref 5381 in
  String.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0x3fffffff) text;
  !h

let choreo_refine_check (s : Scenario.t) =
  let seed = choreo_seed s in
  let roles = 2 + (seed mod 2) in
  let length = 2 + (seed / 7 mod 3) in
  let c = Csp.Models.Choreo.generate ~roles ~length ~seed in
  let defs = c.Csp.Models.Choreo.defs in
  let network = c.Csp.Models.Choreo.network in
  let global = c.Csp.Models.Choreo.global in
  let cfg = step_config defs in
  sequence
    [
      (fun () ->
        if
          Closure.equal
            (Step.traces cfg ~depth network)
            (Step.traces cfg ~depth global)
        then Pass
        else
          failf "choreography (roles=%d length=%d seed=%d): projected \
                 network and global traces differ"
            roles length seed);
      (fun () ->
        match Equiv.trace_refines ~depth cfg ~impl:network ~spec:global with
        | Ok () -> Pass
        | Error w ->
          failf "projection unsound: network trace %s not global"
            (Trace.to_string w));
      (fun () ->
        match Equiv.trace_refines ~depth cfg ~impl:global ~spec:network with
        | Ok () -> Pass
        | Error w ->
          failf "projection incomplete: global trace %s not in network"
            (Trace.to_string w));
      (fun () ->
        let lts = Lts.explore cfg network in
        if not lts.Lts.complete then
          failf "choreography network exploration truncated"
        else
          match Lts.deadlock_states lts with
          | [] -> Pass
          | d ->
            failf "deadlock-free-by-construction violated: %d deadlock \
                   state(s)"
              (List.length d));
      (fun () ->
        let seq = Lts.explore cfg network in
        let compiled = Csp_semantics.Compiled.compile cfg network in
        let com = Lts.explore ~compiled cfg network in
        if String.equal (Lts.to_dot com) (Lts.to_dot seq) then Pass
        else failf "compiled and interpreted exploration differ on the \
                    choreography network");
    ]

(* ---- oracle 6: abstraction soundness ----------------------------------- *)

module Chanabs = Csp.Abstraction.Chanabs
module Counter = Csp.Abstraction.Counter
module Family = Csp.Abstraction.Family
module Formula = Csp.Abstraction.Formula

(* enumeration bound for the transformers, matching the engine's
   [nat_bound 2]: the transformed process must offer at least the
   values the concrete sampler can produce *)
let abs_bound = 2

(* Leg 1/2 — channel abstractions on the scenario itself: erasing or
   value-projecting a channel must over-approximate, i.e. the image of
   every bounded concrete trace is a trace of the transformed process.
   Transformer failures (unguarded erasure, inexact projection) only
   skip the leg: soundness is claimed for the Ok/exact fragment. *)
let transformer_sound_check (s : Scenario.t) =
  let defs = s.Scenario.defs in
  let p = Scenario.process s in
  let cfg = step_config defs in
  let traces = Closure.to_traces (Step.traces cfg ~depth p) in
  match List.sort_uniq String.compare (Defs.channel_bases defs p) with
  | [] -> Pass
  | base :: _ ->
    sequence
      [
        (fun () ->
          match
            Chanabs.ignore_bases ~bases:[ base ] ~bound:abs_bound defs p
          with
          | Error _ -> Pass
          | Ok (defs', p') ->
            let cfg' = step_config defs' in
            (match
               List.find_opt
                 (fun tr ->
                   not
                     (Step.accepts_trace cfg' p'
                        (Chanabs.erase_trace ~bases:[ base ] tr)))
                 traces
             with
            | None -> Pass
            | Some tr ->
              failf
                "ignore %s: erased concrete trace %s escapes the abstraction"
                base (Trace.to_string tr)));
        (fun () ->
          let f = Chanabs.cap_value 1 in
          match
            Chanabs.project ~base ~f
              ~dom:[ Value.Int 0; Value.Int 1 ]
              ~bound:abs_bound defs p
          with
          | Error _ -> Pass
          | Ok { Chanabs.defs = defs'; proc = p'; exact } ->
            if not exact then Pass
            else
              let cfg' = step_config defs' in
              (match
                 List.find_opt
                   (fun tr ->
                     not
                       (Step.accepts_trace cfg' p'
                          (Chanabs.map_trace ~base ~f tr)))
                   traces
               with
              | None -> Pass
              | Some tr ->
                failf
                  "project %s through cap 1: mapped concrete trace %s \
                   escapes the exact projection"
                  base (Trace.to_string tr)));
      ]

(* Leg 3/4 — counter-abstract families against their concrete models.
   The scenario seed picks the (family, n) pair, so a fuzz campaign
   covers the whole grid; the check is deliberately NOT memoised
   across cases — coverage features are per-case Obs counter deltas,
   and a process-global cache would make them depend on scheduling
   order.  The instances are small enough (≤ 20 abstract states) that
   recomputing is cheap. *)
let concrete_instance (fam : Family.t) ~n =
  match fam.Family.fam.Counter.name with
  | "token-ring" ->
    let m = Csp.Models.Token_ring.make ~n in
    (m.Csp.Models.Token_ring.defs, m.Csp.Models.Token_ring.network)
  | "leader" ->
    let m = Csp.Models.Leader.make ~n in
    (m.Csp.Models.Leader.defs, m.Csp.Models.Leader.network)
  | "workers" ->
    let m = Csp.Models.Workers.make ~n in
    (m.Csp.Models.Workers.defs, m.Csp.Models.Workers.network)
  | other -> invalid_arg ("no concrete instance for family " ^ other)

let family_sound_at (fam : Family.t) ~n =
  let name = fam.Family.fam.Counter.name in
      let defs, network = concrete_instance fam ~n in
      let cfg = step_config defs in
      let traces = Closure.to_traces (Step.traces cfg ~depth network) in
      let r = Counter.explore fam.Family.fam ~n in
      match
        List.find_opt
          (fun tr ->
            not
              (Counter.accepts r.Counter.lts (Family.abstract_trace fam tr)))
          traces
      with
      | Some tr ->
        failf "family %s n=%d: erased concrete trace %s escapes the \
               abstract LTS"
          name n (Trace.to_string tr)
      | None -> (
        (* a certified family verdict must transfer to the instance:
           every erased concrete trace satisfies the invariants *)
        let formula =
          match
            Formula.of_string (Printf.sprintf "%s<=%d" fam.Family.param n)
          with
          | Ok f -> f
          | Error m -> invalid_arg m
        in
        match Family.check_family ~depth fam ~formula with
        | Error m -> failf "family %s: check_family: %s" name m
        | Ok o ->
          if not o.Family.certified then
            failf
              "family %s: %s<=%d not certified though the invariants hold \
               concretely"
              name fam.Family.param n
          else
            let violation =
              List.find_map
                (fun tr ->
                  let etr = Family.abstract_trace fam tr in
                  let tctx = Term.ctx ~hist:(History.of_trace etr) () in
                  List.find_map
                    (fun (iname, a) ->
                      match Assertion.eval tctx a with
                      | true -> None
                      | false -> Some (tr, iname)
                      | exception Term.Eval_error _ -> None)
                    fam.Family.invariants)
                traces
            in
            (match violation with
            | None -> Pass
            | Some (tr, iname) ->
              failf
                "family %s n=%d: certified %s, but concrete trace %s \
                 violates it after erasure"
                name n iname (Trace.to_string tr)))

let abstract_sound_check (s : Scenario.t) =
  let seed = choreo_seed s in
  let fam =
    match seed mod 3 with
    | 0 -> Family.token_ring
    | 1 -> Family.leader
    | _ -> Family.workers
  in
  let n = 2 + (seed / 3 mod 3) in
  sequence
    [ (fun () -> transformer_sound_check s); (fun () -> family_sound_at fam ~n) ]

(* ---- registry --------------------------------------------------------- *)

(* Every oracle invocation — fuzzing, corpus replay, direct calls from
   tests — counts itself, so a fuzz campaign's coverage is visible in
   [Obs.snapshot] as [oracle.<name>.cases]/[.pass]/[.fail] rather than
   only in a per-run report.  The verdict is computed inside a span so
   traces show where a campaign's wall-clock goes, per oracle. *)
let make name doc check =
  let cases = Obs.Counter.make ("oracle." ^ name ^ ".cases")
  and passed = Obs.Counter.make ("oracle." ^ name ^ ".pass")
  and failed = Obs.Counter.make ("oracle." ^ name ^ ".fail") in
  let counted s =
    Obs.Counter.incr cases;
    match Obs.span ~cat:"fuzz" ("oracle:" ^ name) (fun () -> protect check s) with
    | Pass ->
      Obs.Counter.incr passed;
      Pass
    | Fail _ as f ->
      Obs.Counter.incr failed;
      f
  in
  { name; doc; check = counted }

let cases_run o = Obs.Counter.get (Obs.Counter.make ("oracle." ^ o.name ^ ".cases"))

let closure_kernel =
  make "closure-kernel"
    "hash-consed Closure operations agree with the Closure_ref \
     executable specification"
    closure_kernel_check

let op_vs_deno =
  make "op-vs-deno"
    "Step.traces and Denote.denote compute the same prefix closure up \
     to the depth bound"
    op_vs_deno_check

let refinement =
  make "refinement"
    "trace, failures and bisimulation views cohere (choice is union, \
     failures refinement implies trace refinement, §4 identities)"
    refinement_check

let prover_sound =
  make "prover-sound"
    "anything the proof system certifies is never refuted by bounded \
     trace enumeration, and Sat counterexamples are genuine"
    prover_sound_check

let choreo_refine =
  make "choreo-refine"
    "a choreography derived from the scenario projects to a \
     deadlock-free network trace-equivalent to its global process, \
     interpreted and compiled alike"
    choreo_refine_check

let abstract_sound =
  make "abstract-sound"
    "channel and counter abstractions over-approximate: the erased or \
     value-projected image of every bounded concrete trace is a trace \
     of the abstract process/LTS, and family-certified invariants hold \
     on concrete instances"
    abstract_sound_check

let all =
  [
    closure_kernel;
    op_vs_deno;
    refinement;
    prover_sound;
    choreo_refine;
    abstract_sound;
  ]
let find name = List.find_opt (fun o -> String.equal o.name name) all
let names () = List.map (fun o -> o.name) all
