(** Structural shrinkers for counterexample minimisation.

    Candidates are produced lazily, smallest-step first; the fuzz
    driver greedily takes the first candidate on which the failing
    oracle still fails and iterates to a local minimum.  Scenario
    candidates preserve the generators' invariants: every reference
    still resolves and every environment stays well guarded (candidates
    that would break either are filtered out, never offered). *)

val process : Csp_lang.Process.t -> Csp_lang.Process.t Seq.t
(** Structurally smaller variants: the whole term (or any subterm)
    collapsed to [STOP], prefixes dropped (input binders substituted
    away so terms stay closed), choice/parallel operands promoted, and
    hidden sets unwrapped. *)

val scenario : Scenario.t -> Scenario.t Seq.t
(** Drop unreferenced definitions, then shrink each definition body in
    place with {!process}. *)
