(** Sized, well-scoped QCheck2 generators for the process language.

    Every generator stays inside the fragment on which the repository's
    semantic pipelines are documented to agree exactly under the test
    configuration ([Sampler.nat_bound 2], default fuel budgets):

    - generated terms are {e closed}: input binders introduce variables,
      and references only name definitions that exist;
    - value domains are bounded ([{0,1}] plus the ACK/NACK signals), so
      the sampler covers every value a communication partner may need;
    - recursion is {e guarded}: inside definition bodies, a process
      reference only ever appears as the continuation of a communication
      prefix, so every generated environment passes
      {!Csp_lang.Defs.well_guarded} by construction;
    - hiding never occurs inside a recursive body, and never wraps a
      reference — the documented exactness condition of the
      denotational fixpoint's [hide_extra] look-ahead. *)

(** Tunable knobs of the scenario generator: operator weights, size
    bounds and the channel-pool arity.  {!default} reproduces the
    historical distribution draw for draw, so [scenario_with default]
    and {!scenario} replay identically under the same seed.  The
    coverage-guided fuzzer perturbs these (see {!Coverage.Bias}) to
    steer generation toward the shapes that have been moving new
    counters. *)
type params = {
  n_chans : int;       (** channel pool size, 1–5 (default 3) *)
  w_send : int;        (** weight of output prefixes (default 4) *)
  w_recv : int;        (** weight of input prefixes (default 3) *)
  w_choice : int;      (** weight of [P | Q] (default 2) *)
  w_par : int;         (** weight of alphabetised parallel (default 2) *)
  w_hide : int;        (** weight of [chan c; P] (default 1) *)
  w_stop : int;        (** weight of the [STOP] leaf (default 1) *)
  w_ref : int;         (** weight of reference leaves (default 2) *)
  main_size_max : int; (** size bound of the main body (default 7) *)
  def_size_max : int;  (** size bound of definition bodies (default 5) *)
  max_defs : int;      (** plain definitions generated, 0–n (default 2) *)
}

val default : params

val clamp_params : params -> params
(** Clamp every field into its documented safe range (weights ≥ 1
    except hiding, which may be disabled; sizes within the fuel
    budgets the oracles assume).  Applied by {!scenario_with}. *)

val value : Csp_trace.Value.t QCheck2.Gen.t
(** Integers in [{0,1}] and the ACK/NACK signals. *)

val vset : Csp_lang.Vset.t QCheck2.Gen.t
(** Small message types: [{0..1}], [{0,1}], [NAT], [{ACK,NACK}]. *)

val expr : vars:string list -> Csp_lang.Expr.t QCheck2.Gen.t
(** Output expressions: constants in the bounded domain, or one of the
    in-scope input variables. *)

val process : Csp_lang.Process.t QCheck2.Gen.t
(** Closed, reference-free process terms over channels [a]/[b]/[c],
    exercising every constructor (including parallel composition with
    inferred alphabets, and hiding). *)

val defs : Csp_lang.Defs.t QCheck2.Gen.t
(** Guarded, possibly mutually recursive environments over the names
    [p0], [p1] and (sometimes) a process array [q0[x:{0..1}]]. *)

val main_body : defs:Csp_lang.Defs.t -> Csp_lang.Process.t QCheck2.Gen.t
(** A body for the process under test: may reference any definition
    (guarded or not — [main] is never referenced back), compose
    references in parallel with alphabets inferred through [defs], and
    hide channels of reference-free subterms. *)

val scenario : Scenario.t QCheck2.Gen.t
(** A full scenario: generated definitions plus a generated [main].
    Equal to [scenario_with default]. *)

val scenario_with : params -> Scenario.t QCheck2.Gen.t
(** {!scenario} with the given knobs (clamped via {!clamp_params}). *)
