module Obs = Csp_obs.Obs
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs

(* ---- features --------------------------------------------------------- *)

type feature = string

(* Coverage must be a function of the case alone, not of campaign
   history, or a fixed seed stops replaying: the closure/intern unique
   tables and the domain pool keep process-global statistics whose
   deltas depend on everything run before.  The oracles build a fresh
   [Engine] per check, so the per-engine cache counters (step/denote),
   the semantic-work counters (sat/lts/check/tactic/infer) and the
   per-oracle verdict counters all move by case-determined amounts —
   those are the feature domain. *)
let stable_prefixes =
  [ "oracle."; "step."; "denote."; "sat."; "lts."; "check."; "tactic."; "infer." ]

let stable_key k =
  List.exists (fun p -> String.length k >= String.length p
                        && String.sub k 0 (String.length p) = p)
    stable_prefixes

(* log₂ bucketing, AFL-style: a counter that moved by 1, by ~100 or by
   ~10k is three different behaviours, but 100 vs 101 is noise. *)
let bucket delta =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 delta

let feature_of_delta key delta = Printf.sprintf "%s:%d" key (bucket delta)

let diff before after =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      match v with Obs.Int n -> Hashtbl.replace tbl k n | _ -> ())
    before;
  List.filter_map
    (fun (k, v) ->
      match v with
      | Obs.Int n ->
        let d = n - (try Hashtbl.find tbl k with Not_found -> 0) in
        if d > 0 && stable_key k then Some (feature_of_delta k d) else None
      | _ -> None)
    after

(* Timer-bucket occupancy: every occupied log₂(ns) histogram slot of
   every timer.  Wall-clock dependent, hence excluded from the stable
   per-case features and the feature hash — the soak report surfaces
   it as a separate, informational axis of the map. *)
let timer_features () =
  List.concat_map
    (fun (name, buckets) ->
      Array.to_list buckets
      |> List.mapi (fun i n -> (i, n))
      |> List.filter_map (fun (i, n) ->
             if n > 0 then Some (Printf.sprintf "%s@%d" name i) else None))
    (Obs.timer_buckets ())

(* [Obs.delta_snapshot] serialises concurrent probes so each diff is
   exact; coverage keeps only the stable keys and buckets the raw
   deltas.  Coverage-guided generation is inherently a sequential
   feedback loop anyway — the guided driver runs cases one at a time
   whatever [--jobs] says. *)
let probe f =
  let x, deltas = Obs.delta_snapshot f in
  let fs =
    List.filter_map
      (fun (k, d) ->
        if stable_key k then Some (feature_of_delta k d) else None)
      deltas
  in
  (x, fs)

(* FNV-1a over the sorted feature list: stable across runs, processes
   and architectures (unlike [Hashtbl.hash], which is documented to be
   version-dependent). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let hash_features fs =
  List.fold_left (fun h f -> fnv64 (fnv64 h f) "\x00") fnv_offset
    (List.sort_uniq String.compare fs)

let hash_counterexample ~oracle sc =
  fnv64 (fnv64 fnv_offset oracle) ("\n" ^ Scenario.to_csp sc)

let pp_hash ppf h = Format.fprintf ppf "%016Lx" h

(* ---- the coverage map ------------------------------------------------- *)

module Map = struct
  type t = { seen : (feature, unit) Hashtbl.t }

  let create () = { seen = Hashtbl.create 256 }
  let distinct t = Hashtbl.length t.seen
  let mem t f = Hashtbl.mem t.seen f

  (* Returns the features of [fs] not seen before, in input order. *)
  let add t fs =
    List.filter
      (fun f ->
        if Hashtbl.mem t.seen f then false
        else begin
          Hashtbl.replace t.seen f ();
          true
        end)
      fs

  let features t =
    Hashtbl.fold (fun f () acc -> f :: acc) t.seen []
    |> List.sort String.compare
end

(* ---- corpus entries and minimisation ---------------------------------- *)

type entry = {
  case : int;
  scenario : Scenario.t;
  features : feature list;  (** full per-case feature set, sorted *)
  hash : int64;  (** {!hash_features} of [features] *)
}

let entry ~case ~scenario features =
  let features = List.sort_uniq String.compare features in
  { case; scenario; features; hash = hash_features features }

module Fset = Set.Make (String)

let covered entries =
  List.fold_left
    (fun acc e -> Fset.union acc (Fset.of_list e.features))
    Fset.empty entries

(* Greedy set cover: repeatedly keep the entry covering the most
   still-uncovered features (ties to the earliest case, so the result
   is deterministic and stable under re-minimisation).  The kept set
   covers exactly the union of input features — subsumed entries and
   duplicates drop out. *)
let minimise entries =
  let goal = covered entries in
  let rec go kept still = function
    | [] -> kept
    | candidates ->
      if Fset.subset goal still then kept
      else
        let best =
          List.fold_left
            (fun best e ->
              let gain = Fset.cardinal (Fset.diff (Fset.of_list e.features) still) in
              match best with
              | Some (bg, be) when bg > gain || (bg = gain && be.case <= e.case)
                -> best
              | _ -> if gain > 0 then Some (gain, e) else best)
            None candidates
        in
        (match best with
        | None -> kept
        | Some (_, e) ->
          go (e :: kept)
            (Fset.union still (Fset.of_list e.features))
            (List.filter (fun e' -> e'.case <> e.case) candidates))
  in
  go [] Fset.empty entries |> List.sort (fun a b -> compare a.case b.case)

(* ---- generation bias -------------------------------------------------- *)

(* Scenario shape, as credit-assignment features for the feedback
   loop: when a scenario gains coverage, the operators it leaned on
   get heavier in the next generation batch. *)
type shape = {
  sends : int;
  recvs : int;
  choices : int;
  pars : int;
  hides : int;
  refs : int;
  size : int;
  chans : int;
}

let shape_of (sc : Scenario.t) =
  let s = ref 0 and r = ref 0 and c = ref 0 and p = ref 0 and h = ref 0
  and f = ref 0 in
  let rec walk = function
    | Process.Stop -> ()
    | Process.Output (_, _, k) -> incr s; walk k
    | Process.Input (_, _, _, k) -> incr r; walk k
    | Process.Choice (a, b) -> incr c; walk a; walk b
    | Process.Par (_, _, a, b) -> incr p; walk a; walk b
    | Process.Hide (_, k) -> incr h; walk k
    | Process.Ref (_, _) -> incr f
  in
  let defs = sc.Scenario.defs in
  List.iter
    (fun n ->
      match Defs.lookup defs n with
      | Some d -> walk d.Defs.body
      | None -> ())
    (Defs.names defs);
  let chans =
    match Defs.lookup defs sc.Scenario.main with
    | Some d -> List.length (Defs.channel_bases defs d.Defs.body)
    | None -> 0
  in
  {
    sends = !s;
    recvs = !r;
    choices = !c;
    pars = !p;
    hides = !h;
    refs = !f;
    size = Scenario.size sc;
    chans;
  }

module Bias = struct
  type t = {
    mutable credit : shape;  (** summed shapes of coverage-gaining inputs *)
    mutable gainers : int;
    mutable stagnation : int;  (** consecutive batches with no gain *)
  }

  let zero =
    { sends = 0; recvs = 0; choices = 0; pars = 0; hides = 0; refs = 0;
      size = 0; chans = 0 }

  let create () = { credit = zero; gainers = 0; stagnation = 0 }

  let observe t sc ~gained =
    if gained > 0 then begin
      let s = shape_of sc and c = t.credit in
      t.credit <-
        {
          sends = c.sends + s.sends;
          recvs = c.recvs + s.recvs;
          choices = c.choices + s.choices;
          pars = c.pars + s.pars;
          hides = c.hides + s.hides;
          refs = c.refs + s.refs;
          size = c.size + s.size;
          chans = c.chans + max 0 (s.chans - 2);
        };
      t.gainers <- t.gainers + 1;
      t.stagnation <- 0
    end

  let stagnate t = t.stagnation <- t.stagnation + 1

  (* A fixed cycle of escalations — deeper terms, wider channel pools,
     operator emphasis — applied both under stagnation and as the
     exploration sweep of the guided driver's explore half. *)
  let escalate k p =
    match k mod 6 with
    | 1 -> { p with Gen.main_size_max = p.Gen.main_size_max + 3 }
    | 2 -> { p with Gen.n_chans = p.Gen.n_chans + 1 }
    | 3 -> { p with Gen.w_par = p.Gen.w_par + 3; w_hide = p.Gen.w_hide + 2 }
    | 4 -> { p with Gen.max_defs = p.Gen.max_defs + 1;
             def_size_max = p.Gen.def_size_max + 2 }
    | 5 -> { p with Gen.w_choice = p.Gen.w_choice + 3 }
    | _ -> { p with Gen.main_size_max = p.Gen.main_size_max + 5;
             n_chans = p.Gen.n_chans + 2 }

  (* Default weights plus credit-proportional boosts, everything
     re-clamped by [Gen.clamp_params].  [explore] shifts the escalation
     cycle deterministically — the guided driver sweeps it across its
     exploration cases so a campaign keeps probing new regions of the
     parameter space instead of settling on one boosted distribution;
     stagnation advances the same cycle when whole batches go dry. *)
  let params ?(explore = 0) t =
    let d = Gen.default in
    let n = max 1 t.gainers in
    let boost base credit = base + min 8 (credit / (n * 2)) in
    let p =
      {
        d with
        Gen.w_send = boost d.Gen.w_send t.credit.sends;
        w_recv = boost d.Gen.w_recv t.credit.recvs;
        w_choice = boost d.Gen.w_choice t.credit.choices;
        w_par = boost d.Gen.w_par t.credit.pars;
        w_hide = boost d.Gen.w_hide t.credit.hides;
        w_ref = boost d.Gen.w_ref t.credit.refs;
        main_size_max = d.Gen.main_size_max + min 5 (t.credit.size / (n * 8));
        n_chans = d.Gen.n_chans + min 2 (t.credit.chans / (n * 2));
      }
    in
    let k = t.stagnation + explore in
    let p = if k = 0 then p else escalate k p in
    Gen.clamp_params p
end
