module Value = Csp_trace.Value
module Vset = Csp_lang.Vset
module Expr = Csp_lang.Expr
module Chan_set = Csp_lang.Chan_set
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module G = QCheck2.Gen

(* ---- tunable generation parameters ----------------------------------- *)

(* Every frequency and size bound the generators draw from, gathered in
   one record so the coverage-guided fuzzer can bias generation toward
   the operator mix / depth / channel arity that has been moving new
   counters.  [default] reproduces the historical distribution draw for
   draw: with it, [scenario_with default] and [scenario] are the same
   generator, so seeds replay identically. *)
type params = {
  n_chans : int;       (** channel pool size, 1–5 (default 3) *)
  w_send : int;        (** weight of output prefixes (default 4) *)
  w_recv : int;        (** weight of input prefixes (default 3) *)
  w_choice : int;      (** weight of [P | Q] (default 2) *)
  w_par : int;         (** weight of alphabetised parallel (default 2) *)
  w_hide : int;        (** weight of [chan c; P] (default 1) *)
  w_stop : int;        (** weight of the [STOP] leaf (default 1) *)
  w_ref : int;         (** weight of reference leaves (default 2) *)
  main_size_max : int; (** size bound of the main body (default 7) *)
  def_size_max : int;  (** size bound of definition bodies (default 5) *)
  max_defs : int;      (** plain definitions generated, 0–n (default 2) *)
}

let default =
  {
    n_chans = 3;
    w_send = 4;
    w_recv = 3;
    w_choice = 2;
    w_par = 2;
    w_hide = 1;
    w_stop = 1;
    w_ref = 2;
    main_size_max = 7;
    def_size_max = 5;
    max_defs = 2;
  }

let clamp lo hi v = max lo (min hi v)

let clamp_params p =
  {
    n_chans = clamp 1 5 p.n_chans;
    w_send = clamp 1 16 p.w_send;
    w_recv = clamp 1 16 p.w_recv;
    w_choice = clamp 1 16 p.w_choice;
    w_par = clamp 1 16 p.w_par;
    w_hide = clamp 0 8 p.w_hide;
    w_stop = clamp 1 8 p.w_stop;
    w_ref = clamp 1 8 p.w_ref;
    main_size_max = clamp 2 14 p.main_size_max;
    def_size_max = clamp 2 10 p.def_size_max;
    max_defs = clamp 0 4 p.max_defs;
  }

(* The channel pool is deliberately tiny: collisions between
   independently generated subterms are what make parallel
   synchronisation, hiding and refinement interesting.  The
   coverage-guided mode can widen it to five names. *)
let all_chan_names = [ "a"; "b"; "c"; "d"; "e" ]
let chan_pool p = List.filteri (fun i _ -> i < p.n_chans) all_chan_names
let chan_of p = G.oneofl (chan_pool p)

let value =
  G.frequency
    [
      (4, G.map Value.int (G.int_range 0 1));
      (1, G.oneofl [ Value.ack; Value.nack ]);
    ]

let vset =
  G.frequency
    [
      (3, G.return (Vset.Range (0, 1)));
      (2, G.return (Vset.Enum [ Value.Int 0; Value.Int 1 ]));
      (2, G.return Vset.Nat);
      (1, G.return (Vset.Enum [ Value.ack; Value.nack ]));
    ]

let expr ~vars =
  let consts =
    [
      (5, G.map Expr.int (G.int_range 0 1));
      (1, G.return (Expr.value Value.ack));
    ]
  in
  match vars with
  | [] -> G.frequency consts
  | _ -> G.frequency ((3, G.map Expr.var (G.oneofl vars)) :: consts)

let fresh_var vars =
  if not (List.mem "x" vars) then "x"
  else if not (List.mem "y" vars) then "y"
  else "z"

(* A reference to one of [names]; array names take a constant argument
   from the parameter's domain so that [Defs.unfold] never rejects it. *)
let ref_gen names =
  match names with
  | [] -> G.return Process.Stop
  | _ ->
    G.bind (G.oneofl names) (fun (n, has_param) ->
        if has_param then
          G.map (fun v -> Process.call n (Expr.int v)) (G.int_range 0 1)
        else G.return (Process.ref_ n))

(* ---- definition bodies ---------------------------------------------- *)

(* Guarded by construction: a reference appears only as (part of) the
   continuation of a communication prefix, and bodies contain neither
   parallel composition nor hiding — both stay in [main], where the
   denotational fixpoint's exactness conditions allow them. *)
let def_body_with p ~names ~param =
  let vars0 = match param with Some (x, _) -> [ x ] | None -> [] in
  let tail =
    G.frequency [ (p.w_stop, G.return Process.Stop); (p.w_ref, ref_gen names) ]
  in
  let rec comm n vars =
    G.frequency
      [
        ( p.w_send,
          G.bind (chan_of p) (fun c ->
              G.bind (expr ~vars) (fun e ->
                  G.map (fun k -> Process.send c e k) (body (n - 1) vars))) );
        ( p.w_recv,
          G.bind (chan_of p) (fun c ->
              G.bind vset (fun m ->
                  let x = fresh_var vars in
                  G.map
                    (fun k -> Process.recv c x m k)
                    (body (n - 1) (x :: vars)))) );
      ]
  and body n vars =
    if n <= 0 then tail
    else
      G.frequency
        [
          (p.w_send, comm n vars);
          (p.w_stop, tail);
          ( p.w_choice,
            G.map2
              (fun a b -> Process.Choice (a, b))
              (comm ((n / 2) + 1) vars)
              (comm ((n / 2) + 1) vars) );
        ]
  in
  G.sized_size (G.int_range 1 p.def_size_max) (fun size -> comm size vars0)

let defs_with p =
  G.bind (G.int_range 0 p.max_defs) (fun n_plain ->
      G.bind G.bool (fun with_array ->
          let plain = List.init n_plain (fun i -> Printf.sprintf "p%d" i) in
          let names =
            List.map (fun n -> (n, false)) plain
            @ (if with_array then [ ("q0", true) ] else [])
          in
          let gen_def (name, has_param) =
            let param =
              if has_param then Some ("x", Vset.Range (0, 1)) else None
            in
            G.map
              (fun body -> { Defs.name; param; body })
              (def_body_with p ~names ~param)
          in
          G.map Defs.of_list (G.flatten_l (List.map gen_def names))))

let defs = defs_with default

(* ---- the process under test ----------------------------------------- *)

(* [main] is never referenced back, so references may appear unguarded
   here; hiding is restricted to reference-free subterms so that runs
   of concealed events stay within both semantics' fuel budgets. *)
let main_body_with p ~defs:env =
  let names =
    List.map
      (fun n ->
        match Defs.lookup env n with
        | Some { Defs.param = Some _; _ } -> (n, true)
        | _ -> (n, false))
      (Defs.names env)
  in
  let alphabet q = Chan_set.bases (Defs.channel_bases env q) in
  let rec go n vars ~refs =
    let leaves =
      [ (p.w_stop, G.return Process.Stop) ]
      @ (if refs && names <> [] then [ (p.w_ref, ref_gen names) ] else [])
    in
    if n <= 0 then G.frequency leaves
    else
      G.frequency
        (leaves
        @ [
            ( p.w_send,
              G.bind (chan_of p) (fun c ->
                  G.bind (expr ~vars) (fun e ->
                      G.map
                        (fun k -> Process.send c e k)
                        (go (n - 1) vars ~refs))) );
            ( p.w_recv,
              G.bind (chan_of p) (fun c ->
                  G.bind vset (fun m ->
                      let x = fresh_var vars in
                      G.map
                        (fun k -> Process.recv c x m k)
                        (go (n - 1) (x :: vars) ~refs))) );
            ( p.w_choice,
              G.map2
                (fun a b -> Process.Choice (a, b))
                (go (n / 2) vars ~refs)
                (go (n / 2) vars ~refs) );
            ( p.w_par,
              G.map2
                (fun a b -> Process.Par (alphabet a, alphabet b, a, b))
                (go (n / 2) vars ~refs)
                (go (n / 2) vars ~refs) );
          ]
        @
        if p.w_hide > 0 then
          [
            ( p.w_hide,
              G.bind (chan_of p) (fun c ->
                  G.map
                    (fun q -> Process.Hide (Chan_set.of_names [ c ], q))
                    (go (n - 1) vars ~refs:false)) );
          ]
        else [])
  in
  G.sized_size (G.int_range 0 p.main_size_max) (fun size -> go size [] ~refs:true)

let main_body ~defs:env = main_body_with default ~defs:env
let process = main_body ~defs:Defs.empty

let scenario_with p =
  let p = clamp_params p in
  G.bind (defs_with p) (fun env ->
      G.map
        (fun body ->
          Scenario.make ~defs:(Defs.define "main" body env) ~main:"main")
        (main_body_with p ~defs:env))

let scenario = scenario_with default
