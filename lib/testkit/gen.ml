module Value = Csp_trace.Value
module Vset = Csp_lang.Vset
module Expr = Csp_lang.Expr
module Chan_set = Csp_lang.Chan_set
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs
module G = QCheck2.Gen

(* The channel pool is deliberately tiny: collisions between
   independently generated subterms are what make parallel
   synchronisation, hiding and refinement interesting. *)
let chan_names = [ "a"; "b"; "c" ]
let chan = G.oneofl chan_names

let value =
  G.frequency
    [
      (4, G.map Value.int (G.int_range 0 1));
      (1, G.oneofl [ Value.ack; Value.nack ]);
    ]

let vset =
  G.frequency
    [
      (3, G.return (Vset.Range (0, 1)));
      (2, G.return (Vset.Enum [ Value.Int 0; Value.Int 1 ]));
      (2, G.return Vset.Nat);
      (1, G.return (Vset.Enum [ Value.ack; Value.nack ]));
    ]

let expr ~vars =
  let consts =
    [
      (5, G.map Expr.int (G.int_range 0 1));
      (1, G.return (Expr.value Value.ack));
    ]
  in
  match vars with
  | [] -> G.frequency consts
  | _ -> G.frequency ((3, G.map Expr.var (G.oneofl vars)) :: consts)

let fresh_var vars =
  if not (List.mem "x" vars) then "x"
  else if not (List.mem "y" vars) then "y"
  else "z"

(* A reference to one of [names]; array names take a constant argument
   from the parameter's domain so that [Defs.unfold] never rejects it. *)
let ref_gen names =
  match names with
  | [] -> G.return Process.Stop
  | _ ->
    G.bind (G.oneofl names) (fun (n, has_param) ->
        if has_param then
          G.map (fun v -> Process.call n (Expr.int v)) (G.int_range 0 1)
        else G.return (Process.ref_ n))

(* ---- definition bodies ---------------------------------------------- *)

(* Guarded by construction: a reference appears only as (part of) the
   continuation of a communication prefix, and bodies contain neither
   parallel composition nor hiding — both stay in [main], where the
   denotational fixpoint's exactness conditions allow them. *)
let def_body ~names ~param =
  let vars0 = match param with Some (x, _) -> [ x ] | None -> [] in
  let tail =
    G.frequency [ (1, G.return Process.Stop); (2, ref_gen names) ]
  in
  let rec comm n vars =
    G.frequency
      [
        ( 4,
          G.bind chan (fun c ->
              G.bind (expr ~vars) (fun e ->
                  G.map (fun k -> Process.send c e k) (body (n - 1) vars))) );
        ( 3,
          G.bind chan (fun c ->
              G.bind vset (fun m ->
                  let x = fresh_var vars in
                  G.map
                    (fun k -> Process.recv c x m k)
                    (body (n - 1) (x :: vars)))) );
      ]
  and body n vars =
    if n <= 0 then tail
    else
      G.frequency
        [
          (4, comm n vars);
          (1, tail);
          ( 2,
            G.map2
              (fun p q -> Process.Choice (p, q))
              (comm ((n / 2) + 1) vars)
              (comm ((n / 2) + 1) vars) );
        ]
  in
  G.sized_size (G.int_range 1 5) (fun size -> comm size vars0)

let defs =
  G.bind (G.int_range 0 2) (fun n_plain ->
      G.bind G.bool (fun with_array ->
          let plain = List.init n_plain (fun i -> Printf.sprintf "p%d" i) in
          let names =
            List.map (fun n -> (n, false)) plain
            @ (if with_array then [ ("q0", true) ] else [])
          in
          let gen_def (name, has_param) =
            let param =
              if has_param then Some ("x", Vset.Range (0, 1)) else None
            in
            G.map
              (fun body -> { Defs.name; param; body })
              (def_body ~names ~param)
          in
          G.map Defs.of_list (G.flatten_l (List.map gen_def names))))

(* ---- the process under test ----------------------------------------- *)

(* [main] is never referenced back, so references may appear unguarded
   here; hiding is restricted to reference-free subterms so that runs
   of concealed events stay within both semantics' fuel budgets. *)
let main_body ~defs:env =
  let names =
    List.map
      (fun n ->
        match Defs.lookup env n with
        | Some { Defs.param = Some _; _ } -> (n, true)
        | _ -> (n, false))
      (Defs.names env)
  in
  let alphabet p = Chan_set.bases (Defs.channel_bases env p) in
  let rec go n vars ~refs =
    let leaves =
      [ (1, G.return Process.Stop) ]
      @ (if refs && names <> [] then [ (2, ref_gen names) ] else [])
    in
    if n <= 0 then G.frequency leaves
    else
      G.frequency
        (leaves
        @ [
            ( 4,
              G.bind chan (fun c ->
                  G.bind (expr ~vars) (fun e ->
                      G.map
                        (fun k -> Process.send c e k)
                        (go (n - 1) vars ~refs))) );
            ( 3,
              G.bind chan (fun c ->
                  G.bind vset (fun m ->
                      let x = fresh_var vars in
                      G.map
                        (fun k -> Process.recv c x m k)
                        (go (n - 1) (x :: vars) ~refs))) );
            ( 2,
              G.map2
                (fun p q -> Process.Choice (p, q))
                (go (n / 2) vars ~refs)
                (go (n / 2) vars ~refs) );
            ( 2,
              G.map2
                (fun p q -> Process.Par (alphabet p, alphabet q, p, q))
                (go (n / 2) vars ~refs)
                (go (n / 2) vars ~refs) );
            ( 1,
              G.bind chan (fun c ->
                  G.map
                    (fun p -> Process.Hide (Chan_set.of_names [ c ], p))
                    (go (n - 1) vars ~refs:false)) );
          ])
  in
  G.sized_size (G.int_range 0 7) (fun size -> go size [] ~refs:true)

let process = main_body ~defs:Defs.empty

let scenario =
  G.bind defs (fun env ->
      G.map
        (fun body ->
          Scenario.make ~defs:(Defs.define "main" body env) ~main:"main")
        (main_body ~defs:env))
