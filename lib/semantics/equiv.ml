module Process = Csp_lang.Process

let operational_vs_denotational ?(depth = 5) scfg dcfg p =
  let op = Step.traces scfg ~depth p in
  let dn = Denote.denote dcfg ~depth p in
  if Closure.equal op dn then Ok ()
  else
    match Closure.first_difference op dn with
    | Some s -> Error s
    | None -> Ok () (* unreachable: unequal closures differ somewhere *)

let trace_refines ?(depth = 5) cfg ~impl ~spec =
  let traces =
    List.sort
      (fun a b -> compare (List.length a) (List.length b))
      (Closure.to_traces (Step.traces cfg ~depth impl))
  in
  match List.find_opt (fun s -> not (Step.accepts_trace cfg spec s)) traces with
  | None -> Ok ()
  | Some s -> Error s

let stop_choice_identity ?(depth = 5) dcfg p =
  Closure.equal
    (Denote.denote dcfg ~depth (Process.Choice (Process.Stop, p)))
    (Denote.denote dcfg ~depth p)

let choice_absorption ?(depth = 5) dcfg q p =
  let dq = Denote.denote dcfg ~depth q and dp = Denote.denote dcfg ~depth p in
  if Closure.subset dq dp then
    Closure.equal (Denote.denote dcfg ~depth (Process.Choice (q, p))) dp
  else true
