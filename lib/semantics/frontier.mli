(** Speculative derivation on the work-stealing pool.

    A frontier session lets pool workers race ahead of a coordinating
    exploration, deriving per-state transition lists into a sharded
    derived-map while the coordinator replays the exact sequential
    BFS.  Because the transition relation is a pure function of the
    interned state and the configuration, speculation order is
    unobservable: the coordinator's results — and therefore state
    numbering, transition order, truncation and DOT output — are
    byte-identical to the sequential exploration at any domain count.

    Shared [Step] caches are frozen for the session (all domains,
    coordinator included, derive through private {!Step.view}s) and
    folded back at {!stop}.  While a session is open the pool must not
    run fork-join batches, and [Step.transitions_i] must not be called
    on the session's configuration. *)

type session

val start :
  pool:Csp_parallel.Pool.t -> ?cap:int -> Step.config -> session
(** Open a session: one driver per spawned pool worker starts stealing
    work.  [cap] (default: unbounded) soft-bounds the number of states
    speculation will claim — pass the exploration's state bound so
    speculation cannot run away on graphs much larger than the bound.
    On a 1-domain pool the session is inert: {!get} derives everything
    inline and the coordinator's view still batches cache updates. *)

val prefetch : session -> Csp_lang.Proc.t -> unit
(** Seed speculation with a state (the coordinator's root, typically).
    Workers push discovered successors themselves. *)

val get :
  session ->
  Csp_lang.Proc.t ->
  (Csp_trace.Event.t * Step.visibility * Csp_lang.Proc.t) list
(** The state's transition list: the published speculative result if a
    worker got there first, otherwise derived inline (and the
    successors re-seeded to speculation).  Either way the value is
    exactly [Step.transitions_i cfg p]. *)

val stop : session -> unit
(** End the session: stop the drivers, wait for quiescence, fold every
    domain's view back into the configuration's shared caches. *)
