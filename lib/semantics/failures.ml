module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc

type acceptance = Event.t list

let sort_events es = List.sort_uniq Event.compare es

(* Acceptances are kept sorted (see [sort_events]), so lexicographic
   comparison decides equality and [sort_uniq] dedups in O(n log n)
   instead of the quadratic pairwise scan. *)
let acceptance_compare = List.compare Event.compare

let acceptance_equal a b = acceptance_compare a b = 0

let acceptance_subset a b = List.for_all (fun e -> List.exists (Event.equal e) b) a

let dedup_acceptances accs = List.sort_uniq acceptance_compare accs

type choice_reading = [ `External | `Internal ]

(* Stable states reachable by resolving choices (under the [`Internal]
   reading), unfolding names, and letting bounded runs of concealed
   communications happen.  Works on interned nodes throughout: rebuilt
   [Par]/[Hide] states intern in O(1), and the hidden-transition probes
   in [settle] hit [Step]'s per-state transition cache. *)
let commitments_i ?(choice = `External) cfg p =
  let rec go unfold_budget tau_budget p =
    match Proc.node p with
    | Proc.Stop | Proc.Output _ | Proc.Input _ -> [ p ]
    | Proc.Choice (a, b) -> (
      match choice with
      | `Internal -> go unfold_budget tau_budget a @ go unfold_budget tau_budget b
      | `External -> settle tau_budget p)
    | Proc.Ref (n, arg) ->
      if unfold_budget <= 0 then raise (Step.Unproductive n)
      else go (unfold_budget - 1) tau_budget (Step.unfold_i cfg n arg)
    | Proc.Par (xa, ya, a, b) ->
      let cas = go unfold_budget tau_budget a
      and cbs = go unfold_budget tau_budget b in
      List.concat_map
        (fun ca -> List.map (fun cb -> Proc.par xa ya ca cb) cbs)
        cas
      |> List.concat_map (settle tau_budget)
    | Proc.Hide (l, q) ->
      (* resolve internal choices below the concealment first, then let
         the concealed communications run *)
      go unfold_budget tau_budget q
      |> List.map (fun c -> Proc.hide l c)
      |> List.concat_map (settle tau_budget)
  (* [settle] lets concealed communications of an otherwise-committed
     state run until stability.  A state still unstable when the budget
     is spent is dropped: it may diverge (unboundedly many concealed
     events), and divergence is outside the stable-failures model —
     keeping it would misreport a deadlock, since an unstable state
     offers no visible event. *)
  and settle tau_budget p =
    let hidden =
      List.filter_map
        (fun (_, vis, p') ->
          match vis with Step.Hidden -> Some p' | Step.Visible -> None)
        (Step.transitions_i cfg p)
    in
    match hidden with
    | [] -> [ p ]
    | _ when tau_budget <= 0 -> []
    | _ ->
      List.concat_map
        (fun p' -> go cfg.Step.unfold_fuel (tau_budget - 1) p')
        hidden
  in
  go cfg.Step.unfold_fuel cfg.Step.hide_fuel p

let commitments ?choice cfg p =
  List.map Proc.to_process (commitments_i ?choice cfg (Proc.intern p))

let visible_initials_i cfg p =
  sort_events
    (List.filter_map
       (fun (e, vis, _) ->
         match vis with Step.Visible -> Some e | Step.Hidden -> None)
       (Step.transitions_i cfg p))

let acceptances_now ?choice cfg p =
  dedup_acceptances
    (List.map (visible_initials_i cfg) (commitments_i ?choice cfg (Proc.intern p)))

type t = (Trace.t * acceptance list) list

let failures ?choice cfg ~depth p =
  (* Trace exploration follows every state — visible transitions of
     unstable states contribute traces — while acceptances are recorded
     from stable commitments only, as stable-failures semantics
     demands. *)
  let out = ref [] in
  let rec go d rev_trace states =
    let stable = List.concat_map (commitments_i ?choice cfg) states in
    let accs = dedup_acceptances (List.map (visible_initials_i cfg) stable) in
    out := (List.rev rev_trace, accs) :: !out;
    if d > 0 then begin
      let events =
        sort_events
          (List.concat_map (visible_initials_i cfg)
             (List.concat_map (Step.tau_reachable_i cfg) states))
      in
      List.iter
        (fun e ->
          let next = List.concat_map (fun s -> Step.after_i cfg s e) states in
          if next <> [] then go (d - 1) (e :: rev_trace) next)
        events
    end
  in
  go depth [] [ Proc.intern p ];
  List.rev !out

module Trace_tbl = Hashtbl.Make (struct
  type t = Trace.t

  let equal = Trace.equal

  (* traces are pure data, so polymorphic hashing is consistent with
     [Trace.equal]; hash deeply — traces sharing a prefix would
     otherwise collide *)
  let hash s = Hashtbl.hash_param 64 256 s
end)

let index_traces (fs : (Trace.t * acceptance list) list) =
  let tbl = Trace_tbl.create (List.length fs * 2) in
  List.iter (fun (s, accs) -> Trace_tbl.replace tbl s accs) fs;
  tbl

let lookup_trace fs s =
  List.find_map
    (fun (s', accs) -> if Trace.equal s s' then Some accs else None)
    fs

let can_refuse ?choice cfg ~depth p s es =
  match lookup_trace (failures ?choice cfg ~depth p) s with
  | None -> false
  | Some accs ->
    List.exists
      (fun a -> List.for_all (fun e -> not (List.exists (Event.equal e) a)) es)
      accs

let can_deadlock ?choice cfg ~depth p =
  let deadlocked =
    List.filter_map
      (fun (s, accs) ->
        if List.exists (fun a -> match a with [] -> true | _ :: _ -> false) accs
        then Some s
        else None)
      (failures ?choice cfg ~depth p)
  in
  match
    List.sort (fun a b -> Int.compare (List.length a) (List.length b)) deadlocked
  with
  | [] -> None
  | s :: _ -> Some s

let equal (a : t) (b : t) =
  (* normalise both levels to sorted order, then compare pointwise *)
  let norm fs =
    List.sort
      (fun (s1, _) (s2, _) -> Trace.compare s1 s2)
      (List.map (fun (s, accs) -> (s, List.sort_uniq acceptance_compare accs)) fs)
  in
  List.equal
    (fun (s1, x) (s2, y) ->
      Trace.equal s1 s2 && List.equal acceptance_equal x y)
    (norm a) (norm b)

let refines (impl : t) (spec : t) =
  let spec_index = index_traces spec in
  List.for_all
    (fun (s, accs_impl) ->
      match Trace_tbl.find_opt spec_index s with
      | None -> false
      | Some accs_spec ->
        List.for_all
          (fun a -> List.exists (fun b -> acceptance_subset b a) accs_spec)
          accs_impl)
    impl

let distinguishes_stop_choice cfg ~depth p =
  not
    (equal
       (failures ~choice:`Internal cfg ~depth (Process.Choice (Process.Stop, p)))
       (failures ~choice:`Internal cfg ~depth p))

let pp ppf (fs : t) =
  let pp_acc ppf a =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Event.pp)
      a
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (s, accs) ->
         Format.fprintf ppf "%a : %a" Trace.pp s
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
              pp_acc)
           accs))
    fs
