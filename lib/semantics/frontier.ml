(* Speculative derivation service for work-stealing exploration.

   The per-state transition relation is a pure function of the interned
   state and the configuration (samplers are pure), so its results may
   be computed in ANY order by ANY domain without affecting what the
   coordinator will see — only when.  A frontier session exploits this:
   pool workers race ahead of the coordinator over the state graph,
   claiming states from work-stealing deques, deriving their transition
   lists through domain-local {!Step.view}s, and publishing the results
   in a sharded derived-map.  The coordinator replays the exact
   sequential BFS, consuming published results where speculation got
   there first and deriving inline where it did not — so state
   numbering, transition order and truncation are byte-identical to the
   sequential exploration by construction, at any domain count.

   Shared [Step] caches are frozen for the whole session: every domain
   (the coordinator included) derives through its own view, and all
   views are folded back into the shared caches at {!stop}, when every
   worker is quiescent. *)

module Proc = Csp_lang.Proc
module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* Speculation effectiveness: a hit is a coordinator [get] answered
   from the derived-map, a miss is derived inline. *)
let spec_hits = Obs.Counter.make "frontier.hits"
let spec_misses = Obs.Counter.make "frontier.misses"

type derived = (Csp_trace.Event.t * Step.visibility * Proc.t) list

(* Claim/derived maps are sharded by node id so workers and the
   coordinator contend per shard; critical sections are single hash
   operations. *)
let n_shards = 64
let shard_mask = n_shards - 1

type shard = {
  lock : Mutex.t;
  claimed : (int, unit) Hashtbl.t;  (* node id → derivation owned *)
  derived : derived Step.Trans_tbl.t;  (* node id → transitions *)
}

type session = {
  shards : shard array;
  views : Step.view array;  (* per worker; index [n-1] is the coordinator *)
  steal : Proc.t Pool.stealing;
  cap : int;  (* soft bound on claims: speculation past it is cut off *)
  claims : int Atomic.t;
}

let[@inline] shard_of s id = s.shards.(id land shard_mask)

let[@inline] with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* Claim a node for derivation.  Returns [true] if the caller now owns
   it.  The soft cap stops speculation from outrunning a bounded
   exploration into parts of the graph the coordinator will never
   visit. *)
let try_claim s id =
  Atomic.get s.claims < s.cap
  &&
  let sh = shard_of s id in
  with_lock sh.lock (fun () ->
      if Hashtbl.mem sh.claimed id then false
      else begin
        Hashtbl.add sh.claimed id ();
        Atomic.incr s.claims;
        true
      end)

let publish s id ts =
  let sh = shard_of s id in
  with_lock sh.lock (fun () -> Step.Trans_tbl.replace sh.derived id ts)

let find_derived s id =
  let sh = shard_of s id in
  with_lock sh.lock (fun () -> Step.Trans_tbl.find_opt sh.derived id)

let seen s id =
  let sh = shard_of s id in
  with_lock sh.lock (fun () -> Hashtbl.mem sh.claimed id)

(* The worker function: claim, derive through the worker's own view,
   publish, speculate on unclaimed successors. *)
let worker_step s ~worker ~push (p : Proc.t) =
  let id = Proc.id p in
  if try_claim s id then begin
    let ts = Step.transitions_view s.views.(worker) p in
    publish s id ts;
    List.iter (fun (_, _, q) -> if not (seen s (Proc.id q)) then push q) ts
  end

let start ~pool ?(cap = max_int) cfg =
  let n = Pool.domains pool in
  (* the session record and the stealing session reference each other;
     tie the knot through a ref the worker closure reads *)
  let s_ref = ref None in
  let steal =
    Pool.stealing_start pool (fun ~worker ~push p ->
        match !s_ref with
        | Some s -> worker_step s ~worker ~push p
        | None -> ())
  in
  let s =
    {
      shards =
        Array.init n_shards (fun _ ->
            {
              lock = Mutex.create ();
              claimed = Hashtbl.create 64;
              derived = Step.Trans_tbl.create 64;
            });
      views = Array.init n (fun _ -> Step.view cfg);
      steal;
      cap;
      claims = Atomic.make 0;
    }
  in
  s_ref := Some s;
  s

let prefetch s p = Pool.stealing_push s.steal p

(* Coordinator-side derivation.  On a speculation miss the coordinator
   derives inline through its own view, marks the node claimed (so
   workers stop wasting time on it) and re-seeds speculation with the
   successors — without this, one miss would starve the workers of the
   whole subtree below it. *)
let get s (p : Proc.t) =
  let id = Proc.id p in
  match find_derived s id with
  | Some ts ->
    Obs.Counter.incr spec_hits;
    ts
  | None ->
    Obs.Counter.incr spec_misses;
    let sh = shard_of s id in
    with_lock sh.lock (fun () ->
        if not (Hashtbl.mem sh.claimed id) then Hashtbl.add sh.claimed id ());
    let ts = Step.transitions_view s.views.(Array.length s.views - 1) p in
    List.iter
      (fun (_, _, q) -> if not (seen s (Proc.id q)) then prefetch s q)
      ts;
    ts

let stop s =
  Pool.stealing_stop s.steal;
  (* every driver has left its loop: folding the views back into the
     shared config caches is safe, and later phases (or sequential
     queries) reuse everything speculation derived *)
  Array.iter Step.merge_view s.views
