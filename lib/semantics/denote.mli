(** Denotational semantics (§3.2): a process denotes a prefix closure.

    Recursive definitions are interpreted as least fixpoints computed
    through the paper's chain of approximations

    {v a₀ = ⟦STOP⟧,   aᵢ₊₁ = ⟦P⟧[aᵢ/p],   ⟦p ≜ P⟧ = ⋃ᵢ aᵢ v}

    Every result is truncated at a requested trace depth, which makes
    the union finite: for well-guarded definitions, [iterations ≥ depth]
    approximations determine all traces of length ≤ [depth] exactly.

    The chain is iterated with *early convergence*: each level records
    the approximation of every definition it demands, and iteration
    stops as soon as a level reproduces the previous one — detected in
    O(1) per definition, since hash-consed closures compare by pointer.
    Guarded bodies add one event per guard and level, so chains
    typically stabilise well before the worst-case
    [depth + hide_extra + 1] rounds.

    Hiding needs look-ahead: to know the visible traces of [chan L; P]
    up to depth [d] one must explore [P] beyond depth [d].  The
    [hide_extra] budget says how much deeper; it is the one genuine
    approximation in this model (a retransmission protocol can perform
    arbitrarily many hidden events per visible one). *)

module Eval_tbl : Hashtbl.S with type key = int * int * int

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  hide_extra : int;
  ref_memo : (string * string option * int * int, Closure.t) Hashtbl.t;
      (** [(name, arg, depth, env generation) → approximation]: process
          references hit cache across the chain and across repeated
          denotations under the same config. *)
  eval_memo : Closure.t Eval_tbl.t;
      (** [(env generation, depth, node id) → evaluation]: hash-consed
          ({!Csp_lang.Proc}) states recurring across approximation
          levels and sampled input values evaluate once per level. *)
  mutable generation : int;
      (** Fresh generation per environment level; keys both memos. *)
}

val config :
  ?sampler:Sampler.t -> ?hide_extra:int -> Csp_lang.Defs.t -> config
(** Defaults: {!Sampler.default}, [hide_extra = 8]. *)

val denote : ?iterations:int -> config -> depth:int -> Csp_lang.Process.t -> Closure.t
(** Traces of length ≤ [depth].  By default the approximation chain
    stops at convergence (bounded by [depth + hide_extra + 1] rounds,
    exact for well-guarded definitions whose hiding does not occur
    inside recursive bodies).  An explicit [iterations] runs exactly
    that many rounds with no convergence check — the reference
    behaviour the regression tests compare against. *)

val approximations :
  config -> depth:int -> n:int -> Csp_lang.Process.t -> Closure.t list
(** The chain [⟦P⟧ under a₀, …, ⟦P⟧ under aₙ] — an ascending chain of
    closures whose union {!denote} computes.  Levels past convergence
    are shared physically rather than recomputed. *)

type stats = { eval_hits : int; eval_misses : int }

val stats : unit -> stats
(** Global [eval_memo] counters since program start (or the last
    {!reset_stats}), summed over every configuration. *)

val reset_stats : unit -> unit
