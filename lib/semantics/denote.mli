(** Denotational semantics (§3.2): a process denotes a prefix closure.

    Recursive definitions are interpreted as least fixpoints computed
    through the paper's chain of approximations

    {v a₀ = ⟦STOP⟧,   aᵢ₊₁ = ⟦P⟧[aᵢ/p],   ⟦p ≜ P⟧ = ⋃ᵢ aᵢ v}

    Every result is truncated at a requested trace depth, which makes
    the union finite: for well-guarded definitions, [iterations ≥ depth]
    approximations determine all traces of length ≤ [depth] exactly.

    Hiding needs look-ahead: to know the visible traces of [chan L; P]
    up to depth [d] one must explore [P] beyond depth [d].  The
    [hide_extra] budget says how much deeper; it is the one genuine
    approximation in this model (a retransmission protocol can perform
    arbitrarily many hidden events per visible one). *)

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  hide_extra : int;
}

val config :
  ?sampler:Sampler.t -> ?hide_extra:int -> Csp_lang.Defs.t -> config
(** Defaults: {!Sampler.default}, [hide_extra = 8]. *)

val denote : ?iterations:int -> config -> depth:int -> Csp_lang.Process.t -> Closure.t
(** Traces of length ≤ [depth].  [iterations] defaults to
    [depth + hide_extra + 1], exact for well-guarded definitions whose
    hiding does not occur inside recursive bodies. *)

val approximations :
  config -> depth:int -> n:int -> Csp_lang.Process.t -> Closure.t list
(** The chain [⟦P⟧ under a₀, …, ⟦P⟧ under aₙ] — an ascending chain of
    closures whose union {!denote} computes. *)
