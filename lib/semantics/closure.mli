(** Prefix closures, represented as hash-consed tries.

    A prefix closure (§3.1) is a set of traces containing the empty
    trace and closed under prefixes.  A trie whose every node counts as
    a member is exactly such a set, so prefix-closedness holds by
    construction.  All values of this type are finite approximations:
    the closure of a non-trivial process is truncated at some depth by
    the functions that build it.

    Children lists are kept sorted by event and duplicate-free, and
    every node is interned in a global (domain-safe) unique table, so
    structurally equal closures are physically equal: {!equal} is
    pointer equality, {!cardinal} and {!depth} are cached per node, and
    the set operations are memoised in compute tables keyed on node
    ids.  Structure is shared across the approximation chains of the
    denotational semantics and across the bounded checker's sweeps. *)

type t

val empty : t
(** [{⟨⟩}] — the denotation of STOP, and the paper's approximation a₀. *)

val prefix : Csp_trace.Event.t -> t -> t
(** [(a → P)] = [{⟨⟩} ∪ {a^s | s ∈ P}]. *)

val union : t -> t -> t
val union_all : t list -> t
(** Balanced pairwise reduction of [union] (avoids the O(n·m) left-fold
    on wide fan-outs such as sampled [Input] branches). *)

val inter : t -> t -> t

val mem : Csp_trace.Trace.t -> t -> bool
val add : Csp_trace.Trace.t -> t -> t
(** Adds the trace and, implicitly, all its prefixes. *)

val of_traces : Csp_trace.Trace.t list -> t
val to_traces : t -> Csp_trace.Trace.t list
(** All member traces, shortest first within each branch. *)

val fold_traces : (Csp_trace.Trace.t -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_traces f t init] folds [f] over every member trace in
    {!to_traces} order without materialising the trace list. *)

val maximal_traces : t -> Csp_trace.Trace.t list
(** Only the traces that are not proper prefixes of another member. *)

val cardinal : t -> int
(** Number of member traces (= number of trie nodes).  O(1): cached. *)

val depth : t -> int
(** Length of the longest member trace.  O(1): cached. *)

val truncate : int -> t -> t
(** Keep only traces of length ≤ n.  Returns the argument itself (no
    copy) when it is already within the bound. *)

val hide : (Csp_trace.Channel.t -> bool) -> t -> t
(** [P\C]: the image of the closure under [s ↦ s\C]; prefix-closed. *)

val restrict : (Csp_trace.Channel.t -> bool) -> t -> t
(** Image under keeping only matching channels (used to state the
    paper's projection property of parallel composition). *)

val interleave : events:Csp_trace.Event.t list -> extra:int -> t -> t
(** Bounded version of the paper's [P ⇑ C]: every member trace
    interleaved with arbitrary sequences (of length ≤ [extra]) over the
    finite alphabet sample [events]. *)

val par :
  in_x:(Csp_trace.Channel.t -> bool) ->
  in_y:(Csp_trace.Channel.t -> bool) ->
  t ->
  t ->
  t
(** Alphabetised parallel composition by synchronised merge: events on
    channels in both alphabets require both operands to advance; events
    in only one alphabet advance that operand alone.  Agrees with the
    paper's [(P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))] on the common alphabet (tested
    property). *)

val equal : t -> t -> bool
(** Physical equality — O(1), exact thanks to hash-consing. *)

val subset : t -> t -> bool
val first_difference : t -> t -> Csp_trace.Trace.t option
(** A shortest trace in exactly one of the two closures, if any;
    computed by a synchronous walk of the shared trie structure. *)

val events : t -> Csp_trace.Event.t list
(** All events occurring anywhere in the closure, deduplicated
    (returned in [Event.compare] order). *)

val id : t -> int
(** The unique node id: equal ids ⇔ equal closures.  Never reused. *)

val hash : t -> int
(** Hash consistent with {!equal} (derived from {!id}); O(1). *)

type stats = {
  nodes : int;
  memo_hits : int;
  memo_misses : int;
  lock_waits : int;
      (** contended shard/memo-mutex acquisitions (only ever non-zero
          under multi-domain execution) *)
  shards : int;  (** shard count of the unique table *)
  max_shard_len : int;
      (** live nodes in the fullest shard — occupancy-skew check *)
}

val stats : unit -> stats
(** Global counters: nodes interned, compute-table hits/misses, lock
    contention, shard occupancy — for the bench's memoisation hit-rate
    report and the engine's parallel statistics.

    The unique table is sharded by hash with one mutex per shard.
    During a pool parallel phase (see [Pool.register_phase_hooks]) the
    compute tables are frozen read-only and each domain accumulates
    fresh results in a private arena, flushed add-if-absent at the
    join — so [memo_hits]/[memo_misses] may lag by one phase. *)

val clear_caches : unit -> unit
(** Drop the compute tables (unique table entries become collectable
    once unreferenced).  Only affects performance, never results. *)

val pp : Format.formatter -> t -> unit
(** Prints the maximal traces. *)
