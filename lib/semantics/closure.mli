(** Prefix closures, represented as tries.

    A prefix closure (§3.1) is a set of traces containing the empty
    trace and closed under prefixes.  A trie whose every node counts as
    a member is exactly such a set, so prefix-closedness holds by
    construction.  All values of this type are finite approximations:
    the closure of a non-trivial process is truncated at some depth by
    the functions that build it.

    Children lists are kept sorted by event and duplicate-free, so
    structural equality coincides with set equality. *)

type t

val empty : t
(** [{⟨⟩}] — the denotation of STOP, and the paper's approximation a₀. *)

val prefix : Csp_trace.Event.t -> t -> t
(** [(a → P)] = [{⟨⟩} ∪ {a^s | s ∈ P}]. *)

val union : t -> t -> t
val union_all : t list -> t
val inter : t -> t -> t

val mem : Csp_trace.Trace.t -> t -> bool
val add : Csp_trace.Trace.t -> t -> t
(** Adds the trace and, implicitly, all its prefixes. *)

val of_traces : Csp_trace.Trace.t list -> t
val to_traces : t -> Csp_trace.Trace.t list
(** All member traces, shortest first within each branch. *)

val maximal_traces : t -> Csp_trace.Trace.t list
(** Only the traces that are not proper prefixes of another member. *)

val cardinal : t -> int
(** Number of member traces (= number of trie nodes). *)

val depth : t -> int
(** Length of the longest member trace. *)

val truncate : int -> t -> t
(** Keep only traces of length ≤ n. *)

val hide : (Csp_trace.Channel.t -> bool) -> t -> t
(** [P\C]: the image of the closure under [s ↦ s\C]; prefix-closed. *)

val restrict : (Csp_trace.Channel.t -> bool) -> t -> t
(** Image under keeping only matching channels (used to state the
    paper's projection property of parallel composition). *)

val interleave : events:Csp_trace.Event.t list -> extra:int -> t -> t
(** Bounded version of the paper's [P ⇑ C]: every member trace
    interleaved with arbitrary sequences (of length ≤ [extra]) over the
    finite alphabet sample [events]. *)

val par :
  in_x:(Csp_trace.Channel.t -> bool) ->
  in_y:(Csp_trace.Channel.t -> bool) ->
  t ->
  t ->
  t
(** Alphabetised parallel composition by synchronised merge: events on
    channels in both alphabets require both operands to advance; events
    in only one alphabet advance that operand alone.  Agrees with the
    paper's [(P ⇑ (Y−X)) ∩ (Q ⇑ (X−Y))] on the common alphabet (tested
    property). *)

val equal : t -> t -> bool
val subset : t -> t -> bool
val first_difference : t -> t -> Csp_trace.Trace.t option
(** A shortest trace in exactly one of the two closures, if any. *)

val events : t -> Csp_trace.Event.t list
(** All events occurring anywhere in the closure, deduplicated. *)

val pp : Format.formatter -> t -> unit
(** Prints the maximal traces. *)
