(** One configuration for every semantic pipeline.

    Historically each pipeline carried its own knobs: {!Step.config}
    (defs, sampler, unfold/hide fuel), {!Denote.config} (defs, sampler,
    hide_extra), plus ad-hoc [depth]/[seed]/[nat_bound] parameters in
    the assertion checker, the invariant miner, the simulator and the
    CLI.  An engine bundles them once: build it from the definition
    environment, pass it everywhere, and the derived {!Step.config} and
    {!Denote.config} — with their unfold/transition/evaluation caches —
    are shared by every query made through it.

    The per-module [config] constructors remain for backward
    compatibility, but new code should create an engine and hand out
    its views. *)

type t = {
  defs : Csp_lang.Defs.t;
  depth : int;  (** default trace/assertion depth bound *)
  seed : int;  (** seed for randomised schedulers and walks *)
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
  hide_extra : int;
  step : Step.config;  (** derived view: shares defs/sampler/fuels *)
  denote : Denote.config;  (** derived view: shares defs/sampler *)
}

val create :
  ?depth:int ->
  ?seed:int ->
  ?nat_bound:int ->
  ?sampler:Sampler.t ->
  ?unfold_fuel:int ->
  ?hide_fuel:int ->
  ?hide_extra:int ->
  Csp_lang.Defs.t ->
  t
(** Defaults: [depth = 6], [seed = 1], {!Sampler.default},
    [unfold_fuel = 64], [hide_fuel = 16], [hide_extra = 8].
    [nat_bound n] is shorthand for [~sampler:(Sampler.nat_bound n)]
    and wins over an explicit [sampler]. *)

val step_config : t -> Step.config
val denote_config : t -> Denote.config

val with_depth : t -> int -> t
(** Change the depth bound; the derived configurations (and their
    caches) are kept — depth is a per-query bound, not a semantic
    parameter. *)

val with_seed : t -> int -> t
(** Change the randomisation seed; caches are kept. *)

val with_sampler : t -> Sampler.t -> t
(** Change the sampler.  This changes the transition relation, so the
    derived configurations are rebuilt with fresh caches. *)

(** {1 Statistics} *)

type stats = {
  intern : Csp_lang.Proc.stats;  (** process interning (unique table) *)
  closure : Closure.stats;  (** closure kernel nodes and memos *)
  step : Step.stats;  (** transition / unfolding caches *)
  denote : Denote.stats;  (** denotational evaluation memo *)
}

val stats : unit -> stats
(** Aggregated counters across every kernel cache (process interning,
    closure kernel, operational and denotational memos).  Counters are
    global: they sum over all engines since program start or the last
    {!reset_stats}. *)

val reset_stats : unit -> unit
(** Reset the operational and denotational counters.  The interning and
    closure-kernel counters are monotone (their tables are global weak
    structures) and are not reset. *)

val pp_stats : Format.formatter -> stats -> unit
