(** One configuration for every semantic pipeline.

    Historically each pipeline carried its own knobs: {!Step.config}
    (defs, sampler, unfold/hide fuel), {!Denote.config} (defs, sampler,
    hide_extra), plus ad-hoc [depth]/[seed]/[nat_bound] parameters in
    the assertion checker, the invariant miner, the simulator and the
    CLI.  An engine bundles them once: build it from the definition
    environment, pass it everywhere, and the derived {!Step.config} and
    {!Denote.config} — with their unfold/transition/evaluation caches —
    are shared by every query made through it.

    The per-module [config] constructors remain for backward
    compatibility, but new code should create an engine and hand out
    its views. *)

type t = {
  defs : Csp_lang.Defs.t;
  depth : int;  (** default trace/assertion depth bound *)
  seed : int;  (** seed for randomised schedulers and walks *)
  domains : int;  (** worker-domain count for parallel pipelines (≥ 1) *)
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
  hide_extra : int;
  step : Step.config;  (** derived view: shares defs/sampler/fuels *)
  denote : Denote.config;  (** derived view: shares defs/sampler *)
  pool : Csp_parallel.Pool.t Lazy.t;
      (** domain pool, spawned on first parallel query; access it
          through {!pool}, which short-circuits the single-domain
          case *)
  compiled : (int, Compiled.t) Hashtbl.t;
      (** compiled automata keyed by root node id; access through
          {!compile}, which fills it on demand.  Shared by the
          {!with_depth}/{!with_seed} copies; {!with_sampler} starts
          fresh (the transition relation changes) *)
}

val create :
  ?depth:int ->
  ?seed:int ->
  ?domains:int ->
  ?nat_bound:int ->
  ?sampler:Sampler.t ->
  ?unfold_fuel:int ->
  ?hide_fuel:int ->
  ?hide_extra:int ->
  Csp_lang.Defs.t ->
  t
(** Defaults: [depth = 6], [seed = 1], [domains = 1],
    {!Sampler.default}, [unfold_fuel = 64], [hide_fuel = 16],
    [hide_extra = 8].  [nat_bound n] is shorthand for
    [~sampler:(Sampler.nat_bound n)] and wins over an explicit
    [sampler].  [domains] > 1 makes {!pool} hand out a shared domain
    pool for parallel exploration and sharded fuzzing; results are
    unaffected (parallel pipelines are deterministic), only wall-clock
    changes. *)

val step_config : t -> Step.config
val denote_config : t -> Denote.config

val pool : t -> Csp_parallel.Pool.t option
(** The engine's domain pool, for threading into [?pool] parameters
    ({!Lts.explore}, {!Bisim.equivalent}, …).  [None] when the engine
    was created with [domains = 1]; otherwise the pool, spawning its
    worker domains on first use and shared across every query (and
    every {!with_depth}/{!with_seed} copy) of this engine. *)

val with_depth : t -> int -> t
(** Change the depth bound; the derived configurations (and their
    caches) are kept — depth is a per-query bound, not a semantic
    parameter. *)

val with_seed : t -> int -> t
(** Change the randomisation seed; caches are kept. *)

val with_sampler : t -> Sampler.t -> t
(** Change the sampler.  This changes the transition relation, so the
    derived configurations are rebuilt with fresh caches. *)

val compile : ?budget:int -> t -> Csp_lang.Process.t -> Compiled.t
(** The compiled successor automaton for [p] under this engine's
    step configuration, compiling on first request and cached per
    root afterwards — one compile serves every later
    {!Lts.explore}/[Runner]/[Sat] query through the same engine.
    [budget] bounds the states materialised eagerly (see
    {!Compiled.compile}); it only takes effect on the compiling
    call. *)

val compiled_count : t -> int
(** Automata in this engine's compile cache (shared with its
    {!with_depth}/{!with_seed} copies). *)

val compiled_mem : t -> Csp_lang.Process.t -> bool
(** Whether {!compile} on this root would be answered from the cache —
    how [cspc serve] and its tests observe warm-start state.  The
    cache hit/miss traffic is also counted under the
    [engine.compile_hits] / [engine.compile_misses] snapshot keys. *)

(** {1 Statistics} *)

type stats = {
  intern : Csp_lang.Proc.stats;  (** process interning (unique table) *)
  closure : Closure.stats;  (** closure kernel nodes and memos *)
  step : Step.stats;  (** transition / unfolding caches *)
  denote : Denote.stats;  (** denotational evaluation memo *)
  pool : Csp_parallel.Pool.stats;
      (** domain pools: batches, tasks and worker counts — all zero
          until a parallel query runs *)
}

val stats : unit -> stats
(** Aggregated counters across every kernel cache (process interning,
    closure kernel, operational and denotational memos).  Counters are
    global: they sum over all engines since program start or the last
    {!reset_stats}. *)

val reset_stats : unit -> unit
(** Reset the operational and denotational counters.  The interning and
    closure-kernel counters are monotone (their tables are global weak
    structures) and are not reset. *)

val pp_stats : Format.formatter -> stats -> unit
