(** Operational semantics: small-step transitions by communication.

    A configuration supplies the definition environment, a sampler for
    infinite input sets, and fuel bounds.  [unfold_fuel] bounds chains
    of name unfoldings between communications (it only runs out on
    unguarded recursion); [hide_fuel] bounds runs of consecutive hidden
    events considered during trace enumeration and visible derivatives. *)

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
}

val config :
  ?sampler:Sampler.t ->
  ?unfold_fuel:int ->
  ?hide_fuel:int ->
  Csp_lang.Defs.t ->
  config
(** Defaults: {!Sampler.default}, [unfold_fuel = 64], [hide_fuel = 16]. *)

exception Unproductive of string
(** Raised when [unfold_fuel] runs out: the definitions contain an
    unguarded recursion (cf. {!Csp_lang.Defs.well_guarded}). *)

type visibility = Visible | Hidden

val transitions :
  config -> Csp_lang.Process.t ->
  (Csp_trace.Event.t * visibility * Csp_lang.Process.t) list
(** All single-communication transitions.  Events on channels declared
    local by an enclosing [chan L] are [Hidden]; input events enumerate
    sampler-chosen values. *)

val tau_reachable : config -> Csp_lang.Process.t -> Csp_lang.Process.t list
(** The states reachable by at most [hide_fuel] hidden events (including
    the state itself). *)

val after : config -> Csp_lang.Process.t -> Csp_trace.Event.t ->
  Csp_lang.Process.t list
(** Visible-event derivative: the states reachable by (≤ [hide_fuel]
    hidden events followed by) the given visible event. *)

val accepts_trace : config -> Csp_lang.Process.t -> Csp_trace.Trace.t -> bool
(** Is the trace a possible (visible) behaviour of the process? *)

val is_deadlocked : config -> Csp_lang.Process.t -> bool
(** No transitions at all, visible or hidden.  [STOP] is deadlocked; so
    are blocked parallel compositions. *)

val traces : config -> depth:int -> Csp_lang.Process.t -> Closure.t
(** All visible traces of length ≤ [depth], enumerated from
    transitions (each visible event resets the hidden-run budget to
    [hide_fuel]). *)
