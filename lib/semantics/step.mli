(** Operational semantics: small-step transitions by communication.

    A configuration supplies the definition environment, a sampler for
    infinite input sets, and fuel bounds.  [unfold_fuel] bounds chains
    of name unfoldings between communications (it only runs out on
    unguarded recursion); [hide_fuel] bounds runs of consecutive hidden
    events considered during trace enumeration and visible derivatives.

    States are hash-consed ({!Csp_lang.Proc}): the [_i]-suffixed
    functions work directly on interned nodes, and the plain-AST
    entry points intern on the way in and project back on the way out.
    Both the reference-unfolding and the transition relation are cached
    in the configuration, so repeated queries on a shared state space
    (trace enumeration, LTS exploration, refinement checking) derive
    each distinct state once. *)

type visibility = Visible | Hidden

val vis_equal : visibility -> visibility -> bool
(** Explicit variant equality (no polymorphic compare). *)

module Unfold_tbl : Hashtbl.S with type key = string * Csp_lang.Expr.t option
module Trans_tbl : Hashtbl.S with type key = int

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
  unfold_cache : Csp_lang.Proc.t Unfold_tbl.t;
      (** (name, argument) → interned unfolding, filled on demand *)
  trans_cache :
    (Csp_trace.Event.t * visibility * Csp_lang.Proc.t) list Trans_tbl.t;
      (** node id → full-fuel transitions, filled on demand *)
}

val config :
  ?sampler:Sampler.t ->
  ?unfold_fuel:int ->
  ?hide_fuel:int ->
  Csp_lang.Defs.t ->
  config
(** Defaults: {!Sampler.default}, [unfold_fuel = 64], [hide_fuel = 16].
    Creates fresh (empty) caches. *)

exception Unproductive of string
(** Raised when [unfold_fuel] runs out: the definitions contain an
    unguarded recursion (cf. {!Csp_lang.Defs.well_guarded}). *)

(** {1 On interned states} *)

val unfold_i :
  config -> string -> Csp_lang.Expr.t option -> Csp_lang.Proc.t
(** One reference unfolding, interned and cached in [unfold_cache].
    @raise Csp_lang.Defs.Undefined on unknown names. *)

val transitions_i :
  config -> Csp_lang.Proc.t ->
  (Csp_trace.Event.t * visibility * Csp_lang.Proc.t) list
(** All single-communication transitions, memoised per state in
    [trans_cache].  Events on channels declared local by an enclosing
    [chan L] are [Hidden]; input events enumerate sampler-chosen
    values. *)

val tau_reachable_i : config -> Csp_lang.Proc.t -> Csp_lang.Proc.t list
val after_i :
  config -> Csp_lang.Proc.t -> Csp_trace.Event.t -> Csp_lang.Proc.t list

val accepts_trace_i : config -> Csp_lang.Proc.t -> Csp_trace.Trace.t -> bool
val is_deadlocked_i : config -> Csp_lang.Proc.t -> bool
val traces_i : config -> depth:int -> Csp_lang.Proc.t -> Closure.t

(** {1 Domain-local cache views} — for parallel exploration

    The per-config caches are plain hashtables and must not be written
    concurrently.  A {!view} lets a worker domain derive transitions
    during a parallel phase without touching them: lookups consult the
    shared tables first (read-only — safe while no domain writes), then
    a private local table; fresh derivations are recorded locally.  At
    the fork-join barrier, while the workers are quiescent, the
    coordinator calls {!merge_view} on each view to fold the local
    discoveries into the shared tables — cache hits survive the
    barrier, and later layers or sequential queries reuse them. *)

type view
(** A domain-local overlay over one configuration's caches. *)

val view : config -> view
(** A fresh, empty view of [config]'s caches.  Create one per worker
    domain per parallel phase (views are not themselves thread-safe). *)

val transitions_view :
  view -> Csp_lang.Proc.t ->
  (Csp_trace.Event.t * visibility * Csp_lang.Proc.t) list
(** Like {!transitions_i}, but misses populate the view's local table
    instead of the shared [trans_cache]. *)

val merge_view : view -> unit
(** Fold the view's local discoveries into the shared caches and flush
    its hit/miss counts into the global statistics, then reset the view
    to empty.  Must only be called while no other domain is reading or
    writing the underlying configuration's caches. *)

(** {1 On the plain AST} — intern, compute, project back *)

val transitions :
  config -> Csp_lang.Process.t ->
  (Csp_trace.Event.t * visibility * Csp_lang.Process.t) list
(** All single-communication transitions.  Events on channels declared
    local by an enclosing [chan L] are [Hidden]; input events enumerate
    sampler-chosen values. *)

val tau_reachable : config -> Csp_lang.Process.t -> Csp_lang.Process.t list
(** The states reachable by at most [hide_fuel] hidden events (including
    the state itself). *)

val after : config -> Csp_lang.Process.t -> Csp_trace.Event.t ->
  Csp_lang.Process.t list
(** Visible-event derivative: the states reachable by (≤ [hide_fuel]
    hidden events followed by) the given visible event. *)

val accepts_trace : config -> Csp_lang.Process.t -> Csp_trace.Trace.t -> bool
(** Is the trace a possible (visible) behaviour of the process? *)

val is_deadlocked : config -> Csp_lang.Process.t -> bool
(** No transitions at all, visible or hidden.  [STOP] is deadlocked; so
    are blocked parallel compositions. *)

val traces : config -> depth:int -> Csp_lang.Process.t -> Closure.t
(** All visible traces of length ≤ [depth], enumerated from
    transitions (each visible event resets the hidden-run budget to
    [hide_fuel]). *)

(** {1 Statistics} *)

type stats = {
  unfold_hits : int;
  unfold_misses : int;
  trans_hits : int;
  trans_misses : int;
}

val stats : unit -> stats
(** Global cache counters since program start (or the last
    {!reset_stats}), summed over every configuration. *)

val reset_stats : unit -> unit
