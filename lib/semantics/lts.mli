(** Explicit labelled transition systems.

    Bounded exploration of a process's state space, with states
    canonicalised by hash-consing ({!Csp_lang.Proc}): state numbering
    is by BFS discovery order, a function of the process and the
    configuration alone.  Useful for state-space
    statistics, reachability questions, and for drawing the paper's
    network diagrams as graphs (Graphviz DOT output, used by
    [cspc graph]). *)

type state = int

type transition = {
  source : state;
  event : Csp_trace.Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Csp_lang.Process.t array;  (** indexed by state number *)
  transitions : transition list;
  complete : bool;
      (** false when exploration stopped at the state bound with
          unexplored frontier states remaining *)
}

val explore : ?max_states:int -> Step.config -> Csp_lang.Process.t -> t
(** Breadth-first exploration (default bound: 2000 states).  States are
    identified up to syntactic equality of the process term, so a
    recursive definition that returns to its defining equation yields a
    finite cyclic graph. *)

val num_states : t -> int
val num_transitions : t -> int

val deadlock_states : t -> state list
(** States with no outgoing transitions at all. *)

val is_deterministic : t -> bool
(** No state has two distinct successors on the same visible event. *)

val reachable_channels : t -> Csp_trace.Channel.t list

val to_dot : ?name:string -> t -> string
(** Graphviz source; hidden events are drawn dashed, deadlock states
    doubly circled.  Output is deterministic: node numbers come from
    the BFS discovery order and edges are emitted sorted by
    (source, target, event, visibility). *)
