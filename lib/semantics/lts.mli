(** Explicit labelled transition systems.

    Bounded exploration of a process's state space, with states
    canonicalised by hash-consing ({!Csp_lang.Proc}): state numbering
    is by BFS discovery order, a function of the process and the
    configuration alone.  Useful for state-space
    statistics, reachability questions, and for drawing the paper's
    network diagrams as graphs (Graphviz DOT output, used by
    [cspc graph]).

    Exploration is a FIFO walk in BFS discovery order.  Handing
    {!explore} a multi-domain {!Csp_parallel.Pool.t} turns the pool's
    workers into a work-stealing speculation fleet ({!Frontier}): they
    derive per-state transition lists ahead of the coordinator, which
    replays the sequential BFS consuming their results — so the
    resulting system (state numbering, transition list, truncation and
    DOT output) is byte-identical whatever the domain count.  An
    opt-in relaxed mode trades that guarantee for fully autonomous
    workers and promises only set-equality (see {!explore}). *)

type state = int

type transition = {
  source : state;
  event : Csp_trace.Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Csp_lang.Process.t array;  (** indexed by state number *)
  transitions : transition list;
  complete : bool;
      (** false when exploration stopped at the state bound with
          unexplored frontier states remaining *)
  n_transitions : int;
      (** [List.length transitions], computed once at construction *)
  truncated : bool array;
      (** per state: an outgoing transition was dropped because its
          target fell beyond the state bound.  Such states are not
          reported by {!deadlock_states} and are drawn dashed by
          {!to_dot}.  All-[false] when [complete]. *)
}

val make :
  ?truncated:bool array ->
  initial:state ->
  states:Csp_lang.Process.t array ->
  transitions:transition list ->
  complete:bool ->
  unit ->
  t
(** Smart constructor for derived systems (quotients, saturations,
    products): computes [n_transitions] and defaults [truncated] to
    all-[false]. *)

val explore :
  ?max_states:int ->
  ?pool:Csp_parallel.Pool.t ->
  ?compiled:Compiled.t ->
  ?relaxed:bool ->
  Step.config ->
  Csp_lang.Process.t ->
  t
(** Breadth-first exploration (default bound: 2000 states).  States are
    identified up to syntactic equality of the process term, so a
    recursive definition that returns to its defining equation yields a
    finite cyclic graph.  With a multi-domain [pool], workers
    speculatively derive transition lists through a work-stealing
    frontier while the coordinator replays the sequential BFS; the
    result is byte-identical to the sequential exploration (see the
    module description).

    When [compiled] is an automaton for the same root process (see
    {!Compiled.compile}, {!Engine.compile}), the exploration runs as
    array walks over its flat successor tables with a dense visited
    set — byte-identical output (numbering, transitions, truncation,
    DOT) at any domain count, with states beyond the compile budget
    materialised lazily through the interpreter.  The automaton must
    have been compiled with the same configuration; a [compiled] whose
    root is a different process is ignored and the interpreted path
    runs.

    [relaxed:true] (with a [pool]) lets the workers explore
    autonomously: states are numbered in claim order, not BFS order,
    so numbering and transition order vary run to run.  The promise is
    weakened to set-equality with the deterministic exploration (equal
    {!signature}s) — exact for complete explorations; a bounded one
    may keep a different [max_states]-subset.  Relaxed mode ignores
    [compiled]; without a [pool] it falls back to the deterministic
    path. *)

val signature : t -> string
(** Canonical, numbering-independent form: sorted printed states,
    sorted printed transitions, initial state and completeness.  Equal
    signatures ⇔ same state set, same transition set — the oracle for
    comparing relaxed against deterministic explorations. *)

val num_states : t -> int

val num_transitions : t -> int
(** O(1): stored at construction. *)

val deadlock_states : t -> state list
(** States with no outgoing transitions at all — excluding states whose
    outgoing transitions were dropped at the state bound (those are
    unknowns, not deadlocks; see [truncated]). *)

val truncated_states : t -> state list
(** States with dropped outgoing transitions, in ascending order.
    Empty iff the exploration ran to completion. *)

val is_deterministic : t -> bool
(** No state has two distinct successors on the same visible event. *)

val reachable_channels : t -> Csp_trace.Channel.t list

val to_dot : ?name:string -> t -> string
(** Graphviz source; hidden events are drawn dashed, deadlock states
    doubly circled, truncation-affected states dashed.  Output is
    deterministic: node numbers come from the BFS discovery order and
    edges are emitted sorted by (source, target, event, visibility). *)
