module Event = Csp_trace.Event

type partition = int array
(* class number per state *)

(* A transition label: the event plus its visibility.  Labels are
   compared with [Event.equal]/[Event.hash] and explicit bool equality
   — never polymorphic compare — and interned to dense ints before
   partition refinement, so the refinement loop works on integer
   signatures only. *)
let label (tr : Lts.transition) = (tr.Lts.event, tr.Lts.visible)

let label_equal (e1, v1) (e2, v2) = Event.equal e1 e2 && Bool.equal v1 v2

module Label_tbl = Hashtbl.Make (struct
  type t = Event.t * bool

  let equal = label_equal
  let hash (e, v) = ((Event.hash e * 2) + Bool.to_int v) land max_int
end)

(* Dense label ids, assigned in transition-list order (deterministic:
   the transition list is itself in BFS discovery order). *)
let label_ids (t : Lts.t) =
  let tbl = Label_tbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun tr ->
      let l = label tr in
      if not (Label_tbl.mem tbl l) then begin
        Label_tbl.add tbl l !next;
        incr next
      end)
    t.Lts.transitions;
  tbl

let pair_compare (l1, c1) (l2, c2) =
  let c = Int.compare l1 l2 in
  if c <> 0 then c else Int.compare c1 c2

let signatures (t : Lts.t) label_of (classes : int array) =
  let n = Array.length t.Lts.states in
  let sigs = Array.make n [] in
  List.iter
    (fun tr ->
      sigs.(tr.Lts.source) <-
        (label_of tr, classes.(tr.Lts.target)) :: sigs.(tr.Lts.source))
    t.Lts.transitions;
  Array.map (List.sort_uniq pair_compare) sigs

(* (current class, outgoing signature) keys for the regrouping table —
   pure integer data with explicit equality and hashing. *)
module Sig_tbl = Hashtbl.Make (struct
  type t = int * (int * int) list

  let equal (c1, s1) (c2, s2) =
    Int.equal c1 c2
    && List.equal
         (fun (a1, b1) (a2, b2) -> Int.equal a1 a2 && Int.equal b1 b2)
         s1 s2

  let hash (c, s) =
    List.fold_left
      (fun h (a, b) -> ((((h * 31) + a) * 31) + b) land max_int)
      ((c * 31) + 17)
      s
end)

(* Kanellakis–Smolka style refinement: regroup states by
   (current class, outgoing signature) until the number of classes is
   stable. *)
let classes_of (t : Lts.t) : partition =
  let labels = label_ids t in
  let label_of tr = Label_tbl.find labels (label tr) in
  let n = Array.length t.Lts.states in
  let classes = Array.make n 0 in
  let num = ref (if n = 0 then 0 else 1) in
  let changed = ref true in
  while !changed do
    let sigs = signatures t label_of classes in
    let table = Sig_tbl.create 16 in
    let next = ref 0 in
    let classes' =
      Array.init n (fun i ->
          let key = (classes.(i), sigs.(i)) in
          match Sig_tbl.find_opt table key with
          | Some c -> c
          | None ->
            let c = !next in
            incr next;
            Sig_tbl.add table key c;
            c)
    in
    changed := !next <> !num;
    num := !next;
    Array.blit classes' 0 classes 0 n
  done;
  classes

let num_classes (p : partition) =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 p

let class_of (p : partition) s = p.(s)

(* (source, label, target) dedup keys for quotient and saturation. *)
module Edge_tbl = Hashtbl.Make (struct
  type t = int * (Event.t * bool) * int

  let equal (s1, l1, t1) (s2, l2, t2) =
    Int.equal s1 s2 && Int.equal t1 t2 && label_equal l1 l2

  let hash (s, (e, v), t) =
    ((((((s * 31) + Event.hash e) * 2) + Bool.to_int v) * 31) + t) land max_int
end)

let quotient (t : Lts.t) (p : partition) : Lts.t =
  let k = num_classes p in
  (* representative = lowest-numbered state of each class *)
  let repr = Array.make k (-1) in
  Array.iteri
    (fun s c -> if repr.(c) = -1 then repr.(c) <- s)
    p;
  let states = Array.map (fun s -> t.Lts.states.(s)) repr in
  let seen = Edge_tbl.create 64 in
  let transitions =
    List.filter
      (fun (tr : Lts.transition) ->
        let key = (p.(tr.Lts.source), label tr, p.(tr.Lts.target)) in
        if Edge_tbl.mem seen key then false
        else begin
          Edge_tbl.add seen key ();
          true
        end)
      t.Lts.transitions
    |> List.map (fun (tr : Lts.transition) ->
           {
             Lts.source = p.(tr.Lts.source);
             event = tr.Lts.event;
             visible = tr.Lts.visible;
             target = p.(tr.Lts.target);
           })
  in
  Lts.make
    ~initial:p.(t.Lts.initial)
    ~states ~transitions ~complete:t.Lts.complete ()

let minimise t = quotient t (classes_of t)

(* τ-closure per state: everything reachable by concealed moves,
   including the state itself. *)
let tau_closure (t : Lts.t) =
  let n = Array.length t.Lts.states in
  let succ = Array.make n [] in
  List.iter
    (fun (tr : Lts.transition) ->
      if not tr.Lts.visible then
        succ.(tr.Lts.source) <- tr.Lts.target :: succ.(tr.Lts.source))
    t.Lts.transitions;
  let closure = Array.make n [] in
  for s = 0 to n - 1 do
    let visited = Array.make n false in
    let rec dfs v =
      if not visited.(v) then begin
        visited.(v) <- true;
        List.iter dfs succ.(v)
      end
    in
    dfs s;
    closure.(s) <-
      List.filter (fun v -> visited.(v)) (List.init n Fun.id)
  done;
  closure

let saturate (t : Lts.t) : Lts.t =
  let closure = tau_closure t in
  let seen = Edge_tbl.create 64 in
  let add acc (tr : Lts.transition) =
    let key = (tr.Lts.source, label tr, tr.Lts.target) in
    if Edge_tbl.mem seen key then acc
    else begin
      Edge_tbl.add seen key ();
      tr :: acc
    end
  in
  (* weak visible steps: τ* e τ* *)
  let weak_visible =
    List.concat_map
      (fun (tr : Lts.transition) ->
        if not tr.Lts.visible then []
        else
          List.concat_map
            (fun src ->
              if List.mem tr.Lts.source closure.(src) then
                List.map
                  (fun tgt ->
                    {
                      Lts.source = src;
                      event = tr.Lts.event;
                      visible = true;
                      target = tgt;
                    })
                  closure.(tr.Lts.target)
              else [])
            (List.init (Array.length t.Lts.states) Fun.id))
      t.Lts.transitions
  in
  (* weak silent steps: τ* (reflexive, so every state can "answer" a τ
     by staying put — the standard encoding of weak bisimulation as
     strong bisimulation on the saturated graph) *)
  let tau_event = Csp_trace.Event.v "__tau__" (Csp_trace.Value.Sym "TAU") in
  let weak_tau =
    List.concat_map
      (fun src ->
        List.map
          (fun tgt ->
            { Lts.source = src; event = tau_event; visible = false; target = tgt })
          closure.(src))
      (List.init (Array.length t.Lts.states) Fun.id)
  in
  Lts.make ~initial:t.Lts.initial ~states:t.Lts.states
    ~transitions:(List.rev (List.fold_left add [] (weak_visible @ weak_tau)))
    ~complete:t.Lts.complete ()

let weak_classes t = classes_of (saturate t)

let combine tp tq =
  let np = Array.length tp.Lts.states in
  let shift (tr : Lts.transition) =
    {
      Lts.source = tr.Lts.source + np;
      event = tr.Lts.event;
      visible = tr.Lts.visible;
      target = tr.Lts.target + np;
    }
  in
  Lts.make ~initial:tp.Lts.initial
    ~states:(Array.append tp.Lts.states tq.Lts.states)
    ~transitions:(tp.Lts.transitions @ List.map shift tq.Lts.transitions)
    ~complete:true ()

(* Route each side's exploration through a compiled automaton when a
   compiler is supplied (identical results either way — the compiled
   path replays the interpreted numbering byte for byte). *)
let explore_side ?compiler ~max_states ?pool cfg p =
  match compiler with
  | Some compile -> Lts.explore ~max_states ?pool ~compiled:(compile p) cfg p
  | None -> Lts.explore ~max_states ?pool cfg p

let weak_equivalent ?(max_states = 2000) ?pool ?compiler cfg p q =
  let tp = explore_side ?compiler ~max_states ?pool cfg p
  and tq = explore_side ?compiler ~max_states ?pool cfg q in
  if not (tp.Lts.complete && tq.Lts.complete) then false
  else begin
    let np = Array.length tp.Lts.states in
    let classes = weak_classes (combine tp tq) in
    classes.(tp.Lts.initial) = classes.(tq.Lts.initial + np)
  end

let equivalent ?(max_states = 2000) ?pool ?compiler cfg p q =
  let tp = explore_side ?compiler ~max_states ?pool cfg p
  and tq = explore_side ?compiler ~max_states ?pool cfg q in
  if not (tp.Lts.complete && tq.Lts.complete) then false
  else begin
    let np = Array.length tp.Lts.states in
    let classes = classes_of (combine tp tq) in
    classes.(tp.Lts.initial) = classes.(tq.Lts.initial + np)
  end
