module Event = Csp_trace.Event

type partition = int array
(* class number per state *)

(* A transition label: the event plus its visibility.  Events are pure
   data, so polymorphic equality/hashing agree with [Event.equal] — no
   need to go through the printed form. *)
let label (tr : Lts.transition) = (tr.Lts.event, tr.Lts.visible)

let signatures (t : Lts.t) (classes : int array) =
  let n = Array.length t.Lts.states in
  let sigs = Array.make n [] in
  List.iter
    (fun tr ->
      sigs.(tr.Lts.source) <-
        (label tr, classes.(tr.Lts.target)) :: sigs.(tr.Lts.source))
    t.Lts.transitions;
  Array.map (List.sort_uniq compare) sigs

(* Kanellakis–Smolka style refinement: regroup states by
   (current class, outgoing signature) until the number of classes is
   stable. *)
let classes_of (t : Lts.t) : partition =
  let n = Array.length t.Lts.states in
  let classes = Array.make n 0 in
  let num = ref (if n = 0 then 0 else 1) in
  let changed = ref true in
  while !changed do
    let sigs = signatures t classes in
    let table = Hashtbl.create 16 in
    let next = ref 0 in
    let classes' =
      Array.init n (fun i ->
          let key = (classes.(i), sigs.(i)) in
          match Hashtbl.find_opt table key with
          | Some c -> c
          | None ->
            let c = !next in
            incr next;
            Hashtbl.add table key c;
            c)
    in
    changed := !next <> !num;
    num := !next;
    Array.blit classes' 0 classes 0 n
  done;
  classes

let num_classes (p : partition) =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 p

let class_of (p : partition) s = p.(s)

let quotient (t : Lts.t) (p : partition) : Lts.t =
  let k = num_classes p in
  (* representative = lowest-numbered state of each class *)
  let repr = Array.make k (-1) in
  Array.iteri
    (fun s c -> if repr.(c) = -1 then repr.(c) <- s)
    p;
  let states = Array.map (fun s -> t.Lts.states.(s)) repr in
  let seen = Hashtbl.create 64 in
  let transitions =
    List.filter
      (fun (tr : Lts.transition) ->
        let key = (p.(tr.Lts.source), label tr, p.(tr.Lts.target)) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      t.Lts.transitions
    |> List.map (fun (tr : Lts.transition) ->
           {
             Lts.source = p.(tr.Lts.source);
             event = tr.Lts.event;
             visible = tr.Lts.visible;
             target = p.(tr.Lts.target);
           })
  in
  {
    Lts.initial = p.(t.Lts.initial);
    states;
    transitions;
    complete = t.Lts.complete;
  }

let minimise t = quotient t (classes_of t)

(* τ-closure per state: everything reachable by concealed moves,
   including the state itself. *)
let tau_closure (t : Lts.t) =
  let n = Array.length t.Lts.states in
  let succ = Array.make n [] in
  List.iter
    (fun (tr : Lts.transition) ->
      if not tr.Lts.visible then
        succ.(tr.Lts.source) <- tr.Lts.target :: succ.(tr.Lts.source))
    t.Lts.transitions;
  let closure = Array.make n [] in
  for s = 0 to n - 1 do
    let visited = Array.make n false in
    let rec dfs v =
      if not visited.(v) then begin
        visited.(v) <- true;
        List.iter dfs succ.(v)
      end
    in
    dfs s;
    closure.(s) <-
      List.filter (fun v -> visited.(v)) (List.init n Fun.id)
  done;
  closure

let saturate (t : Lts.t) : Lts.t =
  let closure = tau_closure t in
  let seen = Hashtbl.create 64 in
  let add acc (tr : Lts.transition) =
    let key = (tr.Lts.source, label tr, tr.Lts.target) in
    if Hashtbl.mem seen key then acc
    else begin
      Hashtbl.add seen key ();
      tr :: acc
    end
  in
  (* weak visible steps: τ* e τ* *)
  let weak_visible =
    List.concat_map
      (fun (tr : Lts.transition) ->
        if not tr.Lts.visible then []
        else
          List.concat_map
            (fun src ->
              if List.mem tr.Lts.source closure.(src) then
                List.map
                  (fun tgt ->
                    {
                      Lts.source = src;
                      event = tr.Lts.event;
                      visible = true;
                      target = tgt;
                    })
                  closure.(tr.Lts.target)
              else [])
            (List.init (Array.length t.Lts.states) Fun.id))
      t.Lts.transitions
  in
  (* weak silent steps: τ* (reflexive, so every state can "answer" a τ
     by staying put — the standard encoding of weak bisimulation as
     strong bisimulation on the saturated graph) *)
  let tau_event = Csp_trace.Event.v "__tau__" (Csp_trace.Value.Sym "TAU") in
  let weak_tau =
    List.concat_map
      (fun src ->
        List.map
          (fun tgt ->
            { Lts.source = src; event = tau_event; visible = false; target = tgt })
          closure.(src))
      (List.init (Array.length t.Lts.states) Fun.id)
  in
  {
    t with
    Lts.transitions =
      List.rev (List.fold_left add [] (weak_visible @ weak_tau));
  }

let weak_classes t = classes_of (saturate t)

let combine tp tq =
  let np = Array.length tp.Lts.states in
  let shift (tr : Lts.transition) =
    {
      Lts.source = tr.Lts.source + np;
      event = tr.Lts.event;
      visible = tr.Lts.visible;
      target = tr.Lts.target + np;
    }
  in
  {
    Lts.initial = tp.Lts.initial;
    states = Array.append tp.Lts.states tq.Lts.states;
    transitions = tp.Lts.transitions @ List.map shift tq.Lts.transitions;
    complete = true;
  }

let weak_equivalent ?(max_states = 2000) cfg p q =
  let tp = Lts.explore ~max_states cfg p and tq = Lts.explore ~max_states cfg q in
  if not (tp.Lts.complete && tq.Lts.complete) then false
  else begin
    let np = Array.length tp.Lts.states in
    let classes = weak_classes (combine tp tq) in
    classes.(tp.Lts.initial) = classes.(tq.Lts.initial + np)
  end

let equivalent ?(max_states = 2000) cfg p q =
  let tp = Lts.explore ~max_states cfg p and tq = Lts.explore ~max_states cfg q in
  if not (tp.Lts.complete && tq.Lts.complete) then false
  else begin
    let np = Array.length tp.Lts.states in
    let classes = classes_of (combine tp tq) in
    classes.(tp.Lts.initial) = classes.(tq.Lts.initial + np)
  end
