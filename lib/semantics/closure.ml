module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module Channel = Csp_trace.Channel

(* Children are sorted by [Event.compare] and duplicate-free, so that
   structural recursion implements set operations and equality. *)
type t = Node of (Event.t * t) list

let empty = Node []
let prefix a p = Node [ (a, p) ]

let rec union (Node xs) (Node ys) = Node (merge xs ys)

and merge xs ys =
  match xs, ys with
  | [], rest | rest, [] -> rest
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then (e1, t1) :: merge xs' ys
    else if c > 0 then (e2, t2) :: merge xs ys'
    else (e1, union t1 t2) :: merge xs' ys'

let union_all ts = List.fold_left union empty ts

let rec inter (Node xs) (Node ys) = Node (inter_children xs ys)

and inter_children xs ys =
  match xs, ys with
  | [], _ | _, [] -> []
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then inter_children xs' ys
    else if c > 0 then inter_children xs ys'
    else (e1, inter t1 t2) :: inter_children xs' ys'

let lookup e children =
  let rec go = function
    | [] -> None
    | (e', t) :: rest ->
      let c = Event.compare e e' in
      if c = 0 then Some t else if c < 0 then None else go rest
  in
  go children

let rec mem s (Node children) =
  match s with
  | [] -> true
  | e :: rest -> (
    match lookup e children with Some child -> mem rest child | None -> false)

let rec add s t =
  match s with
  | [] -> t
  | e :: rest ->
    let (Node children) = t in
    let rec go = function
      | [] -> [ (e, add rest empty) ]
      | ((e', t') :: tail) as all ->
        let c = Event.compare e e' in
        if c < 0 then (e, add rest empty) :: all
        else if c = 0 then (e', add rest t') :: tail
        else (e', t') :: go tail
    in
    Node (go children)

let of_traces ss = List.fold_left (fun acc s -> add s acc) empty ss

let rec to_traces (Node children) =
  [] :: List.concat_map (fun (e, t) -> List.map (fun s -> e :: s) (to_traces t)) children

let rec maximal_traces (Node children) =
  match children with
  | [] -> [ [] ]
  | _ ->
    List.concat_map
      (fun (e, t) -> List.map (fun s -> e :: s) (maximal_traces t))
      children

let rec cardinal (Node children) =
  1 + List.fold_left (fun acc (_, t) -> acc + cardinal t) 0 children

let rec depth (Node children) =
  List.fold_left (fun acc (_, t) -> max acc (1 + depth t)) 0 children

let rec truncate n (Node children) =
  if n <= 0 then empty
  else Node (List.map (fun (e, t) -> (e, truncate (n - 1) t)) children)

let rec hide in_c (Node children) =
  let visible, hidden =
    List.partition (fun ((e : Event.t), _) -> not (in_c e.chan)) children
  in
  let base = Node (List.map (fun (e, t) -> (e, hide in_c t)) visible) in
  List.fold_left (fun acc (_, t) -> union acc (hide in_c t)) base hidden

let restrict in_c t = hide (fun c -> not (in_c c)) t

let rec interleave ~events ~extra t =
  let (Node children) = t in
  let own = List.map (fun (e, t') -> (e, interleave ~events ~extra t')) children in
  let padded =
    if extra <= 0 then []
    else
      List.map (fun e -> (e, interleave ~events ~extra:(extra - 1) t)) events
  in
  List.fold_left union (Node own) (List.map (fun c -> Node [ c ]) padded)

let rec par ~in_x ~in_y (Node ps as p) (Node qs as q) =
  let from_p =
    List.concat_map
      (fun ((e : Event.t), p') ->
        if in_y e.chan then
          match lookup e qs with
          | Some q' -> [ (e, par ~in_x ~in_y p' q') ]
          | None -> []
        else [ (e, par ~in_x ~in_y p' q) ])
      ps
  in
  let from_q =
    List.concat_map
      (fun ((e : Event.t), q') ->
        if in_x e.chan then [] (* shared events were handled from the P side *)
        else [ (e, par ~in_x ~in_y p q') ])
      qs
  in
  List.fold_left
    (fun acc c -> union acc (Node [ c ]))
    empty (from_p @ from_q)

let rec equal (Node xs) (Node ys) =
  match xs, ys with
  | [], [] -> true
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    Event.compare e1 e2 = 0 && equal t1 t2 && equal (Node xs') (Node ys')
  | _ -> false

let rec subset (Node xs) (Node ys) =
  List.for_all
    (fun (e, t) ->
      match lookup e ys with Some t' -> subset t t' | None -> false)
    xs

let first_difference a b =
  let traces_sorted t =
    List.sort
      (fun s1 s2 ->
        let c = Stdlib.compare (List.length s1) (List.length s2) in
        if c <> 0 then c else Trace.compare s1 s2)
      (to_traces t)
  in
  let rec find = function
    | [] -> None
    | s :: rest -> if mem s b then find rest else Some s
  in
  match find (traces_sorted a) with
  | Some s -> Some s
  | None ->
    let rec find' = function
      | [] -> None
      | s :: rest -> if mem s a then find' rest else Some s
    in
    find' (traces_sorted b)

let events t =
  let rec go acc (Node children) =
    List.fold_left
      (fun acc (e, t') ->
        let acc = if List.exists (Event.equal e) acc then acc else e :: acc in
        go acc t')
      acc children
  in
  List.rev (go [] t)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Trace.pp)
    (maximal_traces t)
