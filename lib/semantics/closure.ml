module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module Channel = Csp_trace.Channel
module Obs = Csp_obs.Obs
module Pool = Csp_parallel.Pool

(* Wall-clock spent interning nodes (the unique-table critical section
   plus the cardinal/depth folds).  Recorded only while telemetry is
   enabled — [node] is the hottest function in the kernel, so the
   dormant path must not even read the clock. *)
let node_timer = Obs.Timer.make "closure.node"

(* Hash-consed prefix-closure tries (BDD-style unique/compute tables).

   Children are sorted by [Event.compare] and duplicate-free, so that
   structural recursion implements set operations — and every node is
   interned in a global unique table, so that structurally equal
   closures are *physically* equal.  Consequences exploited throughout:

   - [equal] is pointer equality (O(1));
   - [cardinal] and [depth] are cached per node (O(1));
   - set operations are memoised in compute tables keyed on node ids,
     so the approximation chains of the denotational semantics and the
     state-space sweeps of the bounded checker turn into cache hits;
   - shared subtrees are represented once, which is what keeps the
     3ⁿ-state chains of E11 tractable.

   Node ids are allocated from a monotonic counter and never reused, so
   compute-table entries keyed on the id of a dead node can never be
   confused with a live one.  The unique table is weak: nodes
   unreachable from the program (and from the compute tables) may be
   collected and later re-interned under a fresh id. *)

type t = {
  id : int;
  children : (Event.t * t) list;
  cardinal : int;  (* number of member traces = number of trie nodes *)
  depth : int;     (* length of the longest member trace *)
}

let id t = t.id
let hash t = t.id land max_int
let cardinal t = t.cardinal
let depth t = t.depth
let equal a b = a == b

(* ---- the unique table ------------------------------------------------ *)

let children_equal xs ys =
  let rec go xs ys =
    match xs, ys with
    | [], [] -> true
    | (e1, t1) :: xs', (e2, t2) :: ys' ->
      t1 == t2 && Event.equal e1 e2 && go xs' ys'
    | _ -> false
  in
  go xs ys

let children_hash xs =
  List.fold_left
    (fun h (e, t) -> ((((h * 31) + Event.hash e) * 31) + t.id) land max_int)
    17 xs

module Unique = Weak.Make (struct
  type nonrec t = t

  let equal a b = children_equal a.children b.children
  let hash a = children_hash a.children
end)

(* The unique table is sharded by the children hash — one weak table
   and one mutex per shard — so concurrent interning on several
   domains contends per shard, not globally (mirroring [Proc]'s
   sharded intern table).  The critical sections are tiny (a hash
   lookup / insert); recursive descent and the cardinal/depth folds
   happen outside any lock. *)
let n_shards = 16
let shard_mask = n_shards - 1

(* Contended mutex acquisitions, shards and memo lock together (see
   [Proc.lock_waits]): probed with [try_lock] so the sequential fast
   path pays nothing. *)
let lock_waits = Atomic.make 0

type shard = {
  s_lock : Mutex.t;
  s_table : Unique.t;
  mutable s_misses : int;  (* nodes created through this shard *)
}

let shards =
  Array.init n_shards (fun _ ->
      { s_lock = Mutex.create (); s_table = Unique.create 512; s_misses = 0 })

let[@inline] with_lock m f =
  if not (Mutex.try_lock m) then begin
    Atomic.incr lock_waits;
    Mutex.lock m
  end;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* The memo lock guards the shared compute tables and their counters
   in sequential mode; parallel phases bypass it entirely (see the
   arena machinery below). *)
let memo_lock = Mutex.create ()
let[@inline] locked f = with_lock memo_lock f

let next_id = Atomic.make 1
let memo_hits = ref 0
let memo_misses = ref 0

let empty = { id = 0; children = []; cardinal = 1; depth = 0 }

let[@inline] shard_of_children children =
  shards.(children_hash children land shard_mask)

let () = Unique.add (shard_of_children []).s_table empty

let nodes_created () =
  1 (* [empty] *) + Array.fold_left (fun a sh -> a + sh.s_misses) 0 shards

(* Lock-free read probe, locked insert: published nodes are only ever
   added under their shard's lock and [children_equal] compares
   children by pointer, so a positive unlocked probe can only return
   the canonical node.  A concurrent resize may make the probe miss or
   raise — either falls through to the locked path, which re-checks
   under mutual exclusion before publishing.  The id counter is only
   consumed on a real insert, so sequential runs still see dense ids. *)
let intern_children children =
  let cardinal =
    List.fold_left (fun acc (_, t) -> acc + t.cardinal) 1 children
  and depth =
    List.fold_left (fun acc (_, t) -> max acc (1 + t.depth)) 0 children
  in
  let sh = shard_of_children children in
  let probe = { id = -1; children; cardinal; depth } in
  let slow () =
    with_lock sh.s_lock (fun () ->
        match Unique.find_opt sh.s_table probe with
        | Some interned -> interned
        | None ->
          let candidate =
            { id = Atomic.fetch_and_add next_id 1; children; cardinal; depth }
          in
          Unique.add sh.s_table candidate;
          sh.s_misses <- sh.s_misses + 1;
          candidate)
  in
  match Unique.find_opt sh.s_table probe with
  | Some interned -> interned
  | None -> slow ()
  | exception _ -> slow ()

let node children =
  match children with
  | [] -> empty
  | _ ->
    (* manual enabled branch rather than [Timer.time]: no closure
       allocation on the hot path *)
    if Obs.enabled () then begin
      let t0 = Obs.now_ns () in
      let r = intern_children children in
      Obs.Timer.observe_ns node_timer (Obs.now_ns () -. t0);
      r
    end
    else intern_children children

let prefix a p = node [ (a, p) ]

(* ---- compute tables -------------------------------------------------- *)

module Int_pair = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = ((a * 31) + b) land max_int
end

module Memo = Hashtbl.Make (Int_pair)

let union_tbl : t Memo.t = Memo.create 4096
let inter_tbl : t Memo.t = Memo.create 1024
let truncate_tbl : t Memo.t = Memo.create 1024
let subset_tbl : bool Memo.t = Memo.create 1024

(* ---- domain-local memo arenas ---------------------------------------- *)

(* During a parallel phase (bracketed by the pool's phase hooks) the
   shared compute tables are frozen read-only: every domain reads them
   without a lock and writes fresh results into its own arena — a
   private mirror of the four tables plus local hit/miss counters —
   generalizing [Step.view]'s overlay pattern.  At the phase exit
   (every worker quiescent) the arenas are flushed into the shared
   tables add-if-absent and reset, so the next phase (or sequential
   code) sees every result computed anywhere.

   Arenas live in domain-local storage: a pool worker allocates one on
   first use and keeps it for the pool's lifetime; the registry below
   lets the exit hook find every arena ever created. *)
type arena = {
  a_union : t Memo.t;
  a_inter : t Memo.t;
  a_truncate : t Memo.t;
  a_subset : bool Memo.t;
  mutable a_hits : int;
  mutable a_misses : int;
}

(* Depth, not a flag: defensive against nested enter/exit pairs (the
   pool never nests phases, but a miscounted flag would corrupt the
   shared tables silently; a depth only delays the flush). *)
let phase_depth = Atomic.make 0

let arenas : arena list ref = ref []
let arenas_lock = Mutex.create ()

let arena_key =
  Domain.DLS.new_key (fun () ->
      let a =
        {
          a_union = Memo.create 256;
          a_inter = Memo.create 64;
          a_truncate = Memo.create 64;
          a_subset = Memo.create 64;
          a_hits = 0;
          a_misses = 0;
        }
      in
      with_lock arenas_lock (fun () -> arenas := a :: !arenas);
      a)

let[@inline] my_arena () = Domain.DLS.get arena_key

let flush_arena a =
  (* runs at phase exit with every worker quiescent; the memo lock is
     still taken so a concurrent [stats]/sequential reader is safe *)
  locked (fun () ->
      let add_absent shared local =
        Memo.iter
          (fun k v -> if not (Memo.mem shared k) then Memo.add shared k v)
          local
      in
      add_absent union_tbl a.a_union;
      add_absent inter_tbl a.a_inter;
      add_absent truncate_tbl a.a_truncate;
      add_absent subset_tbl a.a_subset;
      memo_hits := !memo_hits + a.a_hits;
      memo_misses := !memo_misses + a.a_misses);
  Memo.reset a.a_union;
  Memo.reset a.a_inter;
  Memo.reset a.a_truncate;
  Memo.reset a.a_subset;
  a.a_hits <- 0;
  a.a_misses <- 0

let () =
  Pool.register_phase_hooks
    ~enter:(fun () -> Atomic.incr phase_depth)
    ~exit:(fun () ->
      if Atomic.fetch_and_add phase_depth (-1) = 1 then
        List.iter flush_arena (with_lock arenas_lock (fun () -> !arenas)))

(* [arena_of] projects the matching private table out of the caller's
   arena, so one find/add pair serves all four shared tables. *)
let memo_find tbl arena_of key =
  if Atomic.get phase_depth > 0 then begin
    (* shared tables are frozen: read them without the lock *)
    match Memo.find_opt tbl key with
    | Some _ as r ->
      let a = my_arena () in
      a.a_hits <- a.a_hits + 1;
      r
    | None -> (
      let a = my_arena () in
      match Memo.find_opt (arena_of a) key with
      | Some _ as r ->
        a.a_hits <- a.a_hits + 1;
        r
      | None ->
        a.a_misses <- a.a_misses + 1;
        None)
  end
  else
    locked (fun () ->
        match Memo.find_opt tbl key with
        | Some _ as r ->
          incr memo_hits;
          r
        | None ->
          incr memo_misses;
          None)

let memo_add tbl arena_of key v =
  if Atomic.get phase_depth > 0 then Memo.replace (arena_of (my_arena ())) key v
  else locked (fun () -> Memo.replace tbl key v)

type stats = {
  nodes : int;
  memo_hits : int;
  memo_misses : int;
  lock_waits : int;
  shards : int;
  max_shard_len : int;
}

let stats () =
  let max_len =
    Array.fold_left
      (fun acc sh ->
        max acc (with_lock sh.s_lock (fun () -> Unique.count sh.s_table)))
      0 shards
  in
  locked (fun () ->
      {
        nodes = nodes_created ();
        memo_hits = !memo_hits;
        memo_misses = !memo_misses;
        lock_waits = Atomic.get lock_waits;
        shards = n_shards;
        max_shard_len = max_len;
      })

let clear_caches () =
  locked (fun () ->
      Memo.reset union_tbl;
      Memo.reset inter_tbl;
      Memo.reset truncate_tbl;
      Memo.reset subset_tbl)

let () =
  Obs.register_source "closure" (fun () ->
      let s = stats () in
      [
        ("nodes", Obs.Int s.nodes);
        ("memo_hits", Obs.Int s.memo_hits);
        ("memo_misses", Obs.Int s.memo_misses);
        ("lock_waits", Obs.Int s.lock_waits);
        ("shards", Obs.Int s.shards);
        ("max_shard_len", Obs.Int s.max_shard_len);
      ])

(* ---- set operations -------------------------------------------------- *)

let rec union a b =
  if a == b then a
  else if a == empty then b
  else if b == empty then a
  else
    (* union is commutative: normalise the key so both orders hit *)
    let key = if a.id <= b.id then (a.id, b.id) else (b.id, a.id) in
    match memo_find union_tbl (fun ar -> ar.a_union) key with
    | Some r -> r
    | None ->
      let r = node (merge a.children b.children) in
      memo_add union_tbl (fun ar -> ar.a_union) key r;
      r

and merge xs ys =
  match xs, ys with
  | [], rest | rest, [] -> rest
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then (e1, t1) :: merge xs' ys
    else if c > 0 then (e2, t2) :: merge xs ys'
    else (e1, union t1 t2) :: merge xs' ys'

(* Balanced pairwise reduction: folding [union] left-to-right makes the
   accumulator grow with every operand (O(n·m) merges on an n-way Input
   fan-out); halving rounds keep both operands of every merge small. *)
let union_all ts =
  let rec halve = function
    | a :: b :: rest -> union a b :: halve rest
    | ([] | [ _ ]) as rest -> rest
  in
  let rec go = function
    | [] -> empty
    | [ t ] -> t
    | ts -> go (halve ts)
  in
  go ts

let rec inter a b =
  if a == b then a
  else if a == empty || b == empty then empty
  else
    let key = if a.id <= b.id then (a.id, b.id) else (b.id, a.id) in
    match memo_find inter_tbl (fun ar -> ar.a_inter) key with
    | Some r -> r
    | None ->
      let r = node (inter_children a.children b.children) in
      memo_add inter_tbl (fun ar -> ar.a_inter) key r;
      r

and inter_children xs ys =
  match xs, ys with
  | [], _ | _, [] -> []
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then inter_children xs' ys
    else if c > 0 then inter_children xs ys'
    else (e1, inter t1 t2) :: inter_children xs' ys'

let lookup e children =
  let rec go = function
    | [] -> None
    | (e', t) :: rest ->
      let c = Event.compare e e' in
      if c = 0 then Some t else if c < 0 then None else go rest
  in
  go children

let rec mem s t =
  match s with
  | [] -> true
  | e :: rest -> (
    match lookup e t.children with Some child -> mem rest child | None -> false)

let rec add s t =
  match s with
  | [] -> t
  | e :: rest ->
    let rec go = function
      | [] -> [ (e, add rest empty) ]
      | ((e', t') :: tail) as all ->
        let c = Event.compare e e' in
        if c < 0 then (e, add rest empty) :: all
        else if c = 0 then (e', add rest t') :: tail
        else (e', t') :: go tail
    in
    node (go t.children)

let of_traces ss = List.fold_left (fun acc s -> add s acc) empty ss

let rec to_traces t =
  []
  :: List.concat_map
       (fun (e, t') -> List.map (fun s -> e :: s) (to_traces t'))
       t.children

let fold_traces f t init =
  let rec go rev_prefix t acc =
    let acc = f (List.rev rev_prefix) acc in
    List.fold_left
      (fun acc (e, t') -> go (e :: rev_prefix) t' acc)
      acc t.children
  in
  go [] t init

let rec maximal_traces t =
  match t.children with
  | [] -> [ [] ]
  | children ->
    List.concat_map
      (fun (e, t') -> List.map (fun s -> e :: s) (maximal_traces t'))
      children

let rec truncate n t =
  if n <= 0 then empty
  else if t.depth <= n then t (* already within the bound: share *)
  else
    let key = (n, t.id) in
    match memo_find truncate_tbl (fun ar -> ar.a_truncate) key with
    | Some r -> r
    | None ->
      let r = node (List.map (fun (e, t') -> (e, truncate (n - 1) t')) t.children) in
      memo_add truncate_tbl (fun ar -> ar.a_truncate) key r;
      r

(* [hide]/[par]/[interleave] close over predicates and so cannot key a
   global table; each call carries its own memo keyed on node ids, which
   still collapses the (heavily shared) subtree revisits within a call. *)
let hide in_c t =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some r -> r
    | None ->
      let visible, hidden =
        List.partition (fun ((e : Event.t), _) -> not (in_c e.chan)) t.children
      in
      let base = node (List.map (fun (e, t') -> (e, go t')) visible) in
      let r = List.fold_left (fun acc (_, t') -> union acc (go t')) base hidden in
      Hashtbl.add memo t.id r;
      r
  in
  go t

let restrict in_c t = hide (fun c -> not (in_c c)) t

let interleave ~events ~extra t =
  let memo : t Memo.t = Memo.create 64 in
  let rec go extra t =
    let key = (extra, t.id) in
    match Memo.find_opt memo key with
    | Some r -> r
    | None ->
      let own = List.map (fun (e, t') -> (e, go extra t')) t.children in
      let padded =
        if extra <= 0 then []
        else List.map (fun e -> (e, go (extra - 1) t)) events
      in
      let r =
        List.fold_left union (node own)
          (List.map (fun c -> node [ c ]) padded)
      in
      Memo.replace memo key r;
      r
  in
  go extra t

let par ~in_x ~in_y p q =
  let memo : t Memo.t = Memo.create 256 in
  let rec go p q =
    let key = (p.id, q.id) in
    match Memo.find_opt memo key with
    | Some r -> r
    | None ->
      let from_p =
        List.concat_map
          (fun ((e : Event.t), p') ->
            if in_y e.chan then
              match lookup e q.children with
              | Some q' -> [ (e, go p' q') ]
              | None -> []
            else [ (e, go p' q) ])
          p.children
      in
      let from_q =
        List.concat_map
          (fun ((e : Event.t), q') ->
            if in_x e.chan then [] (* shared events were handled from the P side *)
            else [ (e, go p q') ])
          q.children
      in
      let r =
        List.fold_left
          (fun acc c -> union acc (node [ c ]))
          empty (from_p @ from_q)
      in
      Memo.replace memo key r;
      r
  in
  go p q

let rec subset a b =
  if a == b || a == empty then true
  else if a.cardinal > b.cardinal || a.depth > b.depth then false
  else
    let key = (a.id, b.id) in
    match memo_find subset_tbl (fun ar -> ar.a_subset) key with
    | Some r -> r
    | None ->
      let r =
        List.for_all
          (fun (e, t) ->
            match lookup e b.children with
            | Some t' -> subset t t'
            | None -> false)
          a.children
      in
      memo_add subset_tbl (fun ar -> ar.a_subset) key r;
      r

(* Synchronous walk over the shared part of both tries — no trace
   materialisation.  Physically equal subtrees are skipped wholesale;
   BFS order makes the first one-sided event a shortest witness.  As
   before, a trace of [a] missing from [b] is preferred over the
   converse. *)
let first_difference a b =
  if a == b then None
  else begin
    let a_diff = ref None and b_diff = ref None in
    let queue = Queue.create () in
    Queue.add ([], a, b) queue;
    (try
       while not (Queue.is_empty queue) do
         let rev_path, na, nb = Queue.pop queue in
         if na != nb then begin
           let rec walk xs ys =
             match xs, ys with
             | [], [] -> ()
             | (e, _) :: _, [] ->
               a_diff := Some (List.rev (e :: rev_path));
               raise Exit
             | [], (e, _) :: _ ->
               if !b_diff = None then b_diff := Some (List.rev (e :: rev_path))
             | (e1, t1) :: xs', (e2, t2) :: ys' ->
               let c = Event.compare e1 e2 in
               if c < 0 then begin
                 a_diff := Some (List.rev (e1 :: rev_path));
                 raise Exit
               end
               else if c > 0 then begin
                 if !b_diff = None then
                   b_diff := Some (List.rev (e2 :: rev_path));
                 walk xs ys'
               end
               else begin
                 Queue.add (e1 :: rev_path, t1, t2) queue;
                 walk xs' ys'
               end
           in
           walk na.children nb.children
         end
       done
     with Exit -> ());
    match !a_diff with Some _ as r -> r | None -> !b_diff
  end

module Event_set = Set.Make (Event)

let events t =
  (* visit every distinct node once: sharing makes the walk linear in
     the number of *unique* nodes *)
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref Event_set.empty in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      List.iter
        (fun (e, t') ->
          acc := Event_set.add e !acc;
          go t')
        t.children
    end
  in
  go t;
  Event_set.elements !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Trace.pp)
    (maximal_traces t)
