module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc
module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

let compiles = Obs.Counter.make "compiled.compiles"
let states_compiled = Obs.Counter.make "compiled.states"
let fallback_rows = Obs.Counter.make "compiled.fallbacks"
let compile_ms_gauge = Obs.Gauge.make "compiled.compile_ms"
let compile_timer = Obs.Timer.make "compiled.compile"

module Int_tbl = Hashtbl.Make (Int)

module Event_tbl = Hashtbl.Make (struct
  type t = Event.t

  let equal = Event.equal
  let hash = Event.hash
end)

(* The flat automaton.  State ids are dense ints in BFS discovery
   order from the root; successor rows live in one shared packed pool
   (CSR layout: [row_off]/[row_len] slice [pk_*]).  [row_off.(s) = -1]
   marks a state whose row is not materialised yet.  All arrays are
   amortised-doubling growable (OCaml 5.1 has no Dynarray). *)
type t = {
  cfg : Step.config;
  mutable nodes : Proc.t array;  (* state id -> interned node *)
  mutable n_states : int;
  cid_of : int Int_tbl.t;  (* node id -> state id *)
  mutable row_off : int array;
  mutable row_len : int array;
  mutable pk_event : int array;
  mutable pk_target : int array;
  mutable pk_visible : Bytes.t;
  mutable pk_len : int;
  mutable events : Event.t array;
  mutable n_events : int;
  eid_of : int Event_tbl.t;
  mutable n_fallbacks : int;
  mutable ms : float;
}

let root t = t.nodes.(0)
let config t = t.cfg
let n_states t = t.n_states
let n_transitions t = t.pk_len
let n_events t = t.n_events
let fallbacks t = t.n_fallbacks
let compile_ms t = t.ms

let n_rows t =
  let n = ref 0 in
  for s = 0 to t.n_states - 1 do
    if t.row_off.(s) >= 0 then incr n
  done;
  !n

let grow_int a len fill =
  let b = Array.make (max len (2 * Array.length a)) fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_states t n =
  if n > Array.length t.nodes then begin
    t.nodes <- grow_int t.nodes n t.nodes.(0);
    t.row_off <- grow_int t.row_off n (-1);
    t.row_len <- grow_int t.row_len n 0
  end

let ensure_pool t n =
  if n > Array.length t.pk_event then begin
    t.pk_event <- grow_int t.pk_event n 0;
    t.pk_target <- grow_int t.pk_target n 0;
    let b = Bytes.make (max n (2 * Bytes.length t.pk_visible)) '\000' in
    Bytes.blit t.pk_visible 0 b 0 t.pk_len;
    t.pk_visible <- b
  end

let intern_event t e =
  match Event_tbl.find_opt t.eid_of e with
  | Some i -> i
  | None ->
    let i = t.n_events in
    if i >= Array.length t.events then t.events <- grow_int t.events (i + 1) e;
    t.events.(i) <- e;
    Event_tbl.add t.eid_of e i;
    t.n_events <- i + 1;
    i

let intern_state t (q : Proc.t) =
  match Int_tbl.find_opt t.cid_of (Proc.id q) with
  | Some s -> s
  | None ->
    let s = t.n_states in
    ensure_states t (s + 1);
    t.nodes.(s) <- q;
    t.row_off.(s) <- -1;
    t.row_len.(s) <- 0;
    Int_tbl.add t.cid_of (Proc.id q) s;
    t.n_states <- s + 1;
    Obs.Counter.incr states_compiled;
    s

(* Pack one state's transition list.  Target interning may assign
   fresh ids (and grow the state arrays); event/visibility/target go
   into parallel pools so the row is three cache-friendly int walks at
   query time. *)
let append_row t s ts =
  let len = List.length ts in
  ensure_pool t (t.pk_len + len);
  t.row_off.(s) <- t.pk_len;
  t.row_len.(s) <- len;
  List.iter
    (fun (e, vis, q') ->
      let k = t.pk_len in
      t.pk_event.(k) <- intern_event t e;
      t.pk_target.(k) <- intern_state t q';
      Bytes.set t.pk_visible k
        (match (vis : Step.visibility) with
        | Step.Visible -> '\001'
        | Step.Hidden -> '\000');
      t.pk_len <- k + 1)
    ts

let materialise t s =
  if t.row_off.(s) < 0 then begin
    t.n_fallbacks <- t.n_fallbacks + 1;
    Obs.Counter.incr fallback_rows;
    append_row t s (Step.transitions_i t.cfg t.nodes.(s))
  end

let create cfg (root : Proc.t) =
  let t =
    {
      cfg;
      nodes = Array.make 64 root;
      n_states = 0;
      cid_of = Int_tbl.create 64;
      row_off = Array.make 64 (-1);
      row_len = Array.make 64 0;
      pk_event = Array.make 256 0;
      pk_target = Array.make 256 0;
      pk_visible = Bytes.make 256 '\000';
      pk_len = 0;
      events = Array.make 16 (Event.vi "compiled-sentinel" 0);
      n_events = 0;
      eid_of = Event_tbl.create 16;
      n_fallbacks = 0;
      ms = 0.0;
    }
  in
  ignore (intern_state t root);
  t

let compile ?(budget = 200_000) cfg p =
  Obs.Counter.incr compiles;
  Obs.span ~cat:"compiled" "compile"
    ~args:(fun () -> [ ("budget", Obs.Int budget) ])
  @@ fun () ->
  let t0 = Obs.now_ns () in
  let t = create cfg (Proc.intern p) in
  (* FIFO over fresh states = BFS discovery order, the same order
     [Lts.explore] assigns its state numbers in; states dequeued past
     the budget keep their ids but stay unmaterialised. *)
  let queue = Queue.create () in
  Queue.add 0 queue;
  let materialised = ref 0 in
  while (not (Queue.is_empty queue)) && !materialised < budget do
    let s = Queue.pop queue in
    let before = t.n_states in
    append_row t s (Step.transitions_i cfg t.nodes.(s));
    incr materialised;
    for s' = before to t.n_states - 1 do
      Queue.add s' queue
    done
  done;
  let ms = (Obs.now_ns () -. t0) /. 1e6 in
  t.ms <- ms;
  Obs.Gauge.set compile_ms_gauge ms;
  Obs.Timer.observe_ns compile_timer (ms *. 1e6);
  t

let row_transitions t s =
  let off = t.row_off.(s) in
  List.init t.row_len.(s) (fun i ->
      let k = off + i in
      ( t.events.(t.pk_event.(k)),
        (if Bytes.get t.pk_visible k = '\000' then Step.Hidden
         else Step.Visible),
        t.nodes.(t.pk_target.(k)) ))

let transitions_i t q =
  match Int_tbl.find_opt t.cid_of (Proc.id q) with
  | None -> Step.transitions_i t.cfg q
  | Some s ->
    materialise t s;
    row_transitions t s

(* ---- exploration on the flat tables ---------------------------------- *)

type raw = {
  raw_initial : int;
  raw_states : Proc.t array;
  raw_transitions : (int * Event.t * bool * int) list;
  raw_complete : bool;
  raw_truncated : bool array;
}

let explore_raw ?(max_states = 2000) ?pool t =
  Obs.span ~cat:"explore" "explore-compiled"
    ~args:(fun () -> [ ("max_states", Obs.Int max_states) ])
  @@ fun () ->
  (* A multi-domain pool runs a speculative {!Frontier} session over
     the *interned nodes* (never the CSR arrays — those are
     single-writer and grown only by this coordinator): workers race
     ahead deriving the transition lists of states past the compile
     budget, the coordinator consumes them when it appends rows.
     States inside the budget have rows already; speculation on them
     costs only shared-cache hits. *)
  let fs =
    match pool with
    | Some pool when Pool.domains pool > 1 ->
      Some (Frontier.start ~pool ~cap:max_states t.cfg)
    | _ -> None
  in
  let row_of s =
    if t.row_off.(s) < 0 then begin
      t.n_fallbacks <- t.n_fallbacks + 1;
      Obs.Counter.incr fallback_rows;
      let ts =
        match fs with
        | Some fs -> Frontier.get fs t.nodes.(s)
        | None -> Step.transitions_i t.cfg t.nodes.(s)
      in
      append_row t s ts
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Frontier.stop fs)
  @@ fun () ->
  Option.iter (fun fs -> Frontier.prefetch fs t.nodes.(0)) fs;
  (* Dense visited set: state id -> query number, -1 = unseen.  This
     replaces the per-exploration hashtable of the interpreted path.
     The FIFO dequeues states in BFS discovery order — exactly the
     order the historical layer loop processed them — so the query
     numbering replays [Lts.explore]'s exactly (transitions in row =
     derivation order, interning stops at [max_states] mid-row just as
     the interpreter does). *)
  let visited = ref (Array.make (max 64 t.n_states) (-1)) in
  let ensure_visited () =
    if t.n_states > Array.length !visited then
      visited := grow_int !visited t.n_states (-1)
  in
  let order = ref (Array.make 64 0) in
  let n_q = ref 0 in
  let qintern s =
    let i = !n_q in
    (!visited).(s) <- i;
    if i >= Array.length !order then order := grow_int !order (i + 1) 0;
    (!order).(i) <- s;
    incr n_q;
    i
  in
  let transitions = ref [] in
  let complete = ref true in
  let truncated_ids = ref [] in
  let initial = qintern 0 in
  let queue = Queue.create () in
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    row_of s;
    ensure_visited ();
    let v = !visited in
    let i = v.(s) in
    let dropped = ref false in
    let off = t.row_off.(s) in
    for k = off to off + t.row_len.(s) - 1 do
      let s' = t.pk_target.(k) in
      let e = t.events.(t.pk_event.(k)) in
      let visible = Bytes.get t.pk_visible k <> '\000' in
      if !n_q >= max_states then begin
        (* record the transition only if the target is already
           numbered; otherwise the source keeps an unrecorded way
           out and must not read as a deadlock *)
        let j = v.(s') in
        if j >= 0 then transitions := (i, e, visible, j) :: !transitions
        else begin
          complete := false;
          dropped := true
        end
      end
      else begin
        let j = if v.(s') >= 0 then v.(s') else -1 in
        let j =
          if j >= 0 then j
          else begin
            let j = qintern s' in
            Queue.add s' queue;
            j
          end
        in
        transitions := (i, e, visible, j) :: !transitions
      end
    done;
    if !dropped then truncated_ids := i :: !truncated_ids
  done;
  let truncated = Array.make !n_q false in
  List.iter (fun i -> truncated.(i) <- true) !truncated_ids;
  {
    raw_initial = initial;
    raw_states = Array.init !n_q (fun i -> t.nodes.((!order).(i)));
    raw_transitions = List.rev !transitions;
    raw_complete = !complete;
    raw_truncated = truncated;
  }
