module Event = Csp_trace.Event
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc
module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* Telemetry (observation only — never read back into exploration).
   Layer spans carry the frontier size and chunk count, so a Chrome
   trace of an exploration shows the BFS wavefront shrinking and
   growing; the merge span isolates the sequential cache fold-back at
   each barrier. *)
let layers_explored = Obs.Counter.make "lts.layers"
let states_interned = Obs.Counter.make "lts.states"

type state = int

type transition = {
  source : state;
  event : Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Process.t array;
  transitions : transition list;
  complete : bool;
  n_transitions : int;
  truncated : bool array;
}

let make ?truncated ~initial ~states ~transitions ~complete () =
  let truncated =
    match truncated with
    | Some a -> a
    | None -> Array.make (Array.length states) false
  in
  {
    initial;
    states;
    transitions;
    complete;
    n_transitions = List.length transitions;
    truncated;
  }

module Int_tbl = Hashtbl.Make (Int)

(* The deterministic exploration core: a FIFO over discovered states.
   Fresh states enqueue in discovery order, so dequeue order is
   exactly BFS layer order — this replays the historical
   layer-synchronous loop state for state: numbering, transition
   order, truncation at [max_states] and the [complete] flag are all
   functions of [get] alone.  [get] must return exactly
   [Step.transitions_i cfg q]; how it is computed (inline, cached, or
   speculatively by a work-stealing session) is unobservable.

   States are hash-consed nodes, so canonicalisation is a lookup on
   the node id — no per-state rehash of a deep term.  The [procs] list
   keeps every numbered node alive, so ids are stable for the whole
   exploration. *)
let explore_core ~max_states ~get (p : Proc.t) =
  let ids : int Int_tbl.t = Int_tbl.create 64 in
  let procs = ref [] and n_states = ref 0 in
  let intern (q : Proc.t) =
    match Int_tbl.find_opt ids (Proc.id q) with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      Int_tbl.add ids (Proc.id q) i;
      procs := q :: !procs;
      incr n_states;
      Obs.Counter.incr states_interned;
      (i, true)
  in
  let transitions = ref [] and n_transitions = ref 0 in
  let complete = ref true in
  (* state indices that had outgoing transitions dropped at the bound *)
  let truncated_ids = ref [] in
  let initial, _ = intern p in
  let queue = Queue.create () in
  Queue.add (initial, p) queue;
  (* layer accounting for the [lts.layers] counter: a layer starts at
     the first state discovered after the previous layer filled up *)
  let layer_start = ref 0 and layer_end = ref 1 in
  while not (Queue.is_empty queue) do
    let i, q = Queue.pop queue in
    if i = !layer_start then Obs.Counter.incr layers_explored;
    let dropped = ref false in
    List.iter
      (fun (e, vis, q') ->
        let visible =
          match (vis : Step.visibility) with
          | Step.Visible -> true
          | Step.Hidden -> false
        in
        if !n_states >= max_states then begin
          (* record the transition only if the target is already
             known; otherwise the source keeps an unrecorded way
             out and must not read as a deadlock *)
          match Int_tbl.find_opt ids (Proc.id q') with
          | Some j ->
            transitions :=
              { source = i; event = e; visible; target = j } :: !transitions;
            incr n_transitions
          | None ->
            complete := false;
            dropped := true
        end
        else begin
          let j, fresh = intern q' in
          transitions :=
            { source = i; event = e; visible; target = j } :: !transitions;
          incr n_transitions;
          if fresh then Queue.add (j, q') queue
        end)
      (get q);
    if !dropped then truncated_ids := i :: !truncated_ids;
    if i + 1 = !layer_end && !n_states > !layer_end then begin
      layer_start := !layer_end;
      layer_end := !n_states
    end
  done;
  let truncated = Array.make !n_states false in
  List.iter (fun i -> truncated.(i) <- true) !truncated_ids;
  {
    initial;
    states = Array.of_list (List.rev_map Proc.to_process !procs);
    transitions = List.rev !transitions;
    complete = !complete;
    n_transitions = !n_transitions;
    truncated;
  }

let explore_interpreted ~max_states ?pool cfg p =
  let p = Proc.intern p in
  Obs.span ~cat:"explore" "explore"
    ~args:(fun () -> [ ("max_states", Obs.Int max_states) ])
    (fun () ->
      match pool with
      | Some pool when Pool.domains pool > 1 ->
        (* Work-stealing speculation: workers derive transition lists
           ahead of the coordinator, which replays the sequential BFS
           consuming their results — byte-identical output, see
           {!Frontier}. *)
        let fs = Frontier.start ~pool ~cap:max_states cfg in
        Fun.protect
          ~finally:(fun () -> Frontier.stop fs)
          (fun () ->
            Frontier.prefetch fs p;
            explore_core ~max_states ~get:(Frontier.get fs) p)
      | _ -> explore_core ~max_states ~get:(Step.transitions_i cfg) p)

(* Relaxed exploration: workers explore autonomously, claiming states
   first-come-first-served; state numbers are claim order, not BFS
   order.  The promise is weakened to set-equality with the
   deterministic exploration (same state set, same transition set up
   to renumbering) — exact only for complete explorations; a bounded
   one may keep a different max_states-subset of the graph.  *)
let explore_relaxed ~max_states pool cfg (p : Proc.t) =
  let max_states = max 1 max_states in
  let n = Pool.domains pool in
  let n_shards = 64 in
  let shard_mask = n_shards - 1 in
  let locks = Array.init n_shards (fun _ -> Mutex.create ()) in
  (* node id → claim order, sharded *)
  let claimed : int Int_tbl.t array =
    Array.init n_shards (fun _ -> Int_tbl.create 64)
  in
  let order_counter = Atomic.make 0 in
  let overflowed = Atomic.make false in
  let views = Array.init n (fun _ -> Step.view cfg) in
  (* per-worker accumulators, merged after the join *)
  let states_acc : (int * Proc.t) list array = Array.make n [] in
  let trans_acc : (int * Event.t * Step.visibility * Proc.t) list array =
    Array.make n []
  in
  let claim q =
    let id = Proc.id q in
    let k = id land shard_mask in
    Mutex.lock locks.(k);
    let r =
      match Int_tbl.find_opt claimed.(k) id with
      | Some _ -> None
      | None ->
        let o = Atomic.fetch_and_add order_counter 1 in
        Int_tbl.add claimed.(k) id o;
        Some o
    in
    Mutex.unlock locks.(k);
    r
  in
  let lookup q =
    let id = Proc.id q in
    let k = id land shard_mask in
    Mutex.lock locks.(k);
    let r = Int_tbl.find_opt claimed.(k) id in
    Mutex.unlock locks.(k);
    r
  in
  let session =
    Pool.stealing_start pool ~auto_stop:true (fun ~worker ~push q ->
        match claim q with
        | None -> ()
        | Some o when o >= max_states -> Atomic.set overflowed true
        | Some o ->
          states_acc.(worker) <- (o, q) :: states_acc.(worker);
          Obs.Counter.incr states_interned;
          let ts = Step.transitions_view views.(worker) q in
          trans_acc.(worker) <-
            List.fold_left
              (fun acc (e, vis, q') -> (o, e, vis, q') :: acc)
              trans_acc.(worker) ts;
          List.iter (fun (_, _, q') -> if lookup q' = None then push q') ts)
  in
  Fun.protect
    ~finally:(fun () -> Pool.stealing_stop session)
    (fun () ->
      Pool.stealing_push session p;
      Pool.stealing_participate session);
  Array.iter Step.merge_view views;
  let n_states = min (Atomic.get order_counter) max_states in
  let states = Array.make n_states p in
  Array.iter
    (List.iter (fun (o, q) -> if o < n_states then states.(o) <- q))
    states_acc;
  let transitions = ref [] and n_transitions = ref 0 in
  let truncated = Array.make n_states false in
  let complete = ref (not (Atomic.get overflowed)) in
  Array.iter
    (List.iter (fun (o, e, vis, q') ->
         if o < n_states then
           match lookup q' with
           | Some j when j < n_states ->
             let visible =
               match (vis : Step.visibility) with
               | Step.Visible -> true
               | Step.Hidden -> false
             in
             transitions :=
               { source = o; event = e; visible; target = j } :: !transitions;
             incr n_transitions
           | _ ->
             (* target beyond the bound (or lost to a worker failure):
                drop the edge, mark the source truncated — mirroring
                the deterministic bound semantics *)
             complete := false;
             truncated.(o) <- true))
    trans_acc;
  {
    initial = 0;  (* the root is the only seed, so it claims order 0 *)
    states = Array.map Proc.to_process states;
    transitions = !transitions;
    complete = !complete;
    n_transitions = !n_transitions;
    truncated;
  }

(* A compiled automaton's raw exploration carries the same fields in
   the same discovery order; packaging it is projection only. *)
let of_raw (r : Compiled.raw) =
  {
    initial = r.Compiled.raw_initial;
    states = Array.map Proc.to_process r.Compiled.raw_states;
    transitions =
      List.map
        (fun (source, event, visible, target) ->
          { source; event; visible; target })
        r.Compiled.raw_transitions;
    complete = r.Compiled.raw_complete;
    n_transitions = List.length r.Compiled.raw_transitions;
    truncated = r.Compiled.raw_truncated;
  }

let explore ?(max_states = 2000) ?pool ?compiled ?(relaxed = false) cfg p =
  match relaxed, pool with
  | true, Some pool ->
    (* relaxed mode bypasses the compiled automaton: its value is
       letting workers do authoritative work, which the flat CSR
       tables (single-writer) cannot support *)
    Obs.span ~cat:"explore" "explore-relaxed"
      ~args:(fun () -> [ ("max_states", Obs.Int max_states) ])
      (fun () -> explore_relaxed ~max_states pool cfg (Proc.intern p))
  | _ -> (
    match compiled with
    | Some c when Proc.equal (Compiled.root c) (Proc.intern p) ->
      of_raw (Compiled.explore_raw ~max_states ?pool c)
    | _ -> explore_interpreted ~max_states ?pool cfg p)

let num_states t = Array.length t.states
let num_transitions t = t.n_transitions
let truncated_states t = List.filter (fun i -> t.truncated.(i)) (List.init (num_states t) Fun.id)

let deadlock_states t =
  let has_out = Array.make (num_states t) false in
  List.iter (fun tr -> has_out.(tr.source) <- true) t.transitions;
  (* a state whose outgoing transitions were dropped at the state bound
     is not deadlocked — it has moves the exploration did not record *)
  List.filter
    (fun i -> (not has_out.(i)) && not t.truncated.(i))
    (List.init (num_states t) Fun.id)

module Src_event_tbl = Hashtbl.Make (struct
  type t = state * Event.t

  let equal (s1, e1) (s2, e2) = Int.equal s1 s2 && Event.equal e1 e2
  let hash (s, e) = ((s * 31) + Event.hash e) land max_int
end)

let is_deterministic t =
  let seen = Src_event_tbl.create 64 in
  List.for_all
    (fun tr ->
      (not tr.visible)
      ||
      let key = (tr.source, tr.event) in
      match Src_event_tbl.find_opt seen key with
      | Some target -> Int.equal target tr.target
      | None ->
        Src_event_tbl.add seen key tr.target;
        true)
    t.transitions

let reachable_channels t =
  let seen = ref Channel.Set.empty and out = ref [] in
  List.iter
    (fun tr ->
      let c = tr.event.Event.chan in
      if not (Channel.Set.mem c !seen) then begin
        seen := Channel.Set.add c !seen;
        out := c :: !out
      end)
    t.transitions;
  List.rev !out

(* Canonical, numbering-independent form: states (as printed process
   terms) and transitions (as printed endpoint terms + event) in sorted
   order, plus the initial state and the completeness flag.  Two
   explorations of the same process have equal signatures iff they
   found the same state set and the same transition set — the contract
   relaxed mode promises against deterministic mode. *)
let signature t =
  let state_strs = Array.map Process.to_string t.states in
  let sorted_states = Array.copy state_strs in
  Array.sort String.compare sorted_states;
  let edges =
    List.sort String.compare
      (List.map
         (fun tr ->
           Printf.sprintf "%s --%s%s--> %s" state_strs.(tr.source)
             (Event.to_string tr.event)
             (if tr.visible then "" else "~")
             state_strs.(tr.target))
         t.transitions)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "states:%d complete:%b initial:%s\n"
       (Array.length sorted_states) t.complete state_strs.(t.initial));
  Array.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    sorted_states;
  List.iter
    (fun e ->
      Buffer.add_string buf e;
      Buffer.add_char buf '\n')
    edges;
  Buffer.contents buf

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

(* Deterministic ordering for DOT output: BFS numbering is already a
   function of the process alone, and edges are emitted sorted — so
   the same process yields byte-identical graphs across runs. *)
let transition_compare a b =
  let c = Int.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Int.compare a.target b.target in
    if c <> 0 then c
    else
      let c = Event.compare a.event b.event in
      if c <> 0 then c else Bool.compare a.visible b.visible

let to_dot ?(name = "lts") t =
  Obs.span ~cat:"export" "to_dot"
    ~args:(fun () -> [ ("states", Obs.Int (num_states t)) ])
  @@ fun () ->
  let buf = Buffer.create 1024 in
  let n = num_states t in
  let dead = Array.make n false in
  List.iter (fun i -> dead.(i) <- true) (deadlock_states t);
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  n%d [style=bold];\n" t.initial);
  for i = 0 to n - 1 do
    if dead.(i) then
      Buffer.add_string buf (Printf.sprintf "  n%d [shape=doublecircle];\n" i)
  done;
  (* truncated states are drawn dashed: their outgoing edges were cut
     at the state bound, so the picture under-reports their moves *)
  for i = 0 to n - 1 do
    if t.truncated.(i) then
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle, style=dashed];\n" i)
  done;
  Array.iteri
    (fun i _ ->
      if (not dead.(i)) && (not t.truncated.(i)) && i <> t.initial then
        Buffer.add_string buf (Printf.sprintf "  n%d [shape=circle];\n" i))
    t.states;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" tr.source tr.target
           (dot_escape (Event.to_string tr.event))
           (if tr.visible then "" else ", style=dashed")))
    (List.sort transition_compare t.transitions);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
