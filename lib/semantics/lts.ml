module Event = Csp_trace.Event
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc

type state = int

type transition = {
  source : state;
  event : Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Process.t array;
  transitions : transition list;
  complete : bool;
}

module Int_tbl = Hashtbl.Make (Int)

let explore ?(max_states = 2000) cfg p =
  (* States are hash-consed nodes, so canonicalisation is a lookup on
     the node id — no per-state rehash of a deep term — and the
     transition relation is shared with every other pipeline through
     [cfg.Step.trans_cache].  The [procs] list keeps every numbered
     node alive, so ids are stable for the whole exploration. *)
  let ids : int Int_tbl.t = Int_tbl.create 64 in
  let procs = ref [] and n_states = ref 0 in
  let intern (q : Proc.t) =
    match Int_tbl.find_opt ids (Proc.id q) with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      Int_tbl.add ids (Proc.id q) i;
      procs := q :: !procs;
      incr n_states;
      (i, true)
  in
  let transitions = ref [] in
  let queue = Queue.create () in
  let complete = ref true in
  let p = Proc.intern p in
  let initial, _ = intern p in
  Queue.add (initial, p) queue;
  while not (Queue.is_empty queue) do
    let i, q = Queue.pop queue in
    List.iter
      (fun (e, vis, q') ->
        let visible =
          match (vis : Step.visibility) with
          | Step.Visible -> true
          | Step.Hidden -> false
        in
        if !n_states >= max_states then begin
          (* record the transition only if the target is already known *)
          match Int_tbl.find_opt ids (Proc.id q') with
          | Some j ->
            transitions :=
              { source = i; event = e; visible; target = j } :: !transitions
          | None -> complete := false
        end
        else begin
          let j, fresh = intern q' in
          transitions :=
            { source = i; event = e; visible; target = j } :: !transitions;
          if fresh then Queue.add (j, q') queue
        end)
      (Step.transitions_i cfg q)
  done;
  {
    initial;
    states = Array.of_list (List.rev_map Proc.to_process !procs);
    transitions = List.rev !transitions;
    complete = !complete;
  }

let num_states t = Array.length t.states
let num_transitions t = List.length t.transitions

let deadlock_states t =
  let has_out = Array.make (num_states t) false in
  List.iter (fun tr -> has_out.(tr.source) <- true) t.transitions;
  List.filter
    (fun i -> not has_out.(i))
    (List.init (num_states t) Fun.id)

module Src_event_tbl = Hashtbl.Make (struct
  type t = state * Event.t

  let equal (s1, e1) (s2, e2) = Int.equal s1 s2 && Event.equal e1 e2
  let hash (s, e) = ((s * 31) + Event.hash e) land max_int
end)

let is_deterministic t =
  let seen = Src_event_tbl.create 64 in
  List.for_all
    (fun tr ->
      (not tr.visible)
      ||
      let key = (tr.source, tr.event) in
      match Src_event_tbl.find_opt seen key with
      | Some target -> Int.equal target tr.target
      | None ->
        Src_event_tbl.add seen key tr.target;
        true)
    t.transitions

let reachable_channels t =
  let seen = ref Channel.Set.empty and out = ref [] in
  List.iter
    (fun tr ->
      let c = tr.event.Event.chan in
      if not (Channel.Set.mem c !seen) then begin
        seen := Channel.Set.add c !seen;
        out := c :: !out
      end)
    t.transitions;
  List.rev !out

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

(* Deterministic ordering for DOT output: BFS numbering is already a
   function of the process alone, and edges are emitted sorted — so
   the same process yields byte-identical graphs across runs. *)
let transition_compare a b =
  let c = Int.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Int.compare a.target b.target in
    if c <> 0 then c
    else
      let c = Event.compare a.event b.event in
      if c <> 0 then c else Bool.compare a.visible b.visible

let to_dot ?(name = "lts") t =
  let buf = Buffer.create 1024 in
  let dead = deadlock_states t in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  n%d [style=bold];\n" t.initial);
  List.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  n%d [shape=doublecircle];\n" i))
    dead;
  Array.iteri
    (fun i _ ->
      if (not (List.mem i dead)) && i <> t.initial then
        Buffer.add_string buf (Printf.sprintf "  n%d [shape=circle];\n" i))
    t.states;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" tr.source tr.target
           (dot_escape (Event.to_string tr.event))
           (if tr.visible then "" else ", style=dashed")))
    (List.sort transition_compare t.transitions);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
