module Event = Csp_trace.Event
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process

type state = int

type transition = {
  source : state;
  event : Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Process.t array;
  transitions : transition list;
  complete : bool;
}

(* Canonicalise states structurally: the AST is pure data, so the
   polymorphic hash agrees with structural equality — and interning
   skips the printed-form detour (building a string per visit was a
   large constant on big state spaces such as E11's chains).
   [Process.hash] rather than [Hashtbl.hash]: chain states differ only
   in an inner continuation, beyond the polymorphic hash's node cap,
   which would put thousands of states in one bucket. *)
module Proc_tbl = Hashtbl.Make (struct
  type t = Process.t

  let equal = Stdlib.( = )
  let hash = Process.hash
end)

let explore ?(max_states = 2000) cfg p =
  let ids : int Proc_tbl.t = Proc_tbl.create 64 in
  let states = ref [] and n_states = ref 0 in
  let intern q =
    match Proc_tbl.find_opt ids q with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      Proc_tbl.add ids q i;
      states := q :: !states;
      incr n_states;
      (i, true)
  in
  let transitions = ref [] in
  let queue = Queue.create () in
  let complete = ref true in
  let initial, _ = intern p in
  Queue.add (initial, p) queue;
  while not (Queue.is_empty queue) do
    let i, q = Queue.pop queue in
    List.iter
      (fun (e, vis, q') ->
        if !n_states >= max_states then begin
          (* record the transition only if the target is already known *)
          match Proc_tbl.find_opt ids q' with
          | Some j ->
            transitions :=
              { source = i; event = e; visible = vis = Step.Visible; target = j }
              :: !transitions
          | None -> complete := false
        end
        else begin
          let j, fresh = intern q' in
          transitions :=
            { source = i; event = e; visible = vis = Step.Visible; target = j }
            :: !transitions;
          if fresh then Queue.add (j, q') queue
        end)
      (Step.transitions cfg q)
  done;
  {
    initial;
    states = Array.of_list (List.rev !states);
    transitions = List.rev !transitions;
    complete = !complete;
  }

let num_states t = Array.length t.states
let num_transitions t = List.length t.transitions

let deadlock_states t =
  let has_out = Array.make (num_states t) false in
  List.iter (fun tr -> has_out.(tr.source) <- true) t.transitions;
  List.filter
    (fun i -> not has_out.(i))
    (List.init (num_states t) Fun.id)

let is_deterministic t =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun tr ->
      (not tr.visible)
      ||
      let key = (tr.source, tr.event) in
      match Hashtbl.find_opt seen key with
      | Some target -> target = tr.target
      | None ->
        Hashtbl.add seen key tr.target;
        true)
    t.transitions

let reachable_channels t =
  let seen = ref Channel.Set.empty and out = ref [] in
  List.iter
    (fun tr ->
      let c = tr.event.Event.chan in
      if not (Channel.Set.mem c !seen) then begin
        seen := Channel.Set.add c !seen;
        out := c :: !out
      end)
    t.transitions;
  List.rev !out

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(name = "lts") t =
  let buf = Buffer.create 1024 in
  let dead = deadlock_states t in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  n%d [style=bold];\n" t.initial);
  List.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  n%d [shape=doublecircle];\n" i))
    dead;
  Array.iteri
    (fun i _ ->
      if (not (List.mem i dead)) && i <> t.initial then
        Buffer.add_string buf (Printf.sprintf "  n%d [shape=circle];\n" i))
    t.states;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" tr.source tr.target
           (dot_escape (Event.to_string tr.event))
           (if tr.visible then "" else ", style=dashed")))
    t.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
