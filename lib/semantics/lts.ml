module Event = Csp_trace.Event
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc
module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* Telemetry (observation only — never read back into exploration).
   Layer spans carry the frontier size and chunk count, so a Chrome
   trace of an exploration shows the BFS wavefront shrinking and
   growing; the merge span isolates the sequential cache fold-back at
   each barrier. *)
let layers_explored = Obs.Counter.make "lts.layers"
let states_interned = Obs.Counter.make "lts.states"

type state = int

type transition = {
  source : state;
  event : Event.t;
  visible : bool;
  target : state;
}

type t = {
  initial : state;
  states : Process.t array;
  transitions : transition list;
  complete : bool;
  n_transitions : int;
  truncated : bool array;
}

let make ?truncated ~initial ~states ~transitions ~complete () =
  let truncated =
    match truncated with
    | Some a -> a
    | None -> Array.make (Array.length states) false
  in
  {
    initial;
    states;
    transitions;
    complete;
    n_transitions = List.length transitions;
    truncated;
  }

module Int_tbl = Hashtbl.Make (Int)

(* Number of frontier states below which a parallel layer expansion is
   not worth the barrier: derivations this cheap finish before the
   workers wake up. *)
let min_parallel_frontier = 8

(* Expand one BFS layer: the transition list of each frontier state, in
   frontier order.  The parallel path hands contiguous chunks of the
   frontier to the domain pool; each chunk derives through a domain-
   local {!Step.view} (the shared per-config caches stay read-only for
   the whole phase), and the views are folded back into the shared
   caches at the barrier so hits survive into the next layer.  Both
   paths return the same lists in the same order: the per-state
   transition relation is a pure function of the interned state and the
   configuration (samplers are pure), so only the wall-clock differs. *)
let expand_layer cfg pool (layer : Proc.t array) =
  match pool with
  | Some pool
    when Pool.domains pool > 1 && Array.length layer >= min_parallel_frontier
    ->
    let chunk_results =
      Pool.map_chunks pool
        (fun chunk ->
          Obs.span ~cat:"step" "derive-chunk"
            ~args:(fun () -> [ ("states", Obs.Int (Array.length chunk)) ])
            (fun () ->
              let v = Step.view cfg in
              let ts = Array.map (Step.transitions_view v) chunk in
              (v, ts)))
        layer
    in
    Obs.span ~cat:"explore" "merge-views"
      ~args:(fun () -> [ ("chunks", Obs.Int (Array.length chunk_results)) ])
      (fun () -> Array.iter (fun (v, _) -> Step.merge_view v) chunk_results);
    Array.concat (Array.to_list (Array.map snd chunk_results))
  | _ ->
    Obs.span ~cat:"step" "derive-seq"
      ~args:(fun () -> [ ("states", Obs.Int (Array.length layer)) ])
      (fun () -> Array.map (Step.transitions_i cfg) layer)

let explore_interpreted ~max_states ?pool cfg p =
  (* States are hash-consed nodes, so canonicalisation is a lookup on
     the node id — no per-state rehash of a deep term — and the
     transition relation is shared with every other pipeline through
     [cfg.Step.trans_cache].  The [procs] list keeps every numbered
     node alive, so ids are stable for the whole exploration.

     The traversal is layer-synchronous: the frontier (one BFS layer)
     is expanded as a batch — in parallel when a multi-domain [pool] is
     given — and the discoveries are merged sequentially in frontier
     order.  A FIFO work-queue dequeues states in exactly layer order,
     so the merge replays the sequential algorithm step for step:
     state numbering, transition order, truncation at [max_states] and
     the [complete] flag are identical whatever the domain count. *)
  let ids : int Int_tbl.t = Int_tbl.create 64 in
  let procs = ref [] and n_states = ref 0 in
  let intern (q : Proc.t) =
    match Int_tbl.find_opt ids (Proc.id q) with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      Int_tbl.add ids (Proc.id q) i;
      procs := q :: !procs;
      incr n_states;
      Obs.Counter.incr states_interned;
      (i, true)
  in
  let transitions = ref [] and n_transitions = ref 0 in
  let complete = ref true in
  (* state indices that had outgoing transitions dropped at the bound *)
  let truncated_ids = ref [] in
  let p = Proc.intern p in
  let initial, _ = intern p in
  let frontier = ref [| (initial, p) |] in
  Obs.span ~cat:"explore" "explore"
    ~args:(fun () -> [ ("max_states", Obs.Int max_states) ])
    (fun () ->
  while Array.length !frontier > 0 do
    let layer = !frontier in
    Obs.Counter.incr layers_explored;
    let layer_ts =
      Obs.span ~cat:"explore" "layer"
        ~args:(fun () ->
          [
            ("frontier", Obs.Int (Array.length layer));
            ("states", Obs.Int !n_states);
          ])
        (fun () -> expand_layer cfg pool (Array.map snd layer))
    in
    let next = ref [] in
    Array.iteri
      (fun k (i, _) ->
        let dropped = ref false in
        List.iter
          (fun (e, vis, q') ->
            let visible =
              match (vis : Step.visibility) with
              | Step.Visible -> true
              | Step.Hidden -> false
            in
            if !n_states >= max_states then begin
              (* record the transition only if the target is already
                 known; otherwise the source keeps an unrecorded way
                 out and must not read as a deadlock *)
              match Int_tbl.find_opt ids (Proc.id q') with
              | Some j ->
                transitions :=
                  { source = i; event = e; visible; target = j }
                  :: !transitions;
                incr n_transitions
              | None ->
                complete := false;
                dropped := true
            end
            else begin
              let j, fresh = intern q' in
              transitions :=
                { source = i; event = e; visible; target = j } :: !transitions;
              incr n_transitions;
              if fresh then next := (j, q') :: !next
            end)
          layer_ts.(k);
        if !dropped then truncated_ids := i :: !truncated_ids)
      layer;
    frontier := Array.of_list (List.rev !next)
  done);
  let truncated = Array.make !n_states false in
  List.iter (fun i -> truncated.(i) <- true) !truncated_ids;
  {
    initial;
    states = Array.of_list (List.rev_map Proc.to_process !procs);
    transitions = List.rev !transitions;
    complete = !complete;
    n_transitions = !n_transitions;
    truncated;
  }

(* A compiled automaton's raw exploration carries the same fields in
   the same discovery order; packaging it is projection only. *)
let of_raw (r : Compiled.raw) =
  {
    initial = r.Compiled.raw_initial;
    states = Array.map Proc.to_process r.Compiled.raw_states;
    transitions =
      List.map
        (fun (source, event, visible, target) ->
          { source; event; visible; target })
        r.Compiled.raw_transitions;
    complete = r.Compiled.raw_complete;
    n_transitions = List.length r.Compiled.raw_transitions;
    truncated = r.Compiled.raw_truncated;
  }

let explore ?(max_states = 2000) ?pool ?compiled cfg p =
  match compiled with
  | Some c when Proc.equal (Compiled.root c) (Proc.intern p) ->
    of_raw (Compiled.explore_raw ~max_states ?pool c)
  | _ -> explore_interpreted ~max_states ?pool cfg p

let num_states t = Array.length t.states
let num_transitions t = t.n_transitions
let truncated_states t = List.filter (fun i -> t.truncated.(i)) (List.init (num_states t) Fun.id)

let deadlock_states t =
  let has_out = Array.make (num_states t) false in
  List.iter (fun tr -> has_out.(tr.source) <- true) t.transitions;
  (* a state whose outgoing transitions were dropped at the state bound
     is not deadlocked — it has moves the exploration did not record *)
  List.filter
    (fun i -> (not has_out.(i)) && not t.truncated.(i))
    (List.init (num_states t) Fun.id)

module Src_event_tbl = Hashtbl.Make (struct
  type t = state * Event.t

  let equal (s1, e1) (s2, e2) = Int.equal s1 s2 && Event.equal e1 e2
  let hash (s, e) = ((s * 31) + Event.hash e) land max_int
end)

let is_deterministic t =
  let seen = Src_event_tbl.create 64 in
  List.for_all
    (fun tr ->
      (not tr.visible)
      ||
      let key = (tr.source, tr.event) in
      match Src_event_tbl.find_opt seen key with
      | Some target -> Int.equal target tr.target
      | None ->
        Src_event_tbl.add seen key tr.target;
        true)
    t.transitions

let reachable_channels t =
  let seen = ref Channel.Set.empty and out = ref [] in
  List.iter
    (fun tr ->
      let c = tr.event.Event.chan in
      if not (Channel.Set.mem c !seen) then begin
        seen := Channel.Set.add c !seen;
        out := c :: !out
      end)
    t.transitions;
  List.rev !out

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

(* Deterministic ordering for DOT output: BFS numbering is already a
   function of the process alone, and edges are emitted sorted — so
   the same process yields byte-identical graphs across runs. *)
let transition_compare a b =
  let c = Int.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Int.compare a.target b.target in
    if c <> 0 then c
    else
      let c = Event.compare a.event b.event in
      if c <> 0 then c else Bool.compare a.visible b.visible

let to_dot ?(name = "lts") t =
  Obs.span ~cat:"export" "to_dot"
    ~args:(fun () -> [ ("states", Obs.Int (num_states t)) ])
  @@ fun () ->
  let buf = Buffer.create 1024 in
  let n = num_states t in
  let dead = Array.make n false in
  List.iter (fun i -> dead.(i) <- true) (deadlock_states t);
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  n%d [style=bold];\n" t.initial);
  for i = 0 to n - 1 do
    if dead.(i) then
      Buffer.add_string buf (Printf.sprintf "  n%d [shape=doublecircle];\n" i)
  done;
  (* truncated states are drawn dashed: their outgoing edges were cut
     at the state bound, so the picture under-reports their moves *)
  for i = 0 to n - 1 do
    if t.truncated.(i) then
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle, style=dashed];\n" i)
  done;
  Array.iteri
    (fun i _ ->
      if (not dead.(i)) && (not t.truncated.(i)) && i <> t.initial then
        Buffer.add_string buf (Printf.sprintf "  n%d [shape=circle];\n" i))
    t.states;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" tr.source tr.target
           (dot_escape (Event.to_string tr.event))
           (if tr.visible then "" else ", style=dashed")))
    (List.sort transition_compare t.transitions);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
