(** Reference prefix-closure implementation (unshared trie).

    The representation {!Closure} had before hash-consing: a plain
    sorted-assoc-list trie with structural equality and no sharing or
    memoisation.  Kept as an executable specification — the qcheck
    properties assert that every memoised operation of {!Closure}
    agrees with the operation here, and the bench's P8 section measures
    the two side by side on the E11 chain and the protocol fixpoint. *)

type t = Node of (Csp_trace.Event.t * t) list

val empty : t
val prefix : Csp_trace.Event.t -> t -> t
val union : t -> t -> t
val union_all : t list -> t
val inter : t -> t -> t
val mem : Csp_trace.Trace.t -> t -> bool
val add : Csp_trace.Trace.t -> t -> t
val of_traces : Csp_trace.Trace.t list -> t
val to_traces : t -> Csp_trace.Trace.t list
val cardinal : t -> int
val depth : t -> int
val truncate : int -> t -> t
val hide : (Csp_trace.Channel.t -> bool) -> t -> t

val interleave :
  events:Csp_trace.Event.t list -> extra:int -> t -> t

val par :
  in_x:(Csp_trace.Channel.t -> bool) ->
  in_y:(Csp_trace.Channel.t -> bool) ->
  t ->
  t ->
  t

val equal : t -> t -> bool
val subset : t -> t -> bool

val of_closure : Closure.t -> t
(** Convert from the hash-consed representation (same trace set). *)

val to_closure : t -> Closure.t
(** Convert to the hash-consed representation (same trace set). *)
