module Defs = Csp_lang.Defs
module Proc = Csp_lang.Proc
module Pool = Csp_parallel.Pool
module Obs = Csp_obs.Obs

(* [csp_lang] predates (and must not depend on) the observability
   layer, so its interning statistics are bridged into the snapshot
   from here. *)
let () =
  Obs.register_source "intern" (fun () ->
      let s = Proc.stats () in
      [
        ("nodes", Obs.Int s.Proc.nodes);
        ("table_len", Obs.Int s.Proc.table_len);
        ("hits", Obs.Int s.Proc.hits);
        ("misses", Obs.Int s.Proc.misses);
        ("lock_waits", Obs.Int s.Proc.lock_waits);
        ("shards", Obs.Int s.Proc.shards);
        ("max_shard_len", Obs.Int s.Proc.max_shard_len);
      ])

type t = {
  defs : Defs.t;
  depth : int;
  seed : int;
  domains : int;
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
  hide_extra : int;
  step : Step.config;
  denote : Denote.config;
  pool : Pool.t Lazy.t;
  compiled : (int, Compiled.t) Hashtbl.t;
}

let create ?(depth = 6) ?(seed = 1) ?(domains = 1) ?nat_bound ?sampler
    ?(unfold_fuel = 64) ?(hide_fuel = 16) ?(hide_extra = 8) defs =
  let sampler =
    match nat_bound, sampler with
    | Some n, _ -> Sampler.nat_bound n
    | None, Some s -> s
    | None, None -> Sampler.default
  in
  let domains = max 1 domains in
  {
    defs;
    depth;
    seed;
    domains;
    sampler;
    unfold_fuel;
    hide_fuel;
    hide_extra;
    step = Step.config ~sampler ~unfold_fuel ~hide_fuel defs;
    denote = Denote.config ~sampler ~hide_extra defs;
    pool = lazy (Pool.create ~domains);
    compiled = Hashtbl.create 4;
  }

let step_config t = t.step
let denote_config t = t.denote
let pool t = if t.domains <= 1 then None else Some (Lazy.force t.pool)

(* Depth and seed are not baked into the derived configurations, so the
   caches survive the change; anything affecting the transition
   relation or the denotation (sampler, fuels, definitions) rebuilds
   both configurations — and hence their caches — from scratch.  The
   [pool] lazy cell is shared by the [with_*] copies, so at most one
   set of worker domains is spawned per [create]. *)
let with_depth t depth = { t with depth }
let with_seed t seed = { t with seed }

(* One compile serves every later query through this engine (and its
   [with_depth]/[with_seed] copies, which share the table): the cache
   is keyed by the interned root's id — ids are never reused, and the
   cached automaton keeps its root alive, so the key stays valid for
   the automaton's lifetime.  The hit/miss counters let a long-lived
   host (the [cspc serve] cache-warm story) observe how often a
   request was answered from an already-compiled automaton. *)
let compile_hits = Obs.Counter.make "engine.compile_hits"
let compile_misses = Obs.Counter.make "engine.compile_misses"

let compile ?budget t p =
  let root = Proc.intern p in
  match Hashtbl.find_opt t.compiled (Proc.id root) with
  | Some c ->
    Obs.Counter.incr compile_hits;
    c
  | None ->
    Obs.Counter.incr compile_misses;
    let c = Compiled.compile ?budget t.step p in
    Hashtbl.add t.compiled (Proc.id root) c;
    c

let compiled_count t = Hashtbl.length t.compiled
let compiled_mem t p = Hashtbl.mem t.compiled (Proc.id (Proc.intern p))

let with_sampler t sampler =
  create ~depth:t.depth ~seed:t.seed ~domains:t.domains ~sampler
    ~unfold_fuel:t.unfold_fuel ~hide_fuel:t.hide_fuel ~hide_extra:t.hide_extra
    t.defs

type stats = {
  intern : Proc.stats;
  closure : Closure.stats;
  step : Step.stats;
  denote : Denote.stats;
  pool : Pool.stats;
}

let stats () =
  {
    intern = Proc.stats ();
    closure = Closure.stats ();
    step = Step.stats ();
    denote = Denote.stats ();
    pool = Pool.stats ();
  }

let reset_stats () =
  Step.reset_stats ();
  Denote.reset_stats ()

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>intern: %d nodes, %d live (%d shards, max %d), hit-rate %.2f, \
     lock-waits %d@,\
     closure: %d nodes (%d shards, max %d), memo hit-rate %.2f, lock-waits %d@,\
     step: trans hit-rate %.2f, unfold hit-rate %.2f@,\
     denote: eval hit-rate %.2f@,\
     pool: %d pools, %d workers, %d batches, %d tasks (%d on caller), \
     lock-waits %d@,\
     steal: %d steals, %d stolen, %d stealing-tasks@]"
    s.intern.Proc.nodes s.intern.Proc.table_len s.intern.Proc.shards
    s.intern.Proc.max_shard_len
    (hit_rate s.intern.Proc.hits s.intern.Proc.misses)
    s.intern.Proc.lock_waits s.closure.Closure.nodes
    s.closure.Closure.shards s.closure.Closure.max_shard_len
    (hit_rate s.closure.Closure.memo_hits s.closure.Closure.memo_misses)
    s.closure.Closure.lock_waits
    (hit_rate s.step.Step.trans_hits s.step.Step.trans_misses)
    (hit_rate s.step.Step.unfold_hits s.step.Step.unfold_misses)
    (hit_rate s.denote.Denote.eval_hits s.denote.Denote.eval_misses)
    s.pool.Pool.pools s.pool.Pool.workers s.pool.Pool.batches
    s.pool.Pool.tasks s.pool.Pool.caller_tasks s.pool.Pool.lock_waits
    s.pool.Pool.steals s.pool.Pool.stolen s.pool.Pool.stealing_tasks
