(** Compiled successor engine: flat transition tables over dense ids.

    Every other pipeline *interprets* the interned Proc IR per
    transition: each successor query is a hashtable probe of
    [Step.config.trans_cache] keyed by node id, and each LTS layer
    re-canonicalises its targets through the global unique table.  A
    {!t} compiles the reachable state space once — the analogue of
    SPIN generating a dedicated [pan] verifier from a model — into a
    CSR-style flat representation:

    - dense [int] state ids assigned by a compile-time intern pass in
      BFS discovery order (so they coincide with {!Lts.explore}'s
      state numbering);
    - per-state successor rows packed into preallocated int arrays:
      [row_off]/[row_len] index a shared pool of
      [(event_id, target_id)] pairs plus a visibility byte;
    - an event table mapping dense event ids back to events.

    Exploration then becomes array walks with a dense int visited
    array instead of per-layer hashtables — see [Lts.explore]'s
    [?compiled] argument, which is byte-identical (state numbering,
    transition order, truncation, DOT) to the interpreted path at any
    domain count.

    {b Fallback contract}: states beyond the compile [budget] (or
    reached only under a larger [max_states] than the compile saw) are
    materialised lazily back through the interpreter
    ({!Step.transitions_i}, or domain-local {!Step.view}s on the
    parallel path) the first time they are expanded; the
    [compiled.fallbacks] counter counts such rows.  Since rows are
    derived by the same [Step] functions the interpreter uses —
    sharing its [trans_cache] — one compile also warms the caches
    every later query through the same configuration reuses
    ([Sat.check_engine], [Infer], [Runner]).

    A [t] is mutable (lazy materialisation) and must not be shared
    between domains; the internal [?pool] path coordinates its own
    parallelism and merges results deterministically. *)

type t

val compile : ?budget:int -> Step.config -> Csp_lang.Process.t -> t
(** One-shot compile: BFS from the root, materialising successor rows
    for up to [budget] states (default [200_000]).  Discovered targets
    beyond the budget get ids but no rows (materialised lazily on
    demand).  Telemetry: [compiled.compiles], [compiled.states],
    [compiled.compile_ms] and a ["compile"] span. *)

val root : t -> Csp_lang.Proc.t
(** The interned root the automaton was compiled from. *)

val config : t -> Step.config
(** The configuration rows are derived with (and fall back to). *)

val n_states : t -> int
(** States assigned a dense id so far (grows on fallback). *)

val n_rows : t -> int
(** States whose successor row is materialised. *)

val n_transitions : t -> int
(** Packed transitions across all materialised rows. *)

val n_events : t -> int
(** Distinct events in the event table. *)

val fallbacks : t -> int
(** Rows materialised lazily after {!compile} returned. *)

val compile_ms : t -> float
(** Wall-clock of the {!compile} pass, in milliseconds. *)

val transitions_i :
  t ->
  Csp_lang.Proc.t ->
  (Csp_trace.Event.t * Step.visibility * Csp_lang.Proc.t) list
(** Successors from the flat row when the state is in the automaton
    (materialising it if needed); identical to
    [Step.transitions_i (config t)] — which it delegates to verbatim
    for states outside the automaton. *)

(** {1 Raw exploration}

    {!Lts.explore} with [?compiled] is the public entry point; the raw
    result exists so this module does not depend on [Lts]. *)

type raw = {
  raw_initial : int;
  raw_states : Csp_lang.Proc.t array;  (** indexed by state number *)
  raw_transitions : (int * Csp_trace.Event.t * bool * int) list;
      (** (source, event, visible, target), in discovery order *)
  raw_complete : bool;
  raw_truncated : bool array;
}

val explore_raw : ?max_states:int -> ?pool:Csp_parallel.Pool.t -> t -> raw
(** Replay of the {!Lts.explore} loop on the flat tables: FIFO layer
    order, dense visited array, identical truncation bookkeeping.
    With a multi-domain [pool], only lazy row materialisation is
    parallelised (rows are appended in frontier order at the barrier),
    so the result is identical at any domain count. *)
