(** Strong bisimulation on explored transition systems.

    Partition refinement (Kanellakis–Smolka) over an {!Lts.t}: computes
    the coarsest partition of states such that related states have
    transitions on the same (event, visibility) labels into related
    states.  Used to minimise state graphs before display, to compare
    two processes up to strong bisimilarity on their bounded
    exploration, and as an independent check that syntactically
    different definitions of the paper's processes have the same
    branching behaviour. *)

type partition
(** A partition of the states of an LTS into bisimulation classes. *)

val classes_of : Lts.t -> partition
(** The coarsest strong bisimulation partition.  Hidden and visible
    transitions are distinguished labels (this is bisimulation on the
    labelled graph, not weak bisimulation). *)

val num_classes : partition -> int
val class_of : partition -> Lts.state -> int

val quotient : Lts.t -> partition -> Lts.t
(** The minimised system: one state per class, transitions
    deduplicated; state [i] of the result carries a representative
    process of class [i]. *)

val minimise : Lts.t -> Lts.t
(** [quotient t (classes_of t)]. *)

val equivalent :
  ?max_states:int ->
  ?pool:Csp_parallel.Pool.t ->
  ?compiler:(Csp_lang.Process.t -> Compiled.t) ->
  Step.config ->
  Csp_lang.Process.t ->
  Csp_lang.Process.t ->
  bool
(** Are the two processes strongly bisimilar on their bounded
    exploration?  Computed by exploring the disjoint union and asking
    whether the two initial states fall into the same class.  (Both
    explorations must be complete for the answer to be meaningful; the
    function returns [false] when either is truncated.)  A multi-domain
    [pool] parallelises the two explorations' layer expansions.  A
    [compiler] (typically [Engine.compile eng]) routes each side's
    exploration through its compiled successor automaton; the answer
    is unchanged, only the wall-clock. *)

val saturate : Lts.t -> Lts.t
(** τ-saturation: concealed transitions become silent moves.  The
    result has, for every weak step [s ⇒ e ⇒ s'] (concealed moves, one
    visible [e], concealed moves), a visible transition [s → e → s'],
    and a distinguished silent self-loop structure such that strong
    bisimulation on the saturated system coincides with weak
    (observation) equivalence on the original. *)

val weak_classes : Lts.t -> partition
(** The coarsest weak-bisimulation partition ([classes_of ∘ saturate]). *)

val weak_equivalent :
  ?max_states:int ->
  ?pool:Csp_parallel.Pool.t ->
  ?compiler:(Csp_lang.Process.t -> Compiled.t) ->
  Step.config ->
  Csp_lang.Process.t ->
  Csp_lang.Process.t ->
  bool
(** Observation equivalence on the bounded exploration: like
    {!equivalent} but abstracting from concealed communications — e.g.
    [chan a; (a!0 -> b!1 -> STOP)] is weakly, but not strongly,
    equivalent to [b!1 -> STOP]. *)
