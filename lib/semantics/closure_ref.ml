module Event = Csp_trace.Event
module Trace = Csp_trace.Trace
module Channel = Csp_trace.Channel

(* The pre-hash-consing closure representation, retained verbatim as an
   executable reference: an unshared sorted-assoc-list trie with
   structural equality and no memoisation.  The qcheck agreement
   properties in test/test_closure.ml check every memoised operation of
   [Closure] against this module, and bench/main.ml's P8 section times
   the two side by side. *)

type t = Node of (Event.t * t) list

let empty = Node []
let prefix a p = Node [ (a, p) ]

let rec union (Node xs) (Node ys) = Node (merge xs ys)

and merge xs ys =
  match xs, ys with
  | [], rest | rest, [] -> rest
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then (e1, t1) :: merge xs' ys
    else if c > 0 then (e2, t2) :: merge xs ys'
    else (e1, union t1 t2) :: merge xs' ys'

let union_all ts = List.fold_left union empty ts

let rec inter (Node xs) (Node ys) = Node (inter_children xs ys)

and inter_children xs ys =
  match xs, ys with
  | [], _ | _, [] -> []
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    let c = Event.compare e1 e2 in
    if c < 0 then inter_children xs' ys
    else if c > 0 then inter_children xs ys'
    else (e1, inter t1 t2) :: inter_children xs' ys'

let lookup e children =
  let rec go = function
    | [] -> None
    | (e', t) :: rest ->
      let c = Event.compare e e' in
      if c = 0 then Some t else if c < 0 then None else go rest
  in
  go children

let rec mem s (Node children) =
  match s with
  | [] -> true
  | e :: rest -> (
    match lookup e children with Some child -> mem rest child | None -> false)

let rec add s t =
  match s with
  | [] -> t
  | e :: rest ->
    let (Node children) = t in
    let rec go = function
      | [] -> [ (e, add rest empty) ]
      | ((e', t') :: tail) as all ->
        let c = Event.compare e e' in
        if c < 0 then (e, add rest empty) :: all
        else if c = 0 then (e', add rest t') :: tail
        else (e', t') :: go tail
    in
    Node (go children)

let of_traces ss = List.fold_left (fun acc s -> add s acc) empty ss

let rec to_traces (Node children) =
  [] :: List.concat_map (fun (e, t) -> List.map (fun s -> e :: s) (to_traces t)) children

let rec cardinal (Node children) =
  1 + List.fold_left (fun acc (_, t) -> acc + cardinal t) 0 children

let rec depth (Node children) =
  List.fold_left (fun acc (_, t) -> max acc (1 + depth t)) 0 children

let rec truncate n (Node children) =
  if n <= 0 then empty
  else Node (List.map (fun (e, t) -> (e, truncate (n - 1) t)) children)

let rec hide in_c (Node children) =
  let visible, hidden =
    List.partition (fun ((e : Event.t), _) -> not (in_c e.chan)) children
  in
  let base = Node (List.map (fun (e, t) -> (e, hide in_c t)) visible) in
  List.fold_left (fun acc (_, t) -> union acc (hide in_c t)) base hidden

let rec interleave ~events ~extra t =
  let (Node children) = t in
  let own = List.map (fun (e, t') -> (e, interleave ~events ~extra t')) children in
  let padded =
    if extra <= 0 then []
    else
      List.map (fun e -> (e, interleave ~events ~extra:(extra - 1) t)) events
  in
  List.fold_left union (Node own) (List.map (fun c -> Node [ c ]) padded)

let rec par ~in_x ~in_y (Node ps as p) (Node qs as q) =
  let from_p =
    List.concat_map
      (fun ((e : Event.t), p') ->
        if in_y e.chan then
          match lookup e qs with
          | Some q' -> [ (e, par ~in_x ~in_y p' q') ]
          | None -> []
        else [ (e, par ~in_x ~in_y p' q) ])
      ps
  in
  let from_q =
    List.concat_map
      (fun ((e : Event.t), q') ->
        if in_x e.chan then [] (* shared events were handled from the P side *)
        else [ (e, par ~in_x ~in_y p q') ])
      qs
  in
  List.fold_left
    (fun acc c -> union acc (Node [ c ]))
    empty (from_p @ from_q)

let rec equal (Node xs) (Node ys) =
  match xs, ys with
  | [], [] -> true
  | (e1, t1) :: xs', (e2, t2) :: ys' ->
    Event.compare e1 e2 = 0 && equal t1 t2 && equal (Node xs') (Node ys')
  | _ -> false

let rec subset (Node xs) (Node ys) =
  List.for_all
    (fun (e, t) ->
      match lookup e ys with Some t' -> subset t t' | None -> false)
    xs

(* Conversions to/from the hash-consed representation, for the
   agreement properties and the bench comparison. *)
let of_closure c = of_traces (Closure.to_traces c)
let to_closure t = Closure.of_traces (to_traces t)
