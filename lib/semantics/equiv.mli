(** Cross-checks between the two semantics, and the model identities of
    the paper's conclusion (§4). *)

val operational_vs_denotational :
  ?depth:int ->
  Step.config ->
  Denote.config ->
  Csp_lang.Process.t ->
  (unit, Csp_trace.Trace.t) result
(** Compare the visible trace sets produced by {!Step.traces} and
    {!Denote.denote} up to [depth] (default 5); [Error s] returns a
    shortest disagreeing trace.  Exact for hiding-free processes; with
    hiding, agreement additionally depends on compatible fuel budgets. *)

val trace_refines :
  ?depth:int ->
  Step.config ->
  impl:Csp_lang.Process.t ->
  spec:Csp_lang.Process.t ->
  (unit, Csp_trace.Trace.t) result
(** Trace refinement up to the depth (default 5): every visible trace of
    [impl] is a trace of [spec]; [Error s] is a shortest trace of the
    implementation the specification does not allow.  Note that the
    specification side uses {!Step.accepts_trace}, so its inputs are not
    limited to sampled values. *)

val stop_choice_identity :
  ?depth:int -> Denote.config -> Csp_lang.Process.t -> bool
(** §4, second defect: in the prefix-closure model
    [STOP | P] is identically equal to [P].  Returns whether the two
    denotations are equal at the given depth (they always are — that is
    the point). *)

val choice_absorption :
  ?depth:int -> Denote.config -> Csp_lang.Process.t -> Csp_lang.Process.t
  -> bool
(** The generalisation: [Q | P = P] whenever ⟦Q⟧ ⊆ ⟦P⟧, so a branch
    that may deadlock after any number of steps of behaviour common
    with [P] is invisible in the model. *)
