module Vset = Csp_lang.Vset

type t = { sample : Vset.t -> Csp_trace.Value.t list }

let nat_bound n = { sample = (fun m -> Vset.enumerate_bounded ~bound:n m) }
let default = nat_bound 4
let of_fun f = { sample = f }
let sample t m = List.filter (Vset.mem m) (t.sample m)
