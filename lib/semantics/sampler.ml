module Vset = Csp_lang.Vset

type t = { sample : Vset.t -> Csp_trace.Value.t list }

let nat_bound n = { sample = (fun m -> Vset.enumerate_bounded ~bound:n m) }
let default = nat_bound 4
let of_fun f = { sample = f }

let shuffled ~seed t =
  {
    sample =
      (fun m ->
        let vs = Array.of_list (t.sample m) in
        (* a pure function of the seed and the sampled set: no global
           random state, so every run with the same seed explores
           values in the same order *)
        let st = Random.State.make [| seed; Hashtbl.hash (Array.to_list vs) |] in
        for i = Array.length vs - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let tmp = vs.(i) in
          vs.(i) <- vs.(j);
          vs.(j) <- tmp
        done;
        Array.to_list vs);
  }

let sample t m = List.filter (Vset.mem m) (t.sample m)
