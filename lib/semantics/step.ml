module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Defs = Csp_lang.Defs
module Valuation = Csp_lang.Valuation
module Obs = Csp_obs.Obs

type visibility = Visible | Hidden

let vis_equal a b =
  match a, b with
  | Visible, Visible | Hidden, Hidden -> true
  | (Visible | Hidden), _ -> false

module Unfold_tbl = Hashtbl.Make (struct
  type t = string * Expr.t option

  let equal (n1, a1) (n2, a2) =
    String.equal n1 n2 && Option.equal Expr.equal a1 a2

  let hash (n, a) =
    ((Hashtbl.hash n * 31) + match a with None -> 0 | Some e -> Expr.hash e)
    land max_int
end)

module Trans_tbl = Hashtbl.Make (Int)

type config = {
  defs : Defs.t;
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
  unfold_cache : Proc.t Unfold_tbl.t;
      (* (name, argument) → interned unfolding: a recursive network
         re-derives the same reference unfolding at every revisit, so
         unfold + intern happen once per (name, arg) per config *)
  trans_cache : (Event.t * visibility * Proc.t) list Trans_tbl.t;
      (* node id → full-fuel transition list; the relation depends on
         the state alone, so it is derived once per distinct state.
         Ids are never reused, so entries for collected nodes are dead
         weight, never wrong. *)
}

let config ?(sampler = Sampler.default) ?(unfold_fuel = 64) ?(hide_fuel = 16)
    defs =
  {
    defs;
    sampler;
    unfold_fuel;
    hide_fuel;
    unfold_cache = Unfold_tbl.create 64;
    trans_cache = Trans_tbl.create 256;
  }

exception Unproductive of string

(* Cache counters, aggregated by [Engine.stats].  [Atomic] because the
   domain-local views below flush their tallies from worker domains. *)
let unfold_hits = Atomic.make 0
let unfold_misses = Atomic.make 0
let trans_hits = Atomic.make 0
let trans_misses = Atomic.make 0

type stats = {
  unfold_hits : int;
  unfold_misses : int;
  trans_hits : int;
  trans_misses : int;
}

let stats () =
  {
    unfold_hits = Atomic.get unfold_hits;
    unfold_misses = Atomic.get unfold_misses;
    trans_hits = Atomic.get trans_hits;
    trans_misses = Atomic.get trans_misses;
  }

let reset_stats () =
  Atomic.set unfold_hits 0;
  Atomic.set unfold_misses 0;
  Atomic.set trans_hits 0;
  Atomic.set trans_misses 0

(* Expose the cache counters in [Obs.snapshot] without routing through
   [Engine.stats] (the CLI's `--stats-json` reads the snapshot only). *)
let () =
  Obs.register_source "step" (fun () ->
      let s = stats () in
      [
        ("unfold_hits", Obs.Int s.unfold_hits);
        ("unfold_misses", Obs.Int s.unfold_misses);
        ("trans_hits", Obs.Int s.trans_hits);
        ("trans_misses", Obs.Int s.trans_misses);
      ])

let eval_chan c = Chan_expr.eval Valuation.empty c
let eval_expr e = Expr.eval Valuation.empty e

let unfold_i cfg n arg =
  match Unfold_tbl.find_opt cfg.unfold_cache (n, arg) with
  | Some q ->
    Atomic.incr unfold_hits;
    q
  | None ->
    Atomic.incr unfold_misses;
    let q = Proc.intern (Defs.unfold_ref cfg.defs Valuation.empty n arg) in
    Unfold_tbl.add cfg.unfold_cache (n, arg) q;
    q

(* The derivation functions below are parameterised over [unfold] so
   the same code serves two cache disciplines: the sequential path
   writes the shared per-config tables directly ([unfold_i]), the
   parallel path goes through a domain-local view that treats the
   shared tables as read-only ([unfold_view]). *)

(* Continuations of [p] after engaging in exactly the visible event [e].
   Unlike the transition enumeration below, inputs accept any value of
   their declared set — the passive side of a synchronisation must not
   be restricted to sampled values. *)
let rec sync_on unfold fuel (e : Event.t) p : Proc.t list =
  match Proc.node p with
  | Proc.Stop -> []
  | Proc.Output (c, ex, k) ->
    if
      Csp_trace.Channel.equal (eval_chan c) e.chan
      && Csp_trace.Value.equal (eval_expr ex) e.value
    then [ k ]
    else []
  | Proc.Input (c, x, m, k) ->
    if Csp_trace.Channel.equal (eval_chan c) e.chan && Csp_lang.Vset.mem m e.value
    then [ Proc.subst_value x e.value k ]
    else []
  | Proc.Choice (p1, p2) -> sync_on unfold fuel e p1 @ sync_on unfold fuel e p2
  | Proc.Par (xa, ya, p1, p2) ->
    let in_x = Chan_set.mem xa e.chan and in_y = Chan_set.mem ya e.chan in
    if in_x && in_y then
      List.concat_map
        (fun p1' ->
          List.map (fun p2' -> Proc.par xa ya p1' p2') (sync_on unfold fuel e p2))
        (sync_on unfold fuel e p1)
    else if in_x then
      List.map (fun p1' -> Proc.par xa ya p1' p2) (sync_on unfold fuel e p1)
    else if in_y then
      List.map (fun p2' -> Proc.par xa ya p1 p2') (sync_on unfold fuel e p2)
    else []
  | Proc.Hide (l, p1) ->
    (* events on concealed channels are not visible to the environment *)
    if Chan_set.mem l e.chan then []
    else List.map (fun p1' -> Proc.hide l p1') (sync_on unfold fuel e p1)
  | Proc.Ref (n, arg) ->
    if fuel <= 0 then raise (Unproductive n)
    else sync_on unfold (fuel - 1) e (unfold n arg)

(* Merge transition lists, unioning nothing: duplicates are removed per
   parallel node; the closure union deduplicates the rest. *)
let rec transitions_fuel cfg unfold fuel p : (Event.t * visibility * Proc.t) list =
  match Proc.node p with
  | Proc.Stop -> []
  | Proc.Output (c, e, k) ->
    [ (Event.make (eval_chan c) (eval_expr e), Visible, k) ]
  | Proc.Input (c, x, m, k) ->
    let chan = eval_chan c in
    List.map
      (fun v -> (Event.make chan v, Visible, Proc.subst_value x v k))
      (Sampler.sample cfg.sampler m)
  | Proc.Choice (p1, p2) ->
    transitions_fuel cfg unfold fuel p1 @ transitions_fuel cfg unfold fuel p2
  | Proc.Par (xa, ya, p1, p2) ->
    let t1 = transitions_fuel cfg unfold fuel p1
    and t2 = transitions_fuel cfg unfold fuel p2 in
    let left =
      List.concat_map
        (fun ((e : Event.t), vis, p1') ->
          match vis with
          | Hidden -> [ (e, Hidden, Proc.par xa ya p1' p2) ]
          | Visible ->
            if Chan_set.mem ya e.chan then
              (* shared channel: both operands must engage in the event;
                 the partner accepts any value of its declared input set *)
              List.map
                (fun p2' -> (e, Visible, Proc.par xa ya p1' p2'))
                (sync_on unfold fuel e p2)
            else [ (e, Visible, Proc.par xa ya p1' p2) ])
        t1
    in
    let right =
      List.concat_map
        (fun ((e : Event.t), vis, p2') ->
          match vis with
          | Hidden -> [ (e, Hidden, Proc.par xa ya p1 p2') ]
          | Visible ->
            if Chan_set.mem xa e.chan then
              List.map
                (fun p1' -> (e, Visible, Proc.par xa ya p1' p2'))
                (sync_on unfold fuel e p1)
            else [ (e, Visible, Proc.par xa ya p1 p2') ])
        t2
    in
    (* Synchronisations reachable from both sides appear twice; remove
       exact duplicates.  Visibility is compared by explicit variant
       match and targets by pointer equality — interning makes the
       whole triple comparison O(1). *)
    let triple_equal (e1, v1, q1) (e2, v2, q2) =
      Event.equal e1 e2 && vis_equal v1 v2 && Proc.equal q1 q2
    in
    List.rev
      (List.fold_left
         (fun acc t ->
           if List.exists (triple_equal t) acc then acc else t :: acc)
         [] (left @ right))
  | Proc.Hide (l, p1) ->
    List.map
      (fun ((e : Event.t), vis, p1') ->
        let vis = if Chan_set.mem l e.chan then Hidden else vis in
        (e, vis, Proc.hide l p1'))
      (transitions_fuel cfg unfold fuel p1)
  | Proc.Ref (n, arg) ->
    if fuel <= 0 then raise (Unproductive n)
    else transitions_fuel cfg unfold (fuel - 1) (unfold n arg)

(* Transitions always start from full fuel, so the state alone keys the
   memo (fuel only varies inside one derivation, through references). *)
let transitions_i cfg p =
  match Trans_tbl.find_opt cfg.trans_cache (Proc.id p) with
  | Some ts ->
    Atomic.incr trans_hits;
    ts
  | None ->
    Atomic.incr trans_misses;
    let ts = transitions_fuel cfg (unfold_i cfg) cfg.unfold_fuel p in
    Trans_tbl.add cfg.trans_cache (Proc.id p) ts;
    ts

(* ---- domain-local cache views ---------------------------------------- *)

(* A view lets a worker domain run [transitions] during a parallel
   phase without writing the shared per-config tables: lookups go
   shared-table-first (read-only — safe concurrently as long as nobody
   writes), then to the local table, and fresh derivations land in the
   local table only.  [merge_view], called by the coordinator at the
   fork-join barrier while the workers are quiescent, folds the local
   discoveries into the shared tables — so cache hits survive the
   barrier and later layers (or later sequential queries) reuse them. *)
type view = {
  v_cfg : config;
  v_unfold : Proc.t Unfold_tbl.t;
  v_trans : (Event.t * visibility * Proc.t) list Trans_tbl.t;
  mutable v_unfold_hits : int;
  mutable v_unfold_misses : int;
  mutable v_trans_hits : int;
  mutable v_trans_misses : int;
}

let view cfg =
  {
    v_cfg = cfg;
    v_unfold = Unfold_tbl.create 32;
    v_trans = Trans_tbl.create 64;
    v_unfold_hits = 0;
    v_unfold_misses = 0;
    v_trans_hits = 0;
    v_trans_misses = 0;
  }

let unfold_view v n arg =
  match Unfold_tbl.find_opt v.v_cfg.unfold_cache (n, arg) with
  | Some q ->
    v.v_unfold_hits <- v.v_unfold_hits + 1;
    q
  | None -> (
    match Unfold_tbl.find_opt v.v_unfold (n, arg) with
    | Some q ->
      v.v_unfold_hits <- v.v_unfold_hits + 1;
      q
    | None ->
      v.v_unfold_misses <- v.v_unfold_misses + 1;
      let q = Proc.intern (Defs.unfold_ref v.v_cfg.defs Valuation.empty n arg) in
      Unfold_tbl.add v.v_unfold (n, arg) q;
      q)

let transitions_view v p =
  match Trans_tbl.find_opt v.v_cfg.trans_cache (Proc.id p) with
  | Some ts ->
    v.v_trans_hits <- v.v_trans_hits + 1;
    ts
  | None -> (
    match Trans_tbl.find_opt v.v_trans (Proc.id p) with
    | Some ts ->
      v.v_trans_hits <- v.v_trans_hits + 1;
      ts
    | None ->
      v.v_trans_misses <- v.v_trans_misses + 1;
      let ts = transitions_fuel v.v_cfg (unfold_view v) v.v_cfg.unfold_fuel p in
      Trans_tbl.add v.v_trans (Proc.id p) ts;
      ts)

let flush_count a n = if n > 0 then ignore (Atomic.fetch_and_add a n)

let merge_view v =
  let cfg = v.v_cfg in
  Unfold_tbl.iter
    (fun k q ->
      if not (Unfold_tbl.mem cfg.unfold_cache k) then
        Unfold_tbl.add cfg.unfold_cache k q)
    v.v_unfold;
  Trans_tbl.iter
    (fun k ts ->
      if not (Trans_tbl.mem cfg.trans_cache k) then
        Trans_tbl.add cfg.trans_cache k ts)
    v.v_trans;
  Unfold_tbl.reset v.v_unfold;
  Trans_tbl.reset v.v_trans;
  flush_count unfold_hits v.v_unfold_hits;
  flush_count unfold_misses v.v_unfold_misses;
  flush_count trans_hits v.v_trans_hits;
  flush_count trans_misses v.v_trans_misses;
  v.v_unfold_hits <- 0;
  v.v_unfold_misses <- 0;
  v.v_trans_hits <- 0;
  v.v_trans_misses <- 0

let tau_reachable_i cfg p =
  let rec go budget acc p =
    let acc = p :: acc in
    if budget <= 0 then acc
    else
      List.fold_left
        (fun acc (_, vis, p') ->
          match vis with Hidden -> go (budget - 1) acc p' | Visible -> acc)
        acc (transitions_i cfg p)
  in
  go cfg.hide_fuel [] p

let after_i cfg p e =
  (* [sync_on] rather than a filter over [transitions]: the derivative
     must accept any declared input value, not only sampled ones. *)
  List.concat_map
    (fun q -> sync_on (unfold_i cfg) cfg.unfold_fuel e q)
    (tau_reachable_i cfg p)

let rec accepts_trace_i cfg p = function
  | [] -> true
  | e :: rest ->
    List.exists (fun q -> accepts_trace_i cfg q rest) (after_i cfg p e)

let is_deadlocked_i cfg p =
  match transitions_i cfg p with [] -> true | _ :: _ -> false

module Traces_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) =
    Int.equal a1 a2 && Int.equal b1 b2 && Int.equal c1 c2

  let hash (a, b, c) = ((((a * 31) + b) * 31) + c) land max_int
end

module Traces_memo = Hashtbl.Make (Traces_key)

let traces_i cfg ~depth p =
  Obs.span ~cat:"step" "traces"
    ~args:(fun () -> [ ("depth", Obs.Int depth) ])
  @@ fun () ->
  (* Memoised on (node id, depth, hidden budget): recursive networks
     revisit the same state at many points of the exploration tree, and
     the closure of a state is independent of how it was reached.
     States are globally interned, so no per-call interning pass is
     needed and the transition relation is shared across calls through
     [cfg.trans_cache]. *)
  let memo = Traces_memo.create 256 in
  let rec go d hidden_budget p =
    if d <= 0 then Closure.empty
    else
      let key = (Proc.id p, d, hidden_budget) in
      match Traces_memo.find_opt memo key with
      | Some c -> c
      | None ->
        let c =
          List.fold_left
            (fun acc (e, vis, p') ->
              match vis with
              | Visible ->
                Closure.union acc
                  (Closure.prefix e (go (d - 1) cfg.hide_fuel p'))
              | Hidden ->
                if hidden_budget <= 0 then acc
                else Closure.union acc (go d (hidden_budget - 1) p'))
            Closure.empty (transitions_i cfg p)
        in
        Traces_memo.add memo key c;
        c
  in
  go depth cfg.hide_fuel p

(* Plain-AST entry points: intern, run on the IR, project back. *)

let transitions cfg p =
  List.map
    (fun (e, vis, q) -> (e, vis, Proc.to_process q))
    (transitions_i cfg (Proc.intern p))

let tau_reachable cfg p =
  List.map Proc.to_process (tau_reachable_i cfg (Proc.intern p))

let after cfg p e = List.map Proc.to_process (after_i cfg (Proc.intern p) e)
let accepts_trace cfg p s = accepts_trace_i cfg (Proc.intern p) s
let is_deadlocked cfg p = is_deadlocked_i cfg (Proc.intern p)
let traces cfg ~depth p = traces_i cfg ~depth (Proc.intern p)
