module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Defs = Csp_lang.Defs
module Valuation = Csp_lang.Valuation

type config = {
  defs : Defs.t;
  sampler : Sampler.t;
  unfold_fuel : int;
  hide_fuel : int;
}

let config ?(sampler = Sampler.default) ?(unfold_fuel = 64) ?(hide_fuel = 16)
    defs =
  { defs; sampler; unfold_fuel; hide_fuel }

exception Unproductive of string

type visibility = Visible | Hidden

let eval_chan c = Chan_expr.eval Valuation.empty c
let eval_expr e = Expr.eval Valuation.empty e

(* Continuations of [p] after engaging in exactly the visible event [e].
   Unlike the transition enumeration below, inputs accept any value of
   their declared set — the passive side of a synchronisation must not
   be restricted to sampled values. *)
let rec sync_on cfg fuel (e : Event.t) p : Process.t list =
  match p with
  | Process.Stop -> []
  | Process.Output (c, ex, k) ->
    if
      Csp_trace.Channel.equal (eval_chan c) e.chan
      && Csp_trace.Value.equal (eval_expr ex) e.value
    then [ k ]
    else []
  | Process.Input (c, x, m, k) ->
    if Csp_trace.Channel.equal (eval_chan c) e.chan && Csp_lang.Vset.mem m e.value
    then [ Process.subst_value x e.value k ]
    else []
  | Process.Choice (p1, p2) -> sync_on cfg fuel e p1 @ sync_on cfg fuel e p2
  | Process.Par (xa, ya, p1, p2) ->
    let in_x = Chan_set.mem xa e.chan and in_y = Chan_set.mem ya e.chan in
    if in_x && in_y then
      List.concat_map
        (fun p1' ->
          List.map
            (fun p2' -> Process.Par (xa, ya, p1', p2'))
            (sync_on cfg fuel e p2))
        (sync_on cfg fuel e p1)
    else if in_x then
      List.map (fun p1' -> Process.Par (xa, ya, p1', p2)) (sync_on cfg fuel e p1)
    else if in_y then
      List.map (fun p2' -> Process.Par (xa, ya, p1, p2')) (sync_on cfg fuel e p2)
    else []
  | Process.Hide (l, p1) ->
    (* events on concealed channels are not visible to the environment *)
    if Chan_set.mem l e.chan then []
    else List.map (fun p1' -> Process.Hide (l, p1')) (sync_on cfg fuel e p1)
  | Process.Ref (n, arg) ->
    if fuel <= 0 then raise (Unproductive n)
    else
      sync_on cfg (fuel - 1) e
        (Defs.unfold_ref cfg.defs Valuation.empty n arg)

(* Merge transition lists, unioning nothing: duplicates are removed per
   parallel node; the closure union deduplicates the rest. *)
let rec transitions_fuel cfg fuel p :
    (Event.t * visibility * Process.t) list =
  match p with
  | Process.Stop -> []
  | Process.Output (c, e, k) ->
    [ (Event.make (eval_chan c) (eval_expr e), Visible, k) ]
  | Process.Input (c, x, m, k) ->
    let chan = eval_chan c in
    List.map
      (fun v ->
        (Event.make chan v, Visible, Process.subst_value x v k))
      (Sampler.sample cfg.sampler m)
  | Process.Choice (p1, p2) ->
    transitions_fuel cfg fuel p1 @ transitions_fuel cfg fuel p2
  | Process.Par (xa, ya, p1, p2) ->
    let t1 = transitions_fuel cfg fuel p1
    and t2 = transitions_fuel cfg fuel p2 in
    let left =
      List.concat_map
        (fun ((e : Event.t), vis, p1') ->
          match vis with
          | Hidden -> [ (e, Hidden, Process.Par (xa, ya, p1', p2)) ]
          | Visible ->
            if Chan_set.mem ya e.chan then
              (* shared channel: both operands must engage in the event;
                 the partner accepts any value of its declared input set *)
              List.map
                (fun p2' -> (e, Visible, Process.Par (xa, ya, p1', p2')))
                (sync_on cfg fuel e p2)
            else [ (e, Visible, Process.Par (xa, ya, p1', p2)) ])
        t1
    in
    let right =
      List.concat_map
        (fun ((e : Event.t), vis, p2') ->
          match vis with
          | Hidden -> [ (e, Hidden, Process.Par (xa, ya, p1, p2')) ]
          | Visible ->
            if Chan_set.mem xa e.chan then
              List.map
                (fun p1' -> (e, Visible, Process.Par (xa, ya, p1', p2')))
                (sync_on cfg fuel e p1)
            else [ (e, Visible, Process.Par (xa, ya, p1, p2')) ])
        t2
    in
    (* Synchronisations reachable from both sides appear twice; remove
       exact duplicates. *)
    let triple_equal (e1, v1, q1) (e2, v2, q2) =
      Event.equal e1 e2 && v1 = v2 && Process.equal q1 q2
    in
    List.rev
      (List.fold_left
         (fun acc t ->
           if List.exists (triple_equal t) acc then acc else t :: acc)
         [] (left @ right))
  | Process.Hide (l, p1) ->
    List.map
      (fun ((e : Event.t), vis, p1') ->
        let vis = if Chan_set.mem l e.chan then Hidden else vis in
        (e, vis, Process.Hide (l, p1')))
      (transitions_fuel cfg fuel p1)
  | Process.Ref (n, arg) ->
    if fuel <= 0 then raise (Unproductive n)
    else
      transitions_fuel cfg (fuel - 1)
        (Defs.unfold_ref cfg.defs Valuation.empty n arg)

let transitions cfg p = transitions_fuel cfg cfg.unfold_fuel p

let tau_reachable cfg p =
  let rec go budget acc p =
    let acc = p :: acc in
    if budget <= 0 then acc
    else
      List.fold_left
        (fun acc (_, vis, p') ->
          match vis with Hidden -> go (budget - 1) acc p' | Visible -> acc)
        acc (transitions cfg p)
  in
  go cfg.hide_fuel [] p

let after cfg p e =
  (* [sync_on] rather than a filter over [transitions]: the derivative
     must accept any declared input value, not only sampled ones. *)
  List.concat_map (fun q -> sync_on cfg cfg.unfold_fuel e q) (tau_reachable cfg p)

let rec accepts_trace cfg p = function
  | [] -> true
  | e :: rest ->
    List.exists (fun q -> accepts_trace cfg q rest) (after cfg p e)

let is_deadlocked cfg p = transitions cfg p = []

(* Interning table for [traces]: process terms are pure data, so
   polymorphic equality is sound, and the deep [Process.hash] keeps
   states that differ only in an inner continuation from colliding.
   Each distinct state is hashed once, when it is first produced as a
   transition target; every memo probe afterwards works on its id. *)
module Proc_key = struct
  type t = Process.t

  let equal = Stdlib.( = )
  let hash = Process.hash
end

module Proc_memo = Hashtbl.Make (Proc_key)

let traces cfg ~depth p =
  (* Memoised on (state id, depth, hidden budget): recursive networks
     revisit the same state at many points of the exploration tree, and
     the closure of a state is independent of how it was reached.
     Previously the memo was keyed on [Process.to_string], and printing
     every state dominated construction time on parallel networks. *)
  let ids = Proc_memo.create 256 in
  let next_id = ref 0 in
  let intern q =
    match Proc_memo.find_opt ids q with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      Proc_memo.add ids q id;
      id
  in
  (* The transition relation depends on the state alone (not on the
     remaining depth or budget), so it is derived — and its targets
     interned — once per distinct state. *)
  let trans_memo : (int, (Event.t * visibility * int * Process.t) list) Hashtbl.t
      =
    Hashtbl.create 256
  in
  let transitions_of id q =
    match Hashtbl.find_opt trans_memo id with
    | Some ts -> ts
    | None ->
      let ts =
        List.map (fun (e, vis, q') -> (e, vis, intern q', q')) (transitions cfg q)
      in
      Hashtbl.add trans_memo id ts;
      ts
  in
  let memo : (int * int * int, Closure.t) Hashtbl.t = Hashtbl.create 256 in
  let rec go d hidden_budget id q =
    if d <= 0 then Closure.empty
    else
      let key = (id, d, hidden_budget) in
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
        let c =
          List.fold_left
            (fun acc (e, vis, id', q') ->
              match vis with
              | Visible ->
                Closure.union acc
                  (Closure.prefix e (go (d - 1) cfg.hide_fuel id' q'))
              | Hidden ->
                if hidden_budget <= 0 then acc
                else Closure.union acc (go d (hidden_budget - 1) id' q'))
            Closure.empty (transitions_of id q)
        in
        Hashtbl.add memo key c;
        c
  in
  go depth cfg.hide_fuel (intern p) p
