(** A refusals model — the paper's future work (§4).

    The conclusion identifies the prefix-closure model's "worst defect":
    it equates [STOP | P] with [P], because a branch that deadlocks is
    invisible in the set of traces.  "It is hoped that the adoption of a
    more realistic model of non-determinism will permit the formulation
    of proof rules for the total correctness of processes."  This module
    implements that more realistic model: stable-failures semantics,
    four years before Brookes–Hoare–Roscoe made it standard.

    The alternative [P | Q] admits two readings, and §4 discusses both:
    {ul
    {- [`External] (the default): the choice is resolved "at the moment
       the first communication takes place" — the §4 description of how
       [P | Q] is actually implemented.  The process offers the initial
       events of both branches.}
    {- [`Internal]: "the choice between them may be regarded as
       non-deterministic" — the process may {e commit} to either branch
       before interacting.  This is the reading under which the trace
       model's identification of [STOP | P] with [P] is a defect, and
       the one {!distinguishes_stop_choice} uses.}}

    A commitment is stable when no concealed communication is pending.
    Each stable commitment offers exactly its set of initial visible
    events (its {e acceptance}) and refuses everything else.

    All computations are depth-bounded and use the configuration's
    sampler, like the rest of the semantics. *)

type choice_reading = [ `External | `Internal ]

type acceptance = Csp_trace.Event.t list
(** The visible events a stable state offers, sorted and deduplicated.
    The state refuses every other event; an empty acceptance is a
    deadlocked commitment. *)

val commitments :
  ?choice:choice_reading ->
  Step.config -> Csp_lang.Process.t -> Csp_lang.Process.t list
(** Resolve internal choices and bounded runs of concealed
    communications: the stable states the process may silently reach
    before interacting.  States whose concealed chatter exceeds the
    hide budget are dropped — they may diverge, and divergence lies
    outside the stable-failures model (keeping them would misreport
    deadlocks). *)

val acceptances_now :
  ?choice:choice_reading ->
  Step.config -> Csp_lang.Process.t -> acceptance list
(** The acceptance sets of the current commitments, deduplicated. *)

type t = (Csp_trace.Trace.t * acceptance list) list
(** A bounded failure set: every visible trace up to the depth, paired
    with the acceptances of the stable states reachable on it. *)

val failures :
  ?choice:choice_reading ->
  Step.config -> depth:int -> Csp_lang.Process.t -> t

val can_refuse :
  ?choice:choice_reading ->
  Step.config -> depth:int -> Csp_lang.Process.t -> Csp_trace.Trace.t ->
  Csp_trace.Event.t list -> bool
(** [can_refuse cfg ~depth p s es]: after trace [s], may the process
    reach a stable state that refuses every event of [es]? *)

val can_deadlock :
  ?choice:choice_reading ->
  Step.config -> depth:int -> Csp_lang.Process.t -> Csp_trace.Trace.t option
(** The shortest visible trace after which some commitment offers
    nothing at all, if any ([Some []] means the process may deadlock
    immediately). *)

val equal : t -> t -> bool
(** Equality of bounded failure sets (traces and acceptance families). *)

val refines : t -> t -> bool
(** [refines impl spec]: failures refinement — every trace of [impl] is
    a trace of [spec], and every acceptance of [impl] is an acceptance
    some commitment of [spec] also has (so [impl] refuses no more than
    [spec] allows). *)

val distinguishes_stop_choice :
  Step.config -> depth:int -> Csp_lang.Process.t -> bool
(** The §4 experiment, under the [`Internal] reading: is [STOP | P]
    different from [P] in this model?  True whenever [P] cannot itself
    deadlock immediately — exactly the distinction the trace model
    cannot make. *)

val pp : Format.formatter -> t -> unit
