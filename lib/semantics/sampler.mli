(** Samplers: finite representatives of possibly-infinite message sets.

    Input prefixes [c?x:M → P] with [M = NAT] have infinitely many
    initial events.  Bounded enumeration of traces therefore draws the
    candidate values from a sampler; claims verified under a sampler
    are exact for the sampled sub-language and are reported as such. *)

type t

val default : t
(** [NAT ↦ {0,…,3}]; finite sets enumerated exactly. *)

val nat_bound : int -> t
(** [NAT ↦ {0,…,n−1}]. *)

val of_fun : (Csp_lang.Vset.t -> Csp_trace.Value.t list) -> t

val shuffled : seed:int -> t -> t
(** Deterministically permutes the underlying sampler's candidates.
    The permutation is a pure function of [seed] and the sampled set —
    never of any global random state — so randomised exploration
    orders are reproducible from the seed alone. *)

val sample : t -> Csp_lang.Vset.t -> Csp_trace.Value.t list
(** Always a subset of the set it samples; finite sets are returned in
    full. *)
