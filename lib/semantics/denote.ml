module Value = Csp_trace.Value
module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Defs = Csp_lang.Defs
module Valuation = Csp_lang.Valuation

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  hide_extra : int;
}

let config ?(sampler = Sampler.default) ?(hide_extra = 8) defs =
  { defs; sampler; hide_extra }

(* A semantic environment maps a (possibly subscripted) process name to
   its current approximation, already truncated at the environment
   depth. *)
type senv = string -> Value.t option -> Closure.t

let eval_chan c = Chan_expr.eval Valuation.empty c
let eval_expr e = Expr.eval Valuation.empty e

let rec eval cfg (senv : senv) depth p =
  if depth <= 0 then Closure.empty
  else
    match p with
    | Process.Stop -> Closure.empty
    | Process.Output (c, e, k) ->
      Closure.prefix
        (Event.make (eval_chan c) (eval_expr e))
        (eval cfg senv (depth - 1) k)
    | Process.Input (c, x, m, k) ->
      let chan = eval_chan c in
      Closure.union_all
        (List.map
           (fun v ->
             Closure.prefix (Event.make chan v)
               (eval cfg senv (depth - 1) (Process.subst_value x v k)))
           (Sampler.sample cfg.sampler m))
    | Process.Choice (p1, p2) ->
      Closure.union (eval cfg senv depth p1) (eval cfg senv depth p2)
    | Process.Par (xa, ya, p1, p2) ->
      Closure.truncate depth
        (Closure.par
           ~in_x:(fun c -> Chan_set.mem xa c)
           ~in_y:(fun c -> Chan_set.mem ya c)
           (eval cfg senv depth p1) (eval cfg senv depth p2))
    | Process.Hide (l, p1) ->
      Closure.truncate depth
        (Closure.hide
           (fun c -> Chan_set.mem l c)
           (eval cfg senv (depth + cfg.hide_extra) p1))
    | Process.Ref (n, arg) ->
      Closure.truncate depth (senv n (Option.map eval_expr arg))

(* One step of the approximation chain, with memoisation per level so
   that the chain is computed in time linear in its length. *)
let next cfg env_depth (prev : senv) : senv =
  let table : (string * string option, Closure.t) Hashtbl.t =
    Hashtbl.create 16
  in
  fun name arg ->
    let key = (name, Option.map Value.to_string arg) in
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
      let body = Defs.unfold cfg.defs name arg in
      let c = eval cfg prev env_depth body in
      Hashtbl.add table key c;
      c

let bottom : senv = fun _ _ -> Closure.empty

let env_chain cfg env_depth n =
  let rec go acc env i =
    if i >= n then List.rev acc
    else
      let env' = next cfg env_depth env in
      go (env' :: acc) env' (i + 1)
  in
  go [ bottom ] bottom 0

let denote ?iterations cfg ~depth p =
  let env_depth = depth + cfg.hide_extra in
  let iterations =
    match iterations with Some n -> n | None -> env_depth + 1
  in
  let rec iterate env i =
    if i <= 0 then env else iterate (next cfg env_depth env) (i - 1)
  in
  let env = iterate bottom iterations in
  eval cfg env depth p

let approximations cfg ~depth ~n p =
  let env_depth = depth + cfg.hide_extra in
  List.map (fun env -> eval cfg env depth p) (env_chain cfg env_depth n)
