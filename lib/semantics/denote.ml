module Value = Csp_trace.Value
module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Proc = Csp_lang.Proc
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Defs = Csp_lang.Defs
module Valuation = Csp_lang.Valuation
module Obs = Csp_obs.Obs

(* Fixpoint iterations actually run, summed over every [denote] call —
   the convergence accelerator's effect is visible as this staying far
   below depth+1 per call. *)
let fixpoint_iters = Obs.Counter.make "denote.fixpoint_iters"
let denote_calls = Obs.Counter.make "denote.calls"

(* (environment generation, depth, node id) — sound because generations
   are never reused within a config (gen 0 is the constant bottom
   environment) and node ids are never reused globally. *)
module Eval_tbl = Hashtbl.Make (struct
  type t = int * int * int

  let equal (g1, d1, i1) (g2, d2, i2) =
    Int.equal g1 g2 && Int.equal d1 d2 && Int.equal i1 i2

  let hash (g, d, i) = ((((g * 31) + d) * 31) + i) land max_int
end)

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  hide_extra : int;
  ref_memo : (string * string option * int * int, Closure.t) Hashtbl.t;
      (* (name, arg, depth, env generation) → truncated approximation:
         recursive references hit cache across the chain *)
  eval_memo : Closure.t Eval_tbl.t;
      (* (env generation, depth, node id) → evaluation: hash-consed
         states shared across approximation levels and samples
         evaluate once per level *)
  mutable generation : int;
      (* generation counter: each environment level built by [next]
         gets a fresh generation, so memo keys are unambiguous *)
}

let config ?(sampler = Sampler.default) ?(hide_extra = 8) defs =
  {
    defs;
    sampler;
    hide_extra;
    ref_memo = Hashtbl.create 64;
    eval_memo = Eval_tbl.create 256;
    generation = 0;
  }

(* Cache counters, aggregated by [Engine.stats].  Atomic: sharded
   fuzzing evaluates denotations on several domains concurrently. *)
let eval_hits = Atomic.make 0
let eval_misses = Atomic.make 0

type stats = { eval_hits : int; eval_misses : int }

let stats () =
  { eval_hits = Atomic.get eval_hits; eval_misses = Atomic.get eval_misses }

let reset_stats () =
  Atomic.set eval_hits 0;
  Atomic.set eval_misses 0

let () =
  Obs.register_source "denote" (fun () ->
      let s = stats () in
      [
        ("eval_hits", Obs.Int s.eval_hits);
        ("eval_misses", Obs.Int s.eval_misses);
      ])

(* A semantic environment maps a (possibly subscripted) process name to
   its current approximation, already truncated at the environment
   depth.  [gen] identifies the approximation level for memoisation. *)
type senv = { gen : int; find : string -> Value.t option -> Closure.t }

let eval_chan c = Chan_expr.eval Valuation.empty c
let eval_expr e = Expr.eval Valuation.empty e

(* Evaluation on interned nodes, memoised per (generation, depth,
   node): the states produced by input substitution recur across
   approximation levels and across sampled values, and hash-consing
   makes the recurrence detectable in O(1). *)
let rec eval_i cfg (senv : senv) depth p =
  if depth <= 0 then Closure.empty
  else
    let key = (senv.gen, depth, Proc.id p) in
    match Eval_tbl.find_opt cfg.eval_memo key with
    | Some c ->
      Atomic.incr eval_hits;
      c
    | None ->
      Atomic.incr eval_misses;
      let c = eval_node cfg senv depth p in
      Eval_tbl.add cfg.eval_memo key c;
      c

and eval_node cfg (senv : senv) depth p =
  match Proc.node p with
  | Proc.Stop -> Closure.empty
  | Proc.Output (c, e, k) ->
    Closure.prefix
      (Event.make (eval_chan c) (eval_expr e))
      (eval_i cfg senv (depth - 1) k)
  | Proc.Input (c, x, m, k) ->
    let chan = eval_chan c in
    Closure.union_all
      (List.map
         (fun v ->
           Closure.prefix (Event.make chan v)
             (eval_i cfg senv (depth - 1) (Proc.subst_value x v k)))
         (Sampler.sample cfg.sampler m))
  | Proc.Choice (p1, p2) ->
    Closure.union (eval_i cfg senv depth p1) (eval_i cfg senv depth p2)
  | Proc.Par (xa, ya, p1, p2) ->
    Closure.truncate depth
      (Closure.par
         ~in_x:(fun c -> Chan_set.mem xa c)
         ~in_y:(fun c -> Chan_set.mem ya c)
         (eval_i cfg senv depth p1) (eval_i cfg senv depth p2))
  | Proc.Hide (l, p1) ->
    Closure.truncate depth
      (Closure.hide
         (fun c -> Chan_set.mem l c)
         (eval_i cfg senv (depth + cfg.hide_extra) p1))
  | Proc.Ref (n, arg) ->
    let argv = Option.map eval_expr arg in
    let key = (n, Option.map Value.to_string argv, depth, senv.gen) in
    (match Hashtbl.find_opt cfg.ref_memo key with
    | Some c -> c
    | None ->
      let c = Closure.truncate depth (senv.find n argv) in
      Hashtbl.add cfg.ref_memo key c;
      c)

let eval cfg senv depth p = eval_i cfg senv depth (Proc.intern p)

(* The per-level table: every (name, arg) demanded of this environment,
   with its approximation.  Comparing consecutive tables — physical
   equality per entry, thanks to hash-consing — detects that the chain
   has converged. *)
type level_table = (string * string option, Closure.t) Hashtbl.t

(* One step of the approximation chain, with memoisation per level so
   that the chain is computed in time linear in its length.  [record]
   accumulates every key ever demanded (with its argument value), so
   the caller can force subsequent levels on the same key set. *)
let next ?record cfg env_depth (prev : senv) : senv * level_table =
  let table : level_table = Hashtbl.create 16 in
  cfg.generation <- cfg.generation + 1;
  let gen = cfg.generation in
  let find name arg =
    let key = (name, Option.map Value.to_string arg) in
    (match record with
    | Some demanded ->
      if not (Hashtbl.mem demanded key) then Hashtbl.add demanded key arg
    | None -> ());
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
      let body = Defs.unfold cfg.defs name arg in
      let c = eval cfg prev env_depth body in
      Hashtbl.add table key c;
      c
  in
  ({ gen; find }, table)

let bottom : senv = { gen = 0; find = (fun _ _ -> Closure.empty) }

(* Force every approximation demanded so far at this level.  Computing
   a body may demand new names (added to [demanded] by [next]'s
   recording); loop until the set is closed, so consecutive level
   tables range over the same keys and their comparison is sound. *)
let force (env : senv) (demanded : (string * string option, Value.t option) Hashtbl.t)
    =
  let rec loop () =
    let before = Hashtbl.length demanded in
    let snapshot =
      Hashtbl.fold (fun (name, _) arg acc -> (name, arg) :: acc) demanded []
    in
    List.iter (fun (name, arg) -> ignore (env.find name arg)) snapshot;
    if Hashtbl.length demanded > before then loop ()
  in
  loop ()

let tables_agree (prev : level_table) (cur : level_table) =
  Hashtbl.length prev = Hashtbl.length cur
  && Hashtbl.fold
       (fun key c ok ->
         ok
         &&
         match Hashtbl.find_opt prev key with
         | Some c' -> Closure.equal c c'
         | None -> false)
       cur true

let denote ?iterations cfg ~depth p =
  Obs.Counter.incr denote_calls;
  Obs.span ~cat:"denote" "denote"
    ~args:(fun () -> [ ("depth", Obs.Int depth) ])
  @@ fun () ->
  let env_depth = depth + cfg.hide_extra in
  (* With an explicit [iterations] the chain is run for exactly that
     many rounds (the pre-convergence behaviour, kept as a reference);
     by default it stops as soon as a level reproduces the previous one
     — every later level is then identical, because evaluation is a
     deterministic function of the approximations it demands. *)
  let early_stop = iterations = None in
  let limit = match iterations with Some n -> n | None -> env_depth + 1 in
  let p = Proc.intern p in
  if limit <= 0 then eval_i cfg bottom depth p
  else begin
    let demanded = Hashtbl.create 16 in
    let rec go prev_env prev_table i =
      Obs.Counter.incr fixpoint_iters;
      let env, table = next ~record:demanded cfg env_depth prev_env in
      let r =
        Obs.span ~cat:"denote" "fixpoint-iter"
          ~args:(fun () -> [ ("iter", Obs.Int i) ])
          (fun () ->
            let r = eval_i cfg env depth p in
            force env demanded;
            r)
      in
      let converged =
        early_stop
        &&
        match prev_table with
        | Some prev -> tables_agree prev table
        | None -> Hashtbl.length table = 0 (* no recursion at all *)
      in
      if converged || i + 1 >= limit then r else go env (Some table) (i + 1)
    in
    go bottom None 0
  end

let approximations cfg ~depth ~n p =
  let env_depth = depth + cfg.hide_extra in
  let demanded = Hashtbl.create 16 in
  let p = Proc.intern p in
  let a0 = eval_i cfg bottom depth p in
  (* [state] is [`Growing (env, table option)] while the chain still
     moves, [`Stable a] once a level reproduced its predecessor — from
     then on every approximation is [a], no re-evaluation needed. *)
  let rec go state acc i =
    if i > n then List.rev acc
    else
      match state with
      | `Stable a -> go state (a :: acc) (i + 1)
      | `Growing (prev_env, prev_table) ->
        let env, table = next ~record:demanded cfg env_depth prev_env in
        let a = eval_i cfg env depth p in
        force env demanded;
        let stable =
          match prev_table with
          | Some prev -> tables_agree prev table
          | None -> false
        in
        let state =
          if stable then `Stable a else `Growing (env, Some table)
        in
        go state (a :: acc) (i + 1)
  in
  go (`Growing (bottom, None)) [ a0 ] 1
