module Value = Csp_trace.Value
module Event = Csp_trace.Event
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Defs = Csp_lang.Defs
module Valuation = Csp_lang.Valuation

type config = {
  defs : Csp_lang.Defs.t;
  sampler : Sampler.t;
  hide_extra : int;
  ref_memo : (string * string option * int * int, Closure.t) Hashtbl.t;
      (* (name, arg, depth, env generation) → truncated approximation:
         recursive references hit cache across the chain *)
  mutable generation : int;
      (* generation counter: each environment level built by [next]
         gets a fresh generation, so [ref_memo] keys are unambiguous *)
}

let config ?(sampler = Sampler.default) ?(hide_extra = 8) defs =
  { defs; sampler; hide_extra; ref_memo = Hashtbl.create 64; generation = 0 }

(* A semantic environment maps a (possibly subscripted) process name to
   its current approximation, already truncated at the environment
   depth.  [gen] identifies the approximation level for memoisation. *)
type senv = { gen : int; find : string -> Value.t option -> Closure.t }

let eval_chan c = Chan_expr.eval Valuation.empty c
let eval_expr e = Expr.eval Valuation.empty e

let rec eval cfg (senv : senv) depth p =
  if depth <= 0 then Closure.empty
  else
    match p with
    | Process.Stop -> Closure.empty
    | Process.Output (c, e, k) ->
      Closure.prefix
        (Event.make (eval_chan c) (eval_expr e))
        (eval cfg senv (depth - 1) k)
    | Process.Input (c, x, m, k) ->
      let chan = eval_chan c in
      Closure.union_all
        (List.map
           (fun v ->
             Closure.prefix (Event.make chan v)
               (eval cfg senv (depth - 1) (Process.subst_value x v k)))
           (Sampler.sample cfg.sampler m))
    | Process.Choice (p1, p2) ->
      Closure.union (eval cfg senv depth p1) (eval cfg senv depth p2)
    | Process.Par (xa, ya, p1, p2) ->
      Closure.truncate depth
        (Closure.par
           ~in_x:(fun c -> Chan_set.mem xa c)
           ~in_y:(fun c -> Chan_set.mem ya c)
           (eval cfg senv depth p1) (eval cfg senv depth p2))
    | Process.Hide (l, p1) ->
      Closure.truncate depth
        (Closure.hide
           (fun c -> Chan_set.mem l c)
           (eval cfg senv (depth + cfg.hide_extra) p1))
    | Process.Ref (n, arg) ->
      let argv = Option.map eval_expr arg in
      let key = (n, Option.map Value.to_string argv, depth, senv.gen) in
      (match Hashtbl.find_opt cfg.ref_memo key with
      | Some c -> c
      | None ->
        let c = Closure.truncate depth (senv.find n argv) in
        Hashtbl.add cfg.ref_memo key c;
        c)

(* The per-level table: every (name, arg) demanded of this environment,
   with its approximation.  Comparing consecutive tables — physical
   equality per entry, thanks to hash-consing — detects that the chain
   has converged. *)
type level_table = (string * string option, Closure.t) Hashtbl.t

(* One step of the approximation chain, with memoisation per level so
   that the chain is computed in time linear in its length.  [record]
   accumulates every key ever demanded (with its argument value), so
   the caller can force subsequent levels on the same key set. *)
let next ?record cfg env_depth (prev : senv) : senv * level_table =
  let table : level_table = Hashtbl.create 16 in
  cfg.generation <- cfg.generation + 1;
  let gen = cfg.generation in
  let find name arg =
    let key = (name, Option.map Value.to_string arg) in
    (match record with
    | Some demanded ->
      if not (Hashtbl.mem demanded key) then Hashtbl.add demanded key arg
    | None -> ());
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
      let body = Defs.unfold cfg.defs name arg in
      let c = eval cfg prev env_depth body in
      Hashtbl.add table key c;
      c
  in
  ({ gen; find }, table)

let bottom : senv = { gen = 0; find = (fun _ _ -> Closure.empty) }

(* Force every approximation demanded so far at this level.  Computing
   a body may demand new names (added to [demanded] by [next]'s
   recording); loop until the set is closed, so consecutive level
   tables range over the same keys and their comparison is sound. *)
let force (env : senv) (demanded : (string * string option, Value.t option) Hashtbl.t)
    =
  let rec loop () =
    let before = Hashtbl.length demanded in
    let snapshot =
      Hashtbl.fold (fun (name, _) arg acc -> (name, arg) :: acc) demanded []
    in
    List.iter (fun (name, arg) -> ignore (env.find name arg)) snapshot;
    if Hashtbl.length demanded > before then loop ()
  in
  loop ()

let tables_agree (prev : level_table) (cur : level_table) =
  Hashtbl.length prev = Hashtbl.length cur
  && Hashtbl.fold
       (fun key c ok ->
         ok
         &&
         match Hashtbl.find_opt prev key with
         | Some c' -> Closure.equal c c'
         | None -> false)
       cur true

let denote ?iterations cfg ~depth p =
  let env_depth = depth + cfg.hide_extra in
  (* With an explicit [iterations] the chain is run for exactly that
     many rounds (the pre-convergence behaviour, kept as a reference);
     by default it stops as soon as a level reproduces the previous one
     — every later level is then identical, because evaluation is a
     deterministic function of the approximations it demands. *)
  let early_stop = iterations = None in
  let limit = match iterations with Some n -> n | None -> env_depth + 1 in
  if limit <= 0 then eval cfg bottom depth p
  else begin
    let demanded = Hashtbl.create 16 in
    let rec go prev_env prev_table i =
      let env, table = next ~record:demanded cfg env_depth prev_env in
      let r = eval cfg env depth p in
      force env demanded;
      let converged =
        early_stop
        &&
        match prev_table with
        | Some prev -> tables_agree prev table
        | None -> Hashtbl.length table = 0 (* no recursion at all *)
      in
      if converged || i + 1 >= limit then r else go env (Some table) (i + 1)
    in
    go bottom None 0
  end

let approximations cfg ~depth ~n p =
  let env_depth = depth + cfg.hide_extra in
  let demanded = Hashtbl.create 16 in
  let a0 = eval cfg bottom depth p in
  (* [state] is [`Growing (env, table option)] while the chain still
     moves, [`Stable a] once a level reproduced its predecessor — from
     then on every approximation is [a], no re-evaluation needed. *)
  let rec go state acc i =
    if i > n then List.rev acc
    else
      match state with
      | `Stable a -> go state (a :: acc) (i + 1)
      | `Growing (prev_env, prev_table) ->
        let env, table = next ~record:demanded cfg env_depth prev_env in
        let a = eval cfg env depth p in
        force env demanded;
        let stable =
          match prev_table with
          | Some prev -> tables_agree prev table
          | None -> false
        in
        let state =
          if stable then `Stable a else `Growing (env, Some table)
        in
        go state (a :: acc) (i + 1)
  in
  go (`Growing (bottom, None)) [ a0 ] 1
