(** Sequents of the proof system (§2.1).

    A context holds the definition environment (the paper allows
    definitions in the assumption list Γ) and satisfaction hypotheses:
    [p sat R] for a process name, or [∀x∈M. q[x] sat S] for a process
    array.  A judgment is the conclusion being proved. *)

open Csp_assertion

type hyp =
  | Sat of string * Assertion.t
      (** [Sat (p, R)]: the process named [p] satisfies [R]. *)
  | Sat_array of string * string * Csp_lang.Vset.t * Assertion.t
      (** [Sat_array (q, x, M, S)]: ∀x∈M. q[x] sat S. *)

type judgment =
  | Holds of Csp_lang.Process.t * Assertion.t
      (** [P sat R] *)
  | Holds_all of string * string * Csp_lang.Vset.t * Assertion.t
      (** [∀x∈M. q[x] sat S] *)

type context = { defs : Csp_lang.Defs.t; hyps : hyp list }

val context : ?hyps:hyp list -> Csp_lang.Defs.t -> context
val add_hyp : hyp -> context -> context

val hyp_equal : hyp -> hyp -> bool
val pp_hyp : Format.formatter -> hyp -> unit
val pp_judgment : Format.formatter -> judgment -> unit
val judgment_to_string : judgment -> string
