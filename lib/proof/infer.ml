open Csp_assertion
module History = Csp_trace.History
module Channel = Csp_trace.Channel
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Step = Csp_semantics.Step
module Closure = Csp_semantics.Closure

type conjecture = {
  assertion : Assertion.t;
  proved : bool;
  report : Check.report option;
}

type config = {
  runs : int;
  steps : int;
  max_len_diff : int;
  seed : int;
  funs : Afun.env;
}

let default_config =
  { runs = 5; steps = 200; max_len_diff = 2; seed = 1; funs = Afun.default_env }

(* The walk/conjecture knobs seeded from a unified engine: the engine's
   seed drives the random walks, everything else keeps its default. *)
let engine_config eng =
  { default_config with seed = eng.Csp_semantics.Engine.seed }

(* Random walks over the transition relation, recording the channel
   history after every communication (hidden ones included — invariants
   may constrain concealed wires, as the protocol's do). *)
let random_walk cfg steps seed p =
  let st = Random.State.make [| seed |] in
  let rec go k p hist acc =
    if k = 0 then acc
    else
      match Step.transitions cfg p with
      | [] -> acc
      | ts ->
        let e, _, p' = List.nth ts (Random.State.int st (List.length ts)) in
        let hist = History.extend hist e in
        go (k - 1) p' hist (hist :: acc)
  in
  go steps p History.empty [ History.empty ]

let observe ?(config = default_config) scfg p =
  let from_enumeration =
    List.map History.of_trace
      (Closure.to_traces (Step.traces scfg ~depth:5 p))
  in
  let from_walks =
    (* walk seeds derive from the explicit config seed (base, base+1,
       …) instead of a hard-wired 1..runs, so observation runs are
       reproducible and re-seedable from the caller *)
    List.concat_map
      (fun seed -> random_walk scfg config.steps seed p)
      (List.init config.runs (fun i -> config.seed + i))
  in
  from_enumeration @ from_walks

let observed_channels hists =
  List.fold_left
    (fun acc h ->
      List.fold_left
        (fun acc c -> if List.exists (Channel.equal c) acc then acc else acc @ [ c ])
        acc (History.channels h))
    [] hists

let holds_everywhere funs hists a =
  List.for_all
    (fun hist ->
      let ctx = Term.ctx ~hist ~funs () in
      match Assertion.eval ctx a with
      | b -> b
      | exception Term.Eval_error _ -> false)
    hists

(* A prefix conjecture whose left-hand side is empty in every
   observation is vacuous noise (e.g. f(input) when input never carries
   acknowledgement signals). *)
let nonvacuous funs hists = function
  | Assertion.Prefix (lhs, _) ->
    List.exists
      (fun hist ->
        let ctx = Term.ctx ~hist ~funs () in
        match Term.eval_seq ctx lhs with
        | [] -> false
        | _ :: _ -> true
        | exception Term.Eval_error _ -> false)
      hists
  | _ -> true

let conjecture ?(config = default_config) scfg p =
  let hists = observe ~config scfg p in
  let chans = observed_channels hists in
  let keep a = holds_everywhere config.funs hists a && nonvacuous config.funs hists a in
  let tchan c = Term.Chan (Chan_expr.of_channel c) in
  let prefix_cands =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun d ->
            if Channel.equal c d then None
            else
              let a = Assertion.Prefix (tchan c, tchan d) in
              if keep a then Some a else None)
          chans)
      chans
  in
  let fun_names =
    (* every registered function except the identity *)
    List.filter_map
      (fun n -> if n = "id" then None else Some n)
      (List.filter_map
         (fun n -> Option.map (fun f -> f.Afun.name) (Afun.find config.funs n))
         [ "f"; "odds"; "evens" ])
  in
  let fprefix_cands =
    List.concat_map
      (fun g ->
        List.concat_map
          (fun c ->
            List.concat_map
              (fun d ->
                if Channel.equal c d then []
                else if keep (Assertion.Prefix (tchan c, tchan d)) then
                  (* the plain prefix already holds: functional forms
                     would be weaker noise *)
                  []
                else
                  List.filter keep
                    [
                      Assertion.Prefix (Term.App (g, tchan c), tchan d);
                      Assertion.Prefix (tchan c, Term.App (g, tchan d));
                    ])
              chans)
          chans)
      fun_names
  in
  let length_cands =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun d ->
            if Channel.equal c d then None
            else
              (* the strongest k that survives observation *)
              let rec first_k k =
                if k > config.max_len_diff then None
                else
                  let a =
                    Assertion.Cmp
                      ( Assertion.Le,
                        Term.Len (tchan c),
                        Term.Add (Term.Len (tchan d), Term.int k) )
                  in
                  if keep a then Some a else first_k (k + 1)
              in
              first_k 0)
          chans)
      chans
  in
  prefix_cands @ fprefix_cands @ length_cands

let conjectures_counter = Csp_obs.Obs.Counter.make "infer.conjectures"
let proved_counter = Csp_obs.Obs.Counter.make "infer.proved"

let infer ?(config = default_config) ?(tables = Tactic.no_tables) scfg ~name p =
  Csp_obs.Obs.span ~cat:"infer" "infer" @@ fun () ->
  let ctx = Sequent.context scfg.Step.defs in
  let with_invariant inv =
    {
      tables with
      Tactic.invariants =
        (name, inv) :: List.remove_assoc name tables.Tactic.invariants;
    }
  in
  let attempt inv goal =
    match
      Tactic.prove_and_check ~tables:(with_invariant inv) ctx
        (Sequent.Holds (p, goal))
    with
    | Ok (_, report) -> Some report
    | Error _ -> None
  in
  let first_pass =
    List.map
      (fun a ->
        match attempt a a with
        | Some report -> { assertion = a; proved = true; report = Some report }
        | None -> { assertion = a; proved = false; report = None })
      (conjecture ~config scfg p)
  in
  (* Strengthening: a conjecture may be non-inductive alone yet follow
     from the conjunction of everything observed (the classic trick for
     invariants that support each other).  Retry the failures with the
     whole surviving conjunction as the loop invariant. *)
  let all = Assertion.conj (List.map (fun c -> c.assertion) first_pass) in
  let second_pass =
    List.map
      (fun c ->
        if c.proved || List.length first_pass < 2 then c
        else
          match attempt all c.assertion with
          | Some report -> { c with proved = true; report = Some report }
          | None -> c)
      first_pass
  in
  let results =
    List.stable_sort (fun a b -> Bool.compare b.proved a.proved) second_pass
  in
  Csp_obs.Obs.Counter.add conjectures_counter (List.length results);
  Csp_obs.Obs.Counter.add proved_counter
    (List.length (List.filter (fun c -> c.proved) results));
  results

let infer_engine ?config ?tables eng ~name p =
  let config = match config with Some c -> c | None -> engine_config eng in
  infer ~config ?tables (Csp_semantics.Engine.step_config eng) ~name p
