open Csp_assertion
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs
module Obs = Csp_obs.Obs

(* Inference-rule applications attempted by the tactic, summed over
   every [derive] judgment (whether or not the attempt succeeds) — the
   proof-search analogue of the kernel cache counters. *)
let rules_attempted = Obs.Counter.make "tactic.rules_attempted"

type tables = {
  invariants : (string * Assertion.t) list;
  array_invariants : (string * (string * Vset.t * Assertion.t)) list;
}

let no_tables = { invariants = []; array_invariants = [] }

let tables ?(invariants = []) ?(array_invariants = []) () =
  { invariants; array_invariants }

exception Tactic_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Tactic_error s)) fmt

let term_of_expr e =
  match Term.of_expr e with
  | Some t -> t
  | None -> fail "expression %a not expressible in assertions" Expr.pp e

let cons_channel c x r =
  match Assertion.cons_channel c x r with
  | Ok r' -> r'
  | Error m -> fail "%s" m

type state = { mutable counter : int; tbl : tables; ctx0 : Sequent.context }

let fresh_var st ~avoid =
  let rec go () =
    st.counter <- st.counter + 1;
    let v = Printf.sprintf "v%d" st.counter in
    if List.mem v avoid then go () else v
  in
  go ()

let find_sat (ctx : Sequent.context) p =
  List.find_map
    (function
      | Sequent.Sat (p', r) when String.equal p p' -> Some r
      | Sequent.Sat _ | Sequent.Sat_array _ -> None)
    ctx.Sequent.hyps

let find_sat_array (ctx : Sequent.context) q =
  List.find_map
    (function
      | Sequent.Sat_array (q', x, m, s) when String.equal q q' ->
        Some (x, m, s)
      | Sequent.Sat_array _ | Sequent.Sat _ -> None)
    ctx.Sequent.hyps

let table_inv st p = List.assoc_opt p st.tbl.invariants
let table_array st q = List.assoc_opt q st.tbl.array_invariants

(* The invariant a component of a parallel composition contributes, read
   off the hypotheses and tables. *)
let rec infer_invariant st (ctx : Sequent.context) p =
  match p with
  | Process.Ref (n, None) -> (
    match find_sat ctx n with
    | Some r -> Some r
    | None -> table_inv st n)
  | Process.Ref (q, Some e) -> (
    let apply (x, _, s) = Assertion.subst_var x (term_of_expr e) s in
    match find_sat_array ctx q with
    | Some entry -> Some (apply entry)
    | None -> Option.map apply (table_array st q))
  | Process.Par (_, _, a, b) -> (
    match infer_invariant st ctx a, infer_invariant st ctx b with
    | Some r1, Some r2 -> Some (Assertion.And (r1, r2))
    | _ -> None)
  | Process.Hide (l, a) -> (
    match infer_invariant st ctx a with
    | Some r when Check.chans_avoid l r -> Some r
    | _ -> None)
  | Process.Stop | Process.Output _ | Process.Input _ | Process.Choice _ ->
    None

(* Names reachable from a definition's body through the definition
   environment, including the starting names, in encounter order. *)
let reachable_names defs start =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      order := n :: !order;
      match Defs.lookup defs n with
      | None -> ()
      | Some d -> List.iter visit (Process.refs d.Defs.body)
    end
  in
  List.iter visit start;
  List.rev !order

let rec derive st (ctx : Sequent.context) ~bound ~budget (j : Sequent.judgment)
    : Proof.t =
  Obs.Counter.incr rules_attempted;
  match j with
  | Sequent.Holds_all (q, x, m, s) -> (
    match find_sat_array ctx q with
    | Some (x', m', s')
      when String.equal x x' && Vset.equal m m' && Assertion.equal s s' ->
      Proof.Assumption
    | _ -> (
      match table_array st q with
      | Some (x', m', s')
        when String.equal x x' && Vset.equal m m' && Assertion.equal s s' ->
        make_fix st ctx ~bound ~budget (`Array q)
      | Some _ ->
        fail "registered invariant of array %s does not match the goal" q
      | None -> fail "no invariant registered for process array %s" q))
  | Sequent.Holds (p, r) -> (
    match p with
    | Process.Stop -> Proof.Emptiness
    | Process.Output (c, e, k) ->
      let r' = cons_channel c (term_of_expr e) r in
      Proof.Output_rule (derive st ctx ~bound ~budget (Sequent.Holds (k, r')))
    | Process.Input (c, x, _m, k) ->
      let avoid =
        bound @ Assertion.free_vars r @ Process.free_vars p
        @ Chan_expr.free_vars c
      in
      let v = fresh_var st ~avoid in
      let k' = Process.subst_expr x (Expr.Var v) k in
      let r' = cons_channel c (Term.Var v) r in
      Proof.Input_rule
        (v, derive st ctx ~bound:(v :: bound) ~budget (Sequent.Holds (k', r')))
    | Process.Choice (p1, p2) ->
      Proof.Alternative
        ( derive st ctx ~bound ~budget (Sequent.Holds (p1, r)),
          derive st ctx ~bound ~budget (Sequent.Holds (p2, r)) )
    | Process.Hide (l, p1) ->
      if not (Check.chans_avoid l r) then
        fail "goal %a mentions a channel concealed by %a" Assertion.pp r
          Csp_lang.Chan_set.pp l;
      Proof.Chan_rule (derive st ctx ~bound ~budget (Sequent.Holds (p1, r)))
    | Process.Par (xa, ya, p1, p2) -> (
      let direct r1 r2 =
        if Check.chans_within xa r1 && Check.chans_within ya r2 then
          Some
            (Proof.Parallelism
               ( r1,
                 r2,
                 derive st ctx ~bound ~budget (Sequent.Holds (p1, r1)),
                 derive st ctx ~bound ~budget (Sequent.Holds (p2, r2)) ))
        else None
      in
      let attempt =
        match r with
        | Assertion.And (r1, r2) -> direct r1 r2
        | _ -> None
      in
      match attempt with
      | Some proof -> proof
      | None -> (
        match infer_invariant st ctx p1, infer_invariant st ctx p2 with
        | Some r1, Some r2 -> (
          match direct r1 r2 with
          | Some par -> Proof.Consequence (Assertion.And (r1, r2), par)
          | None ->
            fail
              "inferred invariants do not respect the alphabets of %a"
              Process.pp p)
        | _ ->
          fail "cannot infer invariants for the operands of %a" Process.pp p))
    | Process.Ref (n, None) -> (
      match find_sat ctx n with
      | Some r' when Assertion.equal r r' -> Proof.Assumption
      | Some r' -> Proof.Consequence (r', Proof.Assumption)
      | None -> (
        match table_inv st n with
        | Some rn when Assertion.equal r rn ->
          make_fix st ctx ~bound ~budget (`Plain n)
        | Some rn ->
          Proof.Consequence
            (rn, derive st ctx ~bound ~budget (Sequent.Holds (p, rn)))
        | None -> unfold_fallback st ctx ~bound ~budget p r))
    | Process.Ref (q, Some e) -> (
      let te = term_of_expr e in
      match find_sat_array ctx q with
      | Some (x, _, s) ->
        let expected = Assertion.subst_var x te s in
        if Assertion.equal r expected then Proof.Assumption
        else Proof.Consequence (expected, Proof.Assumption)
      | None -> (
        match table_array st q with
        | Some (x, m, s) ->
          let expected = Assertion.subst_var x te s in
          let all = Sequent.Holds_all (q, x, m, s) in
          let elim =
            Proof.Forall_elim (x, m, s, derive st ctx ~bound ~budget all)
          in
          if Assertion.equal r expected then elim
          else Proof.Consequence (expected, elim)
        | None -> unfold_fallback st ctx ~bound ~budget p r)))

and unfold_fallback st ctx ~bound ~budget p r =
  if budget <= 0 then
    fail "no invariant known for %a and unfold budget exhausted" Process.pp p
  else
    match p with
    | Process.Ref (n, arg) -> (
      match Defs.unfold_ref ctx.Sequent.defs Csp_lang.Valuation.empty n arg with
      | body ->
        Proof.Unfold
          (derive st ctx ~bound ~budget:(budget - 1) (Sequent.Holds (body, r)))
      | exception Defs.Undefined m -> fail "%s is undefined" m
      | exception Defs.Bad_argument m -> fail "%s" m
      | exception Expr.Eval_error m -> fail "cannot evaluate subscript: %s" m)
    | _ -> fail "unfold fallback on a non-reference"

and make_fix st ctx ~bound ~budget start =
  let start_name = match start with `Plain n | `Array n -> n in
  let names =
    List.filter
      (fun n -> table_inv st n <> None || table_array st n <> None)
      (reachable_names ctx.Sequent.defs [ start_name ])
  in
  let spec_skeletons =
    List.map
      (fun n ->
        match table_inv st n with
        | Some r -> (n, Sequent.Sat (n, r))
        | None -> (
          match table_array st n with
          | Some (x, m, s) -> (n, Sequent.Sat_array (n, x, m, s))
          | None -> assert false))
      names
  in
  let index =
    match
      List.find_index (fun (n, _) -> String.equal n start_name) spec_skeletons
    with
    | Some i -> i
    | None -> fail "internal: %s lost from its own specification list" start_name
  in
  let ctx' =
    List.fold_left (fun acc (_, h) -> Sequent.add_hyp h acc) ctx spec_skeletons
  in
  let specs =
    List.map
      (fun (n, hyp) ->
        match hyp with
        | Sequent.Sat (_, r) -> (
          match Defs.lookup ctx.Sequent.defs n with
          | Some { Defs.param = None; body; _ } ->
            let body_proof =
              derive st ctx' ~bound ~budget (Sequent.Holds (body, r))
            in
            { Proof.spec_hyp = hyp; fresh = "_"; body_proof }
          | Some { Defs.param = Some _; _ } ->
            fail "%s has an array definition but a plain invariant" n
          | None -> fail "%s is not defined" n)
        | Sequent.Sat_array (_, x, _m, s) -> (
          match Defs.lookup ctx.Sequent.defs n with
          | Some { Defs.param = Some (y, _); body; _ } ->
            (* Reuse the specification's bound variable when safe,
               otherwise invent a fresh one; the checker re-validates. *)
            let w =
              if
                (not (List.mem x bound))
                && (String.equal x y
                   || not (List.mem x (Process.free_vars body)))
              then x
              else
                fresh_var st
                  ~avoid:(bound @ Assertion.free_vars s @ Process.free_vars body)
            in
            let body_w = Process.subst_expr y (Expr.Var w) body in
            let s_w = Assertion.subst_var x (Term.Var w) s in
            let body_proof =
              derive st ctx' ~bound:(w :: bound) ~budget
                (Sequent.Holds (body_w, s_w))
            in
            { Proof.spec_hyp = hyp; fresh = w; body_proof }
          | Some { Defs.param = None; _ } ->
            fail "%s has a plain definition but an array invariant" n
          | None -> fail "%s is not defined" n))
      spec_skeletons
  in
  Proof.Fix (specs, index)

let auto ?(tables = no_tables) ?(unfold_budget = 8) ctx j =
  let st = { counter = 0; tbl = tables; ctx0 = ctx } in
  ignore st.ctx0;
  match derive st ctx ~bound:[] ~budget:unfold_budget j with
  | proof -> Ok proof
  | exception Tactic_error m -> Error m

let attempt ?tables ?unfold_budget ?config ctx j =
  match auto ?tables ?unfold_budget ctx j with
  | Error m -> Error ("tactic: " ^ m)
  | Ok proof -> (
    match Check.check ?config ctx j proof with
    | Ok report -> Ok (proof, report)
    | Error m -> Error ("check: " ^ m))

let prove_and_check ?(tables = no_tables) ?unfold_budget ?config ctx j =
  match attempt ~tables ?unfold_budget ?config ctx j with
  | Ok result -> Ok result
  | Error first -> (
    (* Goal-directed retry: when the goal names a process whose
       registered invariant differs from the goal, the first attempt
       derived the goal by consequence from that invariant — which fails
       when the goal does not follow from it pointwise even though it is
       inductive on its own.  Retry with the goal itself as the
       invariant. *)
    match j with
    | Sequent.Holds (Process.Ref (n, None), r)
      when not
             (match List.assoc_opt n tables.invariants with
             | Some r0 -> Assertion.equal r0 r
             | None -> false) -> (
      let tables' =
        {
          tables with
          invariants = (n, r) :: List.remove_assoc n tables.invariants;
        }
      in
      match attempt ~tables:tables' ?unfold_budget ?config ctx j with
      | Ok result -> Ok result
      | Error _ -> Error first)
    | _ -> Error first)
