(** Proof certificates.

    A checked proof tree can be written out and re-verified later — or
    elsewhere — without re-running the tactic: the LCF-style separation
    of proof {e search} from proof {e checking}.  The format is a small
    S-expression syntax whose leaves reuse the concrete syntax of
    processes, assertions and value sets, so certificates are readable
    and diffable:

    {v
    (cert
     (judgment (sat copier "wire <= input"))
     (proof (fix 0
       (spec (sat copier "wire <= input") _
         (input v1 (output (consequence "wire <= input" assumption)))))))
    v}

    Bound variables introduced by the input and recursion rules are
    tracked positionally, exactly as the checker tracks its universal
    context, so assertions containing them parse back unambiguously.

    [cspc prove --emit FILE] writes certificates; [cspc check-cert]
    re-checks them against the definitions alone. *)

val write : Sequent.judgment -> Proof.t -> string
(** One certificate, as a printable S-expression. *)

val read : string -> (Sequent.judgment * Proof.t, string) result

val write_many : (Sequent.judgment * Proof.t) list -> string
(** Concatenated certificates, one per line group. *)

val read_many : string -> ((Sequent.judgment * Proof.t) list, string) result
