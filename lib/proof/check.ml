open Csp_assertion
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs

type obligation = {
  description : string;
  formula : Assertion.t;
  verdict : Prover.verdict;
}

type step = {
  index : int;
  judgment : string;
  rule : string;
  premises : int list;
}

type report = {
  obligations : obligation list;
  steps : step list;
  rules_applied : int;
}

exception Check_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Check_error s)) fmt

(* Universal context: variables introduced by the input and recursion
   rules, with the sets they range over.  Obligations are closed by
   quantifying over it, innermost binder last. *)
type uctx = (string * Vset.t) list

let close (u : uctx) f =
  List.fold_left (fun acc (x, m) -> Assertion.Forall (x, m, acc)) f u

type state = {
  config : Prover.config;
  mutable obligations : obligation list;
  mutable steps : step list;
  mutable next : int;
}

let oblige st u description formula =
  let formula = close u formula in
  let verdict = Prover.prove ~config:st.config (Prover.goal formula) in
  st.obligations <- { description; formula; verdict } :: st.obligations;
  match verdict with
  | Prover.Refuted _ ->
    fail "obligation refuted (%s): %a" description Assertion.pp formula
  | Prover.Proved _ | Prover.Unknown _ -> ()

let record st judgment rule premises =
  let index = st.next in
  st.next <- index + 1;
  st.steps <-
    { index; judgment = Sequent.judgment_to_string judgment; rule; premises }
    :: st.steps;
  index

let term_of_expr e =
  match Term.of_expr e with
  | Some t -> t
  | None -> fail "expression %a has no assertion-language counterpart" Expr.pp e

let cons_channel c x r =
  match Assertion.cons_channel c x r with
  | Ok r' -> r'
  | Error m -> fail "substitution R^c: %s" m

(* Channel-scope side conditions: every channel mentioned by the
   assertion must belong to the given channel set (rule 8), or must
   avoid it entirely (rule 9).  Closed channel expressions are decided
   exactly; open ones by base name, conservatively for the respective
   rule. *)
let chans_within set r =
  List.for_all
    (fun ce ->
      match Chan_expr.eval_opt ce with
      | Some c -> Chan_set.mem set c
      | None -> List.mem ce.Chan_expr.name (Chan_set.base_names set))
    (Assertion.free_chans r)

let chans_avoid set r =
  List.for_all
    (fun ce ->
      match Chan_expr.eval_opt ce with
      | Some c -> not (Chan_set.mem set c)
      | None -> not (List.mem ce.Chan_expr.name (Chan_set.base_names set)))
    (Assertion.free_chans r)

let free_in_uctx v (u : uctx) = List.mem_assoc v u

let check_fresh v ~invariant ~process ~chan (u : uctx) =
  if List.mem v (Assertion.free_vars invariant) then
    fail "variable %s is not fresh: free in the invariant" v;
  if List.mem v (Process.free_vars process) then
    fail "variable %s is not fresh: free in the process" v;
  if List.mem v (Chan_expr.free_vars chan) then
    fail "variable %s is not fresh: free in the channel subscript" v;
  if free_in_uctx v u then
    fail "variable %s is not fresh: already universally bound" v

let rec go st (ctx : Sequent.context) (u : uctx) (j : Sequent.judgment)
    (proof : Proof.t) : int =
  match proof, j with
  | Proof.Assumption, _ -> check_assumption st ctx u j
  | Proof.Triviality, Sequent.Holds (_, r) ->
    oblige st u "triviality: R holds of every history" r;
    record st j "triviality" []
  | Proof.Emptiness, Sequent.Holds (p, r) ->
    (match p with
    | Process.Stop -> ()
    | _ -> fail "emptiness rule applies only to STOP, got %a" Process.pp p);
    oblige st u "emptiness: R_<>" (Assertion.subst_empty r);
    record st j "emptiness" []
  | Proof.Consequence (r', sub), Sequent.Holds (p, r) ->
    let n = go st ctx u (Sequent.Holds (p, r')) sub in
    oblige st u "consequence: R' => R" (Assertion.Imp (r', r));
    record st j "consequence" [ n ]
  | Proof.Conjunction (sub1, sub2), Sequent.Holds (p, r) -> (
    match r with
    | Assertion.And (r1, r2) ->
      let n1 = go st ctx u (Sequent.Holds (p, r1)) sub1 in
      let n2 = go st ctx u (Sequent.Holds (p, r2)) sub2 in
      record st j "conjunction" [ n1; n2 ]
    | _ -> fail "conjunction rule needs a conjunction, got %a" Assertion.pp r)
  | Proof.Output_rule sub, Sequent.Holds (p, r) -> (
    match p with
    | Process.Output (c, e, k) ->
      oblige st u "output: R_<>" (Assertion.subst_empty r);
      let r' = cons_channel c (term_of_expr e) r in
      let n = go st ctx u (Sequent.Holds (k, r')) sub in
      record st j "output" [ n ]
    | _ -> fail "output rule applies only to c!e -> P, got %a" Process.pp p)
  | Proof.Input_rule (v, sub), Sequent.Holds (p, r) -> (
    match p with
    | Process.Input (c, x, m, k) ->
      check_fresh v ~invariant:r ~process:p ~chan:c u;
      oblige st u "input: R_<>" (Assertion.subst_empty r);
      let k' = Process.subst_expr x (Expr.Var v) k in
      let r' = cons_channel c (Term.Var v) r in
      let n = go st ctx ((v, m) :: u) (Sequent.Holds (k', r')) sub in
      record st j "input" [ n ]
    | _ -> fail "input rule applies only to c?x:M -> P, got %a" Process.pp p)
  | Proof.Alternative (sub1, sub2), Sequent.Holds (p, r) -> (
    match p with
    | Process.Choice (p1, p2) ->
      let n1 = go st ctx u (Sequent.Holds (p1, r)) sub1 in
      let n2 = go st ctx u (Sequent.Holds (p2, r)) sub2 in
      record st j "alternative" [ n1; n2 ]
    | _ -> fail "alternative rule applies only to P|Q, got %a" Process.pp p)
  | Proof.Parallelism (r1, r2, sub1, sub2), Sequent.Holds (p, r) -> (
    match p with
    | Process.Par (xa, ya, p1, p2) ->
      if not (Assertion.equal r (Assertion.And (r1, r2))) then
        fail "parallelism: goal %a is not the conjunction of %a and %a"
          Assertion.pp r Assertion.pp r1 Assertion.pp r2;
      if not (chans_within xa r1) then
        fail "parallelism: %a mentions channels outside the left alphabet %a"
          Assertion.pp r1 Chan_set.pp xa;
      if not (chans_within ya r2) then
        fail "parallelism: %a mentions channels outside the right alphabet %a"
          Assertion.pp r2 Chan_set.pp ya;
      let n1 = go st ctx u (Sequent.Holds (p1, r1)) sub1 in
      let n2 = go st ctx u (Sequent.Holds (p2, r2)) sub2 in
      record st j "parallelism" [ n1; n2 ]
    | _ -> fail "parallelism rule applies only to P||Q, got %a" Process.pp p)
  | Proof.Chan_rule sub, Sequent.Holds (p, r) -> (
    match p with
    | Process.Hide (l, p1) ->
      if not (chans_avoid l r) then
        fail "chan rule: %a mentions a concealed channel of %a" Assertion.pp r
          Chan_set.pp l;
      let n = go st ctx u (Sequent.Holds (p1, r)) sub in
      record st j "chan" [ n ]
    | _ -> fail "chan rule applies only to (chan L; P), got %a" Process.pp p)
  | Proof.Unfold sub, Sequent.Holds (p, r) -> (
    match p with
    | Process.Ref (name, arg) ->
      let body =
        match Defs.unfold_ref ctx.Sequent.defs Csp_lang.Valuation.empty name arg with
        | body -> body
        | exception Defs.Undefined n -> fail "unfold: %s is undefined" n
        | exception Defs.Bad_argument m -> fail "unfold: %s" m
        | exception Expr.Eval_error m ->
          fail "unfold: cannot evaluate the subscript of %s (%s)" name m
      in
      let n = go st ctx u (Sequent.Holds (body, r)) sub in
      record st j "unfold" [ n ]
    | _ -> fail "unfold applies only to a process name, got %a" Process.pp p)
  | Proof.Forall_elim (x, m, s, sub), Sequent.Holds (p, r) -> (
    match p with
    | Process.Ref (q, Some e) ->
      let te = term_of_expr e in
      let expected = Assertion.subst_var x te s in
      if not (Assertion.equal r expected) then
        fail "forall-elim: expected invariant %a, got %a" Assertion.pp
          expected Assertion.pp r;
      oblige st u "forall-elim: subscript membership" (Assertion.Mem (te, m));
      let n = go st ctx u (Sequent.Holds_all (q, x, m, s)) sub in
      record st j "forall-elim" [ n ]
    | _ ->
      fail "forall-elim applies only to a subscripted name, got %a" Process.pp
        p)
  | Proof.Fix (specs, i), _ -> check_fix st ctx u j specs i
  | ( ( Proof.Triviality | Proof.Emptiness | Proof.Consequence _
      | Proof.Conjunction _ | Proof.Output_rule _ | Proof.Input_rule _
      | Proof.Alternative _ | Proof.Parallelism _ | Proof.Chan_rule _
      | Proof.Unfold _ | Proof.Forall_elim _ ),
      Sequent.Holds_all _ ) ->
    fail "rule %s cannot conclude a process-array judgment"
      (Proof.rule_name proof)

and check_assumption st ctx u j =
  let ok () = record st j "assumption" [] in
  match j with
  | Sequent.Holds (Process.Ref (p, None), r) ->
    if
      List.exists
        (function
          | Sequent.Sat (p', r') -> String.equal p p' && Assertion.equal r r'
          | Sequent.Sat_array _ -> false)
        ctx.Sequent.hyps
    then ok ()
    else fail "no hypothesis %s sat %a" p Assertion.pp r
  | Sequent.Holds (Process.Ref (q, Some e), r) ->
    let te = term_of_expr e in
    let matching =
      List.find_opt
        (function
          | Sequent.Sat_array (q', x, _, s) ->
            String.equal q q' && Assertion.equal r (Assertion.subst_var x te s)
          | Sequent.Sat _ -> false)
        ctx.Sequent.hyps
    in
    (match matching with
    | Some (Sequent.Sat_array (_, _, m, _)) ->
      oblige st u "assumption: subscript membership" (Assertion.Mem (te, m));
      ok ()
    | _ -> fail "no array hypothesis matches %s[%a] sat %a" q Expr.pp e
             Assertion.pp r)
  | Sequent.Holds_all (q, x, m, s) ->
    if
      List.exists
        (Sequent.hyp_equal (Sequent.Sat_array (q, x, m, s)))
        ctx.Sequent.hyps
    then ok ()
    else fail "no hypothesis forall %s. %s[%s] sat %a" x q x Assertion.pp s
  | Sequent.Holds (p, _) ->
    fail "assumption applies only to process names, got %a" Process.pp p

and check_fix st ctx u j specs i =
  (match List.nth_opt specs i with
  | None -> fail "recursion: conclusion index %d out of range" i
  | Some spec -> (
    match spec.Proof.spec_hyp, j with
    | Sequent.Sat (p, r), Sequent.Holds (Process.Ref (p', None), r') ->
      if not (String.equal p p' && Assertion.equal r r') then
        fail "recursion: conclusion does not match specification %d" i
    | Sequent.Sat_array (q, x, m, s), Sequent.Holds_all (q', x', m', s') ->
      if
        not
          (String.equal q q' && String.equal x x' && Vset.equal m m'
         && Assertion.equal s s')
      then fail "recursion: conclusion does not match specification %d" i
    | _ -> fail "recursion: conclusion does not match specification %d" i));
  let ctx' =
    List.fold_left
      (fun acc spec -> Sequent.add_hyp spec.Proof.spec_hyp acc)
      ctx specs
  in
  let premises =
    List.map
      (fun spec ->
        match spec.Proof.spec_hyp with
        | Sequent.Sat (p, r) -> (
          match Defs.lookup ctx.Sequent.defs p with
          | None -> fail "recursion: %s is not defined" p
          | Some d -> (
            match d.Defs.param with
            | Some _ -> fail "recursion: %s is a process array" p
            | None ->
              oblige st u
                (Printf.sprintf "recursion (%s): R_<>" p)
                (Assertion.subst_empty r);
              go st ctx' u (Sequent.Holds (d.Defs.body, r)) spec.Proof.body_proof))
        | Sequent.Sat_array (q, x, m, s) -> (
          match Defs.lookup ctx.Sequent.defs q with
          | None -> fail "recursion: %s is not defined" q
          | Some d -> (
            match d.Defs.param with
            | None -> fail "recursion: %s is not a process array" q
            | Some (y, m') ->
              if not (Vset.equal m m') then
                fail "recursion: %s ranges over %a, specification over %a" q
                  Vset.pp m' Vset.pp m;
              let w = spec.Proof.fresh in
              let s_w = Assertion.subst_var x (Term.Var w) s in
              (* Freshness of w, allowing w to coincide with the bound
                 variable it replaces on either side. *)
              if free_in_uctx w u then
                fail "recursion: %s is already universally bound" w;
              if
                (not (String.equal w x))
                && List.mem w (Assertion.free_vars s)
              then fail "recursion: %s is free in the invariant of %s" w q;
              if
                (not (String.equal w y))
                && List.mem w (Process.free_vars d.Defs.body)
              then fail "recursion: %s is free in the body of %s" w q;
              oblige st ((w, m) :: u)
                (Printf.sprintf "recursion (%s): S_<>" q)
                (Assertion.subst_empty s_w);
              let body_w = Process.subst_expr y (Expr.Var w) d.Defs.body in
              go st ctx' ((w, m) :: u)
                (Sequent.Holds (body_w, s_w))
                spec.Proof.body_proof)))
      specs
  in
  record st j "recursion" premises

(* Rule applications the checker actually verified, summed over every
   accepted proof — [check.rules_applied] in [Obs.snapshot]. *)
let rules_applied_counter = Csp_obs.Obs.Counter.make "check.rules_applied"

let check ?(config = Prover.default_config) ctx j proof =
  Csp_obs.Obs.span ~cat:"proof" "check" @@ fun () ->
  let st = { config; obligations = []; steps = []; next = 1 } in
  match go st ctx [] j proof with
  | _ ->
    Csp_obs.Obs.Counter.add rules_applied_counter (st.next - 1);
    Ok
      {
        obligations = List.rev st.obligations;
        steps = List.rev st.steps;
        rules_applied = st.next - 1;
      }
  | exception Check_error m -> Error m

let fully_proved (r : report) =
  List.for_all
    (fun o -> match o.verdict with Prover.Proved _ -> true | _ -> false)
    r.obligations

let tested_obligations (r : report) =
  List.length
    (List.filter
       (fun o -> match o.verdict with Prover.Unknown _ -> true | _ -> false)
       r.obligations)

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "(%d) %s   [%s%s]@,"
        s.index s.judgment s.rule
        (match s.premises with
        | [] -> ""
        | ps ->
          " " ^ String.concat "," (List.map (fun n -> string_of_int n) ps)))
    r.steps;
  Format.fprintf ppf "obligations:@,";
  List.iter
    (fun o ->
      Format.fprintf ppf "  - %s: %a — %a@," o.description Assertion.pp
        o.formula Prover.pp_verdict o.verdict)
    r.obligations;
  Format.fprintf ppf "@]"
