open Csp_assertion

type t =
  | Assumption
  | Triviality
  | Emptiness
  | Consequence of Assertion.t * t
  | Conjunction of t * t
  | Output_rule of t
  | Input_rule of string * t
  | Alternative of t * t
  | Parallelism of Assertion.t * Assertion.t * t * t
  | Chan_rule of t
  | Fix of spec list * int
  | Unfold of t
  | Forall_elim of string * Csp_lang.Vset.t * Assertion.t * t

and spec = { spec_hyp : Sequent.hyp; fresh : string; body_proof : t }

let rec size = function
  | Assumption | Triviality | Emptiness -> 1
  | Consequence (_, p)
  | Output_rule p
  | Input_rule (_, p)
  | Chan_rule p
  | Unfold p
  | Forall_elim (_, _, _, p) ->
    1 + size p
  | Conjunction (p, q) | Alternative (p, q) | Parallelism (_, _, p, q) ->
    1 + size p + size q
  | Fix (specs, _) ->
    1 + List.fold_left (fun acc s -> acc + size s.body_proof) 0 specs

let rule_name = function
  | Assumption -> "assumption"
  | Triviality -> "triviality"
  | Emptiness -> "emptiness"
  | Consequence _ -> "consequence"
  | Conjunction _ -> "conjunction"
  | Output_rule _ -> "output"
  | Input_rule _ -> "input"
  | Alternative _ -> "alternative"
  | Parallelism _ -> "parallelism"
  | Chan_rule _ -> "chan"
  | Fix _ -> "recursion"
  | Unfold _ -> "unfold"
  | Forall_elim _ -> "forall-elim"

let rec pp ppf p =
  match p with
  | Assumption | Triviality | Emptiness ->
    Format.pp_print_string ppf (rule_name p)
  | Consequence (r, sub) ->
    Format.fprintf ppf "@[<v 2>consequence via %a@,%a@]" Assertion.pp r pp sub
  | Conjunction (a, b) ->
    Format.fprintf ppf "@[<v 2>conjunction@,%a@,%a@]" pp a pp b
  | Output_rule sub -> Format.fprintf ppf "@[<v 2>output@,%a@]" pp sub
  | Input_rule (v, sub) ->
    Format.fprintf ppf "@[<v 2>input (fresh %s)@,%a@]" v pp sub
  | Alternative (a, b) ->
    Format.fprintf ppf "@[<v 2>alternative@,%a@,%a@]" pp a pp b
  | Parallelism (r, s, a, b) ->
    Format.fprintf ppf "@[<v 2>parallelism %a / %a@,%a@,%a@]" Assertion.pp r
      Assertion.pp s pp a pp b
  | Chan_rule sub -> Format.fprintf ppf "@[<v 2>chan@,%a@]" pp sub
  | Fix (specs, i) ->
    Format.fprintf ppf "@[<v 2>recursion (conclude #%d)@,%a@]" i
      (Format.pp_print_list
         ~pp_sep:Format.pp_print_cut
         (fun ppf s ->
           Format.fprintf ppf "@[<v 2>%a:@,%a@]" Sequent.pp_hyp s.spec_hyp pp
             s.body_proof))
      specs
  | Unfold sub -> Format.fprintf ppf "@[<v 2>unfold@,%a@]" pp sub
  | Forall_elim (x, m, s, sub) ->
    Format.fprintf ppf "@[<v 2>forall-elim %s:%a from %a@,%a@]" x
      Csp_lang.Vset.pp m Assertion.pp s pp sub
