open Csp_assertion
module Vset = Csp_lang.Vset
module Process = Csp_lang.Process
module Defs = Csp_lang.Defs

type hyp =
  | Sat of string * Assertion.t
  | Sat_array of string * string * Vset.t * Assertion.t

type judgment =
  | Holds of Process.t * Assertion.t
  | Holds_all of string * string * Vset.t * Assertion.t

type context = { defs : Defs.t; hyps : hyp list }

let context ?(hyps = []) defs = { defs; hyps }
let add_hyp h ctx = { ctx with hyps = h :: ctx.hyps }

let hyp_equal a b =
  match a, b with
  | Sat (p1, r1), Sat (p2, r2) -> String.equal p1 p2 && Assertion.equal r1 r2
  | Sat_array (q1, x1, m1, s1), Sat_array (q2, x2, m2, s2) ->
    String.equal q1 q2 && String.equal x1 x2 && Vset.equal m1 m2
    && Assertion.equal s1 s2
  | (Sat _ | Sat_array _), _ -> false

let pp_hyp ppf = function
  | Sat (p, r) -> Format.fprintf ppf "%s sat %a" p Assertion.pp r
  | Sat_array (q, x, m, s) ->
    Format.fprintf ppf "forall %s:%a. %s[%s] sat %a" x Vset.pp m q x
      Assertion.pp s

let pp_judgment ppf = function
  | Holds (p, r) ->
    Format.fprintf ppf "%a sat %a" Process.pp p Assertion.pp r
  | Holds_all (q, x, m, s) ->
    Format.fprintf ppf "forall %s:%a. %s[%s] sat %a" x Vset.pp m q x
      Assertion.pp s

let judgment_to_string j = Format.asprintf "%a" pp_judgment j
