(** The proof checker.

    [check ctx j proof] validates that [proof] is a correct derivation
    of the judgment [j] from the context [ctx]: every rule application
    is structurally well-formed (right process shape, correct
    substitutions, freshness and channel-scoping side conditions), and
    every semantic obligation it generates is discharged through
    {!Csp_assertion.Prover}.  Obligations arising under universally
    bound variables (input rule, array recursion) are closed by
    wrapping them in the corresponding bounded quantifiers.

    The result reports every obligation with the evidence level the
    prover achieved, and a linearised step trace in the style of the
    paper's Table 1.  Checking fails — [Error] — on any structural
    defect or refuted obligation. *)

open Csp_assertion

type obligation = {
  description : string;
  formula : Assertion.t;  (** already closed under the universal context *)
  verdict : Prover.verdict;
}

type step = {
  index : int;
  judgment : string;
  rule : string;
  premises : int list;
}

type report = {
  obligations : obligation list;
  steps : step list;
  rules_applied : int;
}

val chans_within : Csp_lang.Chan_set.t -> Assertion.t -> bool
(** Rule 8 side condition: every channel mentioned by the assertion lies
    in the given alphabet (open subscripts decided by base name). *)

val chans_avoid : Csp_lang.Chan_set.t -> Assertion.t -> bool
(** Rule 9 side condition: no channel mentioned by the assertion lies in
    the given set. *)

val check :
  ?config:Prover.config ->
  Sequent.context ->
  Sequent.judgment ->
  Proof.t ->
  (report, string) result

val fully_proved : report -> bool
(** Every obligation came back [Proved] (no testing-based evidence). *)

val tested_obligations : report -> int
(** Number of obligations discharged only by bounded testing. *)

val pp_report : Format.formatter -> report -> unit
(** Table-1 style rendering: numbered steps with rule names and premise
    references, followed by the obligation summary. *)
