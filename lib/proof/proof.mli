(** Proof trees for the inference system of §2.1.

    Each constructor is one of the paper's rules (plus three glue rules:
    [Assumption] for using a hypothesis of Γ, [Unfold] for definitional
    expansion of a name, and [Forall_elim] for specialising a
    process-array judgment).  A proof tree carries only the information
    that cannot be recomputed: intermediate invariants (consequence,
    parallelism), fresh variable names (input, recursion), and the
    mutually recursive specification list of the [Fix] rule, which
    implements the paper's recursion rule in its general form (single
    equations, process arrays, and lists of equations alike).

    Trees are {e checked}, not trusted: {!Check.check} validates every
    rule application and discharges its semantic obligations. *)

open Csp_assertion

type t =
  | Assumption
      (** the goal matches a hypothesis of Γ (for arrays, modulo
          instantiation of the bound variable, with a membership
          obligation) *)
  | Triviality
      (** rule 1: [R] holds of every history whatsoever *)
  | Emptiness
      (** rule 4: [STOP sat R] from [R_<>] *)
  | Consequence of Assertion.t * t
      (** rule 2: from [P sat R'] and [R' ⇒ S]; the stored assertion is
          [R'] *)
  | Conjunction of t * t
      (** rule 3: [P sat R & S] from [P sat R] and [P sat S] *)
  | Output_rule of t
      (** rule 5: [(c!e → P) sat R] from [R_<>] and [P sat R^c_{e^c}] *)
  | Input_rule of string * t
      (** rule 6: [(c?x:M → P) sat R] from [R_<>] and
          [∀v∈M. P^x_v sat R^c_{v^c}]; the string is the fresh [v] *)
  | Alternative of t * t
      (** rule 7: [(P|Q) sat R] from both branches *)
  | Parallelism of Assertion.t * Assertion.t * t * t
      (** rule 8: [(P‖Q) sat R & S] with channels of [R] within [P]'s
          alphabet and channels of [S] within [Q]'s *)
  | Chan_rule of t
      (** rule 9: [(chan L; P) sat R] when [R] mentions no channel of
          [L] *)
  | Fix of spec list * int
      (** rule 10 (recursion), in the general mutually-recursive form:
          assume every specification, prove every body, conclude the
          [i]-th specification *)
  | Unfold of t
      (** definitional expansion: [p sat R] from [body(p) sat R] *)
  | Forall_elim of string * Csp_lang.Vset.t * Assertion.t * t
      (** from [∀x∈M. q[x] sat S] conclude [q[e] sat S^x_e], with the
          obligation [e ∈ M] *)

and spec = {
  spec_hyp : Sequent.hyp;
      (** what is being assumed and concluded for this equation *)
  fresh : string;
      (** fresh variable standing for the array parameter (ignored for
          plain equations) *)
  body_proof : t;
}

val size : t -> int
(** Number of rule applications in the tree. *)

val rule_name : t -> string
val pp : Format.formatter -> t -> unit
(** Structural rendering of the tree (rule names and nesting). *)
