(** Invariant discovery.

    The only creative step in the paper's proofs is choosing the loop
    invariant of the recursion rule; everything else is
    structure-directed (and {!Tactic} automates it).  This module
    guesses that creative step:

    + {b observe}: simulate the process under several schedulers and
      record the channel histories after every communication;
    + {b conjecture}: instantiate a fixed family of assertion templates
      — [c ≤ d] and [g(c) ≤ d] for every channel pair and registered
      sequence function, and [#c ≤ #d + k] for small [k] — and keep
      those that hold of every observed history;
    + {b verify}: attempt a full proof of each surviving conjecture with
      {!Tactic.prove_and_check}, using the conjecture itself as the
      loop invariant.

    The result separates {e proved} invariants from conjectures that
    merely survived observation; the former are theorems about all
    traces, the latter are fodder for a human (or for a better
    template). *)

open Csp_assertion

type conjecture = {
  assertion : Assertion.t;
  proved : bool;
      (** true: verified by the proof checker; false: consistent with
          every observation but not proved *)
  report : Check.report option;  (** present when [proved] *)
}

type config = {
  runs : int;            (** simulations to observe (default 5) *)
  steps : int;           (** steps per simulation (default 200) *)
  max_len_diff : int;    (** largest [k] tried in [#c ≤ #d + k] (default 2) *)
  seed : int;            (** base seed of the observation walks
                             (default 1): run [i] walks with seed
                             [seed + i], so observations are
                             reproducible and re-seedable *)
  funs : Afun.env;       (** sequence functions tried in [g(c) ≤ d] *)
}

val default_config : config

val engine_config : Csp_semantics.Engine.t -> config
(** {!default_config} with the seed taken from the engine. *)

val observe :
  ?config:config ->
  Csp_semantics.Step.config ->
  Csp_lang.Process.t ->
  Csp_trace.History.t list
(** The sampled histories (every prefix of every run, deduplicated
    channels aside — one history per communication step). *)

val conjecture :
  ?config:config ->
  Csp_semantics.Step.config ->
  Csp_lang.Process.t ->
  Assertion.t list
(** Template instances consistent with every observed history,
    strongest-first within each template family; trivial instances
    ([c ≤ c]) are omitted. *)

val infer :
  ?config:config ->
  ?tables:Tactic.tables ->
  Csp_semantics.Step.config ->
  name:string ->
  Csp_lang.Process.t ->
  conjecture list
(** Conjecture and verify for the named process (the name is needed to
    register the candidate as its own loop invariant).  Conjectures
    subsumed by an already-proved one are still reported, proved or
    not. *)

val infer_engine :
  ?config:config ->
  ?tables:Tactic.tables ->
  Csp_semantics.Engine.t ->
  name:string ->
  Csp_lang.Process.t ->
  conjecture list
(** {!infer} driven by a unified engine: observation walks are seeded
    from the engine's seed (unless [config] overrides it) and the
    enumeration shares the engine's caches. *)
