module Printer = Csp_syntax.Printer
module Parser = Csp_syntax.Parser

(* ---- a minimal S-expression layer ------------------------------------ *)

type sexp = Atom of string | List of sexp list

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec render = function
  | Atom s -> if needs_quoting s then quote s else s
  | List xs -> "(" ^ String.concat " " (List.map render xs) ^ ")"

exception Bad of string

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' then begin
      toks := `L :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := `R :: !toks;
      incr i
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = input.[!i] in
        if c = '\\' && !i + 1 < n then begin
          Buffer.add_char buf input.[!i + 1];
          i := !i + 2
        end
        else if c = '"' then begin
          closed := true;
          incr i
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then raise (Bad "unterminated string");
      toks := `A (Buffer.contents buf) :: !toks
    end
    else begin
      let j = ref !i in
      while
        !j < n
        &&
        let c = input.[!j] in
        not (c = ' ' || c = '\n' || c = '\t' || c = '\r' || c = '(' || c = ')')
      do
        incr j
      done;
      toks := `A (String.sub input !i (!j - !i)) :: !toks;
      i := !j
    end
  done;
  List.rev !toks

let parse_sexps input =
  let rec one = function
    | `A s :: rest -> (Atom s, rest)
    | `L :: rest ->
      let xs, rest = many rest in
      (List xs, rest)
    | `R :: _ -> raise (Bad "unexpected ')'")
    | [] -> raise (Bad "unexpected end of input")
  and many = function
    | `R :: rest -> ([], rest)
    | [] -> raise (Bad "missing ')'")
    | toks ->
      let x, rest = one toks in
      let xs, rest = many rest in
      (x :: xs, rest)
  in
  let rec all = function
    | [] -> []
    | toks ->
      let x, rest = one toks in
      x :: all rest
  in
  all (tokenize input)

(* ---- encoding ---------------------------------------------------------- *)

let a_atom ~bound a = Atom (Printer.assertion ~bound a)
let vset_atom m = Atom (Printer.vset m)

let hyp_sexp ~bound = function
  | Sequent.Sat (p, r) -> List [ Atom "sat"; Atom p; a_atom ~bound r ]
  | Sequent.Sat_array (q, x, m, s) ->
    List
      [ Atom "sat-array"; Atom q; Atom x; vset_atom m;
        a_atom ~bound:(x :: bound) s ]

let rec proof_sexp ~bound = function
  | Proof.Assumption -> Atom "assumption"
  | Proof.Triviality -> Atom "triviality"
  | Proof.Emptiness -> Atom "emptiness"
  | Proof.Consequence (r, p) ->
    List [ Atom "consequence"; a_atom ~bound r; proof_sexp ~bound p ]
  | Proof.Conjunction (p, q) ->
    List [ Atom "conjunction"; proof_sexp ~bound p; proof_sexp ~bound q ]
  | Proof.Output_rule p -> List [ Atom "output"; proof_sexp ~bound p ]
  | Proof.Input_rule (v, p) ->
    List [ Atom "input"; Atom v; proof_sexp ~bound:(v :: bound) p ]
  | Proof.Alternative (p, q) ->
    List [ Atom "alternative"; proof_sexp ~bound p; proof_sexp ~bound q ]
  | Proof.Parallelism (r1, r2, p, q) ->
    List
      [ Atom "parallelism"; a_atom ~bound r1; a_atom ~bound r2;
        proof_sexp ~bound p; proof_sexp ~bound q ]
  | Proof.Chan_rule p -> List [ Atom "chan"; proof_sexp ~bound p ]
  | Proof.Unfold p -> List [ Atom "unfold"; proof_sexp ~bound p ]
  | Proof.Forall_elim (x, m, s, p) ->
    List
      [ Atom "forall-elim"; Atom x; vset_atom m; a_atom ~bound:(x :: bound) s;
        proof_sexp ~bound p ]
  | Proof.Fix (specs, i) ->
    List
      (Atom "fix" :: Atom (string_of_int i)
      :: List.map
           (fun spec ->
             let body_bound =
               match spec.Proof.spec_hyp with
               | Sequent.Sat _ -> bound
               | Sequent.Sat_array _ -> spec.Proof.fresh :: bound
             in
             List
               [ Atom "spec"; hyp_sexp ~bound spec.Proof.spec_hyp;
                 Atom spec.Proof.fresh;
                 proof_sexp ~bound:body_bound spec.Proof.body_proof ])
           specs)

let judgment_sexp = function
  | Sequent.Holds (p, r) ->
    List [ Atom "sat"; Atom (Printer.process p); a_atom ~bound:[] r ]
  | Sequent.Holds_all (q, x, m, s) ->
    List
      [ Atom "sat-all"; Atom q; Atom x; vset_atom m; a_atom ~bound:[ x ] s ]

let write j p =
  render
    (List
       [ Atom "cert";
         List [ Atom "judgment"; judgment_sexp j ];
         List [ Atom "proof"; proof_sexp ~bound:[] p ] ])

let write_many items =
  String.concat "\n" (List.map (fun (j, p) -> write j p) items)

(* ---- decoding ---------------------------------------------------------- *)

let fail fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt

let get_assertion ~bound = function
  | Atom s -> (
    match Parser.parse_assertion ~bound s with
    | Ok a -> a
    | Error m -> fail "bad assertion %S: %s" s m)
  | List _ -> fail "expected an assertion atom"

let get_vset = function
  | Atom s -> (
    match Parser.parse_value_set s with
    | Ok m -> m
    | Error e -> fail "bad value set %S: %s" s e)
  | List _ -> fail "expected a value-set atom"

let get_atom = function Atom s -> s | List _ -> fail "expected an atom"

let get_hyp ~bound = function
  | List [ Atom "sat"; Atom p; r ] -> Sequent.Sat (p, get_assertion ~bound r)
  | List [ Atom "sat-array"; Atom q; Atom x; m; s ] ->
    Sequent.Sat_array (q, x, get_vset m, get_assertion ~bound:(x :: bound) s)
  | _ -> fail "bad hypothesis"

let rec get_proof ~bound = function
  | Atom "assumption" -> Proof.Assumption
  | Atom "triviality" -> Proof.Triviality
  | Atom "emptiness" -> Proof.Emptiness
  | List [ Atom "consequence"; r; p ] ->
    Proof.Consequence (get_assertion ~bound r, get_proof ~bound p)
  | List [ Atom "conjunction"; p; q ] ->
    Proof.Conjunction (get_proof ~bound p, get_proof ~bound q)
  | List [ Atom "output"; p ] -> Proof.Output_rule (get_proof ~bound p)
  | List [ Atom "input"; Atom v; p ] ->
    Proof.Input_rule (v, get_proof ~bound:(v :: bound) p)
  | List [ Atom "alternative"; p; q ] ->
    Proof.Alternative (get_proof ~bound p, get_proof ~bound q)
  | List [ Atom "parallelism"; r1; r2; p; q ] ->
    Proof.Parallelism
      ( get_assertion ~bound r1,
        get_assertion ~bound r2,
        get_proof ~bound p,
        get_proof ~bound q )
  | List [ Atom "chan"; p ] -> Proof.Chan_rule (get_proof ~bound p)
  | List [ Atom "unfold"; p ] -> Proof.Unfold (get_proof ~bound p)
  | List [ Atom "forall-elim"; Atom x; m; s; p ] ->
    Proof.Forall_elim
      (x, get_vset m, get_assertion ~bound:(x :: bound) s, get_proof ~bound p)
  | List (Atom "fix" :: Atom i :: specs) ->
    let specs =
      List.map
        (function
          | List [ Atom "spec"; hyp; fresh; body ] ->
            let spec_hyp = get_hyp ~bound hyp in
            let fresh = get_atom fresh in
            let body_bound =
              match spec_hyp with
              | Sequent.Sat _ -> bound
              | Sequent.Sat_array _ -> fresh :: bound
            in
            {
              Proof.spec_hyp;
              fresh;
              body_proof = get_proof ~bound:body_bound body;
            }
          | _ -> fail "bad specification")
        specs
    in
    Proof.Fix (specs, int_of_string i)
  | s -> fail "bad proof node %s" (render s)

let get_judgment = function
  | List [ Atom "sat"; Atom p; r ] -> (
    match Parser.parse_process p with
    | Ok proc -> Sequent.Holds (proc, get_assertion ~bound:[] r)
    | Error m -> fail "bad process %S: %s" p m)
  | List [ Atom "sat-all"; Atom q; Atom x; m; s ] ->
    Sequent.Holds_all (q, x, get_vset m, get_assertion ~bound:[ x ] s)
  | _ -> fail "bad judgment"

let get_cert = function
  | List [ Atom "cert"; List [ Atom "judgment"; j ]; List [ Atom "proof"; p ] ]
    ->
    (get_judgment j, get_proof ~bound:[] p)
  | _ -> fail "not a certificate"

let read_many input =
  match List.map get_cert (parse_sexps input) with
  | certs -> Ok certs
  | exception Bad m -> Error m

let read input =
  match read_many input with
  | Ok [ c ] -> Ok c
  | Ok _ -> Error "expected exactly one certificate"
  | Error m -> Error m
