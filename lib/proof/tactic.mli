(** Automatic proof construction.

    The paper suggests reading its proofs "backwards": the shape of the
    process dictates the rule, and the only creative step is choosing
    loop invariants.  [auto] implements exactly that backward chaining,
    taking the invariants from tables keyed by process name:

    - structural processes select their own rule (STOP → emptiness,
      prefix → output/input with a generated fresh variable, alternative,
      hiding);
    - parallel compositions split the goal through the registered
      invariants of the operands and a consequence step;
    - a process name proves its registered invariant by the recursion
      rule — the specification list covers every table entry reachable
      from its definition, so mutual recursion works — and any other
      goal by a consequence step from the registered invariant;
    - remaining names fall back to definitional unfolding, bounded by
      [unfold_budget].

    The resulting tree is meant to be passed to {!Check.check}; [auto]
    itself performs no semantic checking. *)

open Csp_assertion

type tables = {
  invariants : (string * Assertion.t) list;
      (** registered invariant of each plain process name *)
  array_invariants : (string * (string * Csp_lang.Vset.t * Assertion.t)) list;
      (** [q ↦ (x, M, S)]: registered ∀x∈M. q[x] sat S *)
}

val no_tables : tables

val tables :
  ?invariants:(string * Assertion.t) list ->
  ?array_invariants:(string * (string * Csp_lang.Vset.t * Assertion.t)) list ->
  unit ->
  tables

val auto :
  ?tables:tables ->
  ?unfold_budget:int ->
  Sequent.context ->
  Sequent.judgment ->
  (Proof.t, string) result

val prove_and_check :
  ?tables:tables ->
  ?unfold_budget:int ->
  ?config:Prover.config ->
  Sequent.context ->
  Sequent.judgment ->
  (Proof.t * Check.report, string) result
(** [auto] followed by {!Check.check}. *)
