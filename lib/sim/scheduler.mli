(** Schedulers: resolution of non-determinism during execution.

    At every step the runner computes the set of enabled communications
    (visible and hidden) and asks the scheduler to pick one.  The choice
    models both the non-determinate alternative [P | Q] and the timing
    non-determinism of a network — §4 points out that such choices "may
    be time-dependent", which is exactly what a seeded random scheduler
    simulates. *)

type candidate = Csp_trace.Event.t * Csp_semantics.Step.visibility

type t = { name : string; pick : step:int -> candidate array -> int option }

val uniform : seed:int -> t
(** Uniformly random among enabled communications. *)

val first : t
(** Always the first enabled communication (deterministic; biased
    towards the left of alternatives). *)

val rotating : t
(** Deterministic round-robin: at step [k] pick candidate
    [k mod n] — fair across branches without randomness. *)

val weighted : seed:int -> weight:(Csp_trace.Event.t -> float) -> t
(** Random choice proportional to a non-negative weight per event;
    events of weight 0 are picked only when nothing else is enabled.
    Used to inject faults, e.g. biasing a receiver towards NACK. *)
