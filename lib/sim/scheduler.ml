type candidate = Csp_trace.Event.t * Csp_semantics.Step.visibility

type t = { name : string; pick : step:int -> candidate array -> int option }

let uniform ~seed =
  let st = Random.State.make [| seed |] in
  {
    name = Printf.sprintf "uniform(seed=%d)" seed;
    pick =
      (fun ~step:_ cands ->
        if Array.length cands = 0 then None
        else Some (Random.State.int st (Array.length cands)));
  }

let first =
  {
    name = "first";
    pick = (fun ~step:_ cands -> if Array.length cands = 0 then None else Some 0);
  }

let rotating =
  {
    name = "rotating";
    pick =
      (fun ~step cands ->
        let n = Array.length cands in
        if n = 0 then None else Some (step mod n));
  }

let weighted ~seed ~weight =
  let st = Random.State.make [| seed |] in
  {
    name = Printf.sprintf "weighted(seed=%d)" seed;
    pick =
      (fun ~step:_ cands ->
        let n = Array.length cands in
        if n = 0 then None
        else begin
          let ws = Array.map (fun (e, _) -> max 0.0 (weight e)) cands in
          let total = Array.fold_left ( +. ) 0.0 ws in
          if total <= 0.0 then Some (Random.State.int st n)
          else begin
            let r = Random.State.float st total in
            let rec go i acc =
              if i >= n - 1 then i
              else
                let acc = acc +. ws.(i) in
                if r < acc then i else go (i + 1) acc
            in
            Some (go 0 0.0)
          end
        end);
  }
