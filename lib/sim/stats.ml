module Channel = Csp_trace.Channel

type t = {
  steps : int;
  visible : int;
  hidden : int;
  per_channel : (Channel.t * int) list;
}

let empty = { steps = 0; visible = 0; hidden = 0; per_channel = [] }

let bump per_channel c =
  let rec go = function
    | [] -> [ (c, 1) ]
    | (c', n) :: rest ->
      let k = Channel.compare c c' in
      if k = 0 then (c', n + 1) :: rest
      else if k < 0 then (c, 1) :: (c', n) :: rest
      else (c', n) :: go rest
  in
  go per_channel

let observe t (e : Csp_trace.Event.t) vis =
  {
    steps = t.steps + 1;
    visible = (t.visible + match vis with Csp_semantics.Step.Visible -> 1 | _ -> 0);
    hidden = (t.hidden + match vis with Csp_semantics.Step.Hidden -> 1 | _ -> 0);
    per_channel = bump t.per_channel e.Csp_trace.Event.chan;
  }

let count t c =
  match List.find_opt (fun (c', _) -> Channel.equal c c') t.per_channel with
  | Some (_, n) -> n
  | None -> 0

let pp ppf t =
  Format.fprintf ppf "@[<v>steps=%d (visible=%d hidden=%d)@,%a@]" t.steps
    t.visible t.hidden
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (c, n) -> Format.fprintf ppf "  %a: %d" Channel.pp c n))
    t.per_channel
