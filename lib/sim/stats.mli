(** Per-run statistics collected by the runner. *)

type t = {
  steps : int;              (** communications performed *)
  visible : int;
  hidden : int;
  per_channel : (Csp_trace.Channel.t * int) list;
      (** communication counts, sorted by channel *)
}

val empty : t
val observe : t -> Csp_trace.Event.t -> Csp_semantics.Step.visibility -> t
val count : t -> Csp_trace.Channel.t -> int
val pp : Format.formatter -> t -> unit
