(** Network execution.

    The runner drives a process by repeatedly listing its enabled
    communications and letting a scheduler resolve the non-determinism.
    Attached monitors implement the meaning of [P sat R] dynamically:
    each assertion is evaluated on the accumulated channel history
    before the run and after every communication, exactly "before and
    after each communication by that process".

    Monitors observe the histories of {e all} channels, including ones
    concealed by [chan L]; assertions about a network's internal wires
    (e.g. the protocol's [f(wire) ≤ input]) therefore remain checkable
    even when the wire is hidden from the environment. *)

type monitor = { name : string; assertion : Csp_assertion.Assertion.t }

val monitor : string -> Csp_assertion.Assertion.t -> monitor

type violation = {
  monitor_name : string;
  at_step : int;
  history : Csp_trace.History.t;
}

type stop_reason = Deadlock | Max_steps | Scheduler_stopped

type result = {
  trace : Csp_trace.Trace.t;      (** visible events, in order *)
  events : (Csp_trace.Event.t * Csp_semantics.Step.visibility) list;
      (** all events, in order *)
  stop : stop_reason;
  stats : Stats.t;
  violations : violation list;
  final : Csp_lang.Process.t;     (** the state the run stopped in *)
}

val run :
  ?scheduler:Scheduler.t ->
  ?seed:int ->
  ?monitors:monitor list ->
  ?max_steps:int ->
  ?funs:Csp_assertion.Afun.env ->
  ?compiled:Csp_semantics.Compiled.t ->
  Csp_semantics.Step.config ->
  Csp_lang.Process.t ->
  result
(** Defaults: [Scheduler.uniform ~seed] with [seed] defaulting to 1,
    no monitors, 1000 steps.  [seed] is ignored when an explicit
    [scheduler] is supplied; runs are reproducible from their
    arguments alone — no scheduler self-initialises from hidden
    state.  A [compiled] successor automaton for the same
    configuration turns each step's successor query into a flat-row
    read (states off the automaton fall back to the interpreter); the
    walk is unchanged. *)

val run_engine :
  ?scheduler:Scheduler.t ->
  ?seed:int ->
  ?monitors:monitor list ->
  ?max_steps:int ->
  ?funs:Csp_assertion.Afun.env ->
  ?compiled:Csp_semantics.Compiled.t ->
  Csp_semantics.Engine.t ->
  Csp_lang.Process.t ->
  result
(** {!run} driven by a unified engine: the scheduler seed defaults to
    the engine's, and stepping shares the engine's transition cache.
    Pass [Engine.compile eng p] as [compiled] to step on the flat
    successor tables. *)

val pp_result : Format.formatter -> result -> unit
