module Event = Csp_trace.Event
module History = Csp_trace.History
module Trace = Csp_trace.Trace
module Step = Csp_semantics.Step
module Assertion = Csp_assertion.Assertion
module Term = Csp_assertion.Term

type monitor = { name : string; assertion : Assertion.t }

let monitor name assertion = { name; assertion }

type violation = {
  monitor_name : string;
  at_step : int;
  history : History.t;
}

type stop_reason = Deadlock | Max_steps | Scheduler_stopped

type result = {
  trace : Trace.t;
  events : (Event.t * Step.visibility) list;
  stop : stop_reason;
  stats : Stats.t;
  violations : violation list;
  final : Csp_lang.Process.t;
}

let check_monitors funs monitors hist step acc =
  List.fold_left
    (fun acc m ->
      let ctx = Term.ctx ~hist ~funs () in
      match Assertion.eval ctx m.assertion with
      | true -> acc
      | false -> { monitor_name = m.name; at_step = step; history = hist } :: acc
      | exception Term.Eval_error _ ->
        { monitor_name = m.name; at_step = step; history = hist } :: acc)
    acc monitors

let run ?scheduler ?(seed = 1) ?(monitors = []) ?(max_steps = 1000)
    ?(funs = Csp_assertion.Afun.default_env) ?compiled cfg p =
  let scheduler =
    (* the default scheduler is built from the explicit [seed] rather
       than self-initialising, so a run is reproducible from its
       arguments alone *)
    match scheduler with Some s -> s | None -> Scheduler.uniform ~seed
  in
  (* The walk stays on interned nodes: each step is one successor
     query (a flat-row read when a compiled automaton is given, the
     memoised interpreter otherwise) instead of re-interning the
     plain-AST state every step.  Both sides return the same lists,
     so the walk, trace and stop reason are unchanged. *)
  let successors =
    match compiled with
    | Some c -> Csp_semantics.Compiled.transitions_i c
    | None -> Step.transitions_i cfg
  in
  let rec go step p hist rev_events rev_trace stats violations =
    let violations = check_monitors funs monitors hist step violations in
    if step >= max_steps then
      finish p rev_events rev_trace stats violations Max_steps
    else
      let transitions = successors p in
      match transitions with
      | [] -> finish p rev_events rev_trace stats violations Deadlock
      | _ -> (
        let cands =
          Array.of_list (List.map (fun (e, vis, _) -> (e, vis)) transitions)
        in
        match scheduler.Scheduler.pick ~step cands with
        | None ->
          finish p rev_events rev_trace stats violations Scheduler_stopped
        | Some i ->
          let e, vis, p' = List.nth transitions i in
          let hist = History.extend hist e in
          let rev_trace =
            match vis with
            | Step.Visible -> e :: rev_trace
            | Step.Hidden -> rev_trace
          in
          go (step + 1) p' hist ((e, vis) :: rev_events) rev_trace
            (Stats.observe stats e vis)
            violations)
  and finish p rev_events rev_trace stats violations stop =
    {
      trace = List.rev rev_trace;
      events = List.rev rev_events;
      stop;
      stats;
      violations = List.rev violations;
      final = Csp_lang.Proc.to_process p;
    }
  in
  go 0 (Csp_lang.Proc.intern p) History.empty [] [] Stats.empty []

let run_engine ?scheduler ?seed ?monitors ?max_steps ?funs ?compiled eng p =
  let seed = match seed with Some s -> s | None -> eng.Csp_semantics.Engine.seed in
  run ?scheduler ~seed ?monitors ?max_steps ?funs ?compiled
    (Csp_semantics.Engine.step_config eng)
    p

let pp_stop ppf = function
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Max_steps -> Format.pp_print_string ppf "step limit reached"
  | Scheduler_stopped -> Format.pp_print_string ppf "scheduler stopped"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>stopped: %a@,%a@,violations: %d@]" pp_stop r.stop
    Stats.pp r.stats (List.length r.violations)
