(** Traces: finite sequences of communication events.

    A trace records the communications a process has engaged in up to
    some moment in time, in chronological order.  The two operations the
    paper's model relies on are the prefix order (used everywhere) and
    the restriction [s\C] that omits all communications along a given
    set of channels (used for hiding and for the parallel operator). *)

type t = Event.t list

val empty : t
val length : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix s t] is the paper's [s ≤ t]: ∃u. s ^ u = t. *)

val hide : (Channel.t -> bool) -> t -> t
(** [hide in_c s] is the paper's [s\C]: the subsequence of [s] with all
    events on channels satisfying [in_c] removed. *)

val restrict : (Channel.t -> bool) -> t -> t
(** [restrict in_c s] keeps only the events on channels satisfying
    [in_c]; equal to [hide (fun c -> not (in_c c)) s]. *)

val channels : t -> Channel.Set.t
(** The set of channels on which [s] communicates. *)

val prefixes : t -> t list
(** All prefixes of [s], shortest first (including [empty] and [s]). *)

val interleavings : t -> t -> t list
(** All interleavings of two traces.  Used by tests of the paper's
    [P ⇑ C] operator; exponential, intended for short traces only. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
