type t = Value.t list Channel.Map.t

let empty = Channel.Map.empty
let get h c = match Channel.Map.find_opt c h with Some v -> v | None -> []

let set h c vs =
  match vs with [] -> Channel.Map.remove c h | _ -> Channel.Map.add c vs h

let extend h (e : Event.t) = set h e.chan (get h e.chan @ [ e.value ])
let of_trace s = List.fold_left extend empty s
let channels h = List.map fst (Channel.Map.bindings h)

let equal a b =
  Channel.Map.equal (fun x y -> Value.compare_list x y = 0) a b

let pp ppf h =
  let bind ppf (c, vs) =
    Format.fprintf ppf "%a=%a" Channel.pp c Value.pp (Value.Seq vs)
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       bind)
    (Channel.Map.bindings h)
