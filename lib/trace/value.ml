type t =
  | Int of int
  | Bool of bool
  | Sym of string
  | Str of string
  | Tuple of t list
  | Seq of t list

let rec compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Tuple xs, Tuple ys -> compare_list xs ys
  | Tuple _, _ -> -1
  | _, Tuple _ -> 1
  | Seq xs, Seq ys -> compare_list xs ys

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let equal a b = compare a b = 0

(* A simple polynomial hash; constructors are tagged so that e.g.
   [Int 0] and [Bool false] do not collide. *)
let hash_combine h k = ((h * 31) + k) land max_int

let rec hash = function
  | Int n -> hash_combine 1 n
  | Bool b -> hash_combine 2 (if b then 1 else 0)
  | Sym s -> hash_combine 3 (Hashtbl.hash s)
  | Str s -> hash_combine 4 (Hashtbl.hash s)
  | Tuple xs -> hash_list 5 xs
  | Seq xs -> hash_list 6 xs

and hash_list seed xs =
  List.fold_left (fun h v -> hash_combine h (hash v)) seed xs

let ack = Sym "ACK"
let nack = Sym "NACK"
let int n = Int n
let sym s = Sym s
let seq xs = Seq xs

let to_int = function Int n -> Some n | _ -> None
let to_seq = function Seq xs -> Some xs | _ -> None
let is_int = function Int _ -> true | _ -> false

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Bool b -> Format.pp_print_bool ppf b
  | Sym s -> Format.pp_print_string ppf s
  | Str s -> Format.fprintf ppf "%S" s
  | Tuple xs ->
    Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:comma pp) xs
  | Seq xs ->
    Format.fprintf ppf "<%a>" (Format.pp_print_list ~pp_sep:comma pp) xs

and comma ppf () = Format.fprintf ppf ", "

let to_string v = Format.asprintf "%a" pp v
