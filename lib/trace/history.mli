(** Channel histories: the paper's [ch(s)].

    [ch(s)] maps every channel name onto the sequence of messages whose
    communication along that channel is recorded in the trace [s], in
    chronological order; channels not occurring in [s] map to the empty
    sequence.  Assertions are evaluated in an environment extended with a
    channel history. *)

type t

val empty : t

val of_trace : Trace.t -> t
(** [of_trace s] is [ch(s)]. *)

val get : t -> Channel.t -> Value.t list
(** [get h c] is [ch(s)(c)]; the empty sequence for unrecorded channels. *)

val set : t -> Channel.t -> Value.t list -> t
(** Functional override, used by tests and by the obligation prover when
    enumerating candidate histories. *)

val extend : t -> Event.t -> t
(** [extend h e] appends [e.value] to the history of [e.chan]; satisfies
    [of_trace (s @ [e]) = extend (of_trace s) e]. *)

val channels : t -> Channel.t list
(** Channels with a non-empty recorded history. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
