(** Message values.

    The paper deliberately leaves the space of message values open: the
    examples use natural numbers, acknowledgement signals ([ACK], [NACK])
    and — in assertions — finite sequences of such values.  We therefore
    provide a small universal datatype with a total order, so values can
    be used both as messages on channels and as channel subscripts. *)

type t =
  | Int of int          (** integers, including the naturals of [NAT] *)
  | Bool of bool
  | Sym of string       (** atomic signals such as [ACK], [NACK] *)
  | Str of string
  | Tuple of t list
  | Seq of t list       (** finite sequences, used by the assertion language *)

val compare : t -> t -> int
val compare_list : t list -> t list -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}; used by the hash-consed
    closure kernel and other interning tables. *)

val ack : t
(** The acknowledgement signal [Sym "ACK"] of the paper's protocol. *)

val nack : t
(** The negative acknowledgement signal [Sym "NACK"]. *)

val int : int -> t
val sym : string -> t
val seq : t list -> t

val to_int : t -> int option
(** [to_int v] is [Some n] when [v] is [Int n]. *)

val to_seq : t -> t list option
(** [to_seq v] is [Some xs] when [v] is [Seq xs]. *)

val is_int : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
