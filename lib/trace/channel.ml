type t = { name : string; indices : Value.t list }

let make ?(indices = []) name = { name; indices }
let simple name = { name; indices = [] }
let indexed name i = { name; indices = [ Value.Int i ] }

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Value.compare_list a.indices b.indices

let equal a b = compare a b = 0

let hash c =
  List.fold_left
    (fun h v -> ((h * 31) + Value.hash v) land max_int)
    (Hashtbl.hash c.name) c.indices

let base c = c.name

let pp ppf c =
  match c.indices with
  | [] -> Format.pp_print_string ppf c.name
  | ix ->
    Format.fprintf ppf "%s[%a]" c.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Value.pp)
      ix

let to_string c = Format.asprintf "%a" pp c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
