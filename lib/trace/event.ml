type t = { chan : Channel.t; value : Value.t }

let make chan value = { chan; value }
let v name m = { chan = Channel.simple name; value = m }
let vi name n = { chan = Channel.simple name; value = Value.Int n }

let compare a b =
  let c = Channel.compare a.chan b.chan in
  if c <> 0 then c else Value.compare a.value b.value

let equal a b = compare a b = 0
let hash e = ((Channel.hash e.chan * 31) + Value.hash e.value) land max_int
let pp ppf e = Format.fprintf ppf "%a.%a" Channel.pp e.chan Value.pp e.value
let to_string e = Format.asprintf "%a" pp e
