let rec is_prefix s t =
  match s, t with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: s', y :: t' -> Value.equal x y && is_prefix s' t'

let index s i = if i < 1 then None else List.nth_opt s (i - 1)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as s -> if n <= 0 then s else drop (n - 1) rest

let rec common_prefix a b =
  match a, b with
  | x :: a', y :: b' when Value.equal x y -> x :: common_prefix a' b'
  | _ -> []

let rec alternate xs ys =
  match xs, ys with
  | [], rest | rest, [] -> rest
  | x :: xs', y :: ys' -> x :: y :: alternate xs' ys'
