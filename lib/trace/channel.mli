(** Channel identifiers.

    A channel is a base name with an optional list of (already evaluated)
    subscripts, so that [col[0] .. col[3]] from the paper's multiplier
    network are four distinct channels sharing the base name ["col"]. *)

type t = { name : string; indices : Value.t list }

val make : ?indices:Value.t list -> string -> t

val simple : string -> t
(** [simple n] is the unsubscripted channel named [n]. *)

val indexed : string -> int -> t
(** [indexed n i] is the channel [n[i]]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}. *)

val base : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
