(** Pure operations on message sequences ([Value.t list]).

    These implement the sequence operators of the paper's assertion
    language: cons [x^s], length [#s], 1-based indexing [s_i], catenation
    and the prefix order [s ≤ t]. *)

val is_prefix : Value.t list -> Value.t list -> bool
(** [is_prefix s t] is [s ≤ t]. *)

val index : Value.t list -> int -> Value.t option
(** [index s i] is the value of the [i]th message of [s], 1-based, as in
    the paper's [sᵢ]; [None] when [i] is out of range. *)

val take : int -> Value.t list -> Value.t list
val drop : int -> Value.t list -> Value.t list

val common_prefix : Value.t list -> Value.t list -> Value.t list
(** The longest common prefix of two sequences. *)

val alternate : Value.t list -> Value.t list -> Value.t list
(** [alternate xs ys] interleaves strictly: x1,y1,x2,y2,…  Used to build
    wire histories (message then acknowledgement) in tests. *)
