type t = Event.t list

let empty = []
let length = List.length

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' ->
    let c = Event.compare x y in
    if c <> 0 then c else compare a' b'

let equal a b = compare a b = 0

let rec is_prefix s t =
  match s, t with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: s', y :: t' -> Event.equal x y && is_prefix s' t'

let hide in_c s = List.filter (fun (e : Event.t) -> not (in_c e.chan)) s
let restrict in_c s = List.filter (fun (e : Event.t) -> in_c e.chan) s

let channels s =
  List.fold_left
    (fun acc (e : Event.t) -> Channel.Set.add e.chan acc)
    Channel.Set.empty s

let prefixes s =
  let rec go acc rev_pref = function
    | [] -> List.rev acc
    | e :: rest ->
      let rev_pref = e :: rev_pref in
      go (List.rev rev_pref :: acc) rev_pref rest
  in
  go [ [] ] [] s

let rec interleavings a b =
  match a, b with
  | [], s | s, [] -> [ s ]
  | x :: a', y :: b' ->
    List.map (fun s -> x :: s) (interleavings a' b)
    @ List.map (fun s -> y :: s) (interleavings a b')

let pp ppf s =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Event.pp)
    s

let to_string s = Format.asprintf "%a" pp s
