(** Communication events.

    An event is a pair [c.m] of a channel name and a message value — the
    paper does not distinguish the direction of communication, so
    transmission and receipt on a channel are the same event. *)

type t = { chan : Channel.t; value : Value.t }

val make : Channel.t -> Value.t -> t
val v : string -> Value.t -> t
(** [v name m] is the event [name.m] on the unsubscripted channel [name]. *)

val vi : string -> int -> t
(** [vi name n] is the event [name.n] with integer message [n]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
