module Value = Csp_trace.Value
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion

let value = function
  | Value.Int n -> string_of_int n
  | Value.Sym s -> s
  | Value.Bool b -> if b then "true" else "false"
  | (Value.Str _ | Value.Tuple _ | Value.Seq _) as v -> Value.to_string v

let rec vset = function
  | Vset.Nat -> "NAT"
  | Vset.Bools -> "BOOL"
  | Vset.Range (lo, hi) -> Printf.sprintf "{%d..%d}" lo hi
  | Vset.Enum vs -> "{" ^ String.concat ", " (List.map value vs) ^ "}"
  | Vset.Union (_, _) as u -> (
    (* the grammar has no union syntax; flatten finite unions *)
    match Vset.enumerate u with
    | Some vs -> vset (Vset.Enum vs)
    | None -> "NAT" (* degenerate: an infinite union prints as its carrier *))

let rec expr = function
  | Expr.Const v -> value v
  | Expr.Var x -> x
  | Expr.Neg e -> "-" ^ atom_expr e
  | Expr.Add (a, b) -> Printf.sprintf "%s + %s" (expr a) (atom_expr b)
  | Expr.Sub (a, b) -> Printf.sprintf "%s - %s" (expr a) (atom_expr b)
  | Expr.Mul (a, b) -> Printf.sprintf "%s * %s" (atom_expr a) (atom_expr b)
  | Expr.Div (a, b) -> Printf.sprintf "%s / %s" (atom_expr a) (atom_expr b)
  | Expr.Mod (a, b) -> Printf.sprintf "%s mod %s" (atom_expr a) (atom_expr b)
  | Expr.Idx (Expr.Var s, e) -> Printf.sprintf "%s[%s]" s (expr e)
  | Expr.Idx (a, e) -> Printf.sprintf "(%s)[%s]" (expr a) (expr e)
  | Expr.Tuple es -> "(" ^ String.concat ", " (List.map expr es) ^ ")"

and atom_expr e =
  match e with
  | Expr.Const _ | Expr.Var _ | Expr.Idx (Expr.Var _, _) -> expr e
  | _ -> "(" ^ expr e ^ ")"

let chan_expr (c : Chan_expr.t) =
  match c.Chan_expr.subs with
  | [] -> c.Chan_expr.name
  | subs ->
    Printf.sprintf "%s[%s]" c.Chan_expr.name
      (String.concat "," (List.map expr subs))

let chan_item = function
  | Chan_set.Chan ce -> chan_expr ce
  | Chan_set.Family (n, Vset.Range (lo, hi)) ->
    Printf.sprintf "%s[%d..%d]" n lo hi
  | Chan_set.Family (n, _) | Chan_set.Base n -> n ^ "[*]"

let chan_items items = String.concat ", " (List.map chan_item items)
let chan_set items = "{" ^ chan_items items ^ "}"

let rec process = function
  | Process.Stop -> "STOP"
  | Process.Ref (n, None) -> n
  | Process.Ref (n, Some e) -> Printf.sprintf "%s[%s]" n (expr e)
  | Process.Output (c, e, k) ->
    Printf.sprintf "%s!%s -> %s" (chan_expr c) (expr e) (continuation k)
  | Process.Input (c, x, m, k) ->
    Printf.sprintf "%s?%s:%s -> %s" (chan_expr c) x (vset m) (continuation k)
  | Process.Choice (a, b) ->
    Printf.sprintf "%s | %s" (alt_operand a) (alt_operand b)
  | Process.Par (xa, ya, a, b) ->
    Printf.sprintf "%s [ %s || %s ] %s" (par_operand a) (chan_set xa)
      (chan_set ya) (par_operand b)
  | Process.Hide (l, p) ->
    Printf.sprintf "chan %s; %s" (chan_items l) (process p)

and continuation k =
  match k with
  | Process.Choice _ | Process.Par _ | Process.Hide _ ->
    "(" ^ process k ^ ")"
  | _ -> process k

and alt_operand p =
  match p with
  | Process.Choice _ | Process.Par _ | Process.Hide _ ->
    "(" ^ process p ^ ")"
  | _ -> process p

and par_operand p =
  match p with
  | Process.Par _ | Process.Hide _ | Process.Choice _ ->
    "(" ^ process p ^ ")"
  | _ -> process p

let rec term ?(bound = []) t =
  let go = term ~bound in
  let at = atom_term ~bound in
  match t with
  | Term.Const (Value.Seq vs) ->
    "<" ^ String.concat ", " (List.map value vs) ^ ">"
  | Term.Const v -> value v
  | Term.Var x -> x
  | Term.Chan ce -> chan_expr ce
  | Term.Len s -> "#" ^ at s
  | Term.Index (s, i) -> Printf.sprintf "%s.(%s)" (at s) (go i)
  | Term.Cons (x, s) -> Printf.sprintf "%s^%s" (at x) (at s)
  | Term.Cat (s, t') -> Printf.sprintf "%s ++ %s" (at s) (at t')
  | Term.App (f, s) -> Printf.sprintf "%s(%s)" f (go s)
  | Term.Neg a -> "-" ^ at a
  | Term.Add (a, b) -> Printf.sprintf "%s + %s" (go a) (at b)
  | Term.Sub (a, b) -> Printf.sprintf "%s - %s" (go a) (at b)
  | Term.Mul (a, b) -> Printf.sprintf "%s * %s" (at a) (at b)
  | Term.Div (a, b) -> Printf.sprintf "%s / %s" (at a) (at b)
  | Term.Mod (a, b) -> Printf.sprintf "%s mod %s" (at a) (at b)
  | Term.Sum (x, lo, hi, body) ->
    Printf.sprintf "sum(%s, %s, %s, %s)" x (go lo) (go hi)
      (term ~bound:(x :: bound) body)

and atom_term ~bound t =
  match t with
  | Term.Const _ | Term.Var _ | Term.Chan _ | Term.App _ | Term.Sum _
  | Term.Len _ | Term.Index _ ->
    term ~bound t
  | _ -> "(" ^ term ~bound t ^ ")"

let cmp = function
  | Assertion.Le -> "<="
  | Assertion.Lt -> "<"
  | Assertion.Ge -> ">="
  | Assertion.Gt -> ">"

let rec assertion ?(bound = []) a =
  let at = atom_assertion ~bound in
  let tm = term ~bound in
  match a with
  | Assertion.True -> "true"
  | Assertion.False -> "false"
  | Assertion.Prefix (s, t) -> Printf.sprintf "%s <= %s" (tm s) (tm t)
  | Assertion.Eq (s, t) -> Printf.sprintf "%s = %s" (tm s) (tm t)
  | Assertion.Cmp (op, s, t) ->
    Printf.sprintf "%s %s %s" (tm s) (cmp op) (tm t)
  | Assertion.Mem (t, m) -> Printf.sprintf "%s in %s" (tm t) (vset m)
  | Assertion.Not r -> "~" ^ at r
  | Assertion.And (r, s) -> Printf.sprintf "%s & %s" (at r) (at s)
  | Assertion.Or (r, s) -> Printf.sprintf "%s \\/ %s" (at r) (at s)
  | Assertion.Imp (r, s) -> Printf.sprintf "%s => %s" (at r) (at s)
  | Assertion.Forall (x, m, r) ->
    Printf.sprintf "forall %s:%s. %s" x (vset m)
      (assertion ~bound:(x :: bound) r)
  | Assertion.Exists (x, m, r) ->
    Printf.sprintf "exists %s:%s. %s" x (vset m)
      (assertion ~bound:(x :: bound) r)

and atom_assertion ~bound a =
  match a with
  | Assertion.True | Assertion.False | Assertion.Prefix _ | Assertion.Eq _
  | Assertion.Cmp _ | Assertion.Mem _ | Assertion.Not _ ->
    assertion ~bound a
  | _ -> "(" ^ assertion ~bound a ^ ")"

let defs ds =
  let one d =
    match d.Defs.param with
    | None -> Printf.sprintf "%s = %s" d.Defs.name (process d.Defs.body)
    | Some (x, m) ->
      Printf.sprintf "%s[%s:%s] = %s" d.Defs.name x (vset m)
        (process d.Defs.body)
  in
  String.concat "\n"
    (List.filter_map (fun n -> Option.map one (Defs.lookup ds n)) (Defs.names ds))

let pp_process ppf p = Format.pp_print_string ppf (process p)
let pp_assertion ppf a = Format.pp_print_string ppf (assertion a)
