type t =
  | IDENT of string
  | INT of int
  | EQUAL
  | QUERY
  | BANG
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DOTDOT
  | DOTLPAR
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | ARROW
  | BAR
  | PARALLEL
  | HAT
  | HASH
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PLUSPLUS
  | LE
  | LT
  | GE
  | GT
  | IMPLIES
  | AMP
  | OR
  | TILDE
  | EOF
  | KW_STOP
  | KW_CHAN
  | KW_NAT
  | KW_BOOL
  | KW_FORALL
  | KW_EXISTS
  | KW_SAT
  | KW_ASSERT
  | KW_IN
  | KW_SUM
  | KW_TRUE
  | KW_FALSE
  | KW_MOD

let to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | EQUAL -> "="
  | QUERY -> "?"
  | BANG -> "!"
  | COLON -> ":"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | DOTDOT -> ".."
  | DOTLPAR -> ".("
  | LPAR -> "("
  | RPAR -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | ARROW -> "->"
  | BAR -> "|"
  | PARALLEL -> "||"
  | HAT -> "^"
  | HASH -> "#"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PLUSPLUS -> "++"
  | LE -> "<="
  | LT -> "<"
  | GE -> ">="
  | GT -> ">"
  | IMPLIES -> "=>"
  | AMP -> "&"
  | OR -> "\\/"
  | TILDE -> "~"
  | EOF -> "<eof>"
  | KW_STOP -> "STOP"
  | KW_CHAN -> "chan"
  | KW_NAT -> "NAT"
  | KW_BOOL -> "BOOL"
  | KW_FORALL -> "forall"
  | KW_EXISTS -> "exists"
  | KW_SAT -> "sat"
  | KW_ASSERT -> "assert"
  | KW_IN -> "in"
  | KW_SUM -> "sum"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_MOD -> "mod"

let pp ppf t = Format.pp_print_string ppf (to_string t)
