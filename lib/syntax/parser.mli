(** Recursive-descent parser for the paper's notation.

    Processes:
    {v
    copier = input?x:NAT -> wire!x -> copier
    q[x:{0..3}] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
    protocol = chan wire; (sender || receiver)
    network = copier [ {input,wire} || {wire,output} ] recopier
    v}

    [->] binds tighter than [|], which binds tighter than [||]
    (all as in the paper).  Parallel alphabets may be given explicitly
    with [P [ {…} || {…} ] Q]; a bare [P || Q] infers each side's
    alphabet from the channels its text (and referenced definitions)
    can use, by base name.

    Assertions ([assert name sat …], or standalone via
    {!parse_assertion}):
    {v
    assert copier sat wire <= input
    assert forall x:{0..3}. q[x] sat f(wire) <= x^input
    assert network sat forall i:NAT.
      1 <= i & i <= #output => output.(i) = sum(j, 1, 3, <1,2,3>.(j) * row[j].(i))
    v}

    In assertion terms a bare identifier denotes a channel history
    unless it is bound by a quantifier or [sum]; [s.(i)] is 1-based
    indexing, [#s] length, [x^s] cons, [s ++ t] catenation, [<…>] a
    sequence literal, and [f(s)] applies a registered sequence
    function. *)

type decl =
  | Assert_plain of string * Csp_assertion.Assertion.t
      (** [assert p sat R] *)
  | Assert_array of string * string * Csp_lang.Vset.t * Csp_assertion.Assertion.t
      (** [assert forall x:M. q[x] sat S] *)

type file = { defs : Csp_lang.Defs.t; decls : decl list }

exception Parse_error of string * int * int
(** message, line, column *)

val parse_file : string -> (file, string) result
(** Parse definitions and assertion declarations; parallel alphabets
    left implicit are resolved against the complete definition list. *)

val parse_file_exn : string -> file

val parse_process :
  ?defs:Csp_lang.Defs.t -> string -> (Csp_lang.Process.t, string) result
(** Parse a single process expression; [defs] is used to resolve
    implicit parallel alphabets. *)

val parse_assertion :
  ?bound:string list -> string -> (Csp_assertion.Assertion.t, string) result
(** [bound] lists identifiers to read as variables rather than
    channels. *)

val parse_value_set : string -> (Csp_lang.Vset.t, string) result
(** Parse a value set in isolation, e.g. ["NAT"] or ["{0..3}"]. *)
