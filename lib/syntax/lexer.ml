type located = { token : Token.t; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [
    ("STOP", Token.KW_STOP);
    ("chan", Token.KW_CHAN);
    ("NAT", Token.KW_NAT);
    ("BOOL", Token.KW_BOOL);
    ("forall", Token.KW_FORALL);
    ("exists", Token.KW_EXISTS);
    ("sat", Token.KW_SAT);
    ("assert", Token.KW_ASSERT);
    ("in", Token.KW_IN);
    ("sum", Token.KW_SUM);
    ("true", Token.KW_TRUE);
    ("false", Token.KW_FALSE);
    ("mod", Token.KW_MOD);
  ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit tok = out := { token = tok; line = !line; col = !col } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  let advance k =
    for j = !i to !i + k - 1 do
      if j < n && input.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit input.[!j] do
        incr j
      done;
      emit (Token.INT (int_of_string (String.sub input !i (!j - !i))));
      advance (!j - !i)
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do
        incr j
      done;
      let word = String.sub input !i (!j - !i) in
      (match List.assoc_opt word keywords with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word));
      advance (!j - !i)
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      let tok2 =
        match two with
        | "->" -> Some Token.ARROW
        | "||" -> Some Token.PARALLEL
        | "++" -> Some Token.PLUSPLUS
        | "<=" -> Some Token.LE
        | ">=" -> Some Token.GE
        | "=>" -> Some Token.IMPLIES
        | "\\/" -> Some Token.OR
        | ".." -> Some Token.DOTDOT
        | ".(" -> Some Token.DOTLPAR
        | _ -> None
      in
      match tok2 with
      | Some t ->
        emit t;
        advance 2
      | None ->
        let tok1 =
          match c with
          | '=' -> Token.EQUAL
          | '?' -> Token.QUERY
          | '!' -> Token.BANG
          | ':' -> Token.COLON
          | ';' -> Token.SEMI
          | ',' -> Token.COMMA
          | '.' -> Token.DOT
          | '(' -> Token.LPAR
          | ')' -> Token.RPAR
          | '{' -> Token.LBRACE
          | '}' -> Token.RBRACE
          | '[' -> Token.LBRACKET
          | ']' -> Token.RBRACKET
          | '|' -> Token.BAR
          | '^' -> Token.HAT
          | '#' -> Token.HASH
          | '+' -> Token.PLUS
          | '-' -> Token.MINUS
          | '*' -> Token.STAR
          | '/' -> Token.SLASH
          | '<' -> Token.LT
          | '>' -> Token.GT
          | '&' -> Token.AMP
          | '~' -> Token.TILDE
          | _ ->
            raise
              (Lex_error (Printf.sprintf "unexpected character %C" c, !line, !col))
        in
        emit tok1;
        advance 1
    end
  done;
  emit Token.EOF;
  List.rev !out
