(** Tokens of the concrete syntax. *)

type t =
  | IDENT of string
  | INT of int
  | EQUAL            (** [=] *)
  | QUERY            (** [?] *)
  | BANG             (** [!] *)
  | COLON            (** [:] *)
  | SEMI             (** [;] *)
  | COMMA            (** [,] *)
  | DOT              (** [.] *)
  | DOTDOT           (** [..] *)
  | DOTLPAR          (** [.(] — sequence indexing *)
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | ARROW            (** [->] *)
  | BAR              (** [|] *)
  | PARALLEL         (** [||] *)
  | HAT              (** [^] *)
  | HASH             (** [#] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PLUSPLUS         (** [++] *)
  | LE               (** [<=] *)
  | LT               (** [<]; also opens sequence literals, resolved by the parser *)
  | GE
  | GT               (** [>]; also closes sequence literals *)
  | IMPLIES          (** [=>] *)
  | AMP              (** [&] *)
  | OR               (** [\/] *)
  | TILDE            (** [~] *)
  | EOF
  (* keywords *)
  | KW_STOP
  | KW_CHAN
  | KW_NAT
  | KW_BOOL
  | KW_FORALL
  | KW_EXISTS
  | KW_SAT
  | KW_ASSERT
  | KW_IN
  | KW_SUM
  | KW_TRUE
  | KW_FALSE
  | KW_MOD

val pp : Format.formatter -> t -> unit
val to_string : t -> string
