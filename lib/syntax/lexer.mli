(** Hand-written lexer for the concrete syntax.

    Comments run from [--] to end of line.  Identifiers are
    [[A-Za-z][A-Za-z0-9_']*]; keywords are reserved.  Positions are
    tracked as (line, column) for error reporting. *)

type located = { token : Token.t; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> located list
(** The whole input as a token list, ending with [EOF].
    @raise Lex_error on unrecognised characters. *)
