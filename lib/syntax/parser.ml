module Value = Csp_trace.Value
module Process = Csp_lang.Process
module Chan_expr = Csp_lang.Chan_expr
module Chan_set = Csp_lang.Chan_set
module Expr = Csp_lang.Expr
module Vset = Csp_lang.Vset
module Defs = Csp_lang.Defs
module Term = Csp_assertion.Term
module Assertion = Csp_assertion.Assertion

type decl =
  | Assert_plain of string * Assertion.t
  | Assert_array of string * string * Vset.t * Assertion.t

type file = { defs : Defs.t; decls : decl list }

exception Parse_error of string * int * int

(* The parser works on an immutable token array with an explicit cursor,
   so alternatives can backtrack by re-using an earlier index. *)
type stream = { toks : Lexer.located array }

let tok st i = st.toks.(i).Lexer.token

(* The paper writes symbolic signals in capitals (ACK, NACK); an
   all-uppercase identifier denotes such a constant rather than a
   variable or channel. *)
let is_symbol_name s =
  s <> ""
  && String.for_all (fun c -> (c >= 'A' && c <= 'Z') || c = '_') s

let err st i fmt =
  let { Lexer.line; col; token; _ } = st.toks.(i) in
  Format.kasprintf
    (fun m ->
      raise
        (Parse_error
           (Printf.sprintf "%s (at '%s')" m (Token.to_string token), line, col)))
    fmt

let expect st i t =
  if tok st i = t then i + 1
  else err st i "expected '%s'" (Token.to_string t)

let ident st i =
  match tok st i with
  | Token.IDENT s -> (s, i + 1)
  | _ -> err st i "expected an identifier"

(* ---- value sets ---------------------------------------------------- *)

let parse_set_value st i =
  match tok st i with
  | Token.INT n -> (Value.Int n, i + 1)
  | Token.MINUS -> (
    match tok st (i + 1) with
    | Token.INT n -> (Value.Int (-n), i + 2)
    | _ -> err st (i + 1) "expected an integer after '-'")
  | Token.IDENT s -> (Value.Sym s, i + 1)
  | Token.KW_TRUE -> (Value.Bool true, i + 1)
  | Token.KW_FALSE -> (Value.Bool false, i + 1)
  | _ -> err st i "expected a value"

let parse_vset st i =
  match tok st i with
  | Token.KW_NAT -> (Vset.Nat, i + 1)
  | Token.KW_BOOL -> (Vset.Bools, i + 1)
  | Token.LBRACE -> (
    if tok st (i + 1) = Token.RBRACE then (Vset.Enum [], i + 2)
    else
      (* range {lo..hi} or enumeration {v, …} *)
      let v0, j = parse_set_value st (i + 1) in
      match tok st j, v0 with
      | Token.DOTDOT, Value.Int lo -> (
        match tok st (j + 1) with
        | Token.INT hi ->
          let j = expect st (j + 2) Token.RBRACE in
          (Vset.Range (lo, hi), j)
        | _ -> err st (j + 1) "expected the upper bound of the range")
      | _ ->
        let rec more acc j =
          match tok st j with
          | Token.COMMA ->
            let v, j = parse_set_value st (j + 1) in
            more (v :: acc) j
          | Token.RBRACE -> (Vset.Enum (List.rev acc), j + 1)
          | _ -> err st j "expected ',' or '}' in a set"
        in
        more [ v0 ] j)
  | _ -> err st i "expected a value set"

(* ---- expressions (process language) -------------------------------- *)

let rec parse_expr st i = parse_add st i

and parse_add st i =
  let lhs, i = parse_mul st i in
  let rec loop lhs i =
    match tok st i with
    | Token.PLUS ->
      let rhs, i = parse_mul st (i + 1) in
      loop (Expr.Add (lhs, rhs)) i
    | Token.MINUS ->
      let rhs, i = parse_mul st (i + 1) in
      loop (Expr.Sub (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_mul st i =
  let lhs, i = parse_unary st i in
  let rec loop lhs i =
    match tok st i with
    | Token.STAR ->
      let rhs, i = parse_unary st (i + 1) in
      loop (Expr.Mul (lhs, rhs)) i
    | Token.SLASH ->
      let rhs, i = parse_unary st (i + 1) in
      loop (Expr.Div (lhs, rhs)) i
    | Token.KW_MOD ->
      let rhs, i = parse_unary st (i + 1) in
      loop (Expr.Mod (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_unary st i =
  match tok st i with
  | Token.MINUS -> (
    match tok st (i + 1) with
    | Token.INT n -> (Expr.Const (Value.Int (-n)), i + 2)
    | _ ->
      let e, i = parse_unary st (i + 1) in
      (Expr.Neg e, i))
  | _ -> parse_expr_atom st i

and parse_expr_atom st i =
  match tok st i with
  | Token.INT n -> (Expr.int n, i + 1)
  | Token.IDENT s ->
    if tok st (i + 1) = Token.LBRACKET then begin
      let e, j = parse_expr st (i + 2) in
      let j = expect st j Token.RBRACKET in
      (Expr.Idx (Expr.Var s, e), j)
    end
    else if is_symbol_name s then (Expr.Const (Value.Sym s), i + 1)
    else (Expr.Var s, i + 1)
  | Token.LPAR ->
    let e, i = parse_expr st (i + 1) in
    (e, expect st i Token.RPAR)
  | _ -> err st i "expected an expression"

(* ---- channels ------------------------------------------------------ *)

let parse_chan_expr st i =
  let name, i = ident st i in
  (* "[ {" opens an explicit parallel alphabet, never a subscript *)
  if tok st i = Token.LBRACKET && tok st (i + 1) <> Token.LBRACE then begin
    let e, j = parse_expr st (i + 1) in
    let j = expect st j Token.RBRACKET in
    ({ Chan_expr.name; subs = [ e ] }, j)
  end
  else (Chan_expr.simple name, i)

let parse_chan_item st i =
  let name, i = ident st i in
  match tok st i with
  | Token.LBRACKET -> (
    match tok st (i + 1), tok st (i + 2) with
    | Token.STAR, Token.RBRACKET -> (Chan_set.Base name, i + 3)
    | Token.INT lo, Token.DOTDOT -> (
      match tok st (i + 3), tok st (i + 4) with
      | Token.INT hi, Token.RBRACKET ->
        (Chan_set.Family (name, Vset.Range (lo, hi)), i + 5)
      | _ -> err st (i + 3) "expected 'hi]' to close the channel family")
    | _ ->
      let e, j = parse_expr st (i + 1) in
      let j = expect st j Token.RBRACKET in
      (Chan_set.Chan { Chan_expr.name; subs = [ e ] }, j))
  | _ -> (Chan_set.Chan (Chan_expr.simple name), i)

let parse_chan_items st i =
  let rec more acc i =
    match tok st i with
    | Token.COMMA ->
      let item, i = parse_chan_item st (i + 1) in
      more (item :: acc) i
    | _ -> (List.rev acc, i)
  in
  let item, i = parse_chan_item st i in
  more [ item ] i

let parse_chan_set st i =
  let i = expect st i Token.LBRACE in
  if tok st i = Token.RBRACE then ([], i + 1)
  else
    let items, i = parse_chan_items st i in
    (items, expect st i Token.RBRACE)

(* ---- processes ------------------------------------------------------ *)

(* An empty alphabet in a Par node marks "to be inferred". *)
let rec parse_process st i = parse_par st i

and parse_par st i =
  match tok st i with
  | Token.KW_CHAN ->
    let items, i = parse_chan_items st (i + 1) in
    let i = expect st i Token.SEMI in
    let p, i = parse_process st i in
    (Process.Hide (items, p), i)
  | _ ->
    let lhs, i = parse_alt st i in
    let rec loop lhs i =
      match tok st i with
      | Token.PARALLEL ->
        let rhs, i = parse_alt st (i + 1) in
        loop (Process.Par ([], [], lhs, rhs)) i
      | Token.LBRACKET when tok st (i + 1) = Token.LBRACE ->
        let xa, j = parse_chan_set st (i + 1) in
        let j = expect st j Token.PARALLEL in
        let ya, j = parse_chan_set st j in
        let j = expect st j Token.RBRACKET in
        let rhs, j = parse_alt st j in
        loop (Process.Par (xa, ya, lhs, rhs)) j
      | _ -> (lhs, i)
    in
    loop lhs i

and parse_alt st i =
  let lhs, i = parse_prefix st i in
  let rec loop lhs i =
    match tok st i with
    | Token.BAR ->
      let rhs, i = parse_prefix st (i + 1) in
      loop (Process.Choice (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_prefix st i =
  match tok st i with
  | Token.KW_STOP -> (Process.Stop, i + 1)
  | Token.KW_CHAN ->
    let items, i = parse_chan_items st (i + 1) in
    let i = expect st i Token.SEMI in
    let p, i = parse_process st i in
    (Process.Hide (items, p), i)
  | Token.LPAR ->
    let p, i = parse_process st (i + 1) in
    (p, expect st i Token.RPAR)
  | Token.IDENT _ -> (
    (* channel-prefixed communication, or a (possibly subscripted)
       process name; decided by the token after the channel expression *)
    let c, j = parse_chan_expr st i in
    match tok st j with
    | Token.BANG ->
      let e, j = parse_expr st (j + 1) in
      let j = expect st j Token.ARROW in
      let p, j = parse_prefix st j in
      (Process.Output (c, e, p), j)
    | Token.QUERY ->
      let x, j = ident st (j + 1) in
      let j = expect st j Token.COLON in
      let m, j = parse_vset st j in
      let j = expect st j Token.ARROW in
      let p, j = parse_prefix st j in
      (Process.Input (c, x, m, p), j)
    | _ -> (
      match c.Chan_expr.subs with
      | [] -> (Process.Ref (c.Chan_expr.name, None), j)
      | [ e ] -> (Process.Ref (c.Chan_expr.name, Some e), j)
      | _ -> err st i "process names take at most one subscript"))
  | _ -> err st i "expected a process"

(* ---- assertion terms ------------------------------------------------ *)

let rec parse_term bound st i = parse_cons bound st i

and parse_cons bound st i =
  let lhs, i = parse_tadd bound st i in
  match tok st i with
  | Token.HAT ->
    let rhs, i = parse_cons bound st (i + 1) in
    (Term.Cons (lhs, rhs), i)
  | _ -> (lhs, i)

and parse_tadd bound st i =
  let lhs, i = parse_tmul bound st i in
  let rec loop lhs i =
    match tok st i with
    | Token.PLUS ->
      let rhs, i = parse_tmul bound st (i + 1) in
      loop (Term.Add (lhs, rhs)) i
    | Token.MINUS ->
      let rhs, i = parse_tmul bound st (i + 1) in
      loop (Term.Sub (lhs, rhs)) i
    | Token.PLUSPLUS ->
      let rhs, i = parse_tmul bound st (i + 1) in
      loop (Term.Cat (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_tmul bound st i =
  let lhs, i = parse_tpostfix bound st i in
  let rec loop lhs i =
    match tok st i with
    | Token.STAR ->
      let rhs, i = parse_tpostfix bound st (i + 1) in
      loop (Term.Mul (lhs, rhs)) i
    | Token.SLASH ->
      let rhs, i = parse_tpostfix bound st (i + 1) in
      loop (Term.Div (lhs, rhs)) i
    | Token.KW_MOD ->
      let rhs, i = parse_tpostfix bound st (i + 1) in
      loop (Term.Mod (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_tpostfix bound st i =
  let t, i = parse_tatom bound st i in
  let rec loop t i =
    match tok st i with
    | Token.DOTLPAR ->
      let ix, j = parse_term bound st (i + 1) in
      let j = expect st j Token.RPAR in
      loop (Term.Index (t, ix)) j
    | _ -> (t, i)
  in
  loop t i

and parse_tatom bound st i =
  match tok st i with
  | Token.INT n -> (Term.int n, i + 1)
  | Token.MINUS -> (
    match tok st (i + 1) with
    | Token.INT n -> (Term.Const (Value.Int (-n)), i + 2)
    | _ ->
      let t, i = parse_tatom bound st (i + 1) in
      (Term.Neg t, i))
  | Token.HASH ->
    let t, i = parse_tpostfix bound st (i + 1) in
    (Term.Len t, i)
  | Token.KW_SUM ->
    let i = expect st (i + 1) Token.LPAR in
    let x, i = ident st i in
    let i = expect st i Token.COMMA in
    let lo, i = parse_term bound st i in
    let i = expect st i Token.COMMA in
    let hi, i = parse_term bound st i in
    let i = expect st i Token.COMMA in
    let body, i = parse_term (x :: bound) st i in
    let i = expect st i Token.RPAR in
    (Term.Sum (x, lo, hi, body), i)
  | Token.LT ->
    (* sequence literal *)
    if tok st (i + 1) = Token.GT then (Term.empty_seq, i + 2)
    else
      let rec elems acc j =
        let t, j = parse_term bound st j in
        match tok st j with
        | Token.COMMA -> elems (t :: acc) (j + 1)
        | Token.GT -> (List.rev (t :: acc), j + 1)
        | _ -> err st j "expected ',' or '>' in a sequence literal"
      in
      let ts, j = elems [] (i + 1) in
      let const_values =
        List.map (function Term.Const v -> Some v | _ -> None) ts
      in
      if List.for_all Option.is_some const_values then
        (Term.Const (Value.Seq (List.filter_map Fun.id const_values)), j)
      else
        (* build by consing onto the empty sequence *)
        ( List.fold_right (fun t acc -> Term.Cons (t, acc)) ts Term.empty_seq,
          j )
  | Token.LPAR ->
    let t, i = parse_term bound st (i + 1) in
    (t, expect st i Token.RPAR)
  | Token.IDENT s -> (
    match tok st (i + 1) with
    | Token.LPAR ->
      (* named sequence function *)
      let arg, j = parse_term bound st (i + 2) in
      let j = expect st j Token.RPAR in
      (Term.App (s, arg), j)
    | Token.LBRACKET ->
      let e, j = parse_expr st (i + 2) in
      let j = expect st j Token.RBRACKET in
      (Term.Chan { Chan_expr.name = s; subs = [ e ] }, j)
    | _ ->
      if List.mem s bound then (Term.Var s, i + 1)
      else if is_symbol_name s then (Term.Const (Value.Sym s), i + 1)
      else (Term.chan s, i + 1))
  | _ -> err st i "expected a term"

(* ---- assertions ------------------------------------------------------ *)

let rec parse_assert bound st i =
  match tok st i with
  | Token.KW_FORALL | Token.KW_EXISTS ->
    let q = tok st i in
    let x, j = ident st (i + 1) in
    let j = expect st j Token.COLON in
    let m, j = parse_vset st j in
    let j = expect st j Token.DOT in
    let body, j = parse_assert (x :: bound) st j in
    ( (match q with
      | Token.KW_FORALL -> Assertion.Forall (x, m, body)
      | _ -> Assertion.Exists (x, m, body)),
      j )
  | _ -> parse_imp bound st i

and parse_imp bound st i =
  let lhs, i = parse_or bound st i in
  match tok st i with
  | Token.IMPLIES ->
    let rhs, i = parse_imp bound st (i + 1) in
    (Assertion.Imp (lhs, rhs), i)
  | _ -> (lhs, i)

and parse_or bound st i =
  let lhs, i = parse_and bound st i in
  let rec loop lhs i =
    match tok st i with
    | Token.OR ->
      let rhs, i = parse_and bound st (i + 1) in
      loop (Assertion.Or (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_and bound st i =
  let lhs, i = parse_aatom bound st i in
  let rec loop lhs i =
    match tok st i with
    | Token.AMP ->
      let rhs, i = parse_aatom bound st (i + 1) in
      loop (Assertion.And (lhs, rhs)) i
    | _ -> (lhs, i)
  in
  loop lhs i

and parse_aatom bound st i =
  match tok st i with
  | Token.KW_TRUE -> (Assertion.True, i + 1)
  | Token.KW_FALSE -> (Assertion.False, i + 1)
  | Token.TILDE ->
    let a, i = parse_aatom bound st (i + 1) in
    (Assertion.Not a, i)
  | Token.KW_FORALL | Token.KW_EXISTS -> parse_assert bound st i
  | Token.LPAR -> (
    (* either a parenthesised assertion or a parenthesised term that
       begins a comparison; try the assertion reading first *)
    match parse_assert bound st (i + 1) with
    | a, j when tok st j = Token.RPAR && not (starts_comparison st (j + 1)) ->
      (a, j + 1)
    | _ -> parse_comparison bound st i
    | exception Parse_error _ -> parse_comparison bound st i)
  | _ -> parse_comparison bound st i

and starts_comparison st i =
  match tok st i with
  | Token.LE | Token.LT | Token.GE | Token.GT | Token.EQUAL | Token.KW_IN
  | Token.HAT | Token.PLUS | Token.MINUS | Token.STAR | Token.SLASH
  | Token.PLUSPLUS | Token.DOTLPAR | Token.KW_MOD ->
    true
  | _ -> false

and parse_comparison bound st i =
  let lhs, i = parse_term bound st i in
  match tok st i with
  | Token.LE ->
    let rhs, i = parse_term bound st (i + 1) in
    (* <= is the prefix order on sequences and ≤ on integers; decide by
       the shape of the operands *)
    if seq_like lhs || seq_like rhs then (Assertion.Prefix (lhs, rhs), i)
    else (Assertion.Cmp (Assertion.Le, lhs, rhs), i)
  | Token.LT ->
    let rhs, i = parse_term bound st (i + 1) in
    (Assertion.Cmp (Assertion.Lt, lhs, rhs), i)
  | Token.GE ->
    let rhs, i = parse_term bound st (i + 1) in
    (Assertion.Cmp (Assertion.Ge, lhs, rhs), i)
  | Token.GT ->
    let rhs, i = parse_term bound st (i + 1) in
    (Assertion.Cmp (Assertion.Gt, lhs, rhs), i)
  | Token.EQUAL ->
    let rhs, i = parse_term bound st (i + 1) in
    (Assertion.Eq (lhs, rhs), i)
  | Token.KW_IN ->
    let m, i = parse_vset st (i + 1) in
    (Assertion.Mem (lhs, m), i)
  | _ -> err st i "expected a comparison operator"

and seq_like = function
  | Term.Chan _ | Term.Cons _ | Term.Cat _ | Term.App _ -> true
  | Term.Const (Value.Seq _) -> true
  | _ -> false

(* ---- top level ------------------------------------------------------ *)

type raw_item =
  | Raw_def of Defs.def
  | Raw_decl of decl

let parse_item st i =
  match tok st i with
  | Token.KW_ASSERT -> (
    match tok st (i + 1) with
    | Token.KW_FORALL ->
      let x, j = ident st (i + 2) in
      let j = expect st j Token.COLON in
      let m, j = parse_vset st j in
      let j = expect st j Token.DOT in
      let q, j = ident st j in
      let j = expect st j Token.LBRACKET in
      let x', j = ident st j in
      if not (String.equal x x') then
        err st j "the array subscript must be the quantified variable";
      let j = expect st j Token.RBRACKET in
      let j = expect st j Token.KW_SAT in
      let a, j = parse_assert [ x ] st j in
      (Raw_decl (Assert_array (q, x, m, a)), j)
    | _ ->
      let name, j = ident st (i + 1) in
      let j = expect st j Token.KW_SAT in
      let a, j = parse_assert [] st j in
      (Raw_decl (Assert_plain (name, a)), j))
  | Token.IDENT name -> (
    match tok st (i + 1) with
    | Token.EQUAL ->
      let p, j = parse_process st (i + 2) in
      (Raw_def { Defs.name; param = None; body = p }, j)
    | Token.LBRACKET ->
      let x, j = ident st (i + 2) in
      let j = expect st j Token.COLON in
      let m, j = parse_vset st j in
      let j = expect st j Token.RBRACKET in
      let j = expect st j Token.EQUAL in
      let p, j = parse_process st j in
      (Raw_def { Defs.name; param = Some (x, m); body = p }, j)
    | _ -> err st (i + 1) "expected '=' or '[param:set] =' after the name")
  | _ -> err st i "expected a definition or an assertion"

(* Fill the empty alphabets of inferred parallel compositions from the
   channels each side can use, by base name. *)
let rec resolve_alphabets defs p =
  match p with
  | Process.Stop | Process.Ref _ -> p
  | Process.Output (c, e, k) -> Process.Output (c, e, resolve_alphabets defs k)
  | Process.Input (c, x, m, k) ->
    Process.Input (c, x, m, resolve_alphabets defs k)
  | Process.Choice (a, b) ->
    Process.Choice (resolve_alphabets defs a, resolve_alphabets defs b)
  | Process.Hide (l, a) -> Process.Hide (l, resolve_alphabets defs a)
  | Process.Par (xa, ya, a, b) ->
    let a = resolve_alphabets defs a and b = resolve_alphabets defs b in
    let xa = if xa = [] then Chan_set.bases (Defs.channel_bases defs a) else xa in
    let ya = if ya = [] then Chan_set.bases (Defs.channel_bases defs b) else ya in
    Process.Par (xa, ya, a, b)

let parse_items input =
  let st = { toks = Array.of_list (Lexer.tokenize input) } in
  let rec go acc i =
    if tok st i = Token.EOF then List.rev acc
    else
      let item, i = parse_item st i in
      go (item :: acc) i
  in
  go [] 0

let parse_file_exn input =
  let items = parse_items input in
  let defs =
    List.fold_left
      (fun defs -> function
        | Raw_def d ->
          if Defs.lookup defs d.Defs.name <> None then
            raise
              (Parse_error
                 (Printf.sprintf "process %s is defined twice" d.Defs.name, 0, 0))
          else Defs.add d defs
        | Raw_decl _ -> defs)
      Defs.empty items
  in
  let defs =
    List.fold_left
      (fun acc name ->
        match Defs.lookup defs name with
        | Some d ->
          Defs.add { d with Defs.body = resolve_alphabets defs d.Defs.body } acc
        | None -> acc)
      Defs.empty (Defs.names defs)
  in
  let decls =
    List.filter_map
      (function Raw_decl d -> Some d | Raw_def _ -> None)
      items
  in
  { defs; decls }

let wrap f input =
  match f input with
  | v -> Ok v
  | exception Parse_error (m, line, col) ->
    Error (Printf.sprintf "%d:%d: %s" line col m)
  | exception Lexer.Lex_error (m, line, col) ->
    Error (Printf.sprintf "%d:%d: %s" line col m)

let parse_file input = wrap parse_file_exn input

let parse_process ?(defs = Defs.empty) input =
  wrap
    (fun input ->
      let st = { toks = Array.of_list (Lexer.tokenize input) } in
      let p, i = parse_process st 0 in
      if tok st i <> Token.EOF then err st i "trailing input after the process";
      resolve_alphabets defs p)
    input

let parse_value_set input =
  wrap
    (fun input ->
      let st = { toks = Array.of_list (Lexer.tokenize input) } in
      let m, i = parse_vset st 0 in
      if tok st i <> Token.EOF then err st i "trailing input after the set";
      m)
    input

let parse_assertion ?(bound = []) input =
  wrap
    (fun input ->
      let st = { toks = Array.of_list (Lexer.tokenize input) } in
      let a, i = parse_assert bound st 0 in
      if tok st i <> Token.EOF then err st i "trailing input after the assertion";
      a)
    input
