(** Printers producing the concrete syntax accepted by {!Parser}.

    [Parser.parse_process (process p) = Ok p] and likewise for
    assertions and definition files (round-tripping is property-tested),
    with one caveat: channel-set items that match by base name print as
    [name[*]]. *)

val vset : Csp_lang.Vset.t -> string
val expr : Csp_lang.Expr.t -> string
val process : Csp_lang.Process.t -> string
val term : ?bound:string list -> Csp_assertion.Term.t -> string
val assertion : ?bound:string list -> Csp_assertion.Assertion.t -> string
val defs : Csp_lang.Defs.t -> string
(** One definition per line. *)

val pp_process : Format.formatter -> Csp_lang.Process.t -> unit
val pp_assertion : Format.formatter -> Csp_assertion.Assertion.t -> unit
