(* Unified observability: an atomic metric registry, per-domain span
   buffers with Chrome-trace/JSONL exporters, and a snapshot that also
   folds in external statistics sources (interning tables, memo caches,
   the domain pool).

   Disabled-path discipline: the only cost a dormant instrument may
   impose on a hot path is one atomic load ([enabled ()]) — no clock
   read, no allocation of events.  Counters and gauges stay live even
   when disabled (one atomic RMW, the same price the kernel cache
   counters already pay); everything that needs a clock or a buffer is
   gated.  Nothing here feeds back into scheduling, so enabling
   telemetry cannot change any user-visible output. *)

type value = Int of int | Float of float | Bool of bool | String of string

(* ---- enabled flag ----------------------------------------------------- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let () =
  match Sys.getenv_opt "CSP_OBS" with
  | Some ("1" | "true" | "on") -> set_enabled true
  | _ -> ()

(* ---- clock ------------------------------------------------------------ *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* Every timestamp is reported relative to this origin, so traces from
   one process line up regardless of when telemetry was switched on. *)
let origin_ns = now_ns ()

(* ---- metric registry -------------------------------------------------- *)

type timer = {
  t_count : int Atomic.t;
  t_total_ns : int Atomic.t;
  t_max_ns : int Atomic.t;
  t_buckets : int Atomic.t array; (* log2(ns) histogram *)
}

type metric =
  | M_counter of int Atomic.t
  | M_gauge of float Atomic.t
  | M_timer of timer

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  match f () with
  | v ->
    Mutex.unlock registry_mutex;
    v
  | exception e ->
    Mutex.unlock registry_mutex;
    raise e

(* Find-or-create: the same name always maps to the same instrument,
   whichever module asked first.  A name reused at a different metric
   kind is a programming error worth failing loudly on. *)
let intern_metric name build describe =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match describe m with
        | Some v -> v
        | None -> invalid_arg ("Obs: metric " ^ name ^ " registered with another kind"))
      | None ->
        let m, v = build () in
        Hashtbl.add registry name m;
        v)

module Counter = struct
  type t = int Atomic.t

  let make name =
    intern_metric name
      (fun () ->
        let a = Atomic.make 0 in
        (M_counter a, a))
      (function M_counter a -> Some a | _ -> None)

  let incr = Atomic.incr
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get = Atomic.get
end

module Gauge = struct
  type t = float Atomic.t

  let make name =
    intern_metric name
      (fun () ->
        let a = Atomic.make 0.0 in
        (M_gauge a, a))
      (function M_gauge a -> Some a | _ -> None)

  let set = Atomic.set
  let get = Atomic.get
end

module Timer = struct
  type t = timer

  let n_buckets = 48

  let make name =
    intern_metric name
      (fun () ->
        let t =
          {
            t_count = Atomic.make 0;
            t_total_ns = Atomic.make 0;
            t_max_ns = Atomic.make 0;
            t_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        (M_timer t, t))
      (function M_timer t -> Some t | _ -> None)

  let bucket_of_ns ns =
    let ns = max 1 ns in
    let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
    min (n_buckets - 1) (log2 0 ns)

  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v <= cur then ()
    else if Atomic.compare_and_set a cur v then ()
    else atomic_max a v

  let observe_ns t ns =
    let ns = if Float.is_finite ns && ns > 0.0 then int_of_float ns else 0 in
    Atomic.incr t.t_count;
    ignore (Atomic.fetch_and_add t.t_total_ns ns);
    atomic_max t.t_max_ns ns;
    Atomic.incr t.t_buckets.(bucket_of_ns ns)

  let time t f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> observe_ns t (now_ns () -. t0)) f
    end

  let count t = Atomic.get t.t_count
  let total_ns t = float_of_int (Atomic.get t.t_total_ns)
  let max_ns t = float_of_int (Atomic.get t.t_max_ns)
  let buckets t = Array.map Atomic.get t.t_buckets
end

(* ---- spans ------------------------------------------------------------ *)

type event = {
  name : string;
  cat : string;
  ts_ns : float;
  dur_ns : float;
  tid : int;
  depth : int;
  args : (string * value) list;
}

let dropped_events = Counter.make "obs.dropped_events"
let max_events_per_domain = 1_000_000

(* One buffer per domain: only the owning domain appends, so no lock is
   needed on the record path; the global list of buffers is guarded for
   registration only.  Readers ([events]) run while the process is
   quiescent (the CLI exports after the command body returns). *)
type dbuf = {
  tid : int;
  mutable evs : event list;
  mutable n : int;
  mutable stack_depth : int;
}

let all_bufs : dbuf list ref = ref []
let bufs_mutex = Mutex.create ()

let dls_buf : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int); evs = []; n = 0; stack_depth = 0 }
      in
      Mutex.lock bufs_mutex;
      all_bufs := b :: !all_bufs;
      Mutex.unlock bufs_mutex;
      b)

let record b ev =
  if b.n >= max_events_per_domain then Counter.incr dropped_events
  else begin
    b.evs <- ev :: b.evs;
    b.n <- b.n + 1
  end

let no_args () = []

let span ?(cat = "") ?(args = no_args) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get dls_buf in
    let depth = b.stack_depth in
    b.stack_depth <- depth + 1;
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        b.stack_depth <- depth;
        record b
          {
            name;
            cat;
            ts_ns = t0 -. origin_ns;
            dur_ns = t1 -. t0;
            tid = b.tid;
            depth;
            args = args ();
          })
      f
  end

let event_compare a b =
  let c = Float.compare a.ts_ns b.ts_ns in
  if c <> 0 then c
  else
    let c = Int.compare a.tid b.tid in
    if c <> 0 then c else String.compare a.name b.name

let events () =
  Mutex.lock bufs_mutex;
  let bufs = !all_bufs in
  Mutex.unlock bufs_mutex;
  List.sort event_compare (List.concat_map (fun b -> b.evs) bufs)

let event_count () =
  Mutex.lock bufs_mutex;
  let bufs = !all_bufs in
  Mutex.unlock bufs_mutex;
  List.fold_left (fun n b -> n + b.n) 0 bufs

let clear_events () =
  Mutex.lock bufs_mutex;
  let bufs = !all_bufs in
  Mutex.unlock bufs_mutex;
  List.iter
    (fun b ->
      b.evs <- [];
      b.n <- 0)
    bufs

(* ---- snapshot --------------------------------------------------------- *)

let sources : (string * (unit -> (string * value) list)) list ref = ref []

let register_source prefix f =
  with_registry (fun () ->
      sources := (prefix, f) :: List.remove_assoc prefix !sources)

let ms_of_ns ns = ns /. 1e6

let metric_rows name = function
  | M_counter a -> [ (name, Int (Atomic.get a)) ]
  | M_gauge a -> [ (name, Float (Atomic.get a)) ]
  | M_timer t ->
    let count = Timer.count t and total = Timer.total_ns t in
    [
      (name ^ ".count", Int count);
      (name ^ ".total_ms", Float (ms_of_ns total));
      ( name ^ ".mean_ms",
        Float (if count = 0 then 0.0 else ms_of_ns (total /. float_of_int count)) );
      (name ^ ".max_ms", Float (ms_of_ns (Timer.max_ns t)));
    ]

let snapshot () =
  let metrics, srcs =
    with_registry (fun () ->
        (Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [], !sources))
  in
  let rows =
    List.concat_map (fun (k, m) -> metric_rows k m) metrics
    @ List.concat_map
        (fun (prefix, f) ->
          List.map (fun (k, v) -> (prefix ^ "." ^ k, v)) (f ()))
        srcs
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* Concurrent delta probes would attribute one job's counter movement
   to another, so probes serialise on one mutex: each diff is exact.
   Counters are always live (an increment is one atomic RMW), so the
   deltas are meaningful even while telemetry is disabled. *)
let delta_mutex = Mutex.create ()

let delta_snapshot f =
  Mutex.lock delta_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock delta_mutex) @@ fun () ->
  let before = snapshot () in
  let x = f () in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, v) -> match v with Int n -> Hashtbl.replace tbl k n | _ -> ())
    before;
  let deltas =
    List.filter_map
      (fun (k, v) ->
        match v with
        | Int n ->
          let d = n - Option.value ~default:0 (Hashtbl.find_opt tbl k) in
          if d > 0 then Some (k, d) else None
        | _ -> None)
      (snapshot ())
  in
  (x, deltas)

(* Timer histograms are not part of [snapshot] (48 buckets per timer
   would swamp the key space); coverage tooling reads them separately
   and treats each occupied bucket as one feature. *)
let timer_buckets () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun k m acc ->
          match m with
          | M_timer t -> (k, Array.map Atomic.get t.t_buckets) :: acc
          | M_counter _ | M_gauge _ -> acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | M_counter a -> Atomic.set a 0
          | M_gauge a -> Atomic.set a 0.0
          | M_timer t ->
            Atomic.set t.t_count 0;
            Atomic.set t.t_total_ns 0;
            Atomic.set t.t_max_ns 0;
            Array.iter (fun b -> Atomic.set b 0) t.t_buckets)
        registry)

(* ---- rendering -------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if not (Float.is_finite f) then "0"
  else
    (* %.17g round-trips; trim the common integral case for legibility *)
    let s = Printf.sprintf "%.6f" f in
    s

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b
  | String s -> "\"" ^ json_escape s ^ "\""

let pp_snapshot ppf () =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s = %s" k (string_of_value v))
    (snapshot ());
  Format.fprintf ppf "@]"

let snapshot_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": %s" (json_escape k) (string_of_value v)))
    (snapshot ());
  Buffer.add_string buf "}";
  Buffer.contents buf

let args_json args =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": %s" (json_escape k) (string_of_value v)))
    args;
  Buffer.add_string buf "}";
  Buffer.contents buf

let chrome_trace () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %s, \
            \"dur\": %s, \"pid\": 1, \"tid\": %d, \"args\": %s}"
           (json_escape e.name) (json_escape e.cat)
           (json_float (e.ts_ns /. 1e3))
           (json_float (e.dur_ns /. 1e3))
           e.tid
           (args_json (("depth", Int e.depth) :: e.args))))
    (events ());
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let events_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"%s\", \"ts_ns\": %s, \"dur_ns\": \
            %s, \"tid\": %d, \"depth\": %d, \"args\": %s}\n"
           (json_escape e.name) (json_escape e.cat) (json_float e.ts_ns)
           (json_float e.dur_ns) e.tid e.depth (args_json e.args)))
    (events ());
  Buffer.contents buf
