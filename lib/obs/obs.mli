(** Process-wide observability: one registry, one event log, one
    snapshot.

    Three instruments, all safe under OCaml 5 domains:

    - {e metrics} — named {!Counter}s, {!Gauge}s and {!Timer}s backed
      by atomics, registered on first use and enumerated in full by
      {!snapshot}.  Counters and gauges are always live (an increment
      is one atomic RMW); timers only read the clock while telemetry
      is {!enabled}.
    - {e spans} — hierarchical wall-clock intervals recorded into
      per-domain buffers, exportable as a Chrome [trace_event] file
      ({!chrome_trace}, load it in [chrome://tracing] or Perfetto) or
      a flat JSONL event log ({!events_jsonl}).  When telemetry is
      disabled a span is a single atomic load followed by the wrapped
      call: no clock read, no event allocation.
    - {e snapshot sources} — modules that keep their own counters
      (interning tables, memo caches, the domain pool) register a
      thunk with {!register_source}; {!snapshot} folds them in under a
      prefixed key, so one call sees every statistic in the process.

    Telemetry starts disabled; it is switched on by {!set_enabled},
    or at program start by setting [CSP_OBS=1] in the environment.
    Determinism contract: instruments only ever {e observe} — nothing
    in this module feeds time or counter values back into scheduling,
    so user-visible outputs are byte-identical with telemetry on or
    off. *)

type value = Int of int | Float of float | Bool of bool | String of string

val enabled : unit -> bool
(** One atomic load — this is the whole disabled-path cost. *)

val set_enabled : bool -> unit
(** Also set at startup by [CSP_OBS=1] (or [true]/[on]) in the
    environment. *)

val now_ns : unit -> float
(** Wall clock in nanoseconds (from [Unix.gettimeofday]; resolution
    ~1µs).  Used for every span and timer measurement. *)

(** {1 Metrics}

    [make name] registers the metric on first use and returns the
    existing instrument on every later call with the same name —
    metrics are process-global, like the cache counters they sit
    beside.  Every registered metric appears in {!snapshot}. *)

module Counter : sig
  type t

  val make : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val get : t -> float
end

(** Monotonic duration accumulators with a log₂ histogram.  Recording
    is always allowed ({!Timer.observe_ns}); the convenience wrapper
    {!Timer.time} reads the clock only when telemetry is enabled and
    otherwise just runs the thunk. *)
module Timer : sig
  type t

  val make : string -> t

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] runs [f], recording its wall-clock duration when
      telemetry is enabled; when disabled it is [f ()] after one
      atomic load. *)

  val observe_ns : t -> float -> unit
  val count : t -> int
  val total_ns : t -> float
  val max_ns : t -> float

  val buckets : t -> int array
  (** Occupancy of the log₂(ns) histogram: slot [i] counts durations
      in [[2{^i}, 2{^i+1}) ns]. *)
end

(** {1 Spans} *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["explore"], ["step"], ["pool"] *)
  ts_ns : float;  (** start, relative to process telemetry start *)
  dur_ns : float;
  tid : int;  (** domain id that ran the span *)
  depth : int;  (** nesting depth within its domain at start *)
  args : (string * value) list;
}

val span : ?cat:string -> ?args:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** [span ~cat ~args name f] runs [f] inside a named interval.  The
    event (a Chrome complete event) is recorded when [f] returns or
    raises; [args] is a thunk so argument lists are only built when
    telemetry is enabled.  Spans nest per domain: concurrent spans on
    other domains land in their own buffers. *)

val events : unit -> event list
(** Every recorded event, across all domains, sorted by start time
    (ties by domain then name).  Call while the process is quiescent
    (between parallel phases); per-domain buffers are not locked. *)

val event_count : unit -> int
val clear_events : unit -> unit

val dropped_events : Counter.t
(** Events discarded after a per-domain buffer reached its cap
    (1,000,000 events); exported as [obs.dropped_events]. *)

(** {1 Snapshot} *)

val register_source : string -> (unit -> (string * value) list) -> unit
(** [register_source prefix f] adds an external statistics source:
    {!snapshot} appends [f ()] with every key prefixed by
    [prefix ^ "."].  Registering the same prefix again replaces the
    source (idempotent at module-initialisation time). *)

val snapshot : unit -> (string * value) list
(** Every registered metric (counters and gauges under their own
    name; timers as [.count], [.total_ms], [.mean_ms], [.max_ms])
    followed by every registered source, merged and sorted by key. *)

val delta_snapshot : (unit -> 'a) -> 'a * (string * int) list
(** [delta_snapshot f] runs [f] and diffs the integer counters of
    {!snapshot} around it, returning [f]'s result and every counter
    that increased, as [(key, delta)] pairs in snapshot (key) order.
    Serialised by a mutex so concurrent probes cannot attribute one
    job's counter movement to another — this is how the coverage map
    and the [cspc serve] per-request statistics isolate one job's
    telemetry without {!reset}.  Counters are live even while
    telemetry is disabled, so the deltas do not require
    {!set_enabled}. *)

val timer_buckets : unit -> (string * int array) list
(** The log₂(ns) histogram of every registered timer, sorted by name.
    Not folded into {!snapshot} (48 buckets per timer would swamp the
    key space); the coverage map reads occupancy from here and treats
    each occupied slot as one feature. *)

val reset : unit -> unit
(** Zero every registered counter, gauge and timer.  External sources
    and the event log are untouched (see {!clear_events}). *)

val pp_snapshot : Format.formatter -> unit -> unit
(** One [key = value] line per snapshot entry — the [--stats]
    rendering. *)

(** {1 Machine-readable exports} *)

val string_of_value : value -> string
(** The value as a JSON literal. *)

val snapshot_json : unit -> string
(** The snapshot as one compact JSON object ([--stats-json]). *)

val chrome_trace : unit -> string
(** The event log in Chrome [trace_event] format: an object whose
    ["traceEvents"] array holds one ["ph":"X"] complete event per
    span, with microsecond [ts]/[dur], [pid] 1 and [tid] the domain
    id ([--trace-out]). *)

val events_jsonl : unit -> string
(** The event log flattened to one JSON object per line, durations in
    nanoseconds. *)
