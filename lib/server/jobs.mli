(** Job execution for the verification service.

    Each job reproduces, byte for byte, the stdout of the matching
    one-shot [cspc] subcommand on the same input — the differential
    suite in [test_server.ml] pins this down against the real binary.
    The difference is purely economic: a {!ctx} survives across
    requests, so the parsed file, the per-[nat_bound] engines (with
    their interned IR, step/denote memos and compiled automata) and
    the proved sequents are paid for once and reused by every later
    job on the same source.

    A [ctx] additionally records what would be needed to rebuild its
    warm state — the compile calls it has issued and the certificates
    of the sequents it has proved — which is exactly what
    {!Csp_persist.Snapshot} persists. *)

open Csp

type ctx = {
  digest : string;  (** MD5 of the source text — the cache key *)
  source : string;
  file : Csp_syntax.Parser.file;
  engines : (int, Engine.t) Hashtbl.t;  (** keyed by [nat_bound] *)
  mutable compiled_roots : Csp_persist.Snapshot.compiled_root list;
      (** compile calls issued so far, newest first, deduplicated *)
  mutable proofs : (string * (Sequent.judgment * Proof.t)) list;
      (** proved sequents, keyed by {!Sequent.judgment_to_string} *)
  lock : Mutex.t;
      (** held for the duration of any job on this context: the
          engine caches are single-writer *)
}

val ctx_of_source : string -> (ctx, string) result
(** Parse and cache-key a source; [Error] is the parser's message. *)

val engine : ctx -> nat_bound:int -> Engine.t
(** The shared engine of this context for the given sampler bound,
    created on first use. *)

type outcome = { output : string; exit_code : int }
(** Exactly the stdout text and exit status of the one-shot CLI. *)

val parse : ctx -> outcome

val graph :
  ctx ->
  process:string ->
  max_states:int ->
  nat_bound:int ->
  compiled:bool ->
  (outcome, string) result
(** [Error] when [process] is not defined (the CLI dies with the same
    message on stderr). *)

val refine :
  ctx ->
  impl:string ->
  spec:string ->
  depth:int ->
  nat_bound:int ->
  weak:bool ->
  compiled:bool ->
  (outcome, string) result

val prove : ctx -> outcome
(** Proves every declared assertion.  Sequents already proved through
    this context (including ones admitted from a warm snapshot) skip
    the tactic search: the stored proof tree is re-checked with
    {!Check.check}, which yields the identical report — and therefore
    the identical output — at a fraction of the cost. *)

val fuzz :
  seed:int ->
  count:int ->
  budget:float option ->
  oracle_names:string list ->
  (outcome, string) result
(** [Error] on an unknown oracle name.  Runs sequentially ([jobs=1]);
    the wall-clock [budget] is the per-request time budget. *)

val record_compile :
  ctx -> process:string -> budget:int option -> nat_bound:int -> unit
(** Note a compile call for snapshot purposes (deduplicated). *)

val admit_proofs : ctx -> (Sequent.judgment * Proof.t) list -> unit
(** Admit certificate-loaded proofs into the proved-sequent cache
    (existing keys win — they were proved in this process). *)
