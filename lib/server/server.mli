(** The [cspc serve] daemon: a long-lived, cache-warm verification
    service on a Unix-domain socket.

    One process holds every warm structure the one-shot CLI rebuilds
    per invocation — the sharded intern tables, the closure and
    denotational memos, the per-source {!Csp.Engine}s with their
    compiled successor automata, and the proved-sequent cache — and
    answers [parse]/[graph]/[refine]/[prove]/[fuzz] requests framed
    as newline-delimited JSON ({!Protocol}).  Job outputs are byte
    for byte the one-shot CLI's stdout.

    Concurrency: the accepting domain multiplexes the listening
    socket and every idle connection through [select] and dispatches
    a connection only when a request frame is arriving, so idle
    connections occupy no worker and interleaved clients never
    head-of-line block behind an open socket.  With [jobs = 1] ready
    frames are served inline by the poller; with [jobs > 1] they are
    pushed onto a {!Csp_parallel.Pool} work-stealing session and
    served by the pool's worker domains.  Jobs on one source context
    serialise on that context's lock (the engine caches are
    single-writer); jobs on different sources run concurrently.

    Persistence: [save]/[load] requests (and [--warm FILE] at start)
    snapshot and replay the warm state through
    {!Csp_persist.Snapshot} — sources are re-parsed, automata
    re-compiled, certificates re-admitted — so a restarted server
    answers its first request at warm-cache speed with answers
    byte-identical to a cold run. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains serving connections (default 1) *)
  limits : Protocol.limits;
  warm : string option;  (** snapshot to load before accepting *)
}

val config :
  ?jobs:int ->
  ?limits:Protocol.limits ->
  ?warm:string ->
  string ->
  config

type t

val create : config -> (t, string) result
(** Build the server state and replay the warm snapshot if one was
    given.  [Error] when the snapshot is unreadable, corrupt or of
    the wrong version — a bad warm file refuses to start rather than
    silently serving cold. *)

val handle_line : t -> string -> string
(** One request frame in, one response frame out (no trailing
    newline).  Exposed for in-process use: the differential and
    persistence tests drive the full protocol through this without a
    socket. *)

val source_count : t -> int
(** Cached source contexts (for tests and the [stats] op). *)

val compiled_total : t -> int
(** Compiled automata across every cached engine. *)

val stopping : t -> bool

val serve : ?ready:(unit -> unit) -> t -> config -> unit
(** Bind the socket and serve until a [shutdown] request arrives.
    [ready] fires once the socket is listening (used by tests and the
    bench to synchronise with a server running in another domain).
    Individual client disconnects — including mid-request — only drop
    that connection. *)

val run : ?ready:(unit -> unit) -> config -> (unit, string) result
(** {!create} followed by {!serve}. *)
