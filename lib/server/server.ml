open Csp
module Json = Csp_persist.Json
module Snapshot = Csp_persist.Snapshot
module Parser = Csp_syntax.Parser

type config = {
  socket_path : string;
  jobs : int;
  limits : Protocol.limits;
  warm : string option;
}

let config ?(jobs = 1) ?(limits = Protocol.default_limits) ?warm socket_path =
  { socket_path; jobs = max 1 jobs; limits; warm }

type t = {
  table : (string, Jobs.ctx) Hashtbl.t;  (* keyed by source digest *)
  stamps : (string, int) Hashtbl.t;
      (* digest → last-use stamp, for LRU eviction; same lock *)
  clock : int ref;
  table_lock : Mutex.t;
  stop : bool Atomic.t;
  limits : Protocol.limits;
}

let source_count t =
  Mutex.lock t.table_lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.table_lock;
  n

let contexts t =
  Mutex.lock t.table_lock;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.table [] in
  Mutex.unlock t.table_lock;
  List.sort (fun a b -> compare a.Jobs.digest b.Jobs.digest) cs

let compiled_total t =
  List.fold_left
    (fun acc (c : Jobs.ctx) ->
      Mutex.lock c.lock;
      let n =
        Hashtbl.fold (fun _ e acc -> acc + Engine.compiled_count e) c.engines 0
      in
      Mutex.unlock c.lock;
      acc + n)
    0 (contexts t)

let stopping t = Atomic.get t.stop

(* ---- source contexts --------------------------------------------------- *)

(* caller holds [table_lock] *)
let touch t digest =
  incr t.clock;
  Hashtbl.replace t.stamps digest !(t.clock)

(* Evict least-recently-used contexts until the table fits one more
   entry.  Caller holds [table_lock].  A worker still running a job on
   an evicted context keeps its own reference and finishes normally —
   eviction only drops the cache slot, so the next request on that
   source re-parses cold. *)
let evict_for_insert t =
  while Hashtbl.length t.table >= max 1 t.limits.Protocol.max_sources do
    let victim =
      Hashtbl.fold
        (fun digest stamp acc ->
          match acc with
          | Some (_, best) when best <= stamp -> acc
          | _ -> Some (digest, stamp))
        t.stamps None
    in
    match victim with
    | None ->
      (* stamps lost track of the table; drop everything *)
      Hashtbl.reset t.table;
      Hashtbl.reset t.stamps
    | Some (digest, _) ->
      Hashtbl.remove t.table digest;
      Hashtbl.remove t.stamps digest
  done

let ctx_for t source =
  let digest = Digest.to_hex (Digest.string source) in
  Mutex.lock t.table_lock;
  let found = Hashtbl.find_opt t.table digest in
  (match found with Some _ -> touch t digest | None -> ());
  Mutex.unlock t.table_lock;
  match found with
  | Some ctx -> Ok ctx
  | None -> (
    match Jobs.ctx_of_source source with
    | Error m -> Error m
    | Ok ctx ->
      Mutex.lock t.table_lock;
      (* another worker may have parsed the same source meanwhile; the
         first one in wins so there is exactly one ctx per digest *)
      let ctx =
        match Hashtbl.find_opt t.table digest with
        | Some existing -> existing
        | None ->
          evict_for_insert t;
          Hashtbl.add t.table digest ctx;
          ctx
      in
      touch t digest;
      Mutex.unlock t.table_lock;
      Ok ctx)

(* ---- snapshots --------------------------------------------------------- *)

let snapshot_of t =
  let entries =
    List.map
      (fun (c : Jobs.ctx) ->
        Mutex.lock c.lock;
        let entry =
          {
            Snapshot.source = c.source;
            compiled = List.rev c.compiled_roots;
            certs = Cert.write_many (List.rev_map snd c.proofs);
          }
        in
        Mutex.unlock c.lock;
        entry)
      (contexts t)
  in
  { Snapshot.entries }

(* Replay one snapshot entry: re-parse the source, re-issue every
   recorded compile call and re-admit the proof certificates.  Nothing
   semantic is deserialised, so the warm state is bit-for-bit what a
   cold server would have built serving the same requests. *)
let admit_entry t (entry : Snapshot.entry) =
  match ctx_for t entry.Snapshot.source with
  | Error m -> Error (Printf.sprintf "snapshot source does not parse: %s" m)
  | Ok ctx -> (
    Mutex.lock ctx.Jobs.lock;
    let finish r =
      Mutex.unlock ctx.Jobs.lock;
      r
    in
    List.iter
      (fun (root : Snapshot.compiled_root) ->
        (* a hand-edited (but digest-consistent) snapshot may name a
           process the source does not define: skip it rather than die *)
        match Defs.lookup ctx.Jobs.file.Parser.defs root.Snapshot.process with
        | None -> ()
        | Some _ ->
          Jobs.record_compile ctx ~process:root.Snapshot.process
            ~budget:root.Snapshot.budget ~nat_bound:root.Snapshot.nat_bound;
          let eng = Jobs.engine ctx ~nat_bound:root.Snapshot.nat_bound in
          ignore
            (Engine.compile ?budget:root.Snapshot.budget eng
               (Process.ref_ root.Snapshot.process)))
      entry.Snapshot.compiled;
    if String.length entry.Snapshot.certs = 0 then finish (Ok ())
    else
      match Cert.read_many entry.Snapshot.certs with
      | Error m ->
        finish
          (Error (Printf.sprintf "snapshot certificates do not parse: %s" m))
      | Ok proofs ->
        Jobs.admit_proofs ctx proofs;
        finish (Ok ()))

let admit_snapshot t (snap : Snapshot.t) =
  List.fold_left
    (fun acc entry ->
      match acc with Error _ as e -> e | Ok () -> admit_entry t entry)
    (Ok ()) snap.Snapshot.entries

let create (cfg : config) =
  let t =
    {
      table = Hashtbl.create 16;
      stamps = Hashtbl.create 16;
      clock = ref 0;
      table_lock = Mutex.create ();
      stop = Atomic.make false;
      limits = cfg.limits;
    }
  in
  match cfg.warm with
  | None -> Ok t
  | Some path -> (
    match Snapshot.load path with
    | Error m -> Error (Printf.sprintf "--warm %s: %s" path m)
    | Ok snap -> (
      match admit_snapshot t snap with
      | Error m -> Error (Printf.sprintf "--warm %s: %s" path m)
      | Ok () -> Ok t))

(* ---- request dispatch -------------------------------------------------- *)

let field_str req name = Json.mem_str name req

let field_int req name =
  match Json.member name req with
  | None -> Ok None
  | Some v -> (
    match Json.to_int v with
    | Some n -> Ok (Some n)
    | None ->
      Error
        (Protocol.Bad_request, Printf.sprintf "field %S must be an integer" name))

let field_bool ~default req name =
  match Json.member name req with
  | None -> Ok default
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Ok b
    | None ->
      Error
        (Protocol.Bad_request, Printf.sprintf "field %S must be a boolean" name))

let require_str req name =
  match field_str req name with
  | Some s -> Ok s
  | None ->
    Error
      (Protocol.Bad_request, Printf.sprintf "missing string field %S" name)

let int_param req name ~default ~cap ~cap_name =
  match field_int req name with
  | Error _ as e -> e
  | Ok v ->
    let v = Option.value ~default v in
    if v < 1 then
      Error
        (Protocol.Bad_request, Printf.sprintf "field %S must be positive" name)
    else if v > cap then
      Error
        ( Protocol.Budget_exceeded,
          Printf.sprintf "%s %d exceeds the server's per-request cap %d (%s)"
            name v cap cap_name )
    else Ok v

let ( let* ) = Result.bind

let with_ctx t req job =
  let* source = require_str req "source" in
  match ctx_for t source with
  | Error m -> Error (Protocol.Parse_error, m)
  | Ok ctx ->
    Mutex.lock ctx.Jobs.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock ctx.Jobs.lock) @@ fun () ->
    job ctx

(* Jobs never raise on bad input (every failure is a typed [Error]);
   anything escaping here is a genuine bug, reported as [internal]
   without killing the server. *)
let job_result t req = function
  | "parse" -> with_ctx t req (fun ctx -> Ok (Jobs.parse ctx))
  | "graph" ->
    let* max_states =
      int_param req "max_states" ~default:2000 ~cap:t.limits.Protocol.max_states
        ~cap_name:"max_states"
    in
    let* nat = int_param req "nat" ~default:3 ~cap:64 ~cap_name:"nat" in
    let* compiled = field_bool ~default:true req "compiled" in
    with_ctx t req (fun ctx ->
        let* process = require_str req "process" in
        match
          Jobs.graph ctx ~process ~max_states ~nat_bound:nat ~compiled
        with
        | Ok o -> Ok o
        | Error m -> Error (Protocol.Bad_request, m))
  | "refine" ->
    let* depth =
      int_param req "depth" ~default:5 ~cap:t.limits.Protocol.max_depth
        ~cap_name:"depth"
    in
    let* nat = int_param req "nat" ~default:3 ~cap:64 ~cap_name:"nat" in
    let* weak = field_bool ~default:false req "weak" in
    let* compiled = field_bool ~default:true req "compiled" in
    with_ctx t req (fun ctx ->
        let* impl = require_str req "impl" in
        let* spec = require_str req "spec" in
        match
          Jobs.refine ctx ~impl ~spec ~depth ~nat_bound:nat ~weak ~compiled
        with
        | Ok o -> Ok o
        | Error m -> Error (Protocol.Bad_request, m))
  | "prove" -> with_ctx t req (fun ctx -> Ok (Jobs.prove ctx))
  | "fuzz" ->
    let* count =
      int_param req "count" ~default:200 ~cap:t.limits.Protocol.max_cases
        ~cap_name:"count"
    in
    let* seed = field_int req "seed" in
    let seed = Option.value ~default:0 seed in
    let* budget =
      match Json.member "budget" req with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.to_float v with
        | Some f when f > 0. -> Ok (Some f)
        | _ ->
          Error
            ( Protocol.Bad_request,
              "field \"budget\" must be a positive number of seconds" ))
    in
    let oracle_names =
      match Json.member "oracles" req with
      | Some (Json.Arr xs) -> List.filter_map Json.to_str xs
      | _ -> []
    in
    (match Jobs.fuzz ~seed ~count ~budget ~oracle_names with
    | Ok o -> Ok o
    | Error m -> Error (Protocol.Bad_request, m))
  | op -> Error (Protocol.Bad_request, Printf.sprintf "unknown op %S" op)

let handle_op t ~id ~op req =
  let t0 = Unix.gettimeofday () in
  let elapsed () = (Unix.gettimeofday () -. t0) *. 1000. in
  match op with
  | "ping" ->
    Protocol.ok_response ~id ~op ~elapsed_ms:(elapsed ())
      ~extra:[ ("pong", Json.Bool true) ]
      ()
  | "stats" ->
    Protocol.ok_response ~id ~op ~elapsed_ms:(elapsed ())
      ~extra:
        [
          ("sources", Json.int (source_count t));
          ("compiled", Json.int (compiled_total t));
          ( "proofs",
            Json.int
              (List.fold_left
                 (fun acc (c : Jobs.ctx) -> acc + List.length c.Jobs.proofs)
                 0 (contexts t)) );
        ]
      ()
  | "shutdown" ->
    Atomic.set t.stop true;
    Protocol.ok_response ~id ~op ~elapsed_ms:(elapsed ()) ()
  | "save" -> (
    match require_str req "path" with
    | Error (kind, m) -> Protocol.error_response ~id kind m
    | Ok path -> (
      let snap = snapshot_of t in
      match Snapshot.save path snap with
      | () ->
        Protocol.ok_response ~id ~op ~elapsed_ms:(elapsed ())
          ~extra:
            [
              ("path", Json.str path);
              ("sources", Json.int (List.length snap.Snapshot.entries));
            ]
          ()
      | exception Sys_error m ->
        Protocol.error_response ~id Protocol.Internal m))
  | "load" -> (
    match require_str req "path" with
    | Error (kind, m) -> Protocol.error_response ~id kind m
    | Ok path -> (
      match Snapshot.load path with
      | Error m -> Protocol.error_response ~id Protocol.Bad_request m
      | Ok snap -> (
        match admit_snapshot t snap with
        | Error m -> Protocol.error_response ~id Protocol.Bad_request m
        | Ok () ->
          Protocol.ok_response ~id ~op ~elapsed_ms:(elapsed ())
            ~extra:
              [
                ("path", Json.str path);
                ("sources", Json.int (List.length snap.Snapshot.entries));
              ]
            ())))
  | _ -> (
    let want_stats =
      match field_bool ~default:false req "stats" with
      | Ok b -> b
      | Error _ -> false
    in
    let run () = job_result t req op in
    let result, stats =
      if want_stats then
        let r, deltas = Obs.delta_snapshot run in
        (r, Some deltas)
      else (run (), None)
    in
    match result with
    | Ok (o : Jobs.outcome) ->
      Protocol.ok_response ~id ~op ~output:o.Jobs.output
        ~exit_code:o.Jobs.exit_code ?stats ~elapsed_ms:(elapsed ()) ()
    | Error (kind, m) -> Protocol.error_response ~id kind m)

let handle_line t line =
  let resp =
    match Json.parse line with
    | Error m ->
      Protocol.error_response Protocol.Malformed_frame
        (Printf.sprintf "request is not valid JSON: %s" m)
    | Ok (Json.Obj _ as req) -> (
      let id = Option.value ~default:Json.Null (Json.member "id" req) in
      match Json.mem_str "op" req with
      | None ->
        Protocol.error_response ~id Protocol.Bad_request
          "missing string field \"op\""
      | Some op -> (
        try handle_op t ~id ~op req
        with e ->
          Protocol.error_response ~id Protocol.Internal (Printexc.to_string e)))
    | Ok _ ->
      Protocol.error_response Protocol.Malformed_frame
        "request frame must be a JSON object"
  in
  Json.to_string resp

(* ---- the socket loop --------------------------------------------------- *)

(* One live connection: the reader persists across dispatches so
   bytes buffered past the last processed frame are not lost. *)
type live = { fd : Unix.file_descr; reader : Protocol.reader }

(* Serve every complete frame currently available on the connection —
   the one whose arrival woke the poller, plus any pipelined behind
   it — and report whether the connection should be kept.  A peer
   that vanished (EOF mid-frame, EPIPE on the response) only closes
   this connection. *)
let process_ready t live =
  let rec go () =
    match Protocol.read_frame live.reader with
    | `Eof -> `Close
    | `Too_large ->
      (* the frame boundary is lost: answer once, then drop the
         connection rather than try to resynchronise *)
      (try
         Protocol.write_frame live.fd
           (Json.to_string
              (Protocol.error_response Protocol.Frame_too_large
                 (Printf.sprintf "frame exceeds %d bytes"
                    t.limits.Protocol.max_frame)))
       with Unix.Unix_error _ -> ());
      `Close
    | `Frame line -> (
      let resp = handle_line t line in
      match Protocol.write_frame live.fd resp with
      | () ->
        if Atomic.get t.stop then `Close
        else if Protocol.buffered_frame live.reader then go ()
        else `Keep
      | exception Unix.Unix_error _ -> `Close)
  in
  try go () with _ -> `Close

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The poller owns the listening socket and every idle connection and
   multiplexes them through [select]; a connection with data ready is
   handed to [dispatch] (inline with [jobs = 1], onto the pool's
   work-stealing session otherwise) and returns to the idle set when
   its frames are served.  So a fixed worker count serves any number
   of persistent connections: an idle connection occupies no worker,
   and requests interleaved across connections never head-of-line
   block behind an open socket. *)
let serve ?ready t cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let wake_r, wake_w = Unix.pipe () in
  let idle = ref [] in
  let idle_mu = Mutex.create () in
  (* workers hand finished connections back through the idle set and
     poke the pipe so the poller re-selects immediately instead of at
     its next 200ms tick *)
  let return_live live = function
    | `Close -> close_quietly live.fd
    | `Keep ->
      Mutex.lock idle_mu;
      idle := live :: !idle;
      Mutex.unlock idle_mu;
      (try ignore (Unix.write wake_w (Bytes.of_string "x") 0 1)
       with Unix.Unix_error _ -> ())
  in
  let take_idle snapshot_fd =
    Mutex.lock idle_mu;
    let found = List.find_opt (fun l -> l.fd = snapshot_fd) !idle in
    (match found with
    | Some l -> idle := List.filter (fun l' -> l' != l) !idle
    | None -> ());
    Mutex.unlock idle_mu;
    found
  in
  let session =
    if cfg.jobs <= 1 then None
    else begin
      let pool = Pool.create ~domains:(cfg.jobs + 1) in
      let s =
        Pool.stealing_start pool (fun ~worker:_ ~push:_ live ->
            return_live live (process_ready t live))
      in
      Some (pool, s)
    end
  in
  let dispatch live =
    match session with
    | None -> return_live live (process_ready t live)
    | Some (_, s) -> Pool.stealing_push s live
  in
  Fun.protect
    ~finally:(fun () ->
      (match session with
      | Some (pool, s) ->
        Pool.stealing_stop s;
        Pool.shutdown pool
      | None -> ());
      Mutex.lock idle_mu;
      List.iter (fun l -> close_quietly l.fd) !idle;
      idle := [];
      Mutex.unlock idle_mu;
      close_quietly wake_r;
      close_quietly wake_w;
      close_quietly sock;
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen sock 64;
  Unix.set_nonblock wake_r;
  (match ready with Some f -> f () | None -> ());
  let drain_wake () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read wake_r b 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  (* the 200ms tick bounds how stale a [shutdown] handled on a worker
     can leave the poller *)
  while not (Atomic.get t.stop) do
    Mutex.lock idle_mu;
    let snapshot = !idle in
    Mutex.unlock idle_mu;
    let watched = sock :: wake_r :: List.map (fun l -> l.fd) snapshot in
    match Unix.select watched [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | readable, _, _ ->
      if List.mem wake_r readable then drain_wake ();
      if List.mem sock readable then begin
        match Unix.accept sock with
        | fd, _ ->
          return_live
            { fd;
              reader =
                Protocol.reader ~max_frame:t.limits.Protocol.max_frame fd }
            `Keep
        | exception Unix.Unix_error _ -> ()
      end;
      List.iter
        (fun l ->
          if List.mem l.fd readable then
            match take_idle l.fd with
            | None -> ()
            | Some live -> (
              (* re-check on the connection actually taken: the fd
                 number may have been recycled onto a fresh (and not
                 yet readable) connection since [select] returned *)
              match Unix.select [ live.fd ] [] [] 0. with
              | [ _ ], _, _ -> dispatch live
              | _ -> return_live live `Keep
              | exception Unix.Unix_error _ -> return_live live `Close))
        snapshot
  done

let run ?ready cfg =
  match create cfg with
  | Error _ as e -> e
  | Ok t ->
    serve ?ready t cfg;
    Ok ()
